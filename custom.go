package gadget

import (
	"gadget/internal/config"
	"gadget/internal/core"
	"gadget/internal/eventgen"
	"gadget/internal/replay"
)

// Custom operator support — the paper's §5.4 extension API. A user
// operator implements Operator: it receives events and watermarks and
// emits state accesses; the harness drives it exactly like the built-in
// workloads.

// Operator is the streaming-operator simulation interface. Built-in
// operators come from NewOperator; custom operators implement it
// directly (typically ~30 lines: a state-machine switch in OnEvent plus
// cleanup in OnWatermark).
type Operator = core.Operator

// EmitFunc receives each generated state access in order.
type EmitFunc = core.Emit

// NewOperator constructs one of the thirteen predefined operators.
func NewOperator(cfg OperatorConfig) (Operator, error) { return core.New(cfg) }

// NewEventSource builds an event source from a source configuration.
// twoStream selects a merged two-input source for join-style operators.
func NewEventSource(sc SourceConfig, twoStream bool) (EventSource, error) {
	return config.BuildEventSource(sc, twoStream)
}

// Drive pulls src to exhaustion through op, passing every state access
// to emit — the raw harness loop (paper Algorithm 1) for custom setups.
func Drive(src EventSource, op Operator, emit EmitFunc) {
	core.Drive(src, op, emit)
}

// GenerateCustom materializes the state access stream of a custom
// operator over src (offline mode).
func GenerateCustom(src EventSource, op Operator) []Access {
	return core.Generate(src, op)
}

// RunCustomOnline drives a custom operator over src, issuing every state
// access to store and measuring latency and throughput (online mode).
// With ReplayOptions.StallTimeout set, a stalled run returns its partial
// Result (Degraded=true) with ErrStalled instead of hanging.
func RunCustomOnline(src EventSource, op Operator, store Store, opts ReplayOptions) (Result, error) {
	c, err := replay.NewCollector(store, opts)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var applyErr error
	stalled := replay.Guard(opts.StallTimeout, []*replay.Collector{c}, func() {
		core.Drive(src, op, func(a Access) {
			if applyErr == nil {
				applyErr = c.Do(a)
			}
		})
		res = c.Finish()
	})
	if stalled {
		return c.Snapshot(), ErrStalled
	}
	return res, applyErr
}

// Watermark items and event kinds, re-exported for custom sources and
// operators.
const (
	// KindRecord tags ordinary events.
	KindRecord = eventgen.KindRecord
	// KindStart opens a validity interval (continuous joins).
	KindStart = eventgen.KindStart
	// KindEnd closes a validity interval.
	KindEnd = eventgen.KindEnd
)

// PartitionSource splits a source into n key-disjoint sub-streams
// (watermarks broadcast), modelling the data-parallel task model of the
// paper's §2.1: each task processes a disjoint key partition with its
// own state store. The source is drained eagerly.
func PartitionSource(src EventSource, n int) []EventSource {
	parts := eventgen.Partition(src, n)
	out := make([]EventSource, len(parts))
	for i, p := range parts {
		out[i] = p
	}
	return out
}
