// Package gadget is the public API of Gadget-Go, a benchmark harness for
// systematic and robust evaluation of streaming state stores — a Go
// reproduction of "A New Benchmark Harness for Systematic and Robust
// Evaluation of Streaming State Stores" (EuroSys '22).
//
// A benchmark run has three parts: an input event source (a synthetic
// generator or one of the built-in dataset shapes), a streaming operator
// whose state access logic is simulated by per-state-key finite state
// machines, and a KV store that receives the resulting state access
// stream. The harness runs online (issuing requests while generating,
// collecting latency and throughput) or offline (writing a trace file
// replayed later):
//
//	cfg, _ := gadget.ParseConfig(doc)
//	w, _ := gadget.NewWorkload(cfg)
//	store, _ := gadget.OpenStore(cfg.Store)
//	defer store.Close()
//	res, _ := w.RunOnline(store, gadget.ReplayOptions{})
//	fmt.Println(res)
//
// Four KV engines ship with the harness, each a from-scratch Go
// implementation of the architecture the paper evaluates: "rocksdb" (an
// LSM tree with a lazy merge operator), "lethe" (delete-aware LSM
// compaction), "faster" (hash index over a hybrid log with in-place
// updates), and "berkeleydb" (a disk-backed B+Tree with a buffer pool),
// plus "memstore" (a map, used as oracle and zero-IO baseline).
package gadget

import (
	"fmt"
	"math/rand"
	"sync"

	"gadget/internal/analysis"
	"gadget/internal/campaign"
	"gadget/internal/config"
	"gadget/internal/core"
	"gadget/internal/datasets"
	"gadget/internal/dist"
	"gadget/internal/eventgen"
	"gadget/internal/flinksim"
	"gadget/internal/kv"
	"gadget/internal/replay"
	"gadget/internal/stats"
	"gadget/internal/stores"
	"gadget/internal/trace"
	"gadget/internal/tracing"
)

// Core vocabulary re-exported from the internal packages.
type (
	// Access is one state store operation: (op, key, value size, time).
	Access = kv.Access
	// StateKey is the composite state key (event key group, namespace).
	StateKey = kv.StateKey
	// Op is a state operation type (get, put, merge, delete, fget).
	Op = kv.Op
	// Store is the uniform KV store interface.
	Store = kv.Store
	// StoreConfig selects and sizes a KV engine.
	StoreConfig = stores.Config
	// Config is the full benchmark configuration document.
	Config = config.Config
	// SourceConfig describes the input event stream.
	SourceConfig = config.SourceConfig
	// RunConfig describes run mode and replay options.
	RunConfig = config.RunConfig
	// ObsConfig tunes the observability layer (sampler interval,
	// metrics listener, report path).
	ObsConfig = config.ObsConfig
	// OperatorConfig parameterizes a streaming operator.
	OperatorConfig = core.Config
	// OperatorType names one of the thirteen predefined workloads.
	OperatorType = core.OperatorType
	// OperatorStats reports operator-level counters.
	OperatorStats = core.Stats
	// ReplayOptions tunes the performance evaluator.
	ReplayOptions = replay.Options
	// OpenLoopOptions tunes the open-loop (coordinated-omission-free)
	// replay driver: offered rate or arrival schedule, in-flight bound.
	OpenLoopOptions = replay.OpenLoopOptions
	// ArrivalSchedule generates interarrival gaps in nanoseconds for the
	// open-loop driver (constant-rate, Poisson, burst phases).
	ArrivalSchedule = dist.Schedule
	// BurstPhase is one leg of a phased arrival schedule: a rate held
	// for a duration of schedule time.
	BurstPhase = dist.BurstPhase
	// SLO is the pass criterion of a sustainable-rate search.
	SLO = replay.SLO
	// RateSearchOptions configures FindSustainableRate.
	RateSearchOptions = replay.RateSearchOptions
	// RateSearchResult is a sustainable-rate search outcome.
	RateSearchResult = replay.RateSearchResult
	// RateProbe records one probe of a sustainable-rate search.
	RateProbe = replay.RateProbe
	// Result carries throughput and latency measurements.
	Result = replay.Result
	// Event is one input stream element.
	Event = eventgen.Event
	// EventSource produces a stream of events and watermarks.
	EventSource = eventgen.Source
	// Datasets bundles a dataset's streams.
	Datasets = datasets.Streams
)

// The thirteen predefined workloads.
const (
	TumblingIncr   = core.TumblingIncr
	TumblingHol    = core.TumblingHol
	SlidingIncr    = core.SlidingIncr
	SlidingHol     = core.SlidingHol
	SessionIncr    = core.SessionIncr
	SessionHol     = core.SessionHol
	TumblingJoin   = core.TumblingJoin
	SlidingJoin    = core.SlidingJoin
	IntervalJoin   = core.IntervalJoin
	ContinJoin     = core.ContinJoin
	Aggregation    = core.Aggregation
	TopKDrain      = core.TopKDrain
	RangeJoinProbe = core.RangeJoinProbe
)

// Operation types.
const (
	OpGet    = kv.OpGet
	OpPut    = kv.OpPut
	OpMerge  = kv.OpMerge
	OpDelete = kv.OpDelete
	OpFGet   = kv.OpFGet
	OpScan   = kv.OpScan
)

// Common errors re-exported for callers of the public API.
var (
	// ErrNotFound is returned by Store.Get for missing keys.
	ErrNotFound = kv.ErrNotFound
	// ErrStalled is returned by watchdog-guarded runs that were aborted
	// because a worker stopped making progress; the accompanying Result
	// is partial and tagged Degraded.
	ErrStalled = replay.ErrStalled
	// ErrBreakerOpen is returned by a ResilientStore rejecting operations
	// while its circuit breaker is open.
	ErrBreakerOpen = kv.ErrBreakerOpen
	// ErrNoSnapshots is returned by SnapshotOf for stores that expose
	// neither native snapshots nor the range scans the fallback needs.
	ErrNoSnapshots = kv.ErrNoSnapshots
	// ErrClosed is reported by iterators over a closed snapshot.
	ErrClosed = kv.ErrClosed
)

// Snapshot / range-scan API re-exports (see DESIGN.md §11).
type (
	// Iterator is an ordered cursor over state entries.
	Iterator = kv.Iterator
	// Snapshot is a frozen, point-in-time view of a store.
	Snapshot = kv.Snapshot
	// Snapshotter is implemented by stores with native snapshots.
	Snapshotter = kv.Snapshotter
	// RangeScanner is implemented by stores with native range scans.
	RangeScanner = kv.RangeScanner
	// Entry is one key/value pair yielded by a scan.
	Entry = kv.Entry
	// Capabilities declares which access paths a store supports natively.
	Capabilities = kv.Capabilities
)

// CapsOf reports a store's declared capabilities (the zero value for
// stores that predate the capability interface).
func CapsOf(s Store) Capabilities { return kv.CapsOf(s) }

// SnapshotOf returns a consistent snapshot of the store: the engine's
// native mechanism when Capabilities.Snapshots is set, otherwise a
// stop-the-world full-copy fallback built over ScanRange.
func SnapshotOf(s Store) (Snapshot, error) { return kv.SnapshotOf(s) }

// ScanRange returns the live entries with keys in [lo, hi], ascending.
func ScanRange(s Store, lo, hi StateKey) ([]Entry, error) { return kv.ScanRange(s, lo, hi) }

// ScanAll returns every live entry in the store, ascending.
func ScanAll(s Store) ([]Entry, error) { return kv.ScanAll(s) }

// IterOf returns an iterator over [lo, hi] backed by a private
// snapshot; Close releases it.
func IterOf(s Store, lo, hi StateKey) (Iterator, error) { return kv.IterOf(s, lo, hi) }

// Resilience layer re-exports: deterministic fault injection and the
// retry/backoff/circuit-breaker middleware (see DESIGN.md §8).
type (
	// ChaosPlan schedules deterministic operation-level faults.
	ChaosPlan = kv.ChaosPlan
	// ChaosStore injects a ChaosPlan's faults into a wrapped store.
	ChaosStore = kv.ChaosStore
	// ResilienceOptions tunes retries, deadlines, and the breaker.
	ResilienceOptions = kv.ResilienceOptions
	// ResilienceCounters reports retry/timeout/breaker activity.
	ResilienceCounters = kv.ResilienceCounters
	// ResilientStore wraps a store with the resilience middleware.
	ResilientStore = kv.ResilientStore
	// Introspector is the capability interface engines implement to
	// expose internal counters (see DESIGN.md §9).
	Introspector = kv.Introspector
)

// StoreMetrics returns a store's introspection counters, or nil when
// the store does not implement Introspector.
func StoreMetrics(s Store) map[string]int64 { return kv.MetricsOf(s) }

// Per-operation tracing re-exports (see DESIGN.md §14): sampled
// operations carry a pooled trace context through every layer, each of
// which attributes only the latency it adds, and the flight recorder
// retains the slowest complete traces for the report's slow_ops section.
type (
	// Tracer samples, aggregates, and records per-op traces.
	Tracer = tracing.Tracer
	// TracerOptions tunes sampling (1-in-N), flight-recorder retention
	// (K slowest), and the injectable clock.
	TracerOptions = tracing.Options
	// SlowOps is the report-ready flight-recorder section.
	SlowOps = tracing.SlowOps
)

// NewTracer constructs a Tracer. Hand it to ReplayOptions.Tracer (and
// set StoreConfig.Traced for remote stores, so server handle stamps are
// negotiated at hello).
func NewTracer(opts TracerOptions) *Tracer { return tracing.New(opts) }

// TracerSnapshot builds the report-ready slow_ops section, naming ops
// with the kv.Op vocabulary. Nil tracer returns nil.
func TracerSnapshot(t *Tracer) *SlowOps {
	return t.Snapshot(func(op uint8) string { return kv.Op(op).String() })
}

// MergeResults folds per-worker Results into one run-wide view (see
// replay.MergeResults for the delta-merging rules).
func MergeResults(results []Result) Result { return replay.MergeResults(results) }

// NewChaosStore wraps a store with deterministic fault injection.
func NewChaosStore(inner Store, plan ChaosPlan) *ChaosStore { return kv.NewChaosStore(inner, plan) }

// NewResilientStore wraps a store with per-op deadlines, bounded retry
// with exponential backoff, and a circuit breaker.
func NewResilientStore(inner Store, opts ResilienceOptions) (*ResilientStore, error) {
	return kv.NewResilientStore(inner, opts)
}

// Crash-recovery layer re-exports: portable checkpoints, the
// crash/recover replay runner, and scripted fault campaigns (see
// DESIGN.md §12).
type (
	// Checkpointer saves and restores portable checkpoints of a store.
	Checkpointer = kv.Checkpointer
	// CheckpointMeta describes one checkpoint (engine, watermark, entries).
	CheckpointMeta = kv.CheckpointMeta
	// RestoreInfo reports which checkpoint a restore used and how many
	// corrupt ones it skipped on the way.
	RestoreInfo = kv.RestoreInfo
	// RecoveryOptions extends ReplayOptions with a checkpoint cadence and
	// a scripted crash schedule.
	RecoveryOptions = replay.RecoveryOptions
	// Attempt is one life of a store between crashes.
	Attempt = replay.Attempt
	// StoreFactory opens a fresh store for each attempt of a recovery run.
	StoreFactory = replay.StoreFactory
	// CampaignOptions configures a fault-campaign sweep.
	CampaignOptions = campaign.Options
	// CampaignCell is one cell of a campaign's robustness matrix.
	CampaignCell = campaign.Cell
	// CampaignMatrix is a campaign result.
	CampaignMatrix = campaign.Matrix
)

// ErrCheckpointCorrupt is returned when a checkpoint fails its
// integrity checks; Checkpointer.Restore skips such files and falls
// back to the previous checkpoint.
var ErrCheckpointCorrupt = kv.ErrCheckpointCorrupt

// RunWithRecovery replays a trace through a scripted crash schedule,
// recovering each crash from the newest valid checkpoint and measuring
// RTO/RPO (see replay.RunWithRecovery).
func RunWithRecovery(open StoreFactory, accesses []Access, opts RecoveryOptions) (Result, error) {
	return replay.RunWithRecovery(open, accesses, opts)
}

// RunCampaign sweeps engines x crash points x checkpoint intervals over
// one trace and returns the robustness matrix. logf (may be nil)
// receives one progress line per cell.
func RunCampaign(opts CampaignOptions, logf func(format string, args ...any)) (CampaignMatrix, error) {
	return campaign.Run(opts, logf)
}

// OperatorTypes lists the predefined workloads.
func OperatorTypes() []OperatorType { return core.OperatorTypes() }

// Engines lists the available KV engine names.
func Engines() []string { return stores.Engines() }

// OpenStore constructs a KV store from its configuration.
func OpenStore(cfg StoreConfig) (Store, error) { return stores.Open(cfg) }

// LoadConfig reads a JSON configuration file.
func LoadConfig(path string) (Config, error) { return config.Load(path) }

// ParseConfig decodes a JSON configuration document.
func ParseConfig(data []byte) (Config, error) { return config.Parse(data) }

// Dataset returns a built-in dataset shape ("borg", "taxi", "azure") at
// the given scale (1.0 reproduces the paper's event counts).
func Dataset(name string, scale float64, seed int64) (Datasets, error) {
	ds, ok := datasets.ByName(name, scale, seed)
	if !ok {
		return Datasets{}, fmt.Errorf("gadget: unknown dataset %q (want one of %v)", name, datasets.Names())
	}
	return ds, nil
}

// Workload binds a configuration's source and operator, ready to
// generate state access streams.
type Workload struct {
	cfg Config
}

// NewWorkload validates cfg and returns a Workload.
func NewWorkload(cfg Config) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Workload{cfg: cfg}, nil
}

// Config returns the validated configuration.
func (w *Workload) Config() Config { return w.cfg }

// Generate produces the workload's state access stream (offline mode).
func (w *Workload) Generate() ([]Access, error) {
	src, err := w.cfg.BuildSource()
	if err != nil {
		return nil, err
	}
	op, err := w.cfg.BuildOperator()
	if err != nil {
		return nil, err
	}
	return core.Generate(src, op), nil
}

// RunOnline generates the workload and issues every state access to the
// store as it is produced, measuring latency and throughput. With
// ReplayOptions.StallTimeout set, a stalled run returns its partial
// Result (Degraded=true) with ErrStalled instead of hanging.
func (w *Workload) RunOnline(store Store, opts ReplayOptions) (Result, error) {
	src, err := w.cfg.BuildSource()
	if err != nil {
		return Result{}, err
	}
	op, err := w.cfg.BuildOperator()
	if err != nil {
		return Result{}, err
	}
	c, err := replay.NewCollector(store, opts)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var applyErr error
	stalled := replay.Guard(opts.StallTimeout, []*replay.Collector{c}, func() {
		core.DriveUntil(src, op, func(a Access) {
			if applyErr == nil {
				applyErr = c.Do(a)
			}
		}, func() bool { return applyErr != nil })
		res = c.Finish()
	})
	if stalled {
		return c.Snapshot(), ErrStalled
	}
	return res, applyErr
}

// RunOpenLoop generates the workload's state access stream, then
// replays it under an open-loop arrival schedule (run.mode
// "open_loop"): latency is measured from each event's intended arrival
// time, so a stalling store is charged for the backlog it causes
// instead of silently slowing the generator down.
func (w *Workload) RunOpenLoop(store Store, opts OpenLoopOptions) (Result, error) {
	tr, err := w.Generate()
	if err != nil {
		return Result{}, err
	}
	return replay.RunOpenLoop(store, tr, opts)
}

// RunWithRecovery generates the workload's state access stream, then
// replays it through the crash schedule in opts, restoring from opts's
// checkpointer after each crash. The final attempt's store is left open
// for the caller (capture it in the factory).
func (w *Workload) RunWithRecovery(open StoreFactory, opts RecoveryOptions) (Result, error) {
	tr, err := w.Generate()
	if err != nil {
		return Result{}, err
	}
	return replay.RunWithRecovery(open, tr, opts)
}

// CollectReferenceTrace executes the workload on the reference engine
// (a real mini stream processor materializing state in memory) and
// returns the ground-truth state access trace — what the paper collects
// from instrumented Flink.
func (w *Workload) CollectReferenceTrace() ([]Access, error) {
	src, err := w.cfg.BuildSource()
	if err != nil {
		return nil, err
	}
	tr, _, err := flinksim.CollectTrace(w.cfg.Operator, src)
	return tr, err
}

// Replay replays a materialized trace against a store.
func Replay(store Store, accesses []Access, opts ReplayOptions) (Result, error) {
	return replay.Run(store, accesses, opts)
}

// ReplayOpenLoop replays a materialized trace under an open-loop
// arrival schedule: events are dispatched at their intended arrival
// times regardless of store progress, and latency is measured from the
// intended arrival — the coordinated-omission-free view. The final
// store state is identical to a closed-loop Replay of the same trace.
func ReplayOpenLoop(store Store, accesses []Access, opts OpenLoopOptions) (Result, error) {
	return replay.RunOpenLoop(store, accesses, opts)
}

// FindSustainableRate searches for the maximum offered rate at which
// store meets the SLO on the trace, probing with open-loop runs
// (bracket then bisect; see replay.FindSustainableRate).
func FindSustainableRate(store Store, accesses []Access, opts RateSearchOptions) (RateSearchResult, error) {
	return replay.FindSustainableRate(store, accesses, opts)
}

// ConstantArrivals returns a deterministic arrival schedule at
// ratePerSec events/second.
func ConstantArrivals(ratePerSec float64) ArrivalSchedule { return dist.NewConstantRate(ratePerSec) }

// PoissonArrivals returns a seeded Poisson arrival schedule at a mean
// of ratePerSec events/second.
func PoissonArrivals(ratePerSec float64, seed int64) ArrivalSchedule {
	return dist.NewPoissonRate(ratePerSec, rand.New(rand.NewSource(seed)))
}

// BurstArrivals returns a cycling phased arrival schedule.
func BurstArrivals(phases []BurstPhase) (ArrivalSchedule, error) { return dist.NewBursts(phases) }

// ReplayConcurrent replays several traces concurrently against one
// shared store (the paper's concurrent-operators scenario).
func ReplayConcurrent(store Store, traces [][]Access, opts ReplayOptions) ([]Result, error) {
	return replay.RunConcurrent(store, traces, opts)
}

// WriteTrace persists a state access stream to a binary trace file.
func WriteTrace(path string, accesses []Access) error {
	return trace.WriteFile(path, accesses)
}

// ReadTrace loads a binary trace file.
func ReadTrace(path string) ([]Access, error) { return trace.ReadFile(path) }

// TraceAnalysis summarizes the characterization metrics of a state
// access trace (the paper's §3 toolbox).
type TraceAnalysis struct {
	// Composition is the operation mix (gets include trigger-time FGets;
	// scans are the range reads of the scan-aware workloads).
	GetShare, PutShare, MergeShare, DeleteShare, ScanShare float64
	// DistinctKeys is the number of distinct state keys.
	DistinctKeys int
	// MeanStackDistance measures temporal locality (lower = hotter).
	MeanStackDistance float64
	// UniqueSeq10 is the number of unique key 10-grams (spatial locality).
	UniqueSeq10 int
	// MaxWorkingSet is the peak number of simultaneously live keys.
	MaxWorkingSet int
	// TTL summarizes key lifetimes in trace steps.
	TTL stats.Summary
}

// MissRatioPoint pairs an LRU cache size (entries) with its miss ratio.
type MissRatioPoint = analysis.MissRatioPoint

// MissRatioCurve computes the exact LRU miss-ratio curve of a trace's
// key sequence (Mattson), the basis for the automatic cache sizing the
// paper's §8 proposes.
func MissRatioCurve(accesses []Access, cacheSizes []int) []MissRatioPoint {
	return analysis.MissRatioCurve(analysis.KeyIDs(accesses), cacheSizes)
}

// RecommendCacheSize returns the smallest LRU cache size (in entries)
// that achieves the target miss ratio on the trace.
func RecommendCacheSize(accesses []Access, targetMissRatio float64) int {
	return analysis.RecommendCacheSize(analysis.KeyIDs(accesses), targetMissRatio)
}

// Analyze computes a TraceAnalysis.
func Analyze(accesses []Access) TraceAnalysis {
	comp := analysis.Compose(accesses)
	ids := analysis.KeyIDs(accesses)
	dists, _ := analysis.StackDistances(ids)
	seqs := analysis.UniqueSequences(ids, 10)
	ttl := analysis.SampleTTLs(ids, 1000, 1)
	distinct := 0
	seen := map[uint64]struct{}{}
	for _, id := range ids {
		seen[id] = struct{}{}
	}
	distinct = len(seen)
	return TraceAnalysis{
		GetShare:          comp.Get,
		PutShare:          comp.Put,
		MergeShare:        comp.Merge,
		DeleteShare:       comp.Delete,
		ScanShare:         comp.Scan,
		DistinctKeys:      distinct,
		MeanStackDistance: stats.Mean(dists),
		UniqueSeq10:       seqs[9],
		MaxWorkingSet:     analysis.MaxWorkingSet(ids, 100),
		TTL:               ttl,
	}
}

// RunPartitioned executes the workload as n data-parallel operator
// instances over key-disjoint partitions of the input, one instance per
// store in stores (instances run concurrently, as tasks of one operator
// do). Stores may all differ, or alias one shared instance to study
// co-location (§6.4).
func (w *Workload) RunPartitioned(stores []Store, opts ReplayOptions) ([]Result, error) {
	src, err := w.cfg.BuildSource()
	if err != nil {
		return nil, err
	}
	op := w.cfg.Operator
	parts := eventgen.Partition(src, len(stores))
	cols := make([]*replay.Collector, len(parts))
	for i := range parts {
		c, err := replay.NewCollector(stores[i], opts)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	results := make([]Result, len(parts))
	errs := make([]error, len(parts))
	stalled := replay.Guard(opts.StallTimeout, cols, func() {
		var wg sync.WaitGroup
		for i := range parts {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				inst, err := core.New(op)
				if err != nil {
					errs[i] = err
					return
				}
				c := cols[i]
				var applyErr error
				core.DriveUntil(parts[i], inst, func(a Access) {
					if applyErr == nil {
						applyErr = c.Do(a)
					}
				}, func() bool { return applyErr != nil })
				results[i] = c.Finish()
				errs[i] = applyErr
			}(i)
		}
		wg.Wait()
	})
	if stalled {
		// Abandoned workers may still write results/errs as they unwind;
		// snapshot into a fresh slice instead.
		partial := make([]Result, len(cols))
		for i, c := range cols {
			partial[i] = c.Snapshot()
		}
		return partial, ErrStalled
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
