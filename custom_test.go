package gadget_test

import (
	"testing"

	"gadget"
)

// countingOp is a minimal custom operator: one get-put pair per event on
// the event key (a re-implementation of continuous aggregation through
// the public extension API).
type countingOp struct {
	stats gadget.OperatorStats
}

func (c *countingOp) Type() gadget.OperatorType { return "counting" }

func (c *countingOp) OnEvent(e gadget.Event, emit gadget.EmitFunc) {
	c.stats.Events++
	k := gadget.StateKey{Group: e.Key}
	emit(gadget.Access{Op: gadget.OpGet, Key: k, Time: e.Time})
	emit(gadget.Access{Op: gadget.OpPut, Key: k, Size: 8, Time: e.Time})
}

func (c *countingOp) OnWatermark(wm int64, emit gadget.EmitFunc) {}

func (c *countingOp) Stats() gadget.OperatorStats { return c.stats }

func customSource(t *testing.T) gadget.EventSource {
	t.Helper()
	src, err := gadget.NewEventSource(gadget.SourceConfig{
		Events: 1000, Keys: 10, Seed: 1, WatermarkEvery: 100,
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	return src
}

func TestGenerateCustom(t *testing.T) {
	op := &countingOp{}
	trace := gadget.GenerateCustom(customSource(t), op)
	if len(trace) != 2000 {
		t.Fatalf("trace len = %d", len(trace))
	}
	if op.Stats().Events != 1000 {
		t.Fatalf("events = %d", op.Stats().Events)
	}
	// The custom trace must match the built-in aggregation exactly.
	builtin, err := gadget.NewOperator(gadget.OperatorConfig{Operator: gadget.Aggregation})
	if err != nil {
		t.Fatal(err)
	}
	ref := gadget.GenerateCustom(customSource(t), builtin)
	for i := range trace {
		if trace[i].Op != ref[i].Op || trace[i].Key != ref[i].Key {
			t.Fatalf("access %d: custom %v/%v vs builtin %v/%v",
				i, trace[i].Op, trace[i].Key, ref[i].Op, ref[i].Key)
		}
	}
}

func TestRunCustomOnline(t *testing.T) {
	store, err := gadget.OpenStore(gadget.StoreConfig{Engine: "memstore"})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	res, err := gadget.RunCustomOnline(customSource(t), &countingOp{}, store, gadget.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 || res.Errors != 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestDriveEmitsInOrder(t *testing.T) {
	var times []int64
	gadget.Drive(customSource(t), &countingOp{}, func(a gadget.Access) {
		times = append(times, a.Time)
	})
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("emit order regressed at %d", i)
		}
	}
}

func TestNewEventSourceTwoStream(t *testing.T) {
	src, err := gadget.NewEventSource(gadget.SourceConfig{Events: 50, Keys: 5, Seed: 2}, true)
	if err != nil {
		t.Fatal(err)
	}
	streams := map[uint8]int{}
	op := &countingOp{}
	gadget.Drive(src, op, func(gadget.Access) {})
	_ = streams
	if op.Stats().Events != 100 {
		t.Fatalf("two-stream events = %d", op.Stats().Events)
	}
}

func TestNewEventSourceValidation(t *testing.T) {
	if _, err := gadget.NewEventSource(gadget.SourceConfig{Type: "nope"}, false); err == nil {
		t.Fatal("bad source type should fail")
	}
}
