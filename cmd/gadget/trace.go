package main

import (
	"flag"
	"fmt"
	"sort"
	"strings"
	"time"

	"gadget/internal/obs"
	"gadget/internal/tracing"
)

// cmdTrace pretty-prints the slow_ops section of a JSON run report as
// per-stage waterfall lines, plus the aggregate stage summaries. It
// exits non-zero when the report carries no traces, so CI smokes can
// assert that tracing actually attributed latency.
func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	reportPath := fs.String("report", "", "JSON run report (gadget.report/v1) written by a run with obs.trace enabled")
	n := fs.Int("n", 0, "print at most the N slowest traces (0 = all retained)")
	showSample := fs.Bool("sample", false, "also print the uniform trace sample")
	require := fs.String("require-stages", "", "comma-separated stage names that must appear in the aggregates (exit non-zero otherwise)")
	fs.Parse(args)
	if *reportPath == "" {
		return fmt.Errorf("-report is required")
	}
	rep, err := obs.ReadReport(*reportPath)
	if err != nil {
		return err
	}
	so := rep.SlowOps
	if so == nil || len(so.Slowest) == 0 {
		return fmt.Errorf("report %s has no slow_ops traces (run with obs.trace enabled)", *reportPath)
	}

	fmt.Printf("traced %d ops (1 in %d sampled), %d slowest retained\n\n", so.Traced, so.SampleN, len(so.Slowest))
	slowest := so.Slowest
	if *n > 0 && *n < len(slowest) {
		slowest = slowest[:*n]
	}
	for i, op := range slowest {
		printWaterfall(fmt.Sprintf("#%d", i+1), op)
	}
	if *showSample && len(so.Sample) > 0 {
		fmt.Printf("uniform sample (%d traces):\n\n", len(so.Sample))
		for _, op := range so.Sample {
			printWaterfall(" ", op)
		}
	}
	printStageSummaries(so)

	if *require != "" {
		var missing []string
		for _, name := range strings.Split(*require, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if s, ok := so.Stages[name]; !ok || s.Count == 0 {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			return fmt.Errorf("report %s has no data for required stages: %s", *reportPath, strings.Join(missing, ", "))
		}
	}
	return nil
}

// stageOrder returns the canonical stage names in attribution order
// (the order a traced op passes through the stack).
func stageOrder() []string {
	out := make([]string, tracing.NumStages)
	for s := 0; s < tracing.NumStages; s++ {
		out[s] = tracing.Stage(s).String()
	}
	return out
}

// printWaterfall renders one trace as per-stage bars scaled to the
// trace's end-to-end duration.
func printWaterfall(tag string, op tracing.SlowOp) {
	head := fmt.Sprintf("%s id=%d op=%s total=%s", tag, op.ID, op.Op, fmtDur(op.TotalNs))
	if op.Attempts > 0 {
		head += fmt.Sprintf(" retries=%d", op.Attempts)
	}
	fmt.Println(head)
	const width = 24
	for _, name := range stageOrder() {
		d, ok := op.Stages[name]
		if !ok || d <= 0 {
			continue
		}
		frac := 0.0
		if op.TotalNs > 0 {
			frac = float64(d) / float64(op.TotalNs)
			if frac > 1 {
				frac = 1
			}
		}
		filled := int(frac*width + 0.5)
		bar := strings.Repeat("#", filled) + strings.Repeat(".", width-filled)
		fmt.Printf("   %-10s |%s| %5.1f%%  %s\n", name, bar, 100*frac, fmtDur(d))
	}
	fmt.Println()
}

// printStageSummaries renders the aggregate per-stage table sorted by
// attribution order (unknown stages last, alphabetically).
func printStageSummaries(so *tracing.SlowOps) {
	if len(so.Stages) == 0 {
		return
	}
	order := map[string]int{}
	for i, name := range stageOrder() {
		order[name] = i
	}
	names := make([]string, 0, len(so.Stages))
	for name := range so.Stages {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		oi, iok := order[names[i]]
		oj, jok := order[names[j]]
		if iok != jok {
			return iok
		}
		if iok && jok && oi != oj {
			return oi < oj
		}
		return names[i] < names[j]
	})
	fmt.Println("stage aggregates:")
	fmt.Printf("   %-10s %10s %12s %12s %12s %12s\n", "stage", "count", "p50", "p99", "max", "mean")
	for _, name := range names {
		s := so.Stages[name]
		fmt.Printf("   %-10s %10d %12s %12s %12s %12s\n",
			name, s.Count, fmtDur(s.P50Ns), fmtDur(s.P99Ns), fmtDur(s.MaxNs), fmtDur(s.MeanNs))
	}
}

// fmtDur renders nanoseconds with microsecond resolution.
func fmtDur(ns int64) string {
	return time.Duration(ns).Round(100 * time.Nanosecond).String()
}
