package main

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"gadget"
	"gadget/internal/obs"
	"gadget/internal/replay"
)

// defaultSampleInterval is the telemetry sampler period when no
// obs.sample_interval_ms is configured.
const defaultSampleInterval = time.Second

// telemetry bundles one run's observability surfaces: the metrics
// listener, the run sampler, and the report writer. A nil *telemetry is
// valid and inert, so call sites don't need to branch on whether any
// surface was requested.
type telemetry struct {
	reg     *obs.Registry
	srv     *obs.MetricsServer
	sampler *obs.Sampler
	store   gadget.Store
	tracer  *gadget.Tracer

	engine      string
	reportPath  string
	engineStart map[string]int64

	mu   sync.Mutex
	cols []*replay.Collector
}

// startTelemetry assembles the observability rig for a run against
// store. metricsAddr and reportPath are the flag values; when empty they
// fall back to the config's obs section (which may be nil). Returns nil
// when no surface is active (no listener, no report, not a terminal).
func startTelemetry(metricsAddr, reportPath string, obsCfg *gadget.ObsConfig, store gadget.Store, engine string) (*telemetry, error) {
	interval := defaultSampleInterval
	if obsCfg != nil {
		interval = time.Duration(obsCfg.SampleIntervalMs) * time.Millisecond
		if metricsAddr == "" {
			metricsAddr = obsCfg.MetricsAddr
		}
		if reportPath == "" {
			reportPath = obsCfg.ReportPath
		}
	}
	var tracer *gadget.Tracer
	if obsCfg != nil && obsCfg.Trace {
		tracer = gadget.NewTracer(gadget.TracerOptions{
			SampleN: obsCfg.TraceSampleN,
			SlowK:   obsCfg.TraceSlowK,
		})
	}
	progress := progressWriter()
	if metricsAddr == "" && reportPath == "" && progress == nil && tracer == nil {
		return nil, nil
	}
	t := &telemetry{
		store:       store,
		engine:      engine,
		reportPath:  reportPath,
		engineStart: gadget.StoreMetrics(store),
		tracer:      tracer,
	}
	if metricsAddr != "" {
		t.reg = obs.NewRegistry()
		obs.RegisterStoreCollector(t.reg, store)
		obs.RegisterTracerCollector(t.reg, tracer)
		srv, err := obs.Serve(metricsAddr, t.reg)
		if err != nil {
			return nil, fmt.Errorf("metrics listener: %w", err)
		}
		t.srv = srv
		fmt.Fprintf(os.Stderr, "metrics on http://%s/metrics (expvar at /debug/vars, pprof at /debug/pprof)\n", srv.Addr())
	}
	sampler, err := obs.StartSampler(obs.SamplerOptions{
		Interval: interval,
		Snapshot: t.snapshot,
		Store:    store,
		Progress: progress,
		Registry: t.reg,
	})
	if err != nil {
		if t.srv != nil {
			t.srv.Close()
		}
		return nil, err
	}
	t.sampler = sampler
	return t, nil
}

// progressWriter returns os.Stderr when it is a terminal, else nil (no
// live progress lines into pipes or logs).
func progressWriter() io.Writer {
	fi, err := os.Stderr.Stat()
	if err != nil || fi.Mode()&os.ModeCharDevice == 0 {
		return nil
	}
	return os.Stderr
}

// traceSampler returns the run tracer for replay Options.Tracer (nil
// when tracing is off or no telemetry is active).
func (t *telemetry) traceSampler() *gadget.Tracer {
	if t == nil {
		return nil
	}
	return t.tracer
}

// observer is the replay.Options.Observer hook: it registers every
// collector the run creates so snapshot can fold them.
func (t *telemetry) observer() func(*replay.Collector) {
	if t == nil {
		return nil
	}
	return func(c *replay.Collector) {
		t.mu.Lock()
		t.cols = append(t.cols, c)
		t.mu.Unlock()
	}
}

// snapshot merges the live collectors' measurements.
func (t *telemetry) snapshot() replay.Result {
	t.mu.Lock()
	cols := append([]*replay.Collector(nil), t.cols...)
	t.mu.Unlock()
	results := make([]replay.Result, len(cols))
	for i, c := range cols {
		results[i] = c.Snapshot()
	}
	return replay.MergeResults(results)
}

// finish seals the run: it stops the sampler with the final result,
// writes the report if one was requested, and shuts the listener down.
// configEcho is embedded in the report's config field.
func (t *telemetry) finish(final gadget.Result, configEcho any) error {
	if t == nil {
		return nil
	}
	series := t.sampler.Stop(final)
	if t.srv != nil {
		defer t.srv.Close()
	}
	if t.reportPath == "" {
		return nil
	}
	engineEnd := gadget.StoreMetrics(t.store)
	rep := &obs.Report{
		Store:       t.engine,
		Config:      configEcho,
		Result:      obs.Summarize(final),
		EngineStart: t.engineStart,
		EngineEnd:   engineEnd,
		EngineDelta: final.Engine,
		Series:      series,
		SlowOps:     gadget.TracerSnapshot(t.tracer),
	}
	if err := obs.WriteReport(t.reportPath, rep); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "report written to %s\n", t.reportPath)
	return nil
}
