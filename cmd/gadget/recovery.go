package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"gadget"
)

// currentStore is a switchable store handle: recovery runs reopen the
// store after every crash, but the telemetry rig captures one Store at
// startup. The factory points this at each new attempt so the sampler
// and /metrics always read the live instance.
type currentStore struct {
	mu sync.Mutex
	s  gadget.Store
}

func (c *currentStore) set(s gadget.Store) { c.mu.Lock(); c.s = s; c.mu.Unlock() }

func (c *currentStore) get() gadget.Store { c.mu.Lock(); defer c.mu.Unlock(); return c.s }

func (c *currentStore) Get(key []byte) ([]byte, error)  { return c.get().Get(key) }
func (c *currentStore) Put(key, value []byte) error     { return c.get().Put(key, value) }
func (c *currentStore) Merge(key, operand []byte) error { return c.get().Merge(key, operand) }
func (c *currentStore) Delete(key []byte) error         { return c.get().Delete(key) }
func (c *currentStore) Close() error                    { return nil } // lifecycle owned by the factory

// Metrics implements kv.Introspector by delegation, so engine counters
// keep flowing across attempts.
func (c *currentStore) Metrics() map[string]int64 {
	s := c.get()
	if s == nil {
		return nil
	}
	return gadget.StoreMetrics(s)
}

// runRecovery is the crash-recovery run path of `gadget run`, taken
// when the config sets run.checkpoint_every_ops and/or
// store.chaos.crash_at_ops. The trace is materialized up front (the
// crash schedule addresses logical op positions, and post-crash replay
// must re-issue identical operations), each attempt opens the store in
// its own subdirectory (crash = the previous attempt's local state is
// abandoned, the Flink recovery model), and checkpoints go to
// run.checkpoint_dir, which stands in for durable external storage.
func runRecovery(cfg gadget.Config, w *gadget.Workload, metricsAddr, reportPath string) error {
	tr, err := w.Generate()
	if err != nil {
		return err
	}
	ckDir := cfg.Run.CheckpointDir
	if ckDir == "" {
		if cfg.Store.Dir != "" {
			ckDir = cfg.Store.Dir + "-checkpoints"
		} else {
			tmp, err := os.MkdirTemp("", "gadget-checkpoints-*")
			if err != nil {
				return err
			}
			defer os.RemoveAll(tmp)
			ckDir = tmp
		}
	}
	var ck *gadget.Checkpointer
	if cfg.Run.CheckpointEveryOps > 0 {
		ck = &gadget.Checkpointer{Dir: ckDir, Engine: cfg.Store.Engine}
	}
	opts, err := cfg.RecoveryOptions(ck)
	if err != nil {
		return err
	}

	cur := &currentStore{}
	tel, err := startTelemetry(metricsAddr, reportPath, cfg.Obs, cur, cfg.Store.Engine)
	if err != nil {
		return err
	}
	opts.Observer = tel.observer()

	var last gadget.Store
	open := func(attempt int) (gadget.Attempt, error) {
		scfg := cfg.Store
		if scfg.Dir != "" {
			scfg.Dir = filepath.Join(cfg.Store.Dir, fmt.Sprintf("attempt-%d", attempt))
		}
		s, err := gadget.OpenStore(scfg)
		if err != nil {
			return gadget.Attempt{}, err
		}
		last = s
		cur.set(s)
		// Crash is left nil: on the real filesystem the teardown is a
		// plain Close, and the crash's state loss comes from abandoning
		// the attempt directory. Severed-filesystem crashes (in-flight
		// writes lost) are exercised by `gadget campaign` and the
		// differential crash suites, which run on a FaultFS.
		return gadget.Attempt{Store: s}, nil
	}
	res, err := gadget.RunWithRecovery(open, tr, opts)
	if last != nil {
		defer last.Close()
	}
	if err != nil {
		tel.finish(res, cfg)
		return err
	}
	if ferr := tel.finish(res, cfg); ferr != nil {
		return ferr
	}
	fmt.Printf("operator   %s\n", cfg.Operator.Operator)
	fmt.Printf("engine     %s\n", cfg.Store.Engine)
	if ck != nil {
		fmt.Printf("checkpoint %s (every %d ops)\n", ckDir, cfg.Run.CheckpointEveryOps)
	}
	printResult(res)
	return nil
}

func cmdCampaign(args []string) error {
	fs := flag.NewFlagSet("campaign", flag.ExitOnError)
	cfgPath := fs.String("config", "", "JSON configuration file (workload and store sizing)")
	engines := fs.String("engines", "", "comma-separated engines to sweep (default: every local engine)")
	crashAt := fs.String("crash-at", "", "comma-separated crash points in ops (default: 0 and half the trace)")
	intervals := fs.String("ckpt-every", "", "comma-separated checkpoint intervals in ops (default: 0 and a tenth of the trace)")
	out := fs.String("out", "results/campaign.json", "robustness matrix JSON output path")
	fs.Parse(args)
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		return err
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		return err
	}
	tr, err := w.Generate()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "campaign: trace has %d accesses\n", len(tr))
	opts := gadget.CampaignOptions{Trace: tr, Store: cfg.Store}
	if *engines != "" {
		opts.Engines = strings.Split(*engines, ",")
	}
	if opts.CrashPoints, err = parseU64List(*crashAt); err != nil {
		return fmt.Errorf("-crash-at: %w", err)
	}
	if opts.Intervals, err = parseU64List(*intervals); err != nil {
		return fmt.Errorf("-ckpt-every: %w", err)
	}
	m, err := gadget.RunCampaign(opts, func(format string, a ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", a...)
	})
	if err != nil {
		return err
	}
	data, err := m.JSON()
	if err != nil {
		return err
	}
	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		return err
	}
	if err := m.WriteTable(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("matrix written to %s\n", *out)
	return nil
}

func parseU64List(s string) ([]uint64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]uint64, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
