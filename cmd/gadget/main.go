// Command gadget is the benchmark harness CLI. It generates streaming
// state access workloads from a JSON configuration and either issues
// them to a KV store online (collecting latency and throughput) or
// writes them to a trace file for later replay.
//
// Usage:
//
//	gadget run      -config cfg.json           online run (source -> operator -> store)
//	gadget generate -config cfg.json           offline: write the trace in run.trace_path
//	gadget replay   -trace t.bin -engine NAME  replay a trace against a store
//	gadget analyze  -trace t.bin               characterize a trace (paper §3 metrics)
//	gadget list                                list operators, engines, and datasets
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gadget"
	"gadget/internal/datasets"
	"gadget/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "run":
		err = cmdRun(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "findrate":
		err = cmdFindRate(os.Args[2:])
	case "campaign":
		err = cmdCampaign(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "gadget: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "gadget: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gadget <command> [flags]

commands:
  run       -config cfg.json             run the configured store (run.mode: online or open_loop)
  generate  -config cfg.json             write the state access trace (offline mode)
  replay    -trace t.bin -engine NAME -dir DIR [-addr HOST:PORT] [-rate N] [-concurrency N]
            [-open-loop] [-poisson] [-max-in-flight N]   open-loop: -rate is the offered rate
  findrate  -trace t.bin -engine NAME -low N [-high N] [-slo-p99-ms N] [-max-overload-frac F]
            search the max sustainable offered rate under an intended-arrival p99 SLO
  campaign  -config cfg.json [-engines a,b] [-crash-at n,m] [-ckpt-every n,m] [-out results/campaign.json]
            sweep engines x crash points x checkpoint intervals; emit the RTO/RPO robustness matrix
  analyze   -trace t.bin                 print workload characterization metrics
  trace     -report report.json [-n N] [-sample] [-require-stages a,b]
            pretty-print the report's slow_ops traces as per-stage waterfalls
  list                                   list operators, engines, datasets

crash recovery: a run config with run.checkpoint_every_ops and/or
store.chaos.crash_at_ops replays through scripted mid-run crashes,
restoring from the newest checkpoint in run.checkpoint_dir and
reporting recoveries, RTO, and replayed ops.`)
}

func loadConfig(path string) (gadget.Config, error) {
	if path == "" {
		return gadget.Config{}, fmt.Errorf("-config is required")
	}
	return gadget.LoadConfig(path)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	cfgPath := fs.String("config", "", "JSON configuration file")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address (overrides obs.metrics_addr)")
	reportPath := fs.String("report", "", "write a JSON run report to this path (overrides obs.report_path)")
	fs.Parse(args)
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		return err
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		return err
	}
	if cfg.Store.Dir == "" && cfg.Store.Engine != "memstore" {
		dir, err := os.MkdirTemp("", "gadget-run-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		cfg.Store.Dir = dir
	}
	if cfg.Recovery() {
		return runRecovery(cfg, w, *metricsAddr, *reportPath)
	}
	// Traced remote clients negotiate server handle stamps at hello, so
	// the flag must be set before the store is dialed.
	cfg.Store.Traced = cfg.Traced()
	store, err := gadget.OpenStore(cfg.Store)
	if err != nil {
		return err
	}
	defer store.Close()
	tel, err := startTelemetry(*metricsAddr, *reportPath, cfg.Obs, store, cfg.Store.Engine)
	if err != nil {
		return err
	}
	var res gadget.Result
	if cfg.Run.Mode == "open_loop" {
		opts, oerr := cfg.OpenLoopOptions()
		if oerr != nil {
			return oerr
		}
		opts.Observer = tel.observer()
		opts.Tracer = tel.traceSampler()
		res, err = w.RunOpenLoop(store, opts)
	} else {
		res, err = w.RunOnline(store, gadget.ReplayOptions{
			ServiceRate:  cfg.Run.ServiceRate,
			SampleEvery:  cfg.Run.SampleEvery,
			StallTimeout: time.Duration(cfg.Run.StallTimeoutMs) * time.Millisecond,
			Observer:     tel.observer(),
			Tracer:       tel.traceSampler(),
		})
	}
	if err != nil && !errors.Is(err, gadget.ErrStalled) {
		tel.finish(res, cfg)
		return err
	}
	if ferr := tel.finish(res, cfg); ferr != nil {
		return ferr
	}
	fmt.Printf("operator   %s\n", cfg.Operator.Operator)
	fmt.Printf("engine     %s\n", cfg.Store.Engine)
	printResult(res)
	if slo := cfg.Run.SLOP99Ms; slo > 0 && res.IntendedLatency != nil {
		verdict := "MET"
		if res.IntendedP99Micros() > slo*1000 || res.Degraded {
			verdict = "VIOLATED"
		}
		fmt.Printf("slo        intended p99 <= %.1fms: %s\n", slo, verdict)
	}
	if errors.Is(err, gadget.ErrStalled) {
		return fmt.Errorf("run stalled after %d ops (partial results above)", res.Ops)
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	cfgPath := fs.String("config", "", "JSON configuration file")
	out := fs.String("out", "", "trace output path (overrides run.trace_path)")
	fs.Parse(args)
	cfg, err := loadConfig(*cfgPath)
	if err != nil {
		return err
	}
	path := cfg.Run.TracePath
	if *out != "" {
		path = *out
	}
	if path == "" {
		return fmt.Errorf("no trace path: set run.trace_path or -out")
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		return err
	}
	tr, err := w.Generate()
	if err != nil {
		return err
	}
	if err := gadget.WriteTrace(path, tr); err != nil {
		return err
	}
	fmt.Printf("wrote %d accesses to %s\n", len(tr), path)
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file")
	engine := fs.String("engine", "memstore", "store engine")
	addr := fs.String("addr", "", "server address for -engine remote")
	dir := fs.String("dir", "", "store directory (temp dir when empty)")
	rate := fs.Float64("rate", 0, "service rate in ops/second (0 = unthrottled); with -open-loop, the offered arrival rate (required)")
	conc := fs.Int("concurrency", 1, "concurrent replayers sharing the store")
	stall := fs.Duration("stall-timeout", 0, "abort the run if no progress for this long (0 = off)")
	openLoop := fs.Bool("open-loop", false, "open-loop replay: dispatch on intended arrival times, measure coordinated-omission-free latency")
	poisson := fs.Bool("poisson", false, "with -open-loop, use Poisson arrivals at -rate instead of constant spacing")
	maxInFlight := fs.Int("max-in-flight", 0, "with -open-loop, bound on queued-but-unserviced events (0 = default)")
	seed := fs.Int64("seed", 1, "with -open-loop -poisson, RNG seed for the arrival schedule")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
	reportPath := fs.String("report", "", "write a JSON run report to this path")
	fs.Parse(args)
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	if *openLoop {
		if *rate <= 0 {
			return fmt.Errorf("-open-loop requires -rate > 0 (the offered arrival rate)")
		}
		if *conc > 1 {
			return fmt.Errorf("-open-loop replays with a single service worker; drop -concurrency")
		}
	}
	tr, err := gadget.ReadTrace(*tracePath)
	if err != nil {
		return err
	}
	storeDir := *dir
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "gadget-replay-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		storeDir = filepath.Join(tmp, "db")
	}
	store, err := gadget.OpenStore(gadget.StoreConfig{Engine: *engine, Dir: storeDir, Addr: *addr})
	if err != nil {
		return err
	}
	defer store.Close()
	tel, err := startTelemetry(*metricsAddr, *reportPath, nil, store, *engine)
	if err != nil {
		return err
	}
	configEcho := map[string]any{
		"trace": *tracePath, "engine": *engine, "rate": *rate,
		"concurrency": *conc, "stall_timeout_ms": stall.Milliseconds(),
		"open_loop": *openLoop,
	}
	if *openLoop {
		oopts := gadget.OpenLoopOptions{
			Rate:         *rate,
			MaxInFlight:  *maxInFlight,
			StallTimeout: *stall,
			Observer:     tel.observer(),
		}
		if *poisson {
			oopts.Arrivals = gadget.PoissonArrivals(*rate, *seed)
			configEcho["arrival"] = "poisson"
		} else {
			configEcho["arrival"] = "constant"
		}
		res, err := gadget.ReplayOpenLoop(store, tr, oopts)
		if err != nil {
			tel.finish(res, configEcho)
			return err
		}
		if ferr := tel.finish(res, configEcho); ferr != nil {
			return ferr
		}
		printResult(res)
		return nil
	}
	opts := gadget.ReplayOptions{ServiceRate: *rate, StallTimeout: *stall, Observer: tel.observer()}
	if *conc <= 1 {
		res, err := gadget.Replay(store, tr, opts)
		if err != nil {
			tel.finish(res, configEcho)
			return err
		}
		if ferr := tel.finish(res, configEcho); ferr != nil {
			return ferr
		}
		printResult(res)
		return nil
	}
	traces := make([][]gadget.Access, *conc)
	for i := range traces {
		traces[i] = tr
	}
	results, err := gadget.ReplayConcurrent(store, traces, opts)
	merged := gadget.MergeResults(results)
	if err != nil {
		tel.finish(merged, configEcho)
		return err
	}
	if ferr := tel.finish(merged, configEcho); ferr != nil {
		return ferr
	}
	for i, res := range results {
		fmt.Printf("replayer %d:\n", i)
		printResult(res)
	}
	return nil
}

func cmdFindRate(args []string) error {
	fs := flag.NewFlagSet("findrate", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file")
	engine := fs.String("engine", "memstore", "store engine")
	addr := fs.String("addr", "", "server address for -engine remote")
	dir := fs.String("dir", "", "store directory (temp dir when empty)")
	low := fs.Float64("low", 0, "lower bound of the rate search in ops/second (required)")
	high := fs.Float64("high", 0, "upper bound of the rate search (0 = discover by doubling)")
	sloP99 := fs.Float64("slo-p99-ms", 10, "intended-arrival p99 latency SLO in milliseconds")
	maxOverload := fs.Float64("max-overload-frac", 0.01, "max fraction of offered events that may hit queue overload")
	tol := fs.Float64("tolerance", 0, "relative bisection tolerance (0 = default)")
	maxProbes := fs.Int("max-probes", 0, "probe budget for the search (0 = default)")
	maxInFlight := fs.Int("max-in-flight", 0, "bound on queued-but-unserviced events per probe (0 = default)")
	stall := fs.Duration("stall-timeout", 0, "abort a probe if no progress for this long (0 = off)")
	fs.Parse(args)
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	if *low <= 0 {
		return fmt.Errorf("-low is required and must be positive")
	}
	tr, err := gadget.ReadTrace(*tracePath)
	if err != nil {
		return err
	}
	storeDir := *dir
	if storeDir == "" {
		tmp, err := os.MkdirTemp("", "gadget-findrate-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		storeDir = filepath.Join(tmp, "db")
	}
	store, err := gadget.OpenStore(gadget.StoreConfig{Engine: *engine, Dir: storeDir, Addr: *addr})
	if err != nil {
		return err
	}
	defer store.Close()
	res, err := gadget.FindSustainableRate(store, tr, gadget.RateSearchOptions{
		Low:       *low,
		High:      *high,
		Tolerance: *tol,
		MaxProbes: *maxProbes,
		SLO: gadget.SLO{
			P99:             time.Duration(*sloP99 * float64(time.Millisecond)),
			MaxOverloadFrac: *maxOverload,
		},
		Open: gadget.OpenLoopOptions{MaxInFlight: *maxInFlight, StallTimeout: *stall},
	})
	if err != nil {
		return err
	}
	for _, p := range res.Probes {
		verdict := "FAIL"
		if p.Pass {
			verdict = "pass"
		}
		fmt.Printf("probe %10.0f ops/s  %s  ip99=%-10v overload=%.4f\n",
			p.Rate, verdict, p.P99.Round(time.Microsecond), p.OverloadFrac)
	}
	if res.Sustainable <= 0 {
		fmt.Printf("no sustainable rate at or above %.0f ops/s under the SLO\n", *low)
		return nil
	}
	fmt.Printf("sustainable %.0f ops/s (p99 <= %.1fms, overload <= %.2f%%, %d probes)\n",
		res.Sustainable, *sloP99, *maxOverload*100, len(res.Probes))
	return nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	tracePath := fs.String("trace", "", "trace file")
	fs.Parse(args)
	if *tracePath == "" {
		return fmt.Errorf("-trace is required")
	}
	tr, err := gadget.ReadTrace(*tracePath)
	if err != nil {
		return err
	}
	a := gadget.Analyze(tr)
	fmt.Printf("accesses            %d\n", len(tr))
	fmt.Printf("composition         get=%.3f put=%.3f merge=%.3f delete=%.3f scan=%.3f\n",
		a.GetShare, a.PutShare, a.MergeShare, a.DeleteShare, a.ScanShare)
	fmt.Printf("distinct state keys %d\n", a.DistinctKeys)
	fmt.Printf("mean stack distance %.2f\n", a.MeanStackDistance)
	fmt.Printf("unique 10-sequences %d\n", a.UniqueSeq10)
	fmt.Printf("max working set     %d\n", a.MaxWorkingSet)
	fmt.Printf("TTL (steps)         p50=%.0f p90=%.0f p99.9=%.0f max=%.0f\n",
		a.TTL.P50, a.TTL.P90, a.TTL.P999, a.TTL.Max)
	fmt.Printf("cache for 10%% miss  %d entries (Mattson LRU curve)\n",
		gadget.RecommendCacheSize(tr, 0.10))
	return nil
}

func cmdList() error {
	fmt.Println("operators:")
	for _, op := range gadget.OperatorTypes() {
		fmt.Printf("  %s\n", op)
	}
	fmt.Println("engines:")
	for _, e := range gadget.Engines() {
		fmt.Printf("  %s\n", e)
	}
	fmt.Println("datasets:")
	for _, d := range datasets.Names() {
		fmt.Printf("  %s\n", d)
	}
	return nil
}

func printResult(res gadget.Result) {
	fmt.Printf("operations %d (misses %d, errors %d)\n", res.Ops, res.Misses, res.Errors)
	if res.Errors > 0 {
		fmt.Printf("errors     transient=%d fatal=%d\n", res.TransientErrors, res.FatalErrors)
	}
	if res.Retries > 0 || res.Timeouts > 0 || res.BreakerTrips > 0 || res.DegradedOps > 0 {
		fmt.Printf("resilience retries=%d timeouts=%d breaker_trips=%d degraded_ops=%d\n",
			res.Retries, res.Timeouts, res.BreakerTrips, res.DegradedOps)
	}
	if res.Degraded {
		fmt.Println("DEGRADED   partial result: run aborted before completion")
	}
	if res.Recoveries > 0 || res.Checkpoints > 0 {
		fmt.Printf("recovery   recoveries=%d rto=%v replayed_ops=%d checkpoints=%d ckpt_cost=%v ckpt_bytes=%d\n",
			res.Recoveries, res.RecoveryTime.Round(time.Microsecond), res.ReplayedOps,
			res.Checkpoints, res.CheckpointCost.Round(time.Microsecond), res.CheckpointBytes)
	}
	fmt.Printf("duration   %v\n", res.Duration.Round(1e6))
	fmt.Printf("throughput %.0f ops/s\n", res.Throughput)
	// Same single Quantiles pass as Result.String() and the exposition.
	q := res.Latency.Quantiles(stats.SummaryQuantiles)
	fmt.Printf("latency    mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus p99.9=%.2fus\n",
		res.MeanMicros(), float64(q[0])/1e3, float64(q[1])/1e3, float64(q[2])/1e3, float64(q[3])/1e3)
	if res.Offered > 0 {
		fmt.Printf("open-loop  offered=%.0f/s achieved=%.0f/s overload=%d max_lag=%v\n",
			res.OfferedRate, res.AchievedRate, res.Overload, res.MaxLag.Round(time.Microsecond))
		if res.IntendedLatency != nil {
			fmt.Printf("intended   p50=%.2fus p99=%.2fus p99.9=%.2fus (coordinated-omission-free)\n",
				float64(res.IntendedLatency.Quantile(0.50))/1e3,
				res.IntendedP99Micros(),
				float64(res.IntendedLatency.Quantile(0.999))/1e3)
		}
	}
}
