// Command gadget-experiments regenerates every table and figure of the
// paper's evaluation at a configurable scale and reports PASS/WARN shape
// checks against the paper's qualitative claims.
//
// Usage:
//
//	gadget-experiments                      run everything at the default scale
//	gadget-experiments -run table1,fig13    run a subset
//	gadget-experiments -scale quick         CI-sized smoke run
//	gadget-experiments -out results.txt     also write the reports to a file
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gadget/internal/experiments"
)

func main() {
	runList := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	withAblations := flag.Bool("ablations", false, "also run the design-choice ablations")
	scaleName := flag.String("scale", "default", "scale preset: default | quick")
	out := flag.String("out", "", "also write reports to this file")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "default":
		scale = experiments.DefaultScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want default|quick)\n", *scaleName)
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	wanted := map[string]bool{}
	if *runList != "all" {
		for _, id := range strings.Split(*runList, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	all := experiments.All()
	if *withAblations || anyAblation(wanted) {
		all = append(all, experiments.Ablations()...)
	}
	failures := 0
	warns := 0
	for _, e := range all {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		start := time.Now()
		rep, err := e.Run(scale)
		if err != nil {
			fmt.Fprintf(w, "== %s: ERROR: %v ==\n\n", e.ID, err)
			failures++
			continue
		}
		fmt.Fprintf(w, "%s(%v)\n\n", rep.String(), time.Since(start).Round(time.Millisecond))
		warns += len(rep.Failed())
	}
	fmt.Fprintf(w, "done: %d errors, %d shape warnings\n", failures, warns)
	if failures > 0 {
		os.Exit(1)
	}
}

// anyAblation reports whether an explicitly requested id is an ablation,
// so "-run ablate-bloom" works without the -ablations flag.
func anyAblation(wanted map[string]bool) bool {
	for id := range wanted {
		if _, ok := experiments.AblationByID(id); ok {
			return true
		}
	}
	return false
}
