package main

import (
	"errors"
	"testing"

	"gadget"
)

// End-to-end round trip: an LSM store served over TCP must produce the
// same replay results and the same final state as the same engine
// embedded in-process.
func TestServerRoundTripEquivalence(t *testing.T) {
	srv, backing, err := serve("rocksdb", t.TempDir(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { srv.Close(); backing.Close() }()

	// A small but representative workload: a windowed aggregation whose
	// accesses mix gets, puts, merges, and deletes.
	cfg := gadget.Config{
		Source: gadget.SourceConfig{Events: 5000, Keys: 64, Seed: 42},
		Run:    gadget.RunConfig{Mode: "online"},
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}

	remoteStore, err := gadget.OpenStore(gadget.StoreConfig{Engine: "remote", Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteStore.Close()
	embedded, err := gadget.OpenStore(gadget.StoreConfig{Engine: "rocksdb", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer embedded.Close()

	resRemote, err := gadget.Replay(remoteStore, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatalf("remote replay: %v", err)
	}
	resLocal, err := gadget.Replay(embedded, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatalf("embedded replay: %v", err)
	}

	if resRemote.Ops != resLocal.Ops || resRemote.Ops != uint64(len(tr)) {
		t.Fatalf("ops diverge: remote %d, embedded %d, trace %d", resRemote.Ops, resLocal.Ops, len(tr))
	}
	if resRemote.Errors != 0 || resLocal.Errors != 0 {
		t.Fatalf("errors: remote %d, embedded %d", resRemote.Errors, resLocal.Errors)
	}
	if resRemote.Misses != resLocal.Misses {
		t.Fatalf("misses diverge: remote %d, embedded %d", resRemote.Misses, resLocal.Misses)
	}

	// Final state over every key the trace touched must match.
	keys := map[gadget.StateKey]struct{}{}
	for _, a := range tr {
		keys[a.Key] = struct{}{}
	}
	if len(keys) == 0 {
		t.Fatal("trace touched no keys")
	}
	var buf [16]byte
	for k := range keys {
		enc := k.Encode(buf[:0])
		want, wantErr := embedded.Get(enc)
		got, err := remoteStore.Get(enc)
		if errors.Is(wantErr, gadget.ErrNotFound) {
			if !errors.Is(err, gadget.ErrNotFound) {
				t.Fatalf("key %v should be absent remotely, got %q (err %v)", k, got, err)
			}
			continue
		}
		if wantErr != nil {
			t.Fatalf("embedded Get(%v): %v", k, wantErr)
		}
		if err != nil || string(got) != string(want) {
			t.Fatalf("key %v: remote %q (err %v), embedded %q", k, got, err, want)
		}
	}
}

// The server helper surfaces engine misconfiguration instead of
// starting a broken listener.
func TestServeRejectsBadEngine(t *testing.T) {
	if _, _, err := serve("no-such-engine", t.TempDir(), "127.0.0.1:0"); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, _, err := serve("remote", "", "127.0.0.1:0"); err == nil {
		t.Fatal("serving the remote engine over itself accepted")
	}
}
