package main

import (
	"errors"
	"io"
	"strings"
	"testing"

	"gadget"
)

// End-to-end round trip: an LSM store served over TCP must produce the
// same replay results and the same final state as the same engine
// embedded in-process.
func TestServerRoundTripEquivalence(t *testing.T) {
	srv, backing, err := serveCluster([]string{"rocksdb"}, t.TempDir(), "127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		for _, s := range backing {
			s.Close()
		}
	}()

	// A small but representative workload: a windowed aggregation whose
	// accesses mix gets, puts, merges, and deletes.
	cfg := gadget.Config{
		Source: gadget.SourceConfig{Events: 5000, Keys: 64, Seed: 42},
		Run:    gadget.RunConfig{Mode: "online"},
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}

	remoteStore, err := gadget.OpenStore(gadget.StoreConfig{Engine: "remote", Addr: srv.Addrs()[0]})
	if err != nil {
		t.Fatal(err)
	}
	defer remoteStore.Close()
	embedded, err := gadget.OpenStore(gadget.StoreConfig{Engine: "rocksdb", Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer embedded.Close()

	resRemote, err := gadget.Replay(remoteStore, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatalf("remote replay: %v", err)
	}
	resLocal, err := gadget.Replay(embedded, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatalf("embedded replay: %v", err)
	}

	if resRemote.Ops != resLocal.Ops || resRemote.Ops != uint64(len(tr)) {
		t.Fatalf("ops diverge: remote %d, embedded %d, trace %d", resRemote.Ops, resLocal.Ops, len(tr))
	}
	if resRemote.Errors != 0 || resLocal.Errors != 0 {
		t.Fatalf("errors: remote %d, embedded %d", resRemote.Errors, resLocal.Errors)
	}
	if resRemote.Misses != resLocal.Misses {
		t.Fatalf("misses diverge: remote %d, embedded %d", resRemote.Misses, resLocal.Misses)
	}

	// Final state over every key the trace touched must match.
	keys := map[gadget.StateKey]struct{}{}
	for _, a := range tr {
		keys[a.Key] = struct{}{}
	}
	if len(keys) == 0 {
		t.Fatal("trace touched no keys")
	}
	var buf [16]byte
	for k := range keys {
		enc := k.Encode(buf[:0])
		want, wantErr := embedded.Get(enc)
		got, err := remoteStore.Get(enc)
		if errors.Is(wantErr, gadget.ErrNotFound) {
			if !errors.Is(err, gadget.ErrNotFound) {
				t.Fatalf("key %v should be absent remotely, got %q (err %v)", k, got, err)
			}
			continue
		}
		if wantErr != nil {
			t.Fatalf("embedded Get(%v): %v", k, wantErr)
		}
		if err != nil || string(got) != string(want) {
			t.Fatalf("key %v: remote %q (err %v), embedded %q", k, got, err, want)
		}
	}
}

// A sharded cluster served over TCP must agree with an unsharded
// embedded oracle, and the sharded client must observe it through the
// standard store config surface (comma-separated addrs).
func TestShardedServerEquivalence(t *testing.T) {
	srv, backing, err := serveCluster([]string{"memstore"}, "", "127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Close()
		for _, s := range backing {
			s.Close()
		}
	}()
	if srv.Shards() != 4 {
		t.Fatalf("shards = %d", srv.Shards())
	}
	sharded, err := gadget.OpenStore(gadget.StoreConfig{
		Engine: "remote",
		Addr:   strings.Join(srv.Addrs(), ","),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	oracle, err := gadget.OpenStore(gadget.StoreConfig{Engine: "memstore"})
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()

	cfg := gadget.Config{
		Source: gadget.SourceConfig{Events: 3000, Keys: 48, Seed: 7},
		Run:    gadget.RunConfig{Mode: "online"},
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	resSharded, err := gadget.Replay(sharded, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resOracle, err := gadget.Replay(oracle, tr, gadget.ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resSharded.Ops != resOracle.Ops || resSharded.Errors != 0 || resSharded.Misses != resOracle.Misses {
		t.Fatalf("sharded %+v vs oracle %+v", resSharded, resOracle)
	}
	var buf [16]byte
	for _, a := range tr {
		enc := a.Key.Encode(buf[:0])
		want, wantErr := oracle.Get(enc)
		got, err := sharded.Get(enc)
		if errors.Is(wantErr, gadget.ErrNotFound) {
			if !errors.Is(err, gadget.ErrNotFound) {
				t.Fatalf("key %v should be absent, got %q (err %v)", a.Key, got, err)
			}
			continue
		}
		if err != nil || string(got) != string(want) {
			t.Fatalf("key %v: sharded %q (err %v), oracle %q", a.Key, got, err, want)
		}
	}
}

// The server helper surfaces engine misconfiguration instead of
// starting a broken listener.
func TestServeClusterRejectsBadEngine(t *testing.T) {
	if _, _, err := serveCluster([]string{"no-such-engine"}, t.TempDir(), "127.0.0.1:0", 1); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, _, err := serveCluster([]string{"rocksdb"}, t.TempDir(), "not-an-address", 2); err == nil {
		t.Fatal("bad address accepted")
	}
}

// Bad flags must come back as errors (non-zero exit from main) instead
// of a half-started server.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-shards", "0"},
		{"-shards", "-3"},
		{"-engine", ""},
		{"-engine", "remote"},
		{"-engine", "no-such-engine", "-addr", "127.0.0.1:0"},
		{"-addr", "not-an-address", "-engine", "memstore"},
		{"-no-such-flag"},
		{"stray-positional-arg"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// splitEngines cycles and trims.
func TestSplitEngines(t *testing.T) {
	got, err := splitEngines(" rocksdb , memstore ")
	if err != nil || len(got) != 2 || got[0] != "rocksdb" || got[1] != "memstore" {
		t.Fatalf("splitEngines = %v, %v", got, err)
	}
	if _, err := splitEngines(","); err == nil {
		t.Fatal("empty list accepted")
	}
}
