// Command gadget-server exposes KV engines over TCP for external state
// management experiments (paper §8): run one server, point any number of
// `gadget run`/`gadget replay` instances at it with `-engine remote
// -addr HOST:PORT`, and the compute and state tiers are decoupled.
//
// With -shards N the keyspace is hash-partitioned across N independent
// engines, each on its own listener (base port, port+1, ...), so request
// handling parallelizes across cores with no cross-shard locks. Clients
// configure the matching shard count via store.remote.shards or a
// comma-separated addr list.
//
// Usage:
//
//	gadget-server -engine rocksdb -dir /tmp/db -addr 127.0.0.1:7101
//	gadget-server -shards 4 -engine rocksdb,memstore -addr 127.0.0.1:7301
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"gadget"
	"gadget/internal/kv"
	"gadget/internal/obs"
	"gadget/internal/shard"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "gadget-server: %v\n", err)
		os.Exit(1)
	}
}

// run parses flags, starts the (possibly sharded) server, and blocks
// until interrupted. Configuration errors come back as errors — with the
// usage text on stderr — so main exits non-zero instead of serving a
// half-configured cluster.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gadget-server", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	engines := fs.String("engine", "rocksdb", "backing engine, or a comma-separated list cycled across shards")
	dir := fs.String("dir", "", "store directory (temp dir when empty); shard i uses <dir>/shard-<i>")
	addr := fs.String("addr", "127.0.0.1:7101", "base listen address; shard i listens on port+i (port 0: all ephemeral)")
	shards := fs.Int("shards", 1, "number of independent hash-partitioned shards")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
	readyFile := fs.String("ready-file", "", "write the comma-separated shard addresses here once all listeners are up")
	if err := fs.Parse(args); err != nil {
		return err // flag package already printed the usage text
	}
	usage := func(format string, a ...any) error {
		err := fmt.Errorf(format, a...)
		fmt.Fprintf(os.Stderr, "gadget-server: %v\n", err)
		fs.Usage()
		return err
	}
	if fs.NArg() > 0 {
		return usage("unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if *shards < 1 {
		return usage("-shards must be >= 1, got %d", *shards)
	}
	engineList, err := splitEngines(*engines)
	if err != nil {
		return usage("%v", err)
	}

	storeDir := *dir
	if storeDir == "" && needsDir(engineList) {
		tmp, err := os.MkdirTemp("", "gadget-server-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	srv, stores, err := serveCluster(engineList, storeDir, *addr, *shards)
	if err != nil {
		return err
	}
	defer func() {
		srv.Close()
		for _, s := range stores {
			s.Close()
		}
	}()
	addrs := srv.Addrs()
	for i, a := range addrs {
		fmt.Fprintf(stdout, "gadget-server: shard %d serving %s on %s (dir %s)\n",
			i, engineList[i%len(engineList)], a, storeDir)
	}
	if *readyFile != "" {
		if err := os.WriteFile(*readyFile, []byte(strings.Join(addrs, ",")+"\n"), 0o644); err != nil {
			return fmt.Errorf("ready file: %w", err)
		}
	}
	if *metricsAddr != "" {
		// The collector introspects the shard server, which exposes every
		// shard's wire counters (and its engine's metrics) under a
		// shard<i>. prefix.
		reg := obs.NewRegistry()
		obs.RegisterStoreCollector(reg, srv)
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			return err
		}
		defer msrv.Close()
		fmt.Fprintf(stdout, "gadget-server: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(stdout, "gadget-server: shutting down")
	return nil
}

// splitEngines parses the -engine list and rejects engines a server
// cannot back.
func splitEngines(s string) ([]string, error) {
	var out []string
	for _, e := range strings.Split(s, ",") {
		e = strings.TrimSpace(e)
		if e == "" {
			continue
		}
		if e == "remote" {
			return nil, fmt.Errorf("engine %q cannot back a server (it is the client side of this protocol)", e)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-engine must name at least one engine (one of %v)", gadget.Engines())
	}
	return out, nil
}

// needsDir reports whether any engine in the list persists to disk.
func needsDir(engines []string) bool {
	for _, e := range engines {
		if e != "memstore" {
			return true
		}
	}
	return false
}

// serveCluster opens one engine per shard — cycling through the engine
// list — and exposes them as a sharded server on addr. Shard i of a
// durable engine lives in dir/shard-<i>, so shards never share files.
func serveCluster(engines []string, dir, addr string, shards int) (*shard.Server, []gadget.Store, error) {
	stores := make([]gadget.Store, 0, shards)
	closeAll := func() {
		for _, s := range stores {
			s.Close()
		}
	}
	for i := 0; i < shards; i++ {
		engine := engines[i%len(engines)]
		shardDir := dir
		if dir != "" && shards > 1 {
			shardDir = fmt.Sprintf("%s/shard-%d", dir, i)
		}
		store, err := gadget.OpenStore(gadget.StoreConfig{Engine: engine, Dir: shardDir})
		if err != nil {
			closeAll()
			return nil, nil, fmt.Errorf("shard %d (%s): %w", i, engine, err)
		}
		stores = append(stores, store)
	}
	kvStores := make([]kv.Store, len(stores))
	for i, s := range stores {
		kvStores[i] = s
	}
	srv, err := shard.Serve(kvStores, addr)
	if err != nil {
		closeAll()
		return nil, nil, err
	}
	return srv, stores, nil
}
