// Command gadget-server exposes any KV engine over TCP for external
// state management experiments (paper §8): run one server, point any
// number of `gadget run`/`gadget replay` instances at it with
// `-engine remote -addr HOST:PORT`, and the compute and state tiers are
// decoupled.
//
// Usage:
//
//	gadget-server -engine rocksdb -dir /tmp/db -addr 127.0.0.1:7101
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"gadget"
	"gadget/internal/obs"
	"gadget/internal/remote"
)

func main() {
	engine := flag.String("engine", "rocksdb", "backing store engine")
	dir := flag.String("dir", "", "store directory (temp dir when empty)")
	addr := flag.String("addr", "127.0.0.1:7101", "listen address")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/pprof on this address")
	flag.Parse()

	storeDir := *dir
	if storeDir == "" && *engine != "memstore" {
		tmp, err := os.MkdirTemp("", "gadget-server-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(tmp)
		storeDir = tmp
	}
	srv, store, err := serve(*engine, storeDir, *addr)
	if err != nil {
		fatal(err)
	}
	defer store.Close()
	fmt.Printf("gadget-server: serving %s on %s (dir %s)\n", *engine, srv.Addr(), storeDir)
	if *metricsAddr != "" {
		// The collector introspects the remote.Server, which merges its
		// wire counters with the backing engine's metrics.
		reg := obs.NewRegistry()
		obs.RegisterStoreCollector(reg, srv)
		msrv, err := obs.Serve(*metricsAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer msrv.Close()
		fmt.Printf("gadget-server: metrics on http://%s/metrics\n", msrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("gadget-server: shutting down")
	srv.Close()
}

// serve opens the configured engine and exposes it on addr.
func serve(engine, dir, addr string) (*remote.Server, gadget.Store, error) {
	store, err := gadget.OpenStore(gadget.StoreConfig{Engine: engine, Dir: dir})
	if err != nil {
		return nil, nil, err
	}
	srv, err := remote.Serve(store, addr)
	if err != nil {
		store.Close()
		return nil, nil, err
	}
	return srv, store, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "gadget-server: %v\n", err)
	os.Exit(1)
}
