// Quickstart: generate a streaming state access workload for a 5-second
// tumbling window over a synthetic zipfian stream and run it online
// against the LSM ("rocksdb") engine.
package main

import (
	"fmt"
	"log"
	"os"

	"gadget"
)

func main() {
	dir, err := os.MkdirTemp("", "gadget-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	cfg := gadget.Config{
		Source: gadget.SourceConfig{
			Events:     200_000,
			Keys:       1000,
			RatePerSec: 2000,
			ValueSize:  64,
			// Punctuated watermark every 100 events, as in the paper.
			WatermarkEvery: 100,
			Seed:           1,
		},
		Operator: gadget.OperatorConfig{
			Operator:       gadget.TumblingIncr,
			WindowLengthMs: 5000,
		},
		Store: gadget.StoreConfig{Engine: "rocksdb", Dir: dir},
	}

	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}
	store, err := gadget.OpenStore(cfg.Store)
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()

	res, err := w.RunOnline(store, gadget.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload:   %s over %d events\n", cfg.Operator.Operator, cfg.Source.Events)
	fmt.Printf("operations: %d (%.1f accesses per input event)\n",
		res.Ops, float64(res.Ops)/float64(cfg.Source.Events))
	fmt.Printf("throughput: %.0f ops/s\n", res.Throughput)
	fmt.Printf("latency:    mean=%.2fus  p99=%.2fus  p99.9=%.2fus\n",
		res.MeanMicros(), res.P99Micros(), res.P999Micros())
}
