// Store comparison: the paper's §6.3 in miniature. One incremental and
// one holistic workload run against all four KV engines, reproducing the
// headline finding — hash and B+Tree stores win incremental operators,
// the LSM's lazy merge wins holistic ones, and no single store wins
// everywhere.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gadget"
)

func main() {
	tmp, err := os.MkdirTemp("", "gadget-compare-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	workloads := []gadget.OperatorType{gadget.Aggregation, gadget.SlidingHol}
	engines := []string{"rocksdb", "lethe", "faster", "berkeleydb"}

	for _, op := range workloads {
		cfg := gadget.Config{
			Source: gadget.SourceConfig{
				Events:     100_000,
				Keys:       1000,
				RatePerSec: 500,
				ValueSize:  64,
				Seed:       5,
			},
			Operator: gadget.OperatorConfig{
				Operator:       op,
				WindowLengthMs: 5000,
				WindowSlideMs:  1000,
			},
		}
		w, err := gadget.NewWorkload(cfg)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := w.Generate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%d state accesses)\n", op, len(trace))
		fmt.Printf("  %-12s %12s %12s\n", "engine", "kops/s", "p99.9(us)")
		var bestEngine string
		var bestThr float64
		for i, engine := range engines {
			store, err := gadget.OpenStore(gadget.StoreConfig{
				Engine: engine,
				Dir:    filepath.Join(tmp, fmt.Sprintf("%s-%d", op, i)),
			})
			if err != nil {
				log.Fatal(err)
			}
			res, err := gadget.Replay(store, trace, gadget.ReplayOptions{})
			store.Close()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12s %12.1f %12.2f\n", engine, res.Throughput/1000, res.P999Micros())
			if res.Throughput > bestThr {
				bestEngine, bestThr = engine, res.Throughput
			}
		}
		fmt.Printf("  -> best: %s\n\n", bestEngine)
	}
}
