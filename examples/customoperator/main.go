// Custom operator: the paper's §5.4 extension workflow. This example
// adds an operator Gadget does not ship — a *distinct-count window* that
// tracks the set of unique users per fixed window with one state entry
// per (user, window) plus a per-window cardinality register — and runs
// it through the harness like any built-in workload.
//
// The state machine is the paper's promised "30 lines or less": a
// per-event access sequence in OnEvent and trigger-time cleanup in
// OnWatermark.
package main

import (
	"container/heap"
	"fmt"
	"log"

	"gadget"
)

// distinctCountOp counts distinct keys per tumbling window. Per event it
// probes the member entry (key, window); on first sight it inserts the
// member and bumps the cardinality register (get-put). On trigger it
// reads the register and deletes it along with the members.
type distinctCountOp struct {
	lengthMs  int64
	watermark int64
	// seen mirrors the member index (the driver's hIndex role).
	seen map[gadget.StateKey]bool
	// windows tracks member keys per open window for cleanup (vIndex).
	windows map[int64][]gadget.StateKey
	expiry  expiryHeap
	stats   gadget.OperatorStats
}

// registerGroup namespaces cardinality registers away from member keys.
const registerGroup = ^uint64(0)

func newDistinctCount(lengthMs int64) *distinctCountOp {
	return &distinctCountOp{
		lengthMs: lengthMs,
		seen:     make(map[gadget.StateKey]bool),
		windows:  make(map[int64][]gadget.StateKey),
	}
}

func (d *distinctCountOp) Type() gadget.OperatorType { return "distinct-count" }

func (d *distinctCountOp) OnEvent(e gadget.Event, emit gadget.EmitFunc) {
	d.stats.Events++
	start := e.Time - e.Time%d.lengthMs
	if start+d.lengthMs <= d.watermark {
		d.stats.LateDropped++
		return
	}
	member := gadget.StateKey{Group: e.Key, Sub: uint64(start)}
	register := gadget.StateKey{Group: registerGroup, Sub: uint64(start)}
	// Membership probe.
	emit(gadget.Access{Op: gadget.OpGet, Key: member, Time: e.Time})
	if d.seen[member] {
		return // duplicate within the window: no state change
	}
	d.seen[member] = true
	if _, ok := d.windows[start]; !ok {
		heap.Push(&d.expiry, start+d.lengthMs)
	}
	d.windows[start] = append(d.windows[start], member)
	// Insert the member and bump the cardinality register.
	emit(gadget.Access{Op: gadget.OpPut, Key: member, Size: 1, Time: e.Time})
	emit(gadget.Access{Op: gadget.OpGet, Key: register, Time: e.Time})
	emit(gadget.Access{Op: gadget.OpPut, Key: register, Size: 8, Time: e.Time})
}

func (d *distinctCountOp) OnWatermark(wm int64, emit gadget.EmitFunc) {
	if wm <= d.watermark {
		return
	}
	d.watermark = wm
	for len(d.expiry) > 0 && d.expiry[0] <= wm {
		end := heap.Pop(&d.expiry).(int64)
		start := end - d.lengthMs
		register := gadget.StateKey{Group: registerGroup, Sub: uint64(start)}
		emit(gadget.Access{Op: gadget.OpFGet, Key: register, Time: wm})
		emit(gadget.Access{Op: gadget.OpDelete, Key: register, Time: wm})
		for _, member := range d.windows[start] {
			emit(gadget.Access{Op: gadget.OpDelete, Key: member, Time: wm})
			delete(d.seen, member)
		}
		delete(d.windows, start)
		d.stats.WindowsFired++
	}
}

func (d *distinctCountOp) Stats() gadget.OperatorStats {
	s := d.stats
	s.ActiveMachines = len(d.windows)
	return s
}

type expiryHeap []int64

func (h expiryHeap) Len() int            { return len(h) }
func (h expiryHeap) Less(i, j int) bool  { return h[i] < h[j] }
func (h expiryHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expiryHeap) Push(x interface{}) { *h = append(*h, x.(int64)) }
func (h *expiryHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func main() {
	src, err := gadget.NewEventSource(gadget.SourceConfig{
		Events: 100_000, Keys: 500, RatePerSec: 1000, WatermarkEvery: 100, Seed: 11,
	}, false)
	if err != nil {
		log.Fatal(err)
	}
	op := newDistinctCount(5000)

	// Offline: materialize and characterize the custom workload.
	trace := gadget.GenerateCustom(src, op)
	a := gadget.Analyze(trace)
	fmt.Printf("distinct-count window: %d accesses for %d events\n", len(trace), op.Stats().Events)
	fmt.Printf("composition: get=%.2f put=%.2f delete=%.2f\n", a.GetShare, a.PutShare, a.DeleteShare)
	fmt.Printf("windows fired: %d, max working set: %d\n\n", op.Stats().WindowsFired, a.MaxWorkingSet)

	// Online: drive a fresh run against the FASTER-style engine.
	src2, _ := gadget.NewEventSource(gadget.SourceConfig{
		Events: 100_000, Keys: 500, RatePerSec: 1000, WatermarkEvery: 100, Seed: 11,
	}, false)
	store, err := gadget.OpenStore(gadget.StoreConfig{Engine: "faster", Dir: mustTempDir()})
	if err != nil {
		log.Fatal(err)
	}
	defer store.Close()
	res, err := gadget.RunCustomOnline(src2, newDistinctCount(5000), store, gadget.ReplayOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online on faster: %.0f ops/s, p99.9 %.2fus\n", res.Throughput, res.P999Micros())
}

func mustTempDir() string {
	dir, err := tempDir()
	if err != nil {
		log.Fatal(err)
	}
	return dir
}
