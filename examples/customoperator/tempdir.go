package main

import "os"

func tempDir() (string, error) {
	return os.MkdirTemp("", "gadget-custom-*")
}
