// Cluster monitoring: the paper's running example. A Borg-shaped cluster
// event stream drives two session-window queries that group task events
// submitted in quick succession into job stages (2-minute inactivity
// gap): an incremental count and a holistic collect. The example
// generates both state access workloads, characterizes them, and shows
// why their store requirements differ.
package main

import (
	"fmt"
	"log"
)

import "gadget"

func main() {
	// A 1% scale Borg stream: ~260 jobs emitting bursty task events.
	ds, err := gadget.Dataset("borg", 0.01, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input: %d task events over %d jobs\n\n", len(ds.Primary), ds.Keys)

	for _, op := range []gadget.OperatorType{gadget.SessionIncr, gadget.SessionHol} {
		cfg := gadget.Config{
			Source: gadget.SourceConfig{
				Type:    "dataset",
				Dataset: "borg",
				Scale:   0.01,
				Seed:    7,
			},
			Operator: gadget.OperatorConfig{
				Operator:     op,
				SessionGapMs: 2 * 60 * 1000,
			},
		}
		w, err := gadget.NewWorkload(cfg)
		if err != nil {
			log.Fatal(err)
		}
		trace, err := w.Generate()
		if err != nil {
			log.Fatal(err)
		}
		a := gadget.Analyze(trace)
		fmt.Printf("%s (job-stage detection)\n", op)
		fmt.Printf("  state accesses     %d (%.2f per event)\n",
			len(trace), float64(len(trace))/float64(len(ds.Primary)))
		fmt.Printf("  composition        get=%.2f put=%.2f merge=%.2f delete=%.2f\n",
			a.GetShare, a.PutShare, a.MergeShare, a.DeleteShare)
		fmt.Printf("  distinct sessions  %d (vs %d jobs: keyspace amplification %.1fx)\n",
			a.DistinctKeys, ds.Keys, float64(a.DistinctKeys)/float64(ds.Keys))
		fmt.Printf("  session TTL steps  p50=%.0f p99.9=%.0f\n", a.TTL.P50, a.TTL.P999)
		fmt.Printf("  max working set    %d sessions live at once\n\n", a.MaxWorkingSet)
	}

	fmt.Println("The incremental variant issues get-put pairs (favoring stores with")
	fmt.Println("in-place updates); the holistic variant issues lazy merges (favoring")
	fmt.Println("LSM engines) — the choice of state store depends on the query.")
}
