// Taxi rides: the paper's §2.2 continuous-join example — "compute the
// total amount of taxi fare events for a shared taxi ride before the
// drop-off timestamp". Trip events open and close validity intervals per
// medallion; fare events probe them. The example runs in offline mode:
// it generates the state access trace once, writes it to disk, then
// replays it against two different engines.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gadget"
)

func main() {
	tmp, err := os.MkdirTemp("", "gadget-taxi-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(tmp)

	cfg := gadget.Config{
		Source: gadget.SourceConfig{
			Type:    "dataset",
			Dataset: "taxi",
			Scale:   0.02,
			Seed:    3,
		},
		Operator: gadget.OperatorConfig{Operator: gadget.ContinJoin},
	}
	w, err := gadget.NewWorkload(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Offline mode: generate once, persist, replay on demand.
	trace, err := w.Generate()
	if err != nil {
		log.Fatal(err)
	}
	tracePath := filepath.Join(tmp, "taxi-continuous-join.trace")
	if err := gadget.WriteTrace(tracePath, trace); err != nil {
		log.Fatal(err)
	}
	st, _ := os.Stat(tracePath)
	fmt.Printf("trace: %d accesses, %d KiB on disk\n", len(trace), st.Size()/1024)

	a := gadget.Analyze(trace)
	fmt.Printf("composition: get=%.2f put=%.2f merge=%.2f delete=%.2f\n",
		a.GetShare, a.PutShare, a.MergeShare, a.DeleteShare)
	fmt.Println("(every drop-off deletes the ride's state — the paper's point about")
	fmt.Println(" continuous joins: deletes track the input's validity intervals)")
	fmt.Println()

	loaded, err := gadget.ReadTrace(tracePath)
	if err != nil {
		log.Fatal(err)
	}
	for _, engine := range []string{"rocksdb", "faster"} {
		store, err := gadget.OpenStore(gadget.StoreConfig{
			Engine: engine,
			Dir:    filepath.Join(tmp, engine),
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := gadget.Replay(store, loaded, gadget.ReplayOptions{})
		store.Close()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s  %8.0f ops/s   p99.9 %.2fus\n", engine, res.Throughput, res.P999Micros())
	}
}
