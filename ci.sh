#!/bin/sh
# CI gate: build, vet, gofmt cleanliness, the full test suite, and the
# race-enabled run (the concurrent paths — shared-store partitioned
# runs, concurrent replay, block cache — must stay race-free).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== go test -race (short)"
go test -race -short ./...

echo "CI OK"
