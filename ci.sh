#!/bin/sh
# CI gate: build, vet, gofmt cleanliness, the full test suite, and the
# race-enabled run (the concurrent paths — shared-store partitioned
# runs, concurrent replay, block cache — must stay race-free).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test -timeout 10m ./...

echo "== go test -race (short)"
go test -race -short -timeout 10m ./...

echo "== go test -race (store engines, full)"
# Full (non-short) race pass over the store API and every engine: the
# snapshot/iterator paths are exercised under concurrent writers in the
# differential suite, and those schedules only run outside -short.
go test -race -timeout 10m ./internal/kv/ ./internal/stores/ \
    ./internal/lsm/ ./internal/btree/ ./internal/memstore/ \
    ./internal/faster/ ./internal/lethe/ ./internal/remote/ \
    ./internal/shard/ ./internal/tracing/

echo "== go test -race (crash recovery, full)"
# The recovery paths — checkpoint save/restore, the crash-replay loop,
# and the campaign sweep — run full (non-short) under the race detector:
# checkpoints are cut from live stores, so snapshot acquisition races
# against the replay writer by construction.
go test -race -timeout 10m ./internal/replay/ ./internal/campaign/

echo "== open-loop smoke"
# End-to-end open-loop run: drifting-hotspot workload replayed under a
# Poisson arrival schedule with coordinated-omission-free latency and an
# SLO verdict, exercising config -> eventgen -> replay -> obs -> CLI.
go run ./cmd/gadget run -config configs/open-loop-drift.json

echo "== scan scenario smoke"
# Scan-heavy scenario: windowed top-K drain issues OpScan range reads on
# every window fire, exercising config -> core -> replay -> snapshot API.
go run ./cmd/gadget run -config configs/scan-topk.json

echo "== crash recovery smoke"
# Scripted mid-run crashes with a checkpoint cadence: the run must crash
# twice, restore from the newest checkpoint, replay the delta, and report
# RTO/RPO counters, exercising config -> replay recovery -> checkpoint
# codec -> CLI.
go run ./cmd/gadget run -config configs/crash-recovery.json

echo "== sharded remote smoke"
# Two-shard memstore cluster on fixed ports 7301/7302, driven end to end
# through the standard config surface (store.remote.shards expands the
# base addr into per-shard listeners), exercising config -> stores ->
# shard client -> protocol v3 batching -> CLI.
sharded_tmp=$(mktemp -d)
go build -o "$sharded_tmp/gadget-server" ./cmd/gadget-server
"$sharded_tmp/gadget-server" -shards 2 -engine memstore \
    -addr 127.0.0.1:7301 -ready-file "$sharded_tmp/ready" &
sharded_pid=$!
trap 'kill "$sharded_pid" 2>/dev/null || true; rm -rf "$sharded_tmp"' EXIT
for _ in $(seq 1 100); do
    [ -f "$sharded_tmp/ready" ] && break
    sleep 0.1
done
if [ ! -f "$sharded_tmp/ready" ]; then
    echo "sharded smoke: server never wrote its ready file" >&2
    exit 1
fi
go run ./cmd/gadget run -config configs/sharded-remote.json
kill "$sharded_pid" 2>/dev/null || true
wait "$sharded_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$sharded_tmp"

echo "== traced sharded smoke"
# Same two-shard topology on port 7311 with per-op tracing enabled
# (obs.trace): the run must produce a report whose slow_ops section has
# traces with the wire and server stages populated, asserted through the
# `gadget trace` renderer — exercising trace-flagged hello negotiation,
# response trailers, flight recorder, report JSON, and the CLI printer.
traced_tmp=$(mktemp -d)
go build -o "$traced_tmp/gadget-server" ./cmd/gadget-server
"$traced_tmp/gadget-server" -shards 2 -engine memstore \
    -addr 127.0.0.1:7311 -ready-file "$traced_tmp/ready" &
traced_pid=$!
trap 'kill "$traced_pid" 2>/dev/null || true; rm -rf "$traced_tmp"' EXIT
for _ in $(seq 1 100); do
    [ -f "$traced_tmp/ready" ] && break
    sleep 0.1
done
if [ ! -f "$traced_tmp/ready" ]; then
    echo "traced sharded smoke: server never wrote its ready file" >&2
    exit 1
fi
go run ./cmd/gadget run -config configs/traced-sharded.json -report "$traced_tmp/report.json"
go run ./cmd/gadget trace -report "$traced_tmp/report.json" -n 3 -require-stages wire,server
kill "$traced_pid" 2>/dev/null || true
wait "$traced_pid" 2>/dev/null || true
trap - EXIT
rm -rf "$traced_tmp"

echo "== fuzz remote protocol framing (short)"
go test -run '^$' -fuzz '^FuzzServerFrame$' -fuzztime 3s -timeout 5m ./internal/remote/
go test -run '^$' -fuzz '^FuzzClientFrame$' -fuzztime 3s -timeout 5m ./internal/remote/
go test -run '^$' -fuzz '^FuzzBatchFrame$' -fuzztime 3s -timeout 5m ./internal/remote/
go test -run '^$' -fuzz '^FuzzTraceTrailer$' -fuzztime 3s -timeout 5m ./internal/remote/

echo "== fuzz shard routing (short)"
go test -run '^$' -fuzz '^FuzzShardRouting$' -fuzztime 3s -timeout 5m ./internal/shard/

echo "== fuzz iterator bounds (short)"
go test -run '^$' -fuzz '^FuzzIterBounds$' -fuzztime 3s -timeout 5m ./internal/kv/

echo "== fuzz checkpoint codec (short)"
go test -run '^$' -fuzz '^FuzzCheckpointCodec$' -fuzztime 3s -timeout 5m ./internal/kv/

echo "== bench drift guard"
# Re-run the overhead-sensitive micro-benchmarks and compare ns/op
# against results/bench-baseline.txt, failing on >25% regression. The
# threshold is wide because CI boxes vary; it catches structural
# regressions (an accidental lock on the hot path), not noise.
bench_out=$(mktemp)
trap 'rm -f "$bench_out"' EXIT
go test -run '^$' -bench 'BenchmarkResilientOverhead|BenchmarkObsOverhead|BenchmarkOpenLoopOverhead|BenchmarkRecoveryOverhead|BenchmarkTracingOverhead' -benchtime 0.5s -timeout 10m . | tee "$bench_out"
# Snapshot/scan/checkpoint micro-benchmarks: only the native-snapshot
# engines are guarded — the fallback engines (memstore, faster) copy the
# whole store per snapshot, so their run-to-run noise exceeds the 25%
# signal; their numbers are recorded in the baseline for reference only.
go test -run '^$' -bench '(BenchmarkSnapshotOverhead|BenchmarkScanRange|BenchmarkCheckpoint)/(rocksdb|berkeleydb)' -benchtime 0.5s -timeout 10m . | tee -a "$bench_out"
go test -run '^$' -bench 'BenchmarkStripedHistogramRecordParallel|BenchmarkHistogramRecordParallel' -benchtime 0.5s -timeout 5m ./internal/stats/ | tee -a "$bench_out"
# Sharded-remote scaling and the pipeline-depth sweep: TCP round trips
# are the noisiest numbers in the suite, so each point is averaged over
# -count 3 (the awk below averages duplicates) before the comparison.
go test -run '^$' -bench 'BenchmarkShardedThroughput|BenchmarkPipelineDepth' -benchtime 0.3s -count 3 -timeout 10m . | tee -a "$bench_out"
awk '
    # Collect ns/op per benchmark name (strip the -N GOMAXPROCS suffix),
    # averaging duplicate counts, from both baseline and fresh output.
    FNR == NR && $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        base_sum[name] += $3; base_n[name]++
        next
    }
    FNR != NR && $1 ~ /^Benchmark/ && $4 == "ns/op" {
        name = $1; sub(/-[0-9]+$/, "", name)
        new_sum[name] += $3; new_n[name]++
    }
    END {
        failed = 0
        for (name in new_sum) {
            if (!(name in base_sum)) {
                printf "bench-drift: %s has no baseline (refresh results/bench-baseline.txt)\n", name
                continue
            }
            base = base_sum[name] / base_n[name]
            new = new_sum[name] / new_n[name]
            ratio = new / base
            # Loopback-TCP round trips (the sharded/pipeline benches)
            # carry far more run-to-run noise than in-process paths even
            # after -count 3 averaging, so they get a wider threshold:
            # still failing on a structural (>60%) regression, not on
            # scheduler jitter.
            thr = (name ~ /ShardedThroughput|PipelineDepth/) ? 1.60 : 1.25
            printf "bench-drift: %-50s %10.1f -> %10.1f ns/op (%+.1f%%)\n", name, base, new, (ratio - 1) * 100
            if (ratio > thr) {
                printf "bench-drift: FAIL %s regressed %.1f%% (>%d%% threshold)\n", name, (ratio - 1) * 100, (thr - 1) * 100
                failed = 1
            }
        }
        exit failed
    }
' results/bench-baseline.txt "$bench_out"

echo "CI OK"
