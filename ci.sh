#!/bin/sh
# CI gate: build, vet, gofmt cleanliness, the full test suite, and the
# race-enabled run (the concurrent paths — shared-store partitioned
# runs, concurrent replay, block cache — must stay race-free).
set -eu

cd "$(dirname "$0")"

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test -timeout 10m ./...

echo "== go test -race (short)"
go test -race -short -timeout 10m ./...

echo "== fuzz remote protocol framing (short)"
go test -run '^$' -fuzz '^FuzzServerFrame$' -fuzztime 3s -timeout 5m ./internal/remote/
go test -run '^$' -fuzz '^FuzzClientFrame$' -fuzztime 3s -timeout 5m ./internal/remote/

echo "CI OK"
