module gadget

go 1.22
