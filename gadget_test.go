package gadget

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"

	"gadget/internal/remote"
)

func smallCfg(op OperatorType) Config {
	return Config{
		Source: SourceConfig{Events: 2000, Keys: 50, Seed: 1, RatePerSec: 2000, WatermarkEvery: 100},
		Operator: OperatorConfig{
			Operator: op, WindowLengthMs: 1000, WindowSlideMs: 200, SessionGapMs: 500,
			IntervalLowerMs: 300, IntervalUpperMs: 600,
		},
		Store: StoreConfig{Engine: "memstore"},
	}
}

func TestWorkloadGenerate(t *testing.T) {
	w, err := NewWorkload(smallCfg(TumblingIncr))
	if err != nil {
		t.Fatal(err)
	}
	trace, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) < 4000 {
		t.Fatalf("trace len = %d", len(trace))
	}
	// Deterministic: generating twice yields the same stream.
	trace2, _ := w.Generate()
	if len(trace) != len(trace2) {
		t.Fatal("non-deterministic generation")
	}
	for i := range trace {
		if trace[i] != trace2[i] {
			t.Fatalf("access %d differs", i)
		}
	}
}

func TestRunOnlineAllEngines(t *testing.T) {
	backing, err := OpenStore(StoreConfig{Engine: "memstore"})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := remote.Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); backing.Close() })
	for _, engine := range Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			cfg := smallCfg(SlidingHol)
			cfg.Store = StoreConfig{Engine: engine, Dir: t.TempDir(), Addr: srv.Addr()}
			w, err := NewWorkload(cfg)
			if err != nil {
				t.Fatal(err)
			}
			store, err := OpenStore(cfg.Store)
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			res, err := w.RunOnline(store, ReplayOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 || res.Errors != 0 {
				t.Fatalf("result = %+v", res)
			}
		})
	}
}

func TestOpenStoreUnknown(t *testing.T) {
	if _, err := OpenStore(StoreConfig{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine should fail")
	}
}

func TestTraceRoundTripAndReplay(t *testing.T) {
	w, _ := NewWorkload(smallCfg(Aggregation))
	trace, _ := w.Generate()
	path := filepath.Join(t.TempDir(), "agg.trace")
	if err := WriteTrace(path, trace); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadTrace(path)
	if err != nil || len(loaded) != len(trace) {
		t.Fatalf("loaded %d, %v", len(loaded), err)
	}
	store, _ := OpenStore(StoreConfig{Engine: "memstore"})
	defer store.Close()
	res, err := Replay(store, loaded, ReplayOptions{})
	if err != nil || res.Ops != uint64(len(trace)) {
		t.Fatalf("replay = %+v, %v", res, err)
	}
}

// Offline generate-then-replay and online runs apply identical accesses.
func TestOnlineOfflineEquivalence(t *testing.T) {
	cfg := smallCfg(SessionIncr)
	w, _ := NewWorkload(cfg)
	trace, _ := w.Generate()

	offline, _ := OpenStore(StoreConfig{Engine: "memstore"})
	defer offline.Close()
	if _, err := Replay(offline, trace, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
	online, _ := OpenStore(StoreConfig{Engine: "memstore"})
	defer online.Close()
	res, err := w.RunOnline(online, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != uint64(len(trace)) {
		t.Fatalf("online ops %d != offline %d", res.Ops, len(trace))
	}
}

func TestCollectReferenceTrace(t *testing.T) {
	w, _ := NewWorkload(smallCfg(TumblingIncr))
	ref, err := w.CollectReferenceTrace()
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := w.Generate()
	if len(ref) != len(sim) {
		t.Fatalf("reference %d vs gadget %d", len(ref), len(sim))
	}
}

func TestAnalyze(t *testing.T) {
	w, _ := NewWorkload(smallCfg(TumblingIncr))
	trace, _ := w.Generate()
	a := Analyze(trace)
	if a.GetShare <= 0.4 || a.GetShare >= 0.6 {
		t.Fatalf("get share = %v", a.GetShare)
	}
	if a.DeleteShare <= 0 || a.DistinctKeys == 0 || a.MaxWorkingSet == 0 {
		t.Fatalf("analysis = %+v", a)
	}
	if a.TTL.Count == 0 {
		t.Fatal("no TTL samples")
	}
}

func TestDataset(t *testing.T) {
	ds, err := Dataset("taxi", 0.001, 1)
	if err != nil || ds.Name != "taxi" {
		t.Fatalf("dataset = %+v, %v", ds, err)
	}
	if _, err := Dataset("nope", 1, 1); err == nil {
		t.Fatal("unknown dataset should fail")
	}
}

func TestReplayConcurrentSharedStore(t *testing.T) {
	w1, _ := NewWorkload(smallCfg(SlidingIncr))
	w2, _ := NewWorkload(smallCfg(SlidingHol))
	t1, _ := w1.Generate()
	t2, _ := w2.Generate()
	store, _ := OpenStore(StoreConfig{Engine: "rocksdb", Dir: t.TempDir()})
	defer store.Close()
	results, err := ReplayConcurrent(store, [][]Access{t1, t2}, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Ops == 0 || results[1].Ops == 0 {
		t.Fatalf("results = %+v", results)
	}
}

func TestParseConfig(t *testing.T) {
	cfg, err := ParseConfig([]byte(`{"operator": {"type": "aggregation"}}`))
	if err != nil || cfg.Operator.Operator != Aggregation {
		t.Fatalf("cfg = %+v, %v", cfg, err)
	}
}

func TestRunPartitioned(t *testing.T) {
	cfg := smallCfg(TumblingIncr)
	w, err := NewWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Per-instance stores: key-disjoint partitions never conflict.
	stores := make([]Store, 3)
	for i := range stores {
		s, err := OpenStore(StoreConfig{Engine: "memstore"})
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		stores[i] = s
	}
	results, err := w.RunPartitioned(stores, ReplayOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for i, res := range results {
		if res.Errors != 0 {
			t.Fatalf("instance %d errors = %d", i, res.Errors)
		}
		total += res.Ops
	}
	// The partitioned instances together apply exactly the accesses a
	// single instance would (tumbling windows are key-local).
	single, _ := w.Generate()
	if total != uint64(len(single)) {
		t.Fatalf("partitioned ops %d != single-instance %d", total, len(single))
	}
	// Shared-store co-location also works (the §6.4 scenario).
	shared, _ := OpenStore(StoreConfig{Engine: "rocksdb", Dir: t.TempDir()})
	defer shared.Close()
	if _, err := w.RunPartitioned([]Store{shared, shared}, ReplayOptions{}); err != nil {
		t.Fatal(err)
	}
}

// failingStore errors on every operation, counting the attempts.
type failingStore struct {
	mu    sync.Mutex
	calls int
}

func (f *failingStore) bump() error {
	f.mu.Lock()
	f.calls++
	f.mu.Unlock()
	return errors.New("injected store failure")
}

func (f *failingStore) count() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func (f *failingStore) Get(key []byte) ([]byte, error)  { return nil, f.bump() }
func (f *failingStore) Put(key, value []byte) error     { return f.bump() }
func (f *failingStore) Merge(key, operand []byte) error { return f.bump() }
func (f *failingStore) Delete(key []byte) error         { return f.bump() }
func (f *failingStore) Close() error                    { return nil }

// A persistently failing store must abort the run early: once the
// evaluator gives up, event generation stops instead of grinding
// through the rest of the workload.
func TestRunOnlineStopsOnFailingStore(t *testing.T) {
	w, err := NewWorkload(smallCfg(TumblingIncr))
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	st := &failingStore{}
	if _, err := w.RunOnline(st, ReplayOptions{}); err == nil {
		t.Fatal("RunOnline with a failing store should report an error")
	}
	// The evaluator tolerates ~100 errors before giving up; after that no
	// further accesses should be issued.
	if st.count() >= len(full)/2 {
		t.Fatalf("run was not cut short: %d of %d accesses issued", st.count(), len(full))
	}
}

func TestRunPartitionedStopsOnFailingStore(t *testing.T) {
	w, err := NewWorkload(smallCfg(TumblingIncr))
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Generate()
	if err != nil {
		t.Fatal(err)
	}
	st := &failingStore{}
	if _, err := w.RunPartitioned([]Store{st, st}, ReplayOptions{}); err == nil {
		t.Fatal("RunPartitioned with a failing store should report an error")
	}
	if st.count() >= len(full)/2 {
		t.Fatalf("run was not cut short: %d of %d accesses issued", st.count(), len(full))
	}
}
