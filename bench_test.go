package gadget_test

// One benchmark per table and figure of the paper. Each bench runs the
// corresponding experiment end to end at CI scale and reports the
// domain metric (rows produced, shape checks passed) alongside wall
// time; `go run ./cmd/gadget-experiments` regenerates the full-scale
// numbers recorded in EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"gadget"
	"gadget/internal/experiments"
	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/obs"
	"gadget/internal/remote"
	"gadget/internal/replay"
	"gadget/internal/shard"
	"gadget/internal/stores"
	"gadget/internal/vfs"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	if testing.Short() {
		b.Skip("experiment benchmarks are skipped in -short mode")
	}
	run, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	scale := experiments.QuickScale()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := run(scale)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(float64(len(rep.Rows)), "rows")
		b.ReportMetric(float64(len(rep.Checks)-len(rep.Failed())), "checks_passed")
	}
}

func BenchmarkTable1Composition(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2KSTest(b *testing.B)           { benchExperiment(b, "table2") }
func BenchmarkTable3TTL(b *testing.B)              { benchExperiment(b, "table3") }
func BenchmarkFigure2WindowConfig(b *testing.B)    { benchExperiment(b, "fig2") }
func BenchmarkFigure3Amplification(b *testing.B)   { benchExperiment(b, "fig3") }
func BenchmarkFigure4SlideSweep(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFigure5Locality(b *testing.B)        { benchExperiment(b, "fig5") }
func BenchmarkFigure6Watermarks(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFigure7YCSBLocality(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFigure10GadgetAccuracy(b *testing.B) { benchExperiment(b, "fig10") }
func BenchmarkFigure11TraceFidelity(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFigure12YCSBCore(b *testing.B)       { benchExperiment(b, "fig12") }
func BenchmarkFigure13StoreShootout(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14Concurrent(b *testing.B)     { benchExperiment(b, "fig14") }

// Harness micro-benchmarks: workload generation throughput and online
// end-to-end runs per engine.

func benchConfig(op gadget.OperatorType, events int) gadget.Config {
	return gadget.Config{
		Source: gadget.SourceConfig{
			Events: events, Keys: 1000, RatePerSec: 500, ValueSize: 64,
			WatermarkEvery: 100, Seed: 1,
		},
		Operator: gadget.OperatorConfig{
			Operator: op, WindowLengthMs: 5000, WindowSlideMs: 1000,
		},
	}
}

func BenchmarkGenerateTumblingTrace(b *testing.B) {
	events := 50000
	if testing.Short() {
		events = 5000
	}
	w, err := gadget.NewWorkload(benchConfig(gadget.TumblingIncr, events))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr, err := w.Generate()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(tr)), "accesses")
	}
}

// BenchmarkResilientOverhead measures the happy-path cost of the
// resilience middleware: the same op mix against a raw memstore and a
// ResilientStore wrapping it with a zero fault rate. The wrapped run
// must stay within a few percent of raw (see results/bench-baseline.txt).
func BenchmarkResilientOverhead(b *testing.B) {
	for _, wrapped := range []bool{false, true} {
		name := "raw"
		if wrapped {
			name = "resilient"
		}
		b.Run(name, func(b *testing.B) {
			var store gadget.Store = memstore.New()
			defer store.Close()
			if wrapped {
				var err error
				store, err = gadget.NewResilientStore(store, gadget.ResilienceOptions{})
				if err != nil {
					b.Fatal(err)
				}
			}
			key := make([]byte, 16)
			val := make([]byte, 64)
			// Pre-populate the working set so the map size, and with it
			// the per-op cost, is stable across the timed loop.
			for i := 0; i < 1<<16; i++ {
				key[0], key[1] = byte(i), byte(i>>8)
				if err := store.Put(key, val); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				key[0], key[1] = byte(i), byte(i>>8)
				switch i % 4 {
				case 0, 1:
					if _, err := store.Get(key); err != nil && err != gadget.ErrNotFound {
						b.Fatal(err)
					}
				case 2:
					if err := store.Put(key, val); err != nil {
						b.Fatal(err)
					}
				default:
					if err := store.Delete(key); err != nil && err != gadget.ErrNotFound {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// snapshotBenchEngines are the engines the snapshot/scan benches cover:
// the two native MVCC engines plus the two fallback (stop-the-world)
// engines, so the baseline records both cost classes.
var snapshotBenchEngines = []string{"rocksdb", "berkeleydb", "memstore", "faster"}

// benchScanStore opens an engine pre-populated with 4096 StateKey
// entries across 16 groups — enough that the LSM engine has flushed
// tables and the B+Tree spans many leaves.
func benchScanStore(b *testing.B, engine string) kv.Store {
	b.Helper()
	s, err := stores.Open(stores.Config{
		Engine: engine, Dir: b.TempDir(),
		MemtableBytes: 64 << 10, CacheBytes: 256 << 10,
		LogMemBytes: 8 << 20, IndexBuckets: 1 << 10,
	})
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 64)
	for g := uint64(0); g < 16; g++ {
		for sub := uint64(0); sub < 256; sub++ {
			sk := kv.StateKey{Group: g, Sub: sub}
			if err := s.Put(sk.Bytes(), val); err != nil {
				b.Fatal(err)
			}
		}
	}
	return s
}

// BenchmarkSnapshotOverhead measures snapshot acquisition+release per
// engine. The MVCC engines (rocksdb, berkeleydb) pin existing
// structures and should stay O(1)-ish; memstore and faster pay the
// stop-the-world fallback copy, so their ns/op scales with store size
// (4096 entries here). Guarded by ci.sh's bench drift check.
func BenchmarkSnapshotOverhead(b *testing.B) {
	for _, engine := range snapshotBenchEngines {
		b.Run(engine, func(b *testing.B) {
			s := benchScanStore(b, engine)
			defer s.Close()
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				snap, err := kv.SnapshotOf(s)
				if err != nil {
					b.Fatal(err)
				}
				if err := snap.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkScanRange measures one bounded range scan (a 256-entry key
// group) per iteration — the access pattern of the windowed top-K
// drain's trigger. Guarded by ci.sh's bench drift check.
func BenchmarkScanRange(b *testing.B) {
	for _, engine := range snapshotBenchEngines {
		b.Run(engine, func(b *testing.B) {
			s := benchScanStore(b, engine)
			defer s.Close()
			lo := kv.StateKey{Group: 7}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ents, err := kv.ScanRange(s, lo, lo.GroupEnd())
				if err != nil {
					b.Fatal(err)
				}
				if len(ents) != 256 {
					b.Fatalf("scan returned %d entries, want 256", len(ents))
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures the per-op cost of the full telemetry
// rig — registry with a store collector, /metrics HTTP listener, and a
// 50ms sampler snapshotting the live collector — against the identical
// bare run. The sampler is pull-based, so the hot path should stay
// within a few percent of bare (see results/bench-baseline.txt).
func BenchmarkObsOverhead(b *testing.B) {
	for _, observed := range []bool{false, true} {
		name := "bare"
		if observed {
			name = "observed"
		}
		b.Run(name, func(b *testing.B) {
			store := memstore.New()
			defer store.Close()
			c, err := replay.NewCollector(store, replay.Options{})
			if err != nil {
				b.Fatal(err)
			}
			var sampler *obs.Sampler
			if observed {
				reg := obs.NewRegistry()
				obs.RegisterStoreCollector(reg, store)
				srv, err := obs.Serve("127.0.0.1:0", reg)
				if err != nil {
					b.Fatal(err)
				}
				defer srv.Close()
				sampler, err = obs.StartSampler(obs.SamplerOptions{
					Interval: 50 * time.Millisecond,
					Snapshot: c.Snapshot,
					Store:    store,
					Registry: reg,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := kv.Access{Key: kv.StateKey{Group: 1, Sub: uint64(i % (1 << 16))}, Size: 64}
				if i%2 == 0 {
					a.Op = kv.OpPut
				} else {
					a.Op = kv.OpGet
				}
				if err := c.Do(a); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			final := c.Finish()
			if sampler != nil {
				sampler.Stop(final)
			}
		})
	}
}

// BenchmarkOpenLoopOverhead measures the per-op cost the open-loop
// driver adds over the closed-loop replay path: the same trace against
// a memstore, closed loop versus open loop at an effectively unpaced
// rate (1ns gaps, so the pacer never sleeps and the numbers isolate the
// queue hop plus intended-latency accounting; see
// results/bench-baseline.txt).
func BenchmarkOpenLoopOverhead(b *testing.B) {
	for _, open := range []bool{false, true} {
		name := "closed"
		if open {
			name = "open"
		}
		b.Run(name, func(b *testing.B) {
			store := memstore.New()
			defer store.Close()
			tr := make([]gadget.Access, b.N)
			for i := range tr {
				a := kv.Access{Key: kv.StateKey{Group: 1, Sub: uint64(i % (1 << 16))}, Size: 64}
				if i%2 == 0 {
					a.Op = kv.OpPut
				} else {
					a.Op = kv.OpGet
				}
				tr[i] = a
			}
			b.ResetTimer()
			b.ReportAllocs()
			var res gadget.Result
			var err error
			if open {
				res, err = gadget.ReplayOpenLoop(store, tr, gadget.OpenLoopOptions{
					Rate: 1e9, MaxInFlight: 4096,
				})
			} else {
				res, err = gadget.Replay(store, tr, gadget.ReplayOptions{})
			}
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != uint64(b.N) {
				b.Fatalf("ops = %d, want %d", res.Ops, b.N)
			}
		})
	}
}

func BenchmarkOnlineRun(b *testing.B) {
	for _, engine := range gadget.Engines() {
		engine := engine
		if engine == "remote" {
			continue // needs a running gadget-server; see internal/remote benches
		}
		b.Run(engine, func(b *testing.B) {
			events := 20000
			if testing.Short() {
				events = 2000
			}
			w, err := gadget.NewWorkload(benchConfig(gadget.TumblingIncr, events))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				store, err := gadget.OpenStore(gadget.StoreConfig{Engine: engine, Dir: b.TempDir()})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				res, err := w.RunOnline(store, gadget.ReplayOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				store.Close()
				b.StartTimer()
				b.ReportMetric(res.Throughput, "store_ops/s")
			}
		})
	}
}

// BenchmarkCheckpoint measures Checkpointer.Save — one portable
// checkpoint of a 4096-entry store streamed to a MemFS — for both
// snapshot cost classes: rocksdb pins its LSM version (native MVCC),
// memstore pays the stop-the-world fallback copy. Guarded by ci.sh's
// bench drift check.
func BenchmarkCheckpoint(b *testing.B) {
	for _, engine := range []string{"rocksdb", "memstore"} {
		b.Run(engine, func(b *testing.B) {
			world := vfs.NewMemFS()
			s, err := stores.Open(stores.Config{
				Engine: engine, Dir: "db", FS: world,
				MemtableBytes: 64 << 10, CacheBytes: 256 << 10,
				LogMemBytes: 8 << 20, IndexBuckets: 1 << 10,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			val := make([]byte, 64)
			for g := uint64(0); g < 16; g++ {
				for sub := uint64(0); sub < 256; sub++ {
					sk := kv.StateKey{Group: g, Sub: sub}
					if err := s.Put(sk.Bytes(), val); err != nil {
						b.Fatal(err)
					}
				}
			}
			ck := &kv.Checkpointer{FS: world, Dir: "checkpoints", Engine: engine}
			b.ResetTimer()
			b.ReportAllocs()
			var size int64
			for i := 0; i < b.N; i++ {
				_, n, err := ck.Save(s, uint64(i+1))
				if err != nil {
					b.Fatal(err)
				}
				size = n
			}
			b.ReportMetric(float64(size), "ckpt_bytes")
		})
	}
}

// BenchmarkRecoveryOverhead measures what enabling a checkpoint cadence
// costs on the happy path (no crashes): the same memstore trace through
// the recovery loop without a checkpointer versus with one saving every
// 10k ops to a MemFS. The 256-key working set keeps each save small, so
// checkpointed must stay within the 5% overhead budget recorded in
// results/bench-baseline.txt.
func BenchmarkRecoveryOverhead(b *testing.B) {
	for _, checkpointed := range []bool{false, true} {
		name := "plain"
		if checkpointed {
			name = "checkpointed"
		}
		b.Run(name, func(b *testing.B) {
			store := memstore.New()
			defer store.Close()
			tr := make([]gadget.Access, b.N)
			for i := range tr {
				a := kv.Access{Key: kv.StateKey{Group: 1, Sub: uint64(i % 256)}, Size: 64}
				if i%2 == 0 {
					a.Op = kv.OpPut
				} else {
					a.Op = kv.OpGet
				}
				tr[i] = a
			}
			opts := gadget.RecoveryOptions{}
			if checkpointed {
				opts.CheckpointEvery = 10000
				opts.Checkpointer = &kv.Checkpointer{
					FS: vfs.NewMemFS(), Dir: "checkpoints", Engine: "memstore",
				}
			}
			open := func(int) (gadget.Attempt, error) {
				return gadget.Attempt{Store: store}, nil
			}
			b.ResetTimer()
			b.ReportAllocs()
			res, err := gadget.RunWithRecovery(open, tr, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Ops != uint64(b.N) {
				b.Fatalf("ops = %d, want %d", res.Ops, b.N)
			}
		})
	}
}

// benchShardedOps drives a sharded TCP cluster (memstore shards behind
// protocol-v3 pipelined clients) with a fixed pool of concurrent
// workers issuing a 50/50 get/put mix. The workers share one
// shard.Client, so requests coalesce into batches and pipeline on each
// connection — the synchronous Store API only overlaps round trips when
// several goroutines drive it at once.
func benchShardedOps(b *testing.B, shards int, opts remote.PipelineOptions) {
	backing := make([]kv.Store, shards)
	for i := range backing {
		backing[i] = memstore.New()
	}
	srv, err := shard.Serve(backing, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	cli, err := shard.Dial(srv.Addrs(), opts)
	if err != nil {
		srv.Close()
		b.Fatal(err)
	}
	defer func() {
		cli.Close()
		srv.Close()
		for _, s := range backing {
			s.Close()
		}
	}()

	val := make([]byte, 64)
	keys := make([][]byte, 512)
	for i := range keys {
		keys[i] = kv.StateKey{Group: uint64(i % 8), Sub: uint64(i)}.Bytes()
		if err := cli.Put(keys[i], val); err != nil {
			b.Fatal(err)
		}
	}

	const workers = 16
	b.ResetTimer()
	b.ReportAllocs()
	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		n := b.N / workers
		if w < b.N%workers {
			n++
		}
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			for i := 0; i < n; i++ {
				k := keys[(w*131+i)%len(keys)]
				var err error
				if i&1 == 0 {
					_, err = cli.Get(k)
				} else {
					err = cli.Put(k, val)
				}
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w, n)
	}
	wg.Wait()
	b.StopTimer()
	select {
	case err := <-errCh:
		b.Fatal(err)
	default:
	}
	m := cli.Metrics()
	if batches := m["remote.batches"]; batches > 0 {
		b.ReportMetric(float64(m["remote.requests"])/float64(batches), "ops/batch")
	}
}

// BenchmarkShardedThroughput is the scaling curve behind the sharded
// server: 16 workers against 1/2/4/8 memstore shards, each shard an
// independent listener with its own pipelined connection. On a
// multi-core box the 4-shard point should clear 2.5x the 1-shard
// throughput; on a single core the curve is flat (every shard shares
// the same CPU) and only the batching win remains visible.
func BenchmarkShardedThroughput(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchShardedOps(b, shards, remote.PipelineOptions{Depth: 64})
		})
	}
}

// BenchmarkPipelineDepth sweeps the pipeline depth on one shard:
// depth=1 degenerates to a request/response lockstep (protocol-v2
// behaviour with v3 framing), while larger depths let the 16 workers
// keep many requests in flight and amortize syscalls across batches.
func BenchmarkPipelineDepth(b *testing.B) {
	for _, depth := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			benchShardedOps(b, 1, remote.PipelineOptions{Depth: depth})
		})
	}
}

// BenchmarkTracingOverhead measures the per-op cost of the tracing rig
// on memstore point ops through the replay collector: "off" runs with
// no tracer (the disabled path — one nil comparison per op), "sampled"
// with the default 1-in-64 sampler, and "traced" with every op traced.
// The disabled path must stay within 2% of off's baseline and the
// sampled path within 5% (see results/bench-baseline.txt); guarded by
// ci.sh's bench drift check.
func BenchmarkTracingOverhead(b *testing.B) {
	for _, mode := range []struct {
		name    string
		sampleN int // 0 = no tracer
	}{
		{"off", 0},
		{"sampled", 64},
		{"traced", 1},
	} {
		b.Run(mode.name, func(b *testing.B) {
			store := memstore.New()
			defer store.Close()
			var tracer *gadget.Tracer
			if mode.sampleN > 0 {
				tracer = gadget.NewTracer(gadget.TracerOptions{SampleN: mode.sampleN})
			}
			c, err := replay.NewCollector(store, replay.Options{Tracer: tracer})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-populate so map growth doesn't skew the timed loop.
			for i := 0; i < 1<<16; i++ {
				a := kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: uint64(i)}, Size: 64}
				if err := c.Do(a); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := kv.Access{Key: kv.StateKey{Group: 1, Sub: uint64(i % (1 << 16))}, Size: 64}
				if i%2 == 0 {
					a.Op = kv.OpPut
				} else {
					a.Op = kv.OpGet
				}
				if err := c.Do(a); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			c.Finish()
			if started, finished := tracer.Stats(); started != finished {
				b.Fatalf("trace leak: started=%d finished=%d", started, finished)
			}
		})
	}
}
