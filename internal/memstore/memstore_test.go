package memstore

import (
	"errors"
	"testing"

	"gadget/internal/kv"
)

func TestBasics(t *testing.T) {
	s := New()
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	s.Put([]byte("a"), []byte("1"))
	if v, _ := s.Get([]byte("a")); string(v) != "1" {
		t.Fatalf("Get = %q", v)
	}
	s.Merge([]byte("a"), []byte("2"))
	if v, _ := s.Get([]byte("a")); string(v) != "12" {
		t.Fatalf("merge = %q", v)
	}
	s.Delete([]byte("a"))
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
	if s.Len() != 0 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestValueIsolation(t *testing.T) {
	s := New()
	v := []byte("mutable")
	s.Put([]byte("k"), v)
	v[0] = 'X' // caller mutates its buffer after Put
	got, _ := s.Get([]byte("k"))
	if string(got) != "mutable" {
		t.Fatalf("store aliased caller buffer: %q", got)
	}
	got[0] = 'Y' // caller mutates the returned buffer
	got2, _ := s.Get([]byte("k"))
	if string(got2) != "mutable" {
		t.Fatalf("Get returned aliased buffer: %q", got2)
	}
}

func TestApproximateSizeAndClose(t *testing.T) {
	s := New()
	s.Put([]byte("key"), []byte("value"))
	if s.ApproximateSize() != 8 {
		t.Fatalf("size = %d", s.ApproximateSize())
	}
	s.Close()
	if err := s.Put([]byte("x"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put after close = %v", err)
	}
	if _, err := s.Get([]byte("x")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get after close = %v", err)
	}
	if err := s.Merge([]byte("x"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Merge after close = %v", err)
	}
	if err := s.Delete([]byte("x")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Delete after close = %v", err)
	}
}

func TestCaps(t *testing.T) {
	c := kv.CapsOf(New())
	if !c.NativeMerge || !c.InPlaceUpdate || !c.Snapshots || !c.RangeScans {
		t.Fatalf("caps = %+v", c)
	}
}
