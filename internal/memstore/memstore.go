// Package memstore provides a trivial in-memory map-backed kv.Store used
// as the reference model in property tests and as a zero-IO baseline in
// benchmarks.
package memstore

import (
	"sync"
	"sync/atomic"

	"gadget/internal/kv"
)

// Store is a map-backed kv.Store. The zero value is not usable; call New.
type Store struct {
	mu     sync.RWMutex
	m      map[string][]byte
	closed bool

	// Operation counters (atomics: Get runs under the read lock).
	gets, puts, merges, deletes atomic.Uint64
	snapshots                   atomic.Uint64
	iterOps                     atomic.Int64
}

var _ kv.Store = (*Store)(nil)

// New returns an empty store.
func New() *Store { return &Store{m: make(map[string][]byte)} }

// Caps reports native merge and in-place updates (a map does both), and
// snapshot/scan support: a full in-memory copy of the oracle is the
// cheapest consistent view available, so it counts as native.
func (s *Store) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, InPlaceUpdate: true, Snapshots: true, RangeScans: true}
}

// Snapshot implements kv.Snapshotter with a sorted copy of the live map
// taken under the read lock. The copy is the sorted view differential
// tests compare every other engine against.
func (s *Store) Snapshot() (kv.Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	var b kv.FallbackBuilder
	for k, v := range s.m {
		b.Add([]byte(k), v)
	}
	s.snapshots.Add(1)
	snap := b.Snapshot()
	snap.CountIterOps(&s.iterOps)
	return snap, nil
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	s.gets.Add(1)
	v, ok := s.m[string(key)]
	if !ok {
		return nil, kv.ErrNotFound
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, nil
}

// Put stores value under key.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.puts.Add(1)
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

// Merge appends operand to the value under key.
func (s *Store) Merge(key, operand []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.merges.Add(1)
	k := string(key)
	s.m[k] = append(s.m[k], operand...)
	return nil
}

// Delete removes key.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.deletes.Add(1)
	delete(s.m, string(key))
	return nil
}

// Metrics implements kv.Introspector: operation counters and live-key
// state under "memstore.*".
func (s *Store) Metrics() map[string]int64 {
	s.mu.RLock()
	keys := int64(len(s.m))
	var bytes int64
	for k, v := range s.m {
		bytes += int64(len(k) + len(v))
	}
	s.mu.RUnlock()
	return map[string]int64{
		"memstore.gets":      int64(s.gets.Load()),
		"memstore.puts":      int64(s.puts.Load()),
		"memstore.merges":    int64(s.merges.Load()),
		"memstore.deletes":   int64(s.deletes.Load()),
		"memstore.keys":      keys,
		"memstore.bytes":     bytes,
		"memstore.snapshots": int64(s.snapshots.Load()),
		"memstore.iter_ops":  s.iterOps.Load(),
	}
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// ApproximateSize returns total key+value bytes.
func (s *Store) ApproximateSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var sz int64
	for k, v := range s.m {
		sz += int64(len(k) + len(v))
	}
	return sz
}

// Close marks the store closed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
