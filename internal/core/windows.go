package core

import (
	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// windowOp implements tumbling and sliding windows under the W-ID
// strategy the paper describes: each (key, window) pair is one KV entry
// whose key is the window start timestamp. Incremental variants issue a
// get-put pair per assigned window; holistic variants issue a single
// merge. On trigger, the operator issues the final get (FGet) and a
// delete per expiring window.
type windowOp struct {
	driver
	typ      OperatorType
	holistic bool
	length   int64
	slide    int64
}

func newWindowOp(cfg Config, holistic bool, length, slide int64) *windowOp {
	typ := TumblingIncr
	switch {
	case holistic && length == slide:
		typ = TumblingHol
	case holistic:
		typ = SlidingHol
	case length != slide:
		typ = SlidingIncr
	}
	return &windowOp{driver: newDriver(cfg), typ: typ, holistic: holistic, length: length, slide: slide}
}

func (w *windowOp) Type() OperatorType { return w.typ }

// assignedWindows returns the start timestamps of every window containing t.
func assignedWindows(t, length, slide int64) []int64 {
	last := t - t%slide
	out := make([]int64, 0, length/slide+1)
	for start := last; start > t-length; start -= slide {
		if start < 0 {
			break
		}
		out = append(out, start)
	}
	return out
}

func (w *windowOp) OnEvent(e eventgen.Event, emit Emit) {
	w.stats.Events++
	for _, start := range assignedWindows(e.Time, w.length, w.slide) {
		expire := start + w.length + w.cfg.AllowedLatenessMs
		if expire <= w.watermark {
			// The window already fired and its lateness horizon passed.
			w.stats.LateDropped++
			continue
		}
		sk := kv.StateKey{Group: e.Key, Sub: uint64(start)}
		m, _ := w.getMachine(sk, expire)
		m.elements++
		m.bytes += e.Size
		if w.holistic {
			// State machine: MergeState -> done (bucket append).
			emit(kv.Access{Op: kv.OpMerge, Key: sk, Size: e.Size, Time: e.Time})
		} else {
			// State machine: GetState -> PutState -> done (figure 9).
			emit(kv.Access{Op: kv.OpGet, Key: sk, Time: e.Time})
			emit(kv.Access{Op: kv.OpPut, Key: sk, Size: w.cfg.AggStateSize, Time: e.Time})
		}
	}
}

func (w *windowOp) OnWatermark(wm int64, emit Emit) {
	if wm <= w.watermark {
		return
	}
	w.watermark = wm
	w.vindex.drain(wm, w.machines, func(m *machine) {
		// Trigger: FGet retrieves the window contents, delete clears it.
		emit(kv.Access{Op: kv.OpFGet, Key: m.key, Time: wm})
		emit(kv.Access{Op: kv.OpDelete, Key: m.key, Time: wm})
		w.stats.WindowsFired++
		w.terminate(m)
	})
}

// aggregationOp implements continuous per-key rolling aggregation: a
// get-put pair per event on the event key itself. State never expires
// (the paper: "their state requirements increase over time as the
// keyspace size of the input stream grows").
type aggregationOp struct {
	driver
}

func newAggregationOp(cfg Config) *aggregationOp {
	return &aggregationOp{driver: newDriver(cfg)}
}

func (a *aggregationOp) Type() OperatorType { return Aggregation }

func (a *aggregationOp) OnEvent(e eventgen.Event, emit Emit) {
	a.stats.Events++
	sk := kv.StateKey{Group: e.Key}
	m, _ := a.getMachine(sk, -1)
	m.elements++
	emit(kv.Access{Op: kv.OpGet, Key: sk, Time: e.Time})
	emit(kv.Access{Op: kv.OpPut, Key: sk, Size: a.cfg.AggStateSize, Time: e.Time})
}

func (a *aggregationOp) OnWatermark(wm int64, emit Emit) {
	if wm > a.watermark {
		a.watermark = wm
	}
}
