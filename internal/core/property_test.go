package core

import (
	"testing"
	"testing/quick"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// Harness-wide invariants that must hold for every operator over every
// synthetic stream:
//
//  1. every FGet is immediately followed by accesses consistent with a
//     trigger (window operators pair FGet with Delete);
//  2. no window state key is read or written after its Delete unless a
//     newer window re-creates it (checked per exact state key);
//  3. the number of machines alive at stream end is zero for windowed
//     operators (the closing MAX watermark flushes everything);
//  4. trace generation is deterministic.
func TestOperatorInvariants(t *testing.T) {
	ops := []OperatorType{
		TumblingIncr, TumblingHol, SlidingIncr, SlidingHol,
		SessionIncr, SessionHol, TumblingJoin, SlidingJoin,
		IntervalJoin, ContinJoin,
	}
	f := func(seed int64, rateSel, lateSel uint8) bool {
		for _, typ := range ops {
			cfg := Config{
				Operator:        typ,
				WindowLengthMs:  500,
				WindowSlideMs:   100,
				SessionGapMs:    300,
				IntervalLowerMs: 200,
				IntervalUpperMs: 400,
			}
			mkSrc := func() eventgen.Source {
				rate := []float64{100, 1000, 5000}[rateSel%3]
				late := []float64{0, 0.1}[lateSel%2]
				mk := func(stream uint8, pairs bool) eventgen.Source {
					g, err := eventgen.NewSynthetic(eventgen.Config{
						Events: 1500, Keys: 20, Seed: seed + int64(stream),
						RatePerSec: rate, LateFraction: late, MaxLatenessMs: 300,
						Stream: stream, StartEndPairs: pairs,
					})
					if err != nil {
						t.Fatal(err)
					}
					return eventgen.WithWatermarks(g, 50, 0)
				}
				if typ.IsJoin() {
					return eventgen.NewRoundRobin(mk(0, false), mk(1, true))
				}
				return mk(0, false)
			}
			op, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			trace := Generate(mkSrc(), op)

			// (4) determinism
			op2, _ := New(cfg)
			trace2 := Generate(mkSrc(), op2)
			if len(trace) != len(trace2) {
				t.Logf("%s: non-deterministic lengths", typ)
				return false
			}
			for i := range trace {
				if trace[i] != trace2[i] {
					t.Logf("%s: non-deterministic at %d", typ, i)
					return false
				}
			}

			// (1) and (2): per-key lifecycle
			deleted := map[kv.StateKey]bool{}
			for i, a := range trace {
				switch a.Op {
				case kv.OpDelete:
					deleted[a.Key] = true
				case kv.OpFGet:
					// An FGet belongs to a trigger; the same key must be
					// deleted in the following few accesses.
					ok := false
					for j := i + 1; j < len(trace) && j <= i+4; j++ {
						if trace[j].Op == kv.OpDelete && trace[j].Key == a.Key {
							ok = true
							break
						}
					}
					if !ok && typ != ContinJoin {
						t.Logf("%s: FGet at %d without matching delete", typ, i)
						return false
					}
				case kv.OpPut, kv.OpMerge:
					if deleted[a.Key] {
						// Window start timestamps never recur for window
						// operators with strictly advancing time, but
						// sessions and joins may legitimately recreate a
						// key; only flag exact re-use for plain windows.
						if typ == TumblingIncr || typ == TumblingHol ||
							typ == SlidingIncr || typ == SlidingHol {
							t.Logf("%s: write at %d to deleted window %v", typ, i, a.Key)
							return false
						}
						delete(deleted, a.Key)
					}
				}
			}

			// (3) all machines terminated
			if st := op.Stats(); st.ActiveMachines != 0 && typ != ContinJoin {
				t.Logf("%s: %d machines alive at end", typ, st.ActiveMachines)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// Aggregation never deletes and preserves input keys exactly.
func TestAggregationInvariants(t *testing.T) {
	g, _ := eventgen.NewSynthetic(eventgen.Config{Events: 2000, Keys: 30, Seed: 2})
	src := eventgen.WithWatermarks(g, 100, 0)
	op, _ := New(Config{Operator: Aggregation})
	trace := Generate(src, op)
	for i, a := range trace {
		if a.Op == kv.OpDelete || a.Op == kv.OpFGet || a.Op == kv.OpMerge {
			t.Fatalf("aggregation op %d = %v", i, a.Op)
		}
		if a.Key.Sub != 0 || a.Key.Group >= 30 {
			t.Fatalf("aggregation key %v", a.Key)
		}
	}
}
