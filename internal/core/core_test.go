package core

import (
	"testing"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// fixedSource emits a scripted sequence of items.
type fixedSource struct {
	items []eventgen.Item
	i     int
}

func (f *fixedSource) Next() (eventgen.Item, bool) {
	if f.i >= len(f.items) {
		return eventgen.Item{}, false
	}
	it := f.items[f.i]
	f.i++
	return it, true
}

func ev(t int64, key uint64) eventgen.Item {
	return eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: t, Key: key, Size: 10}}
}

func wm(t int64) eventgen.Item {
	return eventgen.Item{Kind: eventgen.ItemWatermark, WM: t}
}

func opCounts(trace []kv.Access) map[kv.Op]int {
	out := map[kv.Op]int{}
	for _, a := range trace {
		out[a.Op]++
	}
	return out
}

func mustOp(t *testing.T, typ OperatorType, cfg Config) Operator {
	t.Helper()
	cfg.Operator = typ
	op, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestNewAllTypes(t *testing.T) {
	for _, typ := range OperatorTypes() {
		op, err := New(Config{Operator: typ})
		if err != nil {
			t.Fatalf("New(%s): %v", typ, err)
		}
		if op.Type() != typ {
			t.Fatalf("Type() = %s, want %s", op.Type(), typ)
		}
	}
	if _, err := New(Config{Operator: "bogus"}); err == nil {
		t.Fatal("unknown operator should error")
	}
}

func TestAggregation(t *testing.T) {
	op := mustOp(t, Aggregation, Config{})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 7), ev(2, 8), ev(3, 7), wm(10), ev(11, 7),
	}}
	trace := Generate(src, op)
	// Exactly get-put per event, nothing on watermark.
	if len(trace) != 8 {
		t.Fatalf("trace len = %d, want 8", len(trace))
	}
	c := opCounts(trace)
	if c[kv.OpGet] != 4 || c[kv.OpPut] != 4 || c[kv.OpDelete] != 0 {
		t.Fatalf("counts = %v", c)
	}
	// State keys are the event keys (keyspace amplification 1).
	for _, a := range trace {
		if a.Key.Group != 7 && a.Key.Group != 8 || a.Key.Sub != 0 {
			t.Fatalf("unexpected state key %v", a.Key)
		}
	}
	if op.Stats().Events != 4 {
		t.Fatalf("stats = %+v", op.Stats())
	}
}

func TestTumblingIncremental(t *testing.T) {
	op := mustOp(t, TumblingIncr, Config{WindowLengthMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), ev(5, 1), ev(12, 1), // windows [0,10) and [10,20)
		wm(10), // fires [0,10)
		ev(15, 1),
		wm(25), // fires [10,20)
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	// 4 events * (get+put) + 2 windows * (fget+delete).
	if c[kv.OpGet] != 4 || c[kv.OpPut] != 4 || c[kv.OpFGet] != 2 || c[kv.OpDelete] != 2 {
		t.Fatalf("counts = %v", c)
	}
	if op.Stats().WindowsFired != 2 {
		t.Fatalf("fired = %d", op.Stats().WindowsFired)
	}
	// Window state keys use the window start timestamp.
	if trace[0].Key != (kv.StateKey{Group: 1, Sub: 0}) {
		t.Fatalf("first key = %v", trace[0].Key)
	}
}

func TestTumblingHolistic(t *testing.T) {
	op := mustOp(t, TumblingHol, Config{WindowLengthMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), ev(2, 1), ev(3, 1), wm(10),
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	if c[kv.OpMerge] != 3 || c[kv.OpPut] != 0 || c[kv.OpFGet] != 1 || c[kv.OpDelete] != 1 {
		t.Fatalf("counts = %v", c)
	}
	// Merge sizes carry the event payload.
	if trace[0].Size != 10 {
		t.Fatalf("merge size = %d", trace[0].Size)
	}
}

func TestSlidingAmplification(t *testing.T) {
	// length/slide = 5: each event is assigned to up to 5 windows.
	op := mustOp(t, SlidingIncr, Config{WindowLengthMs: 50, WindowSlideMs: 10})
	src := &fixedSource{items: []eventgen.Item{ev(100, 1)}}
	trace := Generate(src, op)
	c := opCounts(trace)
	if c[kv.OpGet] != 5 || c[kv.OpPut] != 5 {
		t.Fatalf("counts = %v (want 5 windows)", c)
	}
	// Early events near t=0 get fewer windows (no negative starts).
	op2 := mustOp(t, SlidingIncr, Config{WindowLengthMs: 50, WindowSlideMs: 10})
	trace2 := Generate(&fixedSource{items: []eventgen.Item{ev(5, 1)}}, op2)
	if n := len(trace2) / 2; n != 1 {
		t.Fatalf("t=5 assigned to %d windows, want 1", n)
	}
}

func TestLateEventsDropped(t *testing.T) {
	op := mustOp(t, TumblingIncr, Config{WindowLengthMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), wm(20), ev(2, 1), // event for window [0,10) after it fired
	}}
	trace := Generate(src, op)
	if op.Stats().LateDropped != 1 {
		t.Fatalf("late dropped = %d", op.Stats().LateDropped)
	}
	// No accesses for the dropped event beyond the original window ops.
	c := opCounts(trace)
	if c[kv.OpGet] != 1 || c[kv.OpPut] != 1 {
		t.Fatalf("counts = %v", c)
	}
}

func TestAllowedLatenessKeepsWindowsAlive(t *testing.T) {
	op := mustOp(t, TumblingIncr, Config{WindowLengthMs: 10, AllowedLatenessMs: 100})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), wm(20), ev(2, 1), // within allowed lateness: accepted
	}}
	Generate(src, op)
	if op.Stats().LateDropped != 0 {
		t.Fatal("event within allowed lateness was dropped")
	}
}

func TestWatermarkMonotonicity(t *testing.T) {
	op := mustOp(t, TumblingIncr, Config{WindowLengthMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), wm(15), wm(5), ev(22, 1), wm(15), wm(40),
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	// Both windows fire exactly once despite regressing watermarks.
	if c[kv.OpFGet] != 2 || c[kv.OpDelete] != 2 {
		t.Fatalf("counts = %v", c)
	}
}

func TestSessionWindowLifecycle(t *testing.T) {
	op := mustOp(t, SessionIncr, Config{SessionGapMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(1, 1), ev(5, 1), // one session, extended
		ev(30, 1), // second session (gap passed)
		wm(25),    // fires session 1 (ends at 5+10=15)
		wm(50),    // fires session 2
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	if c[kv.OpGet] != 3 || c[kv.OpPut] != 3 || c[kv.OpFGet] != 2 || c[kv.OpDelete] != 2 {
		t.Fatalf("counts = %v", c)
	}
	st := op.Stats()
	if st.WindowsFired != 2 || st.SessionMerges != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ActiveMachines != 0 {
		t.Fatalf("machines leaked: %d", st.ActiveMachines)
	}
}

func TestSessionMerge(t *testing.T) {
	op := mustOp(t, SessionIncr, Config{SessionGapMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(0, 1),  // session A [0, 10)
		ev(25, 1), // session B [25, 35)
		ev(18, 1), // bridges A (ends 10... 18 > 10): extends B? 18+10=28 >= 25 and 18 <= 35: overlaps B; 18 <= A.end(10)? no
	}}
	trace := Generate(src, op)
	// Event at 18 overlaps only B (A ended at 10 < 18): extension, no merge.
	if op.Stats().SessionMerges != 0 {
		t.Fatal("unexpected merge")
	}
	// Now a true bridge: sessions [0,10) and [12,22); event at 8 overlaps
	// both ([8,18) touches A and B).
	op2 := mustOp(t, SessionIncr, Config{SessionGapMs: 10})
	src2 := &fixedSource{items: []eventgen.Item{
		ev(0, 1), ev(12, 1), ev(8, 1), wm(100),
	}}
	trace2 := Generate(src2, op2)
	if op2.Stats().SessionMerges != 1 {
		t.Fatalf("merges = %d", op2.Stats().SessionMerges)
	}
	c := opCounts(trace2)
	// Merge emits get+merge+delete; only the surviving session fires.
	if c[kv.OpMerge] != 1 || c[kv.OpDelete] != 2 || c[kv.OpFGet] != 1 {
		t.Fatalf("counts = %v", c)
	}
	_ = trace
}

func TestSessionHolistic(t *testing.T) {
	op := mustOp(t, SessionHol, Config{SessionGapMs: 10})
	src := &fixedSource{items: []eventgen.Item{
		ev(0, 1), ev(2, 1), wm(100),
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	if c[kv.OpMerge] != 2 || c[kv.OpPut] != 0 || c[kv.OpFGet] != 1 || c[kv.OpDelete] != 1 {
		t.Fatalf("counts = %v", c)
	}
	_ = trace
}

func TestWindowJoin(t *testing.T) {
	op := mustOp(t, TumblingJoin, Config{WindowLengthMs: 10})
	mkEv := func(t int64, key uint64, stream uint8) eventgen.Item {
		return eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: t, Key: key, Size: 10, Stream: stream}}
	}
	src := &fixedSource{items: []eventgen.Item{
		mkEv(1, 1, 0), mkEv(2, 1, 1), mkEv(3, 1, 0), wm(10),
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	// 3 merges buffering; both sides' buckets fire: 2 fgets + 2 deletes.
	if c[kv.OpMerge] != 3 || c[kv.OpFGet] != 2 || c[kv.OpDelete] != 2 {
		t.Fatalf("counts = %v", c)
	}
	// The two streams' buckets must be distinct state keys.
	if trace[0].Key == trace[1].Key {
		t.Fatal("streams share a bucket")
	}
}

func TestIntervalJoin(t *testing.T) {
	op := mustOp(t, IntervalJoin, Config{IntervalLowerMs: 5, IntervalUpperMs: 10})
	mkEv := func(t int64, key uint64, stream uint8) eventgen.Item {
		return eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: t, Key: key, Size: 10, Stream: stream}}
	}
	src := &fixedSource{items: []eventgen.Item{
		mkEv(1, 1, 0), mkEv(3, 1, 1), wm(20),
	}}
	trace := Generate(src, op)
	c := opCounts(trace)
	// Each event: put (buffer) + get (probe); each expires: delete.
	if c[kv.OpPut] != 2 || c[kv.OpGet] != 2 || c[kv.OpDelete] != 2 {
		t.Fatalf("counts = %v", c)
	}
	if op.Stats().ActiveMachines != 0 {
		t.Fatal("interval join leaked buffered events")
	}
}

func TestContinuousJoin(t *testing.T) {
	op := mustOp(t, ContinJoin, Config{})
	start := eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: 1, Key: 9, Size: 32, Kind: eventgen.KindStart, Stream: 1}}
	probe1 := ev(2, 9)
	probe2 := ev(3, 9)
	probeMiss := ev(4, 55) // no open interval: get only
	end := eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: 5, Key: 9, Kind: eventgen.KindEnd, Stream: 1}}
	probeAfter := ev(6, 9) // interval closed: get only
	src := &fixedSource{items: []eventgen.Item{start, probe1, probe2, probeMiss, end, probeAfter}}
	trace := Generate(src, op)
	c := opCounts(trace)
	// put(start) + 4 gets (probes) + 2 merges (matched probes)
	// + fget+delete (accumulator) + delete (build record).
	if c[kv.OpPut] != 1 || c[kv.OpGet] != 4 || c[kv.OpMerge] != 2 || c[kv.OpDelete] != 2 || c[kv.OpFGet] != 1 {
		t.Fatalf("counts = %v", c)
	}
	if op.Stats().ActiveMachines != 0 {
		t.Fatal("continuous join leaked machines")
	}
	// End without start is a no-op.
	op2 := mustOp(t, ContinJoin, Config{})
	endOnly := eventgen.Item{Kind: eventgen.ItemEvent, Event: eventgen.Event{Time: 1, Key: 3, Kind: eventgen.KindEnd}}
	if n := len(Generate(&fixedSource{items: []eventgen.Item{endOnly}}, op2)); n != 0 {
		t.Fatalf("end-only trace len = %d", n)
	}
}

func TestAssignedWindows(t *testing.T) {
	// t=100, len=50, slide=10: starts 100,90,80,70,60.
	ws := assignedWindows(100, 50, 10)
	if len(ws) != 5 || ws[0] != 100 || ws[4] != 60 {
		t.Fatalf("windows = %v", ws)
	}
	// Tumbling: one window.
	ws = assignedWindows(17, 10, 10)
	if len(ws) != 1 || ws[0] != 10 {
		t.Fatalf("tumbling windows = %v", ws)
	}
	// Clamp at zero.
	ws = assignedWindows(3, 50, 10)
	if len(ws) != 1 || ws[0] != 0 {
		t.Fatalf("early windows = %v", ws)
	}
}

func TestDriveWithGeneratedStream(t *testing.T) {
	// End-to-end: synthetic source through a sliding window; invariants
	// on the resulting trace.
	gen, err := eventgen.NewSynthetic(eventgen.Config{Events: 5000, Keys: 20, Seed: 1, RatePerSec: 1000})
	if err != nil {
		t.Fatal(err)
	}
	src := eventgen.WithWatermarks(gen, 100, 0)
	op := mustOp(t, SlidingIncr, Config{WindowLengthMs: 5000, WindowSlideMs: 1000})
	trace := Generate(src, op)
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	c := opCounts(trace)
	// Every fired window pairs FGet with Delete.
	if c[kv.OpFGet] != c[kv.OpDelete] {
		t.Fatalf("fget %d != delete %d", c[kv.OpFGet], c[kv.OpDelete])
	}
	// Incremental windows: same number of gets and puts.
	if c[kv.OpGet] != c[kv.OpPut] {
		t.Fatalf("get %d != put %d", c[kv.OpGet], c[kv.OpPut])
	}
	// The closing watermark must fire all windows.
	if op.Stats().ActiveMachines != 0 {
		t.Fatalf("machines alive at end: %d", op.Stats().ActiveMachines)
	}
	// Event amplification ~ 2 * length/slide for sliding incremental.
	amp := float64(len(trace)) / 5000
	if amp < 5 || amp > 14 {
		t.Fatalf("amplification = %v, want ~10-12", amp)
	}
}
