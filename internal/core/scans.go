package core

import (
	"sort"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// The scan-aware workloads exercise the range-scan path of the store
// API (kv.Snapshotter / kv.RangeScanner): instead of retrieving one
// bucket per trigger, they drain or probe a whole key range with an
// OpScan access. An OpScan with key K covers the consistent inclusive
// range [K, K.GroupEnd()] — one StateKey encodes the range, so the
// trace format is unchanged.

// topKOp implements a windowed top-K drain: every event maintains an
// incremental per-(window, event-key) counter (a get-put pair, as the
// incremental windows do), and on trigger the operator drains the whole
// window's counter range with one scan — the ranking read — followed by
// a delete per live counter. State keys group by window start so the
// drain is a single contiguous range.
type topKOp struct {
	driver
	length int64
	// tracked mirrors the live counters per window (hIndex role): window
	// start -> event key -> count. Used to size and order the drain.
	tracked map[int64]map[uint64]uint64
}

func newTopKOp(cfg Config) *topKOp {
	return &topKOp{driver: newDriver(cfg), length: cfg.WindowLengthMs, tracked: make(map[int64]map[uint64]uint64)}
}

func (t *topKOp) Type() OperatorType { return TopKDrain }

// topKRootSub namespaces the per-window root machine (vIndex expiry
// only; never read or written) above any event key.
const topKRootSub = ^uint64(0)

func (t *topKOp) OnEvent(e eventgen.Event, emit Emit) {
	t.stats.Events++
	start := e.Time - e.Time%t.length
	expire := start + t.length + t.cfg.AllowedLatenessMs
	if expire <= t.watermark {
		t.stats.LateDropped++
		return
	}
	root := kv.StateKey{Group: uint64(start), Sub: topKRootSub}
	if _, created := t.getMachine(root, expire); created {
		t.tracked[start] = make(map[uint64]uint64)
	}
	t.tracked[start][e.Key]++
	sk := kv.StateKey{Group: uint64(start), Sub: e.Key}
	emit(kv.Access{Op: kv.OpGet, Key: sk, Time: e.Time})
	emit(kv.Access{Op: kv.OpPut, Key: sk, Size: t.cfg.AggStateSize, Time: e.Time})
}

func (t *topKOp) OnWatermark(wm int64, emit Emit) {
	if wm <= t.watermark {
		return
	}
	t.watermark = wm
	t.vindex.drain(wm, t.machines, func(m *machine) {
		start := int64(m.key.Group)
		// Trigger: one scan drains every counter of the window, then the
		// counters are cleared in key order (the order the scan yields).
		emit(kv.Access{Op: kv.OpScan, Key: kv.StateKey{Group: m.key.Group}, Time: wm})
		keys := make([]uint64, 0, len(t.tracked[start]))
		for k := range t.tracked[start] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			emit(kv.Access{Op: kv.OpDelete, Key: kv.StateKey{Group: m.key.Group, Sub: k}, Time: wm})
		}
		delete(t.tracked, start)
		t.stats.WindowsFired++
		t.terminate(m)
	})
}

// rangeJoinOp implements a range-join probe: stream 0 (build) buffers
// each event under its timestamp, exactly like the interval join's
// build side; stream 1 (probe) issues one scan over the build buffer's
// time range [t-upper, end of group] instead of a point read — the
// asymmetric read-heavy probe of an event-time range join. Build
// entries expire when the watermark passes their validity horizon.
type rangeJoinOp struct {
	driver
	lower, upper int64
}

func newRangeJoinOp(cfg Config) *rangeJoinOp {
	return &rangeJoinOp{driver: newDriver(cfg), lower: cfg.IntervalLowerMs, upper: cfg.IntervalUpperMs}
}

func (rj *rangeJoinOp) Type() OperatorType { return RangeJoinProbe }

func (rj *rangeJoinOp) OnEvent(e eventgen.Event, emit Emit) {
	rj.stats.Events++
	if e.Time+rj.upper+rj.cfg.AllowedLatenessMs <= rj.watermark {
		rj.stats.LateDropped++
		return
	}
	if e.Stream&1 == 0 {
		own := kv.StateKey{Group: streamGroup(e.Key, 0), Sub: uint64(e.Time)}
		m, _ := rj.getMachine(own, e.Time+rj.upper+rj.cfg.AllowedLatenessMs)
		m.elements++
		m.bytes += e.Size
		emit(kv.Access{Op: kv.OpPut, Key: own, Size: e.Size, Time: e.Time})
		return
	}
	lo := e.Time - rj.upper
	if lo < 0 {
		lo = 0
	}
	emit(kv.Access{Op: kv.OpScan, Key: kv.StateKey{Group: streamGroup(e.Key, 0), Sub: uint64(lo)}, Time: e.Time})
}

func (rj *rangeJoinOp) OnWatermark(wm int64, emit Emit) {
	if wm <= rj.watermark {
		return
	}
	rj.watermark = wm
	rj.vindex.drain(wm, rj.machines, func(m *machine) {
		emit(kv.Access{Op: kv.OpDelete, Key: m.key, Time: wm})
		rj.stats.WindowsFired++
		rj.terminate(m)
	})
}
