package core

import (
	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// streamGroup namespaces an event key by input stream so that the two
// sides of a join keep separate buckets in the same store.
func streamGroup(key uint64, stream uint8) uint64 {
	return key<<1 | uint64(stream)
}

// windowJoinOp implements tumbling and sliding window joins: both inputs
// buffer their events into per-(key, stream, window) buckets (a merge per
// assigned window — window joins collect contents like holistic windows),
// and on trigger the operator retrieves both buckets to produce matches,
// then clears them.
type windowJoinOp struct {
	driver
	typ    OperatorType
	length int64
	slide  int64
}

func newWindowJoinOp(cfg Config, length, slide int64) *windowJoinOp {
	typ := TumblingJoin
	if length != slide {
		typ = SlidingJoin
	}
	return &windowJoinOp{driver: newDriver(cfg), typ: typ, length: length, slide: slide}
}

func (w *windowJoinOp) Type() OperatorType { return w.typ }

func (w *windowJoinOp) OnEvent(e eventgen.Event, emit Emit) {
	w.stats.Events++
	for _, start := range assignedWindows(e.Time, w.length, w.slide) {
		expire := start + w.length + w.cfg.AllowedLatenessMs
		if expire <= w.watermark {
			w.stats.LateDropped++
			continue
		}
		sk := kv.StateKey{Group: streamGroup(e.Key, e.Stream), Sub: uint64(start)}
		m, _ := w.getMachine(sk, expire)
		m.elements++
		m.bytes += e.Size
		m.sides[e.Stream&1]++
		emit(kv.Access{Op: kv.OpMerge, Key: sk, Size: e.Size, Time: e.Time})
	}
}

func (w *windowJoinOp) OnWatermark(wm int64, emit Emit) {
	if wm <= w.watermark {
		return
	}
	w.watermark = wm
	w.vindex.drain(wm, w.machines, func(m *machine) {
		emit(kv.Access{Op: kv.OpFGet, Key: m.key, Time: wm})
		emit(kv.Access{Op: kv.OpDelete, Key: m.key, Time: wm})
		w.stats.WindowsFired++
		w.terminate(m)
	})
}

// bufferRootSub is the namespace of a join buffer's map-state root,
// distinct from any event-timestamp namespace.
const bufferRootSub = ^uint64(0)

// intervalJoinOp implements the interval join: an event from one stream
// matches events of the other stream within [t+lower, t+upper]. Each
// event is stored under its own (key, timestamp) state entry (a put) and
// probes the opposite stream's buffer (a get) — the equal get/put mix of
// the paper's Table 1. Events are deleted when the watermark passes their
// validity horizon.
type intervalJoinOp struct {
	driver
	lower, upper int64
}

func newIntervalJoinOp(cfg Config) *intervalJoinOp {
	return &intervalJoinOp{driver: newDriver(cfg), lower: cfg.IntervalLowerMs, upper: cfg.IntervalUpperMs}
}

func (ij *intervalJoinOp) Type() OperatorType { return IntervalJoin }

func (ij *intervalJoinOp) OnEvent(e eventgen.Event, emit Emit) {
	ij.stats.Events++
	if e.Time+ij.upper+ij.cfg.AllowedLatenessMs <= ij.watermark {
		ij.stats.LateDropped++
		return
	}
	// Buffer own event under its timestamp; probe the opposite stream's
	// per-key buffer root (one map-state read per event, as Flink's
	// interval join issues — hence the equal get/put mix of Table 1).
	own := kv.StateKey{Group: streamGroup(e.Key, e.Stream), Sub: uint64(e.Time)}
	other := kv.StateKey{Group: streamGroup(e.Key, 1-e.Stream&1), Sub: bufferRootSub}
	m, _ := ij.getMachine(own, e.Time+ij.upper+ij.cfg.AllowedLatenessMs)
	m.elements++
	m.bytes += e.Size
	emit(kv.Access{Op: kv.OpPut, Key: own, Size: e.Size, Time: e.Time})
	emit(kv.Access{Op: kv.OpGet, Key: other, Time: e.Time})
}

func (ij *intervalJoinOp) OnWatermark(wm int64, emit Emit) {
	if wm <= ij.watermark {
		return
	}
	ij.watermark = wm
	ij.vindex.drain(wm, ij.machines, func(m *machine) {
		emit(kv.Access{Op: kv.OpDelete, Key: m.key, Time: wm})
		ij.stats.WindowsFired++
		ij.terminate(m)
	})
}

// continuousJoinOp implements the continuous join of §2.2: the stream
// encodes validity intervals (KindStart opens one, KindEnd closes it).
// Start events put the build record; record events probe it (a get) and,
// when the interval is open, fold the match into a per-key result
// accumulator (a merge); end events delete the build record and the
// accumulator. The Borg stream thus "triggers a state cleanup per job
// completed" and the Taxi stream "a delete for every passenger drop-off".
type continuousJoinOp struct {
	driver
	// open tracks keys with an open validity interval and whether any
	// match was accumulated (the hIndex role).
	open map[uint64]*contState
}

type contState struct {
	accumulated bool
}

const (
	contBuildSub = 0
	contAccumSub = 1
)

func newContinuousJoinOp(cfg Config) *continuousJoinOp {
	return &continuousJoinOp{driver: newDriver(cfg), open: make(map[uint64]*contState)}
}

func (cj *continuousJoinOp) Type() OperatorType { return ContinJoin }

func (cj *continuousJoinOp) OnEvent(e eventgen.Event, emit Emit) {
	cj.stats.Events++
	buildKey := kv.StateKey{Group: e.Key, Sub: contBuildSub}
	accumKey := kv.StateKey{Group: e.Key, Sub: contAccumSub}
	switch e.Kind {
	case eventgen.KindStart:
		// A start on an already-open interval refreshes the build record
		// but keeps any accumulated matches.
		if _, ok := cj.open[e.Key]; !ok {
			cj.open[e.Key] = &contState{}
		}
		m, _ := cj.getMachine(buildKey, -1)
		m.elements++
		m.bytes = e.Size
		emit(kv.Access{Op: kv.OpPut, Key: buildKey, Size: e.Size, Time: e.Time})
	case eventgen.KindEnd:
		st, ok := cj.open[e.Key]
		if !ok {
			return // end without a matching start: nothing buffered
		}
		// Emit the joined result and clean up state.
		if st.accumulated {
			emit(kv.Access{Op: kv.OpFGet, Key: accumKey, Time: e.Time})
			emit(kv.Access{Op: kv.OpDelete, Key: accumKey, Time: e.Time})
			if m, ok := cj.machines[accumKey]; ok {
				cj.terminate(m)
			}
		}
		emit(kv.Access{Op: kv.OpDelete, Key: buildKey, Time: e.Time})
		if m, ok := cj.machines[buildKey]; ok {
			cj.terminate(m)
		}
		delete(cj.open, e.Key)
		cj.stats.WindowsFired++
	default: // KindRecord probes
		emit(kv.Access{Op: kv.OpGet, Key: buildKey, Time: e.Time})
		if st, ok := cj.open[e.Key]; ok {
			st.accumulated = true
			m, _ := cj.getMachine(accumKey, -1)
			m.elements++
			m.bytes += e.Size
			emit(kv.Access{Op: kv.OpMerge, Key: accumKey, Size: e.Size, Time: e.Time})
		}
	}
}

func (cj *continuousJoinOp) OnWatermark(wm int64, emit Emit) {
	if wm > cj.watermark {
		cj.watermark = wm
	}
}
