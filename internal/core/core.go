// Package core implements the Gadget benchmark harness itself — the
// paper's primary contribution. It simulates the state access logic of
// streaming operators without materializing operator state: a driver
// (Algorithm 1 in the paper) maps input events to per-state-key finite
// state machines through an hIndex (event key -> state keys) and a vIndex
// (expiration time -> state keys), and the state machines emit the state
// access stream (get/put/merge/delete tuples) that the performance
// evaluator replays against a KV store.
//
// Eleven predefined workloads cover the operators of the paper's §2.2:
// tumbling/sliding/session windows in incremental and holistic variants,
// tumbling/sliding window joins, interval and continuous joins, and
// continuous aggregation. Two scan-aware workloads (windowed top-K
// drain and range-join probe) extend the set with range-scan accesses.
// New operators implement the Operator interface (the paper's
// assignStateMachines/run/terminate extension points).
package core

import (
	"container/heap"
	"fmt"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// OperatorType names one of the predefined workloads.
type OperatorType string

// The eleven predefined workloads (paper §6.1).
const (
	TumblingIncr OperatorType = "tumbling-incr"
	TumblingHol  OperatorType = "tumbling-hol"
	SlidingIncr  OperatorType = "sliding-incr"
	SlidingHol   OperatorType = "sliding-hol"
	SessionIncr  OperatorType = "session-incr"
	SessionHol   OperatorType = "session-hol"
	TumblingJoin OperatorType = "tumbling-join"
	SlidingJoin  OperatorType = "sliding-join"
	IntervalJoin OperatorType = "interval-join"
	ContinJoin   OperatorType = "continuous-join"
	Aggregation  OperatorType = "aggregation"
)

// Scan-aware workloads (see scans.go): these exercise range scans over
// the store (kv.OpScan) in addition to point operations.
const (
	TopKDrain      OperatorType = "windowed-topk"
	RangeJoinProbe OperatorType = "range-join-probe"
)

// OperatorTypes lists all predefined workloads.
func OperatorTypes() []OperatorType {
	return []OperatorType{
		TumblingIncr, TumblingHol, SlidingIncr, SlidingHol,
		SessionIncr, SessionHol, TumblingJoin, SlidingJoin,
		IntervalJoin, ContinJoin, Aggregation,
		TopKDrain, RangeJoinProbe,
	}
}

// IsJoin reports whether the operator consumes two input streams.
func (t OperatorType) IsJoin() bool {
	switch t {
	case TumblingJoin, SlidingJoin, IntervalJoin, ContinJoin, RangeJoinProbe:
		return true
	}
	return false
}

// Config parameterizes an operator, mirroring the paper's defaults:
// 5s windows, 1s slide, 2min session gap, interval join bounds [2min,
// 3min], watermark every 100 events.
type Config struct {
	Operator OperatorType `json:"type"`

	// WindowLengthMs is the tumbling/sliding window length (default 5000).
	WindowLengthMs int64 `json:"window_length_ms"`
	// WindowSlideMs is the sliding window slide (default 1000).
	WindowSlideMs int64 `json:"window_slide_ms"`
	// SessionGapMs is the session window inactivity gap (default 120000).
	SessionGapMs int64 `json:"session_gap_ms"`
	// IntervalLowerMs/IntervalUpperMs bound the interval join (defaults
	// 120000 and 180000).
	IntervalLowerMs int64 `json:"interval_lower_ms"`
	IntervalUpperMs int64 `json:"interval_upper_ms"`
	// AllowedLatenessMs extends window lifetime past the watermark.
	AllowedLatenessMs int64 `json:"allowed_lateness_ms"`
	// AggStateSize is the byte size of incremental aggregates (default 16).
	AggStateSize uint32 `json:"agg_state_size"`
}

func (c Config) withDefaults() Config {
	if c.WindowLengthMs <= 0 {
		c.WindowLengthMs = 5000
	}
	if c.WindowSlideMs <= 0 {
		c.WindowSlideMs = 1000
	}
	if c.SessionGapMs <= 0 {
		c.SessionGapMs = 120000
	}
	if c.IntervalLowerMs <= 0 {
		c.IntervalLowerMs = 120000
	}
	if c.IntervalUpperMs <= 0 {
		c.IntervalUpperMs = 180000
	}
	if c.AggStateSize == 0 {
		c.AggStateSize = 16
	}
	return c
}

// Emit receives each generated state access in order.
type Emit func(kv.Access)

// Operator simulates one streaming operator's state access logic. The
// driver feeds it events and watermarks; it emits state accesses.
type Operator interface {
	// Type returns the operator's workload type.
	Type() OperatorType
	// OnEvent processes one input event (assignStateMachines + run in
	// the paper's Algorithm 1).
	OnEvent(e eventgen.Event, emit Emit)
	// OnWatermark advances event time, firing and terminating expired
	// state machines (Algorithm 1's onWatermark).
	OnWatermark(wm int64, emit Emit)
	// Stats reports counters accumulated since construction.
	Stats() Stats
}

// Stats counts driver-level activity.
type Stats struct {
	Events         uint64
	LateDropped    uint64
	WindowsFired   uint64
	SessionMerges  uint64
	ActiveMachines int
}

// New constructs one of the predefined operators.
func New(cfg Config) (Operator, error) {
	c := cfg.withDefaults()
	switch c.Operator {
	case TumblingIncr:
		return newWindowOp(c, false, c.WindowLengthMs, c.WindowLengthMs), nil
	case TumblingHol:
		return newWindowOp(c, true, c.WindowLengthMs, c.WindowLengthMs), nil
	case SlidingIncr:
		return newWindowOp(c, false, c.WindowLengthMs, c.WindowSlideMs), nil
	case SlidingHol:
		return newWindowOp(c, true, c.WindowLengthMs, c.WindowSlideMs), nil
	case SessionIncr:
		return newSessionOp(c, false), nil
	case SessionHol:
		return newSessionOp(c, true), nil
	case TumblingJoin:
		return newWindowJoinOp(c, c.WindowLengthMs, c.WindowLengthMs), nil
	case SlidingJoin:
		return newWindowJoinOp(c, c.WindowLengthMs, c.WindowSlideMs), nil
	case IntervalJoin:
		return newIntervalJoinOp(c), nil
	case ContinJoin:
		return newContinuousJoinOp(c), nil
	case Aggregation:
		return newAggregationOp(c), nil
	case TopKDrain:
		return newTopKOp(c), nil
	case RangeJoinProbe:
		return newRangeJoinOp(c), nil
	default:
		return nil, fmt.Errorf("core: unknown operator %q", cfg.Operator)
	}
}

// machine is the metadata the driver keeps per state key — enough to
// regenerate accurate accesses without materializing operator state
// (paper §5.2: "it does not generate the actual operator state").
type machine struct {
	key      kv.StateKey
	expireAt int64
	elements int
	bytes    uint32
	// aux distinguishes per-stream buckets in window joins and session
	// bounds in session windows.
	sessionStart int64
	sessionEnd   int64
	sides        [2]int
}

// vIndex maps expiration times to state keys (a min-heap with lazy
// invalidation: entries whose machine moved its expiry are skipped).
type vIndex struct {
	h expHeap
}

type expEntry struct {
	at  int64
	key kv.StateKey
}

type expHeap []expEntry

func (h expHeap) Len() int            { return len(h) }
func (h expHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h expHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *expHeap) Push(x interface{}) { *h = append(*h, x.(expEntry)) }
func (h *expHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func (v *vIndex) add(at int64, key kv.StateKey) {
	heap.Push(&v.h, expEntry{at: at, key: key})
}

// drain pops every entry with at <= wm, calling fire for entries that
// still match their machine's current expiry (stale entries are skipped).
func (v *vIndex) drain(wm int64, machines map[kv.StateKey]*machine, fire func(*machine)) {
	for len(v.h) > 0 && v.h[0].at <= wm {
		e := heap.Pop(&v.h).(expEntry)
		m, ok := machines[e.key]
		if !ok || m.expireAt != e.at {
			continue // terminated or re-registered with a later expiry
		}
		fire(m)
	}
}

// driver bundles the shared state every built-in operator uses.
type driver struct {
	cfg       Config
	machines  map[kv.StateKey]*machine
	vindex    vIndex
	watermark int64
	stats     Stats
}

func newDriver(cfg Config) driver {
	return driver{cfg: cfg, machines: make(map[kv.StateKey]*machine), watermark: -1}
}

func (d *driver) Stats() Stats {
	s := d.stats
	s.ActiveMachines = len(d.machines)
	return s
}

// getMachine returns the machine for key, creating it if needed.
func (d *driver) getMachine(key kv.StateKey, expireAt int64) (*machine, bool) {
	if m, ok := d.machines[key]; ok {
		return m, false
	}
	m := &machine{key: key, expireAt: expireAt}
	d.machines[key] = m
	if expireAt >= 0 {
		d.vindex.add(expireAt, key)
	}
	return m, true
}

// terminate removes a machine from both indexes (lazily from vIndex).
func (d *driver) terminate(m *machine) {
	delete(d.machines, m.key)
}
