package core

import (
	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// sessionOp implements session windows with merging, as in Flink: every
// event initially defines a window [t, t+gap); overlapping windows of the
// same key merge. State keys are (event key, session start). Merging two
// sessions reads both, folds the source into the target (a merge
// operation, which is why the paper's Table 1 shows MERGE ops even for
// incremental session windows) and deletes the source.
type sessionOp struct {
	driver
	holistic bool
	gap      int64
	// sessions tracks the active sessions per event key, kept disjoint
	// and sorted by start (the hIndex of the paper's driver).
	sessions map[uint64][]*machine
}

func newSessionOp(cfg Config, holistic bool) *sessionOp {
	return &sessionOp{
		driver:   newDriver(cfg),
		holistic: holistic,
		gap:      cfg.SessionGapMs,
		sessions: make(map[uint64][]*machine),
	}
}

func (s *sessionOp) Type() OperatorType {
	if s.holistic {
		return SessionHol
	}
	return SessionIncr
}

// overlaps reports whether the proto-window [t, t+gap) of a new event
// touches session m.
func (s *sessionOp) overlaps(m *machine, t int64) bool {
	return t+s.gap >= m.sessionStart && t <= m.sessionEnd
}

func (s *sessionOp) OnEvent(e eventgen.Event, emit Emit) {
	s.stats.Events++
	if e.Time+s.gap+s.cfg.AllowedLatenessMs <= s.watermark {
		s.stats.LateDropped++
		return
	}
	list := s.sessions[e.Key]
	// Find sessions overlapping the event's proto-window (at most two:
	// the list is disjoint).
	var hit []*machine
	for _, m := range list {
		if s.overlaps(m, e.Time) {
			hit = append(hit, m)
		}
	}
	switch len(hit) {
	case 0:
		// New session.
		sk := kv.StateKey{Group: e.Key, Sub: uint64(e.Time)}
		expire := e.Time + s.gap + s.cfg.AllowedLatenessMs
		m, created := s.getMachine(sk, expire)
		if !created {
			// A session with this exact start exists but didn't overlap
			// (can't happen with disjoint sessions); treat as extension.
			hit = append(hit, m)
		} else {
			m.sessionStart = e.Time
			m.sessionEnd = e.Time + s.gap
			m.elements = 1
			m.bytes = e.Size
			s.sessions[e.Key] = append(s.sessions[e.Key], m)
			s.emitAppend(m, e, emit)
			return
		}
		fallthrough
	case 1:
		m := hit[0]
		s.extend(m, e.Time)
		s.emitAppend(m, e, emit)
	default:
		// The event bridges two sessions: fold the later into the earlier.
		a, b := hit[0], hit[1]
		if b.sessionStart < a.sessionStart {
			a, b = b, a
		}
		s.stats.SessionMerges++
		// Read both sessions, merge the source bucket into the target,
		// delete the source, then append the event to the target.
		emit(kv.Access{Op: kv.OpGet, Key: b.key, Time: e.Time})
		emit(kv.Access{Op: kv.OpMerge, Key: a.key, Size: b.bytes, Time: e.Time})
		emit(kv.Access{Op: kv.OpDelete, Key: b.key, Time: e.Time})
		a.elements += b.elements
		a.bytes += b.bytes
		if b.sessionEnd > a.sessionEnd {
			a.sessionEnd = b.sessionEnd
		}
		s.removeSession(e.Key, b)
		s.terminate(b)
		s.extend(a, e.Time)
		s.emitAppend(a, e, emit)
	}
}

// emitAppend adds the event to session m's bucket.
func (s *sessionOp) emitAppend(m *machine, e eventgen.Event, emit Emit) {
	if s.holistic {
		emit(kv.Access{Op: kv.OpMerge, Key: m.key, Size: e.Size, Time: e.Time})
	} else {
		emit(kv.Access{Op: kv.OpGet, Key: m.key, Time: e.Time})
		emit(kv.Access{Op: kv.OpPut, Key: m.key, Size: s.cfg.AggStateSize, Time: e.Time})
	}
	m.elements++
	m.bytes += e.Size
}

// extend pushes the session end (and expiry) forward for a new event.
func (s *sessionOp) extend(m *machine, t int64) {
	if t+s.gap > m.sessionEnd {
		m.sessionEnd = t + s.gap
	}
	newExpire := m.sessionEnd + s.cfg.AllowedLatenessMs
	if newExpire != m.expireAt {
		m.expireAt = newExpire
		s.vindex.add(newExpire, m.key)
	}
}

func (s *sessionOp) removeSession(key uint64, m *machine) {
	list := s.sessions[key]
	for i, x := range list {
		if x == m {
			s.sessions[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.sessions[key]) == 0 {
		delete(s.sessions, key)
	}
}

func (s *sessionOp) OnWatermark(wm int64, emit Emit) {
	if wm <= s.watermark {
		return
	}
	s.watermark = wm
	s.vindex.drain(wm, s.machines, func(m *machine) {
		emit(kv.Access{Op: kv.OpFGet, Key: m.key, Time: wm})
		emit(kv.Access{Op: kv.OpDelete, Key: m.key, Time: wm})
		s.stats.WindowsFired++
		s.removeSession(m.key.Group, m)
		s.terminate(m)
	})
}
