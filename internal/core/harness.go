package core

import (
	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// Drive is the paper's Algorithm 1: it pulls the source to exhaustion,
// assigning events to state machines (OnEvent) and terminating expired
// machines on watermarks (OnWatermark). Every state access the operator
// produces is passed to emit in order. In online mode emit applies the
// access to a live store; in offline mode it appends to a trace.
func Drive(src eventgen.Source, op Operator, emit Emit) {
	for {
		it, ok := src.Next()
		if !ok {
			return
		}
		switch it.Kind {
		case eventgen.ItemEvent:
			op.OnEvent(it.Event, emit)
		case eventgen.ItemWatermark:
			op.OnWatermark(it.WM, emit)
		}
	}
}

// DriveUntil is Drive with a stop predicate checked between source
// items: once stop returns true, generation ends early. Online runners
// use it to halt event generation when the store has started failing
// instead of grinding through the rest of the workload.
func DriveUntil(src eventgen.Source, op Operator, emit Emit, stop func() bool) {
	for {
		if stop() {
			return
		}
		it, ok := src.Next()
		if !ok {
			return
		}
		switch it.Kind {
		case eventgen.ItemEvent:
			op.OnEvent(it.Event, emit)
		case eventgen.ItemWatermark:
			op.OnWatermark(it.WM, emit)
		}
	}
}

// Generate runs Drive in offline mode, materializing the state access
// stream.
func Generate(src eventgen.Source, op Operator) []kv.Access {
	var out []kv.Access
	Drive(src, op, func(a kv.Access) { out = append(out, a) })
	return out
}
