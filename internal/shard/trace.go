package shard

import (
	"sync"

	"gadget/internal/kv"
	"gadget/internal/remote"
	"gadget/internal/tracing"
)

var _ kv.Traceable = (*Client)(nil)

// DoTraced implements kv.Traceable. Point operations charge the route
// decision to StageRoute and then ride the owning shard's traced
// pipeline. Scans fan out with untraced per-shard calls (a pooled Ctx
// must not be shared across goroutines), charging the whole concurrent
// fan-out wait to StageFanout and the k-way merge to StageMerge.
func (c *Client) DoTraced(tc *tracing.Ctx, op kv.TracedOp) (kv.TracedResult, error) {
	if op.Op == kv.OpScan {
		return c.tracedScan(tc, op.Lo, op.Hi)
	}
	t0 := tc.Now()
	conn := c.conn(op.Key)
	tc.AddSince(tracing.StageRoute, t0)
	return conn.DoTraced(tc, op)
}

// tracedScan mirrors ScanRange with fan-out/merge attribution.
func (c *Client) tracedScan(tc *tracing.Ctx, lo, hi kv.StateKey) (kv.TracedResult, error) {
	c.scans.Add(1)
	t0 := tc.Now()
	parts := make([][]kv.Entry, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for i, conn := range c.conns {
		wg.Add(1)
		go func(i int, conn *remote.PipelinedClient) {
			defer wg.Done()
			parts[i], errs[i] = conn.ScanRange(lo, hi)
		}(i, conn)
	}
	wg.Wait()
	tc.AddSince(tracing.StageFanout, t0)
	for _, err := range errs {
		if err != nil {
			return kv.TracedResult{}, err
		}
	}
	tm := tc.Now()
	merged := mergeSorted(parts)
	tc.AddSince(tracing.StageMerge, tm)
	return kv.TracedResult{Entries: merged}, nil
}
