package shard

import (
	"hash/fnv"
	"testing"
)

// FuzzShardRouting checks the routing invariants for arbitrary keys:
// the shard index is always in range, deterministic, independent of the
// caller, and exactly FNV-1a mod n (the stdlib reference), so every
// client and server build agrees on key placement for a fixed shard
// count.
func FuzzShardRouting(f *testing.F) {
	f.Add([]byte(nil))
	f.Add([]byte(""))
	f.Add([]byte("k"))
	f.Add([]byte("key-1234567890"))
	f.Add(make([]byte, 1024))

	f.Fuzz(func(t *testing.T, key []byte) {
		for n := 1; n <= 16; n++ {
			got := Route(key, n)
			if got < 0 || got >= n {
				t.Fatalf("Route(%x, %d) = %d out of range", key, n, got)
			}
			if again := Route(key, n); again != got {
				t.Fatalf("Route(%x, %d) unstable: %d then %d", key, n, got, again)
			}
			h := fnv.New64a()
			h.Write(key)
			if want := int(h.Sum64() % uint64(n)); got != want {
				t.Fatalf("Route(%x, %d) = %d, reference FNV-1a says %d", key, n, got, want)
			}
		}
		if Route(key, 1) != 0 {
			t.Fatalf("single shard must own everything")
		}
	})
}
