// Package shard partitions a keyspace across N independent store
// servers. Server runs one remote.Server per shard — shared-nothing: no
// cross-shard locks, one engine per shard, so N shards scale service
// parallelism across cores. Client implements kv.Store on the other
// side: point ops route by key hash over a pipelined protocol-v3
// connection per shard, and scans/snapshots fan out to every shard and
// merge the sorted per-shard results.
//
// Consistency: each shard keeps the remote protocol's per-session
// exactly-once guarantees, and each per-shard scan is consistent against
// that shard's engine. A fanned-out scan or snapshot is therefore
// per-shard consistent but not a global point-in-time cut — the same
// contract the paper's harness measures for any store composed of
// independently locked partitions.
package shard

// fnv-1a 64-bit parameters (hash/fnv re-implemented inline so routing
// stays allocation-free on the hot path).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// Route returns the shard index owning key among n shards: FNV-1a over
// the raw key bytes, reduced mod n. The mapping is deterministic and
// depends only on (key, n), so any client with the same shard count
// agrees on placement.
func Route(key []byte, n int) int {
	h := fnvOffset64
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return int(h % uint64(n))
}
