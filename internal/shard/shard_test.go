package shard

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/remote"
)

// startCluster spins up n memstore-backed shards and a client over them.
func startCluster(t *testing.T, n int, opts remote.PipelineOptions) (*Server, *Client, []*memstore.Store) {
	t.Helper()
	backs := make([]*memstore.Store, n)
	stores := make([]kv.Store, n)
	for i := range backs {
		backs[i] = memstore.New()
		stores[i] = backs[i]
	}
	srv, err := Serve(stores, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		for _, b := range backs {
			b.Close()
		}
	})
	cli, err := Dial(srv.Addrs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return srv, cli, backs
}

func TestShardBasicOps(t *testing.T) {
	_, cli, _ := startCluster(t, 4, remote.PipelineOptions{})
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := cli.Put(k, []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if v, err := cli.Get(k); err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get %s = %q, %v", k, v, err)
		}
	}
	if err := cli.Merge([]byte("key-0"), []byte("+")); err != nil {
		t.Fatal(err)
	}
	if v, _ := cli.Get([]byte("key-0")); string(v) != "v0+" {
		t.Fatalf("merge = %q", v)
	}
	if err := cli.Delete([]byte("key-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Get([]byte("key-1")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
}

// Every key must land on exactly one shard, every shard must carry load
// under a uniform workload, and the per-shard server request counters
// must sum to the client's routed total.
func TestShardRoutingDisjointAndCountersSum(t *testing.T) {
	srv, cli, backs := startCluster(t, 4, remote.PipelineOptions{})
	const keys = 400
	for i := 0; i < keys; i++ {
		if err := cli.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < keys; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		owners := 0
		for _, b := range backs {
			if _, err := b.Get(k); err == nil {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("key %s stored on %d shards", k, owners)
		}
	}
	per := srv.PerShardRequests()
	var sum uint64
	for i, n := range per {
		if n == 0 {
			t.Fatalf("shard %d served no requests under a uniform workload: %v", i, per)
		}
		sum += n
	}
	routed := cli.Metrics()["shard.routed"]
	if int64(sum) != routed {
		t.Fatalf("per-shard requests %v sum to %d, client routed %d", per, sum, routed)
	}
	if srv.Requests() != sum {
		t.Fatalf("Requests() = %d, want %d", srv.Requests(), sum)
	}
}

// A fanned-out scan must return the union of the shards' ranges in one
// ascending run, identical to what an unsharded oracle would return.
func TestShardScanMerge(t *testing.T) {
	_, cli, _ := startCluster(t, 4, remote.PipelineOptions{})
	oracle := memstore.New()
	defer oracle.Close()
	for g := uint64(0); g < 4; g++ {
		for s := uint64(0); s < 32; s++ {
			k := kv.StateKey{Group: g, Sub: s}
			v := []byte(fmt.Sprintf("g%d-s%d", g, s))
			if err := cli.Put(k.Bytes(), v); err != nil {
				t.Fatal(err)
			}
			if err := oracle.Put(k.Bytes(), v); err != nil {
				t.Fatal(err)
			}
		}
	}
	lo, hi := kv.StateKey{Group: 1, Sub: 5}, kv.StateKey{Group: 2, Sub: 20}
	got, err := cli.ScanRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want, err := kv.ScanRange(oracle, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scan = %d entries, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			t.Fatalf("entry %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// The composite snapshot must expose a merged, ordered iterator and
// hash-routed Gets, and stay blind to writes issued after it was taken.
func TestShardSnapshotMergedIter(t *testing.T) {
	_, cli, _ := startCluster(t, 3, remote.PipelineOptions{})
	for s := uint64(0); s < 50; s++ {
		k := kv.StateKey{Group: 7, Sub: s}
		if err := cli.Put(k.Bytes(), []byte(fmt.Sprintf("v%d", s))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := cli.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()

	// Writes after the snapshot must be invisible through it.
	for s := uint64(50); s < 60; s++ {
		if err := cli.Put(kv.StateKey{Group: 7, Sub: s}.Bytes(), []byte("late")); err != nil {
			t.Fatal(err)
		}
	}
	if err := cli.Put(kv.StateKey{Group: 7, Sub: 0}.Bytes(), []byte("overwritten")); err != nil {
		t.Fatal(err)
	}

	entries, err := kv.CollectIter(snap.Iter(kv.StateKey{}, kv.MaxStateKey))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 50 {
		t.Fatalf("snapshot iter = %d entries, want 50", len(entries))
	}
	for i, e := range entries {
		if e.Key != (kv.StateKey{Group: 7, Sub: uint64(i)}) {
			t.Fatalf("entry %d out of order: %+v", i, e.Key)
		}
		if string(e.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("entry %d sees post-snapshot write: %q", i, e.Value)
		}
	}
	if v, err := snap.Get(kv.StateKey{Group: 7, Sub: 0}.Bytes()); err != nil || string(v) != "v0" {
		t.Fatalf("snapshot Get = %q, %v", v, err)
	}
	if _, err := snap.Get(kv.StateKey{Group: 7, Sub: 55}.Bytes()); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("snapshot sees post-snapshot key: %v", err)
	}
}

// Concurrent workers over a shared client: the deployment shape that
// keeps every shard's pipeline full.
func TestShardConcurrentWorkers(t *testing.T) {
	srv, cli, _ := startCluster(t, 2, remote.PipelineOptions{Depth: 32})
	const workers, perWorker = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				k := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := cli.Put(k, []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := cli.Get(k); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got, want := srv.Requests(), uint64(workers*perWorker*2); got != want {
		t.Fatalf("server requests = %d, want %d", got, want)
	}
}

// Mixed engine kinds per shard must compose: the client is agnostic to
// what serves each shard.
func TestShardMixedEngineKinds(t *testing.T) {
	mem := memstore.New()
	defer mem.Close()
	other := memstore.New() // distinct instance stands in for a second engine kind
	defer other.Close()
	srv, err := Serve([]kv.Store{mem, other}, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addrs(), remote.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("mix-%d", i))
		if err := cli.Merge(k, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		if v, err := cli.Get([]byte(fmt.Sprintf("mix-%d", i))); err != nil || string(v) != "x" {
			t.Fatalf("Get = %q, %v", v, err)
		}
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := Serve([]kv.Store{memstore.New()}, "not-an-address"); err == nil {
		t.Fatal("bad address should fail")
	}
	if _, err := Serve(nil, "127.0.0.1:0"); err == nil {
		t.Fatal("zero stores should fail")
	}
	if _, err := Serve([]kv.Store{memstore.New(), memstore.New()}, "127.0.0.1:65535"); err == nil {
		t.Fatal("port overflow should fail")
	}
}

func TestDialBadAddress(t *testing.T) {
	if _, err := Dial(nil, remote.PipelineOptions{}); err == nil {
		t.Fatal("zero addrs should fail")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}, remote.PipelineOptions{Redials: -1}); err == nil {
		t.Fatal("unreachable shard should fail dial")
	}
}

// Fixed ports: shard i must listen on port+i.
func TestServeFixedPortFanout(t *testing.T) {
	stores := []kv.Store{memstore.New(), memstore.New()}
	defer func() {
		for _, s := range stores {
			s.(*memstore.Store).Close()
		}
	}()
	// Pick a free base port by grabbing an ephemeral one first.
	probe, err := Serve(stores[:1], "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := probe.Addrs()[0]
	probe.Close()
	srv, err := Serve(stores, base)
	if err != nil {
		t.Skipf("fixed ports unavailable: %v", err)
	}
	defer srv.Close()
	addrs := srv.Addrs()
	if addrs[0] != base {
		t.Fatalf("shard 0 on %s, want %s", addrs[0], base)
	}
	cli, err := Dial(addrs, remote.PipelineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
}
