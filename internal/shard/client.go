package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gadget/internal/kv"
	"gadget/internal/remote"
)

// Client is a kv.Store view of a sharded Server: one pipelined
// protocol-v3 connection per shard. Point operations route by key hash;
// scans and snapshots fan out to every shard concurrently and merge the
// sorted per-shard results. Safe for concurrent use — concurrency is in
// fact the point: many callers sharing the client keep every shard's
// pipeline full.
type Client struct {
	conns  []*remote.PipelinedClient
	routed atomic.Uint64 // point ops routed by key hash
	scans  atomic.Uint64 // fan-out range scans
	snaps  atomic.Uint64 // fan-out snapshots
}

var _ kv.Store = (*Client)(nil)

// Dial connects one pipelined client per shard address. The shard count
// and order must match the server's: routing depends on both.
func Dial(addrs []string, opts remote.PipelineOptions) (*Client, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("shard: no addresses")
	}
	c := &Client{conns: make([]*remote.PipelinedClient, 0, len(addrs))}
	for i, addr := range addrs {
		conn, err := remote.DialPipeline(addr, opts)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shard %d (%s): %w", i, addr, err)
		}
		c.conns = append(c.conns, conn)
	}
	return c, nil
}

// Shards returns the shard count.
func (c *Client) Shards() int { return len(c.conns) }

// Caps mirrors the per-shard pipelined clients: server-translated merge
// and server-side scans; Snapshots stays false (a snapshot materializes
// every shard's keyspace over the wire).
func (c *Client) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, RangeScans: true}
}

// conn returns the shard connection owning key.
func (c *Client) conn(key []byte) *remote.PipelinedClient {
	c.routed.Add(1)
	return c.conns[Route(key, len(c.conns))]
}

// Get implements kv.Store.
func (c *Client) Get(key []byte) ([]byte, error) { return c.conn(key).Get(key) }

// Put implements kv.Store.
func (c *Client) Put(key, value []byte) error { return c.conn(key).Put(key, value) }

// Merge implements kv.Store.
func (c *Client) Merge(key, operand []byte) error { return c.conn(key).Merge(key, operand) }

// Delete implements kv.Store.
func (c *Client) Delete(key []byte) error { return c.conn(key).Delete(key) }

// ScanRange implements kv.RangeScanner: every shard scans [lo, hi]
// concurrently against its own consistent view, and the sorted per-shard
// results merge into one ascending run. Key ownership is disjoint across
// shards, so the merge never sees duplicates.
func (c *Client) ScanRange(lo, hi kv.StateKey) ([]kv.Entry, error) {
	c.scans.Add(1)
	parts := make([][]kv.Entry, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for i, conn := range c.conns {
		wg.Add(1)
		go func(i int, conn *remote.PipelinedClient) {
			defer wg.Done()
			parts[i], errs[i] = conn.ScanRange(lo, hi)
		}(i, conn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return mergeSorted(parts), nil
}

// mergeSorted merges ascending runs into one ascending run by repeated
// min-pick; runs hold disjoint keys (shard-partitioned), so ties cannot
// occur.
func mergeSorted(parts [][]kv.Entry) []kv.Entry {
	total := 0
	live := 0
	for _, p := range parts {
		total += len(p)
		if len(p) > 0 {
			live++
		}
	}
	if total == 0 {
		return nil
	}
	if live == 1 {
		for _, p := range parts {
			if len(p) > 0 {
				return p
			}
		}
	}
	out := make([]kv.Entry, 0, total)
	idx := make([]int, len(parts))
	for len(out) < total {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || p[idx[i]].Key.Less(parts[best][idx[best]].Key) {
				best = i
			}
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
	}
	return out
}

// Snapshot implements kv.Snapshotter: every shard materializes its
// fallback snapshot concurrently, and the results compose into one view
// whose Get routes by key hash and whose Iter is a k-way merge over the
// per-shard iterators. The composite is per-shard consistent (each
// shard's half is a true point-in-time view of that shard), not a global
// cut — see the package comment.
func (c *Client) Snapshot() (kv.Snapshot, error) {
	c.snaps.Add(1)
	snaps := make([]kv.Snapshot, len(c.conns))
	errs := make([]error, len(c.conns))
	var wg sync.WaitGroup
	for i, conn := range c.conns {
		wg.Add(1)
		go func(i int, conn *remote.PipelinedClient) {
			defer wg.Done()
			snaps[i], errs[i] = conn.Snapshot()
		}(i, conn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, snap := range snaps {
				if snap != nil {
					snap.Close()
				}
			}
			return nil, err
		}
	}
	return &shardSnapshot{snaps: snaps}, nil
}

// Metrics implements kv.Introspector: the per-shard connection counters
// summed under their usual "remote.*" keys, plus shard-level routing
// counters.
func (c *Client) Metrics() map[string]int64 {
	m := map[string]int64{
		"shard.count":     int64(len(c.conns)),
		"shard.routed":    int64(c.routed.Load()),
		"shard.scans":     int64(c.scans.Load()),
		"shard.snapshots": int64(c.snaps.Load()),
	}
	for _, conn := range c.conns {
		for k, v := range conn.Metrics() {
			m[k] += v
		}
	}
	return m
}

// Close closes every shard connection.
func (c *Client) Close() error {
	var first error
	for _, conn := range c.conns {
		if err := conn.Close(); first == nil {
			first = err
		}
	}
	return first
}

// shardSnapshot composes per-shard snapshots into one kv.Snapshot.
type shardSnapshot struct {
	snaps []kv.Snapshot
}

func (s *shardSnapshot) Get(key []byte) ([]byte, error) {
	return s.snaps[Route(key, len(s.snaps))].Get(key)
}

func (s *shardSnapshot) Iter(lo, hi kv.StateKey) kv.Iterator {
	its := make([]kv.Iterator, len(s.snaps))
	for i, snap := range s.snaps {
		its[i] = snap.Iter(lo, hi)
	}
	return &mergeIter{its: its, has: make([]bool, len(its)), cur: -1}
}

func (s *shardSnapshot) Close() error {
	var first error
	for _, snap := range s.snaps {
		if err := snap.Close(); first == nil {
			first = err
		}
	}
	return first
}

// mergeIter is a k-way merge over per-shard iterators, each already in
// ascending key order. The current entry stays parked on its source
// iterator (Key/Value delegate to it) and is only advanced on the next
// Next call, respecting the Iterator contract that values live until the
// owning iterator advances.
type mergeIter struct {
	its  []kv.Iterator
	has  []bool
	cur  int // iterator holding the current entry; -1 before the first Next
	err  error
	done bool
}

func (m *mergeIter) Next() bool {
	if m.done || m.err != nil {
		return false
	}
	if m.cur < 0 {
		for i, it := range m.its {
			m.has[i] = it.Next()
			if err := it.Err(); err != nil {
				m.err = err
				return false
			}
		}
	} else {
		m.has[m.cur] = m.its[m.cur].Next()
		if err := m.its[m.cur].Err(); err != nil {
			m.err = err
			return false
		}
	}
	best := -1
	for i := range m.its {
		if m.has[i] && (best < 0 || m.its[i].Key().Less(m.its[best].Key())) {
			best = i
		}
	}
	if best < 0 {
		m.done = true
		return false
	}
	m.cur = best
	return true
}

func (m *mergeIter) Key() kv.StateKey { return m.its[m.cur].Key() }
func (m *mergeIter) Value() []byte    { return m.its[m.cur].Value() }
func (m *mergeIter) Err() error       { return m.err }

func (m *mergeIter) Close() error {
	m.done = true
	var first error
	for _, it := range m.its {
		if err := it.Close(); first == nil {
			first = err
		}
	}
	return first
}
