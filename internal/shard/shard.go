package shard

import (
	"fmt"
	"net"
	"strconv"

	"gadget/internal/kv"
	"gadget/internal/remote"
)

// Server is a sharded store server: one remote.Server per shard, each
// wrapping its own kv.Store, each on its own listener. Shards share
// nothing — no cross-shard locks — so request handling parallelizes
// across cores with the shard count.
type Server struct {
	servers []*remote.Server
}

// Serve starts len(stores) shard servers. addr is the base address: with
// a non-zero port, shard i listens on port+i (one predictable endpoint
// per shard); with port 0, every shard gets its own ephemeral port —
// read the actual endpoints from Addrs. The stores are the caller's:
// engine kind may differ per shard, and Close does not close them.
func Serve(stores []kv.Store, addr string) (*Server, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("shard: no stores")
	}
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("shard: bad address %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port < 0 || port > 65535 {
		return nil, fmt.Errorf("shard: bad port in %q", addr)
	}
	if port != 0 && port+len(stores)-1 > 65535 {
		return nil, fmt.Errorf("shard: %d shards from port %d exceed the port range", len(stores), port)
	}
	s := &Server{servers: make([]*remote.Server, 0, len(stores))}
	for i, store := range stores {
		shardAddr := addr
		if port != 0 {
			shardAddr = net.JoinHostPort(host, strconv.Itoa(port+i))
		}
		srv, err := remote.Serve(store, shardAddr)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.servers = append(s.servers, srv)
	}
	return s, nil
}

// Shards returns the shard count.
func (s *Server) Shards() int { return len(s.servers) }

// Addrs returns the per-shard listener addresses, in shard order.
func (s *Server) Addrs() []string {
	addrs := make([]string, len(s.servers))
	for i, srv := range s.servers {
		addrs[i] = srv.Addr()
	}
	return addrs
}

// Requests returns the total number of requests served across shards;
// tests cross-check it against client-side routing counters.
func (s *Server) Requests() uint64 {
	var total uint64
	for _, srv := range s.servers {
		total += srv.Requests()
	}
	return total
}

// PerShardRequests returns each shard's served-request count, in shard
// order.
func (s *Server) PerShardRequests() []uint64 {
	out := make([]uint64, len(s.servers))
	for i, srv := range s.servers {
		out[i] = srv.Requests()
	}
	return out
}

// Metrics implements kv.Introspector: every shard's server metrics under
// a "shard<i>." prefix, plus the shard count.
func (s *Server) Metrics() map[string]int64 {
	m := map[string]int64{"shard.count": int64(len(s.servers))}
	for i, srv := range s.servers {
		prefix := fmt.Sprintf("shard%d.", i)
		for k, v := range srv.Metrics() {
			m[prefix+k] = v
		}
	}
	return m
}

// Close stops every shard server. The backing stores stay open.
func (s *Server) Close() error {
	var first error
	for _, srv := range s.servers {
		if err := srv.Close(); first == nil {
			first = err
		}
	}
	return first
}
