package eventgen

// Partition splits a stream into n key-disjoint sub-streams, modelling
// the data-parallel execution of §2.1: each task of an operator processes
// a disjoint key partition of the input with its own state store.
// Events route by key hash; watermarks are broadcast to every partition
// (as stream processors do). The input source is drained eagerly.
func Partition(src Source, n int) []Source {
	if n <= 1 {
		return []Source{src}
	}
	parts := make([][]Item, n)
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == ItemWatermark {
			for i := range parts {
				parts[i] = append(parts[i], it)
			}
			continue
		}
		p := int(hashKey(it.Event.Key) % uint64(n))
		parts[p] = append(parts[p], it)
	}
	out := make([]Source, n)
	for i := range parts {
		out[i] = &itemSource{items: parts[i]}
	}
	return out
}

// itemSource replays a materialized item slice (events and watermarks).
type itemSource struct {
	items []Item
	i     int
}

func (s *itemSource) Next() (Item, bool) {
	if s.i >= len(s.items) {
		return Item{}, false
	}
	it := s.items[s.i]
	s.i++
	return it, true
}

func hashKey(k uint64) uint64 {
	// Fibonacci hashing spreads contiguous keys across partitions.
	return k * 0x9E3779B97F4A7C15 >> 3
}
