package eventgen

import (
	"testing"

	"gadget/internal/dist"
)

func TestSyntheticBasics(t *testing.T) {
	g, err := NewSynthetic(Config{Events: 1000, Keys: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	var lastClock int64 = -1
	for {
		it, ok := g.Next()
		if !ok {
			break
		}
		if it.Kind != ItemEvent {
			t.Fatal("synthetic source should emit only events")
		}
		e := it.Event
		if e.Key >= 50 {
			t.Fatalf("key %d out of range", e.Key)
		}
		if e.Size != 10 {
			t.Fatalf("default value size = %d", e.Size)
		}
		if e.Time < lastClock-0 { // no lateness configured: monotone
			t.Fatalf("timestamps regressed: %d after %d", e.Time, lastClock)
		}
		lastClock = e.Time
		events = append(events, e)
	}
	if len(events) != 1000 {
		t.Fatalf("generated %d events", len(events))
	}
}

func TestSyntheticValidation(t *testing.T) {
	if _, err := NewSynthetic(Config{Events: 0}); err == nil {
		t.Fatal("zero events should error")
	}
	if _, err := NewSynthetic(Config{Events: 1, LateFraction: 1.5}); err == nil {
		t.Fatal("bad late fraction should error")
	}
	if _, err := NewSynthetic(Config{Events: 1, KeyDist: "bogus"}); err == nil {
		t.Fatal("bad distribution should error")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	mk := func() []Event {
		g, _ := NewSynthetic(Config{Events: 500, Keys: 100, Seed: 42, PoissonArrivals: true, LateFraction: 0.1, MaxLatenessMs: 50})
		return Collect(g)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestLateEvents(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 10000, Keys: 10, Seed: 7, LateFraction: 0.2, MaxLatenessMs: 100})
	late := 0
	var maxSeen int64 = -1
	for {
		it, ok := g.Next()
		if !ok {
			break
		}
		if it.Event.Time < maxSeen {
			late++
		}
		if it.Event.Time > maxSeen {
			maxSeen = it.Event.Time
		}
	}
	frac := float64(late) / 10000
	if frac < 0.1 || frac > 0.3 {
		t.Fatalf("late fraction = %v, want ~0.2", frac)
	}
}

func TestStartEndPairs(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 1000, Keys: 20, Seed: 3, StartEndPairs: true})
	open := map[uint64]bool{}
	for {
		it, ok := g.Next()
		if !ok {
			break
		}
		e := it.Event
		switch e.Kind {
		case KindStart:
			if open[e.Key] {
				t.Fatalf("double start for key %d", e.Key)
			}
			open[e.Key] = true
		case KindEnd:
			if !open[e.Key] {
				t.Fatalf("end without start for key %d", e.Key)
			}
			delete(open, e.Key)
		default:
			t.Fatal("pairs mode must not emit plain records")
		}
	}
}

func TestWatermarker(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 1000, Keys: 10, Seed: 1})
	w := WithWatermarks(g, 100, 0)
	events, wms := 0, 0
	var lastWM int64 = -1
	var maxTS int64 = -1
	for {
		it, ok := w.Next()
		if !ok {
			break
		}
		switch it.Kind {
		case ItemEvent:
			events++
			if it.Event.Time > maxTS {
				maxTS = it.Event.Time
			}
		case ItemWatermark:
			wms++
			if it.WM < lastWM {
				t.Fatalf("watermark regressed: %d after %d", it.WM, lastWM)
			}
			if it.WM > maxTS+1 && it.WM != int64(^uint64(0)>>1) {
				t.Fatalf("watermark %d beyond max event time %d", it.WM, maxTS)
			}
			lastWM = it.WM
		}
	}
	if events != 1000 {
		t.Fatalf("events = %d", events)
	}
	// 10 punctuated + 1 closing watermark.
	if wms != 11 {
		t.Fatalf("watermarks = %d, want 11", wms)
	}
	if lastWM <= maxTS {
		t.Fatal("closing watermark should flush everything")
	}
}

func TestWatermarkerSlack(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 200, Keys: 10, Seed: 1})
	w := WithWatermarks(g, 50, 1000)
	var maxTS, lastPunctuated int64 = -1, -1
	count := 0
	for {
		it, ok := w.Next()
		if !ok {
			break
		}
		if it.Kind == ItemEvent {
			if it.Event.Time > maxTS {
				maxTS = it.Event.Time
			}
			count++
		} else if count < 200 {
			lastPunctuated = it.WM
			if it.WM > maxTS-1000 {
				t.Fatalf("slacked watermark %d too fresh (max %d)", it.WM, maxTS)
			}
		}
	}
	if lastPunctuated == -1 {
		t.Fatal("no punctuated watermark observed")
	}
}

func TestSliceSource(t *testing.T) {
	evs := []Event{{Time: 1, Key: 2}, {Time: 3, Key: 4}}
	s := NewSliceSource(evs)
	got := Collect(s)
	if len(got) != 2 || got[0] != evs[0] || got[1] != evs[1] {
		t.Fatalf("collect = %+v", got)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted source should stay exhausted")
	}
}

func TestRoundRobinInterleavesAndMergesWatermarks(t *testing.T) {
	mk := func(stream uint8) Source {
		g, _ := NewSynthetic(Config{Events: 300, Keys: 10, Seed: int64(stream) + 1, Stream: stream})
		return WithWatermarks(g, 100, 0)
	}
	rr := NewRoundRobin(mk(0), mk(1))
	counts := map[uint8]int{}
	var lastWM int64 = -1
	wmCount := 0
	for {
		it, ok := rr.Next()
		if !ok {
			break
		}
		if it.Kind == ItemEvent {
			counts[it.Event.Stream]++
		} else {
			if it.WM < lastWM {
				t.Fatalf("merged watermark regressed: %d < %d", it.WM, lastWM)
			}
			lastWM = it.WM
			wmCount++
		}
	}
	if counts[0] != 300 || counts[1] != 300 {
		t.Fatalf("stream counts = %v", counts)
	}
	if wmCount == 0 {
		t.Fatal("no merged watermarks")
	}
}

func TestRoundRobinOneSideEmpty(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 10, Keys: 5, Seed: 1})
	rr := NewRoundRobin(WithWatermarks(g, 5, 0), NewSliceSource(nil))
	events := 0
	for {
		it, ok := rr.Next()
		if !ok {
			break
		}
		if it.Kind == ItemEvent {
			events++
		}
	}
	if events != 10 {
		t.Fatalf("events = %d", events)
	}
}

func TestKeyDistributionsRespected(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 20000, Keys: 100, KeyDist: dist.Uniform, Seed: 5})
	counts := make([]int, 100)
	for {
		it, ok := g.Next()
		if !ok {
			break
		}
		counts[it.Event.Key]++
	}
	for k, c := range counts {
		if c < 100 || c > 320 {
			t.Fatalf("uniform key %d count %d far from 200", k, c)
		}
	}
}

func TestECDFKeys(t *testing.T) {
	g, err := NewSynthetic(Config{
		Events:      20000,
		Seed:        9,
		ECDFKeys:    []uint64{5, 17, 99},
		ECDFWeights: []float64{6, 3, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	for _, e := range Collect(g) {
		counts[e.Key]++
	}
	if len(counts) != 3 {
		t.Fatalf("keys = %v", counts)
	}
	if counts[5] < counts[17] || counts[17] < counts[99] {
		t.Fatalf("ECDF weights not respected: %v", counts)
	}
	frac := float64(counts[5]) / 20000
	if frac < 0.55 || frac > 0.65 {
		t.Fatalf("key 5 share = %v, want ~0.6", frac)
	}
}

func TestECDFValidation(t *testing.T) {
	bad := []Config{
		{Events: 1, ECDFKeys: []uint64{1, 2}, ECDFWeights: []float64{1}},
		{Events: 1, ECDFKeys: []uint64{1}, ECDFWeights: []float64{-1}},
		{Events: 1, ECDFKeys: []uint64{1, 2}, ECDFWeights: []float64{0, 0}},
	}
	for i, cfg := range bad {
		if _, err := NewSynthetic(cfg); err == nil {
			t.Fatalf("config %d should fail", i)
		}
	}
}

func TestPartition(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 2000, Keys: 64, Seed: 4})
	src := WithWatermarks(g, 100, 0)
	parts := Partition(src, 4)
	if len(parts) != 4 {
		t.Fatalf("partitions = %d", len(parts))
	}
	keyOwner := map[uint64]int{}
	totalEvents := 0
	for p, part := range parts {
		wms := 0
		for {
			it, ok := part.Next()
			if !ok {
				break
			}
			if it.Kind == ItemWatermark {
				wms++
				continue
			}
			totalEvents++
			if owner, seen := keyOwner[it.Event.Key]; seen && owner != p {
				t.Fatalf("key %d in partitions %d and %d", it.Event.Key, owner, p)
			}
			keyOwner[it.Event.Key] = p
		}
		// Watermarks are broadcast: every partition sees all 21.
		if wms != 21 {
			t.Fatalf("partition %d saw %d watermarks", p, wms)
		}
	}
	if totalEvents != 2000 {
		t.Fatalf("events = %d", totalEvents)
	}
	// Keys spread across partitions.
	seen := map[int]bool{}
	for _, p := range keyOwner {
		seen[p] = true
	}
	if len(seen) != 4 {
		t.Fatalf("only %d partitions populated", len(seen))
	}
}

func TestPartitionSingle(t *testing.T) {
	g, _ := NewSynthetic(Config{Events: 10, Keys: 5, Seed: 1})
	parts := Partition(g, 1)
	if len(parts) != 1 {
		t.Fatalf("partitions = %d", len(parts))
	}
	if n := len(Collect(parts[0])); n != 10 {
		t.Fatalf("events = %d", n)
	}
}
