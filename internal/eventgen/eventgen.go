// Package eventgen produces the input event streams that drive the
// Gadget harness: configurable synthetic sources (arrival-rate, key,
// and value-size distributions, out-of-order injection), punctuated
// watermarking, round-robin merging for two-input operators, and a
// replayer for recorded event traces (the role the paper's "input
// replayer" plays for the Borg/Taxi/Azure streams).
package eventgen

import (
	"fmt"
	"math/rand"

	"gadget/internal/dist"
)

// EventKind distinguishes plain records from lifecycle signals used by
// the continuous join (e.g. a job completion or a taxi drop-off ends the
// validity of the matching key's state).
type EventKind uint8

const (
	// KindRecord is an ordinary data event.
	KindRecord EventKind = iota
	// KindStart opens a validity interval for the key (e.g. job submit,
	// passenger pickup).
	KindStart
	// KindEnd closes the validity interval for the key (e.g. job finish,
	// passenger drop-off), triggering state cleanup in continuous joins.
	KindEnd
)

// Event is one element of an input stream.
type Event struct {
	// Time is the event time in milliseconds.
	Time int64
	// Key is the event key (jobID, medallionID, subscriptionID, ...).
	Key uint64
	// Size is the payload size in bytes.
	Size uint32
	// Stream tags which input the event belongs to (0 or 1 for joins).
	Stream uint8
	// Kind is the lifecycle kind (KindRecord for most operators).
	Kind EventKind
}

// ItemKind tags stream items as events or watermarks.
type ItemKind uint8

const (
	// ItemEvent carries an Event.
	ItemEvent ItemKind = iota
	// ItemWatermark carries a watermark timestamp: no later event will
	// have Time <= WM (up to the configured lateness).
	ItemWatermark
)

// Item is one element of a watermarked stream.
type Item struct {
	Kind  ItemKind
	Event Event
	WM    int64
}

// Source produces a finite stream of items.
type Source interface {
	// Next returns the next item; ok is false when the stream ends.
	Next() (item Item, ok bool)
}

// SliceSource replays a materialized event slice.
type SliceSource struct {
	events []Event
	i      int
}

// NewSliceSource returns a Source over events (not copied).
func NewSliceSource(events []Event) *SliceSource { return &SliceSource{events: events} }

func (s *SliceSource) Next() (Item, bool) {
	if s.i >= len(s.events) {
		return Item{}, false
	}
	e := s.events[s.i]
	s.i++
	return Item{Kind: ItemEvent, Event: e}, true
}

// Config describes a synthetic event stream (paper Figure 8's
// configuration file).
type Config struct {
	// Events is the number of events to generate.
	Events int
	// Keys is the key-space size.
	Keys uint64
	// KeyDist selects the key distribution (default zipfian).
	KeyDist dist.Kind
	// ECDFKeys/ECDFWeights, when set, override KeyDist with a
	// user-supplied empirical distribution: key ECDFKeys[i] is drawn
	// with probability proportional to ECDFWeights[i] (paper §5.1: "the
	// event generator can also work with empirical cumulative
	// distribution functions provided by the user").
	ECDFKeys    []uint64
	ECDFWeights []float64
	// RatePerSec is the mean arrival rate (default 1000 events/s).
	RatePerSec float64
	// PoissonArrivals selects exponential interarrival gaps instead of
	// constant gaps.
	PoissonArrivals bool
	// ValueSize is the payload size in bytes (default 10, the paper's
	// example configuration).
	ValueSize uint32
	// LateFraction is the probability an event is emitted out of order.
	LateFraction float64
	// MaxLatenessMs bounds the (uniform) lateness of late events.
	MaxLatenessMs int64
	// Seed makes the stream reproducible.
	Seed int64
	// Stream tags generated events (for two-input operators).
	Stream uint8
	// StartEndPairs makes the generator emit KindStart/KindEnd pairs:
	// each key alternates between opening and closing a validity
	// interval (used by continuous joins).
	StartEndPairs bool
	// HotFrac/HotProb tune the "hotspot" and "drifting_hotspot" key
	// distributions: HotFrac of the keys receive HotProb of the accesses
	// (0 = the 0.2 / 0.8 defaults).
	HotFrac float64
	HotProb float64
	// DriftEvery re-centers a drifting hotspot's hot window every this
	// many samples (0 = 10000); DriftStep advances it by that many keys,
	// or 0 jumps to a seeded random position.
	DriftEvery uint64
	DriftStep  uint64
}

// Synthetic generates events on the fly according to a Config.
type Synthetic struct {
	cfg      Config
	keys     dist.Source
	arrivals dist.Interarrival
	rng      *rand.Rand
	clock    int64
	emitted  int
	open     map[uint64]bool // key -> interval open (StartEndPairs mode)
}

// NewSynthetic validates cfg and returns a generator.
func NewSynthetic(cfg Config) (*Synthetic, error) {
	if cfg.Events <= 0 {
		return nil, fmt.Errorf("eventgen: Events must be positive, got %d", cfg.Events)
	}
	if cfg.Keys == 0 {
		cfg.Keys = 1000
	}
	if cfg.KeyDist == "" {
		cfg.KeyDist = dist.Zipfian
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 1000
	}
	if cfg.ValueSize == 0 {
		cfg.ValueSize = 10
	}
	if cfg.LateFraction < 0 || cfg.LateFraction > 1 {
		return nil, fmt.Errorf("eventgen: LateFraction %v out of [0,1]", cfg.LateFraction)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var keys dist.Source
	var err error
	if len(cfg.ECDFKeys) > 0 {
		cum, cerr := cumulative(cfg.ECDFWeights, len(cfg.ECDFKeys))
		if cerr != nil {
			return nil, cerr
		}
		keys, err = dist.NewECDF(cfg.ECDFKeys, cum, rng)
	} else if tuned := cfg.HotFrac != 0 || cfg.HotProb != 0 || cfg.DriftEvery != 0 || cfg.DriftStep != 0; tuned &&
		(cfg.KeyDist == dist.Hotspot || cfg.KeyDist == dist.Drifting) {
		hotFrac, hotProb := cfg.HotFrac, cfg.HotProb
		if hotFrac == 0 {
			hotFrac = dist.DefaultDriftHotFrac
		}
		if hotProb == 0 {
			hotProb = dist.DefaultDriftHotProb
		}
		if cfg.KeyDist == dist.Hotspot {
			keys = dist.NewHotspot(cfg.Keys, hotFrac, hotProb, rng)
		} else {
			every := cfg.DriftEvery
			if every == 0 {
				every = dist.DefaultDriftEvery
			}
			keys, err = dist.NewDriftingHotspot(cfg.Keys, hotFrac, hotProb, every, cfg.DriftStep, rng)
		}
	} else {
		keys, err = dist.New(cfg.KeyDist, cfg.Keys, rng)
	}
	if err != nil {
		return nil, err
	}
	var arrivals dist.Interarrival
	if cfg.PoissonArrivals {
		arrivals = dist.NewPoissonArrivals(cfg.RatePerSec, rng)
	} else {
		arrivals = dist.NewConstantArrivals(cfg.RatePerSec)
	}
	g := &Synthetic{cfg: cfg, keys: keys, arrivals: arrivals, rng: rng}
	if cfg.StartEndPairs {
		g.open = make(map[uint64]bool)
	}
	return g, nil
}

// Next implements Source.
func (g *Synthetic) Next() (Item, bool) {
	if g.emitted >= g.cfg.Events {
		return Item{}, false
	}
	g.emitted++
	g.clock += g.arrivals.NextGap()
	ts := g.clock
	if g.cfg.LateFraction > 0 && g.rng.Float64() < g.cfg.LateFraction && g.cfg.MaxLatenessMs > 0 {
		ts -= 1 + g.rng.Int63n(g.cfg.MaxLatenessMs)
		if ts < 0 {
			ts = 0
		}
	}
	e := Event{
		Time:   ts,
		Key:    g.keys.Next(),
		Size:   g.cfg.ValueSize,
		Stream: g.cfg.Stream,
	}
	if g.open != nil {
		if g.open[e.Key] {
			e.Kind = KindEnd
			delete(g.open, e.Key)
		} else {
			e.Kind = KindStart
			g.open[e.Key] = true
		}
	}
	return Item{Kind: ItemEvent, Event: e}, true
}

// cumulative normalizes weights into a cumulative distribution.
func cumulative(weights []float64, n int) ([]float64, error) {
	if len(weights) != n {
		return nil, fmt.Errorf("eventgen: %d ECDF weights for %d keys", len(weights), n)
	}
	var total float64
	for i, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("eventgen: negative ECDF weight at %d", i)
		}
		total += w
	}
	if total <= 0 {
		return nil, fmt.Errorf("eventgen: ECDF weights sum to zero")
	}
	out := make([]float64, n)
	run := 0.0
	for i, w := range weights {
		run += w / total
		out[i] = run
	}
	out[n-1] = 1
	return out, nil
}

// Watermarker wraps a Source, injecting a punctuated watermark after
// every Every events with value maxSeenTime (minus the configured slack).
type Watermarker struct {
	src     Source
	every   int
	slackMs int64
	count   int
	maxTS   int64
	pending *Item
	done    bool
	final   bool
}

// WithWatermarks wraps src with punctuated watermarks every `every`
// events. slackMs is subtracted from the emitted watermark (a watermark
// delay, modelling bounded disorder tolerance at the source).
func WithWatermarks(src Source, every int, slackMs int64) *Watermarker {
	if every <= 0 {
		every = 100
	}
	return &Watermarker{src: src, every: every, slackMs: slackMs}
}

func (w *Watermarker) Next() (Item, bool) {
	if w.pending != nil {
		it := *w.pending
		w.pending = nil
		return it, true
	}
	if w.done {
		if !w.final {
			// Bounded streams end with a MAX watermark that flushes all
			// remaining state, exactly as Flink emits Long.MAX_VALUE.
			w.final = true
			return Item{Kind: ItemWatermark, WM: int64(^uint64(0) >> 1)}, true
		}
		return Item{}, false
	}
	it, ok := w.src.Next()
	if !ok {
		w.done = true
		return w.Next()
	}
	if it.Kind == ItemEvent {
		if it.Event.Time > w.maxTS {
			w.maxTS = it.Event.Time
		}
		w.count++
		if w.count%w.every == 0 {
			wm := Item{Kind: ItemWatermark, WM: w.maxTS - w.slackMs}
			w.pending = &wm
		}
	}
	return it, true
}

// RoundRobin interleaves two sources (the paper §6.1: "When simulating a
// two-input operator, Gadget pulls events from each source in a
// round-robin fashion"). Watermarks are merged with min semantics: the
// emitted watermark never exceeds the slowest input's progress.
type RoundRobin struct {
	srcs    [2]Source
	done    [2]bool
	wm      [2]int64
	lastWM  int64
	turn    int
	pending []Item
}

// NewRoundRobin merges two sources.
func NewRoundRobin(a, b Source) *RoundRobin {
	return &RoundRobin{srcs: [2]Source{a, b}, wm: [2]int64{-1, -1}, lastWM: -1}
}

func (r *RoundRobin) Next() (Item, bool) {
	if len(r.pending) > 0 {
		it := r.pending[0]
		r.pending = r.pending[1:]
		return it, true
	}
	for tries := 0; tries < 2; tries++ {
		i := r.turn
		r.turn = 1 - r.turn
		if r.done[i] {
			continue
		}
		it, ok := r.srcs[i].Next()
		if !ok {
			r.done[i] = true
			// When one side finishes, its watermark is effectively
			// infinite; progress is bounded by the other side.
			r.wm[i] = int64(^uint64(0) >> 1)
			if out := r.minWM(); out > r.lastWM {
				r.lastWM = out
				return Item{Kind: ItemWatermark, WM: out}, true
			}
			continue
		}
		if it.Kind == ItemWatermark {
			r.wm[i] = it.WM
			if out := r.minWM(); out > r.lastWM {
				r.lastWM = out
				return Item{Kind: ItemWatermark, WM: out}, true
			}
			// Watermark held back; pull again next call.
			return r.Next()
		}
		return it, true
	}
	return Item{}, false
}

func (r *RoundRobin) minWM() int64 {
	if r.wm[0] < r.wm[1] {
		return r.wm[0]
	}
	return r.wm[1]
}

// Collect drains a source into slices of events (watermarks dropped),
// mainly for tests and analyses that need the raw stream.
func Collect(src Source) []Event {
	var out []Event
	for {
		it, ok := src.Next()
		if !ok {
			return out
		}
		if it.Kind == ItemEvent {
			out = append(out, it.Event)
		}
	}
}
