package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// implementations under test; OsFS is rooted in a temp dir by prefixing
// paths, MemFS uses the same paths directly.
func testFSes(t *testing.T) map[string]struct {
	fs   FS
	path func(string) string
} {
	t.Helper()
	dir := t.TempDir()
	return map[string]struct {
		fs   FS
		path func(string) string
	}{
		"os":  {OsFS{}, func(p string) string { return filepath.Join(dir, p) }},
		"mem": {NewMemFS(), func(p string) string { return "root/" + p }},
	}
}

func TestFSRoundTrip(t *testing.T) {
	for name, tc := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			fsys, at := tc.fs, tc.path
			if err := fsys.MkdirAll(at("sub"), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := WriteFile(fsys, at("sub/a.txt"), []byte("hello"), 0o644); err != nil {
				t.Fatal(err)
			}
			got, err := ReadFile(fsys, at("sub/a.txt"))
			if err != nil || string(got) != "hello" {
				t.Fatalf("ReadFile = %q, %v", got, err)
			}
			st, err := fsys.Stat(at("sub/a.txt"))
			if err != nil || st.Size() != 5 {
				t.Fatalf("Stat = %v, %v", st, err)
			}
			// ReadDir sees the file.
			ents, err := fsys.ReadDir(at("sub"))
			if err != nil || len(ents) != 1 || ents[0].Name() != "a.txt" {
				t.Fatalf("ReadDir = %v, %v", ents, err)
			}
			// Rename then remove.
			if err := fsys.Rename(at("sub/a.txt"), at("sub/b.txt")); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadFile(fsys, at("sub/a.txt")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("want ErrNotExist after rename, got %v", err)
			}
			if err := fsys.Remove(at("sub/b.txt")); err != nil {
				t.Fatal(err)
			}
			if err := fsys.Remove(at("sub/b.txt")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("double remove: want ErrNotExist, got %v", err)
			}
		})
	}
}

func TestFileSemantics(t *testing.T) {
	for name, tc := range testFSes(t) {
		t.Run(name, func(t *testing.T) {
			fsys, at := tc.fs, tc.path
			fsys.MkdirAll(at("."), 0o755)
			// Append mode.
			f, err := fsys.OpenFile(at("log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("ab"))
			f.Write([]byte("cd"))
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			f.Close()
			f, err = fsys.OpenFile(at("log"), os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.Write([]byte("ef"))
			f.Close()
			got, _ := ReadFile(fsys, at("log"))
			if string(got) != "abcdef" {
				t.Fatalf("append: got %q", got)
			}
			// WriteAt extends; ReadAt reads at offset; Truncate cuts.
			rw, err := fsys.OpenFile(at("pages"), os.O_CREATE|os.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rw.WriteAt([]byte("xyz"), 4); err != nil {
				t.Fatal(err)
			}
			buf := make([]byte, 3)
			if _, err := rw.ReadAt(buf, 4); err != nil && err != io.EOF {
				t.Fatal(err)
			}
			if string(buf) != "xyz" {
				t.Fatalf("ReadAt = %q", buf)
			}
			if st, _ := rw.Stat(); st.Size() != 7 {
				t.Fatalf("size after WriteAt = %d", st.Size())
			}
			if err := rw.Truncate(2); err != nil {
				t.Fatal(err)
			}
			if st, _ := rw.Stat(); st.Size() != 2 {
				t.Fatalf("size after Truncate = %d", st.Size())
			}
			rw.Close()
			// Open of a missing file fails with ErrNotExist.
			if _, err := Open(fsys, at("missing")); !errors.Is(err, os.ErrNotExist) {
				t.Fatalf("want ErrNotExist, got %v", err)
			}
		})
	}
}

func TestWriteFileAtomic(t *testing.T) {
	mem := NewMemFS()
	if err := WriteFileAtomic(mem, "dir/meta", []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, _ := ReadFile(mem, "dir/meta")
	if string(got) != "v1" {
		t.Fatalf("got %q", got)
	}
	// A rename failure leaves the old content intact and no tmp file.
	ffs := NewFaultFS(mem, FaultPlan{FailRenameN: 1})
	if err := WriteFileAtomic(ffs, "dir/meta", []byte("v2"), 0o644); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	got, _ = ReadFile(mem, "dir/meta")
	if string(got) != "v1" {
		t.Fatalf("after failed atomic write: got %q", got)
	}
	for _, p := range mem.Paths() {
		if p == "dir/meta.tmp" {
			t.Fatal("tmp file left behind")
		}
	}
}

func TestFaultFSWriteFault(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{FailWriteN: 2, CrashAfterFault: true})
	f, err := Create(ffs, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if !ffs.Faulted() || !ffs.Crashed() {
		t.Fatal("fault should arm the crash state")
	}
	// Every further mutation fails with ErrCrashed.
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if err := ffs.Rename("f", "g"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	if _, err := Create(ffs, "h"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want ErrCrashed, got %v", err)
	}
	// The surviving bytes are exactly the pre-fault writes.
	got, _ := ReadFile(mem, "f")
	if string(got) != "one" {
		t.Fatalf("surviving bytes = %q", got)
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{Seed: 7, FailWriteN: 1, Torn: true})
	f, _ := Create(ffs, "f")
	n, err := f.Write([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if n >= 10 {
		t.Fatalf("torn write persisted the whole buffer (n=%d)", n)
	}
	got, _ := ReadFile(mem, "f")
	if len(got) != n || string(got) != "0123456789"[:n] {
		t.Fatalf("surviving prefix = %q, n = %d", got, n)
	}
}

func TestFaultFSSyncAndDiskFull(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{FailSyncN: 1})
	f, _ := Create(ffs, "f")
	f.Write([]byte("data"))
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected on sync, got %v", err)
	}
	// Data written before the failed barrier is still on the disk.
	if got, _ := ReadFile(mem, "f"); string(got) != "data" {
		t.Fatalf("got %q", got)
	}

	mem2 := NewMemFS()
	full := NewFaultFS(mem2, FaultPlan{DiskFullBytes: 5})
	g, _ := Create(full, "g")
	if _, err := g.Write([]byte("1234")); err != nil {
		t.Fatal(err)
	}
	n, err := g.Write([]byte("5678"))
	if !errors.Is(err, ErrDiskFull) {
		t.Fatalf("want ErrDiskFull, got %v", err)
	}
	if n != 1 {
		t.Fatalf("short write should persist up to the budget, n=%d", n)
	}
}
