package vfs

import (
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"sync"
	"time"
)

// MemFS is an in-memory FS. It is safe for concurrent use and models a
// flat namespace of files addressed by cleaned slash paths; directories
// exist implicitly once created with MkdirAll or by writing a file below
// them. Sync is a no-op: a write is durable the moment it is issued,
// which is the crash model the fault-injection suite builds on.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memNode
	dirs  map[string]bool
}

type memNode struct {
	mu   sync.Mutex
	data []byte
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memNode), dirs: map[string]bool{".": true, "/": true}}
}

func clean(name string) string { return path.Clean(strings.ReplaceAll(name, "\\", "/")) }

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[name]
	if !ok {
		if flag&os.O_CREATE == 0 {
			return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
		}
		n = &memNode{}
		m.files[name] = n
		m.dirs[path.Dir(name)] = true
	} else if flag&(os.O_CREATE|os.O_EXCL) == os.O_CREATE|os.O_EXCL {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrExist}
	}
	if flag&os.O_TRUNC != 0 {
		n.mu.Lock()
		n.data = n.data[:0]
		n.mu.Unlock()
	}
	return &memFile{name: name, node: n, append: flag&os.O_APPEND != 0}, nil
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = clean(oldpath), clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldpath]
	if !ok {
		return &os.LinkError{Op: "rename", Old: oldpath, New: newpath, Err: os.ErrNotExist}
	}
	m.files[newpath] = n
	delete(m.files, oldpath)
	m.dirs[path.Dir(newpath)] = true
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) ReadDir(name string) ([]fs.DirEntry, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := map[string]fs.DirEntry{}
	for p, n := range m.files {
		if path.Dir(p) == name {
			base := path.Base(p)
			n.mu.Lock()
			size := int64(len(n.data))
			n.mu.Unlock()
			seen[base] = memDirEntry{info: memFileInfo{name: base, size: size}}
		}
	}
	for d := range m.dirs {
		if d != name && path.Dir(d) == name {
			base := path.Base(d)
			seen[base] = memDirEntry{info: memFileInfo{name: base, dir: true}}
		}
	}
	if len(seen) == 0 && !m.dirs[name] {
		return nil, &os.PathError{Op: "readdir", Path: name, Err: os.ErrNotExist}
	}
	names := make([]string, 0, len(seen))
	for b := range seen {
		names = append(names, b)
	}
	sort.Strings(names)
	out := make([]fs.DirEntry, len(names))
	for i, b := range names {
		out[i] = seen[b]
	}
	return out, nil
}

func (m *MemFS) MkdirAll(p string, perm os.FileMode) error {
	p = clean(p)
	m.mu.Lock()
	defer m.mu.Unlock()
	for p != "." && p != "/" {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	name = clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if n, ok := m.files[name]; ok {
		n.mu.Lock()
		size := int64(len(n.data))
		n.mu.Unlock()
		return memFileInfo{name: path.Base(name), size: size}, nil
	}
	if m.dirs[name] {
		return memFileInfo{name: path.Base(name), dir: true}, nil
	}
	return nil, &os.PathError{Op: "stat", Path: name, Err: os.ErrNotExist}
}

// SyncDir is a no-op: MemFS directory entries are durable the moment
// they are created, mirroring the write model documented on the package.
func (m *MemFS) SyncDir(name string) error { return nil }

// Link implements Linker by sharing the node between both names — true
// hard-link semantics: the bytes are one inode, removing either name
// leaves the other intact.
func (m *MemFS) Link(oldname, newname string) error {
	oldname, newname = clean(oldname), clean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	n, ok := m.files[oldname]
	if !ok {
		return &os.LinkError{Op: "link", Old: oldname, New: newname, Err: os.ErrNotExist}
	}
	if _, exists := m.files[newname]; exists {
		return &os.LinkError{Op: "link", Old: oldname, New: newname, Err: os.ErrExist}
	}
	m.files[newname] = n
	m.dirs[path.Dir(newname)] = true
	return nil
}

// Paths returns the sorted paths of all files currently in the
// filesystem (a test convenience).
func (m *MemFS) Paths() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.files))
	for p := range m.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// memFile is one open handle; the offset is per handle, the bytes are
// shared through the node.
type memFile struct {
	name   string
	node   *memNode
	off    int64
	append bool
	closed bool
}

func (f *memFile) Read(p []byte) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[f.off:])
	f.off += int64(n)
	return n, nil
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if off >= int64(len(f.node.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.node.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	if f.append {
		f.off = int64(len(f.node.data))
	}
	return f.writeAtLocked(p, f.off, true), nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	f.writeAtLocked(p, off, false)
	return len(p), nil
}

// writeAtLocked writes p at off, growing the file as needed.
func (f *memFile) writeAtLocked(p []byte, off int64, advance bool) int {
	end := off + int64(len(p))
	if end > int64(len(f.node.data)) {
		grown := make([]byte, end)
		copy(grown, f.node.data)
		f.node.data = grown
	}
	copy(f.node.data[off:], p)
	if advance {
		f.off = end
	}
	return len(p)
}

func (f *memFile) Sync() error {
	if f.closed {
		return os.ErrClosed
	}
	return nil
}

func (f *memFile) Stat() (os.FileInfo, error) {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return nil, os.ErrClosed
	}
	return memFileInfo{name: path.Base(f.name), size: int64(len(f.node.data))}, nil
}

func (f *memFile) Truncate(size int64) error {
	f.node.mu.Lock()
	defer f.node.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if size <= int64(len(f.node.data)) {
		f.node.data = f.node.data[:size]
		return nil
	}
	grown := make([]byte, size)
	copy(grown, f.node.data)
	f.node.data = grown
	return nil
}

func (f *memFile) Close() error {
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	return nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (fi memFileInfo) Name() string { return fi.name }
func (fi memFileInfo) Size() int64  { return fi.size }
func (fi memFileInfo) Mode() os.FileMode {
	if fi.dir {
		return os.ModeDir | 0o755
	}
	return 0o644
}
func (fi memFileInfo) ModTime() time.Time { return time.Time{} }
func (fi memFileInfo) IsDir() bool        { return fi.dir }
func (fi memFileInfo) Sys() interface{}   { return nil }

type memDirEntry struct{ info memFileInfo }

func (e memDirEntry) Name() string               { return e.info.name }
func (e memDirEntry) IsDir() bool                { return e.info.dir }
func (e memDirEntry) Type() fs.FileMode          { return e.info.Mode().Type() }
func (e memDirEntry) Info() (fs.FileInfo, error) { return e.info, nil }
