package vfs

import (
	"errors"
	"io/fs"
	"math/rand"
	"os"
	"sync"
)

// Errors produced by FaultFS. Engines must propagate them unchanged so
// the crash suite can tell an injected fault from a real bug.
var (
	// ErrInjected is returned by the operation a FaultPlan targets.
	ErrInjected = errors.New("vfs: injected fault")
	// ErrDiskFull is returned once the plan's byte budget is exhausted.
	ErrDiskFull = errors.New("vfs: injected disk full")
	// ErrCrashed is returned by every mutation after the simulated crash:
	// the process is considered dead, nothing further reaches the disk.
	ErrCrashed = errors.New("vfs: simulated crash")
)

// FaultPlan describes one deterministic failure to inject. Counters are
// 1-based and global across all files of the FaultFS: FailWriteN == 3
// fails the third write issued anywhere. A zero field disables that
// fault.
type FaultPlan struct {
	// Seed drives the torn-write split point.
	Seed int64
	// FailWriteN fails the Nth Write/WriteAt call.
	FailWriteN int
	// Torn makes the failing write persist a seeded prefix of its buffer
	// before reporting failure — a torn page/record.
	Torn bool
	// FailSyncN fails the Nth Sync call. The data written before the
	// sync stays durable (MemFS has no cache), matching a disk that
	// acknowledged writes but failed the flush barrier.
	FailSyncN int
	// FailRenameN fails the Nth Rename call.
	FailRenameN int
	// LoseRenameN makes the Nth Rename call succeed but stay volatile:
	// unless a SyncDir of the new path's parent directory happens first,
	// a simulated crash rolls the rename back — the classic
	// rename-without-directory-fsync crash-consistency hole. After the
	// rollback the surviving state (Inner) has the renamed bytes under
	// the old name and the pre-rename content (if any) under the new one,
	// exactly the directory state an unjournaled rename leaves behind.
	LoseRenameN int
	// DiskFullBytes bounds the cumulative bytes written; the write that
	// would exceed it persists up to the budget and fails with
	// ErrDiskFull.
	DiskFullBytes int64
	// CrashAfterFault makes every mutation after the first injected
	// fault fail with ErrCrashed, simulating process death at the fault.
	CrashAfterFault bool
}

// FaultFS wraps another FS and injects the faults of one FaultPlan.
type FaultFS struct {
	inner FS
	plan  FaultPlan
	rng   *rand.Rand

	mu       sync.Mutex
	writes   int
	syncs    int
	dirSyncs int
	renames  int
	bytes    int64
	faulted  bool
	crashed  bool
	pending  *pendingRename
}

// pendingRename records the undo state of a rename whose directory
// entry has not been synced yet.
type pendingRename struct {
	oldpath, newpath string
	dir              string // parent of newpath; SyncDir of it commits the rename
	prev             []byte // newpath's content before the rename
	prevExisted      bool
}

// NewFaultFS wraps inner with the given plan.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
}

// Writes returns the number of write calls observed so far.
func (f *FaultFS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

// Syncs returns the number of sync calls observed so far.
func (f *FaultFS) Syncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.syncs }

// Renames returns the number of rename calls observed so far.
func (f *FaultFS) Renames() int { f.mu.Lock(); defer f.mu.Unlock(); return f.renames }

// BytesWritten returns the cumulative bytes written so far.
func (f *FaultFS) BytesWritten() int64 { f.mu.Lock(); defer f.mu.Unlock(); return f.bytes }

// Faulted reports whether the plan's fault has fired.
func (f *FaultFS) Faulted() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.faulted }

// Crashed reports whether the simulated crash is in effect.
func (f *FaultFS) Crashed() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

// DirSyncs returns the number of SyncDir calls observed so far.
func (f *FaultFS) DirSyncs() int { f.mu.Lock(); defer f.mu.Unlock(); return f.dirSyncs }

// Crash forces the crashed state directly (crash without a prior fault).
func (f *FaultFS) Crash() { f.mu.Lock(); f.crashLocked(); f.mu.Unlock() }

// crashLocked enters the crashed state and applies the lost-rename
// rollback, if one is armed and still unsynced. Called with mu held;
// the inner-FS operations below never re-enter f.mu.
func (f *FaultFS) crashLocked() {
	if f.crashed {
		return
	}
	f.crashed = true
	p := f.pending
	f.pending = nil
	if p == nil {
		return
	}
	// Undo the directory entry swap: the renamed bytes reappear under the
	// old name, the new name reverts to its pre-rename content.
	moved, err := ReadFile(f.inner, p.newpath)
	if err != nil {
		return // newpath was removed or re-renamed since; nothing to lose
	}
	f.inner.Remove(p.newpath)
	WriteFile(f.inner, p.oldpath, moved, 0o644)
	if p.prevExisted {
		WriteFile(f.inner, p.newpath, p.prev, 0o644)
	}
}

// Inner returns the wrapped filesystem — the state that "survives" the
// simulated crash, which recovery tests reopen without fault injection.
func (f *FaultFS) Inner() FS { return f.inner }

// fault records that the plan fired and arms the crash state.
func (f *FaultFS) fault() {
	f.faulted = true
	if f.plan.CrashAfterFault {
		f.crashLocked()
	}
}

// checkWrite charges one write of n bytes against the plan. It returns
// the number of bytes that should still be persisted and the error to
// report (nil = the write proceeds normally).
func (f *FaultFS) checkWrite(n int) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return 0, ErrCrashed
	}
	f.writes++
	if f.plan.FailWriteN > 0 && f.writes == f.plan.FailWriteN {
		f.fault()
		if f.plan.Torn && n > 0 {
			keep := f.rng.Intn(n) // strictly shorter than the full buffer
			f.bytes += int64(keep)
			return keep, ErrInjected
		}
		return 0, ErrInjected
	}
	if f.plan.DiskFullBytes > 0 && f.bytes+int64(n) > f.plan.DiskFullBytes {
		keep := int(f.plan.DiskFullBytes - f.bytes)
		if keep < 0 {
			keep = 0
		}
		f.fault()
		f.bytes += int64(keep)
		return keep, ErrDiskFull
	}
	f.bytes += int64(n)
	return n, nil
}

func (f *FaultFS) checkSync() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	f.syncs++
	if f.plan.FailSyncN > 0 && f.syncs == f.plan.FailSyncN {
		f.fault()
		return ErrInjected
	}
	return nil
}

func (f *FaultFS) checkMutation() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_CREATE|os.O_TRUNC|os.O_WRONLY|os.O_RDWR|os.O_APPEND) != 0 {
		if err := f.checkMutation(); err != nil {
			return nil, err
		}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.renames++
	if f.plan.FailRenameN > 0 && f.renames == f.plan.FailRenameN {
		f.fault()
		f.mu.Unlock()
		return ErrInjected
	}
	lose := f.plan.LoseRenameN > 0 && f.renames == f.plan.LoseRenameN
	f.mu.Unlock()
	if lose {
		// Snapshot newpath's pre-rename content so a crash before the
		// directory sync can restore the old entry.
		p := &pendingRename{oldpath: clean(oldpath), newpath: clean(newpath), dir: clean(ParentDir(newpath))}
		if prev, err := ReadFile(f.inner, newpath); err == nil {
			p.prev, p.prevExisted = prev, true
		}
		if err := f.inner.Rename(oldpath, newpath); err != nil {
			return err
		}
		f.mu.Lock()
		if !f.crashed {
			f.pending = p
		}
		f.mu.Unlock()
		return nil
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) SyncDir(name string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.dirSyncs++
	if f.pending != nil && f.pending.dir == clean(name) {
		f.pending = nil // the rename's directory entry is now durable
	}
	f.mu.Unlock()
	return f.inner.SyncDir(name)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.checkMutation(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if err := f.checkMutation(); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Stat(name string) (os.FileInfo, error) { return f.inner.Stat(name) }

// faultFile wraps one open file, routing writes and syncs through the
// plan. Reads pass through untouched.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error)              { return ff.inner.Read(p) }
func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) { return ff.inner.ReadAt(p, off) }
func (ff *faultFile) Stat() (os.FileInfo, error)              { return ff.inner.Stat() }

func (ff *faultFile) Write(p []byte) (int, error) {
	keep, err := ff.fs.checkWrite(len(p))
	if err != nil {
		if keep > 0 {
			ff.inner.Write(p[:keep])
		}
		return keep, err
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	keep, err := ff.fs.checkWrite(len(p))
	if err != nil {
		if keep > 0 {
			ff.inner.WriteAt(p[:keep], off)
		}
		return keep, err
	}
	return ff.inner.WriteAt(p, off)
}

func (ff *faultFile) Sync() error {
	if err := ff.fs.checkSync(); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Truncate(size int64) error {
	if err := ff.fs.checkMutation(); err != nil {
		return err
	}
	return ff.inner.Truncate(size)
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
