// Package vfs abstracts the filesystem operations of Gadget's
// persistence layers (LSM, SSTables, B+Tree pager, FASTER log, trace
// files) behind a small interface with three implementations:
//
//   - OsFS: passthrough to the real filesystem (the default),
//   - MemFS: an in-memory filesystem for fast, hermetic tests,
//   - FaultFS: a wrapper that injects deterministic, seeded faults
//     (failed or torn writes, fsync failures, rename failures, disk
//     full) and can simulate a process crash, for the crash-consistency
//     test suite in internal/stores.
//
// The durability model of MemFS is "writes are durable once issued":
// there is no simulated page cache, so Sync is a no-op. Data buffered in
// user space (e.g. a bufio.Writer) still dies with the process, which is
// exactly the asymmetry the crash suite relies on.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the subset of *os.File the storage engines need.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Closer
	// Sync flushes the file's contents to stable storage.
	Sync() error
	// Stat returns file metadata (engines use only Size).
	Stat() (os.FileInfo, error)
	// Truncate changes the file size (used to drop torn WAL tails).
	Truncate(size int64) error
}

// FS is the filesystem seam threaded through every persistence layer.
type FS interface {
	// OpenFile is the general constructor; flag and perm follow os.OpenFile.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath. A rename is only
	// durable once the directory holding the new entry has been synced
	// (SyncDir); FaultFS can simulate the loss of an unsynced rename.
	Rename(oldpath, newpath string) error
	// Remove deletes a file. Removing a missing file returns an error
	// satisfying errors.Is(err, os.ErrNotExist), as os.Remove does.
	Remove(name string) error
	// ReadDir lists a directory, sorted by name.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// Stat returns metadata for the named file.
	Stat(name string) (os.FileInfo, error)
	// SyncDir flushes a directory's entries to stable storage, making
	// renames and creations inside it crash-durable (the fsync(dirfd)
	// every POSIX commit protocol needs after rename).
	SyncDir(name string) error
}

// Linker is an optional FS extension for hard links. LinkOrCopy prefers
// it; filesystems without native links fall back to a byte copy.
type Linker interface {
	// Link creates newname as a hard link to oldname.
	Link(oldname, newname string) error
}

// LinkOrCopy makes newname hold the same bytes as oldname: a hard link
// when fsys supports one (the cheap native-checkpoint path), otherwise a
// full copy. The copy is synced before returning.
func LinkOrCopy(fsys FS, oldname, newname string) error {
	if l, ok := fsys.(Linker); ok {
		if err := l.Link(oldname, newname); err == nil {
			return nil
		}
	}
	src, err := Open(fsys, oldname)
	if err != nil {
		return err
	}
	defer src.Close()
	dst, err := fsys.OpenFile(newname, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := io.Copy(dst, src); err != nil {
		dst.Close()
		fsys.Remove(newname)
		return err
	}
	if err := dst.Sync(); err != nil {
		dst.Close()
		fsys.Remove(newname)
		return err
	}
	return dst.Close()
}

// Open opens the named file for reading, like os.Open.
func Open(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDONLY, 0)
}

// Create truncates or creates the named file for writing, like os.Create.
func Create(fsys FS, name string) (File, error) {
	return fsys.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// ReadFile reads the whole named file, like os.ReadFile.
func ReadFile(fsys FS, name string) ([]byte, error) {
	f, err := Open(fsys, name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// WriteFile writes data to the named file, creating or truncating it.
func WriteFile(fsys FS, name string, data []byte, perm os.FileMode) error {
	f, err := fsys.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteFileAtomic writes data to a temporary sibling, syncs it, and
// renames it over name — the commit idiom used for metadata files
// (LSM MANIFEST, FASTER meta). A crash at any point leaves either the
// old file or the new one, never a torn mix.
func WriteFileAtomic(fsys FS, name string, data []byte, perm os.FileMode) error {
	tmp := name + ".tmp"
	f, err := fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, name); err != nil {
		fsys.Remove(tmp)
		return err
	}
	// The rename itself is not durable until the directory entry is
	// flushed; without this, a crash can resurrect the old file (or lose
	// the new one entirely on filesystems that journal lazily).
	return fsys.SyncDir(ParentDir(name))
}

// ParentDir returns the directory holding name — the directory to
// SyncDir after a rename. It mirrors filepath.Dir for the path styles
// engines use.
func ParentDir(name string) string {
	i := len(name) - 1
	for i >= 0 && name[i] != '/' && name[i] != os.PathSeparator {
		i--
	}
	if i < 0 {
		return "."
	}
	if i == 0 {
		return name[:1]
	}
	return name[:i]
}

// OsFS is the passthrough implementation over the real filesystem.
type OsFS struct{}

var defaultFS FS = OsFS{}

// Default returns the process-wide OsFS.
func Default() FS { return defaultFS }

// OrDefault returns fsys, or the OsFS when fsys is nil — the idiom every
// engine's Options uses so existing callers keep working unchanged.
func OrDefault(fsys FS) FS {
	if fsys == nil {
		return defaultFS
	}
	return fsys
}

func (OsFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OsFS) Rename(oldpath, newpath string) error       { return os.Rename(oldpath, newpath) }
func (OsFS) Remove(name string) error                   { return os.Remove(name) }
func (OsFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
func (OsFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (OsFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (OsFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Link implements Linker with a real hard link.
func (OsFS) Link(oldname, newname string) error { return os.Link(oldname, newname) }
