package cache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 1, Off: 0}
	if c.Get(k) != nil {
		t.Fatal("empty cache should miss")
	}
	v := []byte("hello")
	c.Put(k, v)
	if got := c.Get(k); !bytes.Equal(got, v) {
		t.Fatalf("Get = %q", got)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d/%d", hits, misses)
	}
}

func TestReplace(t *testing.T) {
	c := New(1 << 20)
	k := Key{File: 1, Off: 8}
	c.Put(k, []byte("one"))
	c.Put(k, []byte("twotwo"))
	if got := c.Get(k); string(got) != "twotwo" {
		t.Fatalf("Get = %q", got)
	}
}

func TestEviction(t *testing.T) {
	// Per-shard cap = 64KiB/16 = 4KiB. Fill one shard far beyond that.
	c := New(64 << 10)
	val := make([]byte, 1000)
	var keys []Key
	for i := uint64(0); i < 200; i++ {
		k := Key{File: 7, Off: i} // may hash to various shards
		keys = append(keys, k)
		c.Put(k, val)
	}
	if c.Used() > 64<<10 {
		t.Fatalf("Used = %d beyond capacity", c.Used())
	}
	// At least the most recent key in its shard survives.
	last := keys[len(keys)-1]
	if c.Get(last) == nil {
		t.Fatal("most recent entry should survive eviction")
	}
}

func TestLRUOrder(t *testing.T) {
	// Force all keys into one shard by picking keys that hash alike is
	// fragile; instead use a tiny cache and verify a touched key survives
	// while an untouched same-shard victim can be evicted.
	c := New(numShards * (3 * (100 + entryOverhead))) // 3 entries per shard
	var same []Key
	s0 := c.shardFor(Key{File: 1, Off: 0})
	for off := uint64(0); len(same) < 4; off++ {
		k := Key{File: 1, Off: off}
		if c.shardFor(k) == s0 {
			same = append(same, k)
		}
	}
	val := make([]byte, 100)
	c.Put(same[0], val)
	c.Put(same[1], val)
	c.Put(same[2], val)
	c.Get(same[0]) // touch 0 -> most recent
	c.Put(same[3], val)
	if c.Get(same[0]) == nil {
		t.Fatal("recently used entry evicted")
	}
	if c.Get(same[1]) != nil {
		t.Fatal("LRU victim should have been evicted")
	}
}

func TestOversizedBlockNotCached(t *testing.T) {
	c := New(1024) // shard cap 64 bytes
	k := Key{File: 2, Off: 2}
	c.Put(k, make([]byte, 4096))
	if c.Get(k) != nil {
		t.Fatal("oversized block should not be cached")
	}
}

func TestInvalidateFile(t *testing.T) {
	c := New(1 << 20)
	for i := uint64(0); i < 50; i++ {
		c.Put(Key{File: 1, Off: i}, []byte("a"))
		c.Put(Key{File: 2, Off: i}, []byte("b"))
	}
	c.InvalidateFile(1)
	for i := uint64(0); i < 50; i++ {
		if c.Get(Key{File: 1, Off: i}) != nil {
			t.Fatal("file 1 block survived invalidation")
		}
		if c.Get(Key{File: 2, Off: i}) == nil {
			t.Fatal("file 2 block lost")
		}
	}
}

func TestZeroCapacity(t *testing.T) {
	c := New(0)
	c.Put(Key{1, 1}, []byte("x"))
	if c.Get(Key{1, 1}) != nil {
		t.Fatal("zero-capacity cache should store nothing")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := Key{File: uint64(g), Off: uint64(i % 100)}
				c.Put(k, []byte(fmt.Sprintf("%d-%d", g, i)))
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Used() < 0 {
		t.Fatal("negative usage")
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1 << 24)
	k := Key{File: 1, Off: 42}
	c.Put(k, make([]byte, 4096))
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Get(k)
	}
}
