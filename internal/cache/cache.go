// Package cache provides the sharded, byte-capacity-bounded LRU block
// cache shared by SSTable readers in the LSM engine, and reused by the
// B+Tree buffer pool. It is safe for concurrent use.
package cache

import (
	"container/list"
	"sync"
)

// Key identifies a cached block: the owning file and the block offset.
type Key struct {
	File uint64
	Off  uint64
}

// Cache is a sharded LRU cache of byte blocks with a total capacity in
// bytes. Entries are charged their value length plus a fixed overhead.
type Cache struct {
	shards [numShards]*shard
}

const (
	numShards     = 16
	entryOverhead = 64
)

type shard struct {
	mu           sync.Mutex
	cap          int64
	used         int64
	ll           *list.List // front = most recent
	items        map[Key]*list.Element
	hits, misses uint64
}

type entry struct {
	key   Key
	value []byte
}

// New returns a Cache with the given total capacity in bytes. A
// non-positive capacity yields a cache that stores nothing.
func New(capacity int64) *Cache {
	c := &Cache{}
	per := capacity / numShards
	for i := range c.shards {
		c.shards[i] = &shard{
			cap:   per,
			ll:    list.New(),
			items: make(map[Key]*list.Element),
		}
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	h := k.File*0x9E3779B97F4A7C15 + k.Off
	return c.shards[(h>>59)&(numShards-1)]
}

// Get returns the cached block for k, or nil if absent. The returned
// slice must not be modified.
func (c *Cache) Get(k Key) []byte {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.MoveToFront(el)
		s.hits++
		return el.Value.(*entry).value
	}
	s.misses++
	return nil
}

// Put inserts (or replaces) the block for k, evicting least-recently-used
// entries as needed. Blocks larger than the shard capacity are not cached.
func (c *Cache) Put(k Key, v []byte) {
	s := c.shardFor(k)
	charge := int64(len(v) + entryOverhead)
	s.mu.Lock()
	defer s.mu.Unlock()
	if charge > s.cap {
		return
	}
	if el, ok := s.items[k]; ok {
		old := el.Value.(*entry)
		s.used += int64(len(v)) - int64(len(old.value))
		old.value = v
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, value: v})
		s.items[k] = el
		s.used += charge
	}
	for s.used > s.cap {
		back := s.ll.Back()
		if back == nil {
			break
		}
		e := back.Value.(*entry)
		s.ll.Remove(back)
		delete(s.items, e.key)
		s.used -= int64(len(e.value) + entryOverhead)
	}
}

// InvalidateFile drops every cached block belonging to the given file
// (used when compaction deletes an SSTable).
func (c *Cache) InvalidateFile(file uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		for k, el := range s.items {
			if k.File == file {
				e := el.Value.(*entry)
				s.ll.Remove(el)
				delete(s.items, k)
				s.used -= int64(len(e.value) + entryOverhead)
			}
		}
		s.mu.Unlock()
	}
}

// Stats reports cumulative hits and misses across shards.
func (c *Cache) Stats() (hits, misses uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return
}

// Used returns the total bytes currently charged to the cache.
func (c *Cache) Used() int64 {
	var u int64
	for _, s := range c.shards {
		s.mu.Lock()
		u += s.used
		s.mu.Unlock()
	}
	return u
}
