package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/vfs"
)

// applyCheckpointWorkload drives a mixed put/merge/delete workload and
// returns the model of the expected final state.
func applyCheckpointWorkload(t *testing.T, db *DB, n int, seed int64) map[string][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	model := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%03d", rng.Intn(64)))
		switch rng.Intn(10) {
		case 0:
			if err := db.Delete(key); err != nil {
				t.Fatal(err)
			}
			delete(model, string(key))
		case 1, 2:
			op := []byte(fmt.Sprintf(",m%d", i))
			if err := db.Merge(key, op); err != nil {
				t.Fatal(err)
			}
			model[string(key)] = append(model[string(key)], op...)
		default:
			val := []byte(fmt.Sprintf("val-%05d", i))
			if err := db.Put(key, val); err != nil {
				t.Fatal(err)
			}
			model[string(key)] = append([]byte(nil), val...)
		}
	}
	return model
}

func checkModel(t *testing.T, db *DB, model map[string][]byte) {
	t.Helper()
	for key, want := range model {
		got, err := db.Get([]byte(key))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("key %q: got %q, %v; want %q", key, got, err, want)
		}
	}
}

func TestCheckpointToOpensAsEqualDB(t *testing.T) {
	for _, mode := range []string{"memfs-link", "osfs", "faultfs-copy"} {
		t.Run(mode, func(t *testing.T) {
			var fs vfs.FS
			dir, ckDir := "db", "ck"
			switch mode {
			case "memfs-link":
				fs = vfs.NewMemFS()
			case "osfs":
				fs = nil // default OsFS
				dir, ckDir = t.TempDir()+"/db", t.TempDir()+"/ck"
			case "faultfs-copy":
				// FaultFS is not a Linker: exercises the copy fallback.
				fs = vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
			}
			opts := smallOpts()
			opts.Dir, opts.FS = dir, fs
			db := testDB(t, opts)
			model := applyCheckpointWorkload(t, db, 3000, 42)

			if err := db.CheckpointTo(ckDir); err != nil {
				t.Fatal(err)
			}
			// Writes after the checkpoint must not leak into it.
			if err := db.Put([]byte("key-000"), []byte("post-checkpoint")); err != nil {
				t.Fatal(err)
			}

			ck, err := Open(Options{Dir: ckDir, FS: fs})
			if err != nil {
				t.Fatalf("opening checkpoint: %v", err)
			}
			defer ck.Close()
			checkModel(t, ck, model)
			if v, _ := ck.Get([]byte("key-000")); string(v) == "post-checkpoint" {
				t.Fatal("checkpoint saw a write issued after it was taken")
			}
		})
	}
}

func TestCheckpointToWithLiveWriters(t *testing.T) {
	opts := smallOpts()
	opts.Dir, opts.FS = "db", vfs.NewMemFS()
	db := testDB(t, opts)
	model := applyCheckpointWorkload(t, db, 1500, 7)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 2000; i++ {
			db.Put([]byte(fmt.Sprintf("key-%03d", i%64)), []byte("concurrent"))
		}
	}()
	if err := db.CheckpointTo("ck"); err != nil {
		t.Fatal(err)
	}
	<-done

	// The checkpoint is *some* consistent prefix of the write stream:
	// it must open cleanly and every key must hold either the
	// pre-checkpoint model value or the concurrent overwrite.
	ck, err := Open(Options{Dir: "ck", FS: opts.FS})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	for key, want := range model {
		got, err := ck.Get([]byte(key))
		if errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("key %q vanished from checkpoint", key)
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) && string(got) != "concurrent" {
			t.Fatalf("key %q: %q is neither model %q nor the concurrent write", key, got, want)
		}
	}
}

func TestCheckpointToRejectsOwnDir(t *testing.T) {
	opts := Options{Dir: "db", FS: vfs.NewMemFS()}
	db := testDB(t, opts)
	if err := db.CheckpointTo("db"); err == nil {
		t.Fatal("checkpointing into the live dir must fail")
	}
}

func TestCheckpointToEmptyDB(t *testing.T) {
	opts := Options{Dir: "db", FS: vfs.NewMemFS()}
	db := testDB(t, opts)
	if err := db.CheckpointTo("ck"); err != nil {
		t.Fatal(err)
	}
	ck, err := Open(Options{Dir: "ck", FS: opts.FS})
	if err != nil {
		t.Fatal(err)
	}
	defer ck.Close()
	if _, err := ck.Get([]byte("anything")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("empty checkpoint Get = %v", err)
	}
}
