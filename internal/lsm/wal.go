package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"gadget/internal/vfs"
)

// The write-ahead log is a sequence of framed records:
//
//	crc32(payload) u32 | payloadLen u32 | payload
//	payload = ikeyLen u32 | ikey | value
//
// Replay stops at the first torn or corrupt record, which is the correct
// recovery semantics for a crash during append, and truncates the file
// there so that new records appended after recovery are never shadowed
// by stale torn bytes.

const walName = "wal.log"

type walWriter struct {
	f    vfs.File
	buf  *bufio.Writer
	sync bool
}

func newWALWriter(fs vfs.FS, path string, syncWrites bool) (*walWriter, error) {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, buf: bufio.NewWriterSize(f, 64<<10), sync: syncWrites}, nil
}

func (w *walWriter) append(ikey, value []byte) error {
	payloadLen := 4 + len(ikey) + len(value)
	var hdr [12]byte
	crc := crc32.NewIEEE()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(ikey)))
	crc.Write(lenBuf[:])
	crc.Write(ikey)
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[0:], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[4:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(ikey)))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(ikey); err != nil {
		return err
	}
	if _, err := w.buf.Write(value); err != nil {
		return err
	}
	if w.sync {
		if err := w.buf.Flush(); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

func (w *walWriter) close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL loads surviving log records into the memtable. Torn tails
// are truncated; everything before them is recovered. Records with
// sequence numbers at or below minSeq are already persisted in sorted
// tables (the manifest outlives the log) and are skipped — without the
// skip, a crash between a flush and log truncation would replay merge
// operands twice and double-count them.
func (db *DB) replayWAL(minSeq uint64) error {
	path := filepath.Join(db.opts.Dir, walName)
	f, err := db.opts.FS.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return err
	}
	r := bufio.NewReaderSize(f, 64<<10)
	validEnd := int64(0)
	// truncTail drops everything after the last whole record so appends
	// after recovery land on a clean tail.
	truncTail := func() error {
		if validEnd < st.Size() {
			return f.Truncate(validEnd)
		}
		return nil
	}
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return truncTail() // EOF or torn header: recovery complete
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		payloadLen := binary.LittleEndian.Uint32(hdr[4:])
		if payloadLen < 4 || payloadLen > 1<<30 {
			return truncTail()
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return truncTail() // torn record
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return truncTail() // corrupt tail
		}
		ikeyLen := binary.LittleEndian.Uint32(payload[:4])
		if 4+ikeyLen > payloadLen {
			return truncTail()
		}
		ikey := payload[4 : 4+ikeyLen]
		value := payload[4+ikeyLen:]
		_, seq, kind, err := parseIKey(ikey)
		if err != nil {
			return truncTail()
		}
		validEnd += 8 + int64(payloadLen)
		if seq > db.seq {
			db.seq = seq
		}
		if seq <= minSeq {
			continue // already durable in a sorted table
		}
		db.mem.add(ikey, value, kind)
	}
}
