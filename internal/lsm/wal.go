package lsm

import (
	"bufio"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// The write-ahead log is a sequence of framed records:
//
//	crc32(payload) u32 | payloadLen u32 | payload
//	payload = ikeyLen u32 | ikey | value
//
// Replay stops at the first torn or corrupt record, which is the correct
// recovery semantics for a crash during append.

type walWriter struct {
	f    *os.File
	buf  *bufio.Writer
	sync bool
}

func newWALWriter(path string, syncWrites bool) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &walWriter{f: f, buf: bufio.NewWriterSize(f, 64<<10), sync: syncWrites}, nil
}

func (w *walWriter) append(ikey, value []byte) error {
	payloadLen := 4 + len(ikey) + len(value)
	var hdr [12]byte
	crc := crc32.NewIEEE()
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(ikey)))
	crc.Write(lenBuf[:])
	crc.Write(ikey)
	crc.Write(value)
	binary.LittleEndian.PutUint32(hdr[0:], crc.Sum32())
	binary.LittleEndian.PutUint32(hdr[4:], uint32(payloadLen))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(ikey)))
	if _, err := w.buf.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.buf.Write(ikey); err != nil {
		return err
	}
	if _, err := w.buf.Write(value); err != nil {
		return err
	}
	if w.sync {
		if err := w.buf.Flush(); err != nil {
			return err
		}
		return w.f.Sync()
	}
	return nil
}

func (w *walWriter) close() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// replayWAL loads surviving log records into the memtable. Torn tails are
// tolerated; everything before them is recovered.
func (db *DB) replayWAL() error {
	path := filepath.Join(db.opts.Dir, "wal.log")
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil // EOF or torn header: recovery complete
		}
		wantCRC := binary.LittleEndian.Uint32(hdr[0:])
		payloadLen := binary.LittleEndian.Uint32(hdr[4:])
		if payloadLen < 4 || payloadLen > 1<<30 {
			return nil
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil // torn record
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return nil // corrupt tail
		}
		ikeyLen := binary.LittleEndian.Uint32(payload[:4])
		if 4+ikeyLen > payloadLen {
			return nil
		}
		ikey := payload[4 : 4+ikeyLen]
		value := payload[4+ikeyLen:]
		_, seq, kind, err := parseIKey(ikey)
		if err != nil {
			return nil
		}
		db.mem.add(ikey, value, kind)
		if seq > db.seq {
			db.seq = seq
		}
	}
}
