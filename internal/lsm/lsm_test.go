package lsm

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
)

func testDB(t testing.TB, opts Options) *DB {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// smallOpts forces frequent flushes/compactions so tests exercise the
// full tree with few operations.
func smallOpts() Options {
	return Options{
		MemtableSize:        8 << 10,
		BlockCacheSize:      1 << 20,
		L0CompactionTrigger: 2,
		BaseLevelSize:       32 << 10,
		LevelMultiplier:     4,
	}
}

func TestPutGetDelete(t *testing.T) {
	db := testDB(t, Options{})
	if _, err := db.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("a"))
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := db.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite = %q", v)
	}
	if err := db.Delete([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("post-delete err = %v", err)
	}
	if err := db.Delete([]byte("never-existed")); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSemantics(t *testing.T) {
	db := testDB(t, Options{})
	k := []byte("bucket")
	db.Merge(k, []byte("a"))
	db.Merge(k, []byte("b"))
	db.Merge(k, []byte("c"))
	v, err := db.Get(k)
	if err != nil || string(v) != "abc" {
		t.Fatalf("merged = %q, %v", v, err)
	}
	// Put resets the base.
	db.Put(k, []byte("X"))
	db.Merge(k, []byte("y"))
	if v, _ := db.Get(k); string(v) != "Xy" {
		t.Fatalf("put+merge = %q", v)
	}
	// Delete wipes; merges after delete start fresh.
	db.Delete(k)
	db.Merge(k, []byte("z"))
	if v, _ := db.Get(k); string(v) != "z" {
		t.Fatalf("delete+merge = %q", v)
	}
}

func TestMergeAcrossFlushes(t *testing.T) {
	db := testDB(t, smallOpts())
	k := []byte("bucket")
	want := ""
	for i := 0; i < 50; i++ {
		part := fmt.Sprintf("<%d>", i)
		db.Merge(k, []byte(part))
		want += part
		if i%10 == 9 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}
	v, err := db.Get(k)
	if err != nil || string(v) != want {
		t.Fatalf("merged = %q, want %q (err %v)", v, want, err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Get(k); string(v) != want {
		t.Fatalf("post-compaction merged = %q", v)
	}
}

func TestFlushAndRead(t *testing.T) {
	db := testDB(t, smallOpts())
	const n = 2000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		if err := db.Put(k, []byte(fmt.Sprintf("val-%05d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.StatsSnapshot().Flushes == 0 {
		t.Fatal("expected at least one flush with tiny memtables")
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%05d", i))
		v, err := db.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%05d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
}

func TestCompactionPreservesData(t *testing.T) {
	db := testDB(t, smallOpts())
	model := map[string]string{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 8000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(1500))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		case 1, 2:
			op := fmt.Sprintf("+%d", i)
			db.Merge([]byte(k), []byte(op))
			model[k] += op
		default:
			v := fmt.Sprintf("v%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.StatsSnapshot().Compactions == 0 {
		t.Fatal("expected compactions with tiny levels")
	}
	for k, want := range model {
		v, err := db.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
	// Deleted keys stay deleted.
	for i := 0; i < 1500; i++ {
		k := fmt.Sprintf("key-%04d", i)
		if _, ok := model[k]; ok {
			continue
		}
		if _, err := db.Get([]byte(k)); !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("deleted key %s resurfaced: %v", k, err)
		}
	}
}

func TestTombstonesDroppedAtBottom(t *testing.T) {
	db := testDB(t, smallOpts())
	for i := 0; i < 500; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		db.Put(k, bytes.Repeat([]byte("x"), 64))
		db.Delete(k)
	}
	db.Flush()
	db.Compact()
	st := db.StatsSnapshot()
	if st.TombstonesDropped == 0 {
		t.Fatalf("no tombstones dropped: %+v", st)
	}
}

func TestReopenPreservesData(t *testing.T) {
	dir := t.TempDir()
	opts := smallOpts()
	opts.Dir = dir
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Delete([]byte("key-00042"))
	db.Merge([]byte("mk"), []byte("m1"))
	db.Merge([]byte("mk"), []byte("m2"))
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for _, i := range []int{0, 1, 100, 2999} {
		k := fmt.Sprintf("key-%05d", i)
		v, err := db2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(%s) = %q, %v", k, v, err)
		}
	}
	if _, err := db2.Get([]byte("key-00042")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("tombstone lost on reopen")
	}
	if v, _ := db2.Get([]byte("mk")); string(v) != "m1m2" {
		t.Fatalf("merge lost on reopen: %q", v)
	}
	// Writes continue with fresh sequence numbers.
	if err := db2.Put([]byte("key-00000"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, _ := db2.Get([]byte("key-00000")); string(v) != "new" {
		t.Fatalf("post-reopen overwrite = %q", v)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, WAL: true}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	db.Merge([]byte("m"), []byte("a"))
	db.Delete([]byte("k0"))
	// Simulate a crash: flush the WAL buffer without flushing memtables.
	db.mu.Lock()
	db.wal.buf.Flush()
	db.mu.Unlock()
	// Abandon db without Close (crash). Reopen and verify recovery.
	db2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if v, err := db2.Get([]byte("k50")); err != nil || string(v) != "v50" {
		t.Fatalf("recovered Get = %q, %v", v, err)
	}
	if _, err := db2.Get([]byte("k0")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("recovered tombstone lost")
	}
	if v, _ := db2.Get([]byte("m")); string(v) != "a" {
		t.Fatalf("recovered merge = %q", v)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	db := testDB(t, Options{})
	db.Close()
	if err := db.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put after close: %v", err)
	}
	if _, err := db.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestVariableLengthKeysWithPrefixes(t *testing.T) {
	// Keys where one is a byte-prefix of another must not interfere —
	// this exercises the escape encoding.
	db := testDB(t, smallOpts())
	keys := [][]byte{
		[]byte("a"), []byte("a\x00"), []byte("a\x00\x00"), []byte("ab"),
		[]byte(""), []byte("\x00"), []byte("\x00\x01"),
	}
	for i, k := range keys {
		db.Put(k, []byte(fmt.Sprintf("v%d", i)))
	}
	db.Flush()
	db.Compact()
	for i, k := range keys {
		v, err := db.Get(k)
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%q) = %q, %v", k, v, err)
		}
	}
	db.Delete([]byte("a"))
	if _, err := db.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete of prefix key missed")
	}
	if v, _ := db.Get([]byte("a\x00")); string(v) != "v1" {
		t.Fatal("sibling key damaged by prefix delete")
	}
}

func TestCaps(t *testing.T) {
	db := testDB(t, Options{})
	if caps := kv.CapsOf(db); !caps.NativeMerge || !caps.Snapshots || !caps.RangeScans {
		t.Fatalf("lsm caps = %+v", caps)
	}
}

func TestApproximateSize(t *testing.T) {
	db := testDB(t, smallOpts())
	if db.ApproximateSize() != 0 {
		t.Fatal("fresh db size != 0")
	}
	for i := 0; i < 1000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("v"), 100))
	}
	if db.ApproximateSize() < 100*1000 {
		t.Fatalf("size = %d", db.ApproximateSize())
	}
}

func TestIKeyRoundTrip(t *testing.T) {
	for _, k := range [][]byte{nil, {}, []byte("abc"), []byte("\x00"), []byte("a\x00b\x00\xff")} {
		ik := makeIKey(k, 12345, kindMerge)
		uk, seq, kind, err := parseIKey(ik)
		if err != nil {
			t.Fatalf("parse(%q): %v", k, err)
		}
		if !bytes.Equal(uk, k) && !(len(uk) == 0 && len(k) == 0) {
			t.Fatalf("user key %q != %q", uk, k)
		}
		if seq != 12345 || kind != kindMerge {
			t.Fatalf("seq/kind = %d/%d", seq, kind)
		}
	}
}

func TestIKeyOrdering(t *testing.T) {
	// Same key: newer (higher seq) must sort first.
	a := makeIKey([]byte("k"), 10, kindPut)
	b := makeIKey([]byte("k"), 5, kindPut)
	if bytes.Compare(a, b) >= 0 {
		t.Fatal("newer entry should sort before older")
	}
	// Different keys: user-key order dominates regardless of seq.
	c := makeIKey([]byte("a"), 1, kindPut)
	d := makeIKey([]byte("b"), 1000000, kindPut)
	if bytes.Compare(c, d) >= 0 {
		t.Fatal("user key order violated")
	}
	// Prefix keys order correctly.
	e := makeIKey([]byte("a"), 1, kindPut)
	f := makeIKey([]byte("a\x00"), 1, kindPut)
	if bytes.Compare(e, f) >= 0 {
		t.Fatal("prefix key order violated")
	}
}

func TestParseIKeyErrors(t *testing.T) {
	if _, _, _, err := parseIKey([]byte("short")); err == nil {
		t.Fatal("short ikey should fail")
	}
	bad := makeIKey([]byte("k"), 1, kindPut)
	bad[0] = 0x00 // introduce an invalid escape (0x00 followed by 'k')
	if _, _, _, err := parseIKey(bad); err == nil {
		t.Fatal("invalid escape should fail")
	}
}

func TestStatsCounting(t *testing.T) {
	db := testDB(t, Options{})
	db.Put([]byte("a"), nil)
	db.Merge([]byte("a"), []byte("x"))
	db.Delete([]byte("a"))
	db.Get([]byte("a"))
	st := db.StatsSnapshot()
	if st.Puts != 1 || st.Merges != 1 || st.Deletes != 1 || st.Gets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func BenchmarkPut(b *testing.B) {
	db := testDB(b, Options{Dir: b.TempDir()})
	val := bytes.Repeat([]byte("v"), 256)
	var key [16]byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(key[:], fmt.Sprintf("%016d", i%100000))
		db.Put(key[:], val)
	}
}

func BenchmarkGet(b *testing.B) {
	db := testDB(b, Options{Dir: b.TempDir()})
	val := bytes.Repeat([]byte("v"), 256)
	const n = 100000
	for i := 0; i < n; i++ {
		db.Put([]byte(fmt.Sprintf("%016d", i)), val)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Get([]byte(fmt.Sprintf("%016d", i%n)))
	}
}

func BenchmarkMerge(b *testing.B) {
	db := testDB(b, Options{Dir: b.TempDir()})
	op := bytes.Repeat([]byte("m"), 64)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		db.Merge([]byte(fmt.Sprintf("%016d", i%1000)), op)
	}
}

func TestDisableBloom(t *testing.T) {
	opts := smallOpts()
	opts.Dir = t.TempDir()
	opts.DisableBloom = true
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 500; i++ {
		db.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte("v"))
	}
	db.Flush()
	// Reads still work without filters, including misses.
	if v, err := db.Get([]byte("key-0042")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("absent")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
}

func TestCacheStats(t *testing.T) {
	db := testDB(t, smallOpts())
	for i := 0; i < 2000; i++ {
		db.Put([]byte(fmt.Sprintf("key-%05d", i)), bytes.Repeat([]byte("v"), 64))
	}
	db.Flush()
	for i := 0; i < 2000; i++ {
		db.Get([]byte(fmt.Sprintf("key-%05d", i)))
	}
	hits, misses := db.CacheStats()
	if hits+misses == 0 {
		t.Fatal("no cache traffic recorded")
	}
	// Re-reading the same keys should raise the hit count.
	before := hits
	for i := 0; i < 2000; i++ {
		db.Get([]byte(fmt.Sprintf("key-%05d", i)))
	}
	hits2, _ := db.CacheStats()
	if hits2 <= before {
		t.Fatalf("hits did not grow: %d -> %d", before, hits2)
	}
}
