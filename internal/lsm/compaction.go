package lsm

import (
	"bytes"
	"container/heap"
	"time"

	"gadget/internal/sstable"
)

// FileInfo is the picker-visible summary of a live table.
type FileInfo struct {
	Num         uint64
	Size        int64
	Entries     uint64
	Deletes     uint64
	TombstoneAt time.Time
}

// LevelInfo summarizes one level for the compaction picker.
type LevelInfo struct {
	Files []FileInfo
	Size  int64
}

// CompactionRequest names the files at Level that should be merged into
// Level+1 (the DB adds the overlapping next-level files itself).
type CompactionRequest struct {
	Level    int
	FileNums []uint64
}

// CompactionPicker decides what to compact next. Pick returns nil when
// the tree is in shape. Implementations must be pure functions of their
// inputs; the DB serializes calls.
type CompactionPicker interface {
	Pick(levels []LevelInfo, opts Options) *CompactionRequest
}

// LeveledPicker is the default policy: flush-heavy L0 is merged into L1
// when it accumulates L0CompactionTrigger files, and each deeper level is
// compacted into the next when it exceeds its size target.
type LeveledPicker struct{}

// Pick implements CompactionPicker.
func (LeveledPicker) Pick(levels []LevelInfo, opts Options) *CompactionRequest {
	if len(levels[0].Files) >= opts.L0CompactionTrigger {
		nums := make([]uint64, len(levels[0].Files))
		for i, f := range levels[0].Files {
			nums[i] = f.Num
		}
		return &CompactionRequest{Level: 0, FileNums: nums}
	}
	target := opts.BaseLevelSize
	for lvl := 1; lvl < len(levels)-1; lvl++ {
		if levels[lvl].Size > target {
			// Compact the largest file to reclaim the most headroom.
			best := levels[lvl].Files[0]
			for _, f := range levels[lvl].Files[1:] {
				if f.Size > best.Size {
					best = f
				}
			}
			return &CompactionRequest{Level: lvl, FileNums: []uint64{best.Num}}
		}
		target *= int64(opts.LevelMultiplier)
	}
	return nil
}

func (db *DB) levelInfosLocked() []LevelInfo {
	out := make([]LevelInfo, numLevels)
	for lvl, files := range db.version.levels {
		for _, fm := range files {
			out[lvl].Files = append(out[lvl].Files, FileInfo{
				Num:         fm.num,
				Size:        fm.size,
				Entries:     fm.reader.Count(),
				Deletes:     fm.deletes,
				TombstoneAt: fm.tombstoneAt,
			})
			out[lvl].Size += fm.size
		}
	}
	return out
}

// maybeCompactLocked runs picker-selected compactions to quiescence.
// Called with mu held.
func (db *DB) maybeCompactLocked() error {
	for rounds := 0; rounds < 32; rounds++ {
		req := db.opts.Picker.Pick(db.levelInfosLocked(), db.opts)
		if req == nil {
			return nil
		}
		if err := db.compactLocked(req); err != nil {
			return err
		}
	}
	return nil
}

// compactLocked merges the requested files (plus overlapping files one
// level down) into new tables at Level+1.
func (db *DB) compactLocked(req *CompactionRequest) error {
	if req.Level < 0 || req.Level >= numLevels-1 {
		return nil
	}
	want := make(map[uint64]bool, len(req.FileNums))
	for _, n := range req.FileNums {
		want[n] = true
	}
	var upper []*fileMeta
	for _, fm := range db.version.levels[req.Level] {
		if want[fm.num] {
			upper = append(upper, fm)
		}
	}
	if len(upper) == 0 {
		return nil
	}
	// Key range of the upper inputs (escaped user-key prefixes).
	var lo, hi []byte
	for _, fm := range upper {
		s, l := ikeyUserPrefix(fm.smallest), ikeyUserPrefix(fm.largest)
		if lo == nil || bytes.Compare(s, lo) < 0 {
			lo = s
		}
		if hi == nil || bytes.Compare(l, hi) > 0 {
			hi = l
		}
	}
	outLevel := req.Level + 1
	var lower []*fileMeta
	for _, fm := range db.version.levels[outLevel] {
		if fm.overlaps(lo, hi) {
			lower = append(lower, fm)
		}
	}

	// Bottommost if no deeper level holds any data.
	bottommost := true
	for lvl := outLevel + 1; lvl < numLevels; lvl++ {
		if len(db.version.levels[lvl]) > 0 {
			bottommost = false
			break
		}
	}

	inputs := append(append([]*fileMeta(nil), upper...), lower...)
	outputs, dropped, err := db.mergeTables(inputs, outLevel, bottommost)
	if err != nil {
		return err
	}

	// Install: remove inputs, add outputs.
	remove := make(map[uint64]bool, len(inputs))
	var inBytes uint64
	for _, fm := range inputs {
		remove[fm.num] = true
		inBytes += uint64(fm.size)
	}
	filter := func(files []*fileMeta) []*fileMeta {
		out := files[:0]
		for _, fm := range files {
			if !remove[fm.num] {
				out = append(out, fm)
			}
		}
		return out
	}
	db.version.levels[req.Level] = filter(db.version.levels[req.Level])
	db.version.levels[outLevel] = append(filter(db.version.levels[outLevel]), outputs...)
	db.version.sortLevels()
	// Commit the new layout before deleting inputs: a crash between the
	// manifest rename and the removals leaves the old tables as orphans,
	// which the next open cleans up; a crash before it leaves the outputs
	// as orphans instead. Either way exactly one layout survives.
	if err := db.writeManifestLocked(); err != nil {
		return err
	}
	// Inputs leave the version; snapshots may still pin them. The last
	// owner's unref closes, uncaches, and deletes each file.
	for _, fm := range inputs {
		fm.markObsolete()
		fm.unref()
	}
	db.stats.Compactions++
	db.stats.BytesCompacted += inBytes
	db.stats.TombstonesDropped += dropped
	return nil
}

// mergeTables merge-sorts the inputs and writes deduplicated outputs at
// outLevel, splitting files at user-key boundaries near the target size.
func (db *DB) mergeTables(inputs []*fileMeta, outLevel int, bottommost bool) (outputs []*fileMeta, droppedTombstones uint64, err error) {
	mi := newMergeIter(inputs)
	targetFileSize := db.opts.BaseLevelSize / 8
	if targetFileSize < 1<<20 {
		targetFileSize = 1 << 20
	}
	// Earliest tombstone time across inputs, inherited by outputs that
	// still contain tombstones.
	var tombAt time.Time
	for _, fm := range inputs {
		if !fm.tombstoneAt.IsZero() && (tombAt.IsZero() || fm.tombstoneAt.Before(tombAt)) {
			tombAt = fm.tombstoneAt
		}
	}

	var b *tableBuilder
	emit := func(ikey, value []byte) error {
		if b == nil {
			b, err = db.newTableBuilder()
			if err != nil {
				return err
			}
		}
		return b.add(ikey, value, tombAt)
	}
	cut := func() error {
		if b == nil || b.w.Count() == 0 {
			return nil
		}
		fm, ferr := b.finish(db, outLevel)
		if ferr != nil {
			return ferr
		}
		outputs = append(outputs, fm)
		b = nil
		return nil
	}
	fail := func(e error) ([]*fileMeta, uint64, error) {
		if b != nil {
			b.abandon()
		}
		// Finished outputs were already renamed to their final names but
		// never committed to the manifest; remove them eagerly (a crashed
		// process would instead leave them for loadTables' orphan sweep).
		for _, fm := range outputs {
			fm.markObsolete()
			fm.unref()
		}
		return nil, 0, e
	}

	// Walk entries grouped by user key (entries per key arrive newest
	// first thanks to the complemented-sequence encoding).
	var curPrefix []byte
	var operands [][]byte // newest first
	var newestIKey []byte
	resolved := false // base (put/delete) seen for current key

	flushKey := func() error {
		defer func() {
			operands = operands[:0]
			newestIKey = nil
			resolved = false
		}()
		if newestIKey == nil || len(operands) == 0 {
			return nil // nothing pending: put/delete was emitted eagerly
		}
		// Combine pending merge operands. With a resolved base they were
		// already folded into a put; reaching here means no base existed
		// in the inputs.
		combined := combineMerge(nil, operands)
		if bottommost {
			// Nothing deeper can hold a base: finalize as a put.
			return emit(rekey(newestIKey, kindPut), combined)
		}
		return emit(rekey(newestIKey, kindMerge), combined)
	}

	for mi.valid() {
		ikey, value := mi.key(), mi.value()
		prefix := ikeyUserPrefix(ikey)
		if curPrefix == nil || !bytes.Equal(prefix, curPrefix) {
			if err := flushKey(); err != nil {
				return fail(err)
			}
			curPrefix = append(curPrefix[:0], prefix...)
			// Cut files only at user-key boundaries so deeper levels keep
			// at most one file per user key.
			if b != nil && b.w.EstimatedSize() >= uint64(targetFileSize) {
				if err := cut(); err != nil {
					return fail(err)
				}
			}
		}
		if resolved {
			// Shadowed by a newer put/delete for the same key: drop.
			if ikey[len(ikey)-1] == kindDelete {
				droppedTombstones++
			}
			mi.next()
			continue
		}
		switch ikey[len(ikey)-1] {
		case kindPut:
			resolved = true
			head := newestIKey
			if head == nil {
				head = ikey
			}
			if err := emit(rekey(head, kindPut), combineMerge(value, operands)); err != nil {
				return fail(err)
			}
			operands = operands[:0]
			newestIKey = nil
		case kindDelete:
			resolved = true
			if len(operands) > 0 {
				head := newestIKey
				if err := emit(rekey(head, kindPut), combineMerge(nil, operands)); err != nil {
					return fail(err)
				}
			} else if bottommost {
				droppedTombstones++
			} else {
				if err := emit(append([]byte(nil), ikey...), nil); err != nil {
					return fail(err)
				}
			}
			operands = operands[:0]
			newestIKey = nil
		case kindMerge:
			if newestIKey == nil {
				newestIKey = append([]byte(nil), ikey...)
			}
			operands = append(operands, append([]byte(nil), value...))
		}
		mi.next()
	}
	if err := mi.err(); err != nil {
		return fail(err)
	}
	if err := flushKey(); err != nil {
		return fail(err)
	}
	if err := cut(); err != nil {
		return fail(err)
	}
	return outputs, droppedTombstones, nil
}

// rekey replaces the kind byte of an internal key, preserving user key
// and sequence.
func rekey(ikey []byte, kind byte) []byte {
	out := append([]byte(nil), ikey...)
	out[len(out)-1] = kind
	return out
}

// mergeIter merge-sorts several table iterators by internal key. Internal
// keys are globally unique, so no tie-breaking is needed.
type mergeIter struct {
	h mergeHeap
	e error
}

type mergeItem struct {
	it *sstable.Iterator
}

type mergeHeap []*mergeItem

func (h mergeHeap) Len() int            { return len(h) }
func (h mergeHeap) Less(i, j int) bool  { return bytes.Compare(h[i].it.Key(), h[j].it.Key()) < 0 }
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(*mergeItem)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

func newMergeIter(inputs []*fileMeta) *mergeIter {
	m := &mergeIter{}
	for _, fm := range inputs {
		it := fm.reader.Iter()
		it.First()
		if it.Err() != nil {
			m.e = it.Err()
			continue
		}
		if it.Valid() {
			m.h = append(m.h, &mergeItem{it: it})
		}
	}
	heap.Init(&m.h)
	return m
}

func (m *mergeIter) valid() bool   { return m.e == nil && len(m.h) > 0 }
func (m *mergeIter) key() []byte   { return m.h[0].it.Key() }
func (m *mergeIter) value() []byte { return m.h[0].it.Value() }
func (m *mergeIter) err() error    { return m.e }

func (m *mergeIter) next() {
	top := m.h[0]
	top.it.Next()
	if err := top.it.Err(); err != nil {
		m.e = err
		return
	}
	if top.it.Valid() {
		heap.Fix(&m.h, 0)
	} else {
		heap.Pop(&m.h)
	}
}
