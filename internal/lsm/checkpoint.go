package lsm

import (
	"bytes"
	"fmt"

	"gadget/internal/kv"
	"gadget/internal/sstable"
	"gadget/internal/vfs"
)

// CheckpointTo writes a consistent, openable copy of the database into
// dir — the native fast path for LSM/Lethe checkpoints. Because sorted
// tables are immutable and the version pins them, the bulk of the state
// transfers as hard links (vfs.LinkOrCopy; a byte copy on filesystems
// without links): no key iteration, no rewrite. Only the pinned
// memtables are serialized, each into one L0 table holding exactly the
// entries at or below the checkpoint sequence, numbered above every
// linked table so L0 recency order (newest first = highest number) is
// preserved on open. The MANIFEST committed last is the atomicity
// point, exactly as in a flush.
//
// The resulting directory is a full database: lsm.Open (or lethe.Open)
// on it yields the checkpointed state. This path is what makes
// checkpoint cost on MVCC engines proportional to the memtable, not the
// store; the portable kv.Checkpointer format remains the interchange
// used by the recovery runner, since every engine can consume it.
func (db *DB) CheckpointTo(dir string) error {
	fs := db.opts.FS
	if dir == db.opts.Dir {
		return fmt.Errorf("lsm: checkpoint dir must differ from the database dir")
	}

	// Pin the view: sequence horizon, memtables, and a reference on every
	// live table so compaction cannot delete them mid-copy.
	db.mu.RLock()
	if db.closed {
		db.mu.RUnlock()
		return kv.ErrClosed
	}
	seq := db.seq
	mems := make([]*memtable, 0, len(db.imm)+1)
	mems = append(mems, db.imm...) // oldest first...
	mems = append(mems, db.mem)    // ...active (newest) last
	var pinned []*fileMeta
	var levels [numLevels][]uint64
	var maxNum uint64
	for lvl, files := range db.version.levels {
		for _, fm := range files {
			fm.ref()
			pinned = append(pinned, fm)
			levels[lvl] = append(levels[lvl], fm.num)
			if fm.num > maxNum {
				maxNum = fm.num
			}
		}
	}
	db.mu.RUnlock()
	defer func() {
		for _, fm := range pinned {
			fm.unref()
		}
	}()

	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var manifest bytes.Buffer
	fmt.Fprintln(&manifest, manifestHeader)
	for lvl, nums := range levels {
		for _, num := range nums {
			if err := vfs.LinkOrCopy(fs, tablePath(db.opts.Dir, num), tablePath(dir, num)); err != nil {
				return err
			}
			fmt.Fprintf(&manifest, "%06d %d\n", num, lvl)
		}
	}

	num := maxNum
	for _, m := range mems {
		// Snapshot the qualifying entries under the read lock (skiplist
		// inserts race with unlocked readers); insert-only arenas make
		// the collected slices stable after release.
		type rec struct{ ikey, val []byte }
		var recs []rec
		db.mu.RLock()
		tombAt := m.earliestTombstone
		it := m.sl.Iter()
		for it.First(); it.Valid(); it.Next() {
			_, eseq, _, err := parseIKey(it.Key())
			if err != nil {
				db.mu.RUnlock()
				return err
			}
			if eseq > seq {
				continue
			}
			recs = append(recs, rec{it.Key(), it.Value()})
		}
		db.mu.RUnlock()
		if len(recs) == 0 {
			continue
		}
		num++
		path := tablePath(dir, num)
		f, err := vfs.Create(fs, path+".tmp")
		if err != nil {
			return err
		}
		w := sstable.NewWriter(f)
		w.FilterKey = filterUserKey
		if db.opts.DisableBloom {
			w.BloomBitsPerKey = -1
		}
		b := &tableBuilder{fs: fs, w: w, f: f, path: path, num: num}
		for _, r := range recs {
			if err := b.add(r.ikey, r.val, tombAt); err != nil {
				b.abandon()
				return err
			}
		}
		if err := b.seal(0); err != nil {
			return err
		}
		if err := fs.SyncDir(dir); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%06d 0\n", num)
	}

	// Commit: the manifest rename (plus directory sync inside
	// WriteFileAtomic) makes the checkpoint visible atomically.
	return vfs.WriteFileAtomic(fs, manifestPath(dir), manifest.Bytes(), 0o644)
}

// seal finishes the table on disk — properties, writer close, sync,
// rename — without reopening it for reads (CheckpointTo never serves
// queries from the tables it writes; finish does this half plus open).
func (b *tableBuilder) seal(level int) error {
	b.w.SetProperty(propLevel, uint64(level))
	b.w.SetProperty(propMaxSeq, b.maxSeq)
	b.w.SetProperty(propDeletes, b.deletes)
	b.w.SetProperty(propEntries, b.w.Count())
	if !b.tombAt.IsZero() {
		b.w.SetProperty(propTombstoneNanos, uint64(b.tombAt.UnixNano()))
	}
	if err := b.w.Close(); err != nil {
		b.abandon()
		return err
	}
	if err := b.f.Sync(); err != nil {
		b.abandon()
		return err
	}
	if err := b.f.Close(); err != nil {
		b.fs.Remove(b.path + ".tmp")
		return err
	}
	if err := b.fs.Rename(b.path+".tmp", b.path); err != nil {
		b.fs.Remove(b.path + ".tmp")
		return err
	}
	return nil
}
