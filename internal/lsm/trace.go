package lsm

import (
	"fmt"

	"gadget/internal/kv"
	"gadget/internal/tracing"
)

var _ kv.Traceable = (*DB)(nil)

// enginePhases sums the LSM's refined engine stages on tc, used to
// compute how much of a traced call was explicitly attributed.
func enginePhases(tc *tracing.Ctx) int64 {
	return tc.Dur(tracing.StageEngineMem) +
		tc.Dur(tracing.StageEngineSST) +
		tc.Dur(tracing.StageEngineWAL)
}

// DoTraced implements kv.Traceable: operations behave exactly like the
// plain Store calls, with engine-internal phases attributed — memtable
// probe/insert (StageEngineMem), SSTable reads (StageEngineSST), WAL
// append/fsync (StageEngineWAL) — and everything else the call spent
// (locking, merge folding, inline flush stalls, scans) charged to
// StageEngine so the stage sum still covers the whole call.
func (db *DB) DoTraced(tc *tracing.Ctx, op kv.TracedOp) (kv.TracedResult, error) {
	t0 := tc.Now()
	pre := enginePhases(tc)
	var res kv.TracedResult
	var err error
	switch op.Op {
	case kv.OpGet, kv.OpFGet:
		res.Val, err = db.get(op.Key, tc)
	case kv.OpPut:
		err = db.write(op.Key, op.Val, kindPut, tc)
	case kv.OpMerge:
		err = db.write(op.Key, op.Val, kindMerge, tc)
	case kv.OpDelete:
		err = db.write(op.Key, nil, kindDelete, tc)
	case kv.OpScan:
		res.Entries, err = kv.ScanRange(db, op.Lo, op.Hi)
	default:
		return kv.TracedResult{}, fmt.Errorf("lsm: traced dispatch: unsupported op %v", op.Op)
	}
	explicit := enginePhases(tc) - pre
	tc.Add(tracing.StageEngine, tc.Now()-t0-explicit)
	return res, err
}
