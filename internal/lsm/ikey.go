package lsm

import (
	"encoding/binary"
	"fmt"
)

// Entry kinds stored in internal keys. Values matter: within one user key
// and sequence they are never compared, but they are persisted.
const (
	kindPut    byte = 1
	kindMerge  byte = 2
	kindDelete byte = 3
)

// Internal keys give every write a unique, totally ordered identity:
//
//	escape(userKey) . bigEndian(^seq) . kind
//
// The user key is escape-encoded (0x00 becomes 0x00 0xFF, terminated by
// 0x00 0x01) so that no encoded key is a prefix of another and byte order
// of encodings equals byte order of the raw keys even for variable-length
// keys. The complemented sequence makes newer entries sort first within a
// user key, so a SeekGE(lookupKey(k)) lands on the newest entry for k.

// appendEscaped appends the order-preserving escape encoding of k to dst.
func appendEscaped(dst, k []byte) []byte {
	for _, b := range k {
		if b == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, b)
		}
	}
	return append(dst, 0x00, 0x01)
}

// decodeEscaped parses an escape-encoded key, returning the raw key and
// the number of encoded bytes consumed.
func decodeEscaped(b []byte) (key []byte, n int, err error) {
	out := make([]byte, 0, len(b))
	i := 0
	for i < len(b) {
		c := b[i]
		if c != 0x00 {
			out = append(out, c)
			i++
			continue
		}
		if i+1 >= len(b) {
			return nil, 0, fmt.Errorf("lsm: truncated escaped key")
		}
		switch b[i+1] {
		case 0xFF:
			out = append(out, 0x00)
			i += 2
		case 0x01:
			return out, i + 2, nil
		default:
			return nil, 0, fmt.Errorf("lsm: invalid escape 0x00%02x", b[i+1])
		}
	}
	return nil, 0, fmt.Errorf("lsm: unterminated escaped key")
}

const trailerLen = 9

// makeIKey builds the internal key for (userKey, seq, kind).
func makeIKey(userKey []byte, seq uint64, kind byte) []byte {
	out := make([]byte, 0, len(userKey)+2+trailerLen+4)
	out = appendEscaped(out, userKey)
	var t [trailerLen]byte
	binary.BigEndian.PutUint64(t[:8], ^seq)
	t[8] = kind
	return append(out, t[:]...)
}

// lookupKey builds the smallest internal key for userKey, i.e. the
// position of its newest possible entry.
func lookupKey(userKey []byte) []byte {
	return makeIKey(userKey, ^uint64(0), 0)
}

// parseIKey splits an internal key into its components.
func parseIKey(ikey []byte) (userKey []byte, seq uint64, kind byte, err error) {
	if len(ikey) < trailerLen+2 {
		return nil, 0, 0, fmt.Errorf("lsm: internal key too short (%d bytes)", len(ikey))
	}
	userKey, n, err := decodeEscaped(ikey[:len(ikey)-trailerLen])
	if err != nil {
		return nil, 0, 0, err
	}
	if n != len(ikey)-trailerLen {
		return nil, 0, 0, fmt.Errorf("lsm: trailing bytes in internal key")
	}
	t := ikey[len(ikey)-trailerLen:]
	return userKey, ^binary.BigEndian.Uint64(t[:8]), t[8], nil
}

// ikeyUserPrefix returns the escaped-user-key prefix of an internal key
// (everything but the trailer), used to group entries by user key without
// unescaping.
func ikeyUserPrefix(ikey []byte) []byte {
	if len(ikey) < trailerLen {
		return ikey
	}
	return ikey[:len(ikey)-trailerLen]
}
