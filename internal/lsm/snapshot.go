package lsm

import (
	"gadget/internal/kv"
)

// MVCC snapshots. A snapshot pins the structures that can serve its
// view: the current sequence number, the active memtable pointer, the
// immutable memtable list, and a referenced copy of every live table.
// Nothing is frozen or copied — skiplists are insert-only, so writes
// after the snapshot only add entries with higher sequences, which the
// rangeIter's seq filter hides; tables flushed or compacted afterwards
// never enter the snapshot's file set, and its referenced inputs stay
// open (and on disk) until the snapshot releases them. Reads take the
// DB lock per operation, so writers keep making progress between
// iterator steps. A snapshot even survives DB.Close: the fallback keeps
// the pinned table handles open until the snapshot itself is closed.
type lsmSnapshot struct {
	db     *DB
	seq    uint64
	mems   []*memtable // active memtable at snapshot time + immutables
	files  []*fileMeta // referenced; released on Close
	closed bool        // guarded by db.mu
}

var _ kv.Snapshot = (*lsmSnapshot)(nil)

// Snapshot implements kv.Snapshotter.
func (db *DB) Snapshot() (kv.Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, kv.ErrClosed
	}
	sn := &lsmSnapshot{
		db:   db,
		seq:  db.seq,
		mems: append([]*memtable{db.mem}, db.imm...),
	}
	for _, lvl := range db.version.levels {
		for _, fm := range lvl {
			fm.ref()
			sn.files = append(sn.files, fm)
		}
	}
	db.snapshots.Add(1)
	return sn, nil
}

// Get implements kv.Snapshot via a bounded single-key scan, resolving
// merges and tombstones at or below the snapshot sequence.
func (sn *lsmSnapshot) Get(key []byte) ([]byte, error) {
	sn.db.mu.RLock()
	defer sn.db.mu.RUnlock()
	if sn.closed {
		return nil, kv.ErrClosed
	}
	it := newRangeIter(sn.mems, sn.files, key, key, sn.seq)
	if it.nextLocked() {
		return it.outVal, nil
	}
	return nil, kv.ErrNotFound
}

// Iter implements kv.Snapshot.
func (sn *lsmSnapshot) Iter(lo, hi kv.StateKey) kv.Iterator {
	it := &lsmIter{sn: sn}
	sn.db.mu.RLock()
	defer sn.db.mu.RUnlock()
	if sn.closed {
		it.err = kv.ErrClosed
	} else if !hi.Less(lo) {
		it.ri = newRangeIter(sn.mems, sn.files, lo.Bytes(), hi.Bytes(), sn.seq)
	}
	return it
}

// Close releases the snapshot's table references. Obsolete tables the
// snapshot was the last owner of are uncached and deleted here.
func (sn *lsmSnapshot) Close() error {
	sn.db.mu.Lock()
	if sn.closed {
		sn.db.mu.Unlock()
		return nil
	}
	sn.closed = true
	files := sn.files
	sn.files = nil
	sn.mems = nil
	sn.db.mu.Unlock()
	var firstErr error
	for _, fm := range files {
		if err := fm.unref(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// lsmIter adapts a rangeIter to kv.Iterator, taking the DB read lock
// per step and surfacing only StateKey-encoded user keys.
type lsmIter struct {
	sn   *lsmSnapshot
	ri   *rangeIter // nil for an inverted range
	key  kv.StateKey
	val  []byte
	done bool
	err  error
}

func (it *lsmIter) Next() bool {
	if it.done || it.err != nil || it.ri == nil {
		return false
	}
	it.sn.db.mu.RLock()
	defer it.sn.db.mu.RUnlock()
	if it.sn.closed {
		it.err = kv.ErrClosed
		return false
	}
	for it.ri.nextLocked() {
		it.sn.db.iterOps.Add(1)
		sk, err := kv.DecodeStateKey(it.ri.outKey)
		if err != nil {
			continue // non-StateKey keyspace is not scannable
		}
		it.key = sk
		it.val = it.ri.outVal
		return true
	}
	it.done = true
	return false
}

func (it *lsmIter) Key() kv.StateKey { return it.key }
func (it *lsmIter) Value() []byte    { return it.val }
func (it *lsmIter) Err() error       { return it.err }
func (it *lsmIter) Close() error     { it.done = true; return nil }
