// Package lsm implements a log-structured merge-tree key-value store in
// the role RocksDB plays in the paper: skiplist memtables, sorted-table
// files organized into levels, size-tiered L0 with leveled compaction
// below, Bloom filters, a shared block cache, tombstones, and a RocksDB
// StringAppend-style merge operator for lazy updates. An optional
// write-ahead log provides durability of the memtable across restarts.
//
// Flushes and compactions run inline on the writing goroutine (the moral
// equivalent of a write stall), keeping behaviour deterministic for
// benchmarking. The delete-aware Lethe variant plugs in through the
// CompactionPicker interface (see package lethe).
package lsm

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/cache"
	"gadget/internal/kv"
	"gadget/internal/tracing"
	"gadget/internal/vfs"
)

// Options configures a DB. The zero value is usable: defaults mirror the
// paper's RocksDB configuration scaled by a laptop-friendly factor.
type Options struct {
	// Dir is the database directory; required.
	Dir string
	// MemtableSize is the flush threshold in bytes (default 32 MiB).
	MemtableSize int64
	// MaxImmutables is how many frozen memtables may queue before the
	// writer flushes inline (default 1, i.e. two write buffers total as
	// in the paper's configuration).
	MaxImmutables int
	// BlockCacheSize is the shared block cache capacity (default 64 MiB).
	BlockCacheSize int64
	// L0CompactionTrigger is the number of L0 files that triggers
	// compaction into L1 (default 4).
	L0CompactionTrigger int
	// BaseLevelSize is the target size of L1 (default 64 MiB); each
	// deeper level is LevelMultiplier times larger.
	BaseLevelSize int64
	// LevelMultiplier is the per-level size ratio (default 10).
	LevelMultiplier int
	// WAL enables the write-ahead log (default off, matching benchmark
	// configurations of embedded streaming state backends).
	WAL bool
	// Picker overrides the compaction policy; nil selects the default
	// leveled picker. The Lethe engine installs its delete-aware picker.
	Picker CompactionPicker
	// SyncWrites fsyncs the WAL on every write when the WAL is enabled.
	SyncWrites bool
	// DisableBloom turns off per-table Bloom filters (ablation knob).
	DisableBloom bool
	// FS is the filesystem the database lives on; nil selects the real
	// filesystem. Tests inject vfs.MemFS or vfs.FaultFS here.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MemtableSize <= 0 {
		out.MemtableSize = 32 << 20
	}
	if out.MaxImmutables <= 0 {
		out.MaxImmutables = 1
	}
	if out.BlockCacheSize <= 0 {
		out.BlockCacheSize = 64 << 20
	}
	if out.L0CompactionTrigger <= 0 {
		out.L0CompactionTrigger = 4
	}
	if out.BaseLevelSize <= 0 {
		out.BaseLevelSize = 64 << 20
	}
	if out.LevelMultiplier <= 0 {
		out.LevelMultiplier = 10
	}
	if out.Picker == nil {
		out.Picker = LeveledPicker{}
	}
	out.FS = vfs.OrDefault(out.FS)
	return out
}

// Stats exposes engine counters useful for write-amplification studies.
type Stats struct {
	Flushes                     uint64
	Compactions                 uint64
	BytesFlushed                uint64
	BytesCompacted              uint64
	TombstonesDropped           uint64
	Gets, Puts, Merges, Deletes uint64
	// StallNanos is cumulative time writers spent blocked on inline
	// flush/compaction work (the harness's write-stall equivalent).
	StallNanos uint64
	// Bloom filter effectiveness across all tables: probes, filter
	// rejections, and false positives (admitted but absent).
	BloomChecks, BloomNegatives, BloomFalsePositives uint64
}

const numLevels = 7

// DB is an LSM key-value store implementing kv.Store.
type DB struct {
	opts  Options
	cache *cache.Cache

	mu      sync.RWMutex
	mem     *memtable
	imm     []*memtable // oldest first
	version *version
	seq     uint64
	nextNum uint64
	wal     *walWriter
	closed  bool
	stats   Stats
	bloom   bloomCounters

	// Snapshot accounting (atomics: iterators bump iterOps under the
	// read lock).
	snapshots atomic.Uint64
	iterOps   atomic.Int64
}

var _ kv.Store = (*DB)(nil)

// Open opens (or creates) a database in opts.Dir, loading the sorted
// tables the manifest commits (removing orphans a crash left behind) and
// replaying the surviving write-ahead log tail.
func Open(opts Options) (*DB, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("lsm: Options.Dir is required")
	}
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	db := &DB{
		opts:    o,
		cache:   cache.New(o.BlockCacheSize),
		mem:     newMemtable(),
		version: newVersion(),
		nextNum: 1,
	}
	if err := db.loadTables(); err != nil {
		return nil, err
	}
	// Everything at or below db.seq is already durable in tables; the
	// WAL replays only the unflushed suffix.
	if err := db.replayWAL(db.seq); err != nil {
		return nil, err
	}
	if o.WAL {
		w, err := newWALWriter(o.FS, filepath.Join(o.Dir, walName), o.SyncWrites)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}
	return db, nil
}

// loadTables reinstalls the tables the manifest lists, deleting *.tmp
// leftovers and orphaned tables from crashed flushes or compactions.
// Directories without a manifest (pre-manifest layouts) fall back to
// scanning *.sst files and trusting their property blocks.
func (db *DB) loadTables() error {
	fs := db.opts.FS
	var listed map[uint64]int
	mdata, err := vfs.ReadFile(fs, manifestPath(db.opts.Dir))
	haveManifest := err == nil
	if haveManifest {
		if listed, err = parseManifest(mdata); err != nil {
			return err
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		return err
	}
	entries, err := fs.ReadDir(db.opts.Dir)
	if err != nil {
		return err
	}
	found := make(map[uint64]bool, len(listed))
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			fs.Remove(filepath.Join(db.opts.Dir, name))
			continue
		}
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		var num uint64
		if _, err := fmt.Sscanf(name, "%06d.sst", &num); err != nil {
			continue
		}
		if num >= db.nextNum {
			// Never reuse a crashed table's number: a stale cache entry
			// or half-deleted file must not collide with new tables.
			db.nextNum = num + 1
		}
		lvl := 0
		if haveManifest {
			var ok bool
			if lvl, ok = listed[num]; !ok {
				// Orphan: the table was written but its manifest commit
				// never happened (or it was compacted away).
				fs.Remove(filepath.Join(db.opts.Dir, name))
				continue
			}
		}
		fm, err := openTable(fs, filepath.Join(db.opts.Dir, name), num, db.cache)
		if err != nil {
			return fmt.Errorf("lsm: loading %s: %w", name, err)
		}
		fm.bloom = &db.bloom
		if !haveManifest {
			if v, ok := fm.reader.Property(propLevel); ok && int(v) < numLevels {
				lvl = int(v)
			}
		}
		found[num] = true
		db.version.levels[lvl] = append(db.version.levels[lvl], fm)
		if maxSeq, ok := fm.reader.Property(propMaxSeq); ok && maxSeq > db.seq {
			db.seq = maxSeq
		}
	}
	for num := range listed {
		if !found[num] {
			return fmt.Errorf("lsm: manifest lists table %06d but the file is missing", num)
		}
	}
	db.version.sortLevels()
	return nil
}

// Caps advertises native merge plus cheap MVCC snapshots (a pinned
// memtable + version set with sequence filtering) and native ordered
// range scans (merge iterators over sorted runs).
func (db *DB) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: true, Snapshots: true, RangeScans: true}
}

// Put stores value under key.
func (db *DB) Put(key, value []byte) error { return db.write(key, value, kindPut, nil) }

// Merge appends operand to the value under key (lazy read-modify-write).
func (db *DB) Merge(key, operand []byte) error { return db.write(key, operand, kindMerge, nil) }

// Delete removes key by writing a tombstone.
func (db *DB) Delete(key []byte) error { return db.write(key, nil, kindDelete, nil) }

// write applies one mutation. A non-nil trace context receives the
// engine-internal phase attribution (WAL append/fsync vs memtable
// insert); the traced DoTraced entry point passes it, the plain Store
// methods pass nil.
func (db *DB) write(key, value []byte, kind byte, tc *tracing.Ctx) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	switch kind {
	case kindPut:
		db.stats.Puts++
	case kindMerge:
		db.stats.Merges++
	case kindDelete:
		db.stats.Deletes++
	}
	db.seq++
	ikey := makeIKey(key, db.seq, kind)
	if db.wal != nil {
		tw := tc.Now()
		err := db.wal.append(ikey, value)
		tc.AddSince(tracing.StageEngineWAL, tw)
		if err != nil {
			return err
		}
	}
	// The memtable retains the slices; copy the value since callers may
	// reuse buffers. ikey is freshly allocated already.
	v := append([]byte(nil), value...)
	tm := tc.Now()
	db.mem.add(ikey, v, kind)
	tc.AddSince(tracing.StageEngineMem, tm)
	if db.mem.approxBytes() >= db.opts.MemtableSize {
		// Rotation may flush and compact inline; the wall time it takes
		// is exactly how long this writer was stalled.
		t0 := time.Now()
		err := db.rotateMemtableLocked()
		db.stats.StallNanos += uint64(time.Since(t0))
		if err != nil {
			return err
		}
	}
	return nil
}

// rotateMemtableLocked freezes the active memtable and flushes queued
// immutables beyond the allowed backlog. Called with mu held.
func (db *DB) rotateMemtableLocked() error {
	db.imm = append(db.imm, db.mem)
	db.mem = newMemtable()
	for len(db.imm) > db.opts.MaxImmutables {
		if err := db.flushOldestLocked(); err != nil {
			return err
		}
	}
	return db.maybeCompactLocked()
}

// Get returns the value under key, resolving merge operands across all
// layers of the tree.
func (db *DB) Get(key []byte) ([]byte, error) { return db.get(key, nil) }

// get is Get with optional engine-phase attribution: a non-nil trace
// context receives memtable-probe time (StageEngineMem) separately from
// SSTable-read time (StageEngineSST).
func (db *DB) get(key []byte, tc *tracing.Ctx) ([]byte, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, kv.ErrClosed
	}
	// Gets is bumped under the read lock, so it must be atomic: many
	// readers may race on it. Every other counter mutates under mu.
	atomic.AddUint64(&db.stats.Gets, 1)
	var operands [][]byte

	tm := tc.Now()
	out, err, done := db.memProbeLocked(key, &operands)
	tc.AddSince(tracing.StageEngineMem, tm)
	if done {
		return out, err
	}

	ts := tc.Now()
	out, err, done = db.sstProbeLocked(key, &operands)
	tc.AddSince(tracing.StageEngineSST, ts)
	if done {
		return out, err
	}

	// Bottomed out: merge operands with an empty base, or miss.
	if len(operands) > 0 {
		return combineMerge(nil, operands), nil
	}
	return nil, kv.ErrNotFound
}

// memProbeLocked probes the active and immutable memtables. Called with
// mu read-held.
func (db *DB) memProbeLocked(key []byte, operands *[][]byte) ([]byte, error, bool) {
	v, res := db.mem.get(key, operands)
	if out, err, done := finishLookup(v, res, operands); done {
		return out, err, true
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		v, res = db.imm[i].get(key, operands)
		if out, err, done := finishLookup(v, res, operands); done {
			return out, err, true
		}
	}
	return nil, nil, false
}

// sstProbeLocked probes the table files, L0 newest-first then one file
// per deeper level. Called with mu read-held.
func (db *DB) sstProbeLocked(key []byte, operands *[][]byte) ([]byte, error, bool) {
	// L0: newest file first.
	for _, fm := range db.version.levels[0] {
		v, res, err := fm.get(key, operands)
		if err != nil {
			return nil, err, true
		}
		if out, err, done := finishLookup(v, res, operands); done {
			return out, err, true
		}
	}
	// Deeper levels: at most one file per level contains the key.
	for lvl := 1; lvl < numLevels; lvl++ {
		fm := db.version.fileForKey(lvl, key)
		if fm == nil {
			continue
		}
		v, res, err := fm.get(key, operands)
		if err != nil {
			return nil, err, true
		}
		if out, err, done := finishLookup(v, res, operands); done {
			return out, err, true
		}
	}
	return nil, nil, false
}

// finishLookup folds one layer's result into the overall resolution.
func finishLookup(v []byte, res lookupResult, operands *[][]byte) ([]byte, error, bool) {
	switch res {
	case lookupFound:
		return combineMerge(v, *operands), nil, true
	case lookupDeleted:
		if len(*operands) > 0 {
			return combineMerge(nil, *operands), nil, true
		}
		return nil, kv.ErrNotFound, true
	default:
		return nil, nil, false
	}
}

// combineMerge concatenates base with operands applied oldest-to-newest.
// operands arrive newest-first (the order layers are probed).
func combineMerge(base []byte, operands [][]byte) []byte {
	if len(operands) == 0 {
		return base
	}
	size := len(base)
	for _, op := range operands {
		size += len(op)
	}
	out := make([]byte, 0, size)
	out = append(out, base...)
	for i := len(operands) - 1; i >= 0; i-- {
		out = append(out, operands[i]...)
	}
	return out
}

// Flush forces the active memtable to disk (mainly for tests and Close).
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return kv.ErrClosed
	}
	if db.mem.len() > 0 {
		db.imm = append(db.imm, db.mem)
		db.mem = newMemtable()
	}
	for len(db.imm) > 0 {
		if err := db.flushOldestLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Compact runs compactions until the picker is satisfied (for tests).
func (db *DB) Compact() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.maybeCompactLocked()
}

// CacheStats reports block cache hits and misses.
func (db *DB) CacheStats() (hits, misses uint64) {
	return db.cache.Stats()
}

// Stats returns a snapshot of engine counters.
func (db *DB) StatsSnapshot() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return Stats{
		Flushes:             db.stats.Flushes,
		Compactions:         db.stats.Compactions,
		BytesFlushed:        db.stats.BytesFlushed,
		BytesCompacted:      db.stats.BytesCompacted,
		TombstonesDropped:   db.stats.TombstonesDropped,
		Gets:                atomic.LoadUint64(&db.stats.Gets),
		Puts:                db.stats.Puts,
		Merges:              db.stats.Merges,
		Deletes:             db.stats.Deletes,
		StallNanos:          db.stats.StallNanos,
		BloomChecks:         db.bloom.checks.Load(),
		BloomNegatives:      db.bloom.negatives.Load(),
		BloomFalsePositives: db.bloom.falsePos.Load(),
	}
}

// Metrics implements kv.Introspector: engine counters under "lsm.*",
// including compaction/flush activity, write-stall time, Bloom filter
// effectiveness, block cache hit ratio inputs, and per-level file counts
// and bytes.
func (db *DB) Metrics() map[string]int64 {
	st := db.StatsSnapshot()
	hits, misses := db.cache.Stats()
	m := map[string]int64{
		"lsm.flushes":               int64(st.Flushes),
		"lsm.compactions":           int64(st.Compactions),
		"lsm.bytes_flushed":         int64(st.BytesFlushed),
		"lsm.bytes_compacted":       int64(st.BytesCompacted),
		"lsm.tombstones_dropped":    int64(st.TombstonesDropped),
		"lsm.gets":                  int64(st.Gets),
		"lsm.puts":                  int64(st.Puts),
		"lsm.merges":                int64(st.Merges),
		"lsm.deletes":               int64(st.Deletes),
		"lsm.stall_nanos":           int64(st.StallNanos),
		"lsm.bloom_checks":          int64(st.BloomChecks),
		"lsm.bloom_negatives":       int64(st.BloomNegatives),
		"lsm.bloom_false_positives": int64(st.BloomFalsePositives),
		"lsm.cache_hits":            int64(hits),
		"lsm.cache_misses":          int64(misses),
		"lsm.cache_used_bytes":      db.cache.Used(),
		"lsm.size_bytes":            db.ApproximateSize(),
		"lsm.snapshots":             int64(db.snapshots.Load()),
		"lsm.iter_ops":              db.iterOps.Load(),
	}
	db.mu.RLock()
	for lvl, files := range db.version.levels {
		var bytes int64
		for _, fm := range files {
			bytes += fm.size
		}
		m[fmt.Sprintf("lsm.level%d.files", lvl)] = int64(len(files))
		m[fmt.Sprintf("lsm.level%d.bytes", lvl)] = bytes
	}
	db.mu.RUnlock()
	return m
}

// ApproximateSize returns the total bytes in sorted tables plus memtables.
func (db *DB) ApproximateSize() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sz int64
	for _, lvl := range db.version.levels {
		for _, fm := range lvl {
			sz += fm.size
		}
	}
	sz += db.mem.approxBytes()
	for _, m := range db.imm {
		sz += m.approxBytes()
	}
	return sz
}

// LevelFileCounts reports the number of files per level (for tests).
func (db *DB) LevelFileCounts() []int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]int, numLevels)
	for i, lvl := range db.version.levels {
		out[i] = len(lvl)
	}
	return out
}

// Close flushes the memtable and releases all file handles.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.mu.Unlock()
	// Flush without holding the lock twice.
	if err := db.Flush(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.closed = true
	if db.wal != nil {
		db.wal.close()
		// The memtable was flushed; the log is stale.
		db.opts.FS.Remove(filepath.Join(db.opts.Dir, walName))
	}
	var firstErr error
	for _, lvl := range db.version.levels {
		for _, fm := range lvl {
			// Live snapshots keep their pinned tables (but not the WAL or
			// cache) usable past Close; the handle closes on last unref.
			if err := fm.unref(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// version tracks the current file layout. L0 files are ordered newest
// first; deeper levels are sorted by smallest key and non-overlapping.
type version struct {
	levels [numLevels][]*fileMeta
}

func newVersion() *version { return &version{} }

func (v *version) sortLevels() {
	sort.Slice(v.levels[0], func(i, j int) bool {
		return v.levels[0][i].num > v.levels[0][j].num // newest first
	})
	for lvl := 1; lvl < numLevels; lvl++ {
		files := v.levels[lvl]
		sort.Slice(files, func(i, j int) bool {
			return string(files[i].smallest) < string(files[j].smallest)
		})
	}
}

// fileForKey returns the single file at lvl (>=1) whose range covers the
// escaped user key, or nil.
func (v *version) fileForKey(lvl int, userKey []byte) *fileMeta {
	prefix := appendEscaped(nil, userKey)
	files := v.levels[lvl]
	i := sort.Search(len(files), func(i int) bool {
		return string(files[i].largest) >= string(prefix)
	})
	if i == len(files) {
		return nil
	}
	fm := files[i]
	// prefix must be >= smallest's user prefix; compare against smallest.
	if string(prefix) < string(ikeyUserPrefix(fm.smallest)) {
		return nil
	}
	return fm
}
