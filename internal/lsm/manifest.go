package lsm

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"strings"

	"gadget/internal/vfs"
)

// The MANIFEST is the commit point for table visibility: a table file
// exists logically only once a manifest listing it has been renamed into
// place. Flushes and compactions therefore follow the protocol
//
//  1. write new tables to *.sst.tmp, sync, rename to *.sst
//  2. write MANIFEST.tmp with the new layout, sync, rename to MANIFEST
//  3. delete replaced input tables
//
// so that a crash at any step leaves either the old layout or the new
// one. Tables on disk but absent from the manifest are orphans of a
// crashed step 1–2 window and are deleted on open; tables listed but
// missing mean real corruption and fail the open.
//
// The format is one header line followed by "num level" pairs:
//
//	gadget-lsm-manifest v1
//	000007 0
//	000003 1

const (
	manifestName   = "MANIFEST"
	manifestHeader = "gadget-lsm-manifest v1"
)

func manifestPath(dir string) string { return filepath.Join(dir, manifestName) }

// writeManifestLocked atomically persists the current file layout.
// Called with mu held after version changes are installed.
func (db *DB) writeManifestLocked() error {
	var buf bytes.Buffer
	fmt.Fprintln(&buf, manifestHeader)
	for lvl, files := range db.version.levels {
		for _, fm := range files {
			fmt.Fprintf(&buf, "%06d %d\n", fm.num, lvl)
		}
	}
	return vfs.WriteFileAtomic(db.opts.FS, manifestPath(db.opts.Dir), buf.Bytes(), 0o644)
}

// parseManifest returns the table layout the manifest commits: file
// number -> level.
func parseManifest(data []byte) (map[uint64]int, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != manifestHeader {
		return nil, fmt.Errorf("lsm: bad manifest header")
	}
	out := make(map[uint64]int)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var num uint64
		var lvl int
		if _, err := fmt.Sscanf(line, "%d %d", &num, &lvl); err != nil {
			return nil, fmt.Errorf("lsm: bad manifest line %q: %v", line, err)
		}
		if lvl < 0 || lvl >= numLevels {
			return nil, fmt.Errorf("lsm: manifest level %d out of range", lvl)
		}
		out[num] = lvl
	}
	return out, sc.Err()
}
