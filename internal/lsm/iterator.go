package lsm

import (
	"bytes"
	"container/heap"
	"encoding/binary"

	"gadget/internal/kv"
)

// internalIter is the common surface of memtable and table iterators.
type internalIter interface {
	Valid() bool
	Next()
	Key() []byte
	Value() []byte
}

// scanHeap merge-sorts internal iterators by internal key. Internal keys
// are unique, so no tie-breaking is needed.
type scanHeap []internalIter

func (h scanHeap) Len() int            { return len(h) }
func (h scanHeap) Less(i, j int) bool  { return bytes.Compare(h[i].Key(), h[j].Key()) < 0 }
func (h scanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x interface{}) { *h = append(*h, x.(internalIter)) }
func (h *scanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// rangeIter is a pull-style merge iterator over a set of memtables and
// tables: it resolves one live user key per nextLocked call (merges
// applied newest-last, tombstones and shadowed entries skipped),
// restricted to raw user keys in [lo, hi] (hi inclusive; nil hiFence =
// unbounded) and to entries with sequence <= maxSeq. The seq filter is
// what makes a pinned memtable set read as of snapshot time: skiplists
// are insert-only, so entries written after the snapshot merely carry
// higher sequences.
//
// The caller owns locking: every nextLocked call must run under the
// DB's lock (memtable skiplists may be receiving inserts concurrently).
type rangeIter struct {
	h       scanHeap
	hiFence []byte // escaped prefix of hi; nil = unbounded
	maxSeq  uint64

	// Per-user-key resolution state.
	curPrefix []byte
	operands  [][]byte // newest first
	base      []byte
	resolved  bool
	haveKey   bool

	outKey []byte
	outVal []byte
	done   bool
}

// newRangeIter seeks every source to lo (nil = first key) and builds the
// merge heap. hi bounds the scan by raw user key, inclusive; nil means
// unbounded.
func newRangeIter(mems []*memtable, files []*fileMeta, lo, hi []byte, maxSeq uint64) *rangeIter {
	it := &rangeIter{maxSeq: maxSeq}
	if hi != nil {
		it.hiFence = appendEscaped(nil, hi)
	}
	var seek []byte
	if lo != nil {
		seek = lookupKey(lo)
	}
	add := func(s internalIter) {
		if s.Valid() {
			it.h = append(it.h, s)
		}
	}
	for _, m := range mems {
		si := m.sl.Iter()
		if seek != nil {
			si.SeekGE(seek)
		} else {
			si.First()
		}
		add(si)
	}
	for _, fm := range files {
		ti := fm.reader.Iter()
		if seek != nil {
			ti.SeekGE(seek)
		} else {
			ti.First()
		}
		add(ti)
	}
	heap.Init(&it.h)
	return it
}

// emitPending resolves the buffered user-key group into outKey/outVal,
// reporting whether the key is live. State is reset either way.
func (it *rangeIter) emitPending() bool {
	defer func() {
		it.operands = it.operands[:0]
		it.base = nil
		it.resolved = false
		it.haveKey = false
	}()
	if !it.haveKey {
		return false
	}
	if !it.resolved && len(it.operands) == 0 {
		return false // only too-new or shadowed entries: nothing live
	}
	if it.resolved && it.base == nil && len(it.operands) == 0 {
		return false // newest visible entry was a tombstone
	}
	userKey, _, err := decodeEscaped(it.curPrefix)
	if err != nil {
		return false
	}
	it.outKey = userKey
	it.outVal = combineMerge(it.base, it.operands)
	return true
}

// nextLocked advances to the next live user key in range. The caller
// must hold the DB lock (read or write) across the call.
func (it *rangeIter) nextLocked() bool {
	if it.done {
		return false
	}
	for len(it.h) > 0 {
		top := it.h[0]
		ikey := top.Key()
		prefix := ikeyUserPrefix(ikey)
		if it.hiFence != nil && bytes.Compare(prefix, it.hiFence) > 0 {
			// The heap yields ascending prefixes: nothing further is in
			// range. Escaped-prefix order equals raw-key order, so the
			// fence comparison is exact.
			it.done = true
			return it.emitPending()
		}
		if it.haveKey && !bytes.Equal(prefix, it.curPrefix) {
			if it.emitPending() {
				// top is the first entry of the NEXT group and stays in
				// the heap; the next call resumes with it.
				return true
			}
			// Dead group discarded; fall through to start a new one.
		}
		it.haveKey = true
		it.curPrefix = append(it.curPrefix[:0], prefix...)
		trailer := ikey[len(ikey)-trailerLen:]
		seq := ^binary.BigEndian.Uint64(trailer[:8])
		if seq <= it.maxSeq && !it.resolved {
			switch trailer[8] {
			case kindPut:
				it.base = append([]byte(nil), top.Value()...)
				it.resolved = true
			case kindDelete:
				it.resolved = true
				if len(it.operands) > 0 {
					// Merges above a tombstone resolve against an empty
					// base; mark it as a live (possibly empty) value.
					it.base = []byte{}
				} else {
					it.base = nil
				}
			case kindMerge:
				it.operands = append(it.operands, append([]byte(nil), top.Value()...))
			}
		}
		top.Next()
		if top.Valid() {
			heap.Fix(&it.h, 0)
		} else {
			heap.Pop(&it.h)
		}
	}
	it.done = true
	return it.emitPending()
}

// Scan calls fn for every live user key in ascending order with its
// fully resolved value (merges applied, tombstones skipped) until fn
// returns false. The iteration observes a consistent point-in-time view:
// the database is read-locked for the duration of the scan.
func (db *DB) Scan(fn func(key, value []byte) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return kv.ErrClosed
	}
	mems := append([]*memtable{db.mem}, db.imm...)
	var files []*fileMeta
	for _, lvl := range db.version.levels {
		files = append(files, lvl...)
	}
	it := newRangeIter(mems, files, nil, nil, ^uint64(0))
	for it.nextLocked() {
		if !fn(it.outKey, it.outVal) {
			return nil
		}
	}
	return nil
}
