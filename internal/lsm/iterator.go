package lsm

import (
	"bytes"
	"container/heap"

	"gadget/internal/kv"
)

// internalIter is the common surface of memtable and table iterators.
type internalIter interface {
	Valid() bool
	Next()
	Key() []byte
	Value() []byte
}

// scanHeap merge-sorts internal iterators by internal key. Internal keys
// are unique, so no tie-breaking is needed.
type scanHeap []internalIter

func (h scanHeap) Len() int            { return len(h) }
func (h scanHeap) Less(i, j int) bool  { return bytes.Compare(h[i].Key(), h[j].Key()) < 0 }
func (h scanHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scanHeap) Push(x interface{}) { *h = append(*h, x.(internalIter)) }
func (h *scanHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Scan calls fn for every live user key in ascending order with its
// fully resolved value (merges applied, tombstones skipped) until fn
// returns false. The iteration observes a consistent point-in-time view:
// the database is read-locked for the duration of the scan.
func (db *DB) Scan(fn func(key, value []byte) bool) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return kv.ErrClosed
	}
	var h scanHeap
	add := func(it internalIter) {
		if it.Valid() {
			h = append(h, it)
		}
	}
	mit := db.mem.sl.Iter()
	mit.First()
	add(mit)
	for _, m := range db.imm {
		it := m.sl.Iter()
		it.First()
		add(it)
	}
	for _, lvl := range db.version.levels {
		for _, fm := range lvl {
			it := fm.reader.Iter()
			it.First()
			add(it)
		}
	}
	heap.Init(&h)

	var curPrefix []byte
	var operands [][]byte
	var base []byte
	resolved := false
	haveKey := false

	flush := func() bool {
		if !haveKey {
			return true
		}
		defer func() {
			operands = operands[:0]
			base = nil
			resolved = false
			haveKey = false
		}()
		if !resolved && len(operands) == 0 {
			return true // only shadowed entries: nothing live
		}
		if resolved && base == nil && len(operands) == 0 {
			return true // newest entry was a tombstone
		}
		userKey, _, err := decodeEscaped(curPrefix)
		if err != nil {
			return true
		}
		return fn(userKey, combineMerge(base, operands))
	}

	for len(h) > 0 {
		top := h[0]
		ikey := top.Key()
		prefix := ikeyUserPrefix(ikey)
		if !bytes.Equal(prefix, curPrefix) {
			if !flush() {
				return nil
			}
			curPrefix = append(curPrefix[:0], prefix...)
		}
		haveKey = true
		if !resolved {
			switch ikey[len(ikey)-1] {
			case kindPut:
				base = append([]byte(nil), top.Value()...)
				resolved = true
			case kindDelete:
				base = nil
				resolved = true
				if len(operands) > 0 {
					// Merges above a tombstone resolve against an empty
					// base; mark it as a live (possibly empty) value.
					base = []byte{}
				}
			case kindMerge:
				operands = append(operands, append([]byte(nil), top.Value()...))
			}
		}
		top.Next()
		if top.Valid() {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	flush()
	return nil
}
