package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestScanEmpty(t *testing.T) {
	db := testDB(t, Options{})
	count := 0
	if err := db.Scan(func(k, v []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("scanned %d entries in empty db", count)
	}
}

func TestScanResolvesAcrossLayers(t *testing.T) {
	db := testDB(t, smallOpts())
	model := map[string]string{}
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(800))
		switch rng.Intn(10) {
		case 0:
			db.Delete([]byte(k))
			delete(model, k)
		case 1, 2:
			op := fmt.Sprintf("+%d", i%5)
			db.Merge([]byte(k), []byte(op))
			model[k] += op
		default:
			v := fmt.Sprintf("v%d", i)
			db.Put([]byte(k), []byte(v))
			model[k] = v
		}
		if i == 5000 {
			db.Flush() // leave data spread across memtable and tables
		}
	}
	got := map[string]string{}
	var prev []byte
	err := db.Scan(func(k, v []byte) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("scan out of order: %q after %q", k, prev)
		}
		prev = append(prev[:0], k...)
		got[string(k)] = string(v)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(model) {
		t.Fatalf("scanned %d keys, model has %d", len(got), len(model))
	}
	for k, want := range model {
		if got[k] != want {
			t.Fatalf("Scan[%s] = %q, want %q", k, got[k], want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	db := testDB(t, Options{})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte("v"))
	}
	count := 0
	db.Scan(func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestScanMergeOnTombstone(t *testing.T) {
	db := testDB(t, smallOpts())
	db.Put([]byte("k"), []byte("base"))
	db.Flush()
	db.Delete([]byte("k"))
	db.Flush()
	db.Merge([]byte("k"), []byte("after"))
	var keys []string
	var vals []string
	db.Scan(func(k, v []byte) bool {
		keys = append(keys, string(k))
		vals = append(vals, string(v))
		return true
	})
	want := []string{"k"}
	if fmt.Sprint(keys) != fmt.Sprint(want) || vals[0] != "after" {
		t.Fatalf("scan = %v / %v", keys, vals)
	}
}

func TestScanClosed(t *testing.T) {
	db := testDB(t, Options{})
	db.Close()
	if err := db.Scan(func(k, v []byte) bool { return true }); err == nil {
		t.Fatal("scan on closed db should fail")
	}
}

func TestScanMatchesSortedModel(t *testing.T) {
	db := testDB(t, smallOpts())
	model := map[string]string{}
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("key-%05d", (i*37)%1000)
		v := fmt.Sprintf("v%d", i)
		db.Put([]byte(k), []byte(v))
		model[k] = v
	}
	db.Flush()
	db.Compact()
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	i := 0
	db.Scan(func(k, v []byte) bool {
		if string(k) != wantKeys[i] {
			t.Fatalf("key %d = %q, want %q", i, k, wantKeys[i])
		}
		i++
		return true
	})
	if i != len(wantKeys) {
		t.Fatalf("scanned %d of %d", i, len(wantKeys))
	}
}
