package lsm

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"time"

	"gadget/internal/cache"
	"gadget/internal/sstable"
	"gadget/internal/vfs"
)

// Numeric properties persisted in every table.
const (
	propLevel          = "level"
	propMaxSeq         = "maxseq"
	propDeletes        = "deletes"
	propTombstoneNanos = "tombstone_nanos" // earliest tombstone wall time
	propEntries        = "entries"
)

// fileMeta describes one live sorted table.
type fileMeta struct {
	num      uint64
	size     int64
	smallest []byte // internal keys
	largest  []byte
	deletes  uint64
	// tombstoneAt is the earliest wall-clock time a tombstone in this
	// file was created (zero when the file has no tombstones). Lethe's
	// picker prioritizes files whose tombstones have aged past the
	// delete persistence threshold.
	tombstoneAt time.Time
	reader      *sstable.Reader
	file        vfs.File
	path        string
	fs          vfs.FS
	cache       *cache.Cache
	// bloom aggregates Bloom filter outcomes across the DB's tables
	// (points at the owning DB's counters; nil only in unit tests that
	// build a fileMeta directly).
	bloom *bloomCounters

	// refs counts owners of the open table: the version that installed it
	// plus any live snapshots pinning it. The last unref closes the file;
	// if the table was marked obsolete (compacted away) it is also
	// removed from cache and disk at that point. Deferring the removal is
	// safe because file numbers are never reused within a process.
	refs     atomic.Int32
	obsolete atomic.Bool
}

// bloomCounters tracks filter effectiveness DB-wide. Probes run under
// the DB's read lock, so the fields are atomics.
type bloomCounters struct {
	checks    atomic.Uint64 // point lookups that consulted a filter
	negatives atomic.Uint64 // lookups the filter rejected (table skipped)
	falsePos  atomic.Uint64 // filter said maybe, table had nothing
}

func (fm *fileMeta) ref() { fm.refs.Add(1) }

// unref drops one owner. The final unref closes the file handle and, for
// obsolete tables, invalidates cached blocks and deletes the file.
func (fm *fileMeta) unref() error {
	if fm.refs.Add(-1) != 0 {
		return nil
	}
	err := fm.file.Close()
	if fm.obsolete.Load() {
		if fm.cache != nil {
			fm.cache.InvalidateFile(fm.num)
		}
		if fm.fs != nil {
			fm.fs.Remove(fm.path)
		}
	}
	return err
}

// markObsolete flags the table for deletion once every owner lets go.
func (fm *fileMeta) markObsolete() { fm.obsolete.Store(true) }

// get probes the table for userKey with the same contract as memtable.get.
func (fm *fileMeta) get(userKey []byte, operands *[][]byte) ([]byte, lookupResult, error) {
	if fm.bloom != nil {
		fm.bloom.checks.Add(1)
	}
	if !fm.reader.MayContain(lookupKey(userKey)) {
		if fm.bloom != nil {
			fm.bloom.negatives.Add(1)
		}
		return nil, lookupMissing, nil
	}
	lk := lookupKey(userKey)
	prefix := ikeyUserPrefix(lk)
	it := fm.reader.Iter()
	it.SeekGE(lk)
	res := lookupMissing
	found := false
	for ; it.Valid(); it.Next() {
		ik := it.Key()
		if !bytes.HasPrefix(ik, prefix) {
			break
		}
		found = true
		switch ik[len(ik)-1] {
		case kindPut:
			v := append([]byte(nil), it.Value()...)
			return v, lookupFound, nil
		case kindDelete:
			return nil, lookupDeleted, nil
		case kindMerge:
			*operands = append(*operands, append([]byte(nil), it.Value()...))
			res = lookupContinue
		}
	}
	if err := it.Err(); err != nil {
		return nil, lookupMissing, err
	}
	if !found && fm.bloom != nil {
		// The filter admitted the key but the table holds no entry for
		// it: a false positive (the measured FPR numerator).
		fm.bloom.falsePos.Add(1)
	}
	return nil, res, nil
}

// overlaps reports whether the file's key range intersects [lo, hi]
// (internal-key prefixes; nil bounds mean unbounded).
func (fm *fileMeta) overlaps(lo, hi []byte) bool {
	if hi != nil && bytes.Compare(ikeyUserPrefix(fm.smallest), hi) > 0 {
		return false
	}
	if lo != nil && bytes.Compare(ikeyUserPrefix(fm.largest), lo) < 0 {
		return false
	}
	return true
}

func tablePath(dir string, num uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%06d.sst", num))
}

// openTable opens an existing table file and builds its metadata.
func openTable(fs vfs.FS, path string, num uint64, c *cache.Cache) (*fileMeta, error) {
	f, err := vfs.Open(fs, path)
	if err != nil {
		return nil, err
	}
	r, err := sstable.Open(f, num, c)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.FilterKey = filterUserKey
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fm := &fileMeta{
		num:      num,
		size:     st.Size(),
		smallest: r.Smallest(),
		largest:  r.Largest(),
		reader:   r,
		file:     f,
		path:     path,
		fs:       fs,
		cache:    c,
	}
	fm.refs.Store(1)
	if d, ok := r.Property(propDeletes); ok {
		fm.deletes = d
	}
	if ns, ok := r.Property(propTombstoneNanos); ok && ns > 0 {
		fm.tombstoneAt = time.Unix(0, int64(ns))
	}
	return fm, nil
}

// filterUserKey maps an internal key to its escaped user-key prefix so
// Bloom lookups by user key work regardless of sequence numbers.
func filterUserKey(ikey []byte) []byte { return ikeyUserPrefix(ikey) }

// tableBuilder wraps an sstable.Writer with tombstone bookkeeping. The
// table is built under a .tmp name and renamed into place only after a
// sync, so a crash mid-build leaves no partial .sst for Open to choke
// on — only a .tmp that loadTables deletes.
type tableBuilder struct {
	fs      vfs.FS
	w       *sstable.Writer
	f       vfs.File
	path    string // final *.sst path; the build happens at path+".tmp"
	num     uint64
	deletes uint64
	maxSeq  uint64
	tombAt  time.Time
}

func (db *DB) newTableBuilder() (*tableBuilder, error) {
	num := db.nextNum
	db.nextNum++
	path := tablePath(db.opts.Dir, num)
	f, err := vfs.Create(db.opts.FS, path+".tmp")
	if err != nil {
		return nil, err
	}
	w := sstable.NewWriter(f)
	w.FilterKey = filterUserKey
	if db.opts.DisableBloom {
		w.BloomBitsPerKey = -1
	}
	return &tableBuilder{fs: db.opts.FS, w: w, f: f, path: path, num: num}, nil
}

func (b *tableBuilder) add(ikey, value []byte, tombAt time.Time) error {
	_, seq, kind, err := parseIKey(ikey)
	if err != nil {
		return err
	}
	if seq > b.maxSeq {
		b.maxSeq = seq
	}
	if kind == kindDelete {
		b.deletes++
		if b.tombAt.IsZero() || (!tombAt.IsZero() && tombAt.Before(b.tombAt)) {
			b.tombAt = tombAt
		}
	}
	return b.w.Add(ikey, value)
}

// finish seals the table at the given level and reopens it for reads.
func (b *tableBuilder) finish(db *DB, level int) (*fileMeta, error) {
	if err := b.seal(level); err != nil {
		return nil, err
	}
	// The MANIFEST that is about to reference this table commits with a
	// directory sync of its own, but that only covers the manifest entry:
	// the table's rename must be flushed too, or a crash can leave a
	// manifest pointing at a table whose directory entry evaporated.
	if err := b.fs.SyncDir(db.opts.Dir); err != nil {
		b.fs.Remove(b.path)
		return nil, err
	}
	fm, err := openTable(b.fs, b.path, b.num, db.cache)
	if err != nil {
		return nil, err
	}
	fm.bloom = &db.bloom
	return fm, nil
}

// abandon removes a partially written table.
func (b *tableBuilder) abandon() {
	b.f.Close()
	b.fs.Remove(b.path + ".tmp")
}

// flushOldestLocked writes the oldest immutable memtable to a new L0
// table. Called with mu held.
func (db *DB) flushOldestLocked() error {
	m := db.imm[0]
	if m.len() == 0 {
		db.imm = db.imm[1:]
		return nil
	}
	b, err := db.newTableBuilder()
	if err != nil {
		return err
	}
	it := m.sl.Iter()
	for it.First(); it.Valid(); it.Next() {
		if err := b.add(it.Key(), it.Value(), m.earliestTombstone); err != nil {
			b.abandon()
			return err
		}
	}
	fm, err := b.finish(db, 0)
	if err != nil {
		return err
	}
	db.imm = db.imm[1:]
	db.version.levels[0] = append([]*fileMeta{fm}, db.version.levels[0]...)
	db.stats.Flushes++
	db.stats.BytesFlushed += uint64(fm.size)
	// Commit point: the table is visible to future opens only once the
	// manifest naming it lands.
	return db.writeManifestLocked()
}
