package lsm

import (
	"bytes"
	"time"

	"gadget/internal/skiplist"
)

// memtable is an in-memory write buffer of internal-key entries. Entries
// are unique (the sequence number is part of the key), so the skiplist's
// overwrite semantics are never exercised.
type memtable struct {
	sl        *skiplist.List
	createdAt time.Time
	// earliestTombstone is the wall-clock time the first delete was
	// buffered, used by the Lethe delete-aware compaction picker.
	earliestTombstone time.Time
	deletes           int
	merges            int
}

func newMemtable() *memtable {
	return &memtable{sl: skiplist.New(), createdAt: time.Now()}
}

func (m *memtable) add(ikey, value []byte, kind byte) {
	m.sl.Put(ikey, value)
	switch kind {
	case kindDelete:
		if m.deletes == 0 {
			m.earliestTombstone = time.Now()
		}
		m.deletes++
	case kindMerge:
		m.merges++
	}
}

func (m *memtable) approxBytes() int64 { return m.sl.ApproxBytes() }
func (m *memtable) len() int           { return m.sl.Len() }

// lookupResult is the outcome of probing one layer of the store for a
// user key while resolving a read.
type lookupResult int

const (
	lookupMissing  lookupResult = iota // key not present in this layer
	lookupFound                        // base value found (resolution done)
	lookupDeleted                      // tombstone found (resolution done)
	lookupContinue                     // merge operands found; keep descending
)

// get probes the memtable for userKey. Merge operands discovered on the
// way down (newest first) are appended to *operands. When the newest
// visible entry chain resolves inside this memtable, it returns
// lookupFound with the base value or lookupDeleted.
func (m *memtable) get(userKey []byte, operands *[][]byte) ([]byte, lookupResult) {
	lk := lookupKey(userKey)
	prefix := ikeyUserPrefix(lk)
	it := m.sl.Iter()
	it.SeekGE(lk)
	res := lookupMissing
	for ; it.Valid(); it.Next() {
		ik := it.Key()
		if !bytes.HasPrefix(ik, prefix) || len(ik) != len(prefix)+trailerLen {
			break
		}
		kind := ik[len(ik)-1]
		switch kind {
		case kindPut:
			return it.Value(), lookupFound
		case kindDelete:
			return nil, lookupDeleted
		case kindMerge:
			*operands = append(*operands, it.Value())
			res = lookupContinue
		}
	}
	return nil, res
}
