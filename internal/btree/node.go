package btree

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Node layouts (within a 4 KiB page):
//
//	leaf:     [type u8][nCells u16][next u32] cells...
//	cell:     [keyLen u16][flags u8][valLen u32] key (inlineValue | overflowID u32)
//	internal: [type u8][nKeys u16][child0 u32] (keyLen u16, key, child u32)...
//	overflow: [type u8][next u32][len u32] data
//
// flags bit 0: value stored in an overflow chain.

const (
	leafHeader     = 1 + 2 + 4
	internalHeader = 1 + 2 + 4
	overflowHeader = 1 + 4 + 4
	cellHeader     = 2 + 1 + 4

	// maxInlineValue forces large values into overflow chains so any
	// reasonable cell fits a page.
	maxInlineValue = 1024
	// MaxKeyLen bounds keys so two cells always fit a page.
	MaxKeyLen = 512
)

type cell struct {
	key      []byte
	val      []byte // inline value (nil when overflow != 0)
	overflow uint32 // first overflow page (0 = inline)
	vlen     uint32 // total value length (inline or overflow)
}

type leafNode struct {
	cells []cell
	next  uint32
}

type internalNode struct {
	keys     [][]byte // keys[i] separates children[i] and children[i+1]
	children []uint32
}

func (l *leafNode) encodedSize() int {
	sz := leafHeader
	for _, c := range l.cells {
		sz += cellHeader + len(c.key)
		if c.overflow != 0 {
			sz += 4
		} else {
			sz += len(c.val)
		}
	}
	return sz
}

func (l *leafNode) encode(page []byte) {
	for i := range page {
		page[i] = 0
	}
	page[0] = pageLeaf
	binary.LittleEndian.PutUint16(page[1:], uint16(len(l.cells)))
	binary.LittleEndian.PutUint32(page[3:], l.next)
	off := leafHeader
	for _, c := range l.cells {
		binary.LittleEndian.PutUint16(page[off:], uint16(len(c.key)))
		var flags byte
		if c.overflow != 0 {
			flags = 1
		}
		page[off+2] = flags
		binary.LittleEndian.PutUint32(page[off+3:], c.vlen)
		off += cellHeader
		copy(page[off:], c.key)
		off += len(c.key)
		if c.overflow != 0 {
			binary.LittleEndian.PutUint32(page[off:], c.overflow)
			off += 4
		} else {
			copy(page[off:], c.val)
			off += len(c.val)
		}
	}
}

func decodeLeaf(page []byte) (*leafNode, error) {
	if page[0] != pageLeaf {
		return nil, fmt.Errorf("btree: page is not a leaf (type %d)", page[0])
	}
	n := int(binary.LittleEndian.Uint16(page[1:]))
	l := &leafNode{next: binary.LittleEndian.Uint32(page[3:]), cells: make([]cell, 0, n)}
	off := leafHeader
	for i := 0; i < n; i++ {
		if off+cellHeader > len(page) {
			return nil, fmt.Errorf("btree: truncated leaf cell")
		}
		klen := int(binary.LittleEndian.Uint16(page[off:]))
		flags := page[off+2]
		vlen := binary.LittleEndian.Uint32(page[off+3:])
		off += cellHeader
		c := cell{key: append([]byte(nil), page[off:off+klen]...), vlen: vlen}
		off += klen
		if flags&1 != 0 {
			c.overflow = binary.LittleEndian.Uint32(page[off:])
			off += 4
		} else {
			c.val = append([]byte(nil), page[off:off+int(vlen)]...)
			off += int(vlen)
		}
		l.cells = append(l.cells, c)
	}
	return l, nil
}

func (in *internalNode) encodedSize() int {
	sz := internalHeader
	for _, k := range in.keys {
		sz += 2 + len(k) + 4
	}
	return sz
}

func (in *internalNode) encode(page []byte) {
	for i := range page {
		page[i] = 0
	}
	page[0] = pageInternal
	binary.LittleEndian.PutUint16(page[1:], uint16(len(in.keys)))
	binary.LittleEndian.PutUint32(page[3:], in.children[0])
	off := internalHeader
	for i, k := range in.keys {
		binary.LittleEndian.PutUint16(page[off:], uint16(len(k)))
		off += 2
		copy(page[off:], k)
		off += len(k)
		binary.LittleEndian.PutUint32(page[off:], in.children[i+1])
		off += 4
	}
}

// leafFind searches an encoded leaf page without decoding it. It returns
// the cell's value location: for inline values a sub-slice of page (valid
// only while the frame is pinned), for overflow values the chain head.
func leafFind(page []byte, key []byte) (inline []byte, inlineOff int, overflow uint32, vlen uint32, found bool) {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	off := leafHeader
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(page[off:]))
		flags := page[off+2]
		vl := binary.LittleEndian.Uint32(page[off+3:])
		off += cellHeader
		k := page[off : off+klen]
		off += klen
		switch bytes.Compare(k, key) {
		case 0:
			if flags&1 != 0 {
				return nil, 0, binary.LittleEndian.Uint32(page[off:]), vl, true
			}
			return page[off : off+int(vl)], off, 0, vl, true
		case 1:
			return nil, 0, 0, 0, false // cells are sorted: key absent
		}
		if flags&1 != 0 {
			off += 4
		} else {
			off += int(vl)
		}
	}
	return nil, 0, 0, 0, false
}

// internalChild walks an encoded internal page, returning the child that
// covers key (the child after the last separator <= key).
func internalChild(page []byte, key []byte) uint32 {
	n := int(binary.LittleEndian.Uint16(page[1:]))
	child := binary.LittleEndian.Uint32(page[3:])
	off := internalHeader
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(page[off:]))
		off += 2
		k := page[off : off+klen]
		off += klen
		if bytes.Compare(k, key) > 0 {
			return child
		}
		child = binary.LittleEndian.Uint32(page[off:])
		off += 4
	}
	return child
}

func decodeInternal(page []byte) (*internalNode, error) {
	if page[0] != pageInternal {
		return nil, fmt.Errorf("btree: page is not internal (type %d)", page[0])
	}
	n := int(binary.LittleEndian.Uint16(page[1:]))
	in := &internalNode{
		keys:     make([][]byte, 0, n),
		children: make([]uint32, 1, n+1),
	}
	in.children[0] = binary.LittleEndian.Uint32(page[3:])
	off := internalHeader
	for i := 0; i < n; i++ {
		klen := int(binary.LittleEndian.Uint16(page[off:]))
		off += 2
		in.keys = append(in.keys, append([]byte(nil), page[off:off+klen]...))
		off += klen
		in.children = append(in.children, binary.LittleEndian.Uint32(page[off:]))
		off += 4
	}
	return in, nil
}
