package btree

import (
	"bytes"
	"encoding/binary"
)

// In-place leaf mutation: the common cases (insert without split,
// replace, delete) are performed directly on the encoded page with a
// memmove, as real pagers do, avoiding a full decode/encode round trip.

// leafLoc describes where a key lives (or would live) in an encoded leaf.
type leafLoc struct {
	n         int    // number of cells
	used      int    // total used bytes
	insertOff int    // offset of the key's cell, or the insertion point
	cellLen   int    // existing cell's total length (0 when !found)
	valOff    int    // offset of the inline value (found && inline only)
	vlen      uint32 // existing value length
	overflow  uint32 // existing overflow head (0 = inline)
	found     bool
}

// locateLeaf walks an encoded leaf once, returning the key's location
// and the page's usage.
func locateLeaf(page []byte, key []byte) leafLoc {
	loc := leafLoc{n: int(binary.LittleEndian.Uint16(page[1:]))}
	off := leafHeader
	pos := -1
	for i := 0; i < loc.n; i++ {
		cellStart := off
		klen := int(binary.LittleEndian.Uint16(page[off:]))
		flags := page[off+2]
		vl := binary.LittleEndian.Uint32(page[off+3:])
		off += cellHeader
		k := page[off : off+klen]
		off += klen
		valOff := off
		if flags&1 != 0 {
			off += 4
		} else {
			off += int(vl)
		}
		if pos < 0 {
			switch bytes.Compare(k, key) {
			case 0:
				pos = cellStart
				loc.found = true
				loc.insertOff = cellStart
				loc.cellLen = off - cellStart
				loc.vlen = vl
				loc.valOff = valOff
				if flags&1 != 0 {
					loc.overflow = binary.LittleEndian.Uint32(page[valOff:])
				}
			case 1:
				pos = cellStart
				loc.insertOff = cellStart
			}
		}
	}
	loc.used = off
	if pos < 0 {
		loc.insertOff = loc.used
	}
	return loc
}

// leafReplaceInline resizes an existing inline value in place. The
// caller must have checked that the new size fits the page.
func leafReplaceInline(page []byte, loc leafLoc, value []byte) {
	delta := len(value) - int(loc.vlen)
	if delta != 0 {
		tail := loc.valOff + int(loc.vlen)
		copy(page[tail+delta:loc.used+delta], page[tail:loc.used])
	}
	binary.LittleEndian.PutUint32(page[loc.insertOff+3:], uint32(len(value)))
	page[loc.insertOff+2] = 0 // inline
	copy(page[loc.valOff:], value)
	if delta < 0 {
		// Zero the vacated bytes so pages stay deterministic on disk.
		for i := loc.used + delta; i < loc.used; i++ {
			page[i] = 0
		}
	}
}

// leafInsertInline inserts a new inline cell at loc.insertOff. The
// caller must have checked that it fits the page.
func leafInsertInline(page []byte, loc leafLoc, key, value []byte) {
	cellLen := cellHeader + len(key) + len(value)
	copy(page[loc.insertOff+cellLen:loc.used+cellLen], page[loc.insertOff:loc.used])
	off := loc.insertOff
	binary.LittleEndian.PutUint16(page[off:], uint16(len(key)))
	page[off+2] = 0
	binary.LittleEndian.PutUint32(page[off+3:], uint32(len(value)))
	off += cellHeader
	copy(page[off:], key)
	off += len(key)
	copy(page[off:], value)
	binary.LittleEndian.PutUint16(page[1:], uint16(loc.n+1))
}

// leafRemove deletes the located cell in place.
func leafRemove(page []byte, loc leafLoc) {
	copy(page[loc.insertOff:], page[loc.insertOff+loc.cellLen:loc.used])
	for i := loc.used - loc.cellLen; i < loc.used; i++ {
		page[i] = 0
	}
	binary.LittleEndian.PutUint16(page[1:], uint16(loc.n-1))
}
