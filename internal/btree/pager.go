package btree

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"gadget/internal/vfs"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const (
	pageMeta     byte = 0 // page 0 only
	pageInternal byte = 1
	pageLeaf     byte = 2
	pageOverflow byte = 3
)

// frame is a buffer-pool resident page.
type frame struct {
	id    uint32
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// pager provides fixed-size pages backed by a file with an LRU buffer
// pool. Dirty pages are written back on eviction and on flush. Pinned
// pages are never evicted.
//
// Crash safety uses a rollback journal in the style of SQLite: before a
// page that existed at the last checkpoint is overwritten in place, its
// before-image is appended to <db>.journal and the journal is synced.
// A checkpoint (flush) writes all dirty pages plus the meta page, syncs
// the database file, and then deletes the journal — the deletion is the
// commit. If the journal still exists at open, the process died between
// checkpoints and the journal is rolled back, restoring the database to
// its last checkpointed state byte for byte.
type pager struct {
	fs            vfs.FS
	f             vfs.File
	path          string
	pool          map[uint32]*frame
	lru           *list.List // front = most recently used
	capacity      int        // max frames resident
	pageCount     uint32
	freeHead      uint32 // head of the free-page list (0 = none)
	root          uint32
	reads, writes uint64

	jf        vfs.File        // open journal, nil until first before-image
	journaled map[uint32]bool // pages with a before-image this epoch
	baseline  uint32          // pageCount at last checkpoint; pages at or
	// beyond it did not exist then and need no before-image

	// onPage, when set, observes every page get() before the caller can
	// mutate it. The copy-on-write snapshot layer uses it to capture
	// pre-images: every mutation path (inline leaf edits, insert, free,
	// free-list alloc) pins its page through get() first, so firing here
	// is always pre-mutation. Fresh allocations bypass get() and the
	// hook, which is correct — pages born after a snapshot are invisible
	// to it by page-count bound.
	onPage func(id uint32, data []byte)
}

func openPager(fs vfs.FS, path string, cacheBytes int64) (*pager, error) {
	// A crashed initialization leaves a partial database under the .init
	// name; it never became the database and is garbage.
	fs.Remove(path + ".init")
	if err := rollbackJournal(fs, path); err != nil {
		return nil, err
	}
	f, err := fs.OpenFile(path, os.O_RDWR, 0)
	if errors.Is(err, os.ErrNotExist) {
		return initPager(fs, path, cacheBytes)
	}
	if err != nil {
		return nil, err
	}
	p := newPagerState(fs, f, path, cacheBytes)
	var meta [PageSize]byte
	if _, err := f.ReadAt(meta[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint64(meta[1:]) != pagerMagic {
		f.Close()
		return nil, fmt.Errorf("btree: not a btree database file")
	}
	p.root = binary.LittleEndian.Uint32(meta[9:])
	p.pageCount = binary.LittleEndian.Uint32(meta[13:])
	p.freeHead = binary.LittleEndian.Uint32(meta[17:])
	p.baseline = p.pageCount
	return p, nil
}

func newPagerState(fs vfs.FS, f vfs.File, path string, cacheBytes int64) *pager {
	cap := int(cacheBytes / PageSize)
	if cap < 16 {
		cap = 16
	}
	return &pager{
		fs:        fs,
		f:         f,
		path:      path,
		pool:      make(map[uint32]*frame),
		lru:       list.New(),
		capacity:  cap,
		journaled: make(map[uint32]bool),
	}
}

// initPager creates a fresh database atomically: the meta page and an
// empty leaf root are written and synced under a temporary .init name
// and renamed into place, so a crash during creation leaves either no
// database or a complete one — never a torn file without a journal to
// roll back.
func initPager(fs vfs.FS, path string, cacheBytes int64) (*pager, error) {
	f, err := fs.OpenFile(path+".init", os.O_CREATE|os.O_RDWR|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	p := newPagerState(fs, f, path, cacheBytes)
	p.pageCount = 1
	rootFrame, err := p.alloc(pageLeaf)
	if err != nil {
		f.Close()
		return nil, err
	}
	p.root = rootFrame.id
	p.unpin(rootFrame, true)
	// flush checkpoints the initial state (rollback restores to a
	// checkpoint, so there must be one before any mutation).
	if err := p.flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fs.Rename(path+".init", path); err != nil {
		f.Close()
		fs.Remove(path + ".init")
		return nil, err
	}
	// Flush the directory entry too: without it a crash can lose the
	// rename and leave only the .init file, which open ignores.
	if err := fs.SyncDir(vfs.ParentDir(path)); err != nil {
		f.Close()
		return nil, err
	}
	// The open handle follows the rename (same inode); subsequent I/O
	// hits the final path's file.
	return p, nil
}

const pagerMagic = 0x4741444745544254 // "GADGETBT"

func journalPath(path string) string { return path + ".journal" }

// Journal entries are pageID u32 | PageSize bytes | crc32(id+data) u32.
const journalEntrySize = 4 + PageSize + 4

// rollbackJournal undoes a crashed epoch: every complete journal entry
// is written back over the database file. A torn final entry is ignored
// — the journal append is synced before the corresponding in-place page
// write, so a torn entry means that overwrite never happened.
func rollbackJournal(fs vfs.FS, path string) error {
	jdata, err := vfs.ReadFile(fs, journalPath(path))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	db, err := fs.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	for len(jdata) >= journalEntrySize {
		entry := jdata[:journalEntrySize]
		jdata = jdata[journalEntrySize:]
		id := binary.LittleEndian.Uint32(entry)
		want := binary.LittleEndian.Uint32(entry[4+PageSize:])
		if crc32.ChecksumIEEE(entry[:4+PageSize]) != want {
			break // torn tail: its page overwrite never happened
		}
		if _, err := db.WriteAt(entry[4:4+PageSize], int64(id)*PageSize); err != nil {
			db.Close()
			return err
		}
	}
	if err := db.Sync(); err != nil {
		db.Close()
		return err
	}
	if err := db.Close(); err != nil {
		return err
	}
	return fs.Remove(journalPath(path))
}

// journalPage appends the on-disk before-image of page id to the journal
// and syncs it, once per epoch. Must run before the first in-place
// overwrite of the page.
func (p *pager) journalPage(id uint32) error {
	if id >= p.baseline || p.journaled[id] {
		return nil
	}
	if p.jf == nil {
		jf, err := p.fs.OpenFile(journalPath(p.path), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		p.jf = jf
	}
	entry := make([]byte, journalEntrySize)
	binary.LittleEndian.PutUint32(entry, id)
	if _, err := p.f.ReadAt(entry[4:4+PageSize], int64(id)*PageSize); err != nil {
		// A short read past EOF means the page never made it to disk at
		// the last checkpoint — impossible for id < baseline, so treat any
		// failure as fatal rather than journaling garbage.
		if err != io.EOF && err != io.ErrUnexpectedEOF {
			return err
		}
	}
	binary.LittleEndian.PutUint32(entry[4+PageSize:], crc32.ChecksumIEEE(entry[:4+PageSize]))
	if _, err := p.jf.Write(entry); err != nil {
		return err
	}
	if err := p.jf.Sync(); err != nil {
		return err
	}
	p.journaled[id] = true
	return nil
}

// writePage journals the before-image if needed, then overwrites the
// page in place.
func (p *pager) writePage(id uint32, data []byte) error {
	if err := p.journalPage(id); err != nil {
		return err
	}
	if _, err := p.f.WriteAt(data, int64(id)*PageSize); err != nil {
		return err
	}
	p.writes++
	return nil
}

func (p *pager) flushMeta() error {
	var meta [PageSize]byte
	meta[0] = pageMeta
	binary.LittleEndian.PutUint64(meta[1:], pagerMagic)
	binary.LittleEndian.PutUint32(meta[9:], p.root)
	binary.LittleEndian.PutUint32(meta[13:], p.pageCount)
	binary.LittleEndian.PutUint32(meta[17:], p.freeHead)
	return p.writePage(0, meta[:])
}

// get pins and returns the frame for page id, reading it if not resident.
func (p *pager) get(id uint32) (*frame, error) {
	if fr, ok := p.pool[id]; ok {
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		if p.onPage != nil {
			p.onPage(fr.id, fr.data)
		}
		return fr, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("btree: reading page %d: %w", id, err)
	}
	p.reads++
	fr := &frame{id: id, data: data, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.pool[id] = fr
	if err := p.evict(); err != nil {
		return nil, err
	}
	if p.onPage != nil {
		p.onPage(fr.id, fr.data)
	}
	return fr, nil
}

// unpin releases a frame, marking it dirty if modified.
func (p *pager) unpin(fr *frame, dirty bool) {
	if dirty {
		fr.dirty = true
	}
	if fr.pins > 0 {
		fr.pins--
	}
}

// alloc pins a fresh zeroed page of the given type, reusing freed pages.
func (p *pager) alloc(typ byte) (*frame, error) {
	var id uint32
	if p.freeHead != 0 {
		id = p.freeHead
		fr, err := p.get(id)
		if err != nil {
			return nil, err
		}
		p.freeHead = binary.LittleEndian.Uint32(fr.data[1:])
		for i := range fr.data {
			fr.data[i] = 0
		}
		fr.data[0] = typ
		fr.dirty = true
		return fr, nil
	}
	id = p.pageCount
	p.pageCount++
	data := make([]byte, PageSize)
	data[0] = typ
	fr := &frame{id: id, data: data, pins: 1, dirty: true}
	fr.elem = p.lru.PushFront(fr)
	p.pool[id] = fr
	if err := p.evict(); err != nil {
		return nil, err
	}
	return fr, nil
}

// free returns a page to the free list. The caller must hold no pin.
func (p *pager) free(id uint32) error {
	fr, err := p.get(id)
	if err != nil {
		return err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.data[0] = pageOverflow // freed pages masquerade as overflow
	binary.LittleEndian.PutUint32(fr.data[1:], p.freeHead)
	p.freeHead = id
	p.unpin(fr, true)
	return nil
}

// evict writes back and drops least-recently-used unpinned frames until
// the pool fits its capacity.
func (p *pager) evict() error {
	for len(p.pool) > p.capacity {
		var victim *frame
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			fr := el.Value.(*frame)
			if fr.pins == 0 {
				victim = fr
				break
			}
		}
		if victim == nil {
			return nil // everything pinned; allow temporary overshoot
		}
		if victim.dirty {
			if err := p.writePage(victim.id, victim.data); err != nil {
				return err
			}
		}
		p.lru.Remove(victim.elem)
		delete(p.pool, victim.id)
	}
	return nil
}

// flush checkpoints: all dirty frames plus the meta page reach the
// database file, the file is synced, and the journal is deleted. The
// journal deletion is the commit point.
func (p *pager) flush() error {
	for _, fr := range p.pool {
		if fr.dirty {
			if err := p.writePage(fr.id, fr.data); err != nil {
				return err
			}
			fr.dirty = false
		}
	}
	if err := p.flushMeta(); err != nil {
		return err
	}
	if err := p.f.Sync(); err != nil {
		return err
	}
	if p.jf != nil {
		if err := p.jf.Close(); err != nil {
			return err
		}
		p.jf = nil
		if err := p.fs.Remove(journalPath(p.path)); err != nil {
			return err
		}
	}
	p.journaled = make(map[uint32]bool)
	p.baseline = p.pageCount
	return nil
}

func (p *pager) close() error {
	if err := p.flush(); err != nil {
		if p.jf != nil {
			p.jf.Close()
		}
		p.f.Close()
		return err
	}
	return p.f.Close()
}
