package btree

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"os"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

const (
	pageMeta     byte = 0 // page 0 only
	pageInternal byte = 1
	pageLeaf     byte = 2
	pageOverflow byte = 3
)

// frame is a buffer-pool resident page.
type frame struct {
	id    uint32
	data  []byte
	dirty bool
	pins  int
	elem  *list.Element
}

// pager provides fixed-size pages backed by a file with an LRU buffer
// pool. Dirty pages are written back on eviction and on flush. Pinned
// pages are never evicted.
type pager struct {
	f             *os.File
	pool          map[uint32]*frame
	lru           *list.List // front = most recently used
	capacity      int        // max frames resident
	pageCount     uint32
	freeHead      uint32 // head of the free-page list (0 = none)
	root          uint32
	reads, writes uint64
}

func openPager(path string, cacheBytes int64) (*pager, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	cap := int(cacheBytes / PageSize)
	if cap < 16 {
		cap = 16
	}
	p := &pager{
		f:        f,
		pool:     make(map[uint32]*frame),
		lru:      list.New(),
		capacity: cap,
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() == 0 {
		// Fresh database: write the meta page and an empty leaf root.
		p.pageCount = 1
		rootFrame, err := p.alloc(pageLeaf)
		if err != nil {
			f.Close()
			return nil, err
		}
		p.root = rootFrame.id
		p.unpin(rootFrame, true)
		if err := p.flushMeta(); err != nil {
			f.Close()
			return nil, err
		}
	} else {
		var meta [PageSize]byte
		if _, err := f.ReadAt(meta[:], 0); err != nil {
			f.Close()
			return nil, err
		}
		if binary.LittleEndian.Uint64(meta[1:]) != pagerMagic {
			f.Close()
			return nil, fmt.Errorf("btree: not a btree database file")
		}
		p.root = binary.LittleEndian.Uint32(meta[9:])
		p.pageCount = binary.LittleEndian.Uint32(meta[13:])
		p.freeHead = binary.LittleEndian.Uint32(meta[17:])
	}
	return p, nil
}

const pagerMagic = 0x4741444745544254 // "GADGETBT"

func (p *pager) flushMeta() error {
	var meta [PageSize]byte
	meta[0] = pageMeta
	binary.LittleEndian.PutUint64(meta[1:], pagerMagic)
	binary.LittleEndian.PutUint32(meta[9:], p.root)
	binary.LittleEndian.PutUint32(meta[13:], p.pageCount)
	binary.LittleEndian.PutUint32(meta[17:], p.freeHead)
	_, err := p.f.WriteAt(meta[:], 0)
	return err
}

// get pins and returns the frame for page id, reading it if not resident.
func (p *pager) get(id uint32) (*frame, error) {
	if fr, ok := p.pool[id]; ok {
		fr.pins++
		p.lru.MoveToFront(fr.elem)
		return fr, nil
	}
	data := make([]byte, PageSize)
	if _, err := p.f.ReadAt(data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("btree: reading page %d: %w", id, err)
	}
	p.reads++
	fr := &frame{id: id, data: data, pins: 1}
	fr.elem = p.lru.PushFront(fr)
	p.pool[id] = fr
	if err := p.evict(); err != nil {
		return nil, err
	}
	return fr, nil
}

// unpin releases a frame, marking it dirty if modified.
func (p *pager) unpin(fr *frame, dirty bool) {
	if dirty {
		fr.dirty = true
	}
	if fr.pins > 0 {
		fr.pins--
	}
}

// alloc pins a fresh zeroed page of the given type, reusing freed pages.
func (p *pager) alloc(typ byte) (*frame, error) {
	var id uint32
	if p.freeHead != 0 {
		id = p.freeHead
		fr, err := p.get(id)
		if err != nil {
			return nil, err
		}
		p.freeHead = binary.LittleEndian.Uint32(fr.data[1:])
		for i := range fr.data {
			fr.data[i] = 0
		}
		fr.data[0] = typ
		fr.dirty = true
		return fr, nil
	}
	id = p.pageCount
	p.pageCount++
	data := make([]byte, PageSize)
	data[0] = typ
	fr := &frame{id: id, data: data, pins: 1, dirty: true}
	fr.elem = p.lru.PushFront(fr)
	p.pool[id] = fr
	if err := p.evict(); err != nil {
		return nil, err
	}
	return fr, nil
}

// free returns a page to the free list. The caller must hold no pin.
func (p *pager) free(id uint32) error {
	fr, err := p.get(id)
	if err != nil {
		return err
	}
	for i := range fr.data {
		fr.data[i] = 0
	}
	fr.data[0] = pageOverflow // freed pages masquerade as overflow
	binary.LittleEndian.PutUint32(fr.data[1:], p.freeHead)
	p.freeHead = id
	p.unpin(fr, true)
	return nil
}

// evict writes back and drops least-recently-used unpinned frames until
// the pool fits its capacity.
func (p *pager) evict() error {
	for len(p.pool) > p.capacity {
		var victim *frame
		for el := p.lru.Back(); el != nil; el = el.Prev() {
			fr := el.Value.(*frame)
			if fr.pins == 0 {
				victim = fr
				break
			}
		}
		if victim == nil {
			return nil // everything pinned; allow temporary overshoot
		}
		if victim.dirty {
			if _, err := p.f.WriteAt(victim.data, int64(victim.id)*PageSize); err != nil {
				return err
			}
			p.writes++
		}
		p.lru.Remove(victim.elem)
		delete(p.pool, victim.id)
	}
	return nil
}

// flush writes all dirty frames and the meta page.
func (p *pager) flush() error {
	for _, fr := range p.pool {
		if fr.dirty {
			if _, err := p.f.WriteAt(fr.data, int64(fr.id)*PageSize); err != nil {
				return err
			}
			fr.dirty = false
			p.writes++
		}
	}
	return p.flushMeta()
}

func (p *pager) close() error {
	if err := p.flush(); err != nil {
		p.f.Close()
		return err
	}
	return p.f.Close()
}
