package btree

import (
	"fmt"

	"gadget/internal/kv"
)

// Copy-on-write snapshots. Snapshot() records the current root and page
// count; from then on the pager's onPage hook captures the pre-image of
// every page the tree touches before mutating it (first touch wins).
// Snapshot reads resolve a page from the captured pre-images first and
// fall back to the live pager — the fallback itself fires the hook, so
// the snapshot memoizes each page it visits and never observes a
// mutation. Pages allocated after the snapshot (id >= pageCount) are
// invisible to it. All snapshot reads serialize on the store mutex, like
// every other B+Tree operation (the buffer pool mutates LRU state even
// on reads); a snapshot becomes invalid once the store is closed.

// btreeSnapshot is a frozen view of the tree as of Snapshot().
type btreeSnapshot struct {
	s         *Store
	root      uint32
	pageCount uint32
	pages     map[uint32][]byte // captured pre-images, grown by the hook
	closed    bool
}

var _ kv.Snapshot = (*btreeSnapshot)(nil)

// pageTouched is the pager's onPage hook: copy the pre-image of id into
// every live snapshot that covers it and has not captured it yet.
func (s *Store) pageTouched(id uint32, data []byte) {
	for sn := range s.snaps {
		if id >= sn.pageCount {
			continue
		}
		if _, ok := sn.pages[id]; ok {
			continue
		}
		sn.pages[id] = append([]byte(nil), data...)
	}
}

// Snapshot implements kv.Snapshotter.
func (s *Store) Snapshot() (kv.Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	sn := &btreeSnapshot{
		s:         s,
		root:      s.p.root,
		pageCount: s.p.pageCount,
		pages:     make(map[uint32][]byte),
	}
	s.snaps[sn] = struct{}{}
	s.snapshots++
	return sn, nil
}

// pageLocked resolves page id as of snapshot time. Caller holds s.mu.
func (sn *btreeSnapshot) pageLocked(id uint32) ([]byte, error) {
	if b, ok := sn.pages[id]; ok {
		return b, nil
	}
	if id >= sn.pageCount {
		return nil, fmt.Errorf("btree: snapshot page %d beyond frozen page count %d", id, sn.pageCount)
	}
	fr, err := sn.s.p.get(id)
	if err != nil {
		return nil, err
	}
	// get() fired the onPage hook, which memoized this page into
	// sn.pages; keep that stable copy rather than the live frame.
	b, ok := sn.pages[id]
	if !ok {
		b = append([]byte(nil), fr.data...)
		sn.pages[id] = b
	}
	sn.s.p.unpin(fr, false)
	return b, nil
}

// readValueLocked materializes a cell's value from snapshot pages.
func (sn *btreeSnapshot) readValueLocked(c *cell) ([]byte, error) {
	if c.overflow == 0 {
		return append([]byte(nil), c.val...), nil
	}
	out := make([]byte, 0, c.vlen)
	id := c.overflow
	for id != 0 {
		page, err := sn.pageLocked(id)
		if err != nil {
			return nil, err
		}
		if page[0] != pageOverflow {
			return nil, fmt.Errorf("btree: bad overflow page %d in snapshot", id)
		}
		next := leUint32(page[1:])
		n := leUint32(page[5:])
		out = append(out, page[overflowHeader:overflowHeader+int(n)]...)
		id = next
	}
	if uint32(len(out)) != c.vlen {
		return nil, fmt.Errorf("btree: snapshot overflow chain length %d != %d", len(out), c.vlen)
	}
	return out, nil
}

// Get implements kv.Snapshot.
func (sn *btreeSnapshot) Get(key []byte) ([]byte, error) {
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn.closed || s.closed {
		return nil, kv.ErrClosed
	}
	id := sn.root
	for {
		page, err := sn.pageLocked(id)
		if err != nil {
			return nil, err
		}
		switch page[0] {
		case pageInternal:
			id = internalChild(page, key)
		case pageLeaf:
			inline, _, overflow, vlen, found := leafFind(page, key)
			if !found {
				return nil, kv.ErrNotFound
			}
			if overflow == 0 {
				return append([]byte(nil), inline...), nil
			}
			return sn.readValueLocked(&cell{overflow: overflow, vlen: vlen})
		default:
			return nil, fmt.Errorf("btree: unexpected page type %d on snapshot lookup path", page[0])
		}
	}
}

// Iter implements kv.Snapshot.
func (sn *btreeSnapshot) Iter(lo, hi kv.StateKey) kv.Iterator {
	return &btreeIter{sn: sn, lo: lo, hi: hi}
}

// Close implements kv.Snapshot: the snapshot deregisters from the hook
// and releases its captured pages.
func (sn *btreeSnapshot) Close() error {
	s := sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if sn.closed {
		return nil
	}
	sn.closed = true
	delete(s.snaps, sn)
	sn.pages = nil
	return nil
}

// btreeIter walks the snapshot's leaf chain through [lo, hi], buffering
// one decoded leaf at a time so no frame stays pinned between Next calls.
type btreeIter struct {
	sn      *btreeSnapshot
	lo, hi  kv.StateKey
	started bool
	next    uint32 // leaf to load on the next fill; 0 = exhausted
	buf     []kv.Entry
	cur     kv.Entry
	done    bool
	err     error
}

func (it *btreeIter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	if len(it.buf) == 0 && !it.fill() {
		it.done = true
		return false
	}
	it.cur = it.buf[0]
	it.buf = it.buf[1:]
	return true
}

// fill loads leaves until one yields in-range entries, under the store
// lock. Returns false when the range is exhausted or on error.
func (it *btreeIter) fill() bool {
	s := it.sn.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || it.sn.closed {
		it.err = kv.ErrClosed
		return false
	}
	if !it.started {
		it.started = true
		// Descend to the leaf covering lo.
		loKey := it.lo.Bytes()
		id := it.sn.root
		for {
			page, err := it.sn.pageLocked(id)
			if err != nil {
				it.err = err
				return false
			}
			if page[0] == pageInternal {
				id = internalChild(page, loKey)
				continue
			}
			if page[0] != pageLeaf {
				it.err = fmt.Errorf("btree: unexpected page type %d on snapshot scan path", page[0])
				return false
			}
			it.next = id
			break
		}
	}
	for it.next != 0 {
		page, err := it.sn.pageLocked(it.next)
		if err != nil {
			it.err = err
			return false
		}
		l, err := decodeLeaf(page)
		if err != nil {
			it.err = err
			return false
		}
		it.next = l.next
		for i := range l.cells {
			c := &l.cells[i]
			sk, err := kv.DecodeStateKey(c.key)
			if err != nil {
				continue // non-StateKey keyspace is not scannable
			}
			if sk.Less(it.lo) {
				continue
			}
			if it.hi.Less(sk) {
				it.next = 0 // keys ascend across the chain: nothing further qualifies
				break
			}
			v, err := it.sn.readValueLocked(c)
			if err != nil {
				it.err = err
				return false
			}
			it.buf = append(it.buf, kv.Entry{Key: sk, Value: v})
		}
		if len(it.buf) > 0 {
			s.iterOps += int64(len(it.buf))
			return true
		}
	}
	return false
}

func (it *btreeIter) Key() kv.StateKey { return it.cur.Key }
func (it *btreeIter) Value() []byte    { return it.cur.Value }
func (it *btreeIter) Err() error       { return it.err }
func (it *btreeIter) Close() error     { it.done = true; it.buf = nil; return nil }
