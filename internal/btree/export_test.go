package btree

import "os"

func osOpenFile(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDWR, 0o644)
}
