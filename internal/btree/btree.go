// Package btree implements a disk-backed B+Tree key-value store in the
// role BerkeleyDB (B+Tree access method) plays in the paper: fixed-size
// pages managed by an LRU buffer pool, in-place updates, overflow chains
// for large values, and leaf chaining for ordered scans.
//
// Merge is implemented eagerly as read-modify-write — the paper's point
// about BerkeleyDB lacking lazy updates (holistic windows must read and
// rewrite a growing vector) is preserved by construction.
package btree

import (
	"bytes"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"gadget/internal/kv"
	"gadget/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// Dir is the store directory; required.
	Dir string
	// CacheSize is the buffer pool capacity in bytes (default 256 MiB,
	// the paper's BerkeleyDB configuration).
	CacheSize int64
	// FS is the filesystem the store lives on; nil selects the real
	// filesystem. Tests inject vfs.MemFS or vfs.FaultFS here.
	FS vfs.FS
}

// Store is a B+Tree key-value store implementing kv.Store.
type Store struct {
	mu     sync.RWMutex
	p      *pager
	closed bool
	count  int64

	snaps     map[*btreeSnapshot]struct{} // live copy-on-write snapshots
	snapshots int64                       // snapshots taken (for Metrics)
	iterOps   int64                       // snapshot iterator entries served
}

var _ kv.Store = (*Store)(nil)

// Open opens (or creates) a store in opts.Dir.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("btree: Options.Dir is required")
	}
	cache := opts.CacheSize
	if cache <= 0 {
		cache = 256 << 20
	}
	fs := vfs.OrDefault(opts.FS)
	if err := fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, err
	}
	p, err := openPager(fs, filepath.Join(opts.Dir, "btree.db"), cache)
	if err != nil {
		return nil, err
	}
	s := &Store{p: p, snaps: make(map[*btreeSnapshot]struct{})}
	p.onPage = s.pageTouched
	return s, nil
}

// Caps advertises in-place updates without a lazy merge operator, plus
// native snapshots (copy-on-write pages) and ordered range scans (leaf
// chain).
func (s *Store) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: false, InPlaceUpdate: true, Snapshots: true, RangeScans: true}
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.Lock() // buffer pool mutates LRU state even on reads
	defer s.mu.Unlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	return s.getLocked(key)
}

func (s *Store) getLocked(key []byte) ([]byte, error) {
	fr, err := s.descend(key)
	if err != nil {
		return nil, err
	}
	inline, _, overflow, vlen, found := leafFind(fr.data, key)
	if !found {
		s.p.unpin(fr, false)
		return nil, kv.ErrNotFound
	}
	if overflow == 0 {
		out := append([]byte(nil), inline...)
		s.p.unpin(fr, false)
		return out, nil
	}
	s.p.unpin(fr, false)
	return s.readValue(&cell{overflow: overflow, vlen: vlen})
}

// descend walks internal pages to the leaf covering key, returning the
// pinned leaf frame.
func (s *Store) descend(key []byte) (*frame, error) {
	id := s.p.root
	for {
		fr, err := s.p.get(id)
		if err != nil {
			return nil, err
		}
		switch fr.data[0] {
		case pageInternal:
			id = internalChild(fr.data, key)
			s.p.unpin(fr, false)
		case pageLeaf:
			return fr, nil
		default:
			s.p.unpin(fr, false)
			return nil, fmt.Errorf("btree: unexpected page type %d on lookup path", fr.data[0])
		}
	}
}

// childIndex returns the child subtree for key: the number of separator
// keys <= key.
func childIndex(in *internalNode, key []byte) int {
	return sort.Search(len(in.keys), func(i int) bool {
		return bytes.Compare(in.keys[i], key) > 0
	})
}

// findCell locates key within a leaf.
func findCell(l *leafNode, key []byte) (int, bool) {
	i := sort.Search(len(l.cells), func(i int) bool {
		return bytes.Compare(l.cells[i].key, key) >= 0
	})
	if i < len(l.cells) && bytes.Equal(l.cells[i].key, key) {
		return i, true
	}
	return i, false
}

// readValue materializes a cell's value, following overflow chains.
func (s *Store) readValue(c *cell) ([]byte, error) {
	if c.overflow == 0 {
		return append([]byte(nil), c.val...), nil
	}
	out := make([]byte, 0, c.vlen)
	id := c.overflow
	for id != 0 {
		fr, err := s.p.get(id)
		if err != nil {
			return nil, err
		}
		if fr.data[0] != pageOverflow {
			s.p.unpin(fr, false)
			return nil, fmt.Errorf("btree: bad overflow page %d", id)
		}
		next := leUint32(fr.data[1:])
		n := leUint32(fr.data[5:])
		out = append(out, fr.data[overflowHeader:overflowHeader+int(n)]...)
		s.p.unpin(fr, false)
		id = next
	}
	if uint32(len(out)) != c.vlen {
		return nil, fmt.Errorf("btree: overflow chain length %d != %d", len(out), c.vlen)
	}
	return out, nil
}

// writeOverflow stores value in a chain of overflow pages, returning the
// head page id.
func (s *Store) writeOverflow(value []byte) (uint32, error) {
	const chunk = PageSize - overflowHeader
	var head, prev uint32
	var prevFrame *frame
	for off := 0; off < len(value) || off == 0; off += chunk {
		end := off + chunk
		if end > len(value) {
			end = len(value)
		}
		fr, err := s.p.alloc(pageOverflow)
		if err != nil {
			return 0, err
		}
		putUint32(fr.data[1:], 0)
		putUint32(fr.data[5:], uint32(end-off))
		copy(fr.data[overflowHeader:], value[off:end])
		if head == 0 {
			head = fr.id
		}
		if prevFrame != nil {
			putUint32(prevFrame.data[1:], fr.id)
			s.p.unpin(prevFrame, true)
		}
		prev = fr.id
		prevFrame = fr
		if end == len(value) {
			break
		}
	}
	_ = prev
	if prevFrame != nil {
		s.p.unpin(prevFrame, true)
	}
	return head, nil
}

// freeOverflow releases an overflow chain.
func (s *Store) freeOverflow(id uint32) error {
	for id != 0 {
		fr, err := s.p.get(id)
		if err != nil {
			return err
		}
		next := leUint32(fr.data[1:])
		s.p.unpin(fr, false)
		if err := s.p.free(id); err != nil {
			return err
		}
		id = next
	}
	return nil
}

// makeCell builds a cell for (key, value), spilling large values.
func (s *Store) makeCell(key, value []byte) (cell, error) {
	c := cell{key: append([]byte(nil), key...), vlen: uint32(len(value))}
	if len(value) > maxInlineValue {
		ov, err := s.writeOverflow(value)
		if err != nil {
			return cell{}, err
		}
		c.overflow = ov
	} else {
		c.val = append([]byte(nil), value...)
	}
	return c, nil
}

// Put stores value under key, replacing any existing value in place.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	return s.putLocked(key, value)
}

func (s *Store) putLocked(key, value []byte) error {
	if len(key) > MaxKeyLen {
		return fmt.Errorf("btree: key length %d exceeds %d", len(key), MaxKeyLen)
	}
	// Fast paths: inline inserts, replacements, and resizes that fit the
	// page mutate it directly with a memmove, as real pagers do.
	if len(value) <= maxInlineValue {
		fr, err := s.descend(key)
		if err != nil {
			return err
		}
		loc := locateLeaf(fr.data, key)
		switch {
		case loc.found && loc.overflow == 0 && loc.used-int(loc.vlen)+len(value) <= PageSize:
			leafReplaceInline(fr.data, loc, value)
			s.p.unpin(fr, true)
			return nil
		case !loc.found && loc.used+cellHeader+len(key)+len(value) <= PageSize:
			leafInsertInline(fr.data, loc, key, value)
			s.p.unpin(fr, true)
			s.count++
			return nil
		}
		s.p.unpin(fr, false)
	}
	promoted, newChild, inserted, err := s.insert(s.p.root, key, value)
	if err != nil {
		return err
	}
	if inserted {
		s.count++
	}
	if promoted != nil {
		// Root split: create a new root.
		fr, err := s.p.alloc(pageInternal)
		if err != nil {
			return err
		}
		in := &internalNode{keys: [][]byte{promoted}, children: []uint32{s.p.root, newChild}}
		in.encode(fr.data)
		s.p.root = fr.id
		s.p.unpin(fr, true)
	}
	return nil
}

// insert descends to the leaf for key, inserting or replacing. It
// returns a promoted separator and new right-sibling page when the child
// splits, plus whether a brand-new key was inserted.
func (s *Store) insert(id uint32, key, value []byte) (promoted []byte, newPage uint32, inserted bool, err error) {
	fr, err := s.p.get(id)
	if err != nil {
		return nil, 0, false, err
	}
	switch fr.data[0] {
	case pageLeaf:
		l, err := decodeLeaf(fr.data)
		if err != nil {
			s.p.unpin(fr, false)
			return nil, 0, false, err
		}
		i, found := findCell(l, key)
		if found {
			if l.cells[i].overflow != 0 {
				if err := s.freeOverflow(l.cells[i].overflow); err != nil {
					s.p.unpin(fr, false)
					return nil, 0, false, err
				}
			}
			c, err := s.makeCell(key, value)
			if err != nil {
				s.p.unpin(fr, false)
				return nil, 0, false, err
			}
			l.cells[i] = c
		} else {
			c, err := s.makeCell(key, value)
			if err != nil {
				s.p.unpin(fr, false)
				return nil, 0, false, err
			}
			l.cells = append(l.cells, cell{})
			copy(l.cells[i+1:], l.cells[i:])
			l.cells[i] = c
			inserted = true
		}
		if l.encodedSize() <= PageSize {
			l.encode(fr.data)
			s.p.unpin(fr, true)
			return nil, 0, inserted, nil
		}
		// Split the leaf: right half moves to a new page.
		mid := len(l.cells) / 2
		right := &leafNode{cells: append([]cell(nil), l.cells[mid:]...), next: l.next}
		l.cells = l.cells[:mid]
		rfr, err := s.p.alloc(pageLeaf)
		if err != nil {
			s.p.unpin(fr, false)
			return nil, 0, false, err
		}
		l.next = rfr.id
		right.encode(rfr.data)
		l.encode(fr.data)
		sep := append([]byte(nil), right.cells[0].key...)
		s.p.unpin(rfr, true)
		s.p.unpin(fr, true)
		return sep, rfr.id, inserted, nil

	case pageInternal:
		in, err := decodeInternal(fr.data)
		if err != nil {
			s.p.unpin(fr, false)
			return nil, 0, false, err
		}
		ci := childIndex(in, key)
		childPromoted, childNew, ins, err := s.insert(in.children[ci], key, value)
		if err != nil {
			s.p.unpin(fr, false)
			return nil, 0, false, err
		}
		if childPromoted == nil {
			s.p.unpin(fr, false)
			return nil, 0, ins, nil
		}
		// Insert the separator after position ci.
		in.keys = append(in.keys, nil)
		copy(in.keys[ci+1:], in.keys[ci:])
		in.keys[ci] = childPromoted
		in.children = append(in.children, 0)
		copy(in.children[ci+2:], in.children[ci+1:])
		in.children[ci+1] = childNew
		if in.encodedSize() <= PageSize {
			in.encode(fr.data)
			s.p.unpin(fr, true)
			return nil, 0, ins, nil
		}
		// Split the internal node; the middle key moves up.
		mid := len(in.keys) / 2
		sep := in.keys[mid]
		right := &internalNode{
			keys:     append([][]byte(nil), in.keys[mid+1:]...),
			children: append([]uint32(nil), in.children[mid+1:]...),
		}
		in.keys = in.keys[:mid]
		in.children = in.children[:mid+1]
		rfr, err := s.p.alloc(pageInternal)
		if err != nil {
			s.p.unpin(fr, false)
			return nil, 0, false, err
		}
		right.encode(rfr.data)
		in.encode(fr.data)
		s.p.unpin(rfr, true)
		s.p.unpin(fr, true)
		return sep, rfr.id, ins, nil

	default:
		s.p.unpin(fr, false)
		return nil, 0, false, fmt.Errorf("btree: unexpected page type %d on insert path", fr.data[0])
	}
}

// Merge performs read-modify-write: the value becomes old ++ operand.
func (s *Store) Merge(key, operand []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	old, err := s.getLocked(key)
	if err != nil && err != kv.ErrNotFound {
		return err
	}
	combined := make([]byte, 0, len(old)+len(operand))
	combined = append(combined, old...)
	combined = append(combined, operand...)
	return s.putLocked(key, combined)
}

// Delete removes key from its leaf. Leaves are not rebalanced (lazy
// deletion, as in many production B-trees); space within pages is reused
// by later inserts and overflow pages return to the free list.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	fr, err := s.descend(key)
	if err != nil {
		return err
	}
	loc := locateLeaf(fr.data, key)
	if !loc.found {
		s.p.unpin(fr, false)
		return nil
	}
	if loc.overflow != 0 {
		if err := s.freeOverflow(loc.overflow); err != nil {
			s.p.unpin(fr, false)
			return err
		}
		// freeOverflow touched the pool; the frame's bytes are still
		// valid (it is pinned), but re-locate in case of future changes.
		loc = locateLeaf(fr.data, key)
	}
	leafRemove(fr.data, loc)
	s.p.unpin(fr, true)
	s.count--
	return nil
}

// Count returns the number of live keys.
func (s *Store) Count() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// ApproximateSize returns the database file size in bytes.
func (s *Store) ApproximateSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(s.p.pageCount) * PageSize
}

// CacheStats reports buffer pool page reads and writes.
func (s *Store) CacheStats() (reads, writes uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.p.reads, s.p.writes
}

// Metrics implements kv.Introspector: engine counters under "btree.*".
// Page reads count frames faulted in from the database file (buffer pool
// misses); page writes count frames written back.
func (s *Store) Metrics() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return map[string]int64{
		"btree.page_reads":  int64(s.p.reads),
		"btree.page_writes": int64(s.p.writes),
		"btree.pages":       int64(s.p.pageCount),
		"btree.keys":        s.count,
		"btree.size_bytes":  int64(s.p.pageCount) * PageSize,
		"btree.snapshots":   s.snapshots,
		"btree.iter_ops":    s.iterOps,
	}
}

// Flush checkpoints the store: all dirty pages and the meta page reach
// the database file and the rollback journal is retired. After Flush
// returns, a crash recovers to exactly this state.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	return s.p.flush()
}

// Close flushes the buffer pool and closes the database file.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.p.close()
}

func leUint32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putUint32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}
