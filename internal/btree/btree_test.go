package btree

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gadget/internal/kv"
)

func testStore(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	if opts.CacheSize == 0 {
		opts.CacheSize = 1 << 20 // small pool: exercise eviction
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := testStore(t, Options{})
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	s.Put([]byte("a"), []byte("1"))
	if v, err := s.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	s.Put([]byte("a"), []byte("2"))
	if v, _ := s.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite = %q", v)
	}
	if s.Count() != 1 {
		t.Fatalf("count = %d", s.Count())
	}
	s.Delete([]byte("a"))
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
	if err := s.Delete([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRMW(t *testing.T) {
	s := testStore(t, Options{})
	k := []byte("bucket")
	s.Merge(k, []byte("a"))
	s.Merge(k, []byte("b"))
	if v, err := s.Get(k); err != nil || string(v) != "ab" {
		t.Fatalf("merged = %q, %v", v, err)
	}
	s.Put(k, []byte("X"))
	s.Merge(k, []byte("y"))
	if v, _ := s.Get(k); string(v) != "Xy" {
		t.Fatalf("put+merge = %q", v)
	}
	s.Delete(k)
	s.Merge(k, []byte("z"))
	if v, _ := s.Get(k); string(v) != "z" {
		t.Fatalf("delete+merge = %q", v)
	}
}

func TestManyKeysSplits(t *testing.T) {
	s := testStore(t, Options{})
	const n = 20000
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		if err := s.Put(k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.p.pageCount < 10 {
		t.Fatalf("expected many pages, got %d", s.p.pageCount)
	}
	for i := 0; i < n; i += 97 {
		k := []byte(fmt.Sprintf("key-%08d", i))
		v, err := s.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, err)
		}
	}
	if s.Count() != n {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestRandomInsertOrder(t *testing.T) {
	s := testStore(t, Options{})
	rng := rand.New(rand.NewSource(3))
	perm := rng.Perm(10000)
	for _, i := range perm {
		s.Put([]byte(fmt.Sprintf("key-%08d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 10000; i += 53 {
		v, err := s.Get([]byte(fmt.Sprintf("key-%08d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%d) = %q, %v", i, v, err)
		}
	}
}

func TestScanOrdered(t *testing.T) {
	s := testStore(t, Options{})
	rng := rand.New(rand.NewSource(8))
	for _, i := range rng.Perm(5000) {
		sk := kv.StateKey{Group: uint64(i / 100), Sub: uint64(i % 100)}
		s.Put(sk.Bytes(), []byte("v"))
	}
	it, err := kv.IterOf(s, kv.StateKey{}, kv.MaxStateKey)
	if err != nil {
		t.Fatal(err)
	}
	var prev kv.StateKey
	count := 0
	for it.Next() {
		if count > 0 && !prev.Less(it.Key()) {
			t.Fatalf("scan out of order: %v after %v", it.Key(), prev)
		}
		prev = it.Key()
		count++
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
	if count != 5000 {
		t.Fatalf("scanned %d", count)
	}
	// Bounded range: one full group.
	got, err := kv.ScanRange(s, kv.StateKey{Group: 7}, kv.StateKey{Group: 7}.GroupEnd())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("group scan returned %d entries", len(got))
	}
	for i, e := range got {
		if e.Key != (kv.StateKey{Group: 7, Sub: uint64(i)}) {
			t.Fatalf("group scan entry %d = %v", i, e.Key)
		}
	}
	// Early termination: abandoning the iterator mid-scan is legal.
	it, err = kv.IterOf(s, kv.StateKey{}, kv.MaxStateKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if !it.Next() {
			t.Fatalf("early-stop iterator exhausted at %d", i)
		}
	}
	if err := it.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLargeValuesOverflow(t *testing.T) {
	s := testStore(t, Options{})
	big := bytes.Repeat([]byte("x"), 100_000)
	s.Put([]byte("big"), big)
	v, err := s.Get([]byte("big"))
	if err != nil || !bytes.Equal(v, big) {
		t.Fatalf("big Get len=%d err=%v", len(v), err)
	}
	// Replace with another big value; overflow pages are recycled.
	pagesAfterFirst := s.p.pageCount
	big2 := bytes.Repeat([]byte("y"), 100_000)
	s.Put([]byte("big"), big2)
	if s.p.pageCount > pagesAfterFirst+2 {
		t.Fatalf("overflow pages not recycled: %d -> %d", pagesAfterFirst, s.p.pageCount)
	}
	if v, _ := s.Get([]byte("big")); !bytes.Equal(v, big2) {
		t.Fatal("replacement corrupted")
	}
	s.Delete([]byte("big"))
	if _, err := s.Get([]byte("big")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("big delete failed")
	}
}

func TestGrowingMergeValue(t *testing.T) {
	// Models a holistic window bucket: repeated merges grow one value
	// across the inline/overflow boundary.
	s := testStore(t, Options{})
	k := []byte("window-bucket")
	var want []byte
	for i := 0; i < 200; i++ {
		op := bytes.Repeat([]byte{byte(i)}, 37)
		s.Merge(k, op)
		want = append(want, op...)
	}
	v, err := s.Get(k)
	if err != nil || !bytes.Equal(v, want) {
		t.Fatalf("merged len=%d want=%d err=%v", len(v), len(want), err)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	s := testStore(t, Options{})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(2000))
		switch rng.Intn(10) {
		case 0:
			s.Delete([]byte(k))
			delete(model, k)
		case 1, 2:
			op := fmt.Sprintf("+%d", i%9)
			s.Merge([]byte(k), []byte(op))
			model[k] += op
		default:
			v := fmt.Sprintf("v%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
	if int(s.Count()) != len(model) {
		t.Fatalf("count = %d want %d", s.Count(), len(model))
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, CacheSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("key-000042"))
	big := bytes.Repeat([]byte("z"), 50000)
	s.Put([]byte("big"), big)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Options{Dir: dir, CacheSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, i := range []int{0, 1, 4999} {
		k := fmt.Sprintf("key-%06d", i)
		v, err := s2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("reopened Get(%s) = %q, %v", k, v, err)
		}
	}
	if _, err := s2.Get([]byte("key-000042")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete lost on reopen")
	}
	if v, _ := s2.Get([]byte("big")); !bytes.Equal(v, big) {
		t.Fatal("overflow value lost on reopen")
	}
}

func TestOpenRejectsGarbageFile(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Corrupt the magic.
	path := dir + "/btree.db"
	data := make([]byte, PageSize)
	if err := writeFileAt(path, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("corrupt meta should fail to open")
	}
}

func writeFileAt(path string, data []byte, off int64) error {
	f, err := openRW(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.WriteAt(data, off)
	return err
}

func TestKeyTooLong(t *testing.T) {
	s := testStore(t, Options{})
	if err := s.Put(make([]byte, MaxKeyLen+1), nil); err == nil {
		t.Fatal("oversized key should fail")
	}
}

func TestClosedErrors(t *testing.T) {
	s := testStore(t, Options{})
	s.Close()
	if err := s.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put = %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestCaps(t *testing.T) {
	s := testStore(t, Options{})
	caps := kv.CapsOf(s)
	if caps.NativeMerge || !caps.InPlaceUpdate || !caps.Snapshots || !caps.RangeScans {
		t.Fatalf("caps = %+v", caps)
	}
}

// Property test: arbitrary op sequences match a map model.
func TestQuickModel(t *testing.T) {
	f := func(ops []struct {
		K   uint16
		V   uint16
		Del bool
	}) bool {
		s := testStore(t, Options{Dir: t.TempDir()})
		defer s.Close()
		model := map[string]string{}
		for _, op := range ops {
			k := fmt.Sprintf("k%05d", op.K%300)
			if op.Del {
				s.Delete([]byte(k))
				delete(model, k)
			} else {
				v := fmt.Sprint(op.V)
				s.Put([]byte(k), []byte(v))
				model[k] = v
			}
		}
		keys := make([]string, 0, len(model))
		for k := range model {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			v, err := s.Get([]byte(k))
			if err != nil || string(v) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeRoundTrip(t *testing.T) {
	l := &leafNode{
		next: 77,
		cells: []cell{
			{key: []byte("a"), val: []byte("1"), vlen: 1},
			{key: []byte("b"), overflow: 9, vlen: 5000},
		},
	}
	page := make([]byte, PageSize)
	l.encode(page)
	got, err := decodeLeaf(page)
	if err != nil {
		t.Fatal(err)
	}
	if got.next != 77 || len(got.cells) != 2 || string(got.cells[0].key) != "a" ||
		got.cells[1].overflow != 9 || got.cells[1].vlen != 5000 {
		t.Fatalf("leaf round trip: %+v", got)
	}

	in := &internalNode{keys: [][]byte{[]byte("m")}, children: []uint32{1, 2}}
	in.encode(page)
	gin, err := decodeInternal(page)
	if err != nil {
		t.Fatal(err)
	}
	if len(gin.keys) != 1 || string(gin.keys[0]) != "m" || gin.children[0] != 1 || gin.children[1] != 2 {
		t.Fatalf("internal round trip: %+v", gin)
	}
	if _, err := decodeLeaf(page); err == nil {
		t.Fatal("decodeLeaf of internal page should fail")
	}
	if _, err := decodeInternal(make([]byte, PageSize)); err == nil {
		t.Fatal("decodeInternal of zero page should fail")
	}
}

func BenchmarkPut(b *testing.B) {
	s := testStore(b, Options{Dir: b.TempDir(), CacheSize: 256 << 20})
	val := bytes.Repeat([]byte("v"), 256)
	var key [16]byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(key[:], fmt.Sprintf("%016d", i%100000))
		s.Put(key[:], val)
	}
}

func BenchmarkGet(b *testing.B) {
	s := testStore(b, Options{Dir: b.TempDir(), CacheSize: 256 << 20})
	val := bytes.Repeat([]byte("v"), 256)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("%016d", i)), val)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("%016d", i%n)))
	}
}

func openRW(path string) (interface {
	WriteAt([]byte, int64) (int, error)
	Close() error
}, error) {
	return osOpenFile(path)
}
