package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gadget/internal/kv"
)

// validTraceBytes encodes a small trace through the production Writer.
func validTraceBytes(t testing.TB) []byte {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	accesses := []kv.Access{
		{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: 0}, Size: 8, Time: 100},
		{Op: kv.OpGet, Key: kv.StateKey{Group: 1, Sub: 0}, Size: 0, Time: 150},
		{Op: kv.OpMerge, Key: kv.StateKey{Group: 7, Sub: 3}, Size: 64, Time: 151},
		{Op: kv.OpFGet, Key: kv.StateKey{Group: 7, Sub: 3}, Size: 0, Time: 151},
		{Op: kv.OpDelete, Key: kv.StateKey{Group: 0, Sub: 9}, Size: 0, Time: 90},
	}
	for _, a := range accesses {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadTrace feeds arbitrary bytes to the binary trace decoder. The
// decoder must return an error (or clean EOF) on malformed input, never
// panic or loop forever.
func FuzzReadTrace(f *testing.F) {
	valid := validTraceBytes(f)
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn mid-record
	f.Add(valid[:8])            // header only
	f.Add(valid[:3])            // torn header
	f.Add([]byte{})
	f.Add([]byte("GDTR garbage that is not a trace"))
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 1<<16; i++ {
			a, err := r.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				return // malformed input must surface as an error
			}
			if int(a.Op) >= kv.NumOps {
				t.Fatalf("decoder produced invalid op %d", a.Op)
			}
		}
		t.Fatal("decoder did not terminate on bounded input")
	})
}

// FuzzReadText does the same for the text interchange codec.
func FuzzReadText(f *testing.F) {
	f.Add("put 1 0 8 100\nget 1 0 0 150\n")
	f.Add("# comment\n\nmerge 7 3 64 151\n")
	f.Add("bogus line\n")
	f.Add("put 1 0 8\n") // wrong field count
	f.Add("put x y z w\n")
	f.Fuzz(func(t *testing.T, data string) {
		ReadText(bytes.NewReader([]byte(data)))
	})
}
