package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"gadget/internal/kv"
)

func randomTrace(n int, seed int64) []kv.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]kv.Access, n)
	t := int64(0)
	for i := range out {
		t += rng.Int63n(100)
		out[i] = kv.Access{
			Op:   kv.Op(rng.Intn(kv.NumOps)),
			Key:  kv.StateKey{Group: uint64(rng.Intn(1000)), Sub: uint64(rng.Int63n(1 << 40))},
			Size: uint32(rng.Intn(4096)),
			Time: t,
		}
	}
	return out
}

func TestBinaryRoundTrip(t *testing.T) {
	want := randomTrace(10000, 1)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, a := range want {
		if err := w.Append(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != 10000 {
		t.Fatalf("count = %d", w.Count())
	}
	// Compactness: well under the naive 29 bytes/record.
	if perRec := float64(buf.Len()) / 10000; perRec > 16 {
		t.Fatalf("encoding too fat: %.1f bytes/record", perRec)
	}
	r := NewReader(&buf)
	for i, wantA := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got != wantA {
			t.Fatalf("record %d = %+v, want %+v", i, got, wantA)
		}
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	want := randomTrace(5000, 2)
	path := filepath.Join(t.TempDir(), "t.trace")
	if err := WriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.trace")
	if err := WriteFile(path, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil || len(got) != 0 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	// Entirely empty file (no header) also reads as empty.
	empty := filepath.Join(t.TempDir(), "zero.trace")
	os.WriteFile(empty, nil, 0o644)
	got, err = ReadFile(empty)
	if err != nil || len(got) != 0 {
		t.Fatalf("zero file: %d, %v", len(got), err)
	}
}

func TestCorruptHeader(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("garbage!")))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestTruncatedBody(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: 2}, Size: 3, Time: 4})
	w.Flush()
	data := buf.Bytes()
	r := NewReader(bytes.NewReader(data[:len(data)-1]))
	if _, err := r.Next(); err == nil {
		// First record may still decode if truncation hit padding; then
		// the next read must fail or EOF.
		if _, err2 := r.Next(); err2 == nil {
			t.Fatal("truncated trace decoded fully")
		}
	}
}

func TestInvalidOpRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(kv.Access{Op: kv.OpGet})
	w.Flush()
	data := buf.Bytes()
	data[8] = 0xEE // clobber the op byte of the first record
	r := NewReader(bytes.NewReader(data))
	if _, err := r.Next(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v", err)
	}
}

func TestTextRoundTrip(t *testing.T) {
	want := randomTrace(500, 3)
	var buf bytes.Buffer
	if err := WriteText(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestTextCommentsAndErrors(t *testing.T) {
	in := "# comment\n\nget 1 2 0 5\n"
	got, err := ReadText(bytes.NewReader([]byte(in)))
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d, %v", len(got), err)
	}
	for _, bad := range []string{
		"get 1 2 0\n",          // missing field
		"frobnicate 1 2 0 5\n", // unknown op
		"get x 2 0 5\n",        // bad group
		"get 1 x 0 5\n",        // bad sub
		"get 1 2 x 5\n",        // bad size
		"get 1 2 0 x\n",        // bad time
	} {
		if _, err := ReadText(bytes.NewReader([]byte(bad))); err == nil {
			t.Fatalf("input %q should fail", bad)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(ops []uint8, groups []uint64, times []int64) bool {
		n := len(ops)
		if len(groups) < n {
			n = len(groups)
		}
		if len(times) < n {
			n = len(times)
		}
		accesses := make([]kv.Access, n)
		for i := 0; i < n; i++ {
			accesses[i] = kv.Access{
				Op:   kv.Op(ops[i] % uint8(kv.NumOps)),
				Key:  kv.StateKey{Group: groups[i], Sub: groups[i] >> 3},
				Size: uint32(groups[i] & 0xFFFF),
				Time: times[i],
			}
		}
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, a := range accesses {
			if w.Append(a) != nil {
				return false
			}
		}
		if w.Flush() != nil {
			return false
		}
		r := NewReader(&buf)
		for _, want := range accesses {
			got, err := r.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err := r.Next()
		return errors.Is(err, io.EOF)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
