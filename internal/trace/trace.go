// Package trace persists state access streams for Gadget's offline mode:
// generate once, replay on demand. The binary format is varint-delta
// encoded (timestamps and keys in streaming traces are strongly locally
// correlated, so traces compress to a few bytes per access); a text codec
// (one access per line) supports interop with external tooling.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"gadget/internal/kv"
	"gadget/internal/vfs"
)

const (
	magic   = uint32(0x47445452) // "GDTR"
	version = 1
)

// ErrCorrupt reports a malformed trace file.
var ErrCorrupt = errors.New("trace: corrupt trace")

// Writer streams accesses to a binary trace.
type Writer struct {
	w         *bufio.Writer
	count     uint64
	prevTime  int64
	prevGroup uint64
	headerOK  bool
	err       error
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 64<<10)}
}

func (tw *Writer) writeHeader() {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], version)
	_, tw.err = tw.w.Write(hdr[:])
	tw.headerOK = true
}

// Append writes one access.
func (tw *Writer) Append(a kv.Access) error {
	if tw.err != nil {
		return tw.err
	}
	if !tw.headerOK {
		tw.writeHeader()
		if tw.err != nil {
			return tw.err
		}
	}
	var buf [1 + 5*binary.MaxVarintLen64]byte
	buf[0] = byte(a.Op)
	n := 1
	n += binary.PutUvarint(buf[n:], zigzag(int64(a.Key.Group)-int64(tw.prevGroup)))
	n += binary.PutUvarint(buf[n:], a.Key.Sub)
	n += binary.PutUvarint(buf[n:], uint64(a.Size))
	n += binary.PutUvarint(buf[n:], zigzag(a.Time-tw.prevTime))
	if _, err := tw.w.Write(buf[:n]); err != nil {
		tw.err = err
		return err
	}
	tw.prevGroup = a.Key.Group
	tw.prevTime = a.Time
	tw.count++
	return nil
}

// Count returns the number of accesses appended.
func (tw *Writer) Count() uint64 { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	if !tw.headerOK {
		tw.writeHeader()
	}
	return tw.w.Flush()
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Reader streams accesses from a binary trace.
type Reader struct {
	r         *bufio.Reader
	prevTime  int64
	prevGroup uint64
	headerOK  bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 64<<10)}
}

// Next returns the next access; io.EOF signals a clean end of trace.
func (tr *Reader) Next() (kv.Access, error) {
	if !tr.headerOK {
		var hdr [8]byte
		if _, err := io.ReadFull(tr.r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return kv.Access{}, io.EOF
			}
			return kv.Access{}, ErrCorrupt
		}
		if binary.LittleEndian.Uint32(hdr[0:]) != magic {
			return kv.Access{}, ErrCorrupt
		}
		if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
			return kv.Access{}, fmt.Errorf("trace: unsupported version %d", v)
		}
		tr.headerOK = true
	}
	opByte, err := tr.r.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return kv.Access{}, io.EOF
		}
		return kv.Access{}, ErrCorrupt
	}
	if int(opByte) >= kv.NumOps {
		return kv.Access{}, ErrCorrupt
	}
	groupDelta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return kv.Access{}, ErrCorrupt
	}
	sub, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return kv.Access{}, ErrCorrupt
	}
	size, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return kv.Access{}, ErrCorrupt
	}
	timeDelta, err := binary.ReadUvarint(tr.r)
	if err != nil {
		return kv.Access{}, ErrCorrupt
	}
	tr.prevGroup = uint64(int64(tr.prevGroup) + unzigzag(groupDelta))
	tr.prevTime += unzigzag(timeDelta)
	return kv.Access{
		Op:   kv.Op(opByte),
		Key:  kv.StateKey{Group: tr.prevGroup, Sub: sub},
		Size: uint32(size),
		Time: tr.prevTime,
	}, nil
}

// WriteFile writes a full trace to path on the real filesystem.
func WriteFile(path string, accesses []kv.Access) error {
	return WriteFileFS(vfs.Default(), path, accesses)
}

// WriteFileFS writes a full trace to path on fsys.
func WriteFileFS(fsys vfs.FS, path string, accesses []kv.Access) error {
	f, err := vfs.Create(fsys, path)
	if err != nil {
		return err
	}
	w := NewWriter(f)
	for _, a := range accesses {
		if err := w.Append(a); err != nil {
			f.Close()
			return err
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile loads a full trace from path on the real filesystem.
func ReadFile(path string) ([]kv.Access, error) {
	return ReadFileFS(vfs.Default(), path)
}

// ReadFileFS loads a full trace from path on fsys.
func ReadFileFS(fsys vfs.FS, path string) ([]kv.Access, error) {
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := NewReader(f)
	var out []kv.Access
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
}

// WriteText writes a trace as "op group sub size time" lines — the
// interchange format for replaying externally generated workloads.
func WriteText(w io.Writer, accesses []kv.Access) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	for _, a := range accesses {
		if _, err := fmt.Fprintf(bw, "%s %d %d %d %d\n", a.Op, a.Key.Group, a.Key.Sub, a.Size, a.Time); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses the text format produced by WriteText.
func ReadText(r io.Reader) ([]kv.Access, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var out []kv.Access
	lineNo := 0
	ops := make(map[string]kv.Op, kv.NumOps)
	for op := kv.Op(0); int(op) < kv.NumOps; op++ {
		ops[op.String()] = op // inverse of the %s WriteText emits
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: want 5 fields, got %d", lineNo, len(fields))
		}
		op, ok := ops[fields[0]]
		if !ok {
			return nil, fmt.Errorf("trace: line %d: unknown op %q", lineNo, fields[0])
		}
		group, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		sub, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		size, err := strconv.ParseUint(fields[3], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		tm, err := strconv.ParseInt(fields[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		out = append(out, kv.Access{Op: op, Key: kv.StateKey{Group: group, Sub: sub}, Size: uint32(size), Time: tm})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
