package stores

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/remote"
)

// chaosOp is one step of the differential sequence.
type chaosOp struct {
	kind byte
	key  int
	val  string
}

func chaosOps(seed int64, n, keys int) []chaosOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]chaosOp, n)
	for i := range ops {
		ops[i] = chaosOp{
			kind: byte(rng.Intn(10)),
			key:  rng.Intn(keys),
			val:  fmt.Sprintf("c%d-%04d-%04x", seed, i, rng.Intn(1<<16)),
		}
	}
	return ops
}

func applyChaosOp(s kv.Store, o chaosOp) error {
	key := []byte(fmt.Sprintf("key-%03d", o.key))
	switch o.kind {
	case 0:
		return s.Delete(key)
	case 1, 2, 3:
		return s.Merge(key, []byte(o.val))
	case 4, 5, 6, 7:
		return s.Put(key, []byte(o.val))
	default:
		_, err := s.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return nil
		}
		return err
	}
}

// Every engine and the remote client, wrapped in chaos + resilience,
// must converge to the memstore oracle: retries of injected transient
// faults never duplicate a merge and never drop an effect.
func TestChaosDifferentialAllEngines(t *testing.T) {
	seeds := []int64{11, 97}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			backing := memstore.New()
			srv, err := remote.Serve(backing, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer func() { srv.Close(); backing.Close() }()

			// A second server whose *backing store* is fault-wrapped: its
			// injected errors cross the wire as transient statuses and the
			// client-side retry layer must absorb them.
			chaoticBacking := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{Seed: seed, ErrorRate: 0.05})
			chaoticSrv, err := remote.Serve(chaoticBacking, "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer func() { chaoticSrv.Close(); chaoticBacking.Close() }()

			const nOps, nKeys = 1200, 150
			ops := chaosOps(seed, nOps, nKeys)

			oracle := memstore.New()
			defer oracle.Close()

			mk := func(name string) Config {
				cfg := Config{
					Engine: name, Dir: t.TempDir(),
					MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
					LogMemBytes: 8 << 20, IndexBuckets: 64,
					// Fault rates in the 1-10% band; retry budget sized so
					// op-level exhaustion is effectively impossible, breaker
					// disabled so the sequence is never refused.
					Chaos: &ChaosConfig{Seed: seed, ErrorRate: 0.05, LatencyRate: 0.02, LatencyUs: 10},
					Resilience: &ResilienceConfig{
						MaxRetries: 12, BackoffBaseUs: 1, BackoffMaxMs: 1,
						JitterSeed: seed, BreakerThreshold: -1,
					},
				}
				if name == "remote" {
					cfg.Addr = srv.Addr()
				}
				if name == "remote-chaotic-server" {
					// Faults are injected behind the server here, so the
					// client side carries only the retry middleware.
					cfg.Engine = "remote"
					cfg.Addr = chaoticSrv.Addr()
					cfg.Chaos = nil
				}
				return cfg
			}

			engines := map[string]kv.Store{}
			for _, name := range []string{"rocksdb", "lethe", "faster", "berkeleydb", "memstore", "remote", "remote-chaotic-server"} {
				s, err := Open(mk(name))
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				engines[name] = s
			}

			for i, o := range ops {
				if err := applyChaosOp(oracle, o); err != nil {
					t.Fatalf("oracle: op %d: %v", i, err)
				}
				for name, s := range engines {
					if err := applyChaosOp(s, o); err != nil {
						t.Fatalf("%s: op %d: %v (retries should absorb injected faults)", name, i, err)
					}
				}
			}

			for k := 0; k < nKeys; k++ {
				key := []byte(fmt.Sprintf("key-%03d", k))
				want, wantErr := oracle.Get(key)
				for name, s := range engines {
					got, err := s.Get(key)
					if errors.Is(wantErr, kv.ErrNotFound) {
						if !errors.Is(err, kv.ErrNotFound) {
							t.Fatalf("%s: key %s should be absent, got %q (err %v)", name, key, got, err)
						}
						continue
					}
					if err != nil || string(got) != string(want) {
						t.Fatalf("%s: Get(%s) = %q, %v; want %q (dropped or duplicated effect)", name, key, got, err, want)
					}
				}
			}

			// Chaos must actually have fired, and resilience absorbed it.
			for name, s := range engines {
				rep, ok := s.(kv.ResilienceReporter)
				if !ok {
					t.Fatalf("%s: Open with Resilience did not yield a ResilienceReporter", name)
				}
				c := rep.ResilienceCounters()
				if c.Retries == 0 {
					t.Errorf("%s: no retries recorded at 5%% fault rate", name)
				}
				if c.Degraded != 0 {
					t.Errorf("%s: %d ops exhausted their retry budget", name, c.Degraded)
				}
			}
		})
	}
}

// An outage window trips the circuit breaker; ops refused during the
// window fail transiently and are skipped on the oracle, and the states
// still converge afterward — the breaker loses no applied effects.
func TestChaosOutageBreakerDifferential(t *testing.T) {
	const nOps, nKeys = 800, 80
	ops := chaosOps(23, nOps, nKeys)

	oracle := memstore.New()
	defer oracle.Close()

	s, err := Open(Config{
		Engine: "rocksdb", Dir: t.TempDir(),
		MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
		Chaos: &ChaosConfig{Seed: 23, ErrorRate: 1e-9, OutageAfterOps: 200, OutageOps: 300},
		Resilience: &ResilienceConfig{
			MaxRetries: 2, BackoffBaseUs: 1, BackoffMaxMs: 1,
			JitterSeed: 23, BreakerThreshold: 4, BreakerCooldownMs: 10_000,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	failed := 0
	for i, o := range ops {
		err := applyChaosOp(s, o)
		if err != nil {
			if !kv.Transient(err) {
				t.Fatalf("op %d: outage produced a fatal error: %v", i, err)
			}
			failed++
			continue // chaos fails before applying: skip the oracle too
		}
		if err := applyChaosOp(oracle, o); err != nil {
			t.Fatalf("oracle: op %d: %v", i, err)
		}
	}
	if failed == 0 {
		t.Fatal("outage window injected no failures")
	}

	c := s.(kv.ResilienceReporter).ResilienceCounters()
	if c.BreakerTrips == 0 {
		t.Fatal("outage did not trip the breaker")
	}
	if c.FastFails == 0 {
		t.Fatal("open breaker did not fast-fail any ops")
	}

	// Verify below the middleware: the breaker is still open (its
	// cooldown outlives the test on purpose), so read the raw engine.
	raw := s.(*kv.ResilientStore).Inner().(*kv.ChaosStore).Inner()
	for k := 0; k < nKeys; k++ {
		key := []byte(fmt.Sprintf("key-%03d", k))
		want, wantErr := oracle.Get(key)
		got, err := raw.Get(key)
		if errors.Is(wantErr, kv.ErrNotFound) {
			if !errors.Is(err, kv.ErrNotFound) {
				t.Fatalf("key %s should be absent, got %q (err %v)", key, got, err)
			}
			continue
		}
		if err != nil || string(got) != string(want) {
			t.Fatalf("Get(%s) = %q, %v; want %q", key, got, err, want)
		}
	}
}

// Open validates chaos and resilience configuration.
func TestOpenValidatesMiddlewareConfig(t *testing.T) {
	if _, err := Open(Config{Engine: "memstore", Chaos: &ChaosConfig{ErrorRate: 1.5}}); err == nil {
		t.Fatal("error_rate > 1 accepted")
	}
	if _, err := Open(Config{Engine: "memstore", Resilience: &ResilienceConfig{MaxRetries: -2}}); err == nil {
		t.Fatal("max_retries < -1 accepted")
	}
}
