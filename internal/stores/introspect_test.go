package stores

import (
	"fmt"
	"strings"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/lsm"
	"gadget/internal/remote"
)

// doWorkload applies a fixed differential workload: puts distinct keys,
// gets half of them back, deletes a quarter.
func doWorkload(t *testing.T, s kv.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("value")); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n/2; i++ {
		if _, err := s.Get([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
	}
	for i := 0; i < n/4; i++ {
		if err := s.Delete([]byte(fmt.Sprintf("key-%06d", i))); err != nil {
			t.Fatalf("delete %d: %v", i, err)
		}
	}
}

// TestIntrospectorAllEngines asserts every registered engine implements
// kv.Introspector and that its counters move by the expected amount
// under a known workload (differential, not absolute, so background
// activity can't break it).
func TestIntrospectorAllEngines(t *testing.T) {
	const n = 200
	cases := []struct {
		engine string
		// exact per-op counter expectations (delta == value)
		exact map[string]int64
		// counters that must merely move (delta > 0)
		moved []string
	}{
		{"rocksdb", map[string]int64{"lsm.puts": n, "lsm.gets": n / 2, "lsm.deletes": n / 4}, nil},
		{"lethe", map[string]int64{"lsm.puts": n, "lsm.gets": n / 2, "lsm.deletes": n / 4}, nil},
		{"faster", map[string]int64{"faster.puts": n, "faster.gets": n / 2, "faster.deletes": n / 4}, []string{"faster.appends"}},
		{"berkeleydb", map[string]int64{"btree.keys": n - n/4}, []string{"btree.pages"}},
		{"memstore", map[string]int64{"memstore.puts": n, "memstore.gets": n / 2, "memstore.deletes": n / 4}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.engine, func(t *testing.T) {
			s, err := Open(Config{Engine: tc.engine, Dir: t.TempDir()})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			base := kv.MetricsOf(s)
			if base == nil {
				t.Fatalf("engine %s does not implement kv.Introspector", tc.engine)
			}
			doWorkload(t, s, n)
			delta := kv.MetricsDelta(kv.MetricsOf(s), base)
			for key, want := range tc.exact {
				if got := delta[key]; got != want {
					t.Errorf("%s delta = %d, want %d (full delta %v)", key, got, want, delta)
				}
			}
			for _, key := range tc.moved {
				if delta[key] <= 0 {
					t.Errorf("%s delta = %d, want > 0", key, delta[key])
				}
			}
			// Key-set stability: a second snapshot exposes the same keys.
			again := kv.MetricsOf(s)
			for k := range base {
				if _, ok := again[k]; !ok {
					t.Errorf("metric key %q disappeared between snapshots", k)
				}
			}
		})
	}
}

// TestLSMCompactionCountersMove forces flushes and a compaction and
// asserts the corresponding counters increment — the acceptance check
// that introspection reflects real engine activity.
func TestLSMCompactionCountersMove(t *testing.T) {
	s, err := Open(Config{Engine: "rocksdb", Dir: t.TempDir(), MemtableBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	db := s.(*lsm.DB)
	base := kv.MetricsOf(s)
	val := make([]byte, 256)
	for i := 0; i < 500; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i%100)), val); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	delta := kv.MetricsDelta(kv.MetricsOf(s), base)
	if delta["lsm.flushes"] <= 0 {
		t.Errorf("lsm.flushes delta = %d, want > 0", delta["lsm.flushes"])
	}
	if delta["lsm.compactions"] <= 0 {
		t.Errorf("lsm.compactions delta = %d, want > 0", delta["lsm.compactions"])
	}
	if delta["lsm.bytes_compacted"] <= 0 {
		t.Errorf("lsm.bytes_compacted delta = %d, want > 0", delta["lsm.bytes_compacted"])
	}
	// Reads after compaction touch tables and the block cache.
	for i := 0; i < 100; i++ {
		s.Get([]byte(fmt.Sprintf("key-%06d", i)))
	}
	delta = kv.MetricsDelta(kv.MetricsOf(s), base)
	if delta["lsm.bloom_checks"] <= 0 {
		t.Errorf("lsm.bloom_checks delta = %d, want > 0", delta["lsm.bloom_checks"])
	}
	if delta["lsm.cache_hits"]+delta["lsm.cache_misses"] <= 0 {
		t.Errorf("block cache saw no traffic: %v", delta)
	}
}

// TestWrapperMetricsMerge opens memstore wrapped in chaos + resilience
// middleware and asserts one Metrics call surfaces all three layers.
func TestWrapperMetricsMerge(t *testing.T) {
	s, err := Open(Config{
		Engine:     "memstore",
		Chaos:      &ChaosConfig{Seed: 42, ErrorRate: 0.2},
		Resilience: &ResilienceConfig{MaxRetries: 5, BreakerThreshold: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := kv.MetricsOf(s)
	for _, prefix := range []string{"resilient.", "chaos.", "memstore."} {
		found := false
		for k := range base {
			if strings.HasPrefix(k, prefix) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("wrapped store metrics missing %s* keys: %v", prefix, base)
		}
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatalf("put through resilient(chaos(memstore)): %v", err)
		}
	}
	delta := kv.MetricsDelta(kv.MetricsOf(s), base)
	if delta["memstore.puts"] != n {
		t.Errorf("memstore.puts delta = %d, want %d", delta["memstore.puts"], n)
	}
	if delta["chaos.injected_errors"] <= 0 {
		t.Errorf("chaos.injected_errors delta = %d, want > 0 at 20%% error rate", delta["chaos.injected_errors"])
	}
	if delta["resilient.retries"] < delta["chaos.injected_errors"] {
		t.Errorf("resilient.retries (%d) < chaos.injected_errors (%d): every injected error should be retried",
			delta["resilient.retries"], delta["chaos.injected_errors"])
	}
}

// TestRemoteIntrospection runs a live client/server pair and checks both
// ends' counters: the client counts its requests, the server counts what
// it decoded and merges the backing engine's metrics.
func TestRemoteIntrospection(t *testing.T) {
	backing, err := Open(Config{Engine: "memstore"})
	if err != nil {
		t.Fatal(err)
	}
	defer backing.Close()
	srv, err := remote.Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Open(Config{Engine: "remote", Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cbase := kv.MetricsOf(client)
	sbase := srv.Metrics()
	if cbase == nil {
		t.Fatal("remote client does not implement kv.Introspector")
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := client.Put([]byte(fmt.Sprintf("key-%06d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	cdelta := kv.MetricsDelta(kv.MetricsOf(client), cbase)
	if cdelta["remote.requests"] != n {
		t.Errorf("remote.requests delta = %d, want %d", cdelta["remote.requests"], n)
	}
	if cdelta["remote.dials"] != 0 {
		t.Errorf("remote.dials delta = %d, want 0 (no reconnects on a healthy link)", cdelta["remote.dials"])
	}
	sdelta := kv.MetricsDelta(srv.Metrics(), sbase)
	if sdelta["remote_server.requests"] != n {
		t.Errorf("remote_server.requests delta = %d, want %d", sdelta["remote_server.requests"], n)
	}
	if sdelta["memstore.puts"] != n {
		t.Errorf("server-side memstore.puts delta = %d, want %d (backing metrics must merge)", sdelta["memstore.puts"], n)
	}
}
