package stores

import (
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/remote"
)

func TestOpenAllEngines(t *testing.T) {
	backing := memstore.New()
	srv, err := remote.Serve(backing, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close(); backing.Close() })
	for _, engine := range append(Engines(), "lsm", "btree") {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			s, err := Open(Config{Engine: engine, Dir: t.TempDir(), Addr: srv.Addr()})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if err := s.Put([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			v, err := s.Get([]byte("k"))
			if err != nil || string(v) != "v" {
				t.Fatalf("Get = %q, %v", v, err)
			}
			if err := s.Merge([]byte("k"), []byte("w")); err != nil {
				t.Fatal(err)
			}
			if v, _ := s.Get([]byte("k")); string(v) != "vw" {
				t.Fatalf("merge = %q", v)
			}
			if err := s.Delete([]byte("k")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get([]byte("k")); err != kv.ErrNotFound {
				t.Fatalf("post-delete = %v", err)
			}
		})
	}
}

func TestOpenUnknownEngine(t *testing.T) {
	if _, err := Open(Config{Engine: "nope"}); err == nil {
		t.Fatal("unknown engine should fail")
	}
	if _, err := Open(Config{Engine: "remote"}); err == nil {
		t.Fatal("remote engine without addr should fail")
	}
}

func TestCustomSizes(t *testing.T) {
	s, err := Open(Config{
		Engine: "lethe", Dir: t.TempDir(),
		MemtableBytes: 1 << 16, CacheBytes: 1 << 16, DeleteThresholdMs: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	f, err := Open(Config{Engine: "faster", Dir: t.TempDir(), LogMemBytes: 8 << 20, IndexBuckets: 64})
	if err != nil {
		t.Fatal(err)
	}
	f.Close()
}
