package stores

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/btree"
	"gadget/internal/faster"
	"gadget/internal/kv"
	"gadget/internal/lethe"
	"gadget/internal/lsm"
	"gadget/internal/memstore"
	"gadget/internal/vfs"
)

// The crash-consistency suite: run a deterministic workload against each
// durable engine on a fault-injecting in-memory filesystem, "crash" at a
// swept fault point, reopen from the surviving files, and differentially
// verify the recovered state against memstore oracles replaying workload
// prefixes.
//
// The durability contract verified per engine (also in DESIGN.md):
//
//   - rocksdb/lethe with WAL+SyncWrites: every acknowledged op is
//     durable; recovery lands on exactly the acknowledged prefix, except
//     that the single in-flight op at the crash may have persisted.
//   - berkeleydb (B+Tree): recovery lands on the last successful
//     checkpoint (Flush); ops after it are lost, never torn.
//   - faster: durable only across a clean Close; a crash while open
//     recovers the last closed state or empty.
//
// In every case the reopen must succeed — a crash must never brick the
// store — and the store must accept new writes afterwards.

const (
	crashOps        = 160
	crashBarrier    = 20 // ops between durability barriers
	crashKeys       = 24
	crashProbeValue = "post-recovery-probe"
)

type crashOp struct {
	kind byte // 0 delete, 1..2 merge, else put
	key  int
	val  string
}

func makeCrashOps(seed int64) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]crashOp, crashOps)
	for i := range ops {
		ops[i] = crashOp{
			kind: byte(rng.Intn(8)),
			key:  rng.Intn(crashKeys),
			val:  fmt.Sprintf("v%03d-%04x", i, rng.Intn(1<<16)),
		}
	}
	return ops
}

func crashKey(i int) []byte { return []byte(fmt.Sprintf("key-%02d", i)) }

func applyCrashOp(s kv.Store, o crashOp) error {
	switch o.kind {
	case 0:
		return s.Delete(crashKey(o.key))
	case 1, 2:
		return s.Merge(crashKey(o.key), []byte(o.val))
	default:
		return s.Put(crashKey(o.key), []byte(o.val))
	}
}

// oracleAfter replays the first n ops into a fresh memstore.
func oracleAfter(ops []crashOp, n int) *memstore.Store {
	m := memstore.New()
	for _, o := range ops[:n] {
		applyCrashOp(m, o)
	}
	return m
}

// sameState reports whether store and oracle agree on every key in the
// workload's keyspace.
func sameState(s, oracle kv.Store) bool {
	for k := 0; k < crashKeys; k++ {
		want, wantErr := oracle.Get(crashKey(k))
		got, err := s.Get(crashKey(k))
		if errors.Is(wantErr, kv.ErrNotFound) {
			if !errors.Is(err, kv.ErrNotFound) {
				return false
			}
			continue
		}
		if err != nil || string(got) != string(want) {
			return false
		}
	}
	return true
}

// crashEngine describes one durable engine under test. barrier is the
// engine's durability point; it may replace the store (faster's barrier
// is a clean close-and-reopen). strict engines (WAL + sync) additionally
// guarantee per-op durability between barriers.
type crashEngine struct {
	name    string
	strict  bool
	open    func(fsys vfs.FS, dir string) (kv.Store, error)
	barrier func(fsys vfs.FS, dir string, s kv.Store) (kv.Store, error)
}

func lsmBarrier(fsys vfs.FS, dir string, s kv.Store) (kv.Store, error) {
	db := s.(*lsm.DB)
	if err := db.Flush(); err != nil {
		return s, err
	}
	return s, db.Compact()
}

func crashEngines() []crashEngine {
	return []crashEngine{
		{
			name:   "rocksdb-wal-sync",
			strict: true,
			open: func(fsys vfs.FS, dir string) (kv.Store, error) {
				// Memtable large enough that flushes happen only at
				// barriers, keeping barrier states exact prefixes.
				return lsm.Open(lsm.Options{
					Dir: dir, FS: fsys, WAL: true, SyncWrites: true,
					MemtableSize: 1 << 30, L0CompactionTrigger: 2,
				})
			},
			barrier: lsmBarrier,
		},
		{
			name:   "lethe-wal-sync",
			strict: true,
			open: func(fsys vfs.FS, dir string) (kv.Store, error) {
				return lethe.Open(lethe.Options{LSM: lsm.Options{
					Dir: dir, FS: fsys, WAL: true, SyncWrites: true,
					MemtableSize: 1 << 30, L0CompactionTrigger: 2,
				}})
			},
			barrier: lsmBarrier,
		},
		{
			name: "berkeleydb",
			open: func(fsys vfs.FS, dir string) (kv.Store, error) {
				// Tiny pool so evictions exercise the rollback journal
				// between checkpoints.
				return btree.Open(btree.Options{Dir: dir, FS: fsys, CacheSize: 16 * 4096})
			},
			barrier: func(fsys vfs.FS, dir string, s kv.Store) (kv.Store, error) {
				return s, s.(*btree.Store).Flush()
			},
		},
		{
			name: "faster",
			open: func(fsys vfs.FS, dir string) (kv.Store, error) {
				return faster.Open(faster.Options{Dir: dir, FS: fsys, LogMemBudget: 8 << 20, IndexBuckets: 64})
			},
			barrier: func(fsys vfs.FS, dir string, s kv.Store) (kv.Store, error) {
				if err := s.Close(); err != nil {
					return s, err
				}
				return faster.Open(faster.Options{Dir: dir, FS: fsys, LogMemBudget: 8 << 20, IndexBuckets: 64})
			},
		},
	}
}

// runToCrash drives the workload on a faulty filesystem until the first
// injected error (or completion), then simulates the crash. It returns
// how many data ops were acknowledged, how many were attempted, and the
// op counts of successful barriers.
func runToCrash(eng crashEngine, ffs *vfs.FaultFS, dir string, ops []crashOp) (done, tried int, barriers []int, openFailed bool) {
	s, err := eng.open(ffs, dir)
	if err != nil {
		ffs.Crash()
		return 0, 0, nil, true
	}
	barriers = []int{0}
	for i, o := range ops {
		if i > 0 && i%crashBarrier == 0 {
			s, err = eng.barrier(ffs, dir, s)
			if err != nil {
				break
			}
			barriers = append(barriers, i)
		}
		if err = applyCrashOp(s, o); err != nil {
			tried = done + 1
			break
		}
		done++
	}
	if tried == 0 {
		tried = done
	}
	// The crash: every buffer that never reached the filesystem is lost,
	// and nothing can be written from here on. The store is abandoned
	// without Close, like a killed process.
	ffs.Crash()
	return done, tried, barriers, false
}

// verifyRecovery reopens the surviving files on a clean filesystem and
// checks the recovered state against the admissible oracle prefixes.
func verifyRecovery(t *testing.T, eng crashEngine, base vfs.FS, dir string, ops []crashOp, done, tried int, barriers []int) {
	t.Helper()
	r, err := eng.open(base, dir)
	if err != nil {
		t.Fatalf("%s: reopen after crash failed (store bricked): %v", eng.name, err)
	}
	defer r.Close()

	var candidates []int
	if eng.strict {
		candidates = []int{done, tried}
	} else {
		candidates = append(candidates, 0) // faster may recover empty
		candidates = append(candidates, barriers...)
	}
	matched := -1
	for _, n := range candidates {
		oracle := oracleAfter(ops, n)
		ok := sameState(r, oracle)
		oracle.Close()
		if ok {
			matched = n
			break
		}
	}
	if matched < 0 {
		t.Fatalf("%s: recovered state matches no admissible prefix (done=%d tried=%d barriers=%v)",
			eng.name, done, tried, barriers)
	}

	// The store must stay usable after recovery.
	probe := []byte("probe-key")
	if err := r.Put(probe, []byte(crashProbeValue)); err != nil {
		t.Fatalf("%s: put after recovery: %v", eng.name, err)
	}
	got, err := r.Get(probe)
	if err != nil || string(got) != crashProbeValue {
		t.Fatalf("%s: get after recovery = %q, %v", eng.name, got, err)
	}
}

// TestCleanShutdownDurability is the baseline: with no faults, a closed
// store must reopen to exactly the full workload state.
func TestCleanShutdownDurability(t *testing.T) {
	ops := makeCrashOps(1)
	for _, eng := range crashEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			base := vfs.NewMemFS()
			s, err := eng.open(base, "db")
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range ops {
				if err := applyCrashOp(s, o); err != nil {
					t.Fatal(err)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := eng.open(base, "db")
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			oracle := oracleAfter(ops, len(ops))
			defer oracle.Close()
			if !sameState(r, oracle) {
				t.Fatal("clean close+reopen lost data")
			}
		})
	}
}

// TestLostRenameDurability sweeps the rename-durability gap: the Nth
// rename the engine issues is applied, but its directory entry is
// rolled back at the crash unless the engine synced the new parent
// directory afterwards — the classic rename-without-dir-fsync hole.
// The workload itself completes without errors (the rename "succeeds"),
// so strict engines must recover the full acknowledged state: an SST,
// manifest, or checkpoint rename that silently relied on the directory
// entry being durable shows up here as a missing-file reopen failure or
// a state rollback.
func TestLostRenameDurability(t *testing.T) {
	ops := makeCrashOps(1)
	for _, eng := range crashEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			calib := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
			done, _, _, openFailed := runToCrash(eng, calib, "db", ops)
			if openFailed || done != len(ops) {
				t.Fatalf("calibration run failed: done=%d openFailed=%v", done, openFailed)
			}
			renames := calib.Renames()
			if renames == 0 {
				t.Skip("engine performs no renames in this workload")
			}
			stride := 1
			if testing.Short() {
				stride = renames/8 + 1
			}
			for n := 1; n <= renames; n += stride {
				ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{LoseRenameN: n})
				d, tr, barriers, openFailed := runToCrash(eng, ffs, "db", ops)
				if openFailed {
					d, tr, barriers = 0, 0, []int{0}
				}
				verifyRecovery(t, eng, ffs.Inner(), "db", ops, d, tr, barriers)
			}
		})
	}
}

// TestCrashConsistency sweeps fault points across five fault kinds for
// every durable engine: failed writes, torn writes, failed fsyncs,
// failed renames, and disk-full. Because the sweep covers every write,
// sync, and rename the workload issues, faults land inside WAL appends,
// memtable flushes, compactions, checkpoint page writes, journal
// appends, and metadata commits alike.
func TestCrashConsistency(t *testing.T) {
	ops := makeCrashOps(1)
	for _, eng := range crashEngines() {
		eng := eng
		t.Run(eng.name, func(t *testing.T) {
			// Fault-free calibration run counts the I/O the workload
			// performs; the sweeps below target each counted operation.
			calib := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
			done, _, _, openFailed := runToCrash(eng, calib, "db", ops)
			if openFailed || done != len(ops) {
				t.Fatalf("calibration run failed: done=%d openFailed=%v", done, openFailed)
			}
			writes, syncs, renames := calib.Writes(), calib.Syncs(), calib.Renames()
			bytes := calib.BytesWritten()
			if writes == 0 || syncs == 0 {
				t.Fatalf("calibration: no writes/syncs counted (writes=%d syncs=%d)", writes, syncs)
			}

			sweep := func(kind string, count int, plan func(n int) vfs.FaultPlan) {
				if count == 0 {
					if kind == "rename" {
						return // engine performs no renames in this workload
					}
					t.Fatalf("%s: nothing to sweep", kind)
				}
				stride := 1
				if testing.Short() {
					stride = count/8 + 1
				} else if count > 64 {
					stride = count/64 + 1
				}
				for n := 1; n <= count; n += stride {
					p := plan(n)
					p.CrashAfterFault = true
					ffs := vfs.NewFaultFS(vfs.NewMemFS(), p)
					d, tr, barriers, openFailed := runToCrash(eng, ffs, "db", ops)
					if !ffs.Faulted() {
						continue // fault point past what this run needed
					}
					if openFailed {
						d, tr, barriers = 0, 0, []int{0}
					}
					verifyRecovery(t, eng, ffs.Inner(), "db", ops, d, tr, barriers)
				}
			}

			sweep("write-fail", writes, func(n int) vfs.FaultPlan {
				return vfs.FaultPlan{FailWriteN: n}
			})
			sweep("torn-write", writes, func(n int) vfs.FaultPlan {
				return vfs.FaultPlan{FailWriteN: n, Torn: true, Seed: int64(n)}
			})
			sweep("sync-fail", syncs, func(n int) vfs.FaultPlan {
				return vfs.FaultPlan{FailSyncN: n}
			})
			sweep("rename-fail", renames, func(n int) vfs.FaultPlan {
				return vfs.FaultPlan{FailRenameN: n}
			})
			// Disk-full: cut the budget at a spread of fractions of the
			// calibrated total so the device fills mid-workload.
			fracs := []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}
			for _, f := range fracs {
				budget := bytes * f / 100
				ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{DiskFullBytes: budget, CrashAfterFault: true})
				d, tr, barriers, openFailed := runToCrash(eng, ffs, "db", ops)
				if !ffs.Faulted() {
					continue
				}
				if openFailed {
					d, tr, barriers = 0, 0, []int{0}
				}
				verifyRecovery(t, eng, ffs.Inner(), "db", ops, d, tr, barriers)
			}
		})
	}
}
