package stores

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
	"gadget/internal/vfs"
)

// The differential crash-recovery suite: replay a seeded workload
// through scripted mid-run crashes on every durable engine, recover
// from portable checkpoints, finish the trace, and compare the final
// state byte-for-byte against a memstore oracle that never crashed.
// Crashes sever the attempt's FaultFS (in-flight state dies as in a
// killed process); checkpoints live on the inner MemFS, modeling the
// durable external storage that survives such crashes.

func recoveryAccesses(n int, seed int64) []kv.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]kv.Access, 0, n)
	for i := 0; i < n; i++ {
		a := kv.Access{
			Key:  kv.StateKey{Group: uint64(rng.Intn(12)), Sub: uint64(rng.Intn(48))},
			Size: uint32(8 + rng.Intn(48)),
			Time: int64(i),
		}
		switch rng.Intn(10) {
		case 0:
			a.Op = kv.OpDelete
		case 1, 2:
			a.Op = kv.OpGet
		case 3, 4:
			a.Op = kv.OpMerge
		default:
			a.Op = kv.OpPut
		}
		out = append(out, a)
	}
	return out
}

func recoveryOracle(t *testing.T, trace []kv.Access) []kv.Entry {
	t.Helper()
	s := memstore.New()
	defer s.Close()
	var keyBuf [kv.KeyLen]byte
	for _, a := range trace {
		if _, err := replay.Apply(s, a, keyBuf[:]); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := kv.ScanAll(s)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func entriesEqual(t *testing.T, s kv.Store, want []kv.Entry) {
	t.Helper()
	got, err := kv.ScanAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered state has %d entries, oracle has %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("entry %d: got %v=%q, want %v=%q",
				i, got[i].Key, got[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// crashingFactory opens engine attempts on fresh FaultFS instances over
// the shared world, each in its own directory. The returned last
// pointer tracks the live store for final-state inspection.
func crashingFactory(world *vfs.MemFS, engine string, last *kv.Store) replay.StoreFactory {
	return func(attempt int) (replay.Attempt, error) {
		ffs := vfs.NewFaultFS(world, vfs.FaultPlan{})
		s, err := Open(Config{
			Engine: engine,
			Dir:    fmt.Sprintf("db/attempt-%d", attempt),
			FS:     ffs,
		})
		if err != nil {
			return replay.Attempt{}, err
		}
		*last = s
		return replay.Attempt{Store: s, Crash: func() {
			ffs.Crash()
			s.Close()
		}}, nil
	}
}

func durableEngines() []string {
	return []string{"rocksdb", "lethe", "faster", "berkeleydb"}
}

// TestCrashRecoveryDifferential crashes every durable engine at
// randomized op indices, recovers from checkpoints, and requires the
// finished state to equal the never-crashed oracle.
func TestCrashRecoveryDifferential(t *testing.T) {
	trace := recoveryAccesses(3000, 11)
	want := recoveryOracle(t, trace)
	rng := rand.New(rand.NewSource(77))
	for _, engine := range durableEngines() {
		// Two randomized, strictly increasing crash points per engine,
		// drawn outside the subtest so the sequence is deterministic.
		a := uint64(1 + rng.Intn(1400))
		b := a + uint64(1+rng.Intn(1400))
		t.Run(engine, func(t *testing.T) {
			world := vfs.NewMemFS()
			ck := &kv.Checkpointer{FS: world, Dir: "checkpoints", Engine: engine}
			var last kv.Store
			res, err := replay.RunWithRecovery(crashingFactory(world, engine, &last), trace,
				replay.RecoveryOptions{
					CheckpointEvery: 500,
					Checkpointer:    ck,
					CrashAtOps:      []uint64{a, b},
				})
			if err != nil {
				t.Fatalf("crash points {%d,%d}: %v", a, b, err)
			}
			defer last.Close()
			if res.Recoveries != 2 {
				t.Fatalf("Recoveries = %d, want 2 (crash points {%d,%d})", res.Recoveries, a, b)
			}
			if res.ReplayedOps > 2*500 {
				t.Fatalf("ReplayedOps = %d: replayed more than one interval per crash", res.ReplayedOps)
			}
			entriesEqual(t, last, want)
		})
	}
}

// TestCrashRecoveryFullReplay drops the checkpointer: recovery must
// degrade to replaying the whole prefix and still converge.
func TestCrashRecoveryFullReplay(t *testing.T) {
	trace := recoveryAccesses(1200, 12)
	want := recoveryOracle(t, trace)
	for _, engine := range durableEngines() {
		t.Run(engine, func(t *testing.T) {
			world := vfs.NewMemFS()
			var last kv.Store
			res, err := replay.RunWithRecovery(crashingFactory(world, engine, &last), trace,
				replay.RecoveryOptions{CrashAtOps: []uint64{500}})
			if err != nil {
				t.Fatal(err)
			}
			defer last.Close()
			if res.Recoveries != 1 || res.ReplayedOps != 500 {
				t.Fatalf("recoveries=%d replayed=%d, want 1/500", res.Recoveries, res.ReplayedOps)
			}
			entriesEqual(t, last, want)
		})
	}
}

// TestCrashRecoveryCorruptCheckpoint corrupts the newest checkpoint
// after the crash: recovery must fall back to the previous one (longer
// replay) and still converge to the oracle.
func TestCrashRecoveryCorruptCheckpoint(t *testing.T) {
	trace := recoveryAccesses(1500, 13)
	want := recoveryOracle(t, trace)
	engine := "rocksdb"
	world := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: world, Dir: "checkpoints", Engine: engine}
	var last kv.Store
	inner := crashingFactory(world, engine, &last)
	open := func(attempt int) (replay.Attempt, error) {
		if attempt == 1 {
			var newest string
			for _, p := range world.Paths() {
				if p > newest {
					newest = p
				}
			}
			data, err := vfs.ReadFile(world, newest)
			if err != nil {
				return replay.Attempt{}, err
			}
			data[len(data)/2] ^= 0x40
			if err := vfs.WriteFile(world, newest, data, 0o644); err != nil {
				return replay.Attempt{}, err
			}
		}
		return inner(attempt)
	}
	res, err := replay.RunWithRecovery(open, trace, replay.RecoveryOptions{
		CheckpointEvery: 300,
		Checkpointer:    ck,
		CrashAtOps:      []uint64{1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	// Newest checkpoint (watermark 900) is corrupt; the fallback is 600,
	// so the crash at 1000 replays 400 ops instead of 100.
	if res.Recoveries != 1 || res.ReplayedOps != 400 {
		t.Fatalf("recoveries=%d replayed=%d, want 1/400 (fallback past the corrupt checkpoint)", res.Recoveries, res.ReplayedOps)
	}
	entriesEqual(t, last, want)
}
