package stores

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

// Every engine must implement identical get/put/merge/delete semantics.
// This property test applies random operation sequences to all four
// engines and compares the final state of every touched key against the
// memstore oracle.
func TestEnginesEquivalentToOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint16
	}
	f := func(seed int64, nOps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOps)%2000 + 100
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{Kind: uint8(rng.Intn(10)), Key: uint16(rng.Intn(200)), Val: uint16(rng.Intn(1 << 16))}
		}

		oracle := memstore.New()
		defer oracle.Close()
		engines := map[string]kv.Store{}
		for _, name := range []string{"rocksdb", "lethe", "faster", "berkeleydb"} {
			s, err := Open(Config{
				Engine: name, Dir: t.TempDir(),
				MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
				LogMemBytes: 8 << 20, IndexBuckets: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			engines[name] = s
		}

		apply := func(s kv.Store, o op) error {
			key := []byte(fmt.Sprintf("key-%03d", o.Key))
			val := []byte(fmt.Sprintf("%04x", o.Val))
			switch o.Kind {
			case 0:
				return s.Delete(key)
			case 1, 2:
				return s.Merge(key, val)
			default:
				return s.Put(key, val)
			}
		}
		for _, o := range ops {
			if err := apply(oracle, o); err != nil {
				return false
			}
			for name, s := range engines {
				if err := apply(s, o); err != nil {
					t.Logf("%s: %v", name, err)
					return false
				}
			}
		}
		for k := 0; k < 200; k++ {
			key := []byte(fmt.Sprintf("key-%03d", k))
			want, wantErr := oracle.Get(key)
			for name, s := range engines {
				got, err := s.Get(key)
				if errors.Is(wantErr, kv.ErrNotFound) {
					if !errors.Is(err, kv.ErrNotFound) {
						t.Logf("%s: key %s should be absent, got %q (err %v)", name, key, got, err)
						return false
					}
					continue
				}
				if err != nil || string(got) != string(want) {
					t.Logf("%s: Get(%s) = %q, %v; want %q", name, key, got, err, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesEquivalentAcrossReopen extends the differential test with
// restarts: durable engines are closed and reopened from their on-disk
// state mid-sequence, and reads are verified against the oracle both
// during the run and at the end. This is the clean-shutdown counterpart
// of the crash suite in crash_test.go.
func TestEnginesEquivalentAcrossReopen(t *testing.T) {
	type op struct {
		kind byte
		key  int
		val  string
	}
	seeds := []int64{7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nOps, nKeys = 1500, 120
			ops := make([]op, nOps)
			for i := range ops {
				ops[i] = op{
					kind: byte(rng.Intn(12)),
					key:  rng.Intn(nKeys),
					val:  fmt.Sprintf("s%d-%04d-%04x", seed, i, rng.Intn(1<<16)),
				}
			}

			oracle := memstore.New()
			defer oracle.Close()
			durable := []string{"rocksdb", "lethe", "faster", "berkeleydb"}
			cfgs := map[string]Config{}
			engines := map[string]kv.Store{}
			for _, name := range durable {
				cfg := Config{
					Engine: name, Dir: t.TempDir(),
					MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
					LogMemBytes: 8 << 20, IndexBuckets: 64,
					WAL: true,
				}
				s, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfgs[name] = cfg
				engines[name] = s
			}
			defer func() {
				for _, s := range engines {
					s.Close()
				}
			}()

			key := func(k int) []byte { return []byte(fmt.Sprintf("key-%03d", k)) }
			apply := func(s kv.Store, o op) error {
				switch o.kind {
				case 0, 1:
					return s.Delete(key(o.key))
				case 2, 3, 4:
					return s.Merge(key(o.key), []byte(o.val))
				case 5, 6, 7, 8:
					return s.Put(key(o.key), []byte(o.val))
				default:
					return nil // read slot; handled below
				}
			}
			checkKey := func(k int, when string) {
				t.Helper()
				want, wantErr := oracle.Get(key(k))
				for name, s := range engines {
					got, err := s.Get(key(k))
					if errors.Is(wantErr, kv.ErrNotFound) {
						if !errors.Is(err, kv.ErrNotFound) {
							t.Fatalf("%s %s: key %03d should be absent, got %q (err %v)", name, when, k, got, err)
						}
						continue
					}
					if err != nil || string(got) != string(want) {
						t.Fatalf("%s %s: Get(key-%03d) = %q, %v; want %q", name, when, k, got, err, want)
					}
				}
			}

			for i, o := range ops {
				if o.kind >= 9 {
					checkKey(o.key, fmt.Sprintf("op %d", i))
					continue
				}
				if err := apply(oracle, o); err != nil {
					t.Fatal(err)
				}
				for name, s := range engines {
					if err := apply(s, o); err != nil {
						t.Fatalf("%s: op %d: %v", name, i, err)
					}
				}
				// Periodically restart every durable engine from disk.
				if i > 0 && i%400 == 0 {
					for name, s := range engines {
						if err := s.Close(); err != nil {
							t.Fatalf("%s: close at op %d: %v", name, i, err)
						}
						r, err := Open(cfgs[name])
						if err != nil {
							t.Fatalf("%s: reopen at op %d: %v", name, i, err)
						}
						engines[name] = r
					}
				}
			}
			for k := 0; k < nKeys; k++ {
				checkKey(k, "final")
			}
		})
	}
}
