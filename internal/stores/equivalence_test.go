package stores

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/remote"
	"gadget/internal/shard"
)

// Every engine must implement identical get/put/merge/delete semantics.
// This property test applies random operation sequences to all four
// engines and compares the final state of every touched key against the
// memstore oracle.
func TestEnginesEquivalentToOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint16
	}
	f := func(seed int64, nOps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOps)%2000 + 100
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{Kind: uint8(rng.Intn(10)), Key: uint16(rng.Intn(200)), Val: uint16(rng.Intn(1 << 16))}
		}

		oracle := memstore.New()
		defer oracle.Close()
		engines := map[string]kv.Store{}
		for _, name := range []string{"rocksdb", "lethe", "faster", "berkeleydb"} {
			s, err := Open(Config{
				Engine: name, Dir: t.TempDir(),
				MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
				LogMemBytes: 8 << 20, IndexBuckets: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			engines[name] = s
		}

		apply := func(s kv.Store, o op) error {
			key := []byte(fmt.Sprintf("key-%03d", o.Key))
			val := []byte(fmt.Sprintf("%04x", o.Val))
			switch o.Kind {
			case 0:
				return s.Delete(key)
			case 1, 2:
				return s.Merge(key, val)
			default:
				return s.Put(key, val)
			}
		}
		for _, o := range ops {
			if err := apply(oracle, o); err != nil {
				return false
			}
			for name, s := range engines {
				if err := apply(s, o); err != nil {
					t.Logf("%s: %v", name, err)
					return false
				}
			}
		}
		for k := 0; k < 200; k++ {
			key := []byte(fmt.Sprintf("key-%03d", k))
			want, wantErr := oracle.Get(key)
			for name, s := range engines {
				got, err := s.Get(key)
				if errors.Is(wantErr, kv.ErrNotFound) {
					if !errors.Is(err, kv.ErrNotFound) {
						t.Logf("%s: key %s should be absent, got %q (err %v)", name, key, got, err)
						return false
					}
					continue
				}
				if err != nil || string(got) != string(want) {
					t.Logf("%s: Get(%s) = %q, %v; want %q", name, key, got, err, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestEnginesEquivalentAcrossReopen extends the differential test with
// restarts: durable engines are closed and reopened from their on-disk
// state mid-sequence, and reads are verified against the oracle both
// during the run and at the end. This is the clean-shutdown counterpart
// of the crash suite in crash_test.go.
func TestEnginesEquivalentAcrossReopen(t *testing.T) {
	type op struct {
		kind byte
		key  int
		val  string
	}
	seeds := []int64{7, 42, 1234}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			const nOps, nKeys = 1500, 120
			ops := make([]op, nOps)
			for i := range ops {
				ops[i] = op{
					kind: byte(rng.Intn(12)),
					key:  rng.Intn(nKeys),
					val:  fmt.Sprintf("s%d-%04d-%04x", seed, i, rng.Intn(1<<16)),
				}
			}

			oracle := memstore.New()
			defer oracle.Close()
			durable := []string{"rocksdb", "lethe", "faster", "berkeleydb"}
			cfgs := map[string]Config{}
			engines := map[string]kv.Store{}
			for _, name := range durable {
				cfg := Config{
					Engine: name, Dir: t.TempDir(),
					MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
					LogMemBytes: 8 << 20, IndexBuckets: 64,
					WAL: true,
				}
				s, err := Open(cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfgs[name] = cfg
				engines[name] = s
			}
			defer func() {
				for _, s := range engines {
					s.Close()
				}
			}()

			key := func(k int) []byte { return []byte(fmt.Sprintf("key-%03d", k)) }
			apply := func(s kv.Store, o op) error {
				switch o.kind {
				case 0, 1:
					return s.Delete(key(o.key))
				case 2, 3, 4:
					return s.Merge(key(o.key), []byte(o.val))
				case 5, 6, 7, 8:
					return s.Put(key(o.key), []byte(o.val))
				default:
					return nil // read slot; handled below
				}
			}
			checkKey := func(k int, when string) {
				t.Helper()
				want, wantErr := oracle.Get(key(k))
				for name, s := range engines {
					got, err := s.Get(key(k))
					if errors.Is(wantErr, kv.ErrNotFound) {
						if !errors.Is(err, kv.ErrNotFound) {
							t.Fatalf("%s %s: key %03d should be absent, got %q (err %v)", name, when, k, got, err)
						}
						continue
					}
					if err != nil || string(got) != string(want) {
						t.Fatalf("%s %s: Get(key-%03d) = %q, %v; want %q", name, when, k, got, err, want)
					}
				}
			}

			for i, o := range ops {
				if o.kind >= 9 {
					checkKey(o.key, fmt.Sprintf("op %d", i))
					continue
				}
				if err := apply(oracle, o); err != nil {
					t.Fatal(err)
				}
				for name, s := range engines {
					if err := apply(s, o); err != nil {
						t.Fatalf("%s: op %d: %v", name, i, err)
					}
				}
				// Periodically restart every durable engine from disk.
				if i > 0 && i%400 == 0 {
					for name, s := range engines {
						if err := s.Close(); err != nil {
							t.Fatalf("%s: close at op %d: %v", name, i, err)
						}
						r, err := Open(cfgs[name])
						if err != nil {
							t.Fatalf("%s: reopen at op %d: %v", name, i, err)
						}
						engines[name] = r
					}
				}
			}
			for k := 0; k < nKeys; k++ {
				checkKey(k, "final")
			}
		})
	}
}

// openScanEngines opens every registered engine (the remote engine is
// backed by an in-process server over a memstore) with small budgets so
// the LSM engines spill to tables mid-test. Cleanup is registered on t.
func openScanEngines(t *testing.T) map[string]kv.Store {
	t.Helper()
	engines := map[string]kv.Store{}
	for _, name := range []string{"rocksdb", "lethe", "faster", "berkeleydb", "memstore"} {
		s, err := Open(Config{
			Engine: name, Dir: t.TempDir(),
			MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
			LogMemBytes: 8 << 20, IndexBuckets: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		engines[name] = s
	}
	srv, err := remote.Serve(memstore.New(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c, err := Open(Config{Engine: "remote", Addr: srv.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	engines["remote"] = c
	return engines
}

const (
	scanGroups = 8
	scanSubs   = 48
)

// oracleView computes the expected sorted view of [lo, hi] purely from
// point Gets against the oracle — an independent derivation, so the
// scan path is checked against the already-validated point-op path
// rather than against another scan.
func oracleView(t *testing.T, oracle kv.Store, lo, hi kv.StateKey) []kv.Entry {
	t.Helper()
	var out []kv.Entry
	for g := uint64(0); g < scanGroups; g++ {
		for s := uint64(0); s < scanSubs; s++ {
			sk := kv.StateKey{Group: g, Sub: s}
			if sk.Less(lo) || hi.Less(sk) {
				continue
			}
			v, err := oracle.Get(sk.Bytes())
			if errors.Is(err, kv.ErrNotFound) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, kv.Entry{Key: sk, Value: v})
		}
	}
	return out
}

func diffEntries(name string, got, want []kv.Entry) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: scan returned %d entries, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key {
			return fmt.Errorf("%s: entry %d key %v, want %v", name, i, got[i].Key, want[i].Key)
		}
		if !bytes.Equal(got[i].Value, want[i].Value) {
			return fmt.Errorf("%s: entry %d (%v) value %q, want %q", name, i, got[i].Key, got[i].Value, want[i].Value)
		}
	}
	return nil
}

// TestScanEquivalentToOracle interleaves random writes with bounded
// range scans on every engine and compares each scan against the sorted
// view derived from point-Gets on the memstore oracle.
func TestScanEquivalentToOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	oracle := memstore.New()
	defer oracle.Close()
	engines := openScanEngines(t)

	apply := func(s kv.Store, kind int, sk kv.StateKey, val []byte) error {
		switch kind {
		case 0:
			return s.Delete(sk.Bytes())
		case 1:
			return s.Merge(sk.Bytes(), val)
		default:
			return s.Put(sk.Bytes(), val)
		}
	}
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		for i := 0; i < 250; i++ {
			kind := rng.Intn(5)
			sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
			val := []byte(fmt.Sprintf("r%d-%d-%04x", round, i, rng.Intn(1<<16)))
			if err := apply(oracle, kind, sk, val); err != nil {
				t.Fatal(err)
			}
			for name, s := range engines {
				if err := apply(s, kind, sk, val); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
		}
		// A handful of random bounded ranges per round, plus the full
		// range, a single-group range, and an inverted (empty) range.
		type bounds struct{ lo, hi kv.StateKey }
		ranges := []bounds{
			{kv.StateKey{}, kv.MaxStateKey},
			{kv.StateKey{Group: uint64(rng.Intn(scanGroups))}, kv.StateKey{Group: uint64(rng.Intn(scanGroups))}.GroupEnd()},
			{kv.StateKey{Group: 2, Sub: 5}, kv.StateKey{Group: 1}}, // inverted
		}
		for i := 0; i < 4; i++ {
			lo := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
			hi := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
			ranges = append(ranges, bounds{lo, hi})
		}
		for _, r := range ranges {
			var want []kv.Entry
			if !r.hi.Less(r.lo) {
				want = oracleView(t, oracle, r.lo, r.hi)
			}
			for name, s := range engines {
				got, err := kv.ScanRange(s, r.lo, r.hi)
				if err != nil {
					t.Fatalf("%s: scan [%v, %v] round %d: %v", name, r.lo, r.hi, round, err)
				}
				if err := diffEntries(name, got, want); err != nil {
					t.Fatalf("round %d range [%v, %v]: %v", round, r.lo, r.hi, err)
				}
			}
		}
	}
}

// TestSnapshotIsolation takes a snapshot of every engine, keeps
// writing, and verifies the snapshot still reads as of acquisition
// time — natively for the MVCC engines, via the stop-the-world fallback
// for the rest.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	oracle := memstore.New()
	defer oracle.Close()
	engines := openScanEngines(t)

	put := func(sk kv.StateKey, val []byte) {
		if err := oracle.Put(sk.Bytes(), val); err != nil {
			t.Fatal(err)
		}
		for name, s := range engines {
			if err := s.Put(sk.Bytes(), val); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	for i := 0; i < 600; i++ {
		sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
		put(sk, []byte(fmt.Sprintf("before-%d", i)))
	}
	want := oracleView(t, oracle, kv.StateKey{}, kv.MaxStateKey)
	snaps := map[string]kv.Snapshot{}
	for name, s := range engines {
		snap, err := kv.SnapshotOf(s)
		if err != nil {
			t.Fatalf("%s: snapshot: %v", name, err)
		}
		defer snap.Close()
		snaps[name] = snap
	}
	// Overwrite and delete behind the snapshots' backs.
	for i := 0; i < 600; i++ {
		sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
		if i%3 == 0 {
			for name, s := range engines {
				if err := s.Delete(sk.Bytes()); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
			}
			continue
		}
		for name, s := range engines {
			if err := s.Put(sk.Bytes(), []byte(fmt.Sprintf("after-%d", i))); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
	}
	for name, snap := range snaps {
		got, err := kv.CollectIter(snap.Iter(kv.StateKey{}, kv.MaxStateKey))
		if err != nil {
			t.Fatalf("%s: drain snapshot: %v", name, err)
		}
		if err := diffEntries(name, got, want); err != nil {
			t.Fatalf("snapshot view changed under writes: %v", err)
		}
		// Point reads through the snapshot must also be frozen.
		for _, e := range []kv.Entry{want[0], want[len(want)/2], want[len(want)-1]} {
			v, err := snap.Get(e.Key.Bytes())
			if err != nil || !bytes.Equal(v, e.Value) {
				t.Fatalf("%s: snapshot Get(%v) = %q, %v; want %q", name, e.Key, v, err, e.Value)
			}
		}
	}
}

// openShardedStore builds an n-shard cluster with engine kinds cycling
// through mix, served in-process, and opens it through the standard
// stores.Open surface (comma-separated addrs + store.remote section) so
// the whole config path is exercised. Returns the client store and the
// per-shard backing stores.
func openShardedStore(t *testing.T, n int, mix []string) (kv.Store, []kv.Store) {
	t.Helper()
	backs := make([]kv.Store, n)
	for i := range backs {
		name := mix[i%len(mix)]
		s, err := Open(Config{
			Engine: name, Dir: t.TempDir(),
			MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
			LogMemBytes: 8 << 20, IndexBuckets: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		backs[i] = s
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Open(Config{
		Engine: "remote",
		Addr:   strings.Join(srv.Addrs(), ","),
		Remote: &RemoteConfig{PipelineDepth: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return cli, backs
}

// TestShardedEquivalentToOracle drives random point-op sequences plus
// range scans through 2-, 4-, and 8-shard mixed-engine clusters and
// compares every outcome against the unsharded memstore oracle.
func TestShardedEquivalentToOracle(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		shards := shards
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			cli, _ := openShardedStore(t, shards, []string{"memstore", "rocksdb"})
			oracle := memstore.New()
			defer oracle.Close()

			rng := rand.New(rand.NewSource(int64(shards)))
			apply := func(s kv.Store, kind int, sk kv.StateKey, val []byte) error {
				switch kind {
				case 0:
					return s.Delete(sk.Bytes())
				case 1:
					return s.Merge(sk.Bytes(), val)
				default:
					return s.Put(sk.Bytes(), val)
				}
			}
			for i := 0; i < 1200; i++ {
				kind := rng.Intn(5)
				sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
				val := []byte(fmt.Sprintf("n%d-%d-%04x", shards, i, rng.Intn(1<<16)))
				if err := apply(oracle, kind, sk, val); err != nil {
					t.Fatal(err)
				}
				if err := apply(cli, kind, sk, val); err != nil {
					t.Fatalf("sharded op %d: %v", i, err)
				}
			}
			// Point equivalence over the whole key universe.
			for g := uint64(0); g < scanGroups; g++ {
				for s := uint64(0); s < scanSubs; s++ {
					sk := kv.StateKey{Group: g, Sub: s}
					want, wantErr := oracle.Get(sk.Bytes())
					got, err := cli.Get(sk.Bytes())
					if errors.Is(wantErr, kv.ErrNotFound) {
						if !errors.Is(err, kv.ErrNotFound) {
							t.Fatalf("key %v should be absent, got %q (err %v)", sk, got, err)
						}
						continue
					}
					if err != nil || !bytes.Equal(got, want) {
						t.Fatalf("Get(%v) = %q, %v; want %q", sk, got, err, want)
					}
				}
			}
			// Fan-out scan merge equivalence, bounded and full.
			for _, r := range []struct{ lo, hi kv.StateKey }{
				{kv.StateKey{}, kv.MaxStateKey},
				{kv.StateKey{Group: 2}, kv.StateKey{Group: 2}.GroupEnd()},
				{kv.StateKey{Group: 1, Sub: 7}, kv.StateKey{Group: 5, Sub: 3}},
			} {
				got, err := kv.ScanRange(cli, r.lo, r.hi)
				if err != nil {
					t.Fatal(err)
				}
				if err := diffEntries("sharded", got, oracleView(t, oracle, r.lo, r.hi)); err != nil {
					t.Fatalf("range [%v, %v]: %v", r.lo, r.hi, err)
				}
			}
		})
	}
}

// TestShardedSnapshotIsolation checks that the composite fan-out
// snapshot stays frozen while writes land on every shard behind it, and
// that its merged iterator agrees with the oracle's pre-write view.
func TestShardedSnapshotIsolation(t *testing.T) {
	cli, _ := openShardedStore(t, 4, []string{"memstore"})
	oracle := memstore.New()
	defer oracle.Close()
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 600; i++ {
		sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
		val := []byte(fmt.Sprintf("before-%d", i))
		if err := oracle.Put(sk.Bytes(), val); err != nil {
			t.Fatal(err)
		}
		if err := cli.Put(sk.Bytes(), val); err != nil {
			t.Fatal(err)
		}
	}
	want := oracleView(t, oracle, kv.StateKey{}, kv.MaxStateKey)
	snap, err := kv.SnapshotOf(cli)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	for i := 0; i < 600; i++ {
		sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
		var werr error
		if i%3 == 0 {
			werr = cli.Delete(sk.Bytes())
		} else {
			werr = cli.Put(sk.Bytes(), []byte(fmt.Sprintf("after-%d", i)))
		}
		if werr != nil {
			t.Fatal(werr)
		}
	}
	got, err := kv.CollectIter(snap.Iter(kv.StateKey{}, kv.MaxStateKey))
	if err != nil {
		t.Fatal(err)
	}
	if err := diffEntries("sharded-snapshot", got, want); err != nil {
		t.Fatalf("fan-out snapshot view changed under writes: %v", err)
	}
	for _, e := range []kv.Entry{want[0], want[len(want)/2], want[len(want)-1]} {
		v, err := snap.Get(e.Key.Bytes())
		if err != nil || !bytes.Equal(v, e.Value) {
			t.Fatalf("snapshot Get(%v) = %q, %v; want %q", e.Key, v, err, e.Value)
		}
	}
}

// shardFlakyConn kills the connection after a byte budget spent across
// reads and writes, so failures land mid-batch and mid-response.
type shardFlakyConn struct {
	net.Conn
	mu     sync.Mutex
	budget int
}

func (f *shardFlakyConn) spend(n int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.budget < 0 {
		return false
	}
	f.budget -= n
	return f.budget <= 0
}

func (f *shardFlakyConn) Write(p []byte) (int, error) {
	if f.spend(len(p)) {
		f.Conn.Close()
		return 0, errors.New("injected conn failure")
	}
	return f.Conn.Write(p)
}

func (f *shardFlakyConn) Read(p []byte) (int, error) {
	n, err := f.Conn.Read(p)
	if err == nil && f.spend(n) {
		f.Conn.Close()
		return n, nil
	}
	return n, err
}

// TestShardedReconnectExactlyOnce drives concurrent merges through a
// sharded client whose connections keep dying mid-batch: the v3
// retransmission path must replay unanswered requests without
// re-applying any of them, on every shard.
func TestShardedReconnectExactlyOnce(t *testing.T) {
	const shards = 2
	backs := make([]kv.Store, shards)
	for i := range backs {
		backs[i] = memstore.New()
		defer backs[i].Close()
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var dialMu sync.Mutex
	dials := 0
	cli, err := shard.Dial(srv.Addrs(), remote.PipelineOptions{
		Depth:   8,
		Redials: 60,
		Dialer: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dialMu.Lock()
			dials++
			budget := -1
			if dials%2 == 1 { // every other connection dies mid-stream
				budget = 200 + 53*dials%900
			}
			dialMu.Unlock()
			return &shardFlakyConn{Conn: conn, budget: budget}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers, perWorker = 4, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("xo-%d", w))
			for i := 0; i < perWorker; i++ {
				if err := cli.Merge(key, []byte(fmt.Sprintf("<%d:%d>", w, i))); err != nil {
					t.Errorf("merge %d/%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 0; w < workers; w++ {
		key := []byte(fmt.Sprintf("xo-%d", w))
		var got []byte
		var err error
		for _, b := range backs {
			if v, gerr := b.Get(key); gerr == nil {
				got, err = v, nil
				break
			} else {
				err = gerr
			}
		}
		if err != nil {
			t.Fatalf("key xo-%d: %v", w, err)
		}
		for i := 0; i < perWorker; i++ {
			token := fmt.Sprintf("<%d:%d>", w, i)
			if n := strings.Count(string(got), token); n != 1 {
				t.Fatalf("operand %s applied %d times (duplicate or dropped merge under reconnect)", token, n)
			}
		}
	}
}

// TestShardedComposesWithMiddleware wraps the sharded client in chaos
// and resilience middleware through the registry, like any embedded
// engine: injected faults must be retried to success.
func TestShardedComposesWithMiddleware(t *testing.T) {
	backs := []kv.Store{memstore.New(), memstore.New()}
	for _, b := range backs {
		defer b.Close()
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := Open(Config{
		Engine:     "remote",
		Addr:       strings.Join(srv.Addrs(), ","),
		Remote:     &RemoteConfig{PipelineDepth: 8},
		Chaos:      &ChaosConfig{Seed: 5, ErrorRate: 0.2},
		Resilience: &ResilienceConfig{MaxRetries: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("mw-%d", i))
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatalf("Put %d through middleware: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("mw-%d", i))
		if v, err := s.Get(k); err != nil || string(v) != "v" {
			t.Fatalf("Get %d = %q, %v", i, v, err)
		}
	}
}

// TestScanUnderConcurrentWriters drains snapshots while a writer
// hammers the store. Views must stay internally consistent (sorted,
// error-free); run under -race this doubles as the engines' snapshot
// race check.
func TestScanUnderConcurrentWriters(t *testing.T) {
	engines := openScanEngines(t)
	for name, s := range engines {
		s := s
		t.Run(name, func(t *testing.T) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(91))
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					sk := kv.StateKey{Group: uint64(rng.Intn(scanGroups)), Sub: uint64(rng.Intn(scanSubs))}
					var err error
					if i%7 == 0 {
						err = s.Delete(sk.Bytes())
					} else {
						err = s.Put(sk.Bytes(), []byte(fmt.Sprintf("w-%d", i)))
					}
					if err != nil {
						t.Errorf("writer: %v", err)
						return
					}
				}
			}()
			for i := 0; i < 30; i++ {
				got, err := kv.ScanRange(s, kv.StateKey{}, kv.MaxStateKey)
				if err != nil {
					t.Fatalf("scan %d: %v", i, err)
				}
				for j := 1; j < len(got); j++ {
					if !got[j-1].Key.Less(got[j].Key) {
						t.Fatalf("scan %d out of order at %d: %v >= %v", i, j, got[j-1].Key, got[j].Key)
					}
				}
			}
			close(stop)
			wg.Wait()
		})
	}
}
