package stores

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

// Every engine must implement identical get/put/merge/delete semantics.
// This property test applies random operation sequences to all four
// engines and compares the final state of every touched key against the
// memstore oracle.
func TestEnginesEquivalentToOracle(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint16
		Val  uint16
	}
	f := func(seed int64, nOps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nOps)%2000 + 100
		ops := make([]op, n)
		for i := range ops {
			ops[i] = op{Kind: uint8(rng.Intn(10)), Key: uint16(rng.Intn(200)), Val: uint16(rng.Intn(1 << 16))}
		}

		oracle := memstore.New()
		defer oracle.Close()
		engines := map[string]kv.Store{}
		for _, name := range []string{"rocksdb", "lethe", "faster", "berkeleydb"} {
			s, err := Open(Config{
				Engine: name, Dir: t.TempDir(),
				MemtableBytes: 16 << 10, CacheBytes: 32 << 10,
				LogMemBytes: 8 << 20, IndexBuckets: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			engines[name] = s
		}

		apply := func(s kv.Store, o op) error {
			key := []byte(fmt.Sprintf("key-%03d", o.Key))
			val := []byte(fmt.Sprintf("%04x", o.Val))
			switch o.Kind {
			case 0:
				return s.Delete(key)
			case 1, 2:
				return s.Merge(key, val)
			default:
				return s.Put(key, val)
			}
		}
		for _, o := range ops {
			if err := apply(oracle, o); err != nil {
				return false
			}
			for name, s := range engines {
				if err := apply(s, o); err != nil {
					t.Logf("%s: %v", name, err)
					return false
				}
			}
		}
		for k := 0; k < 200; k++ {
			key := []byte(fmt.Sprintf("key-%03d", k))
			want, wantErr := oracle.Get(key)
			for name, s := range engines {
				got, err := s.Get(key)
				if errors.Is(wantErr, kv.ErrNotFound) {
					if !errors.Is(err, kv.ErrNotFound) {
						t.Logf("%s: key %s should be absent, got %q (err %v)", name, key, got, err)
						return false
					}
					continue
				}
				if err != nil || string(got) != string(want) {
					t.Logf("%s: Get(%s) = %q, %v; want %q", name, key, got, err, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
