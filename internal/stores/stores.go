// Package stores is the registry of KV engines the harness can drive,
// keyed by the names used in configuration files and on the command
// line: "rocksdb" (the LSM engine), "lethe", "faster", "berkeleydb" (the
// B+Tree engine), and "memstore".
package stores

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"gadget/internal/btree"
	"gadget/internal/faster"
	"gadget/internal/kv"
	"gadget/internal/lethe"
	"gadget/internal/lsm"
	"gadget/internal/memstore"
	"gadget/internal/remote"
	"gadget/internal/shard"
	"gadget/internal/vfs"
)

// Config selects and sizes an engine. Zero fields fall back to each
// engine's paper-matching defaults.
type Config struct {
	// Engine is one of Engines(); aliases "lsm" and "btree" are accepted.
	Engine string `json:"engine"`
	// Dir is the store directory (required for all but memstore).
	Dir string `json:"dir"`
	// MemtableBytes sizes LSM write buffers.
	MemtableBytes int64 `json:"memtable_bytes"`
	// CacheBytes sizes the LSM block cache or B+Tree buffer pool.
	CacheBytes int64 `json:"cache_bytes"`
	// LogMemBytes sizes FASTER's in-memory hybrid log region.
	LogMemBytes int64 `json:"log_mem_bytes"`
	// IndexBuckets sizes FASTER's hash index.
	IndexBuckets int `json:"index_buckets"`
	// DeleteThresholdMs is Lethe's delete persistence threshold.
	DeleteThresholdMs int64 `json:"delete_threshold_ms"`
	// WAL enables the LSM write-ahead log.
	WAL bool `json:"wal"`
	// SyncWrites fsyncs the LSM WAL on every write.
	SyncWrites bool `json:"sync_writes"`
	// Addr is the server address for the "remote" engine (external
	// state management, paper §8). A comma-separated list names one
	// endpoint per shard of a sharded server.
	Addr string `json:"addr"`
	// Remote, when set, selects the sharded, pipelined protocol-v3
	// client for the "remote" engine; nil keeps the single-connection
	// protocol-v2 client.
	Remote *RemoteConfig `json:"remote,omitempty"`
	// FS injects a filesystem for the durable engines (tests use
	// vfs.MemFS/vfs.FaultFS); nil means the real filesystem. Not part of
	// the JSON configuration surface.
	FS vfs.FS `json:"-"`
	// Traced asks the sharded protocol-v3 client to negotiate trace
	// trailers at hello, so traced ops receive server-side handle stamps.
	// Set by the harness from obs.trace, not from the store JSON (the
	// store section stays tracing-agnostic).
	Traced bool `json:"-"`
	// Chaos, when set, wraps the engine in a deterministic fault
	// injector (kv.ChaosStore).
	Chaos *ChaosConfig `json:"chaos,omitempty"`
	// Resilience, when set, wraps the (possibly chaotic) engine in
	// retry/deadline/circuit-breaker middleware (kv.ResilientStore).
	Resilience *ResilienceConfig `json:"resilience,omitempty"`
}

// ChaosConfig is the JSON surface of kv.ChaosPlan: deterministic,
// seeded fault injection at the store boundary.
type ChaosConfig struct {
	// Seed drives the per-operation fault lottery.
	Seed int64 `json:"seed"`
	// ErrorRate is the probability (0..1) of a transient injected error.
	ErrorRate float64 `json:"error_rate"`
	// LatencyRate is the probability (0..1) of a latency spike.
	LatencyRate float64 `json:"latency_rate"`
	// LatencyUs is the spike duration in microseconds.
	LatencyUs int64 `json:"latency_us"`
	// StallEvery stalls every Nth operation (0 disables).
	StallEvery int `json:"stall_every"`
	// StallMs is the stall duration in milliseconds.
	StallMs int64 `json:"stall_ms"`
	// OutageAfterOps opens a full outage window after N operations
	// (0 disables).
	OutageAfterOps int `json:"outage_after_ops"`
	// OutageOps is the outage window length in operations.
	OutageOps int `json:"outage_ops"`
	// CrashAtOps lists logical trace positions at which the run driver
	// crashes the store mid-run and recovers it (strictly increasing).
	// Unlike the fields above, this is consumed by the replay layer's
	// recovery runner, not by the per-operation chaos wrapper: a crash
	// tears down the whole store, which no store-level middleware can do.
	CrashAtOps []uint64 `json:"crash_at_ops,omitempty"`
}

// Plan converts the JSON form to a kv.ChaosPlan.
func (c ChaosConfig) Plan() kv.ChaosPlan {
	return kv.ChaosPlan{
		Seed:           c.Seed,
		ErrorRate:      c.ErrorRate,
		LatencyRate:    c.LatencyRate,
		Latency:        time.Duration(c.LatencyUs) * time.Microsecond,
		StallEvery:     c.StallEvery,
		Stall:          time.Duration(c.StallMs) * time.Millisecond,
		OutageAfterOps: c.OutageAfterOps,
		OutageOps:      c.OutageOps,
	}
}

// RemoteConfig is the JSON surface of the sharded protocol-v3 client
// (shard.Client over remote.PipelinedClient connections).
type RemoteConfig struct {
	// Shards is the shard count. With a single addr and Shards > 1, the
	// per-shard endpoints are derived as port, port+1, ... (matching a
	// sharded server started on a fixed base port); with a
	// comma-separated addr list, Shards must be 0 or match its length.
	Shards int `json:"shards"`
	// PipelineDepth bounds in-flight requests per shard connection
	// (0 = default 64).
	PipelineDepth int `json:"pipeline_depth"`
	// BatchBytes is the per-connection request coalescing threshold
	// (0 = default 256 KiB).
	BatchBytes int `json:"batch_bytes"`
}

// ResilienceConfig is the JSON surface of kv.ResilienceOptions:
// per-op deadlines, bounded retry with backoff, and a circuit breaker.
type ResilienceConfig struct {
	// OpTimeoutMs is the per-operation deadline in milliseconds
	// (0 = none).
	OpTimeoutMs int64 `json:"op_timeout_ms"`
	// MaxRetries bounds retries after the first attempt
	// (0 = default 3, -1 = no retries).
	MaxRetries int `json:"max_retries"`
	// BackoffBaseUs is the first retry delay in microseconds
	// (0 = default 100).
	BackoffBaseUs int64 `json:"backoff_base_us"`
	// BackoffMaxMs caps the retry delay in milliseconds (0 = default 20).
	BackoffMaxMs int64 `json:"backoff_max_ms"`
	// JitterSeed seeds the backoff jitter for reproducible schedules.
	JitterSeed int64 `json:"jitter_seed"`
	// BreakerThreshold is the consecutive-failure count that opens the
	// circuit breaker (0 = default 16, -1 = breaker disabled).
	BreakerThreshold int `json:"breaker_threshold"`
	// BreakerCooldownMs is the open-state cooldown before a half-open
	// probe, in milliseconds (0 = default 50).
	BreakerCooldownMs int64 `json:"breaker_cooldown_ms"`
}

// Options converts the JSON form to kv.ResilienceOptions.
func (c ResilienceConfig) Options() kv.ResilienceOptions {
	return kv.ResilienceOptions{
		OpTimeout:        time.Duration(c.OpTimeoutMs) * time.Millisecond,
		MaxRetries:       c.MaxRetries,
		BackoffBase:      time.Duration(c.BackoffBaseUs) * time.Microsecond,
		BackoffMax:       time.Duration(c.BackoffMaxMs) * time.Millisecond,
		JitterSeed:       c.JitterSeed,
		BreakerThreshold: c.BreakerThreshold,
		BreakerCooldown:  time.Duration(c.BreakerCooldownMs) * time.Millisecond,
	}
}

// Engines lists the canonical engine names.
func Engines() []string {
	return []string{"rocksdb", "lethe", "faster", "berkeleydb", "memstore", "remote"}
}

// Open constructs the configured store. With Chaos and/or Resilience
// set, the engine is wrapped as resilient(chaos(engine)): injected
// faults land between the middleware and the engine, so retries can
// recover them.
func Open(cfg Config) (kv.Store, error) {
	s, err := openEngine(cfg)
	if err != nil {
		return nil, err
	}
	if cfg.Chaos != nil {
		plan := cfg.Chaos.Plan()
		if err := plan.Validate(); err != nil {
			s.Close()
			return nil, fmt.Errorf("stores: %w", err)
		}
		s = kv.NewChaosStore(s, plan)
	}
	if cfg.Resilience != nil {
		r, err := kv.NewResilientStore(s, cfg.Resilience.Options())
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("stores: %w", err)
		}
		s = r
	}
	return s, nil
}

func openEngine(cfg Config) (kv.Store, error) {
	switch cfg.Engine {
	case "rocksdb", "lsm":
		return lsm.Open(lsm.Options{
			Dir:            cfg.Dir,
			MemtableSize:   cfg.MemtableBytes,
			BlockCacheSize: cfg.CacheBytes,
			WAL:            cfg.WAL,
			SyncWrites:     cfg.SyncWrites,
			FS:             cfg.FS,
		})
	case "lethe":
		return lethe.Open(lethe.Options{
			LSM: lsm.Options{
				Dir:            cfg.Dir,
				MemtableSize:   cfg.MemtableBytes,
				BlockCacheSize: cfg.CacheBytes,
				WAL:            cfg.WAL,
				SyncWrites:     cfg.SyncWrites,
				FS:             cfg.FS,
			},
			DeleteThreshold: time.Duration(cfg.DeleteThresholdMs) * time.Millisecond,
		})
	case "faster":
		return faster.Open(faster.Options{
			Dir:          cfg.Dir,
			LogMemBudget: cfg.LogMemBytes,
			IndexBuckets: cfg.IndexBuckets,
			FS:           cfg.FS,
		})
	case "berkeleydb", "btree":
		return btree.Open(btree.Options{Dir: cfg.Dir, CacheSize: cfg.CacheBytes, FS: cfg.FS})
	case "memstore":
		return memstore.New(), nil
	case "remote":
		return openRemote(cfg)
	default:
		return nil, fmt.Errorf("stores: unknown engine %q (want one of %v)", cfg.Engine, Engines())
	}
}

// openRemote dials the external store. A bare single addr keeps the
// protocol-v2 client (back-compat); a Remote section or a multi-addr
// list selects the sharded, pipelined protocol-v3 client.
func openRemote(cfg Config) (kv.Store, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("stores: remote engine requires addr")
	}
	addrs := splitAddrs(cfg.Addr)
	if cfg.Remote == nil && len(addrs) == 1 {
		return remote.Dial(addrs[0])
	}
	var rc RemoteConfig
	if cfg.Remote != nil {
		rc = *cfg.Remote
	}
	if rc.Shards < 0 {
		return nil, fmt.Errorf("stores: remote shards must be >= 0, got %d", rc.Shards)
	}
	switch {
	case len(addrs) > 1:
		if rc.Shards != 0 && rc.Shards != len(addrs) {
			return nil, fmt.Errorf("stores: remote shards = %d but addr lists %d endpoints", rc.Shards, len(addrs))
		}
	case rc.Shards > 1:
		expanded, err := expandAddrs(addrs[0], rc.Shards)
		if err != nil {
			return nil, fmt.Errorf("stores: %w", err)
		}
		addrs = expanded
	}
	return shard.Dial(addrs, remote.PipelineOptions{
		Depth:      rc.PipelineDepth,
		BatchBytes: rc.BatchBytes,
		Traced:     cfg.Traced,
	})
}

// splitAddrs splits a comma-separated endpoint list, trimming blanks.
func splitAddrs(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// expandAddrs derives n per-shard endpoints from a base address: the
// same host on port, port+1, ..., matching shard.Serve's fixed-port
// layout.
func expandAddrs(addr string, n int) ([]string, error) {
	host, portStr, err := net.SplitHostPort(addr)
	if err != nil {
		return nil, fmt.Errorf("bad remote addr %q: %w", addr, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil || port <= 0 || port > 65535 {
		return nil, fmt.Errorf("remote addr %q needs a fixed non-zero port to expand across %d shards", addr, n)
	}
	if port+n-1 > 65535 {
		return nil, fmt.Errorf("%d shards from port %d exceed the port range", n, port)
	}
	out := make([]string, n)
	for i := range out {
		out[i] = net.JoinHostPort(host, strconv.Itoa(port+i))
	}
	return out, nil
}
