// Package stores is the registry of KV engines the harness can drive,
// keyed by the names used in configuration files and on the command
// line: "rocksdb" (the LSM engine), "lethe", "faster", "berkeleydb" (the
// B+Tree engine), and "memstore".
package stores

import (
	"fmt"
	"time"

	"gadget/internal/btree"
	"gadget/internal/faster"
	"gadget/internal/kv"
	"gadget/internal/lethe"
	"gadget/internal/lsm"
	"gadget/internal/memstore"
	"gadget/internal/remote"
	"gadget/internal/vfs"
)

// Config selects and sizes an engine. Zero fields fall back to each
// engine's paper-matching defaults.
type Config struct {
	// Engine is one of Engines(); aliases "lsm" and "btree" are accepted.
	Engine string `json:"engine"`
	// Dir is the store directory (required for all but memstore).
	Dir string `json:"dir"`
	// MemtableBytes sizes LSM write buffers.
	MemtableBytes int64 `json:"memtable_bytes"`
	// CacheBytes sizes the LSM block cache or B+Tree buffer pool.
	CacheBytes int64 `json:"cache_bytes"`
	// LogMemBytes sizes FASTER's in-memory hybrid log region.
	LogMemBytes int64 `json:"log_mem_bytes"`
	// IndexBuckets sizes FASTER's hash index.
	IndexBuckets int `json:"index_buckets"`
	// DeleteThresholdMs is Lethe's delete persistence threshold.
	DeleteThresholdMs int64 `json:"delete_threshold_ms"`
	// WAL enables the LSM write-ahead log.
	WAL bool `json:"wal"`
	// SyncWrites fsyncs the LSM WAL on every write.
	SyncWrites bool `json:"sync_writes"`
	// Addr is the server address for the "remote" engine (external
	// state management, paper §8).
	Addr string `json:"addr"`
	// FS injects a filesystem for the durable engines (tests use
	// vfs.MemFS/vfs.FaultFS); nil means the real filesystem. Not part of
	// the JSON configuration surface.
	FS vfs.FS `json:"-"`
}

// Engines lists the canonical engine names.
func Engines() []string {
	return []string{"rocksdb", "lethe", "faster", "berkeleydb", "memstore", "remote"}
}

// Open constructs the configured store.
func Open(cfg Config) (kv.Store, error) {
	switch cfg.Engine {
	case "rocksdb", "lsm":
		return lsm.Open(lsm.Options{
			Dir:            cfg.Dir,
			MemtableSize:   cfg.MemtableBytes,
			BlockCacheSize: cfg.CacheBytes,
			WAL:            cfg.WAL,
			SyncWrites:     cfg.SyncWrites,
			FS:             cfg.FS,
		})
	case "lethe":
		return lethe.Open(lethe.Options{
			LSM: lsm.Options{
				Dir:            cfg.Dir,
				MemtableSize:   cfg.MemtableBytes,
				BlockCacheSize: cfg.CacheBytes,
				WAL:            cfg.WAL,
				SyncWrites:     cfg.SyncWrites,
				FS:             cfg.FS,
			},
			DeleteThreshold: time.Duration(cfg.DeleteThresholdMs) * time.Millisecond,
		})
	case "faster":
		return faster.Open(faster.Options{
			Dir:          cfg.Dir,
			LogMemBudget: cfg.LogMemBytes,
			IndexBuckets: cfg.IndexBuckets,
			FS:           cfg.FS,
		})
	case "berkeleydb", "btree":
		return btree.Open(btree.Options{Dir: cfg.Dir, CacheSize: cfg.CacheBytes, FS: cfg.FS})
	case "memstore":
		return memstore.New(), nil
	case "remote":
		if cfg.Addr == "" {
			return nil, fmt.Errorf("stores: remote engine requires addr")
		}
		return remote.Dial(cfg.Addr)
	default:
		return nil, fmt.Errorf("stores: unknown engine %q (want one of %v)", cfg.Engine, Engines())
	}
}
