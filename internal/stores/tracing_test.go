package stores

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/obs"
	"gadget/internal/remote"
	"gadget/internal/shard"
	"gadget/internal/tracing"
)

// slowStore adds a fixed service time to every point operation, so a
// traced run has a dominant, known server-side latency component.
type slowStore struct {
	kv.Store
	d time.Duration
}

func (s *slowStore) Get(key []byte) ([]byte, error) {
	time.Sleep(s.d)
	return s.Store.Get(key)
}

func (s *slowStore) Put(key, value []byte) error {
	time.Sleep(s.d)
	return s.Store.Put(key, value)
}

func (s *slowStore) Merge(key, operand []byte) error {
	time.Sleep(s.d)
	return s.Store.Merge(key, operand)
}

func (s *slowStore) Delete(key []byte) error {
	time.Sleep(s.d)
	return s.Store.Delete(key)
}

// TestTracedStageSumCoversServiceLatency is the tracing acceptance
// check: for traced ops through the sharded remote path, the sum of the
// recorded per-stage durations must cover at least 90% of the measured
// end-to-end service latency. End-to-end time and stage stamps both
// come from the tracer's injectable clock (the default monotonic one
// here), so the comparison never mixes clock domains. The backing
// stores sleep ~500us per op, so untracked client-side overhead (encode,
// scheduler noise) stays well under the 10% allowance.
func TestTracedStageSumCoversServiceLatency(t *testing.T) {
	const shards = 2
	backs := make([]kv.Store, shards)
	for i := range backs {
		backs[i] = &slowStore{Store: memstore.New(), d: 500 * time.Microsecond}
		defer backs[i].Close()
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := shard.Dial(srv.Addrs(), remote.PipelineOptions{Depth: 8, Traced: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	tr := tracing.New(tracing.Options{SampleN: 1, SlowK: 64})
	const ops = 40
	var sumStages, sumE2E int64
	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("acc-%d", i))
		op := kv.TracedOp{Op: kv.OpPut, Key: key, Val: []byte("v")}
		if i%3 == 0 {
			op = kv.TracedOp{Op: kv.OpGet, Key: key}
		}
		tc := tr.Start(uint8(op.Op))
		if tc == nil {
			t.Fatal("SampleN=1 tracer must sample every op")
		}
		t0 := tc.Now()
		_, err := kv.DoTraced(cli, tc, op)
		e2e := tc.Now() - t0
		if err != nil && !errors.Is(err, kv.ErrNotFound) {
			t.Fatalf("op %d: %v", i, err)
		}
		if ss := tc.StageSum(); i > 0 { // skip op 0: first-dial handshake noise
			sumStages += ss
			sumE2E += e2e
		}
		for _, s := range []tracing.Stage{tracing.StageWire, tracing.StageServer} {
			if tc.Dur(s) <= 0 {
				t.Errorf("op %d: stage %s not recorded", i, s)
			}
		}
		tr.Finish(tc)
	}
	if t.Failed() {
		return
	}
	if sumE2E <= 0 {
		t.Fatalf("no end-to-end latency measured")
	}
	if frac := float64(sumStages) / float64(sumE2E); frac < 0.9 {
		t.Fatalf("stage durations cover %.1f%% of end-to-end latency, want >= 90%% (stages %v, e2e %v)",
			100*frac, time.Duration(sumStages), time.Duration(sumE2E))
	}
}

// TestTracedReconnectExactlyOnce replays the connection-killing-dialer
// scenario with tracing enabled on every op: requests answered from the
// server's replay window after a reconnect must complete their trace
// exactly once. After quiescing, started == finished on the tracer
// (no leaked pooled contexts, no duplicate completion) and every merge
// operand is applied exactly once.
func TestTracedReconnectExactlyOnce(t *testing.T) {
	const shards = 2
	backs := make([]kv.Store, shards)
	for i := range backs {
		backs[i] = memstore.New()
		defer backs[i].Close()
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var dialMu sync.Mutex
	dials := 0
	cli, err := shard.Dial(srv.Addrs(), remote.PipelineOptions{
		Depth:   8,
		Redials: 60,
		Traced:  true,
		Dialer: func(addr string) (net.Conn, error) {
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			dialMu.Lock()
			dials++
			budget := -1
			if dials%2 == 1 { // every other connection dies mid-stream
				budget = 200 + 53*dials%900
			}
			dialMu.Unlock()
			return &shardFlakyConn{Conn: conn, budget: budget}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	tr := tracing.New(tracing.Options{SampleN: 1, SlowK: 8})
	const workers, perWorker = 4, 80
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("txo-%d", w))
			for i := 0; i < perWorker; i++ {
				tc := tr.Start(uint8(kv.OpMerge))
				op := kv.TracedOp{Op: kv.OpMerge, Key: key, Val: []byte(fmt.Sprintf("<%d:%d>", w, i))}
				_, err := kv.DoTraced(cli, tc, op)
				tr.Finish(tc)
				if err != nil {
					t.Errorf("merge %d/%d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	started, finished := tr.Stats()
	if started != workers*perWorker {
		t.Fatalf("started %d traces, want %d", started, workers*perWorker)
	}
	if started != finished {
		t.Fatalf("trace leak or duplicate completion under reconnect replay: started=%d finished=%d", started, finished)
	}
	for w := 0; w < workers; w++ {
		key := []byte(fmt.Sprintf("txo-%d", w))
		var got []byte
		var err error
		for _, b := range backs {
			if v, gerr := b.Get(key); gerr == nil {
				got, err = v, nil
				break
			} else {
				err = gerr
			}
		}
		if err != nil {
			t.Fatalf("key txo-%d: %v", w, err)
		}
		for i := 0; i < perWorker; i++ {
			token := fmt.Sprintf("<%d:%d>", w, i)
			if n := strings.Count(string(got), token); n != 1 {
				t.Fatalf("operand %s applied %d times (duplicate or dropped merge under traced reconnect)", token, n)
			}
		}
	}
}

// TestShardServerExposesPerShardMetrics registers a sharded server with
// the obs registry exactly as gadget-server does and asserts the
// exposition carries every shard's metrics under its shard<i>. prefix.
func TestShardServerExposesPerShardMetrics(t *testing.T) {
	backs := []kv.Store{memstore.New(), memstore.New()}
	for _, b := range backs {
		defer b.Close()
	}
	srv, err := shard.Serve(backs, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := shard.Dial(srv.Addrs(), remote.PipelineOptions{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 32; i++ {
		if err := cli.Put([]byte(fmt.Sprintf("pm-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	reg := obs.NewRegistry()
	obs.RegisterStoreCollector(reg, srv)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for i := range backs {
		prefix := fmt.Sprintf(`metric="shard%d.`, i)
		if !strings.Contains(out, prefix) {
			t.Fatalf("exposition has no %s samples:\n%s", prefix, out)
		}
	}
}
