// Package flinksim is a miniature stream processing engine that plays
// the role Apache Flink plays in the paper: the *reference* system whose
// state access traces are the ground truth Gadget is validated against
// (paper §3 instruments Flink's state management layer; we instrument
// this engine's store instead — see DESIGN.md §4).
//
// Unlike the Gadget harness (package core), flinksim actually executes
// operators: window buckets hold real event payloads, incremental
// aggregates are real counters, session windows merge real state, and
// every trigger produces an output after reading state back. Running it
// against the real KV engines therefore doubles as an end-to-end
// integration test of merge/put/delete semantics under streaming
// workloads.
package flinksim

import (
	"container/heap"
	"encoding/binary"
	"fmt"

	"gadget/internal/core"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/memstore"
)

// RecordingStore wraps a kv.Store, recording every access in order —
// the instrumentation layer of the paper's §3.1.
type RecordingStore struct {
	inner kv.Store
	trace []kv.Access
	clock int64
}

// NewRecordingStore wraps inner.
func NewRecordingStore(inner kv.Store) *RecordingStore {
	return &RecordingStore{inner: inner}
}

// SetClock sets the event time stamped on subsequent recorded accesses.
func (r *RecordingStore) SetClock(t int64) { r.clock = t }

// Trace returns the recorded access stream.
func (r *RecordingStore) Trace() []kv.Access { return r.trace }

func (r *RecordingStore) record(op kv.Op, key []byte, size uint32) {
	sk, err := kv.DecodeStateKey(key)
	if err != nil {
		return
	}
	r.trace = append(r.trace, kv.Access{Op: op, Key: sk, Size: size, Time: r.clock})
}

// Get implements kv.Store.
func (r *RecordingStore) Get(key []byte) ([]byte, error) {
	r.record(kv.OpGet, key, 0)
	return r.inner.Get(key)
}

// FGet is a Get recorded as the trigger-time final get.
func (r *RecordingStore) FGet(key []byte) ([]byte, error) {
	r.record(kv.OpFGet, key, 0)
	return r.inner.Get(key)
}

// Put implements kv.Store.
func (r *RecordingStore) Put(key, value []byte) error {
	r.record(kv.OpPut, key, uint32(len(value)))
	return r.inner.Put(key, value)
}

// Merge implements kv.Store.
func (r *RecordingStore) Merge(key, operand []byte) error {
	r.record(kv.OpMerge, key, uint32(len(operand)))
	return r.inner.Merge(key, operand)
}

// Delete implements kv.Store.
func (r *RecordingStore) Delete(key []byte) error {
	r.record(kv.OpDelete, key, 0)
	return r.inner.Delete(key)
}

// Scan records an OpScan access (keyed by the low bound — one StateKey
// encodes the range, matching the harness's trace convention) and
// executes a consistent range scan against the inner store.
func (r *RecordingStore) Scan(lo, hi kv.StateKey) ([]kv.Entry, error) {
	r.trace = append(r.trace, kv.Access{Op: kv.OpScan, Key: lo, Time: r.clock})
	return kv.ScanRange(r.inner, lo, hi)
}

// Close implements kv.Store (the inner store is closed too).
func (r *RecordingStore) Close() error { return r.inner.Close() }

// Summary reports what the engine did during a run.
type Summary struct {
	Events      uint64
	Outputs     uint64
	LateDropped uint64
	Merges      uint64
}

// Engine executes one operator over one (or two merged) input streams,
// keeping all operator state in a kv.Store.
type Engine struct {
	cfg     core.Config
	store   stateStore
	rec     *RecordingStore // non-nil when the store records
	op      operator
	summary Summary
	timers  timerHeap
	meta    map[kv.StateKey]*stateMeta
	wm      int64
}

// stateStore is the store surface operators use (FGet distinguishes
// trigger-time reads in recorded traces).
type stateStore interface {
	Get(key []byte) ([]byte, error)
	FGet(key []byte) ([]byte, error)
	Put(key, value []byte) error
	Merge(key, operand []byte) error
	Delete(key []byte) error
	// Scan returns the live entries in the inclusive range [lo, hi] as a
	// consistent point-in-time view, in ascending key order.
	Scan(lo, hi kv.StateKey) ([]kv.Entry, error)
}

// plainStore adapts any kv.Store to stateStore (FGet = Get).
type plainStore struct{ kv.Store }

func (p plainStore) FGet(key []byte) ([]byte, error) { return p.Store.Get(key) }

func (p plainStore) Scan(lo, hi kv.StateKey) ([]kv.Entry, error) {
	return kv.ScanRange(p.Store, lo, hi)
}

// stateMeta is the engine's in-memory bookkeeping per state key (window
// bounds, element counts for cross-checking, session bounds).
type stateMeta struct {
	key          kv.StateKey
	fireAt       int64
	elements     int
	sessionStart int64
	sessionEnd   int64
	hasMerge     bool
}

type timerEntry struct {
	at  int64
	key kv.StateKey
}

type timerHeap []timerEntry

func (h timerHeap) Len() int            { return len(h) }
func (h timerHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h timerHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x interface{}) { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// New builds an engine for cfg over the given store. Pass a
// *RecordingStore to collect the state access trace.
func New(cfg core.Config, store kv.Store) (*Engine, error) {
	e := &Engine{cfg: cfg, meta: make(map[kv.StateKey]*stateMeta), wm: -1}
	if rec, ok := store.(*RecordingStore); ok {
		e.store = rec
		e.rec = rec
	} else {
		e.store = plainStore{store}
	}
	op, err := newOperator(e)
	if err != nil {
		return nil, err
	}
	e.op = op
	return e, nil
}

// Run drives the engine over src to exhaustion.
func (e *Engine) Run(src eventgen.Source) (Summary, error) {
	for {
		it, ok := src.Next()
		if !ok {
			return e.summary, nil
		}
		switch it.Kind {
		case eventgen.ItemEvent:
			e.summary.Events++
			if e.rec != nil {
				e.rec.SetClock(it.Event.Time)
			}
			if err := e.op.onEvent(it.Event); err != nil {
				return e.summary, err
			}
		case eventgen.ItemWatermark:
			if it.WM <= e.wm {
				continue
			}
			e.wm = it.WM
			if e.rec != nil {
				e.rec.SetClock(it.WM)
			}
			if err := e.fireTimers(it.WM); err != nil {
				return e.summary, err
			}
		}
	}
}

// fireTimers pops due timers and lets the operator terminate each state
// machine whose expiry still matches (lazy invalidation, as in core).
func (e *Engine) fireTimers(wm int64) error {
	for len(e.timers) > 0 && e.timers[0].at <= wm {
		t := heap.Pop(&e.timers).(timerEntry)
		m, ok := e.meta[t.key]
		if !ok || m.fireAt != t.at {
			continue
		}
		if err := e.op.onTimer(m); err != nil {
			return err
		}
	}
	return nil
}

func (e *Engine) registerTimer(m *stateMeta) {
	heap.Push(&e.timers, timerEntry{at: m.fireAt, key: m.key})
}

func (e *Engine) getMeta(key kv.StateKey, fireAt int64) (*stateMeta, bool) {
	if m, ok := e.meta[key]; ok {
		return m, false
	}
	m := &stateMeta{key: key, fireAt: fireAt}
	e.meta[key] = m
	if fireAt >= 0 {
		e.registerTimer(m)
	}
	return m, true
}

func (e *Engine) dropMeta(m *stateMeta) { delete(e.meta, m.key) }

// ActiveState returns the number of live state entries tracked.
func (e *Engine) ActiveState() int { return len(e.meta) }

// CollectTrace runs cfg over src with a recording memstore, returning the
// ground-truth state access trace — the equivalent of the paper's
// instrumented-Flink trace collection.
func CollectTrace(cfg core.Config, src eventgen.Source) ([]kv.Access, Summary, error) {
	rec := NewRecordingStore(memstore.New())
	defer rec.Close()
	eng, err := New(cfg, rec)
	if err != nil {
		return nil, Summary{}, err
	}
	sum, err := eng.Run(src)
	if err != nil {
		return nil, sum, err
	}
	return rec.Trace(), sum, nil
}

// Encoding helpers shared by the operators: incremental aggregates are
// counters padded to AggStateSize; holistic bucket operands are
// length-prefixed payloads so trigger-time reads can count elements.

func (e *Engine) encodeAgg(count uint64) []byte {
	size := e.cfg.AggStateSize
	if size < 8 {
		size = 8
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint64(out, count)
	return out
}

func decodeAgg(v []byte) (uint64, error) {
	if len(v) < 8 {
		return 0, fmt.Errorf("flinksim: aggregate too short (%d bytes)", len(v))
	}
	return binary.BigEndian.Uint64(v), nil
}

// operandFor builds a length-prefixed bucket element for an event.
func operandFor(size uint32) []byte {
	if size < 1 {
		size = 1
	}
	out := make([]byte, 4+size)
	binary.LittleEndian.PutUint32(out, size)
	return out
}

// countElements walks a concatenation of length-prefixed operands.
func countElements(bucket []byte) (int, error) {
	n := 0
	for len(bucket) > 0 {
		if len(bucket) < 4 {
			return 0, fmt.Errorf("flinksim: torn bucket element")
		}
		sz := binary.LittleEndian.Uint32(bucket)
		if uint32(len(bucket)-4) < sz {
			return 0, fmt.Errorf("flinksim: bucket element overruns (%d of %d)", sz, len(bucket)-4)
		}
		bucket = bucket[4+sz:]
		n++
	}
	return n, nil
}
