package flinksim

import (
	"fmt"

	"gadget/internal/core"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

// operator is a real (state-materializing) streaming operator.
type operator interface {
	onEvent(e eventgen.Event) error
	onTimer(m *stateMeta) error
}

func newOperator(e *Engine) (operator, error) {
	c := e.cfg
	switch c.Operator {
	case core.TumblingIncr:
		return &windowExec{e: e, length: c.WindowLengthMs, slide: c.WindowLengthMs}, nil
	case core.TumblingHol:
		return &windowExec{e: e, holistic: true, length: c.WindowLengthMs, slide: c.WindowLengthMs}, nil
	case core.SlidingIncr:
		return &windowExec{e: e, length: c.WindowLengthMs, slide: c.WindowSlideMs}, nil
	case core.SlidingHol:
		return &windowExec{e: e, holistic: true, length: c.WindowLengthMs, slide: c.WindowSlideMs}, nil
	case core.SessionIncr:
		return &sessionExec{e: e, gap: c.SessionGapMs, sessions: map[uint64][]*stateMeta{}}, nil
	case core.SessionHol:
		return &sessionExec{e: e, holistic: true, gap: c.SessionGapMs, sessions: map[uint64][]*stateMeta{}}, nil
	case core.TumblingJoin:
		return &windowJoinExec{e: e, length: c.WindowLengthMs, slide: c.WindowLengthMs}, nil
	case core.SlidingJoin:
		return &windowJoinExec{e: e, length: c.WindowLengthMs, slide: c.WindowSlideMs}, nil
	case core.IntervalJoin:
		return &intervalJoinExec{e: e, lower: c.IntervalLowerMs, upper: c.IntervalUpperMs}, nil
	case core.ContinJoin:
		return &continuousJoinExec{e: e, open: map[uint64]*contOpen{}}, nil
	case core.Aggregation:
		return &aggregationExec{e: e}, nil
	case core.TopKDrain:
		return &topKExec{e: e, length: c.WindowLengthMs, windows: map[uint64]map[uint64]uint64{}}, nil
	case core.RangeJoinProbe:
		return &rangeJoinExec{e: e, lower: c.IntervalLowerMs, upper: c.IntervalUpperMs}, nil
	default:
		return nil, fmt.Errorf("flinksim: unknown operator %q", c.Operator)
	}
}

func assignedWindows(t, length, slide int64) []int64 {
	last := t - t%slide
	out := make([]int64, 0, length/slide+1)
	for start := last; start > t-length; start -= slide {
		if start < 0 {
			break
		}
		out = append(out, start)
	}
	return out
}

// windowExec materializes tumbling and sliding windows.
type windowExec struct {
	e        *Engine
	holistic bool
	length   int64
	slide    int64
}

func (w *windowExec) onEvent(e eventgen.Event) error {
	for _, start := range assignedWindows(e.Time, w.length, w.slide) {
		fireAt := start + w.length + w.e.cfg.AllowedLatenessMs
		if fireAt <= w.e.wm {
			w.e.summary.LateDropped++
			continue
		}
		sk := kv.StateKey{Group: e.Key, Sub: uint64(start)}
		m, _ := w.e.getMeta(sk, fireAt)
		m.elements++
		key := sk.Bytes()
		if w.holistic {
			if err := w.e.store.Merge(key, operandFor(e.Size)); err != nil {
				return err
			}
			w.e.summary.Merges++
			continue
		}
		// Incremental: read-modify-write the counter.
		var count uint64
		v, err := w.e.store.Get(key)
		switch err {
		case nil:
			count, err = decodeAgg(v)
			if err != nil {
				return err
			}
		case kv.ErrNotFound:
		default:
			return err
		}
		if err := w.e.store.Put(key, w.e.encodeAgg(count+1)); err != nil {
			return err
		}
	}
	return nil
}

func (w *windowExec) onTimer(m *stateMeta) error {
	key := m.key.Bytes()
	v, err := w.e.store.FGet(key)
	if err != nil && err != kv.ErrNotFound {
		return err
	}
	// Cross-check the store against the engine's own bookkeeping: this
	// is what makes flinksim an end-to-end test of the KV engines.
	if err == nil {
		if w.holistic {
			n, cerr := countElements(v)
			if cerr != nil {
				return cerr
			}
			if n != m.elements {
				return fmt.Errorf("flinksim: window %v holds %d elements, expected %d", m.key, n, m.elements)
			}
		} else {
			count, cerr := decodeAgg(v)
			if cerr != nil {
				return cerr
			}
			if int(count) != m.elements {
				return fmt.Errorf("flinksim: window %v count %d, expected %d", m.key, count, m.elements)
			}
		}
	}
	if err := w.e.store.Delete(key); err != nil {
		return err
	}
	w.e.summary.Outputs++
	w.e.dropMeta(m)
	return nil
}

// aggregationExec materializes continuous per-key aggregation.
type aggregationExec struct {
	e *Engine
}

func (a *aggregationExec) onEvent(e eventgen.Event) error {
	sk := kv.StateKey{Group: e.Key}
	m, _ := a.e.getMeta(sk, -1)
	m.elements++
	key := sk.Bytes()
	var count uint64
	v, err := a.e.store.Get(key)
	switch err {
	case nil:
		count, err = decodeAgg(v)
		if err != nil {
			return err
		}
	case kv.ErrNotFound:
	default:
		return err
	}
	if int(count)+1 != m.elements {
		return fmt.Errorf("flinksim: aggregate %v count %d, expected %d", sk, count+1, m.elements)
	}
	if err := a.e.store.Put(key, a.e.encodeAgg(count+1)); err != nil {
		return err
	}
	a.e.summary.Outputs++ // continuous aggregation emits per event
	return nil
}

func (a *aggregationExec) onTimer(*stateMeta) error { return nil }

// sessionExec materializes merging session windows.
type sessionExec struct {
	e        *Engine
	holistic bool
	gap      int64
	sessions map[uint64][]*stateMeta
}

func (s *sessionExec) onEvent(e eventgen.Event) error {
	if e.Time+s.gap+s.e.cfg.AllowedLatenessMs <= s.e.wm {
		s.e.summary.LateDropped++
		return nil
	}
	var hit []*stateMeta
	for _, m := range s.sessions[e.Key] {
		if e.Time+s.gap >= m.sessionStart && e.Time <= m.sessionEnd {
			hit = append(hit, m)
		}
	}
	var target *stateMeta
	switch len(hit) {
	case 0:
		sk := kv.StateKey{Group: e.Key, Sub: uint64(e.Time)}
		m, _ := s.e.getMeta(sk, e.Time+s.gap+s.e.cfg.AllowedLatenessMs)
		m.sessionStart = e.Time
		m.sessionEnd = e.Time + s.gap
		s.sessions[e.Key] = append(s.sessions[e.Key], m)
		target = m
	case 1:
		target = hit[0]
	default:
		a, b := hit[0], hit[1]
		if b.sessionStart < a.sessionStart {
			a, b = b, a
		}
		// Fold session b into a: read b, merge its bucket into a,
		// delete b — with real state movement.
		bKey := b.key.Bytes()
		v, err := s.e.store.Get(bKey)
		if err != nil && err != kv.ErrNotFound {
			return err
		}
		if err == nil {
			if err := s.e.store.Merge(a.key.Bytes(), v); err != nil {
				return err
			}
			s.e.summary.Merges++
		}
		if err := s.e.store.Delete(bKey); err != nil {
			return err
		}
		a.elements += b.elements
		if b.sessionEnd > a.sessionEnd {
			a.sessionEnd = b.sessionEnd
		}
		s.remove(e.Key, b)
		s.e.dropMeta(b)
		target = a
	}
	if e.Time+s.gap > target.sessionEnd {
		target.sessionEnd = e.Time + s.gap
	}
	newFire := target.sessionEnd + s.e.cfg.AllowedLatenessMs
	if newFire != target.fireAt {
		target.fireAt = newFire
		s.e.registerTimer(target)
	}
	target.elements++
	key := target.key.Bytes()
	if s.holistic {
		if err := s.e.store.Merge(key, operandFor(e.Size)); err != nil {
			return err
		}
		s.e.summary.Merges++
		return nil
	}
	var count uint64
	v, err := s.e.store.Get(key)
	switch err {
	case nil:
		count, err = decodeAgg(v)
		if err != nil {
			return err
		}
	case kv.ErrNotFound:
	default:
		return err
	}
	return s.e.store.Put(key, s.e.encodeAgg(count+1))
}

func (s *sessionExec) remove(key uint64, m *stateMeta) {
	list := s.sessions[key]
	for i, x := range list {
		if x == m {
			s.sessions[key] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(s.sessions[key]) == 0 {
		delete(s.sessions, key)
	}
}

func (s *sessionExec) onTimer(m *stateMeta) error {
	key := m.key.Bytes()
	v, err := s.e.store.FGet(key)
	if err != nil && err != kv.ErrNotFound {
		return err
	}
	if err == nil && s.holistic {
		n, cerr := countElements(v)
		if cerr != nil {
			return cerr
		}
		if n != m.elements {
			return fmt.Errorf("flinksim: session %v holds %d, expected %d", m.key, n, m.elements)
		}
	}
	if err := s.e.store.Delete(key); err != nil {
		return err
	}
	s.e.summary.Outputs++
	s.remove(m.key.Group, m)
	s.e.dropMeta(m)
	return nil
}

func streamGroup(key uint64, stream uint8) uint64 { return key<<1 | uint64(stream) }

// bufferRootSub mirrors core's map-state buffer root namespace.
const bufferRootSub = ^uint64(0)

// windowJoinExec materializes window joins: per-stream buckets that are
// both read on trigger.
type windowJoinExec struct {
	e      *Engine
	length int64
	slide  int64
}

func (w *windowJoinExec) onEvent(e eventgen.Event) error {
	for _, start := range assignedWindows(e.Time, w.length, w.slide) {
		fireAt := start + w.length + w.e.cfg.AllowedLatenessMs
		if fireAt <= w.e.wm {
			w.e.summary.LateDropped++
			continue
		}
		sk := kv.StateKey{Group: streamGroup(e.Key, e.Stream), Sub: uint64(start)}
		m, _ := w.e.getMeta(sk, fireAt)
		m.elements++
		if err := w.e.store.Merge(sk.Bytes(), operandFor(e.Size)); err != nil {
			return err
		}
		w.e.summary.Merges++
	}
	return nil
}

func (w *windowJoinExec) onTimer(m *stateMeta) error {
	key := m.key.Bytes()
	v, err := w.e.store.FGet(key)
	if err != nil && err != kv.ErrNotFound {
		return err
	}
	if err == nil {
		n, cerr := countElements(v)
		if cerr != nil {
			return cerr
		}
		if n != m.elements {
			return fmt.Errorf("flinksim: join bucket %v holds %d, expected %d", m.key, n, m.elements)
		}
	}
	if err := w.e.store.Delete(key); err != nil {
		return err
	}
	w.e.summary.Outputs++
	w.e.dropMeta(m)
	return nil
}

// intervalJoinExec materializes the interval join's per-event buffers.
type intervalJoinExec struct {
	e            *Engine
	lower, upper int64
}

func (ij *intervalJoinExec) onEvent(e eventgen.Event) error {
	if e.Time+ij.upper+ij.e.cfg.AllowedLatenessMs <= ij.e.wm {
		ij.e.summary.LateDropped++
		return nil
	}
	own := kv.StateKey{Group: streamGroup(e.Key, e.Stream), Sub: uint64(e.Time)}
	other := kv.StateKey{Group: streamGroup(e.Key, 1-e.Stream&1), Sub: bufferRootSub}
	m, _ := ij.e.getMeta(own, e.Time+ij.upper+ij.e.cfg.AllowedLatenessMs)
	m.elements++
	if err := ij.e.store.Put(own.Bytes(), operandFor(e.Size)); err != nil {
		return err
	}
	_, err := ij.e.store.Get(other.Bytes())
	if err == nil {
		ij.e.summary.Outputs++ // a match
	} else if err != kv.ErrNotFound {
		return err
	}
	return nil
}

func (ij *intervalJoinExec) onTimer(m *stateMeta) error {
	if err := ij.e.store.Delete(m.key.Bytes()); err != nil {
		return err
	}
	ij.e.dropMeta(m)
	return nil
}

// continuousJoinExec materializes the validity-interval join.
type continuousJoinExec struct {
	e    *Engine
	open map[uint64]*contOpen
}

type contOpen struct{ accumulated int }

func (cj *continuousJoinExec) onEvent(e eventgen.Event) error {
	buildKey := kv.StateKey{Group: e.Key, Sub: 0}
	accumKey := kv.StateKey{Group: e.Key, Sub: 1}
	switch e.Kind {
	case eventgen.KindStart:
		// Re-opening refreshes the build record, keeping accumulated
		// matches (mirrors core's continuous join exactly).
		if _, ok := cj.open[e.Key]; !ok {
			cj.open[e.Key] = &contOpen{}
		}
		m, _ := cj.e.getMeta(buildKey, -1)
		m.elements++
		return cj.e.store.Put(buildKey.Bytes(), operandFor(e.Size))
	case eventgen.KindEnd:
		st, ok := cj.open[e.Key]
		if !ok {
			return nil
		}
		if st.accumulated > 0 {
			v, err := cj.e.store.FGet(accumKey.Bytes())
			if err != nil && err != kv.ErrNotFound {
				return err
			}
			if err == nil {
				n, cerr := countElements(v)
				if cerr != nil {
					return cerr
				}
				if n != st.accumulated {
					return fmt.Errorf("flinksim: accumulator %v holds %d, expected %d", accumKey, n, st.accumulated)
				}
			}
			if err := cj.e.store.Delete(accumKey.Bytes()); err != nil {
				return err
			}
			if m, ok := cj.e.meta[accumKey]; ok {
				cj.e.dropMeta(m)
			}
		}
		if err := cj.e.store.Delete(buildKey.Bytes()); err != nil {
			return err
		}
		if m, ok := cj.e.meta[buildKey]; ok {
			cj.e.dropMeta(m)
		}
		delete(cj.open, e.Key)
		cj.e.summary.Outputs++
		return nil
	default:
		_, err := cj.e.store.Get(buildKey.Bytes())
		if err != nil && err != kv.ErrNotFound {
			return err
		}
		st, ok := cj.open[e.Key]
		if !ok {
			return nil
		}
		if err == kv.ErrNotFound {
			return fmt.Errorf("flinksim: open interval for key %d but build record missing", e.Key)
		}
		st.accumulated++
		m, _ := cj.e.getMeta(accumKey, -1)
		m.elements++
		cj.e.summary.Merges++
		return cj.e.store.Merge(accumKey.Bytes(), operandFor(e.Size))
	}
}

func (cj *continuousJoinExec) onTimer(*stateMeta) error { return nil }

// topKRootSub mirrors core's per-window root machine namespace.
const topKRootSub = ^uint64(0)

// topKExec materializes the windowed top-K drain: real per-(window,
// event-key) counters maintained with read-modify-write, drained with
// one range scan on trigger and cross-checked against the engine's own
// per-window counts — the scan path's end-to-end test.
type topKExec struct {
	e       *Engine
	length  int64
	windows map[uint64]map[uint64]uint64 // window start -> event key -> count
}

func (t *topKExec) onEvent(e eventgen.Event) error {
	start := e.Time - e.Time%t.length
	fireAt := start + t.length + t.e.cfg.AllowedLatenessMs
	if fireAt <= t.e.wm {
		t.e.summary.LateDropped++
		return nil
	}
	root := kv.StateKey{Group: uint64(start), Sub: topKRootSub}
	if _, created := t.e.getMeta(root, fireAt); created {
		t.windows[uint64(start)] = make(map[uint64]uint64)
	}
	t.windows[uint64(start)][e.Key]++
	sk := kv.StateKey{Group: uint64(start), Sub: e.Key}
	key := sk.Bytes()
	var count uint64
	v, err := t.e.store.Get(key)
	switch err {
	case nil:
		count, err = decodeAgg(v)
		if err != nil {
			return err
		}
	case kv.ErrNotFound:
	default:
		return err
	}
	return t.e.store.Put(key, t.e.encodeAgg(count+1))
}

func (t *topKExec) onTimer(m *stateMeta) error {
	lo := kv.StateKey{Group: m.key.Group}
	entries, err := t.e.store.Scan(lo, lo.GroupEnd())
	if err != nil {
		return err
	}
	tracked := t.windows[m.key.Group]
	if len(entries) != len(tracked) {
		return fmt.Errorf("flinksim: topk window %d scan returned %d counters, expected %d",
			m.key.Group, len(entries), len(tracked))
	}
	for _, ent := range entries {
		count, cerr := decodeAgg(ent.Value)
		if cerr != nil {
			return cerr
		}
		if want, ok := tracked[ent.Key.Sub]; !ok || count != want {
			return fmt.Errorf("flinksim: topk counter %v is %d, expected %d", ent.Key, count, want)
		}
	}
	// Clear the window in scan (ascending key) order.
	for _, ent := range entries {
		if err := t.e.store.Delete(ent.Key.Bytes()); err != nil {
			return err
		}
	}
	delete(t.windows, m.key.Group)
	t.e.summary.Outputs++
	t.e.dropMeta(m)
	return nil
}

// rangeJoinExec materializes the range-join probe: stream 0 buffers
// build records under their timestamps, stream 1 scans the build
// buffer's matching time range. Scan results are cross-checked against
// the engine's live build bookkeeping.
type rangeJoinExec struct {
	e            *Engine
	lower, upper int64
}

func (rj *rangeJoinExec) onEvent(e eventgen.Event) error {
	if e.Time+rj.upper+rj.e.cfg.AllowedLatenessMs <= rj.e.wm {
		rj.e.summary.LateDropped++
		return nil
	}
	if e.Stream&1 == 0 {
		own := kv.StateKey{Group: streamGroup(e.Key, 0), Sub: uint64(e.Time)}
		m, _ := rj.e.getMeta(own, e.Time+rj.upper+rj.e.cfg.AllowedLatenessMs)
		m.elements++
		return rj.e.store.Put(own.Bytes(), operandFor(e.Size))
	}
	loTime := e.Time - rj.upper
	if loTime < 0 {
		loTime = 0
	}
	lo := kv.StateKey{Group: streamGroup(e.Key, 0), Sub: uint64(loTime)}
	entries, err := rj.e.store.Scan(lo, lo.GroupEnd())
	if err != nil {
		return err
	}
	// Every scanned build record must still be live in the engine's own
	// bookkeeping and arrive in ascending key order.
	for i, ent := range entries {
		if _, ok := rj.e.meta[ent.Key]; !ok {
			return fmt.Errorf("flinksim: range join scanned stale build record %v", ent.Key)
		}
		if i > 0 && !entries[i-1].Key.Less(ent.Key) {
			return fmt.Errorf("flinksim: range join scan out of order at %v", ent.Key)
		}
	}
	if len(entries) > 0 {
		rj.e.summary.Outputs++ // at least one match
	}
	return nil
}

func (rj *rangeJoinExec) onTimer(m *stateMeta) error {
	if err := rj.e.store.Delete(m.key.Bytes()); err != nil {
		return err
	}
	rj.e.dropMeta(m)
	return nil
}
