package flinksim

import (
	"fmt"
	"testing"

	"gadget/internal/btree"
	"gadget/internal/core"
	"gadget/internal/datasets"
	"gadget/internal/eventgen"
	"gadget/internal/faster"
	"gadget/internal/kv"
	"gadget/internal/lsm"
	"gadget/internal/memstore"
)

func syntheticSource(t *testing.T, n int, seed int64) eventgen.Source {
	t.Helper()
	g, err := eventgen.NewSynthetic(eventgen.Config{Events: n, Keys: 25, Seed: seed, RatePerSec: 2000})
	if err != nil {
		t.Fatal(err)
	}
	return eventgen.WithWatermarks(g, 100, 0)
}

func joinSource(t *testing.T, n int, seed int64) eventgen.Source {
	t.Helper()
	mk := func(stream uint8, pairs bool) eventgen.Source {
		g, err := eventgen.NewSynthetic(eventgen.Config{
			Events: n, Keys: 25, Seed: seed + int64(stream), RatePerSec: 2000,
			Stream: stream, StartEndPairs: pairs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return eventgen.WithWatermarks(g, 100, 0)
	}
	return eventgen.NewRoundRobin(mk(0, false), mk(1, true))
}

func sourceFor(t *testing.T, typ core.OperatorType, n int, seed int64) eventgen.Source {
	if typ.IsJoin() {
		return joinSource(t, n, seed)
	}
	return syntheticSource(t, n, seed)
}

// The central fidelity check behind the paper's Figure 10: for every
// operator, the Gadget harness (metadata-only simulation) must generate
// the same op/key access sequence as the real executing engine.
func TestGadgetMatchesEngineTraces(t *testing.T) {
	cfg := core.Config{
		WindowLengthMs: 1000, WindowSlideMs: 200, SessionGapMs: 500,
		IntervalLowerMs: 300, IntervalUpperMs: 600,
	}
	for _, typ := range core.OperatorTypes() {
		typ := typ
		t.Run(string(typ), func(t *testing.T) {
			c := cfg
			c.Operator = typ
			real, sum, err := CollectTrace(c, sourceFor(t, typ, 3000, 7))
			if err != nil {
				t.Fatal(err)
			}
			if sum.Events == 0 {
				t.Fatal("engine processed no events")
			}
			op, err := core.New(c)
			if err != nil {
				t.Fatal(err)
			}
			sim := core.Generate(sourceFor(t, typ, 3000, 7), op)
			if len(sim) != len(real) {
				t.Fatalf("trace lengths differ: gadget %d vs engine %d", len(sim), len(real))
			}
			for i := range sim {
				if sim[i].Op != real[i].Op || sim[i].Key != real[i].Key {
					t.Fatalf("access %d differs: gadget %v %v vs engine %v %v",
						i, sim[i].Op, sim[i].Key, real[i].Op, real[i].Key)
				}
			}
		})
	}
}

// Running the engine against the real KV stores cross-checks their
// merge/put/delete semantics end to end (the engine verifies window
// contents on every trigger).
func TestEngineAgainstRealStores(t *testing.T) {
	cfg := core.Config{
		Operator:       core.SlidingHol,
		WindowLengthMs: 500, WindowSlideMs: 100,
	}
	stores := map[string]func(t *testing.T) kv.Store{
		"lsm": func(t *testing.T) kv.Store {
			db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), MemtableSize: 64 << 10, L0CompactionTrigger: 2, BaseLevelSize: 256 << 10})
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		"faster": func(t *testing.T) kv.Store {
			s, err := faster.Open(faster.Options{Dir: t.TempDir(), IndexBuckets: 4096, LogMemBudget: 8 << 20})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"btree": func(t *testing.T) kv.Store {
			s, err := btree.Open(btree.Options{Dir: t.TempDir(), CacheSize: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			return s
		},
		"memstore": func(t *testing.T) kv.Store { return memstore.New() },
	}
	for name, mk := range stores {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			store := mk(t)
			defer store.Close()
			eng, err := New(cfg, store)
			if err != nil {
				t.Fatal(err)
			}
			sum, err := eng.Run(syntheticSource(t, 4000, 3))
			if err != nil {
				t.Fatalf("engine consistency check failed on %s: %v", name, err)
			}
			if sum.Outputs == 0 {
				t.Fatal("no windows fired")
			}
			if eng.ActiveState() != 0 {
				t.Fatalf("state leaked: %d entries", eng.ActiveState())
			}
		})
	}
}

func TestIncrementalWindowCountsVerified(t *testing.T) {
	cfg := core.Config{Operator: core.TumblingIncr, WindowLengthMs: 1000}
	db, err := lsm.Open(lsm.Options{Dir: t.TempDir(), MemtableSize: 64 << 10, L0CompactionTrigger: 2, BaseLevelSize: 256 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	eng, err := New(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(syntheticSource(t, 5000, 11)); err != nil {
		t.Fatalf("count verification failed: %v", err)
	}
}

func TestAggregationOutputsPerEvent(t *testing.T) {
	cfg := core.Config{Operator: core.Aggregation}
	rec := NewRecordingStore(memstore.New())
	defer rec.Close()
	eng, err := New(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(syntheticSource(t, 1000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Outputs != 1000 {
		t.Fatalf("outputs = %d", sum.Outputs)
	}
	if len(rec.Trace()) != 2000 {
		t.Fatalf("trace len = %d", len(rec.Trace()))
	}
}

func TestSessionMergingWithRealState(t *testing.T) {
	cfg := core.Config{Operator: core.SessionHol, SessionGapMs: 300}
	rec := NewRecordingStore(memstore.New())
	defer rec.Close()
	eng, err := New(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(syntheticSource(t, 5000, 13))
	if err != nil {
		t.Fatalf("session verification failed: %v", err)
	}
	if sum.Outputs == 0 {
		t.Fatal("no sessions fired")
	}
}

func TestContinuousJoinOnDataset(t *testing.T) {
	ds := datasets.Borg(0.002, 3)
	src, ok := ds.JoinSource(100)
	if !ok {
		t.Fatal("borg must support joins")
	}
	cfg := core.Config{Operator: core.ContinJoin}
	rec := NewRecordingStore(memstore.New())
	defer rec.Close()
	eng, err := New(cfg, rec)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := eng.Run(src)
	if err != nil {
		t.Fatalf("continuous join verification failed: %v", err)
	}
	if sum.Outputs == 0 {
		t.Fatal("no joins completed")
	}
	// Puts must be rare relative to gets (few jobs, many task events) —
	// the paper's Table 1 Borg continuous-join shape.
	counts := map[kv.Op]int{}
	for _, a := range rec.Trace() {
		counts[a.Op]++
	}
	if counts[kv.OpPut]*10 > counts[kv.OpGet] {
		t.Fatalf("puts %d should be far below gets %d", counts[kv.OpPut], counts[kv.OpGet])
	}
}

func TestRecordingStoreClock(t *testing.T) {
	rec := NewRecordingStore(memstore.New())
	defer rec.Close()
	rec.SetClock(42)
	key := (kv.StateKey{Group: 1}).Bytes()
	rec.Put(key, []byte("v"))
	tr := rec.Trace()
	if len(tr) != 1 || tr[0].Time != 42 || tr[0].Op != kv.OpPut || tr[0].Size != 1 {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestUnknownOperator(t *testing.T) {
	if _, err := New(core.Config{Operator: "bogus"}, memstore.New()); err == nil {
		t.Fatal("unknown operator should fail")
	}
}

func BenchmarkEngineTumblingIncr(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := eventgen.NewSynthetic(eventgen.Config{Events: 10000, Keys: 100, Seed: 1, RatePerSec: 2000})
		src := eventgen.WithWatermarks(g, 100, 0)
		eng, _ := New(core.Config{Operator: core.TumblingIncr, WindowLengthMs: 1000}, memstore.New())
		if _, err := eng.Run(src); err != nil {
			b.Fatal(err)
		}
	}
}

var _ = fmt.Sprintf
