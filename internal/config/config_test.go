package config

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gadget/internal/core"
	"gadget/internal/dist"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/vfs"
)

func TestParseDefaults(t *testing.T) {
	c, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Source.Type != "synthetic" || c.Source.Events != 100000 {
		t.Fatalf("source defaults = %+v", c.Source)
	}
	if c.Operator.Operator != core.TumblingIncr {
		t.Fatalf("operator default = %v", c.Operator.Operator)
	}
	if c.Store.Engine != "memstore" || c.Run.Mode != "online" {
		t.Fatalf("defaults = %+v %+v", c.Store, c.Run)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
		"source": {"type": "dataset", "dataset": "taxi", "scale": 0.005, "watermark_every": 50},
		"operator": {"type": "session-hol", "session_gap_ms": 60000},
		"store": {"engine": "rocksdb", "dir": "/tmp/x"},
		"run": {"mode": "offline", "trace_path": "/tmp/t.trace"}
	}`
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Source.Dataset != "taxi" || c.Operator.Operator != core.SessionHol {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []string{
		`{"source": {"type": "nope"}}`,
		`{"source": {"type": "dataset", "dataset": "nope"}}`,
		`{"operator": {"type": "nope"}}`,
		`{"run": {"mode": "nope"}}`,
		`{"run": {"mode": "offline"}}`,
		`{"obs": {}}`,
		`{"obs": {"sample_interval_ms": 0}}`,
		`{"obs": {"sample_interval_ms": -100}}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("doc %q should fail", doc)
		}
	}
}

func TestRemoteStoreConfig(t *testing.T) {
	doc := `{
		"store": {
			"engine": "remote",
			"addr": "127.0.0.1:7301",
			"remote": {"shards": 4, "pipeline_depth": 32, "batch_bytes": 65536}
		}
	}`
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	r := c.Store.Remote
	if r == nil || r.Shards != 4 || r.PipelineDepth != 32 || r.BatchBytes != 65536 {
		t.Fatalf("store.remote = %+v", r)
	}

	bad := []string{
		// remote section on a non-remote engine
		`{"store": {"engine": "memstore", "remote": {"shards": 2}}}`,
		// negative knobs
		`{"store": {"engine": "remote", "addr": "x:1", "remote": {"shards": -1}}}`,
		`{"store": {"engine": "remote", "addr": "x:1", "remote": {"pipeline_depth": -1}}}`,
		`{"store": {"engine": "remote", "addr": "x:1", "remote": {"batch_bytes": -1}}}`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("doc %q should fail", doc)
		}
	}
}

func TestRecoveryConfig(t *testing.T) {
	bad := []string{
		`{"store": {"chaos": {"crash_at_ops": [0]}}}`,
		`{"store": {"chaos": {"crash_at_ops": [5, 5]}}}`,
		`{"store": {"chaos": {"crash_at_ops": [9, 3]}}}`,
		`{"store": {"dir": "/tmp/x"}, "run": {"checkpoint_dir": "/tmp/x"}}`,
		`{"run": {"mode": "open_loop", "rate": 100, "checkpoint_every_ops": 10}}`,
		`{"store": {"chaos": {"crash_at_ops": [5]}}, "run": {"mode": "offline", "trace_path": "/tmp/t"}}`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("doc %q should fail", doc)
		}
	}

	doc := `{
		"store": {"dir": "/tmp/x", "chaos": {"crash_at_ops": [100, 250]}},
		"run": {"checkpoint_every_ops": 50, "checkpoint_dir": "/tmp/ck"}
	}`
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Recovery() {
		t.Fatal("Recovery() = false with crash schedule and checkpoint cadence set")
	}
	ck := &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "/tmp/ck", Engine: "memstore"}
	o, err := c.RecoveryOptions(ck)
	if err != nil {
		t.Fatal(err)
	}
	if o.CheckpointEvery != 50 || len(o.CrashAtOps) != 2 || o.CrashAtOps[1] != 250 || o.Checkpointer != ck {
		t.Fatalf("recovery options = %+v", o)
	}

	// Cadence without a checkpointer is a validation error, but a crash
	// schedule alone recovers by full replay.
	if _, err := c.RecoveryOptions(nil); err == nil {
		t.Fatal("checkpoint_every_ops without a checkpointer should fail")
	}
	c2, err := Parse([]byte(`{"store": {"chaos": {"crash_at_ops": [100]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if !c2.Recovery() {
		t.Fatal("Recovery() = false with crash schedule set")
	}
	if _, err := c2.RecoveryOptions(nil); err != nil {
		t.Fatalf("crash-only recovery options: %v", err)
	}
	if (&Config{}).Recovery() {
		t.Fatal("Recovery() = true on an empty config")
	}
}

func TestObsConfig(t *testing.T) {
	c, err := Parse([]byte(`{"obs": {"sample_interval_ms": 250, "metrics_addr": "127.0.0.1:0", "report_path": "/tmp/r.json"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs == nil || c.Obs.SampleIntervalMs != 250 || c.Obs.MetricsAddr != "127.0.0.1:0" || c.Obs.ReportPath != "/tmp/r.json" {
		t.Fatalf("obs = %+v", c.Obs)
	}
	// Absent section stays nil: the CLI applies its own defaults.
	c, err = Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs != nil {
		t.Fatalf("obs should be nil when absent, got %+v", c.Obs)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	os.WriteFile(path, []byte(`{"source": {"events": 500}}`), 0o644)
	c, err := Load(path)
	if err != nil || c.Source.Events != 500 {
		t.Fatalf("load = %+v, %v", c, err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBuildSourceSynthetic(t *testing.T) {
	c, _ := Parse([]byte(`{"source": {"events": 100, "keys": 5}}`))
	src, err := c.BuildSource()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("events = %d", n)
	}
}

func TestBuildSourceJoin(t *testing.T) {
	c, _ := Parse([]byte(`{"source": {"events": 50}, "operator": {"type": "interval-join"}}`))
	src, err := c.BuildSource()
	if err != nil {
		t.Fatal(err)
	}
	streams := map[uint8]int{}
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			streams[it.Event.Stream]++
		}
	}
	if streams[0] != 50 || streams[1] != 50 {
		t.Fatalf("streams = %v", streams)
	}
}

func TestBuildSourceDatasetJoin(t *testing.T) {
	c, _ := Parse([]byte(`{
		"source": {"type": "dataset", "dataset": "borg", "scale": 0.001},
		"operator": {"type": "continuous-join"}
	}`))
	if _, err := c.BuildSource(); err != nil {
		t.Fatal(err)
	}
	// Azure has no secondary stream: join must fail.
	c2, _ := Parse([]byte(`{
		"source": {"type": "dataset", "dataset": "azure", "scale": 0.001},
		"operator": {"type": "continuous-join"}
	}`))
	if _, err := c2.BuildSource(); err == nil {
		t.Fatal("azure join should fail")
	}
}

func TestBuildOperator(t *testing.T) {
	c, _ := Parse([]byte(`{"operator": {"type": "aggregation"}}`))
	op, err := c.BuildOperator()
	if err != nil || op.Type() != core.Aggregation {
		t.Fatalf("op = %v, %v", op, err)
	}
}

func TestOpenLoopModeValidation(t *testing.T) {
	good := []string{
		`{"run": {"mode": "open_loop", "rate": 1000}}`,
		`{"run": {"mode": "open_loop", "rate": 1000, "arrival": "poisson"}}`,
		`{"run": {"mode": "open_loop", "bursts": [{"rate_per_sec": 100, "duration_ms": 50}]}}`,
		`{"run": {"mode": "open_loop", "rate": 500, "max_in_flight": 64, "slo_p99_ms": 10}}`,
	}
	for _, doc := range good {
		if _, err := Parse([]byte(doc)); err != nil {
			t.Fatalf("doc %q should parse: %v", doc, err)
		}
	}
	bad := []string{
		// open_loop needs a rate or bursts.
		`{"run": {"mode": "open_loop"}}`,
		`{"run": {"mode": "open_loop", "rate": -5}}`,
		`{"run": {"mode": "open_loop", "rate": 100, "arrival": "uniform"}}`,
		`{"run": {"mode": "open_loop", "rate": 100, "max_in_flight": -1}}`,
		`{"run": {"mode": "open_loop", "rate": 100, "slo_p99_ms": -1}}`,
		// bursts validated through dist.NewBursts.
		`{"run": {"mode": "open_loop", "bursts": [{"rate_per_sec": 0, "duration_ms": 50}]}}`,
		`{"run": {"mode": "open_loop", "bursts": [{"rate_per_sec": 100, "duration_ms": 0}]}}`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("doc %q should fail", doc)
		}
	}
}

func TestOpenLoopOptionsBuilder(t *testing.T) {
	// Constant arrivals: Rate carries the schedule, Arrivals stays nil so
	// replay builds its own constant pacer.
	c, err := Parse([]byte(`{"run": {
		"mode": "open_loop", "rate": 2000, "max_in_flight": 32,
		"sample_every": 4, "stall_timeout_ms": 1500, "slo_p99_ms": 5
	}}`))
	if err != nil {
		t.Fatal(err)
	}
	o, err := c.OpenLoopOptions()
	if err != nil {
		t.Fatal(err)
	}
	if o.Rate != 2000 || o.Arrivals != nil || o.MaxInFlight != 32 ||
		o.SampleEvery != 4 || o.StallTimeout != 1500*time.Millisecond {
		t.Fatalf("options = %+v", o)
	}
	if err := o.Validate(); err != nil {
		t.Fatalf("built options should validate: %v", err)
	}

	// Poisson arrivals are seeded from source.seed: same config, same
	// intended-arrival timeline.
	doc := `{"source": {"seed": 7}, "run": {"mode": "open_loop", "rate": 1000, "arrival": "poisson"}}`
	c, _ = Parse([]byte(doc))
	o, err = c.OpenLoopOptions()
	if err != nil {
		t.Fatal(err)
	}
	p, ok := o.Arrivals.(*dist.PoissonRate)
	if !ok {
		t.Fatalf("poisson arrivals = %T", o.Arrivals)
	}
	c2, _ := Parse([]byte(doc))
	o2, _ := c2.OpenLoopOptions()
	p2 := o2.Arrivals.(*dist.PoissonRate)
	for i := 0; i < 100; i++ {
		if g1, g2 := p.NextGapNs(), p2.NextGapNs(); g1 != g2 {
			t.Fatalf("gap %d differs: %d vs %d", i, g1, g2)
		}
	}

	// Bursts override rate/arrival with a cycling phased schedule.
	c, _ = Parse([]byte(`{"run": {"mode": "open_loop", "bursts": [
		{"rate_per_sec": 100, "duration_ms": 10},
		{"rate_per_sec": 1000, "duration_ms": 5}
	]}}`))
	o, err = c.OpenLoopOptions()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := o.Arrivals.(*dist.BurstSchedule); !ok {
		t.Fatalf("burst arrivals = %T", o.Arrivals)
	}
}

func TestBuildSourceDriftingHotspot(t *testing.T) {
	// Drift tuning parameters must reach the generator: two sources that
	// differ only in drift_every diverge once the first window re-centers.
	mk := func(every uint64) []uint64 {
		doc := fmt.Sprintf(`{"source": {
			"events": 400, "keys": 10000, "key_dist": "drifting_hotspot",
			"hot_frac": 0.01, "hot_prob": 0.99, "drift_every": %d, "seed": 3
		}}`, every)
		c, err := Parse([]byte(doc))
		if err != nil {
			t.Fatal(err)
		}
		src, err := c.BuildSource()
		if err != nil {
			t.Fatal(err)
		}
		var keys []uint64
		for {
			it, ok := src.Next()
			if !ok {
				break
			}
			if it.Kind == eventgen.ItemEvent {
				keys = append(keys, it.Event.Key)
			}
		}
		return keys
	}
	a, b, c := mk(50), mk(50), mk(100000)
	if len(a) != 400 {
		t.Fatalf("events = %d", len(a))
	}
	same := func(x, y []uint64) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("identical configs should generate identical key sequences")
	}
	if same(a, c) {
		t.Fatal("different drift_every should diverge after the first window")
	}
}
