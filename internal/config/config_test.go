package config

import (
	"os"
	"path/filepath"
	"testing"

	"gadget/internal/core"
	"gadget/internal/eventgen"
)

func TestParseDefaults(t *testing.T) {
	c, err := Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Source.Type != "synthetic" || c.Source.Events != 100000 {
		t.Fatalf("source defaults = %+v", c.Source)
	}
	if c.Operator.Operator != core.TumblingIncr {
		t.Fatalf("operator default = %v", c.Operator.Operator)
	}
	if c.Store.Engine != "memstore" || c.Run.Mode != "online" {
		t.Fatalf("defaults = %+v %+v", c.Store, c.Run)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
		"source": {"type": "dataset", "dataset": "taxi", "scale": 0.005, "watermark_every": 50},
		"operator": {"type": "session-hol", "session_gap_ms": 60000},
		"store": {"engine": "rocksdb", "dir": "/tmp/x"},
		"run": {"mode": "offline", "trace_path": "/tmp/t.trace"}
	}`
	c, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if c.Source.Dataset != "taxi" || c.Operator.Operator != core.SessionHol {
		t.Fatalf("parsed = %+v", c)
	}
}

func TestValidationErrors(t *testing.T) {
	bad := []string{
		`{"source": {"type": "nope"}}`,
		`{"source": {"type": "dataset", "dataset": "nope"}}`,
		`{"operator": {"type": "nope"}}`,
		`{"run": {"mode": "nope"}}`,
		`{"run": {"mode": "offline"}}`,
		`{"obs": {}}`,
		`{"obs": {"sample_interval_ms": 0}}`,
		`{"obs": {"sample_interval_ms": -100}}`,
		`not json`,
	}
	for _, doc := range bad {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Fatalf("doc %q should fail", doc)
		}
	}
}

func TestObsConfig(t *testing.T) {
	c, err := Parse([]byte(`{"obs": {"sample_interval_ms": 250, "metrics_addr": "127.0.0.1:0", "report_path": "/tmp/r.json"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs == nil || c.Obs.SampleIntervalMs != 250 || c.Obs.MetricsAddr != "127.0.0.1:0" || c.Obs.ReportPath != "/tmp/r.json" {
		t.Fatalf("obs = %+v", c.Obs)
	}
	// Absent section stays nil: the CLI applies its own defaults.
	c, err = Parse([]byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if c.Obs != nil {
		t.Fatalf("obs should be nil when absent, got %+v", c.Obs)
	}
}

func TestLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.json")
	os.WriteFile(path, []byte(`{"source": {"events": 500}}`), 0o644)
	c, err := Load(path)
	if err != nil || c.Source.Events != 500 {
		t.Fatalf("load = %+v, %v", c, err)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestBuildSourceSynthetic(t *testing.T) {
	c, _ := Parse([]byte(`{"source": {"events": 100, "keys": 5}}`))
	src, err := c.BuildSource()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			n++
		}
	}
	if n != 100 {
		t.Fatalf("events = %d", n)
	}
}

func TestBuildSourceJoin(t *testing.T) {
	c, _ := Parse([]byte(`{"source": {"events": 50}, "operator": {"type": "interval-join"}}`))
	src, err := c.BuildSource()
	if err != nil {
		t.Fatal(err)
	}
	streams := map[uint8]int{}
	for {
		it, ok := src.Next()
		if !ok {
			break
		}
		if it.Kind == eventgen.ItemEvent {
			streams[it.Event.Stream]++
		}
	}
	if streams[0] != 50 || streams[1] != 50 {
		t.Fatalf("streams = %v", streams)
	}
}

func TestBuildSourceDatasetJoin(t *testing.T) {
	c, _ := Parse([]byte(`{
		"source": {"type": "dataset", "dataset": "borg", "scale": 0.001},
		"operator": {"type": "continuous-join"}
	}`))
	if _, err := c.BuildSource(); err != nil {
		t.Fatal(err)
	}
	// Azure has no secondary stream: join must fail.
	c2, _ := Parse([]byte(`{
		"source": {"type": "dataset", "dataset": "azure", "scale": 0.001},
		"operator": {"type": "continuous-join"}
	}`))
	if _, err := c2.BuildSource(); err == nil {
		t.Fatal("azure join should fail")
	}
}

func TestBuildOperator(t *testing.T) {
	c, _ := Parse([]byte(`{"operator": {"type": "aggregation"}}`))
	op, err := c.BuildOperator()
	if err != nil || op.Type() != core.Aggregation {
		t.Fatalf("op = %v, %v", op, err)
	}
}
