package config

import "testing"

// FuzzParseConfig feeds arbitrary bytes to the JSON configuration
// parser. Malformed configurations must be rejected with an error,
// never a panic — configs arrive from the command line and from
// external tooling.
func FuzzParseConfig(f *testing.F) {
	f.Add([]byte(`{"operator": {"type": "aggregation"}}`))
	f.Add([]byte(`{"source": {"events": 1000, "keys": 10}, "operator": {"type": "tumbling_incr", "window_ms": 1000}, "store": {"engine": "rocksdb", "dir": "/tmp/x"}}`))
	f.Add([]byte(`{"operator": {"type": "nope"}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"source": {"events": -5}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := Parse(data)
		if err != nil {
			return
		}
		// A config that parses must also survive validation without
		// panicking (it may still be rejected).
		cfg.Validate()
	})
}
