// Package config parses the JSON configuration files that drive the
// gadget CLI, covering the three concerns of a run: the input source
// (synthetic generator or dataset), the operator, and the store plus
// replay options (paper Figure 8's configuration file).
package config

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	"gadget/internal/core"
	"gadget/internal/datasets"
	"gadget/internal/dist"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/replay"
	"gadget/internal/stores"
)

// Config is the top-level configuration document.
type Config struct {
	Source   SourceConfig  `json:"source"`
	Operator core.Config   `json:"operator"`
	Store    stores.Config `json:"store"`
	Run      RunConfig     `json:"run"`
	Obs      *ObsConfig    `json:"obs,omitempty"`
}

// ObsConfig tunes the observability layer. Absent (nil) means defaults:
// telemetry sampling at 1s, no metrics listener, no report file. The
// CLI's -metrics-addr and -report flags override these fields.
type ObsConfig struct {
	// SampleIntervalMs is the telemetry sampler period. Must be positive
	// when the section is present (0 would mean a busy-looping sampler;
	// it is rejected at parse time, like store.resilience's knobs).
	SampleIntervalMs int64 `json:"sample_interval_ms"`
	// MetricsAddr, when non-empty, starts an HTTP listener serving
	// /metrics, /debug/vars, and /debug/pprof.
	MetricsAddr string `json:"metrics_addr"`
	// ReportPath, when non-empty, writes the JSON run report there.
	ReportPath string `json:"report_path"`
	// Trace enables per-operation latency attribution: sampled ops carry
	// a trace context through every layer, per-stage histograms feed the
	// metrics exposition, and the report gains a slow_ops section.
	Trace bool `json:"trace"`
	// TraceSampleN traces 1 in N operations (0 = default 64, 1 = every
	// op). Ignored unless Trace is set.
	TraceSampleN int `json:"trace_sample_n"`
	// TraceSlowK retains the K slowest complete traces in the flight
	// recorder (0 = default 16). Ignored unless Trace is set.
	TraceSlowK int `json:"trace_slow_k"`
}

// Validate rejects unusable sampler settings.
func (o *ObsConfig) Validate() error {
	if o.SampleIntervalMs <= 0 {
		return fmt.Errorf("obs.sample_interval_ms must be positive, got %d", o.SampleIntervalMs)
	}
	if o.TraceSampleN < 0 {
		return fmt.Errorf("obs.trace_sample_n must be non-negative, got %d", o.TraceSampleN)
	}
	if o.TraceSlowK < 0 {
		return fmt.Errorf("obs.trace_slow_k must be non-negative, got %d", o.TraceSlowK)
	}
	return nil
}

// Traced reports whether the config enables per-op tracing.
func (c *Config) Traced() bool { return c.Obs != nil && c.Obs.Trace }

// SourceConfig describes the input stream.
type SourceConfig struct {
	// Type is "synthetic" (default) or "dataset".
	Type string `json:"type"`
	// Dataset names a built-in dataset ("borg", "taxi", "azure").
	Dataset string `json:"dataset"`
	// Scale multiplies dataset sizes (1.0 = paper scale).
	Scale float64 `json:"scale"`
	// Synthetic generator parameters.
	Events        int       `json:"events"`
	Keys          uint64    `json:"keys"`
	KeyDist       dist.Kind `json:"key_dist"`
	RatePerSec    float64   `json:"rate_per_sec"`
	Poisson       bool      `json:"poisson"`
	ValueSize     uint32    `json:"value_size"`
	LateFraction  float64   `json:"late_fraction"`
	MaxLatenessMs int64     `json:"max_lateness_ms"`
	Seed          int64     `json:"seed"`
	// ECDFKeys/ECDFWeights supply a user empirical key distribution
	// overriding key_dist.
	ECDFKeys    []uint64  `json:"ecdf_keys"`
	ECDFWeights []float64 `json:"ecdf_weights"`
	// Hotspot tuning for key_dist "hotspot" and "drifting_hotspot":
	// HotFrac of the keys receive HotProb of the accesses (0 = the 0.2 /
	// 0.8 defaults). For "drifting_hotspot" the hot window additionally
	// re-centers every DriftEvery samples (0 = 10000), advancing by
	// DriftStep keys, or jumping to a seeded random position when
	// DriftStep is 0.
	HotFrac    float64 `json:"hot_frac"`
	HotProb    float64 `json:"hot_prob"`
	DriftEvery uint64  `json:"drift_every"`
	DriftStep  uint64  `json:"drift_step"`
	// Watermarking.
	WatermarkEvery   int   `json:"watermark_every"`
	WatermarkSlackMs int64 `json:"watermark_slack_ms"`
}

// BurstConfig is one phase of an open-loop burst schedule.
type BurstConfig struct {
	// RatePerSec is the phase's arrival rate in events/second.
	RatePerSec float64 `json:"rate_per_sec"`
	// DurationMs is the phase length in milliseconds of schedule time.
	DurationMs int64 `json:"duration_ms"`
}

// RunConfig describes what to do with the generated workload.
type RunConfig struct {
	// Mode is "online" (drive the store while generating), "offline"
	// (write a trace file for later replay), or "open_loop" (generate
	// the trace, then replay it under an open-loop arrival schedule with
	// coordinated-omission-free latency accounting).
	Mode string `json:"mode"`
	// TracePath is the trace file for offline mode and replays.
	TracePath string `json:"trace_path"`
	// ServiceRate throttles replay (ops/second, 0 = unthrottled).
	ServiceRate float64 `json:"service_rate"`
	// SampleEvery records latency for every Nth op (default 1).
	SampleEvery int `json:"sample_every"`
	// StallTimeoutMs arms the run watchdog: a run whose workers make no
	// progress for this long is aborted and returns its partial result
	// tagged degraded (0 = watchdog off).
	StallTimeoutMs int64 `json:"stall_timeout_ms"`

	// Open-loop mode settings (run.mode = "open_loop").

	// Rate is the offered arrival rate in events/second. Required in
	// open_loop mode unless Bursts is set.
	Rate float64 `json:"rate"`
	// Arrival shapes the interarrival gaps: "constant" (default) or
	// "poisson" (seeded from source.seed).
	Arrival string `json:"arrival"`
	// Bursts, when non-empty, replaces Rate/Arrival with a cycling
	// phased schedule.
	Bursts []BurstConfig `json:"bursts"`
	// MaxInFlight bounds the dispatch queue (0 = the replay default);
	// events that find it full are counted as overload, not dropped.
	MaxInFlight int `json:"max_in_flight"`
	// SLOP99Ms, when positive, declares the intended-arrival p99
	// objective the run is judged against (reported, not enforced).
	SLOP99Ms float64 `json:"slo_p99_ms"`

	// Crash-recovery settings (paired with store.chaos.crash_at_ops).

	// CheckpointEveryOps cuts a portable checkpoint after every N applied
	// operations (0 = never; crashes then recover by full replay).
	CheckpointEveryOps uint64 `json:"checkpoint_every_ops"`
	// CheckpointDir is where checkpoints are written. Defaults to
	// "<store.dir>-checkpoints"; must differ from store.dir, since
	// checkpoints model durable external storage that survives the
	// crash of the store's local disk.
	CheckpointDir string `json:"checkpoint_dir"`
}

// Load reads and validates a configuration file.
func Load(path string) (Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	return Parse(data)
}

// Parse decodes and validates a configuration document.
func Parse(data []byte) (Config, error) {
	var c Config
	if err := json.Unmarshal(data, &c); err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	if err := c.Validate(); err != nil {
		return Config{}, err
	}
	return c, nil
}

// Validate checks cross-field consistency.
func (c *Config) Validate() error {
	switch c.Source.Type {
	case "", "synthetic":
		c.Source.Type = "synthetic"
		if c.Source.Events <= 0 {
			c.Source.Events = 100000
		}
	case "dataset":
		if _, ok := datasets.ByName(c.Source.Dataset, 0.0001, 0); !ok {
			return fmt.Errorf("config: unknown dataset %q (want one of %v)", c.Source.Dataset, datasets.Names())
		}
		if c.Source.Scale <= 0 {
			c.Source.Scale = 0.01
		}
	default:
		return fmt.Errorf("config: unknown source type %q", c.Source.Type)
	}
	if c.Source.WatermarkEvery <= 0 {
		c.Source.WatermarkEvery = 100
	}
	if c.Operator.Operator == "" {
		c.Operator.Operator = core.TumblingIncr
	}
	found := false
	for _, typ := range core.OperatorTypes() {
		if typ == c.Operator.Operator {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("config: unknown operator %q", c.Operator.Operator)
	}
	if c.Store.Engine == "" {
		c.Store.Engine = "memstore"
	}
	if c.Store.Chaos != nil {
		if err := c.Store.Chaos.Plan().Validate(); err != nil {
			return fmt.Errorf("config: store.chaos: %w", err)
		}
		for i, n := range c.Store.Chaos.CrashAtOps {
			if n == 0 {
				return fmt.Errorf("config: store.chaos.crash_at_ops[%d] must be positive", i)
			}
			if i > 0 && n <= c.Store.Chaos.CrashAtOps[i-1] {
				return fmt.Errorf("config: store.chaos.crash_at_ops must be strictly increasing, got %d after %d",
					n, c.Store.Chaos.CrashAtOps[i-1])
			}
		}
	}
	if c.Store.Resilience != nil {
		if err := c.Store.Resilience.Options().Validate(); err != nil {
			return fmt.Errorf("config: store.resilience: %w", err)
		}
	}
	if c.Store.Remote != nil {
		if c.Store.Engine != "remote" {
			return fmt.Errorf("config: store.remote requires store.engine %q, got %q", "remote", c.Store.Engine)
		}
		if c.Store.Remote.Shards < 0 {
			return fmt.Errorf("config: store.remote.shards must be non-negative, got %d", c.Store.Remote.Shards)
		}
		if c.Store.Remote.PipelineDepth < 0 {
			return fmt.Errorf("config: store.remote.pipeline_depth must be non-negative, got %d", c.Store.Remote.PipelineDepth)
		}
		if c.Store.Remote.BatchBytes < 0 {
			return fmt.Errorf("config: store.remote.batch_bytes must be non-negative, got %d", c.Store.Remote.BatchBytes)
		}
	}
	switch c.Run.Mode {
	case "", "online":
		c.Run.Mode = "online"
	case "offline":
		if c.Run.TracePath == "" {
			return fmt.Errorf("config: offline mode requires run.trace_path")
		}
	case "open_loop":
		if c.Run.Rate <= 0 && len(c.Run.Bursts) == 0 {
			return fmt.Errorf("config: open_loop mode requires run.rate or run.bursts")
		}
	default:
		return fmt.Errorf("config: unknown run mode %q", c.Run.Mode)
	}
	switch c.Run.Arrival {
	case "", "constant":
	case "poisson":
	default:
		return fmt.Errorf("config: unknown run.arrival %q (want constant or poisson)", c.Run.Arrival)
	}
	if c.Run.Rate < 0 {
		return fmt.Errorf("config: run.rate must be non-negative, got %v", c.Run.Rate)
	}
	if c.Run.MaxInFlight < 0 {
		return fmt.Errorf("config: run.max_in_flight must be non-negative, got %d", c.Run.MaxInFlight)
	}
	if c.Run.SLOP99Ms < 0 {
		return fmt.Errorf("config: run.slo_p99_ms must be non-negative, got %v", c.Run.SLOP99Ms)
	}
	if len(c.Run.Bursts) > 0 {
		if _, err := c.burstSchedule(); err != nil {
			return err
		}
	}
	if c.Run.ServiceRate < 0 {
		return fmt.Errorf("config: run.service_rate must be non-negative, got %v", c.Run.ServiceRate)
	}
	if c.Run.SampleEvery < 0 {
		return fmt.Errorf("config: run.sample_every must be non-negative, got %d", c.Run.SampleEvery)
	}
	if c.Run.StallTimeoutMs < 0 {
		return fmt.Errorf("config: run.stall_timeout_ms must be non-negative, got %d", c.Run.StallTimeoutMs)
	}
	if c.Run.CheckpointDir != "" && c.Run.CheckpointDir == c.Store.Dir {
		return fmt.Errorf("config: run.checkpoint_dir must differ from store.dir (checkpoints must survive store crashes)")
	}
	if c.Recovery() && c.Run.Mode != "online" {
		return fmt.Errorf("config: crash recovery (run.checkpoint_every_ops / store.chaos.crash_at_ops) requires run.mode %q, got %q", "online", c.Run.Mode)
	}
	if c.Obs != nil {
		if err := c.Obs.Validate(); err != nil {
			return fmt.Errorf("config: %w", err)
		}
	}
	return nil
}

// BuildSource constructs the configured event source. Join operators get
// a two-stream source; dataset-backed joins use the dataset's secondary
// stream, synthetic joins use a second generator with start/end pairs.
func (c *Config) BuildSource() (eventgen.Source, error) {
	return BuildEventSource(c.Source, c.Operator.Operator.IsJoin())
}

// BuildEventSource constructs an event source from a source config
// alone, for callers driving custom operators (join selects a
// two-stream source).
func BuildEventSource(sc SourceConfig, join bool) (eventgen.Source, error) {
	c := &Config{Source: sc}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return c.buildSource(join)
}

func (c *Config) buildSource(join bool) (eventgen.Source, error) {
	if c.Source.Type == "dataset" {
		ds, _ := datasets.ByName(c.Source.Dataset, c.Source.Scale, c.Source.Seed)
		if join {
			src, ok := ds.JoinSource(c.Source.WatermarkEvery)
			if !ok {
				return nil, fmt.Errorf("config: dataset %q has no secondary stream for joins", c.Source.Dataset)
			}
			return src, nil
		}
		return ds.Source(c.Source.WatermarkEvery), nil
	}
	mk := func(stream uint8, pairs bool) (eventgen.Source, error) {
		g, err := eventgen.NewSynthetic(eventgen.Config{
			Events:          c.Source.Events,
			Keys:            c.Source.Keys,
			KeyDist:         c.Source.KeyDist,
			RatePerSec:      c.Source.RatePerSec,
			PoissonArrivals: c.Source.Poisson,
			ValueSize:       c.Source.ValueSize,
			LateFraction:    c.Source.LateFraction,
			MaxLatenessMs:   c.Source.MaxLatenessMs,
			Seed:            c.Source.Seed + int64(stream),
			Stream:          stream,
			StartEndPairs:   pairs,
			ECDFKeys:        c.Source.ECDFKeys,
			ECDFWeights:     c.Source.ECDFWeights,
			HotFrac:         c.Source.HotFrac,
			HotProb:         c.Source.HotProb,
			DriftEvery:      c.Source.DriftEvery,
			DriftStep:       c.Source.DriftStep,
		})
		if err != nil {
			return nil, err
		}
		return eventgen.WithWatermarks(g, c.Source.WatermarkEvery, c.Source.WatermarkSlackMs), nil
	}
	if join {
		a, err := mk(0, false)
		if err != nil {
			return nil, err
		}
		b, err := mk(1, true)
		if err != nil {
			return nil, err
		}
		return eventgen.NewRoundRobin(a, b), nil
	}
	return mk(0, false)
}

// BuildOperator constructs the configured operator.
func (c *Config) BuildOperator() (core.Operator, error) {
	return core.New(c.Operator)
}

// burstSchedule builds the configured burst schedule.
func (c *Config) burstSchedule() (*dist.BurstSchedule, error) {
	phases := make([]dist.BurstPhase, len(c.Run.Bursts))
	for i, b := range c.Run.Bursts {
		phases[i] = dist.BurstPhase{
			RatePerSec: b.RatePerSec,
			Duration:   time.Duration(b.DurationMs) * time.Millisecond,
		}
	}
	sched, err := dist.NewBursts(phases)
	if err != nil {
		return nil, fmt.Errorf("config: run.bursts: %w", err)
	}
	return sched, nil
}

// Recovery reports whether the config asks for the crash-recovery run
// path: a checkpoint cadence, or a scripted crash schedule, or both.
func (c *Config) Recovery() bool {
	if c.Run.CheckpointEveryOps > 0 {
		return true
	}
	return c.Store.Chaos != nil && len(c.Store.Chaos.CrashAtOps) > 0
}

// RecoveryOptions assembles the crash-recovery replay options from the
// run and store.chaos sections. The caller supplies the checkpointer
// (its filesystem and directory are placement decisions the config
// layer cannot make); nil is allowed when run.checkpoint_every_ops is
// zero, in which case crashes recover by full replay.
func (c *Config) RecoveryOptions(ck *kv.Checkpointer) (replay.RecoveryOptions, error) {
	o := replay.RecoveryOptions{
		Options: replay.Options{
			ServiceRate:  c.Run.ServiceRate,
			SampleEvery:  c.Run.SampleEvery,
			StallTimeout: time.Duration(c.Run.StallTimeoutMs) * time.Millisecond,
		},
		CheckpointEvery: c.Run.CheckpointEveryOps,
		Checkpointer:    ck,
	}
	if c.Store.Chaos != nil {
		o.CrashAtOps = c.Store.Chaos.CrashAtOps
	}
	if err := o.Validate(); err != nil {
		return replay.RecoveryOptions{}, fmt.Errorf("config: %w", err)
	}
	return o, nil
}

// OpenLoopOptions assembles the open-loop replay options the run
// section describes (run.mode = "open_loop"). The Poisson arrival
// schedule is seeded from source.seed, so a fixed config replays the
// identical intended-arrival timeline.
func (c *Config) OpenLoopOptions() (replay.OpenLoopOptions, error) {
	o := replay.OpenLoopOptions{
		Rate:         c.Run.Rate,
		MaxInFlight:  c.Run.MaxInFlight,
		SampleEvery:  c.Run.SampleEvery,
		StallTimeout: time.Duration(c.Run.StallTimeoutMs) * time.Millisecond,
	}
	if len(c.Run.Bursts) > 0 {
		sched, err := c.burstSchedule()
		if err != nil {
			return o, err
		}
		o.Arrivals = sched
	} else if c.Run.Arrival == "poisson" {
		o.Arrivals = dist.NewPoissonRate(c.Run.Rate, rand.New(rand.NewSource(c.Source.Seed)))
	}
	return o, nil
}
