// Package analysis implements the workload characterization metrics of
// the paper's §3: operation composition, event and keyspace
// amplification, temporal locality (LRU stack distances, computed in
// O(n log n) with a Fenwick tree), spatial locality (unique key
// sequences), working set evolution, key Time-to-Live, and distribution
// comparisons (Kolmogorov-Smirnov, Wasserstein) between input and state
// key streams.
package analysis

import (
	"math/rand"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/stats"
)

// Composition is the share of each operation type in a trace.
type Composition struct {
	Get, Put, Merge, Delete, Scan float64
	Total                         int
}

// Compose computes a trace's operation mix. FGet (trigger-time reads)
// counts as Get, matching the paper's Table 1 categories; range scans
// (the scan-aware workloads) are reported separately.
func Compose(trace []kv.Access) Composition {
	var c Composition
	c.Total = len(trace)
	if c.Total == 0 {
		return c
	}
	for _, a := range trace {
		switch a.Op {
		case kv.OpGet, kv.OpFGet:
			c.Get++
		case kv.OpPut:
			c.Put++
		case kv.OpMerge:
			c.Merge++
		case kv.OpDelete:
			c.Delete++
		case kv.OpScan:
			c.Scan++
		}
	}
	n := float64(c.Total)
	c.Get /= n
	c.Put /= n
	c.Merge /= n
	c.Delete /= n
	c.Scan /= n
	return c
}

// Amplification quantifies how an operator inflates its input (paper
// §3.2.2).
type Amplification struct {
	// Event is state accesses per input event.
	Event float64
	// Key is distinct state keys per distinct input key.
	Key float64
}

// Amplify computes amplification of a state trace relative to its input
// events.
func Amplify(events []eventgen.Event, trace []kv.Access) Amplification {
	if len(events) == 0 {
		return Amplification{}
	}
	inKeys := make(map[uint64]struct{})
	for _, e := range events {
		inKeys[e.Key] = struct{}{}
	}
	stKeys := make(map[kv.StateKey]struct{})
	for _, a := range trace {
		stKeys[a.Key] = struct{}{}
	}
	amp := Amplification{Event: float64(len(trace)) / float64(len(events))}
	if len(inKeys) > 0 {
		amp.Key = float64(len(stKeys)) / float64(len(inKeys))
	}
	return amp
}

// KeyIDs converts a state access trace to dense key identifiers in order
// of first appearance — the canonical form every locality metric uses.
func KeyIDs(trace []kv.Access) []uint64 {
	ids := make(map[kv.StateKey]uint64, 1024)
	out := make([]uint64, len(trace))
	for i, a := range trace {
		id, ok := ids[a.Key]
		if !ok {
			id = uint64(len(ids))
			ids[a.Key] = id
		}
		out[i] = id
	}
	return out
}

// EventKeyIDs does the same for an input event stream.
func EventKeyIDs(events []eventgen.Event) []uint64 {
	ids := make(map[uint64]uint64, 1024)
	out := make([]uint64, len(events))
	for i, e := range events {
		id, ok := ids[e.Key]
		if !ok {
			id = uint64(len(ids))
			ids[e.Key] = id
		}
		out[i] = id
	}
	return out
}

// Shuffle returns a random permutation of keys (the shuffled baselines
// of the paper's Figure 5: key popularity preserved, sequence destroyed).
func Shuffle(keys []uint64, seed int64) []uint64 {
	out := append([]uint64(nil), keys...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// fenwick is a binary indexed tree over trace positions.
type fenwick struct {
	tree []int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

func (f *fenwick) add(i, delta int) {
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += delta
	}
}

// sum returns the prefix sum over [0, i].
func (f *fenwick) sum(i int) int {
	s := 0
	for i++; i > 0; i -= i & (-i) {
		s += f.tree[i]
	}
	return s
}

// StackDistances computes the LRU stack distance of every reuse in the
// key sequence: the number of distinct keys accessed between consecutive
// accesses to the same key (paper §3.2.3). First accesses (cold misses)
// are not included in the returned distances; their count is returned
// separately.
func StackDistances(keys []uint64) (distances []float64, coldMisses int) {
	n := len(keys)
	lastPos := make(map[uint64]int, 1024)
	bit := newFenwick(n)
	distances = make([]float64, 0, n)
	for i, k := range keys {
		if p, ok := lastPos[k]; ok {
			// Distinct keys whose most recent access lies in (p, i).
			d := bit.sum(i-1) - bit.sum(p)
			distances = append(distances, float64(d))
			bit.add(p, -1)
		} else {
			coldMisses++
		}
		bit.add(i, 1)
		lastPos[k] = i
	}
	return distances, coldMisses
}

// UniqueSequences counts the number of distinct key n-grams for each
// length 1..maxLen (paper §3.2.3's spatial locality metric: fewer unique
// sequences than a shuffled trace means repeated access patterns).
func UniqueSequences(keys []uint64, maxLen int) []int {
	if maxLen <= 0 {
		maxLen = 10
	}
	out := make([]int, maxLen)
	for l := 1; l <= maxLen; l++ {
		if l > len(keys) {
			out[l-1] = 0
			continue
		}
		seen := make(map[uint64]struct{}, len(keys))
		// Polynomial rolling hash over windows of length l.
		const base = 1099511628211
		var pow uint64 = 1
		for i := 0; i < l-1; i++ {
			pow *= base
		}
		var h uint64
		for i, k := range keys {
			h = h*base + (k + 1)
			if i >= l {
				h -= (keys[i-l] + 1) * pow * base
			}
			if i >= l-1 {
				seen[h] = struct{}{}
			}
		}
		out[l-1] = len(seen)
	}
	return out
}

// WorkingSetPoint is one sample of the working set evolution.
type WorkingSetPoint struct {
	Step int // trace position
	Size int // keys first-accessed by Step whose last access is later
}

// WorkingSet samples the active key set every step accesses (paper
// §3.2.3: "the set of keys that can be accessed in the future with
// probability greater than zero", approximated over the realized trace).
func WorkingSet(keys []uint64, step int) []WorkingSetPoint {
	if step <= 0 {
		step = 100
	}
	n := len(keys)
	if n == 0 {
		return nil
	}
	first := make(map[uint64]int, 1024)
	last := make(map[uint64]int, 1024)
	for i, k := range keys {
		if _, ok := first[k]; !ok {
			first[k] = i
		}
		last[k] = i
	}
	// delta[i] accumulates +1 when a key becomes active, -1 right after
	// its final access.
	delta := make([]int, n+1)
	for k, f := range first {
		delta[f]++
		delta[last[k]+1]--
	}
	var out []WorkingSetPoint
	active := 0
	for i := 0; i < n; i++ {
		active += delta[i]
		if i%step == 0 {
			out = append(out, WorkingSetPoint{Step: i, Size: active})
		}
	}
	return out
}

// MaxWorkingSet returns the peak working set size.
func MaxWorkingSet(keys []uint64, step int) int {
	max := 0
	for _, p := range WorkingSet(keys, step) {
		if p.Size > max {
			max = p.Size
		}
	}
	return max
}

// TTLs returns each key's Time-to-Live: the number of trace steps
// between its first and last access (paper §3.2.3). Keys accessed once
// have TTL 0; AccessedOnce reports their share.
func TTLs(keys []uint64) (ttls []float64, accessedOnce float64) {
	first := make(map[uint64]int, 1024)
	last := make(map[uint64]int, 1024)
	for i, k := range keys {
		if _, ok := first[k]; !ok {
			first[k] = i
		}
		last[k] = i
	}
	once := 0
	ttls = make([]float64, 0, len(first))
	for k, f := range first {
		ttl := last[k] - f
		ttls = append(ttls, float64(ttl))
		if ttl == 0 {
			once++
		}
	}
	if len(first) > 0 {
		accessedOnce = float64(once) / float64(len(first))
	}
	return ttls, accessedOnce
}

// SampleTTLs returns TTL percentiles over up to sampleN randomly chosen
// keys (the paper's Table 3 uses 1K random keys).
func SampleTTLs(keys []uint64, sampleN int, seed int64) stats.Summary {
	ttls, _ := TTLs(keys)
	if sampleN > 0 && len(ttls) > sampleN {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(ttls), func(i, j int) { ttls[i], ttls[j] = ttls[j], ttls[i] })
		ttls = ttls[:sampleN]
	}
	return stats.Summarize(ttls)
}

// hotnessSample converts a key id sequence into per-occurrence hotness
// samples: each occurrence is mapped to the access share of its key
// (frequency divided by trace length). This projects key distributions
// over different key spaces onto a common domain, as the paper does
// before running the KS test (§4): two streams are distributed alike
// when their occurrences fall on equally hot keys.
func hotnessSample(ids []uint64) []float64 {
	freq := make(map[uint64]int, 1024)
	for _, id := range ids {
		freq[id]++
	}
	n := float64(len(ids))
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = float64(freq[id]) / n
	}
	return out
}

// DistributionDistance compares two key id sequences (e.g. the input
// stream's keys vs the state stream's keys) after projecting both onto
// the common hotness domain. It returns the KS test result and the
// Wasserstein distance scaled to key-count units.
func DistributionDistance(a, b []uint64) (stats.KSResult, float64) {
	sa, sb := hotnessSample(a), hotnessSample(b)
	ks := stats.KSTest(sa, sb)
	// Scale the hotness-domain Wasserstein distance by the larger key
	// count to express it in "keys", like the paper's magnitudes.
	nKeys := distinct(a)
	if d := distinct(b); d > nKeys {
		nKeys = d
	}
	w := stats.Wasserstein(sa, sb) * float64(nKeys)
	return ks, w
}

func distinct(ids []uint64) int {
	seen := make(map[uint64]struct{}, 1024)
	for _, id := range ids {
		seen[id] = struct{}{}
	}
	return len(seen)
}

// MissRatioPoint pairs an LRU cache size (in distinct entries) with the
// miss ratio an LRU cache of that size would achieve on the trace.
type MissRatioPoint struct {
	CacheSize int
	MissRatio float64
}

// MissRatioCurve computes the exact LRU miss-ratio curve of a key
// sequence from its stack distances (Mattson et al., 1970) — the
// paper's §8 suggestion that "temporal locality analysis could be used
// to provide automatic cache size tuning". cacheSizes must be positive;
// the returned points follow its order. Cold misses count as misses at
// every cache size.
func MissRatioCurve(keys []uint64, cacheSizes []int) []MissRatioPoint {
	dists, cold := StackDistances(keys)
	total := len(dists) + cold
	out := make([]MissRatioPoint, 0, len(cacheSizes))
	if total == 0 {
		for _, cs := range cacheSizes {
			out = append(out, MissRatioPoint{CacheSize: cs, MissRatio: 0})
		}
		return out
	}
	// Histogram the distances once; a reuse at stack distance d hits in
	// any LRU cache with capacity > d.
	maxSize := 0
	for _, cs := range cacheSizes {
		if cs > maxSize {
			maxSize = cs
		}
	}
	hist := make([]int, maxSize+1)
	beyond := 0
	for _, d := range dists {
		if int(d) < len(hist) {
			hist[int(d)]++
		} else {
			beyond++
		}
	}
	_ = beyond
	cum := make([]int, maxSize+1) // cum[c] = hits with distance < c
	for c := 1; c <= maxSize; c++ {
		cum[c] = cum[c-1] + hist[c-1]
	}
	for _, cs := range cacheSizes {
		if cs <= 0 {
			out = append(out, MissRatioPoint{CacheSize: cs, MissRatio: 1})
			continue
		}
		hits := cum[cs]
		out = append(out, MissRatioPoint{
			CacheSize: cs,
			MissRatio: 1 - float64(hits)/float64(total),
		})
	}
	return out
}

// RecommendCacheSize returns the smallest cache size (in entries) whose
// LRU miss ratio does not exceed targetMissRatio, searching powers of
// two up to the trace's distinct key count. It returns the distinct key
// count when no smaller size reaches the target.
func RecommendCacheSize(keys []uint64, targetMissRatio float64) int {
	d := distinct(keys)
	if d == 0 {
		return 0
	}
	var sizes []int
	for c := 1; c < d; c *= 2 {
		sizes = append(sizes, c)
	}
	sizes = append(sizes, d)
	for _, p := range MissRatioCurve(keys, sizes) {
		if p.MissRatio <= targetMissRatio {
			return p.CacheSize
		}
	}
	return d
}
