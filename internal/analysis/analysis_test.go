package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gadget/internal/eventgen"
	"gadget/internal/kv"
)

func TestCompose(t *testing.T) {
	trace := []kv.Access{
		{Op: kv.OpGet}, {Op: kv.OpFGet}, {Op: kv.OpPut}, {Op: kv.OpMerge},
		{Op: kv.OpDelete}, {Op: kv.OpGet},
	}
	c := Compose(trace)
	if c.Total != 6 {
		t.Fatalf("total = %d", c.Total)
	}
	if c.Get != 0.5 || c.Put != 1.0/6 || c.Merge != 1.0/6 || c.Delete != 1.0/6 {
		t.Fatalf("composition = %+v", c)
	}
	if Compose(nil).Total != 0 {
		t.Fatal("empty compose")
	}
}

func TestAmplify(t *testing.T) {
	events := []eventgen.Event{{Key: 1}, {Key: 2}, {Key: 1}}
	trace := []kv.Access{
		{Key: kv.StateKey{Group: 1, Sub: 0}},
		{Key: kv.StateKey{Group: 1, Sub: 5}},
		{Key: kv.StateKey{Group: 2, Sub: 0}},
		{Key: kv.StateKey{Group: 2, Sub: 5}},
		{Key: kv.StateKey{Group: 1, Sub: 0}},
		{Key: kv.StateKey{Group: 1, Sub: 0}},
	}
	a := Amplify(events, trace)
	if a.Event != 2.0 {
		t.Fatalf("event amp = %v", a.Event)
	}
	if a.Key != 2.0 { // 4 distinct state keys / 2 distinct input keys
		t.Fatalf("key amp = %v", a.Key)
	}
	if (Amplify(nil, trace) != Amplification{}) {
		t.Fatal("empty events should zero out")
	}
}

func TestKeyIDs(t *testing.T) {
	trace := []kv.Access{
		{Key: kv.StateKey{Group: 9}},
		{Key: kv.StateKey{Group: 5}},
		{Key: kv.StateKey{Group: 9}},
		{Key: kv.StateKey{Group: 9, Sub: 1}},
	}
	ids := KeyIDs(trace)
	want := []uint64{0, 1, 0, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("ids = %v", ids)
		}
	}
	evIDs := EventKeyIDs([]eventgen.Event{{Key: 7}, {Key: 3}, {Key: 7}})
	if evIDs[0] != 0 || evIDs[1] != 1 || evIDs[2] != 0 {
		t.Fatalf("event ids = %v", evIDs)
	}
}

// naiveStackDistance is the O(n^2) reference implementation.
func naiveStackDistance(keys []uint64) ([]float64, int) {
	var out []float64
	cold := 0
	lastPos := map[uint64]int{}
	for i, k := range keys {
		if p, ok := lastPos[k]; ok {
			distinctSet := map[uint64]struct{}{}
			for j := p + 1; j < i; j++ {
				distinctSet[keys[j]] = struct{}{}
			}
			out = append(out, float64(len(distinctSet)))
		} else {
			cold++
		}
		lastPos[k] = i
	}
	return out, cold
}

func TestStackDistancesSmall(t *testing.T) {
	// a b a c b a -> a:1 (b between), b:2 (a,c), a:2 (c,b)
	keys := []uint64{0, 1, 0, 2, 1, 0}
	d, cold := StackDistances(keys)
	want := []float64{1, 2, 2}
	if cold != 3 || len(d) != 3 {
		t.Fatalf("d=%v cold=%d", d, cold)
	}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("d = %v, want %v", d, want)
		}
	}
}

func TestStackDistancesMatchNaive(t *testing.T) {
	f := func(raw []uint8) bool {
		keys := make([]uint64, len(raw))
		for i, r := range raw {
			keys[i] = uint64(r % 16)
		}
		fast, fc := StackDistances(keys)
		slow, sc := naiveStackDistance(keys)
		if fc != sc || len(fast) != len(slow) {
			return false
		}
		for i := range fast {
			if fast[i] != slow[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStackDistanceLocalityOrdering(t *testing.T) {
	// A sequential repeating scan has max temporal distance; a hot-key
	// trace has minimal distances; shuffled falls in between.
	rng := rand.New(rand.NewSource(1))
	hot := make([]uint64, 5000)
	for i := range hot {
		if rng.Float64() < 0.9 {
			hot[i] = 0
		} else {
			hot[i] = uint64(rng.Intn(100))
		}
	}
	hd, _ := StackDistances(hot)
	shuffled := Shuffle(hot, 2)
	sd, _ := StackDistances(shuffled)
	if mean(hd) >= mean(sd)+0.5 {
		t.Fatalf("hot trace mean distance %v should be <= shuffled %v", mean(hd), mean(sd))
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func TestUniqueSequences(t *testing.T) {
	// Repeating pattern a b c a b c ... : 3 unique 1-grams, 3 unique
	// 2-grams, 3 unique 3-grams.
	keys := make([]uint64, 300)
	for i := range keys {
		keys[i] = uint64(i % 3)
	}
	seqs := UniqueSequences(keys, 3)
	if seqs[0] != 3 || seqs[1] != 3 || seqs[2] != 3 {
		t.Fatalf("seqs = %v", seqs)
	}
	// Shuffling destroys the pattern: many more unique sequences.
	shuffledSeqs := UniqueSequences(Shuffle(keys, 7), 3)
	if shuffledSeqs[2] <= seqs[2] {
		t.Fatalf("shuffled 3-grams %d should exceed %d", shuffledSeqs[2], seqs[2])
	}
	// Length beyond the trace yields zero.
	short := UniqueSequences([]uint64{1, 2}, 5)
	if short[4] != 0 {
		t.Fatalf("overlong ngram count = %d", short[4])
	}
}

func TestWorkingSet(t *testing.T) {
	// Keys 0..9 each alive for 10 steps, sequentially.
	var keys []uint64
	for k := 0; k < 10; k++ {
		for i := 0; i < 10; i++ {
			keys = append(keys, uint64(k))
		}
	}
	points := WorkingSet(keys, 10)
	if len(points) != 10 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.Size != 1 {
			t.Fatalf("sequential keys should have working set 1, got %d at %d", p.Size, p.Step)
		}
	}
	// Interleaved keys keep everything alive.
	var inter []uint64
	for i := 0; i < 100; i++ {
		inter = append(inter, uint64(i%10))
	}
	if MaxWorkingSet(inter, 10) != 10 {
		t.Fatalf("interleaved max = %d", MaxWorkingSet(inter, 10))
	}
	if WorkingSet(nil, 10) != nil {
		t.Fatal("empty working set")
	}
}

func TestTTLs(t *testing.T) {
	keys := []uint64{0, 1, 0, 2} // 0: ttl 2; 1: ttl 0; 2: ttl 0
	ttls, once := TTLs(keys)
	if len(ttls) != 3 {
		t.Fatalf("ttls = %v", ttls)
	}
	if once != 2.0/3 {
		t.Fatalf("accessed once = %v", once)
	}
	sum := 0.0
	for _, v := range ttls {
		sum += v
	}
	if sum != 2 {
		t.Fatalf("ttl sum = %v", sum)
	}
}

func TestSampleTTLs(t *testing.T) {
	keys := make([]uint64, 10000)
	for i := range keys {
		keys[i] = uint64(i % 2000)
	}
	s := SampleTTLs(keys, 100, 1)
	if s.Count != 100 {
		t.Fatalf("sampled = %d", s.Count)
	}
	all := SampleTTLs(keys, 0, 1)
	if all.Count != 2000 {
		t.Fatalf("unsampled = %d", all.Count)
	}
}

func TestDistributionDistanceIdentical(t *testing.T) {
	ids := make([]uint64, 5000)
	rng := rand.New(rand.NewSource(4))
	for i := range ids {
		ids[i] = uint64(rng.Intn(100))
	}
	ks, w := DistributionDistance(ids, ids)
	if ks.D != 0 || w != 0 {
		t.Fatalf("identical distance: D=%v W=%v", ks.D, w)
	}
}

func TestDistributionDistanceDifferent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Skewed: 90% of accesses to key 0.
	skew := make([]uint64, 5000)
	for i := range skew {
		if rng.Float64() < 0.9 {
			skew[i] = 0
		} else {
			skew[i] = uint64(rng.Intn(100))
		}
	}
	// Uniform over 100 keys.
	uni := make([]uint64, 5000)
	for i := range uni {
		uni[i] = uint64(rng.Intn(100))
	}
	ks, w := DistributionDistance(skew, uni)
	if !ks.Reject(0.001) {
		t.Fatalf("skew vs uniform should reject: %+v", ks)
	}
	if w <= 0 {
		t.Fatalf("wasserstein = %v", w)
	}
}

func TestShuffleDeterministic(t *testing.T) {
	keys := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	a := Shuffle(keys, 42)
	b := Shuffle(keys, 42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("shuffle not deterministic")
		}
	}
	// Original untouched.
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatal("shuffle mutated input")
		}
	}
}

func BenchmarkStackDistances(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]uint64, 100000)
	for i := range keys {
		keys[i] = uint64(rng.Intn(5000))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StackDistances(keys)
	}
}

func TestMissRatioCurve(t *testing.T) {
	// Round-robin over 4 keys: stack distance is always 3, so any cache
	// of size <= 3 always misses and size >= 4 only cold-misses.
	var keys []uint64
	for i := 0; i < 400; i++ {
		keys = append(keys, uint64(i%4))
	}
	pts := MissRatioCurve(keys, []int{1, 3, 4, 8})
	if pts[0].MissRatio != 1 || pts[1].MissRatio != 1 {
		t.Fatalf("small caches should always miss: %+v", pts)
	}
	want := 4.0 / 400 // only the cold misses
	if math.Abs(pts[2].MissRatio-want) > 1e-9 || math.Abs(pts[3].MissRatio-want) > 1e-9 {
		t.Fatalf("large caches = %+v, want %v", pts, want)
	}
	// Monotone non-increasing in cache size.
	rng := rand.New(rand.NewSource(6))
	var zipfy []uint64
	z := rand.NewZipf(rng, 1.2, 1, 999)
	for i := 0; i < 20000; i++ {
		zipfy = append(zipfy, z.Uint64())
	}
	curve := MissRatioCurve(zipfy, []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1000})
	for i := 1; i < len(curve); i++ {
		if curve[i].MissRatio > curve[i-1].MissRatio+1e-12 {
			t.Fatalf("curve not monotone at %d: %+v", i, curve)
		}
	}
	if empty := MissRatioCurve(nil, []int{4}); empty[0].MissRatio != 0 {
		t.Fatalf("empty trace curve = %+v", empty)
	}
	if zero := MissRatioCurve(keys, []int{0}); zero[0].MissRatio != 1 {
		t.Fatalf("zero cache = %+v", zero)
	}
}

func TestRecommendCacheSize(t *testing.T) {
	// 90% of accesses to 10 hot keys, the rest over 1000 keys.
	rng := rand.New(rand.NewSource(7))
	var keys []uint64
	for i := 0; i < 30000; i++ {
		if rng.Float64() < 0.9 {
			keys = append(keys, uint64(rng.Intn(10)))
		} else {
			keys = append(keys, uint64(10+rng.Intn(1000)))
		}
	}
	size := RecommendCacheSize(keys, 0.15)
	if size < 8 || size > 64 {
		t.Fatalf("recommended %d, expected a few dozen entries", size)
	}
	// Impossible target: falls back to full keyspace.
	if s := RecommendCacheSize(keys, 0); s < 900 {
		t.Fatalf("impossible target recommended %d", s)
	}
	if RecommendCacheSize(nil, 0.5) != 0 {
		t.Fatal("empty trace should recommend 0")
	}
}
