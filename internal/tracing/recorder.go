package tracing

import (
	"container/heap"
	"sort"
	"sync"
	"sync/atomic"
)

// record is one retained complete trace, stored flat (no maps) so the
// recorder's hot path never allocates beyond the fixed rings.
type record struct {
	id       uint64
	op       uint8
	attempts uint32
	total    int64
	durs     [NumStages]int64
}

const recStripes = 8 // power of two; stripes the uniform-sample ring

// recorder is the flight recorder: a min-heap of the K slowest complete
// traces (atomic-threshold fast path) plus a lock-striped ring buffer
// holding a uniform 1-in-N sample of traced operations.
type recorder struct {
	slowK  int
	slowMu sync.Mutex
	slow   slowHeap     // min-heap by total
	floor  atomic.Int64 // slow[0].total once the heap is full

	every   uint64 // uniform ring keeps 1 in every of traced ops
	tick    atomic.Uint64
	stripes [recStripes]ringStripe
}

type ringStripe struct {
	mu   sync.Mutex
	ring []record
	next int
	n    uint64 // total offered to this stripe
}

type slowHeap []record

func (h slowHeap) Len() int           { return len(h) }
func (h slowHeap) Less(i, j int) bool { return h[i].total < h[j].total }
func (h slowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *slowHeap) Push(x any)        { *h = append(*h, x.(record)) }
func (h *slowHeap) Pop() any          { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h slowHeap) slowest() []record  { out := append([]record(nil), h...); return out }

// uniformEvery converts the tracer's SampleN into the ring's own
// decimation: traced ops are already 1-in-SampleN of all ops, so the
// ring keeps every 4th traced op to stay a uniform (coarser) sample
// without the ring churning on every trace.
const uniformEvery = 4

// ringSlots is the per-stripe uniform-ring capacity.
func ringSlots(slowK int) int {
	n := slowK / 2
	if n < 2 {
		n = 2
	}
	return n
}

func newRecorder(slowK, sampleN int) *recorder {
	r := &recorder{slowK: slowK, every: uniformEvery}
	r.floor.Store(-1) // heap not full: every trace must take the lock
	slots := ringSlots(slowK)
	for i := range r.stripes {
		r.stripes[i].ring = make([]record, 0, slots)
	}
	return r
}

// offer considers a completed trace. Called from Tracer.Finish before
// the Ctx is pooled.
func (r *recorder) offer(c *Ctx, total int64) {
	// K-slowest: atomic floor check keeps fast (non-tail) traces from
	// ever taking the heap lock once the heap is full.
	if total > r.floor.Load() {
		r.slowMu.Lock()
		if len(r.slow) < r.slowK {
			heap.Push(&r.slow, record{id: c.ID, op: c.Op, attempts: c.Attempts, total: total, durs: c.durs})
			if len(r.slow) == r.slowK {
				r.floor.Store(r.slow[0].total)
			}
		} else if total > r.slow[0].total {
			r.slow[0] = record{id: c.ID, op: c.Op, attempts: c.Attempts, total: total, durs: c.durs}
			heap.Fix(&r.slow, 0)
			r.floor.Store(r.slow[0].total)
		}
		r.slowMu.Unlock()
	}

	// Uniform sample: every Nth traced op lands in a ring stripe chosen
	// by trace id, so concurrent finishers rarely contend.
	if r.tick.Add(1)%r.every != 0 {
		return
	}
	st := &r.stripes[c.ID&(recStripes-1)]
	st.mu.Lock()
	rec := record{id: c.ID, op: c.Op, attempts: c.Attempts, total: total, durs: c.durs}
	if len(st.ring) < cap(st.ring) {
		st.ring = append(st.ring, rec)
	} else {
		st.ring[st.next] = rec
		st.next = (st.next + 1) % cap(st.ring)
	}
	st.n++
	st.mu.Unlock()
}

// SlowOp is one retained trace in report form. Durations are
// nanoseconds; Stages holds only the non-zero stages.
type SlowOp struct {
	ID       uint64           `json:"id"`
	Op       string           `json:"op"`
	TotalNs  int64            `json:"total_ns"`
	Stages   map[string]int64 `json:"stages_ns"`
	Attempts uint32           `json:"attempts,omitempty"`
}

// StageSummary is the aggregated view of one stage across all traced
// ops (not just the recorded exemplars).
type StageSummary struct {
	Count  uint64 `json:"count"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	MaxNs  int64  `json:"max_ns"`
	MeanNs int64  `json:"mean_ns"`
}

// SlowOps is the report's slow_ops section: the K slowest traces, a
// uniform sample, and per-stage aggregate summaries.
type SlowOps struct {
	// Traced is the number of completed traces this run.
	Traced uint64 `json:"traced"`
	// SampleN echoes the 1-in-N trace sampling period.
	SampleN int `json:"sample_n"`
	// Slowest holds the K slowest complete traces, slowest first.
	Slowest []SlowOp `json:"slowest"`
	// Sample is the uniform 1-in-N sample of traced ops, oldest-first
	// per stripe (interleaved across stripes).
	Sample []SlowOp `json:"sample,omitempty"`
	// Stages summarizes each stage with recorded data.
	Stages map[string]StageSummary `json:"stages"`
}

func (r *record) toSlowOp(opName func(uint8) string) SlowOp {
	op := SlowOp{ID: r.id, TotalNs: r.total, Attempts: r.attempts, Stages: make(map[string]int64)}
	if opName != nil {
		op.Op = opName(r.op)
	}
	for s, d := range r.durs {
		if d > 0 {
			op.Stages[Stage(s).String()] = d
		}
	}
	return op
}

// snapshot builds the report section from the recorder + tracer
// aggregates. opName maps the op code to a display name (nil leaves Op
// empty).
func (r *recorder) snapshot(t *Tracer, opName func(uint8) string) *SlowOps {
	_, finished := t.Stats()
	out := &SlowOps{
		Traced:  finished,
		SampleN: t.SampleN(),
		Stages:  make(map[string]StageSummary),
	}

	r.slowMu.Lock()
	slow := r.slow.slowest()
	r.slowMu.Unlock()
	sort.Slice(slow, func(i, j int) bool { return slow[i].total > slow[j].total })
	for i := range slow {
		out.Slowest = append(out.Slowest, slow[i].toSlowOp(opName))
	}

	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		for j := range st.ring {
			out.Sample = append(out.Sample, st.ring[j].toSlowOp(opName))
		}
		st.mu.Unlock()
	}
	sort.Slice(out.Sample, func(i, j int) bool { return out.Sample[i].ID < out.Sample[j].ID })

	for s := 0; s < NumStages; s++ {
		h := t.hists[s].Snapshot()
		if h.Count() == 0 {
			continue
		}
		out.Stages[Stage(s).String()] = StageSummary{
			Count:  h.Count(),
			P50Ns:  h.Quantile(0.5),
			P99Ns:  h.Quantile(0.99),
			MaxNs:  h.Max(),
			MeanNs: int64(h.Mean()),
		}
	}
	return out
}
