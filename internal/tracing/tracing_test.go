package tracing

import (
	"sync"
	"testing"
)

// fakeClock is a manually advanced monotonic clock.
type fakeClock struct {
	mu sync.Mutex
	t  int64
}

func (f *fakeClock) now() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d int64) {
	f.mu.Lock()
	f.t += d
	f.mu.Unlock()
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if c := tr.Start(0); c != nil {
		t.Fatalf("nil tracer sampled a trace")
	}
	tr.Finish(nil)
	if s, f := tr.Stats(); s != 0 || f != 0 {
		t.Fatalf("nil tracer stats = %d/%d", s, f)
	}
	if tr.Snapshot(nil) != nil {
		t.Fatalf("nil tracer snapshot non-nil")
	}

	var c *Ctx
	c.Add(StageWire, 5)
	c.AddSince(StageWire, 0)
	c.Attempt()
	if c.Now() != 0 || c.Dur(StageWire) != 0 || c.StageSum() != 0 {
		t.Fatalf("nil ctx leaked state")
	}
}

func TestStageAccumulation(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleN: 1, Now: clk.now})
	c := tr.Start(1)
	if c == nil {
		t.Fatalf("SampleN=1 must trace every op")
	}
	clk.advance(100)
	c.Add(StageQueue, 40)
	c.Add(StageQueue, 10) // accumulates
	c.Add(StageWire, 30)
	c.Add(StageServer, 20)
	c.Add(StageEngine, -5) // negative dropped
	if got := c.Dur(StageQueue); got != 50 {
		t.Fatalf("queue = %d, want 50", got)
	}
	if got := c.StageSum(); got != 100 {
		t.Fatalf("stage sum = %d, want 100", got)
	}
	tr.Finish(c)

	if got := tr.TotalHist().Count(); got != 1 {
		t.Fatalf("total count = %d", got)
	}
	if got := tr.StageHist(StageQueue).Count(); got != 1 {
		t.Fatalf("queue hist count = %d", got)
	}
	if got := tr.StageHist(StageEngine).Count(); got != 0 {
		t.Fatalf("engine hist count = %d, want 0", got)
	}
}

func TestAddSinceUsesInjectedClock(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleN: 1, Now: clk.now})
	c := tr.Start(0)
	t0 := c.Now()
	clk.advance(77)
	c.AddSince(StageRetry, t0)
	if got := c.Dur(StageRetry); got != 77 {
		t.Fatalf("AddSince recorded %d, want 77", got)
	}
	tr.Finish(c)
}

func TestSampling(t *testing.T) {
	tr := New(Options{SampleN: 4})
	sampled := 0
	for i := 0; i < 400; i++ {
		if c := tr.Start(0); c != nil {
			sampled++
			tr.Finish(c)
		}
	}
	if sampled != 100 {
		t.Fatalf("sampled %d of 400 with SampleN=4", sampled)
	}
	if s, f := tr.Stats(); s != 100 || f != 100 {
		t.Fatalf("stats = %d/%d, want 100/100", s, f)
	}
}

func TestSlowestRetention(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleN: 1, SlowK: 4, Now: clk.now})
	// Totals 1..100: the recorder must retain exactly {97,98,99,100}.
	for i := 1; i <= 100; i++ {
		c := tr.Start(0)
		clk.advance(int64(i))
		c.Add(StageEngine, int64(i))
		tr.Finish(c)
	}
	snap := tr.Snapshot(nil)
	if snap.Traced != 100 {
		t.Fatalf("traced = %d", snap.Traced)
	}
	if len(snap.Slowest) != 4 {
		t.Fatalf("slowest len = %d, want 4", len(snap.Slowest))
	}
	want := []int64{100, 99, 98, 97}
	for i, op := range snap.Slowest {
		if op.TotalNs != want[i] {
			t.Fatalf("slowest[%d] = %dns, want %d", i, op.TotalNs, want[i])
		}
		if op.Stages["engine"] != want[i] {
			t.Fatalf("slowest[%d] engine stage = %d", i, op.Stages["engine"])
		}
	}
	if len(snap.Sample) == 0 {
		t.Fatalf("uniform sample empty after 100 traces")
	}
	eng, ok := snap.Stages["engine"]
	if !ok || eng.Count != 100 {
		t.Fatalf("engine stage summary = %+v", eng)
	}
}

func TestPoolReuseResetsState(t *testing.T) {
	clk := &fakeClock{}
	tr := New(Options{SampleN: 1, Now: clk.now})
	c := tr.Start(0)
	c.Add(StageWire, 123)
	c.Attempt()
	tr.Finish(c)
	// The next Start very likely reuses the pooled Ctx; it must come
	// back zeroed regardless.
	c2 := tr.Start(0)
	if c2.Dur(StageWire) != 0 || c2.Attempts != 0 {
		t.Fatalf("pooled ctx not reset: wire=%d attempts=%d", c2.Dur(StageWire), c2.Attempts)
	}
	tr.Finish(c2)
}

func TestConcurrentTraces(t *testing.T) {
	tr := New(Options{SampleN: 2, SlowK: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				c := tr.Start(uint8(i % 5))
				if c == nil {
					continue
				}
				c.Add(StageQueue, int64(i%97)+1)
				c.Add(StageWire, 10)
				tr.Finish(c)
			}
		}()
	}
	wg.Wait()
	s, f := tr.Stats()
	if s != f {
		t.Fatalf("started %d != finished %d", s, f)
	}
	if s != 8000 {
		t.Fatalf("started = %d, want 8000 (8 workers x 2000 ops / SampleN 2)", s)
	}
	snap := tr.Snapshot(nil)
	if len(snap.Slowest) != 8 {
		t.Fatalf("slowest len = %d, want 8", len(snap.Slowest))
	}
	for i := 1; i < len(snap.Slowest); i++ {
		if snap.Slowest[i].TotalNs > snap.Slowest[i-1].TotalNs {
			t.Fatalf("slowest not sorted descending at %d", i)
		}
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := 0; s < NumStages; s++ {
		name := Stage(s).String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", s)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(NumStages).String() != "unknown" {
		t.Fatalf("out-of-range stage must stringify as unknown")
	}
}
