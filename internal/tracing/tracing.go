// Package tracing is an allocation-conscious per-operation span system
// for cross-layer latency attribution. A traced operation carries a
// pooled *Ctx (64-bit trace id + per-stage duration slots) down the
// stack; each layer records only the time it *adds* (disjoint stages),
// so the per-stage durations of a complete trace sum to approximately
// the end-to-end service latency.
//
// The package is stdlib-only apart from the repo's own internal/stats
// histograms. All Ctx and Tracer methods are nil-safe: a nil *Tracer
// never samples and a nil *Ctx records nothing, so untraced call sites
// pay a single pointer comparison.
//
// Concurrency: a Ctx may be handed between goroutines (replay worker →
// pipeline writer → pipeline reader), but every hand-off must carry a
// happens-before edge (channel send, mutex) — the Ctx itself is not
// synchronized. Exactly one goroutine may stamp it at a time.
package tracing

import (
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/stats"
)

// Stage identifies one disjoint latency bucket of a traced operation.
// Stages are attribution buckets, not nesting spans: each layer records
// only the latency it adds (queue wait, injected delay, backoff sleep,
// wire time net of server time, ...), never the inner call it wraps.
type Stage uint8

const (
	// StageSched is open-loop scheduling delay: intended arrival to
	// dispatch into the store stack.
	StageSched Stage = iota
	// StageWrap is middleware bookkeeping: a wrapper's own time net of
	// the inner call and of explicitly attributed stages.
	StageWrap
	// StageChaos is delay injected by the chaos fault wrapper.
	StageChaos
	// StageRetry is time spent sleeping in retry backoff.
	StageRetry
	// StageRoute is the shard routing decision.
	StageRoute
	// StageQueue is pipeline submission-queue wait: enqueue to batch cut.
	StageQueue
	// StageWire is batch cut to response delivery, net of the
	// server-reported handling time (StageServer).
	StageWire
	// StageServer is the server's handle-start to handle-end window,
	// echoed in the response trailer (server clock; only the difference
	// crosses the wire, so clock domains never mix).
	StageServer
	// StageEngine is engine-internal time. For engines without a traced
	// path this is the whole inner call; the LSM refines it into the
	// three stages below and records only the remainder here.
	StageEngine
	// StageEngineMem is LSM memtable probe/insert time.
	StageEngineMem
	// StageEngineSST is LSM SSTable read time.
	StageEngineSST
	// StageEngineWAL is LSM WAL append/fsync time.
	StageEngineWAL
	// StageFanout is shard-client scan fan-out wait (parallel RPCs).
	StageFanout
	// StageMerge is shard-client k-way merge time.
	StageMerge

	// NumStages sizes per-stage arrays.
	NumStages int = iota
)

var stageNames = [NumStages]string{
	"sched", "wrap", "chaos", "retry", "route", "queue", "wire",
	"server", "engine", "engine_mem", "engine_sst", "engine_wal",
	"fanout", "merge",
}

// String returns the short stage name used in obs metric keys
// ("stage.<name>") and report JSON.
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Ctx is one in-flight trace: a 64-bit id plus per-stage accumulated
// durations. Ctxs are pooled by their Tracer; after Finish the pointer
// must not be reused. All methods are nil-safe.
type Ctx struct {
	// ID is the per-tracer unique trace id.
	ID uint64
	// Op is the operation code (kv.Op numbering), set at Start.
	Op uint8
	// Attempts counts retry attempts beyond the first (see Attempt).
	Attempts uint32

	durs  [NumStages]int64
	start int64
	tr    *Tracer
}

// Now returns the tracer's monotonic clock reading in nanoseconds, or 0
// on a nil Ctx. Layers use it to bracket the windows they attribute.
func (c *Ctx) Now() int64 {
	if c == nil {
		return 0
	}
	return c.tr.now()
}

// Add accumulates d nanoseconds into stage s. Negative deltas (clock
// retreat under an injected test clock) are dropped.
func (c *Ctx) Add(s Stage, d int64) {
	if c == nil || d <= 0 {
		return
	}
	c.durs[s] += d
}

// AddSince accumulates now-t0 into stage s.
func (c *Ctx) AddSince(s Stage, t0 int64) {
	if c == nil {
		return
	}
	c.Add(s, c.tr.now()-t0)
}

// Dur returns the accumulated duration of stage s, or 0 on a nil Ctx.
func (c *Ctx) Dur(s Stage) int64 {
	if c == nil {
		return 0
	}
	return c.durs[s]
}

// StageSum returns the sum of all per-stage durations.
func (c *Ctx) StageSum() int64 {
	if c == nil {
		return 0
	}
	var sum int64
	for _, d := range c.durs {
		sum += d
	}
	return sum
}

// Attempt records one retry attempt beyond the first.
func (c *Ctx) Attempt() {
	if c != nil {
		c.Attempts++
	}
}

// Options configures a Tracer.
type Options struct {
	// SampleN traces 1 in N operations (1 = every op; 0 = default 64).
	SampleN int
	// SlowK retains the K slowest complete traces in the flight
	// recorder (0 = default 16).
	SlowK int
	// Now injects the monotonic clock (nanoseconds). Nil uses the real
	// monotonic clock. Tests inject deterministic clocks here.
	Now func() int64
}

const (
	defaultSampleN = 64
	defaultSlowK   = 16
)

// Tracer samples, aggregates, and records traces. Safe for concurrent
// use. A nil *Tracer is valid and never samples.
type Tracer struct {
	now     func() int64
	sampleN uint64
	// mask is sampleN-1 when sampleN is a power of two, so the unsampled
	// fast path can replace the integer division with an AND.
	mask uint64

	seq      atomic.Uint64
	tick     atomic.Uint64
	started  atomic.Uint64
	finished atomic.Uint64

	hists [NumStages]*stats.StripedHistogram
	total *stats.StripedHistogram
	rec   *recorder

	pool sync.Pool
}

// New constructs a Tracer.
func New(opts Options) *Tracer {
	if opts.SampleN <= 0 {
		opts.SampleN = defaultSampleN
	}
	if opts.SlowK <= 0 {
		opts.SlowK = defaultSlowK
	}
	now := opts.Now
	if now == nil {
		base := time.Now()
		now = func() int64 { return int64(time.Since(base)) }
	}
	t := &Tracer{
		now:     now,
		sampleN: uint64(opts.SampleN),
		total:   stats.NewStripedHistogram(),
		rec:     newRecorder(opts.SlowK, opts.SampleN),
	}
	if n := t.sampleN; n&(n-1) == 0 {
		t.mask = n - 1
	}
	for i := range t.hists {
		t.hists[i] = stats.NewStripedHistogram()
	}
	t.pool.New = func() any { return new(Ctx) }
	return t
}

// SampleN returns the configured 1-in-N sampling period.
func (t *Tracer) SampleN() int {
	if t == nil {
		return 0
	}
	return int(t.sampleN)
}

// Start begins a trace for operation op, returning nil when this
// operation falls outside the 1-in-N sample (the caller then takes its
// untraced path at zero additional cost). The unsampled path is one
// atomic increment.
func (t *Tracer) Start(op uint8) *Ctx {
	if t == nil {
		return nil
	}
	tick := t.tick.Add(1)
	if t.mask != 0 {
		if tick&t.mask != 0 {
			return nil
		}
	} else if tick%t.sampleN != 0 {
		return nil
	}
	c := t.pool.Get().(*Ctx)
	*c = Ctx{ID: t.seq.Add(1), Op: op, tr: t}
	c.start = t.now()
	t.started.Add(1)
	return c
}

// Finish completes a trace: the end-to-end duration and every non-zero
// stage feed the per-stage histograms, the flight recorder considers
// the trace, and the Ctx returns to the pool. Nil tracer or nil ctx is
// a no-op. The Ctx must not be used after Finish.
func (t *Tracer) Finish(c *Ctx) {
	if t == nil || c == nil {
		return
	}
	total := t.now() - c.start
	if total < 0 {
		total = 0
	}
	t.total.Record(total)
	for s, d := range c.durs {
		if d > 0 {
			t.hists[s].Record(d)
		}
	}
	t.rec.offer(c, total)
	t.finished.Add(1)
	*c = Ctx{}
	t.pool.Put(c)
}

// Stats reports how many traces were started and finished. A quiesced
// system must show started == finished: anything else is a duplicate
// completion (finished > started is impossible by construction, so a
// gap means leaked pooled contexts).
func (t *Tracer) Stats() (started, finished uint64) {
	if t == nil {
		return 0, 0
	}
	return t.started.Load(), t.finished.Load()
}

// StageHist returns the aggregated histogram for stage s (nanoseconds).
func (t *Tracer) StageHist(s Stage) *stats.StripedHistogram {
	if t == nil {
		return nil
	}
	return t.hists[s]
}

// TotalHist returns the end-to-end duration histogram of traced ops.
func (t *Tracer) TotalHist() *stats.StripedHistogram {
	if t == nil {
		return nil
	}
	return t.total
}

// Snapshot drains nothing and copies the flight recorder + stage
// aggregates into the report-ready SlowOps section. Nil tracer returns
// nil.
func (t *Tracer) Snapshot(opName func(uint8) string) *SlowOps {
	if t == nil {
		return nil
	}
	return t.rec.snapshot(t, opName)
}
