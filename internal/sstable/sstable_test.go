package sstable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gadget/internal/cache"
)

func buildTable(t *testing.T, n int, props map[string]uint64) (*Reader, func()) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sst")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f)
	for name, v := range props {
		w.SetProperty(name, v)
	}
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("key-%06d", i))
		v := []byte(fmt.Sprintf("value-%06d", i))
		if err := w.Add(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(rf, 1, cache.New(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	return r, func() { rf.Close() }
}

func TestWriteReadRoundTrip(t *testing.T) {
	const n = 5000
	r, done := buildTable(t, n, nil)
	defer done()
	if r.Count() != n {
		t.Fatalf("count = %d", r.Count())
	}
	if string(r.Smallest()) != "key-000000" || string(r.Largest()) != fmt.Sprintf("key-%06d", n-1) {
		t.Fatalf("bounds = %q..%q", r.Smallest(), r.Largest())
	}
	it := r.Iter()
	it.First()
	for i := 0; i < n; i++ {
		if !it.Valid() {
			t.Fatalf("iterator ended early at %d: %v", i, it.Err())
		}
		wantK := fmt.Sprintf("key-%06d", i)
		if string(it.Key()) != wantK || string(it.Value()) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("entry %d = %q/%q", i, it.Key(), it.Value())
		}
		it.Next()
	}
	if it.Valid() {
		t.Fatal("iterator should be exhausted")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestSeekGE(t *testing.T) {
	r, done := buildTable(t, 5000, nil)
	defer done()
	it := r.Iter()

	it.SeekGE([]byte("key-002500"))
	if !it.Valid() || string(it.Key()) != "key-002500" {
		t.Fatalf("seek exact = %q", it.Key())
	}
	it.SeekGE([]byte("key-002500x"))
	if !it.Valid() || string(it.Key()) != "key-002501" {
		t.Fatalf("seek between = %q", it.Key())
	}
	it.SeekGE([]byte("key-004999"))
	if !it.Valid() || string(it.Key()) != "key-004999" {
		t.Fatalf("seek last = %q", it.Key())
	}
	it.SeekGE([]byte("key-005000"))
	if it.Valid() {
		t.Fatal("seek past end should be invalid")
	}
	it.SeekGE([]byte("a"))
	if !it.Valid() || string(it.Key()) != "key-000000" {
		t.Fatalf("seek before start = %q", it.Key())
	}
	// Next across block boundaries after seek.
	it.SeekGE([]byte("key-000100"))
	for i := 100; i < 200; i++ {
		if string(it.Key()) != fmt.Sprintf("key-%06d", i) {
			t.Fatalf("scan after seek at %d: %q", i, it.Key())
		}
		it.Next()
	}
}

func TestBloomFilter(t *testing.T) {
	r, done := buildTable(t, 1000, nil)
	defer done()
	for i := 0; i < 1000; i++ {
		if !r.MayContain([]byte(fmt.Sprintf("key-%06d", i))) {
			t.Fatalf("false negative on key-%06d", i)
		}
	}
	fp := 0
	for i := 0; i < 1000; i++ {
		if r.MayContain([]byte(fmt.Sprintf("absent-%d", i))) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("false positives: %d/1000", fp)
	}
}

func TestProperties(t *testing.T) {
	r, done := buildTable(t, 10, map[string]uint64{"deletes": 42, "minseq": 7})
	defer done()
	if v, ok := r.Property("deletes"); !ok || v != 42 {
		t.Fatalf("deletes = %d,%v", v, ok)
	}
	if v, ok := r.Property("minseq"); !ok || v != 7 {
		t.Fatalf("minseq = %d,%v", v, ok)
	}
	if _, ok := r.Property("missing"); ok {
		t.Fatal("missing property should be absent")
	}
}

func TestOutOfOrderAddRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Add([]byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("a"), nil); err == nil {
		t.Fatal("descending add should fail")
	}
	if err := w.Add([]byte("b"), nil); err == nil {
		t.Fatal("duplicate add should fail")
	}
}

func TestEmptyTable(t *testing.T) {
	r, done := buildTable(t, 0, nil)
	defer done()
	if r.Count() != 0 || r.Smallest() != nil || r.Largest() != nil {
		t.Fatal("empty table metadata wrong")
	}
	it := r.Iter()
	it.First()
	if it.Valid() {
		t.Fatal("empty table iterator should be invalid")
	}
	it.SeekGE([]byte("x"))
	if it.Valid() {
		t.Fatal("empty table seek should be invalid")
	}
}

func TestCorruptFooter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.sst")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	f, _ := os.Open(path)
	defer f.Close()
	if _, err := Open(f, 1, nil); err == nil {
		t.Fatal("zeros should not open")
	}
	short, _ := os.Open(os.DevNull)
	defer short.Close()
	if _, err := Open(short, 1, nil); err == nil {
		t.Fatal("tiny file should not open")
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sst")
	f, _ := os.Create(path)
	w := NewWriter(f)
	for i := 0; i < 1000; i++ {
		w.Add([]byte(fmt.Sprintf("key-%06d", i)), []byte("v"))
	}
	w.Close()
	f.Close()
	// Flip a byte inside the first data block.
	data, _ := os.ReadFile(path)
	data[10] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	rf, _ := os.Open(path)
	defer rf.Close()
	r, err := Open(rf, 1, nil)
	if err != nil {
		return // corruption caught at open (first-block read): also fine
	}
	it := r.Iter()
	it.First()
	for it.Valid() {
		it.Next()
	}
	if it.Err() == nil {
		t.Fatal("corrupt block should surface an error")
	}
}

func TestNoCache(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.sst")
	f, _ := os.Create(path)
	w := NewWriter(f)
	w.Add([]byte("k"), []byte("v"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()
	rf, _ := os.Open(path)
	defer rf.Close()
	r, err := Open(rf, 9, nil)
	if err != nil {
		t.Fatal(err)
	}
	it := r.Iter()
	it.First()
	if !it.Valid() || string(it.Key()) != "k" {
		t.Fatalf("entry = %q", it.Key())
	}
}

func TestWriterEstimatedSize(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if w.EstimatedSize() != 0 {
		t.Fatal("fresh writer size != 0")
	}
	w.Add([]byte("key"), make([]byte, 1000))
	if w.EstimatedSize() < 1000 {
		t.Fatalf("size = %d", w.EstimatedSize())
	}
	if w.Count() != 1 {
		t.Fatalf("count = %d", w.Count())
	}
}

func BenchmarkIterScan(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "t.sst")
	f, _ := os.Create(path)
	w := NewWriter(f)
	const n = 100000
	for i := 0; i < n; i++ {
		w.Add([]byte(fmt.Sprintf("key-%09d", i)), make([]byte, 64))
	}
	w.Close()
	f.Close()
	rf, _ := os.Open(path)
	defer rf.Close()
	r, err := Open(rf, 1, cache.New(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := r.Iter()
		count := 0
		for it.First(); it.Valid(); it.Next() {
			count++
		}
		if count != n {
			b.Fatalf("count = %d", count)
		}
	}
}
