// Package sstable implements the immutable sorted-table file format used
// by the LSM engine: 4 KiB data blocks of length-prefixed entries, a
// Bloom filter block, a block index, a small numeric properties block,
// and a fixed footer. Readers serve block reads through a shared LRU
// cache.
//
// The format stores opaque byte keys in ascending order; the LSM layer
// encodes its internal keys (user key, sequence, kind) on top.
package sstable

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"

	"gadget/internal/bloom"
	"gadget/internal/cache"
)

const (
	// TargetBlockSize is the uncompressed size at which a data block is cut.
	TargetBlockSize = 4 << 10

	footerLen = 8 * 6
	magic     = 0x47414447_45545342 // "GADGETSB"
)

// ErrCorrupt indicates a structurally invalid table file.
var ErrCorrupt = errors.New("sstable: corrupt table")

// Writer builds an SSTable. Keys must be Added in strictly ascending
// order. The writer owns neither the file nor its lifetime; callers close
// the file after Close returns.
type Writer struct {
	w       *bufio.Writer
	off     uint64
	block   bytes.Buffer
	index   []indexEntry
	filter  *bloom.Builder
	props   map[string]uint64
	lastKey []byte
	first   []byte
	count   uint64
	// FilterKey extracts the bloom filter key from an entry key; defaults
	// to the identity. The LSM sets it to strip sequence suffixes so that
	// point lookups by user key can consult the filter.
	FilterKey func(key []byte) []byte
	// BloomBitsPerKey sizes the Bloom filter (0 = default of 10;
	// negative disables the filter entirely, so MayContain admits all).
	BloomBitsPerKey int
}

type indexEntry struct {
	lastKey []byte
	off     uint64
	length  uint32
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer {
	return &Writer{
		w:         bufio.NewWriterSize(w, 64<<10),
		filter:    bloom.NewBuilder(),
		props:     make(map[string]uint64),
		FilterKey: func(k []byte) []byte { return k },
	}
}

// SetProperty records a numeric property persisted in the table (e.g.
// tombstone counts used by the Lethe compaction picker).
func (w *Writer) SetProperty(name string, v uint64) { w.props[name] = v }

// Add appends an entry. Keys must arrive in strictly ascending order.
func (w *Writer) Add(key, value []byte) error {
	if w.lastKey != nil && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %x after %x", key, w.lastKey)
	}
	if w.first == nil {
		w.first = append([]byte(nil), key...)
	}
	w.lastKey = append(w.lastKey[:0], key...)
	w.filter.Add(w.FilterKey(key))
	w.count++

	var hdr [2 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(hdr[:], uint64(len(key)))
	n += binary.PutUvarint(hdr[n:], uint64(len(value)))
	w.block.Write(hdr[:n])
	w.block.Write(key)
	w.block.Write(value)

	if w.block.Len() >= TargetBlockSize {
		return w.flushBlock()
	}
	return nil
}

func (w *Writer) flushBlock() error {
	if w.block.Len() == 0 {
		return nil
	}
	data := w.block.Bytes()
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(data))
	if _, err := w.w.Write(data); err != nil {
		return err
	}
	if _, err := w.w.Write(crc[:]); err != nil {
		return err
	}
	w.index = append(w.index, indexEntry{
		lastKey: append([]byte(nil), w.lastKey...),
		off:     w.off,
		length:  uint32(len(data)),
	})
	w.off += uint64(len(data)) + 4
	w.block.Reset()
	return nil
}

// Count returns the number of entries added so far.
func (w *Writer) Count() uint64 { return w.count }

// EstimatedSize returns the bytes written so far plus the pending block.
func (w *Writer) EstimatedSize() uint64 { return w.off + uint64(w.block.Len()) }

// Close flushes the final block and writes filter, index, properties and
// footer. It does not close the underlying file.
func (w *Writer) Close() error {
	if err := w.flushBlock(); err != nil {
		return err
	}
	// Filter block. A disabled filter persists as a zero-length block,
	// which readers treat as admit-all.
	filterOff := w.off
	var fb []byte
	if w.BloomBitsPerKey >= 0 {
		bits := w.BloomBitsPerKey
		if bits == 0 {
			bits = 10
		}
		fb = w.filter.Build(bits).Bytes()
	}
	if _, err := w.w.Write(fb); err != nil {
		return err
	}
	w.off += uint64(len(fb))

	// Index block: count, then (klen, key, off, len) entries.
	indexOff := w.off
	var ib bytes.Buffer
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], uint64(len(w.index)))
	ib.Write(tmp[:n])
	for _, e := range w.index {
		n = binary.PutUvarint(tmp[:], uint64(len(e.lastKey)))
		ib.Write(tmp[:n])
		ib.Write(e.lastKey)
		n = binary.PutUvarint(tmp[:], e.off)
		ib.Write(tmp[:n])
		n = binary.PutUvarint(tmp[:], uint64(e.length))
		ib.Write(tmp[:n])
	}
	// Properties appended to the index block, sorted for determinism.
	names := make([]string, 0, len(w.props))
	for k := range w.props {
		names = append(names, k)
	}
	sort.Strings(names)
	n = binary.PutUvarint(tmp[:], uint64(len(names)))
	ib.Write(tmp[:n])
	for _, name := range names {
		n = binary.PutUvarint(tmp[:], uint64(len(name)))
		ib.Write(tmp[:n])
		ib.WriteString(name)
		n = binary.PutUvarint(tmp[:], w.props[name])
		ib.Write(tmp[:n])
	}
	if _, err := w.w.Write(ib.Bytes()); err != nil {
		return err
	}
	w.off += uint64(ib.Len())

	var footer [footerLen]byte
	binary.LittleEndian.PutUint64(footer[0:], filterOff)
	binary.LittleEndian.PutUint64(footer[8:], uint64(len(fb)))
	binary.LittleEndian.PutUint64(footer[16:], indexOff)
	binary.LittleEndian.PutUint64(footer[24:], uint64(ib.Len()))
	binary.LittleEndian.PutUint64(footer[32:], w.count)
	binary.LittleEndian.PutUint64(footer[40:], magic)
	if _, err := w.w.Write(footer[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// ReadableFile is the random access a Reader needs from its backing
// file; *os.File and vfs.File both satisfy it.
type ReadableFile interface {
	io.ReaderAt
	Stat() (os.FileInfo, error)
}

// Reader serves lookups and scans over one SSTable file.
type Reader struct {
	f      ReadableFile
	id     uint64 // cache namespace
	cache  *cache.Cache
	filter *bloom.Filter
	index  []indexEntry
	props  map[string]uint64
	count  uint64
	first  []byte
	// FilterKey must match the writer's; defaults to identity.
	FilterKey func(key []byte) []byte
}

// Open opens the table in file f. id must be unique per live file and is
// used to namespace blocks in c. c may be nil to disable caching.
func Open(f ReadableFile, id uint64, c *cache.Cache) (*Reader, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() < footerLen {
		return nil, ErrCorrupt
	}
	var footer [footerLen]byte
	if _, err := f.ReadAt(footer[:], st.Size()-footerLen); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint64(footer[40:]) != magic {
		return nil, ErrCorrupt
	}
	filterOff := binary.LittleEndian.Uint64(footer[0:])
	filterLen := binary.LittleEndian.Uint64(footer[8:])
	indexOff := binary.LittleEndian.Uint64(footer[16:])
	indexLen := binary.LittleEndian.Uint64(footer[24:])
	count := binary.LittleEndian.Uint64(footer[32:])

	if int64(filterOff+filterLen) > st.Size() || int64(indexOff+indexLen) > st.Size() {
		return nil, ErrCorrupt
	}
	fb := make([]byte, filterLen)
	if _, err := f.ReadAt(fb, int64(filterOff)); err != nil {
		return nil, err
	}
	ib := make([]byte, indexLen)
	if _, err := f.ReadAt(ib, int64(indexOff)); err != nil {
		return nil, err
	}
	r := &Reader{
		f:         f,
		id:        id,
		cache:     c,
		filter:    bloom.FromBytes(fb),
		props:     make(map[string]uint64),
		count:     count,
		FilterKey: func(k []byte) []byte { return k },
	}
	if err := r.parseIndex(ib); err != nil {
		return nil, err
	}
	if len(r.index) > 0 {
		// First key of the table: read the first block lazily? Read now.
		blk, err := r.readBlock(0)
		if err != nil {
			return nil, err
		}
		k, _, _, err := decodeEntry(blk)
		if err != nil {
			return nil, err
		}
		r.first = append([]byte(nil), k...)
	}
	return r, nil
}

func (r *Reader) parseIndex(ib []byte) error {
	buf := bytes.NewBuffer(ib)
	nEntries, err := binary.ReadUvarint(buf)
	if err != nil {
		return ErrCorrupt
	}
	r.index = make([]indexEntry, 0, nEntries)
	for i := uint64(0); i < nEntries; i++ {
		klen, err := binary.ReadUvarint(buf)
		if err != nil {
			return ErrCorrupt
		}
		key := make([]byte, klen)
		if _, err := io.ReadFull(buf, key); err != nil {
			return ErrCorrupt
		}
		off, err := binary.ReadUvarint(buf)
		if err != nil {
			return ErrCorrupt
		}
		length, err := binary.ReadUvarint(buf)
		if err != nil {
			return ErrCorrupt
		}
		r.index = append(r.index, indexEntry{lastKey: key, off: off, length: uint32(length)})
	}
	nProps, err := binary.ReadUvarint(buf)
	if err != nil {
		return ErrCorrupt
	}
	for i := uint64(0); i < nProps; i++ {
		nlen, err := binary.ReadUvarint(buf)
		if err != nil {
			return ErrCorrupt
		}
		name := make([]byte, nlen)
		if _, err := io.ReadFull(buf, name); err != nil {
			return ErrCorrupt
		}
		v, err := binary.ReadUvarint(buf)
		if err != nil {
			return ErrCorrupt
		}
		r.props[string(name)] = v
	}
	return nil
}

// Count returns the number of entries in the table.
func (r *Reader) Count() uint64 { return r.count }

// Property returns a numeric property written by the writer.
func (r *Reader) Property(name string) (uint64, bool) {
	v, ok := r.props[name]
	return v, ok
}

// Smallest returns the first key in the table (nil for an empty table).
func (r *Reader) Smallest() []byte { return r.first }

// Largest returns the last key in the table (nil for an empty table).
func (r *Reader) Largest() []byte {
	if len(r.index) == 0 {
		return nil
	}
	return r.index[len(r.index)-1].lastKey
}

// MayContain consults the Bloom filter with the filter key of key.
func (r *Reader) MayContain(key []byte) bool {
	return r.filter.MayContain(r.FilterKey(key))
}

func (r *Reader) readBlock(i int) ([]byte, error) {
	e := r.index[i]
	ck := cache.Key{File: r.id, Off: e.off}
	if r.cache != nil {
		if b := r.cache.Get(ck); b != nil {
			return b, nil
		}
	}
	buf := make([]byte, e.length+4)
	if _, err := r.f.ReadAt(buf, int64(e.off)); err != nil {
		return nil, err
	}
	data := buf[:e.length]
	want := binary.LittleEndian.Uint32(buf[e.length:])
	if crc32.ChecksumIEEE(data) != want {
		return nil, ErrCorrupt
	}
	if r.cache != nil {
		r.cache.Put(ck, data)
	}
	return data, nil
}

func decodeEntry(b []byte) (key, value, rest []byte, err error) {
	klen, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, nil, ErrCorrupt
	}
	b = b[n:]
	vlen, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, nil, ErrCorrupt
	}
	b = b[n:]
	if uint64(len(b)) < klen+vlen {
		return nil, nil, nil, ErrCorrupt
	}
	return b[:klen], b[klen : klen+vlen], b[klen+vlen:], nil
}

// Iterator scans a table in ascending key order.
type Iterator struct {
	r        *Reader
	blockIdx int
	block    []byte // remaining undecoded bytes of the current block
	key, val []byte
	err      error
	valid    bool
}

// Iter returns an unpositioned iterator; call First or SeekGE.
func (r *Reader) Iter() *Iterator { return &Iterator{r: r, blockIdx: -1} }

// First positions at the smallest entry.
func (it *Iterator) First() {
	it.blockIdx = -1
	it.block = nil
	it.valid = false
	it.err = nil
	it.Next()
}

// SeekGE positions at the first entry with key >= target.
func (it *Iterator) SeekGE(target []byte) {
	it.err = nil
	it.valid = false
	it.block = nil
	// Find the first block whose lastKey >= target.
	i := sort.Search(len(it.r.index), func(i int) bool {
		return bytes.Compare(it.r.index[i].lastKey, target) >= 0
	})
	if i == len(it.r.index) {
		it.blockIdx = len(it.r.index)
		return
	}
	it.blockIdx = i
	blk, err := it.r.readBlock(i)
	if err != nil {
		it.err = err
		return
	}
	it.block = blk
	// Scan within the block.
	for {
		if !it.decodeNext() {
			return
		}
		if bytes.Compare(it.key, target) >= 0 {
			return
		}
	}
}

// decodeNext decodes one entry from the current block into key/val.
func (it *Iterator) decodeNext() bool {
	if len(it.block) == 0 {
		it.valid = false
		return false
	}
	k, v, rest, err := decodeEntry(it.block)
	if err != nil {
		it.err = err
		it.valid = false
		return false
	}
	it.key, it.val, it.block = k, v, rest
	it.valid = true
	return true
}

// Next advances to the following entry, loading the next block as needed.
func (it *Iterator) Next() {
	if it.err != nil {
		return
	}
	if it.decodeNext() {
		return
	}
	// Advance to the next block.
	for {
		it.blockIdx++
		if it.blockIdx >= len(it.r.index) {
			it.valid = false
			return
		}
		blk, err := it.r.readBlock(it.blockIdx)
		if err != nil {
			it.err = err
			it.valid = false
			return
		}
		it.block = blk
		if it.decodeNext() {
			return
		}
	}
}

// Valid reports whether the iterator points at an entry.
func (it *Iterator) Valid() bool { return it.valid }

// Err returns the first I/O or corruption error encountered.
func (it *Iterator) Err() error { return it.err }

// Key returns the current key. The slice aliases an internal buffer and
// is only valid until the next positioning call.
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value, with the same aliasing rules as Key.
func (it *Iterator) Value() []byte { return it.val }
