package lethe

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/lsm"
)

func TestOpenAndBasicOps(t *testing.T) {
	db, err := Open(Options{LSM: lsm.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.Put([]byte("k"), []byte("v"))
	v, err := db.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	db.Merge([]byte("m"), []byte("a"))
	db.Merge([]byte("m"), []byte("b"))
	if v, _ := db.Get([]byte("m")); string(v) != "ab" {
		t.Fatalf("merge = %q", v)
	}
	db.Delete([]byte("k"))
	if _, err := db.Get([]byte("k")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
}

// A Lethe store with an expired tombstone should compact eagerly and drop
// tombstones sooner than the default policy would.
func TestExpiredTombstonesTriggerCompaction(t *testing.T) {
	fakeNow := time.Now()
	opts := Options{
		LSM: lsm.Options{
			Dir:                 t.TempDir(),
			MemtableSize:        4 << 10,
			L0CompactionTrigger: 100, // effectively disable size-triggered L0 compaction
			BaseLevelSize:       1 << 30,
		},
		DeleteThreshold: time.Millisecond,
		now:             func() time.Time { return fakeNow },
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 300; i++ {
		k := []byte(fmt.Sprintf("key-%04d", i))
		db.Put(k, make([]byte, 64))
		db.Delete(k)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Age the tombstones past the threshold and compact.
	fakeNow = fakeNow.Add(time.Second)
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	st := db.StatsSnapshot()
	if st.Compactions == 0 {
		t.Fatal("FADE should have triggered a compaction")
	}
	if st.TombstonesDropped == 0 {
		t.Fatal("expired tombstones should be dropped")
	}
}

func TestNoCompactionBeforeThreshold(t *testing.T) {
	fixed := time.Now()
	p := &Picker{Threshold: time.Hour, now: func() time.Time { return fixed }}
	levels := make([]lsm.LevelInfo, 7)
	levels[1].Files = []lsm.FileInfo{{Num: 5, Deletes: 10, TombstoneAt: fixed.Add(-time.Minute), Size: 100}}
	levels[1].Size = 100
	if req := p.Pick(levels, lsm.Options{L0CompactionTrigger: 4, BaseLevelSize: 1 << 30, LevelMultiplier: 10}); req != nil {
		t.Fatalf("picked %+v before threshold", req)
	}
	// After aging past the threshold the same file is picked.
	p.now = func() time.Time { return fixed.Add(2 * time.Hour) }
	req := p.Pick(levels, lsm.Options{L0CompactionTrigger: 4, BaseLevelSize: 1 << 30, LevelMultiplier: 10})
	if req == nil || req.Level != 1 || len(req.FileNums) != 1 || req.FileNums[0] != 5 {
		t.Fatalf("picked %+v, want file 5 at level 1", req)
	}
}

func TestL0ExpiredPicksWholeLevel(t *testing.T) {
	fixed := time.Now()
	p := &Picker{Threshold: time.Second, now: func() time.Time { return fixed }}
	levels := make([]lsm.LevelInfo, 7)
	levels[0].Files = []lsm.FileInfo{
		{Num: 1, Deletes: 1, TombstoneAt: fixed.Add(-time.Minute)},
		{Num: 2},
		{Num: 3},
	}
	req := p.Pick(levels, lsm.Options{L0CompactionTrigger: 100, BaseLevelSize: 1 << 30, LevelMultiplier: 10})
	if req == nil || req.Level != 0 || len(req.FileNums) != 3 {
		t.Fatalf("picked %+v, want all 3 L0 files", req)
	}
}

func TestFallbackToLeveled(t *testing.T) {
	p := &Picker{Threshold: time.Hour}
	levels := make([]lsm.LevelInfo, 7)
	for i := 0; i < 4; i++ {
		levels[0].Files = append(levels[0].Files, lsm.FileInfo{Num: uint64(i)})
	}
	req := p.Pick(levels, lsm.Options{L0CompactionTrigger: 4, BaseLevelSize: 1 << 30, LevelMultiplier: 10})
	if req == nil || req.Level != 0 || len(req.FileNums) != 4 {
		t.Fatalf("fallback pick = %+v", req)
	}
}

func TestDefaultThresholdApplied(t *testing.T) {
	db, err := Open(Options{LSM: lsm.Options{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	db.Close()
}
