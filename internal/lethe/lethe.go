// Package lethe layers Lethe's delete-aware compaction (Sarkar et al.,
// SIGMOD '20) on top of the LSM engine. Lethe's FADE policy bounds delete
// persistence latency: a tombstone must be compacted away within a
// user-set threshold. The picker therefore prioritizes files whose oldest
// tombstone has exceeded the threshold, falling back to standard leveled
// compaction otherwise.
package lethe

import (
	"time"

	"gadget/internal/lsm"
)

// DefaultDeleteThreshold matches the paper's Lethe configuration (10s).
const DefaultDeleteThreshold = 10 * time.Second

// Options configures a Lethe store.
type Options struct {
	// LSM carries the underlying engine configuration (Dir is required).
	LSM lsm.Options
	// DeleteThreshold is the maximum tombstone age before a file becomes
	// a priority compaction candidate. Defaults to 10s.
	DeleteThreshold time.Duration
	// now is a test hook.
	now func() time.Time
}

// Open opens a Lethe store: an LSM database with the FADE picker.
func Open(opts Options) (*lsm.DB, error) {
	th := opts.DeleteThreshold
	if th <= 0 {
		th = DefaultDeleteThreshold
	}
	now := opts.now
	if now == nil {
		now = time.Now
	}
	lo := opts.LSM
	lo.Picker = &Picker{Threshold: th, now: now}
	return lsm.Open(lo)
}

// Picker implements FADE: files with expired tombstones first, then
// standard leveled compaction.
type Picker struct {
	Threshold time.Duration
	fallback  lsm.LeveledPicker
	now       func() time.Time
}

// Pick implements lsm.CompactionPicker.
func (p *Picker) Pick(levels []lsm.LevelInfo, opts lsm.Options) *lsm.CompactionRequest {
	now := time.Now
	if p.now != nil {
		now = p.now
	}
	cutoff := now().Add(-p.Threshold)
	// Scan shallow-to-deep: expired tombstones high in the tree delay
	// space reclamation the most.
	for lvl := 0; lvl < len(levels)-1; lvl++ {
		var expired []uint64
		for _, f := range levels[lvl].Files {
			if f.Deletes > 0 && !f.TombstoneAt.IsZero() && f.TombstoneAt.Before(cutoff) {
				expired = append(expired, f.Num)
			}
		}
		if len(expired) > 0 {
			if lvl == 0 {
				// L0 files overlap; compact them all to keep the level sound.
				all := make([]uint64, len(levels[0].Files))
				for i, f := range levels[0].Files {
					all[i] = f.Num
				}
				return &lsm.CompactionRequest{Level: 0, FileNums: all}
			}
			return &lsm.CompactionRequest{Level: lvl, FileNums: expired}
		}
	}
	return p.fallback.Pick(levels, opts)
}
