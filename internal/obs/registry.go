// Package obs is the harness-wide observability layer: a stdlib-only
// metrics registry (sharded counters, gauges, striped histograms) with
// Prometheus text exposition, an HTTP endpoint bundling /metrics with
// expvar and pprof, a run-scoped telemetry sampler producing live
// progress lines and a machine-readable time series, and a JSON run
// report writer. It observes engines through kv.Introspector, so one
// code path covers every store the harness can build.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"gadget/internal/stats"
)

// Label is one Prometheus label pair. Values may contain any bytes;
// exposition escapes them.
type Label struct {
	Name  string
	Value string
}

// counterCell is one stripe of a Counter, padded so adjacent cells do
// not share a cache line.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing metric. Increments land on
// per-P stripes (the same sync.Pool discipline as
// stats.StripedHistogram), so concurrent writers do not contend on one
// cache line; Value folds the stripes.
type Counter struct {
	mu    sync.Mutex
	cells []*counterCell
	pool  sync.Pool
}

func newCounter() *Counter {
	c := &Counter{}
	c.pool.New = func() any {
		cell := &counterCell{}
		c.mu.Lock()
		c.cells = append(c.cells, cell)
		c.mu.Unlock()
		return cell
	}
	return c
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n, which must be non-negative (counters are monotone; a
// negative delta is silently dropped rather than corrupting the series).
func (c *Counter) Add(n int64) {
	if n < 0 {
		return
	}
	cell := c.pool.Get().(*counterCell)
	cell.n.Add(n)
	c.pool.Put(cell)
}

// Value returns the current total.
func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for _, cell := range c.cells {
		sum += cell.n.Load()
	}
	return sum
}

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the value by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// GaugeFloat is a Gauge holding a float64 (throughput, ratios).
type GaugeFloat struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *GaugeFloat) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *GaugeFloat) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// HistogramMetric is a registry-managed latency distribution: a striped
// stats histogram exposed as a Prometheus histogram family with a fixed
// bucket ladder.
type HistogramMetric struct {
	h      *stats.StripedHistogram
	bounds []int64
}

// Record adds one observation.
func (h *HistogramMetric) Record(v int64) { h.h.Record(v) }

// Snapshot returns a merged copy of the underlying histogram.
func (h *HistogramMetric) Snapshot() *stats.Histogram { return h.h.Snapshot() }

// DefaultLatencyBounds is the bucket ladder used for latency histograms,
// in nanoseconds: roughly 1-2.5-5 decades from 1us to 10s.
var DefaultLatencyBounds = []int64{
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 2_500_000, 5_000_000,
	10_000_000, 100_000_000, 1_000_000_000, 10_000_000_000,
}

// metricKind discriminates exposition behavior.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFloat
	kindHistogram
)

// metric is one registered series: a name, a label set, and a value
// source of one kind.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	gf     *GaugeFloat
	h      *HistogramMetric
}

// EmitFunc is handed to collector callbacks; each call contributes one
// gauge sample to the exposition in progress.
type EmitFunc func(name string, labels []Label, value float64)

// Registry holds metrics and renders them in Prometheus text format.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu         sync.Mutex
	metrics    []*metric
	byKey      map[string]*metric
	collectors []func(EmitFunc)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// seriesKey identifies a metric by name and exact label set.
func seriesKey(name string, labels []Label) string {
	var b strings.Builder
	b.WriteString(name)
	for _, l := range labels {
		b.WriteByte(0)
		b.WriteString(l.Name)
		b.WriteByte(0)
		b.WriteString(l.Value)
	}
	return b.String()
}

// register adds m unless an identical series exists, in which case the
// existing one is returned (idempotent registration).
func (r *Registry) register(m *metric) *metric {
	key := seriesKey(m.name, m.labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byKey[key]; ok {
		if old.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different kind", m.name))
		}
		return old
	}
	r.byKey[key] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter returns the counter registered under name/labels, creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.register(&metric{name: name, help: help, kind: kindCounter, labels: labels, c: newCounter()}).c
}

// Gauge returns the gauge registered under name/labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.register(&metric{name: name, help: help, kind: kindGauge, labels: labels, g: &Gauge{}}).g
}

// GaugeFloat returns the float gauge registered under name/labels,
// creating it on first use.
func (r *Registry) GaugeFloat(name, help string, labels ...Label) *GaugeFloat {
	return r.register(&metric{name: name, help: help, kind: kindGaugeFloat, labels: labels, gf: &GaugeFloat{}}).gf
}

// Histogram returns the histogram registered under name/labels, creating
// it on first use with the given bucket upper bounds (nil selects
// DefaultLatencyBounds). Bounds must be sorted ascending.
func (r *Registry) Histogram(name, help string, bounds []int64, labels ...Label) *HistogramMetric {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	h := &HistogramMetric{h: stats.NewStripedHistogram(), bounds: bounds}
	return r.register(&metric{name: name, help: help, kind: kindHistogram, labels: labels, h: h}).h
}

// RegisterCollector adds a callback run at every exposition; whatever it
// emits appears as gauge samples. Engine introspection hooks in here:
// a collector walks kv.Introspector output and emits one
// gadget_store_metric{metric="..."} sample per key.
func (r *Registry) RegisterCollector(fn func(EmitFunc)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// escapeLabelValue escapes a label value per the Prometheus text
// format: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// renderLabels renders a label set ({a="b",c="d"}) with extra appended,
// or "" when both are empty.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float without exponent noise for integral
// values.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric and collector sample
// in Prometheus text exposition format, grouped into families (one
// # TYPE header per metric name, all series of that name beneath it).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.metrics...)
	collectors := append([]func(EmitFunc){}, r.collectors...)
	r.mu.Unlock()

	// Group registered series by family, preserving first-seen order.
	var order []string
	families := make(map[string][]*metric)
	for _, m := range metrics {
		if _, ok := families[m.name]; !ok {
			order = append(order, m.name)
		}
		families[m.name] = append(families[m.name], m)
	}

	bw := &errWriter{w: w}
	for _, name := range order {
		fam := families[name]
		if h := fam[0].help; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, strings.ReplaceAll(h, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, typeName(fam[0].kind))
		for _, m := range fam {
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(bw, "%s%s %d\n", name, renderLabels(m.labels), m.c.Value())
			case kindGauge:
				fmt.Fprintf(bw, "%s%s %d\n", name, renderLabels(m.labels), m.g.Value())
			case kindGaugeFloat:
				fmt.Fprintf(bw, "%s%s %s\n", name, renderLabels(m.labels), formatValue(m.gf.Value()))
			case kindHistogram:
				writeHistogram(bw, name, m)
			}
		}
	}

	// Collector samples: gather, group by family, expose as gauges.
	type sample struct {
		labels []Label
		value  float64
	}
	collected := make(map[string][]sample)
	var corder []string
	for _, fn := range collectors {
		fn(func(name string, labels []Label, value float64) {
			if _, ok := collected[name]; !ok {
				corder = append(corder, name)
			}
			collected[name] = append(collected[name], sample{labels, value})
		})
	}
	for _, name := range corder {
		if _, clash := families[name]; clash {
			// A collector must not re-emit a registered family; skip to
			// keep the exposition parseable.
			continue
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, s := range collected[name] {
			fmt.Fprintf(bw, "%s%s %s\n", name, renderLabels(s.labels), formatValue(s.value))
		}
	}
	return bw.err
}

// writeHistogram renders one histogram series: cumulative buckets, the
// +Inf bucket, _sum, _count, and summary-style quantile lines
// (p50/p90/p99/p99.9 as <name>_quantile{quantile="..."}, derived from
// the same stats.SummaryQuantiles ladder the textual result summary
// uses).
func writeHistogram(w io.Writer, name string, m *metric) {
	snap := m.h.Snapshot()
	cum := snap.CumulativeCounts(m.h.bounds)
	for i, bound := range m.h.bounds {
		le := Label{Name: "le", Value: formatValue(float64(bound))}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(m.labels, le), cum[i])
	}
	inf := Label{Name: "le", Value: "+Inf"}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(m.labels, inf), snap.Count())
	fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(m.labels), formatValue(snap.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(m.labels), snap.Count())
	qvals := snap.Quantiles(stats.SummaryQuantiles)
	for i, q := range stats.SummaryQuantiles {
		ql := Label{Name: "quantile", Value: formatValue(q)}
		fmt.Fprintf(w, "%s_quantile%s %d\n", name, renderLabels(m.labels, ql), qvals[i])
	}
}

func typeName(k metricKind) string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// errWriter latches the first write error so exposition loops don't
// need per-line error checks.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// SortedKeys returns m's keys sorted — the stable iteration order used
// by exposition and reports.
func SortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
