package obs

import (
	"fmt"
	"io"
	"sync"
	"time"

	"gadget/internal/kv"
	"gadget/internal/replay"
)

// Sample is one point of a run's telemetry time series. Ops and the
// latency quantiles are cumulative over the run; IntervalOps and
// Throughput cover just the stretch since the previous sample, so the
// IntervalOps of a complete series sum to the final operation count.
type Sample struct {
	OffsetMs    int64   `json:"offset_ms"`
	Ops         uint64  `json:"ops"`
	IntervalOps uint64  `json:"interval_ops"`
	Throughput  float64 `json:"throughput"`
	MeanMicros  float64 `json:"mean_us"`
	P50Micros   float64 `json:"p50_us"`
	P99Micros   float64 `json:"p99_us"`
	P999Micros  float64 `json:"p999_us"`
	Errors      uint64  `json:"errors"`
	// Open-loop fields, present only for open-loop runs: cumulative
	// offered events, the offered events and rate over the last interval
	// (offered vs Throughput is the per-interval offered-vs-achieved
	// comparison), overload count, worst dispatch lag, and the
	// intended-arrival p99.
	Offered           uint64  `json:"offered,omitempty"`
	IntervalOffered   uint64  `json:"interval_offered,omitempty"`
	OfferedRate       float64 `json:"offered_rate,omitempty"`
	Overload          uint64  `json:"overload,omitempty"`
	MaxLagMs          float64 `json:"max_lag_ms,omitempty"`
	IntendedP99Micros float64 `json:"intended_p99_us,omitempty"`
	// Crash-recovery fields, present only for recovery runs: cumulative
	// crashes survived and checkpoints cut so far.
	Recoveries  uint64 `json:"recoveries,omitempty"`
	Checkpoints uint64 `json:"checkpoints,omitempty"`
	// Inflight samples the remote pipeline's in-flight window occupancy
	// at sample time (the raw remote.inflight gauge, NOT a delta — the
	// counter-style engine delta below would render a gauge meaningless).
	// Present only for remote stores.
	Inflight int64 `json:"inflight,omitempty"`
	// Engine is the store's introspection delta since run start (nil for
	// non-introspectable stores).
	Engine map[string]int64 `json:"engine,omitempty"`
}

// SamplerOptions configures a run sampler.
type SamplerOptions struct {
	// Interval between samples; must be positive.
	Interval time.Duration
	// Snapshot returns the run's current merged measurements; typically
	// it folds replay.Collector.Snapshot over every live collector.
	Snapshot func() replay.Result
	// Store, when set, supplies raw engine metrics for progress lines
	// (breaker state).
	Store kv.Store
	// Progress, when set, receives one human-readable line per sample
	// (the harness passes os.Stderr when it is a terminal).
	Progress io.Writer
	// Registry, when set, gets live run gauges (ops, interval
	// throughput, p99) published under gadget_run_*.
	Registry *Registry
}

// Sampler periodically snapshots a live run, accumulating a time series
// and optionally emitting progress lines and registry gauges.
type Sampler struct {
	opts  SamplerOptions
	start time.Time
	stop  chan struct{}
	done  chan struct{}

	mu          sync.Mutex
	series      []Sample
	lastOps     uint64
	lastOffered uint64
	lastTime    time.Time

	gOps  *Gauge
	gThr  *GaugeFloat
	gP99  *GaugeFloat
	gErrs *Gauge
}

// StartSampler validates opts and begins sampling in a background
// goroutine. Call Stop to seal the series.
func StartSampler(opts SamplerOptions) (*Sampler, error) {
	if opts.Interval <= 0 {
		return nil, fmt.Errorf("obs: sampler interval must be positive, got %v", opts.Interval)
	}
	if opts.Snapshot == nil {
		return nil, fmt.Errorf("obs: sampler requires a Snapshot function")
	}
	s := &Sampler{
		opts:  opts,
		start: time.Now(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.lastTime = s.start
	if reg := opts.Registry; reg != nil {
		s.gOps = reg.Gauge("gadget_run_ops", "Operations applied so far in the live run.")
		s.gThr = reg.GaugeFloat("gadget_run_interval_throughput", "Ops/s over the last sample interval.")
		s.gP99 = reg.GaugeFloat("gadget_run_p99_latency_micros", "Cumulative p99 latency in microseconds.")
		s.gErrs = reg.Gauge("gadget_run_errors", "Store errors observed so far in the live run.")
	}
	go s.loop()
	return s, nil
}

func (s *Sampler) loop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.observe(s.opts.Snapshot())
		}
	}
}

// observe folds one snapshot into the series.
func (s *Sampler) observe(res replay.Result) Sample {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	smp := Sample{
		OffsetMs:    now.Sub(s.start).Milliseconds(),
		Ops:         res.Ops,
		IntervalOps: res.Ops - s.lastOps,
		MeanMicros:  res.MeanMicros(),
		P50Micros:   float64(res.Latency.Quantile(0.50)) / 1e3,
		P99Micros:   res.P99Micros(),
		P999Micros:  res.P999Micros(),
		Errors:      res.Errors,
		Engine:      res.Engine,
	}
	dt := now.Sub(s.lastTime).Seconds()
	if dt > 0 {
		smp.Throughput = float64(smp.IntervalOps) / dt
	}
	if res.Offered > 0 {
		smp.Offered = res.Offered
		smp.IntervalOffered = res.Offered - s.lastOffered
		smp.Overload = res.Overload
		smp.MaxLagMs = float64(res.MaxLag.Nanoseconds()) / 1e6
		smp.IntendedP99Micros = res.IntendedP99Micros()
		if dt > 0 {
			smp.OfferedRate = float64(smp.IntervalOffered) / dt
		}
	}
	smp.Recoveries = res.Recoveries
	smp.Checkpoints = res.Checkpoints
	if v, ok := inflightOf(s.opts.Store); ok {
		smp.Inflight = v
	}
	s.lastOps = res.Ops
	s.lastOffered = res.Offered
	s.lastTime = now
	s.series = append(s.series, smp)

	if s.gOps != nil {
		s.gOps.Set(int64(smp.Ops))
		s.gThr.Set(smp.Throughput)
		s.gP99.Set(smp.P99Micros)
		s.gErrs.Set(int64(smp.Errors))
	}
	if s.opts.Progress != nil {
		line := fmt.Sprintf("[%7.1fs] ops=%d (%.0f/s) p99=%.1fus errs=%d",
			float64(smp.OffsetMs)/1e3, smp.Ops, smp.Throughput, smp.P99Micros, smp.Errors)
		if smp.Offered > 0 {
			line += fmt.Sprintf(" offered=%.0f/s ip99=%.1fus lag=%.1fms",
				smp.OfferedRate, smp.IntendedP99Micros, smp.MaxLagMs)
		}
		if smp.Recoveries > 0 || smp.Checkpoints > 0 {
			line += fmt.Sprintf(" recoveries=%d ckpts=%d", smp.Recoveries, smp.Checkpoints)
		}
		if smp.Inflight > 0 {
			line += fmt.Sprintf(" inflight=%d", smp.Inflight)
		}
		if st := breakerState(s.opts.Store); st != "" {
			line += " breaker=" + st
		}
		fmt.Fprintln(s.opts.Progress, line)
	}
	return smp
}

// inflightOf samples the remote pipeline occupancy gauge of an
// introspectable store (false when the store exposes none). Unlike the
// run result's Engine delta, the raw value is the meaningful reading:
// remote.inflight is a gauge, and a start-to-now delta of a gauge is
// noise.
func inflightOf(store kv.Store) (int64, bool) {
	if store == nil {
		return 0, false
	}
	v, ok := kv.MetricsOf(store)["remote.inflight"]
	return v, ok
}

// breakerState renders the resilience breaker state of an
// introspectable store ("" when the store has no breaker).
func breakerState(store kv.Store) string {
	if store == nil {
		return ""
	}
	m := kv.MetricsOf(store)
	v, ok := m["resilient.breaker_state"]
	if !ok {
		return ""
	}
	switch v {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	default:
		return fmt.Sprintf("state%d", v)
	}
}

// Stop halts sampling, folds the run's final Result in as a closing
// sample (so interval op counts sum exactly to final.Ops), and returns
// the completed series.
func (s *Sampler) Stop(final replay.Result) []Sample {
	close(s.stop)
	<-s.done
	s.observe(final)
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.series...)
}

// Series returns a copy of the samples collected so far.
func (s *Sampler) Series() []Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.series...)
}
