package obs

import (
	"encoding/json"
	"fmt"
	"os"

	"gadget/internal/kv"
	"gadget/internal/replay"
	"gadget/internal/tracing"
)

// ReportSchema versions the JSON run report layout.
const ReportSchema = "gadget.report/v1"

// OpSummary condenses one operation type's latency distribution.
type OpSummary struct {
	Count      uint64  `json:"count"`
	MeanMicros float64 `json:"mean_us"`
	P99Micros  float64 `json:"p99_us"`
}

// ResultSummary is the JSON-friendly projection of replay.Result.
type ResultSummary struct {
	Ops             uint64               `json:"ops"`
	Misses          uint64               `json:"misses"`
	Errors          uint64               `json:"errors"`
	TransientErrors uint64               `json:"transient_errors"`
	FatalErrors     uint64               `json:"fatal_errors"`
	Retries         uint64               `json:"retries"`
	Timeouts        uint64               `json:"timeouts"`
	BreakerTrips    uint64               `json:"breaker_trips"`
	DegradedOps     uint64               `json:"degraded_ops"`
	Degraded        bool                 `json:"degraded"`
	DurationMs      float64              `json:"duration_ms"`
	Throughput      float64              `json:"throughput"`
	MeanMicros      float64              `json:"mean_us"`
	P50Micros       float64              `json:"p50_us"`
	P99Micros       float64              `json:"p99_us"`
	P999Micros      float64              `json:"p999_us"`
	MaxMicros       float64              `json:"max_us"`
	PerOp           map[string]OpSummary `json:"per_op,omitempty"`
	// Open-loop fields, present only for open-loop runs: offered vs
	// achieved rate, overload count, worst dispatch lag, and the
	// coordinated-omission-free (intended-arrival) latency percentiles.
	Offered            uint64  `json:"offered,omitempty"`
	Overload           uint64  `json:"overload,omitempty"`
	OfferedRate        float64 `json:"offered_rate,omitempty"`
	AchievedRate       float64 `json:"achieved_rate,omitempty"`
	MaxLagMs           float64 `json:"max_lag_ms,omitempty"`
	IntendedP50Micros  float64 `json:"intended_p50_us,omitempty"`
	IntendedP99Micros  float64 `json:"intended_p99_us,omitempty"`
	IntendedP999Micros float64 `json:"intended_p999_us,omitempty"`
	// Crash-recovery fields, present only for recovery runs: scripted
	// crashes survived, total downtime (RTO), ops replayed from the
	// checkpoint watermark (RPO proxy), and checkpoint accounting.
	Recoveries           uint64  `json:"recoveries,omitempty"`
	RTOMs                float64 `json:"rto_ms,omitempty"`
	ReplayedOps          uint64  `json:"replayed_ops,omitempty"`
	Checkpoints          uint64  `json:"checkpoints,omitempty"`
	CheckpointCostMs     float64 `json:"checkpoint_cost_ms,omitempty"`
	CheckpointBytesTotal uint64  `json:"checkpoint_bytes,omitempty"`
}

// Summarize projects a replay.Result into its report form.
func Summarize(res replay.Result) ResultSummary {
	s := ResultSummary{
		Ops:             res.Ops,
		Misses:          res.Misses,
		Errors:          res.Errors,
		TransientErrors: res.TransientErrors,
		FatalErrors:     res.FatalErrors,
		Retries:         res.Retries,
		Timeouts:        res.Timeouts,
		BreakerTrips:    res.BreakerTrips,
		DegradedOps:     res.DegradedOps,
		Degraded:        res.Degraded,
		DurationMs:      float64(res.Duration.Nanoseconds()) / 1e6,
		Throughput:      res.Throughput,
	}
	if res.Latency != nil {
		s.MeanMicros = res.MeanMicros()
		s.P50Micros = float64(res.Latency.Quantile(0.50)) / 1e3
		s.P99Micros = res.P99Micros()
		s.P999Micros = res.P999Micros()
		s.MaxMicros = float64(res.Latency.Max()) / 1e3
	}
	if res.Offered > 0 {
		s.Offered = res.Offered
		s.Overload = res.Overload
		s.OfferedRate = res.OfferedRate
		s.AchievedRate = res.AchievedRate
		s.MaxLagMs = float64(res.MaxLag.Nanoseconds()) / 1e6
	}
	if res.IntendedLatency != nil {
		s.IntendedP50Micros = float64(res.IntendedLatency.Quantile(0.50)) / 1e3
		s.IntendedP99Micros = res.IntendedP99Micros()
		s.IntendedP999Micros = float64(res.IntendedLatency.Quantile(0.999)) / 1e3
	}
	if res.Recoveries > 0 || res.Checkpoints > 0 {
		s.Recoveries = res.Recoveries
		s.RTOMs = float64(res.RecoveryTime.Nanoseconds()) / 1e6
		s.ReplayedOps = res.ReplayedOps
		s.Checkpoints = res.Checkpoints
		s.CheckpointCostMs = float64(res.CheckpointCost.Nanoseconds()) / 1e6
		s.CheckpointBytesTotal = res.CheckpointBytes
	}
	for i, h := range res.PerOp {
		if h == nil || h.Count() == 0 {
			continue
		}
		if s.PerOp == nil {
			s.PerOp = make(map[string]OpSummary)
		}
		s.PerOp[kv.Op(i).String()] = OpSummary{
			Count:      h.Count(),
			MeanMicros: h.Mean() / 1e3,
			P99Micros:  float64(h.Quantile(0.99)) / 1e3,
		}
	}
	return s
}

// Report is the machine-readable record of one harness run: the
// configuration that produced it, the final measurements, the engine's
// introspection snapshots (absolute start/end plus the delta), and the
// sampled telemetry time series.
type Report struct {
	Schema string `json:"schema"`
	// Store is the engine name the run was built with.
	Store string `json:"store,omitempty"`
	// Config echoes the run's configuration (shape depends on the
	// caller; the harness passes its parsed config struct).
	Config      any              `json:"config,omitempty"`
	Result      ResultSummary    `json:"result"`
	EngineStart map[string]int64 `json:"engine_start,omitempty"`
	EngineEnd   map[string]int64 `json:"engine_end,omitempty"`
	EngineDelta map[string]int64 `json:"engine_delta,omitempty"`
	Series      []Sample         `json:"series,omitempty"`
	// SlowOps is the tracing flight-recorder section — the K slowest
	// complete traces, a uniform sample, and per-stage latency
	// summaries — present only when the run traced (obs.trace).
	SlowOps *tracing.SlowOps `json:"slow_ops,omitempty"`
}

// WriteReport marshals rep as indented JSON to path.
func WriteReport(path string, rep *Report) error {
	if rep.Schema == "" {
		rep.Schema = ReportSchema
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshal report: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write report: %w", err)
	}
	return nil
}

// ReadReport loads a report written by WriteReport.
func ReadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("obs: parse report %s: %w", path, err)
	}
	return &rep, nil
}

// RegisterTracerCollector exposes a tracer's always-on per-stage
// aggregation on reg, refreshed at every exposition: trace lifecycle
// counters plus one count/mean/p99 gauge triple per stage that has
// recorded data, keyed "stage.<name>" (stage.queue, stage.wire,
// stage.server, stage.engine, ...). A nil tracer registers nothing.
func RegisterTracerCollector(reg *Registry, t *tracing.Tracer) {
	if t == nil {
		return
	}
	reg.RegisterCollector(func(emit EmitFunc) {
		started, finished := t.Stats()
		emit("gadget_trace_started", nil, float64(started))
		emit("gadget_trace_finished", nil, float64(finished))
		for s := tracing.Stage(0); int(s) < tracing.NumStages; s++ {
			h := t.StageHist(s)
			if h.Count() == 0 {
				continue
			}
			labels := []Label{{Name: "stage", Value: "stage." + s.String()}}
			emit("gadget_trace_stage_count", labels, float64(h.Count()))
			emit("gadget_trace_stage_mean_ns", labels, h.Mean())
			emit("gadget_trace_stage_p99_ns", labels, float64(h.Quantile(0.99)))
		}
	})
}

// RegisterStoreCollector exposes an introspectable value's metrics on
// reg as one gadget_store_metric{metric="<key>"} family, refreshed at
// every exposition. v is typically a kv.Store, but anything implementing
// kv.Introspector works (e.g. a remote.Server, which merges its wire
// counters with the backing engine's). Non-introspectable values
// register nothing.
func RegisterStoreCollector(reg *Registry, v any) {
	intro, ok := v.(kv.Introspector)
	if !ok {
		return
	}
	reg.RegisterCollector(func(emit EmitFunc) {
		m := intro.Metrics()
		for _, k := range SortedKeys(m) {
			emit("gadget_store_metric", []Label{{Name: "metric", Value: k}}, float64(m[k]))
		}
	})
}
