package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// MetricsServer is the harness's debug/metrics HTTP listener. It
// bundles three surfaces on one mux:
//
//	/metrics      Prometheus text exposition of a Registry
//	/debug/vars   expvar JSON (Go runtime memstats, cmdline)
//	/debug/pprof  the standard pprof profile handlers
type MetricsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the metrics listener on addr (e.g. "127.0.0.1:0") and
// returns once it is accepting. Close shuts it down.
func Serve(addr string, reg *Registry) (*MetricsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &MetricsServer{
		ln:  ln,
		srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
	}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the listener address (useful with port 0).
func (s *MetricsServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and closes live connections.
func (s *MetricsServer) Close() error { return s.srv.Close() }
