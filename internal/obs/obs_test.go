package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
	"gadget/internal/tracing"
)

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "", Label{Name: "path", Value: `C:\dir "x"` + "\nnext"}).Set(1)
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `g{path="C:\\dir \"x\"\nnext"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("exposition missing escaped label:\n%s\nwant line %q", b.String(), want)
	}
	if strings.Count(b.String(), "\n") != strings.Count(b.String(), "\n") || strings.Contains(strings.TrimSuffix(b.String(), "\n"), "next\n") {
		t.Fatalf("raw newline leaked into exposition:\n%q", b.String())
	}
}

func TestCounterMonotonicUnderConcurrency(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "total ops")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A reader asserts the counter never decreases while writers hammer it.
	var readErr error
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		var prev int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := c.Value()
			if v < prev {
				readErr = fmt.Errorf("counter went backwards: %d -> %d", prev, v)
				return
			}
			prev = v
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	if readErr != nil {
		t.Fatal(readErr)
	}
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	c.Add(-5) // negative deltas must be dropped, not applied
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter after negative Add = %d, want unchanged %d", got, workers*perWorker)
	}
}

func TestHistogramExpositionCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "latency", []int64{10, 100, 1000})
	for _, v := range []int64{1, 5, 10, 50, 99, 100, 500, 5000} {
		h.Record(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE lat histogram") {
		t.Fatalf("missing histogram TYPE header:\n%s", out)
	}
	// Parse the bucket series and check cumulativity and the count.
	var counts []uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "lat_bucket") {
			continue
		}
		fields := strings.Fields(line)
		n, err := strconv.ParseUint(fields[len(fields)-1], 10, 64)
		if err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		counts = append(counts, n)
	}
	if len(counts) != 4 { // 3 bounds + +Inf
		t.Fatalf("got %d bucket lines, want 4:\n%s", len(counts), out)
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Fatalf("buckets not cumulative: %v", counts)
		}
	}
	if counts[len(counts)-1] != 8 {
		t.Fatalf("+Inf bucket = %d, want 8", counts[len(counts)-1])
	}
	if !strings.Contains(out, "lat_count 8") {
		t.Fatalf("missing lat_count:\n%s", out)
	}
	if !strings.Contains(out, `lat_bucket{le="+Inf"} 8`) {
		t.Fatalf("missing +Inf bucket:\n%s", out)
	}
	// Histogram semantics: values equal to a bound land in its bucket.
	if counts[0] != 3 { // 1, 5, 10 <= 10
		t.Fatalf("le=10 bucket = %d, want 3", counts[0])
	}
}

func TestRegistryIdempotentAndGrouped(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("reqs", "", Label{Name: "op", Value: "get"})
	b := reg.Counter("reqs", "", Label{Name: "op", Value: "put"})
	again := reg.Counter("reqs", "", Label{Name: "op", Value: "get"})
	if a != again {
		t.Fatal("re-registration returned a different counter")
	}
	a.Add(3)
	b.Add(4)
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if strings.Count(s, "# TYPE reqs counter") != 1 {
		t.Fatalf("family must have exactly one TYPE header:\n%s", s)
	}
	if !strings.Contains(s, `reqs{op="get"} 3`) || !strings.Contains(s, `reqs{op="put"} 4`) {
		t.Fatalf("missing series:\n%s", s)
	}
}

func TestRegisterStoreCollector(t *testing.T) {
	store := memstore.New()
	defer store.Close()
	if err := store.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	RegisterStoreCollector(reg, store)
	var out strings.Builder
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `gadget_store_metric{metric="memstore.puts"} 1`) {
		t.Fatalf("store collector missing puts sample:\n%s", out.String())
	}
}

// runSnapshot drives a collector through n ops and returns its snapshot
// function plus a finisher.
func runStore(t *testing.T, n int) (*replay.Collector, kv.Store) {
	t.Helper()
	store := memstore.New()
	t.Cleanup(func() { store.Close() })
	c, err := replay.NewCollector(store, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		a := kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: uint64(i)}, Size: 8}
		if err := c.Do(a); err != nil {
			t.Fatal(err)
		}
	}
	return c, store
}

func TestSamplerSeriesSumsToFinal(t *testing.T) {
	c, store := runStore(t, 0)
	var progress strings.Builder
	s, err := StartSampler(SamplerOptions{
		Interval: 5 * time.Millisecond,
		Snapshot: c.Snapshot,
		Store:    store,
		Progress: &progress,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		a := kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: uint64(i)}, Size: 8}
		if err := c.Do(a); err != nil {
			t.Fatal(err)
		}
		if i%500 == 0 {
			time.Sleep(6 * time.Millisecond) // let a few ticks land mid-run
		}
	}
	final := c.Finish()
	series := s.Stop(final)
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	var sum uint64
	prevOps := uint64(0)
	prevOff := int64(-1)
	for _, smp := range series {
		sum += smp.IntervalOps
		if smp.Ops < prevOps {
			t.Fatalf("cumulative ops went backwards: %+v", series)
		}
		if smp.OffsetMs < prevOff {
			t.Fatalf("offsets not monotone: %+v", series)
		}
		prevOps, prevOff = smp.Ops, smp.OffsetMs
	}
	if sum != final.Ops {
		t.Fatalf("sum of interval ops = %d, want final ops %d", sum, final.Ops)
	}
	last := series[len(series)-1]
	if last.Ops != final.Ops {
		t.Fatalf("closing sample ops = %d, want %d", last.Ops, final.Ops)
	}
	if last.Engine["memstore.puts"] != int64(final.Ops) {
		t.Fatalf("closing sample engine delta = %v, want memstore.puts=%d", last.Engine, final.Ops)
	}
	if progress.Len() == 0 {
		t.Fatal("no progress lines written")
	}
	if !strings.Contains(progress.String(), "ops=") {
		t.Fatalf("unexpected progress format: %q", progress.String())
	}
}

func TestSamplerRejectsBadOptions(t *testing.T) {
	if _, err := StartSampler(SamplerOptions{Interval: 0, Snapshot: func() replay.Result { return replay.Result{} }}); err == nil {
		t.Fatal("zero interval accepted")
	}
	if _, err := StartSampler(SamplerOptions{Interval: time.Second}); err == nil {
		t.Fatal("nil snapshot accepted")
	}
}

func TestReportRoundTrip(t *testing.T) {
	c, _ := runStore(t, 100)
	final := c.Finish()
	rep := &Report{
		Store:       "memstore",
		Config:      map[string]any{"store": map[string]any{"engine": "memstore"}},
		Result:      Summarize(final),
		EngineDelta: final.Engine,
		Series: []Sample{
			{OffsetMs: 10, Ops: 60, IntervalOps: 60, Throughput: 6000},
			{OffsetMs: 20, Ops: 100, IntervalOps: 40, Throughput: 4000},
		},
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := WriteReport(path, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != ReportSchema {
		t.Fatalf("schema = %q, want %q", got.Schema, ReportSchema)
	}
	if !reflect.DeepEqual(got.Result, rep.Result) {
		t.Fatalf("result round-trip mismatch:\n got %+v\nwant %+v", got.Result, rep.Result)
	}
	if !reflect.DeepEqual(got.Series, rep.Series) {
		t.Fatalf("series round-trip mismatch:\n got %+v\nwant %+v", got.Series, rep.Series)
	}
	if !reflect.DeepEqual(got.EngineDelta, rep.EngineDelta) {
		t.Fatalf("engine delta round-trip mismatch:\n got %+v\nwant %+v", got.EngineDelta, rep.EngineDelta)
	}
	var sum uint64
	for _, s := range got.Series {
		sum += s.IntervalOps
	}
	if sum != got.Result.Ops {
		t.Fatalf("series interval ops sum to %d, want %d", sum, got.Result.Ops)
	}
}

func TestSummarizeRecoveryFields(t *testing.T) {
	res := replay.Result{
		Ops:             1100,
		Recoveries:      2,
		RecoveryTime:    30 * time.Millisecond,
		ReplayedOps:     100,
		Checkpoints:     5,
		CheckpointCost:  8 * time.Millisecond,
		CheckpointBytes: 4096,
	}
	s := Summarize(res)
	if s.Recoveries != 2 || s.ReplayedOps != 100 || s.Checkpoints != 5 || s.CheckpointBytesTotal != 4096 {
		t.Fatalf("recovery counters not summarized: %+v", s)
	}
	if s.RTOMs != 30 || s.CheckpointCostMs != 8 {
		t.Fatalf("recovery durations not summarized: rto=%v cost=%v", s.RTOMs, s.CheckpointCostMs)
	}
	// Clean runs must omit the section entirely (omitempty keeps the
	// report schema stable for non-recovery runs).
	clean := Summarize(replay.Result{Ops: 10})
	if clean.Recoveries != 0 || clean.RTOMs != 0 || clean.Checkpoints != 0 {
		t.Fatalf("clean run grew recovery fields: %+v", clean)
	}
	data, err := json.Marshal(clean)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "recoveries") || strings.Contains(string(data), "rto_ms") {
		t.Fatalf("clean summary JSON should omit recovery keys: %s", data)
	}
}

func TestServeHTTP(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("hits", "hit counter").Add(7)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		rsp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer rsp.Body.Close()
		body, _ := io.ReadAll(rsp.Body)
		return rsp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "# TYPE hits counter") || !strings.Contains(body, "hits 7") {
		t.Fatalf("/metrics = %d:\n%s", code, body)
	}
	code, body = get("/debug/vars")
	if code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d:\n%.200s", code, body)
	}
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ = %d:\n%.200s", code, body)
	}
}

func TestHistogramQuantileSummaryLines(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat2", "latency", []int64{10, 100, 1000})
	for v := int64(1); v <= 100; v++ {
		h.Record(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, q := range []string{"0.5", "0.9", "0.99", "0.999"} {
		if !strings.Contains(out, `lat2_quantile{quantile="`+q+`"}`) {
			t.Fatalf("missing quantile %s summary line:\n%s", q, out)
		}
	}
	// The p50 of 1..100 must land near 50 (log-bucket upper bound).
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, `lat2_quantile{quantile="0.5"}`) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseInt(fields[len(fields)-1], 10, 64)
		if err != nil || v < 50 || v > 55 {
			t.Fatalf("p50 of 1..100 = %d (err %v), want ~50", v, err)
		}
	}
}

// inflightStore fakes a remote-backed store for the sampler's gauge
// sampling: MetricsOf must surface remote.inflight.
type inflightStore struct {
	kv.Store
	inflight int64
}

func (s *inflightStore) Metrics() map[string]int64 {
	return map[string]int64{"remote.inflight": s.inflight}
}

func TestSamplerRecordsInflightGauge(t *testing.T) {
	store := &inflightStore{Store: memstore.New(), inflight: 7}
	defer store.Close()
	c, err := replay.NewCollector(store, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := StartSampler(SamplerOptions{
		Interval: 5 * time.Millisecond,
		Snapshot: c.Snapshot,
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a := kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: uint64(i)}, Size: 8}
		if err := c.Do(a); err != nil {
			t.Fatal(err)
		}
	}
	series := s.Stop(c.Finish())
	if len(series) == 0 {
		t.Fatal("empty series")
	}
	// The inflight gauge is sampled, not delta'd: every sample carries the
	// instantaneous value.
	if got := series[len(series)-1].Inflight; got != 7 {
		t.Fatalf("closing sample inflight = %d, want 7", got)
	}
}

func TestRegisterTracerCollector(t *testing.T) {
	tr := tracing.New(tracing.Options{SampleN: 1, SlowK: 4})
	tc := tr.Start(0)
	tc.Add(tracing.StageServer, 1000)
	tr.Finish(tc)

	reg := NewRegistry()
	RegisterTracerCollector(reg, tr)
	RegisterTracerCollector(reg, nil) // nil tracer registers nothing
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "gadget_trace_started 1") || !strings.Contains(out, "gadget_trace_finished 1") {
		t.Fatalf("missing trace start/finish counters:\n%s", out)
	}
	if !strings.Contains(out, `gadget_trace_stage_count{stage="stage.server"} 1`) {
		t.Fatalf("missing per-stage sample:\n%s", out)
	}
}
