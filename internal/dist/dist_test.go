package dist

import (
	"math"
	"math/rand"
	"testing"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(42)) }

func TestNewAllKinds(t *testing.T) {
	for _, k := range Kinds() {
		s, err := New(k, 100, rng())
		if err != nil {
			t.Fatalf("New(%q): %v", k, err)
		}
		if s.N() != 100 {
			t.Errorf("%q: N = %d", k, s.N())
		}
		for i := 0; i < 1000; i++ {
			if v := s.Next(); v >= 100 {
				t.Fatalf("%q: out-of-range sample %d", k, v)
			}
		}
	}
	if _, err := New("nope", 10, rng()); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestZeroDomain(t *testing.T) {
	for _, k := range Kinds() {
		s, err := New(k, 0, rng())
		if err != nil {
			t.Fatal(err)
		}
		if v := s.Next(); v != 0 {
			t.Errorf("%q over empty domain: %d", k, v)
		}
	}
}

func TestUniformCoverage(t *testing.T) {
	s := NewUniform(10, rng())
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		counts[s.Next()]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("uniform bucket %d count %d far from 1000", i, c)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	s := NewZipfian(1000, DefaultZipfTheta, rng())
	counts := make(map[uint64]int)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	// Item 0 should dominate: roughly 1/zeta share.
	if frac := float64(counts[0]) / n; frac < 0.05 {
		t.Errorf("zipf item 0 frequency %v too low", frac)
	}
	if counts[0] <= counts[500] {
		t.Error("zipf should heavily favor low indexes")
	}
}

func TestZipfianMonotoneFrequency(t *testing.T) {
	s := NewZipfian(100, 0.99, rng())
	counts := make([]int, 100)
	for i := 0; i < 200000; i++ {
		counts[s.Next()]++
	}
	// Frequency should broadly decrease; compare head vs tail aggregates.
	head := counts[0] + counts[1] + counts[2]
	tail := counts[97] + counts[98] + counts[99]
	if head <= tail {
		t.Errorf("zipf head %d <= tail %d", head, tail)
	}
}

func TestScrambledZipfianSpreads(t *testing.T) {
	s := NewScrambledZipfian(1000, DefaultZipfTheta, rng())
	counts := make(map[uint64]int)
	for i := 0; i < 50000; i++ {
		counts[s.Next()]++
	}
	// The most popular item should not be 0 with high probability
	// (scrambling relocates it), and skew should persist.
	var maxK uint64
	var maxC int
	for k, c := range counts {
		if c > maxC {
			maxK, maxC = k, c
		}
	}
	if maxC < 1000 {
		t.Errorf("scrambled zipf lost skew: max count %d", maxC)
	}
	_ = maxK
}

func TestHotspot(t *testing.T) {
	s := NewHotspot(1000, 0.2, 0.8, rng())
	hot := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if s.Next() < 200 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.75 || frac > 0.85 {
		t.Errorf("hot fraction = %v, want ~0.8", frac)
	}
}

func TestHotspotAllHot(t *testing.T) {
	s := NewHotspot(10, 1.0, 0.5, rng())
	for i := 0; i < 100; i++ {
		if s.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}

func TestSequentialCycles(t *testing.T) {
	s := NewSequential(3)
	want := []uint64{0, 1, 2, 0, 1, 2, 0}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("step %d: got %d want %d", i, got, w)
		}
	}
}

func TestExponentialShape(t *testing.T) {
	s := NewExponential(1000, 0.95, 0.10, rng())
	inHead := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if s.Next() < 100 {
			inHead++
		}
	}
	frac := float64(inHead) / n
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("exponential head mass = %v, want ~0.95", frac)
	}
}

func TestLatestFavorsRecent(t *testing.T) {
	s := NewLatest(1000, rng())
	high := 0
	const n = 50000
	for i := 0; i < n; i++ {
		if s.Next() >= 900 {
			high++
		}
	}
	if frac := float64(high) / n; frac < 0.5 {
		t.Errorf("latest should favor recent keys, got top-decile frac %v", frac)
	}
}

func TestLatestAdvance(t *testing.T) {
	s := NewLatest(10, rng())
	s.max = 0
	if v := s.Next(); v != 0 {
		t.Fatalf("frontier 0 must sample 0, got %d", v)
	}
	for i := 0; i < 20; i++ {
		s.Advance()
	}
	if s.max != 9 {
		t.Fatalf("Advance should clamp at n-1, got %d", s.max)
	}
}

func TestFNV64Deterministic(t *testing.T) {
	if FNV64(12345) != FNV64(12345) {
		t.Fatal("FNV must be deterministic")
	}
	if FNV64(1) == FNV64(2) {
		t.Fatal("FNV collision on trivial inputs")
	}
}

func TestECDF(t *testing.T) {
	// 3 values: 10 with p=.5, 20 with p=.3, 30 with p=.2
	s, err := NewECDF([]uint64{10, 20, 30}, []float64{0.5, 0.8, 1.0}, rng())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[uint64]int{}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[s.Next()]++
	}
	for v, want := range map[uint64]float64{10: 0.5, 20: 0.3, 30: 0.2} {
		got := float64(counts[v]) / n
		if math.Abs(got-want) > 0.03 {
			t.Errorf("ECDF value %d frequency %v, want %v", v, got, want)
		}
	}
	if s.N() != 31 {
		t.Errorf("N = %d", s.N())
	}
}

func TestECDFValidation(t *testing.T) {
	r := rng()
	if _, err := NewECDF(nil, nil, r); err == nil {
		t.Error("empty ECDF should error")
	}
	if _, err := NewECDF([]uint64{1}, []float64{0.5, 1}, r); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := NewECDF([]uint64{1, 2}, []float64{0.8, 0.5}, r); err == nil {
		t.Error("non-monotone cum should error")
	}
	if _, err := NewECDF([]uint64{1, 2}, []float64{0.2, 0.5}, r); err == nil {
		t.Error("cum not ending at 1 should error")
	}
}

func TestPoissonArrivals(t *testing.T) {
	p := NewPoissonArrivals(100, rng()) // 100 ev/s => mean gap 10ms
	var sum int64
	const n = 20000
	for i := 0; i < n; i++ {
		g := p.NextGap()
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := float64(sum) / n
	if mean < 8 || mean > 12 {
		t.Errorf("mean gap = %v ms, want ~10", mean)
	}
	if NewPoissonArrivals(0, rng()).meanGapMs != 1000 {
		t.Error("zero rate should default to 1/s")
	}
}

func TestConstantArrivals(t *testing.T) {
	c := NewConstantArrivals(200)
	if c.NextGap() != 5 {
		t.Fatalf("gap = %d", c.NextGap())
	}
	if NewConstantArrivals(1e9).NextGap() != 1 {
		t.Fatal("gap should clamp at 1ms")
	}
	if NewConstantArrivals(-1).NextGap() != 1000 {
		t.Fatal("negative rate should default")
	}
}

func BenchmarkZipfian(b *testing.B) {
	s := NewZipfian(1_000_000, DefaultZipfTheta, rng())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}

func BenchmarkScrambledZipfian(b *testing.B) {
	s := NewScrambledZipfian(1_000_000, DefaultZipfTheta, rng())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Next()
	}
}
