package dist

import (
	"fmt"
	"math/rand"
)

// Default drifting-hotspot parameters, used when the kind is selected by
// name without explicit tuning: YCSB's 20%-of-keys/80%-of-accesses
// hotspot, re-centered by a seeded random jump every 10k samples.
const (
	DefaultDriftHotFrac = 0.2
	DefaultDriftHotProb = 0.8
	DefaultDriftEvery   = 10_000
)

// DriftingHotspotSource is a hotspot distribution whose hot set
// re-centers on a fixed sample schedule — the time-varying skew that
// static key distributions miss: a store tuned to one hot region
// (cached blocks, memtable residency) is forced to re-warm when the
// hotspot moves mid-run. Every `every` samples the hot window of hotN
// keys advances by `step` positions (wrapping), or jumps to a seeded
// random position when step is 0. Phase boundaries are exact: sample
// indexes [k*every, (k+1)*every) are drawn from the k-th window.
type DriftingHotspotSource struct {
	n       uint64
	hotN    uint64
	hotProb float64
	every   uint64
	step    uint64
	count   uint64
	start   uint64
	rng     *rand.Rand
}

// NewDriftingHotspot returns a drifting hotspot Source over [0, n):
// hotFrac of the keys receive hotProb of the accesses, and the hot
// window re-centers every `every` samples (by step positions, or a
// seeded random jump when step is 0).
func NewDriftingHotspot(n uint64, hotFrac, hotProb float64, every, step uint64, rng *rand.Rand) (*DriftingHotspotSource, error) {
	if n == 0 {
		n = 1
	}
	if hotFrac <= 0 || hotFrac > 1 {
		return nil, fmt.Errorf("dist: drifting hotspot hot fraction %v outside (0,1]", hotFrac)
	}
	if hotProb < 0 || hotProb > 1 {
		return nil, fmt.Errorf("dist: drifting hotspot hot probability %v outside [0,1]", hotProb)
	}
	if every == 0 {
		return nil, fmt.Errorf("dist: drifting hotspot drift interval must be positive")
	}
	hotN := uint64(float64(n) * hotFrac)
	if hotN == 0 {
		hotN = 1
	}
	if hotN > n {
		hotN = n
	}
	return &DriftingHotspotSource{n: n, hotN: hotN, hotProb: hotProb, every: every, step: step, rng: rng}, nil
}

// HotStart returns the current hot window's first key index (the window
// is [HotStart, HotStart+HotN) modulo N).
func (d *DriftingHotspotSource) HotStart() uint64 { return d.start }

// HotN returns the hot window size in keys.
func (d *DriftingHotspotSource) HotN() uint64 { return d.hotN }

// Phase returns how many drifts have occurred so far (the window the
// most recent sample was drawn from; drifts apply at the start of the
// first sample of each new phase).
func (d *DriftingHotspotSource) Phase() uint64 {
	if d.count == 0 {
		return 0
	}
	return (d.count - 1) / d.every
}

// Next implements Source.
func (d *DriftingHotspotSource) Next() uint64 {
	if d.count > 0 && d.count%d.every == 0 {
		d.drift()
	}
	d.count++
	if d.hotN == d.n || d.rng.Float64() < d.hotProb {
		return (d.start + uint64(d.rng.Int63n(int64(d.hotN)))) % d.n
	}
	// Cold: uniform over the n-hotN keys outside the window, addressed
	// relative to the window's end so the split stays exact under wrap.
	off := uint64(d.rng.Int63n(int64(d.n - d.hotN)))
	return (d.start + d.hotN + off) % d.n
}

// N implements Source.
func (d *DriftingHotspotSource) N() uint64 { return d.n }

// drift re-centers the hot window. The jump draws from the same seeded
// rng as sampling, so a fixed seed replays the identical drift path.
func (d *DriftingHotspotSource) drift() {
	if d.step > 0 {
		d.start = (d.start + d.step) % d.n
		return
	}
	d.start = uint64(d.rng.Int63n(int64(d.n)))
}
