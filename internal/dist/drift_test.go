package dist

import (
	"math/rand"
	"testing"
)

func TestDriftingHotspotDeterministic(t *testing.T) {
	mk := func(seed int64) *DriftingHotspotSource {
		d, err := NewDriftingHotspot(1000, 0.2, 0.8, 500, 0, rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	a, b, other := mk(42), mk(42), mk(43)
	same, diff := true, false
	for i := 0; i < 5000; i++ {
		va := a.Next()
		if va >= 1000 {
			t.Fatalf("out-of-range sample %d", va)
		}
		if va != b.Next() {
			same = false
		}
		if va != other.Next() {
			diff = true
		}
	}
	if !same {
		t.Fatal("fixed seed must replay the identical sequence (samples and drift path)")
	}
	if !diff {
		t.Fatal("different seeds should diverge")
	}
	if a.HotStart() != b.HotStart() {
		t.Fatal("drift path must be seed-deterministic")
	}
}

func TestDriftBoundariesExact(t *testing.T) {
	// With a step drift, the window start must be k*step during samples
	// [k*every, (k+1)*every) — boundaries land exactly where configured.
	const every, step, n = 1000, 100, 10_000
	d, err := NewDriftingHotspot(n, 0.1, 0.9, every, step, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5*every; i++ {
		d.Next()
		k := uint64(i) / every // phase of sample i (drift happens before sampling)
		if want := (k * step) % n; d.HotStart() != want {
			t.Fatalf("after sample %d: hot start %d, want %d", i, d.HotStart(), want)
		}
		if d.Phase() != k {
			t.Fatalf("after sample %d: phase %d, want %d", i, d.Phase(), k)
		}
	}
}

func TestDriftingHotspotSkewPerPhase(t *testing.T) {
	// In every phase, ~hotProb of samples must land inside the current
	// (moving) hot window.
	perPhase := 20_000
	if testing.Short() {
		perPhase = 5000
	}
	const n, hotFrac, hotProb = 10_000, 0.1, 0.9
	d, err := NewDriftingHotspot(n, hotFrac, hotProb, uint64(perPhase), 3333, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for phase := 0; phase < 3; phase++ {
		hot := 0
		for i := 0; i < perPhase; i++ {
			v := d.Next()
			start, hotN := d.HotStart(), d.HotN()
			if (v-start)%n < hotN { // window membership under wraparound
				hot++
			}
		}
		frac := float64(hot) / float64(perPhase)
		if frac < hotProb-0.05 || frac > hotProb+0.05 {
			t.Errorf("phase %d hot fraction = %v, want ~%v", phase, frac, hotProb)
		}
	}
}

func TestDriftingHotspotRandomJump(t *testing.T) {
	d, err := NewDriftingHotspot(1_000_000, 0.01, 0.99, 100, 0, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	starts := map[uint64]bool{d.HotStart(): true}
	for i := 0; i < 1000; i++ {
		d.Next()
		starts[d.HotStart()] = true
	}
	// 10 drifts over a million-key domain: random jumps should visit
	// many distinct positions.
	if len(starts) < 5 {
		t.Fatalf("random jumps visited only %d positions", len(starts))
	}
}

func TestDriftingHotspotValidation(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	if _, err := NewDriftingHotspot(100, 0, 0.8, 10, 0, r); err == nil {
		t.Error("zero hot fraction should be rejected")
	}
	if _, err := NewDriftingHotspot(100, 1.5, 0.8, 10, 0, r); err == nil {
		t.Error("hot fraction > 1 should be rejected")
	}
	if _, err := NewDriftingHotspot(100, 0.2, 1.5, 10, 0, r); err == nil {
		t.Error("hot probability > 1 should be rejected")
	}
	if _, err := NewDriftingHotspot(100, 0.2, 0.8, 0, 0, r); err == nil {
		t.Error("zero drift interval should be rejected")
	}
	// Whole domain hot must not panic on the cold branch.
	d, err := NewDriftingHotspot(10, 1.0, 0.5, 10, 1, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d.Next() >= 10 {
			t.Fatal("out of range")
		}
	}
}
