// Package dist implements the random distributions used by the Gadget
// event generator and the YCSB-compatible workload generator: uniform,
// zipfian (Gray et al.'s rejection-inversion method, as in YCSB),
// scrambled zipfian, hotspot, sequential, exponential, latest, and
// user-supplied empirical CDFs. All generators are deterministic given a
// seed and are NOT safe for concurrent use; each worker owns its own.
package dist

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Source produces indexes in [0, N) under some distribution. It is the
// key-choosing abstraction shared by the event generator and YCSB.
type Source interface {
	// Next returns the next sampled index.
	Next() uint64
	// N returns the size of the domain.
	N() uint64
}

// Kind names a built-in distribution for configuration files.
type Kind string

const (
	Uniform     Kind = "uniform"
	Zipfian     Kind = "zipfian"
	Scrambled   Kind = "scrambled_zipfian"
	Hotspot     Kind = "hotspot"
	Sequential  Kind = "sequential"
	Exponential Kind = "exponential"
	Latest      Kind = "latest"
	// Drifting is a hotspot whose hot set re-centers on a fixed sample
	// schedule (time-varying skew; see DriftingHotspotSource).
	Drifting Kind = "drifting_hotspot"
)

// Kinds lists every built-in distribution kind.
func Kinds() []Kind {
	return []Kind{Uniform, Zipfian, Scrambled, Hotspot, Sequential, Exponential, Latest, Drifting}
}

// New constructs a Source of the given kind over [0, n) using default
// parameters (zipfian theta 0.99, hotspot 20% of keys receiving 80% of
// accesses, exponential with 95% of mass in the first 10% of the domain —
// YCSB's defaults).
func New(kind Kind, n uint64, rng *rand.Rand) (Source, error) {
	switch kind {
	case Uniform:
		return NewUniform(n, rng), nil
	case Zipfian:
		return NewZipfian(n, DefaultZipfTheta, rng), nil
	case Scrambled:
		return NewScrambledZipfian(n, DefaultZipfTheta, rng), nil
	case Hotspot:
		return NewHotspot(n, 0.2, 0.8, rng), nil
	case Sequential:
		return NewSequential(n), nil
	case Exponential:
		return NewExponential(n, 0.95, 0.10, rng), nil
	case Latest:
		return NewLatest(n, rng), nil
	case Drifting:
		return NewDriftingHotspot(n, DefaultDriftHotFrac, DefaultDriftHotProb, DefaultDriftEvery, 0, rng)
	default:
		return nil, fmt.Errorf("dist: unknown distribution %q", kind)
	}
}

// uniformSource samples uniformly from [0, n).
type uniformSource struct {
	n   uint64
	rng *rand.Rand
}

// NewUniform returns a uniform Source over [0, n).
func NewUniform(n uint64, rng *rand.Rand) Source {
	if n == 0 {
		n = 1
	}
	return &uniformSource{n: n, rng: rng}
}

func (u *uniformSource) Next() uint64 { return uint64(u.rng.Int63n(int64(u.n))) }
func (u *uniformSource) N() uint64    { return u.n }

// DefaultZipfTheta is YCSB's default zipfian skew constant.
const DefaultZipfTheta = 0.99

// ZipfianSource samples from a zipfian distribution over [0, n) where
// item 0 is the most popular, using the method of Gray et al. ("Quickly
// Generating Billion-Record Synthetic Databases", SIGMOD '94) — the same
// algorithm YCSB uses.
type ZipfianSource struct {
	n                      uint64
	theta                  float64
	alpha, zetan, eta, zt2 float64
	rng                    *rand.Rand
}

// NewZipfian returns a zipfian Source over [0, n) with skew theta in (0, 1).
func NewZipfian(n uint64, theta float64, rng *rand.Rand) *ZipfianSource {
	if n == 0 {
		n = 1
	}
	z := &ZipfianSource{n: n, theta: theta, rng: rng}
	z.zetan = zetaStatic(n, theta)
	z.zt2 = zetaStatic(2, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zt2/z.zetan)
	return z
}

func zetaStatic(n uint64, theta float64) float64 {
	var sum float64
	for i := uint64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), theta)
	}
	return sum
}

func (z *ZipfianSource) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func (z *ZipfianSource) N() uint64 { return z.n }

// scrambledSource spreads a zipfian's popular items across the key space
// via FNV hashing, matching YCSB's ScrambledZipfianGenerator.
type scrambledSource struct {
	z *ZipfianSource
}

// NewScrambledZipfian returns a scrambled zipfian Source over [0, n).
func NewScrambledZipfian(n uint64, theta float64, rng *rand.Rand) Source {
	return &scrambledSource{z: NewZipfian(n, theta, rng)}
}

func (s *scrambledSource) Next() uint64 { return FNV64(s.z.Next()) % s.z.n }
func (s *scrambledSource) N() uint64    { return s.z.n }

// FNV64 hashes a uint64 with FNV-1a, the scrambling function YCSB uses.
func FNV64(v uint64) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= v & 0xFF
		h *= prime
		v >>= 8
	}
	return h
}

// hotspotSource accesses a "hot" fraction of the key space with a given
// probability, uniform within each region (YCSB HotspotIntegerGenerator).
type hotspotSource struct {
	n       uint64
	hotN    uint64
	hotProb float64
	rng     *rand.Rand
}

// NewHotspot returns a hotspot Source: hotFrac of the keys receive
// hotProb of the accesses.
func NewHotspot(n uint64, hotFrac, hotProb float64, rng *rand.Rand) Source {
	if n == 0 {
		n = 1
	}
	hotN := uint64(float64(n) * hotFrac)
	if hotN == 0 {
		hotN = 1
	}
	if hotN > n {
		hotN = n
	}
	return &hotspotSource{n: n, hotN: hotN, hotProb: hotProb, rng: rng}
}

func (h *hotspotSource) Next() uint64 {
	if h.rng.Float64() < h.hotProb {
		return uint64(h.rng.Int63n(int64(h.hotN)))
	}
	if h.hotN == h.n {
		return uint64(h.rng.Int63n(int64(h.n)))
	}
	return h.hotN + uint64(h.rng.Int63n(int64(h.n-h.hotN)))
}

func (h *hotspotSource) N() uint64 { return h.n }

// sequentialSource cycles 0, 1, ..., n-1, 0, 1, ...
type sequentialSource struct {
	n    uint64
	next uint64
}

// NewSequential returns a sequential Source over [0, n).
func NewSequential(n uint64) Source {
	if n == 0 {
		n = 1
	}
	return &sequentialSource{n: n}
}

func (s *sequentialSource) Next() uint64 {
	v := s.next
	s.next = (s.next + 1) % s.n
	return v
}

func (s *sequentialSource) N() uint64 { return s.n }

// exponentialSource samples an exponential truncated to [0, n), tuned so
// that `frac` of the mass falls in the first `percentile` share of the
// domain (YCSB's ExponentialGenerator parameterization).
type exponentialSource struct {
	n     uint64
	gamma float64
	rng   *rand.Rand
}

// NewExponential returns an exponential Source over [0, n) with the given
// percentile/fraction shape (e.g. 0.95 of accesses in the first 0.10).
func NewExponential(n uint64, frac, percentile float64, rng *rand.Rand) Source {
	if n == 0 {
		n = 1
	}
	gamma := -math.Log(1-frac) / (percentile * float64(n))
	return &exponentialSource{n: n, gamma: gamma, rng: rng}
}

func (e *exponentialSource) Next() uint64 {
	for {
		v := uint64(-math.Log(e.rng.Float64()) / e.gamma)
		if v < e.n {
			return v
		}
	}
}

func (e *exponentialSource) N() uint64 { return e.n }

// latestSource favors recently inserted items: index = max - zipf(), as
// in YCSB's SkewedLatestGenerator. The "max" advances via Advance (for
// workloads that insert) or stays at n-1 for preloaded databases.
type latestSource struct {
	z   *ZipfianSource
	max uint64
}

// NewLatest returns a latest Source over a preloaded domain [0, n).
func NewLatest(n uint64, rng *rand.Rand) *latestSource {
	if n == 0 {
		n = 1
	}
	return &latestSource{z: NewZipfian(n, DefaultZipfTheta, rng), max: n - 1}
}

func (l *latestSource) Next() uint64 {
	off := l.z.Next()
	if off > l.max {
		off = l.max
	}
	return l.max - off
}

func (l *latestSource) N() uint64 { return l.z.n }

// Advance moves the "latest" frontier forward by one inserted item.
func (l *latestSource) Advance() {
	if l.max < l.z.n-1 {
		l.max++
	}
}

// ECDFSource samples from a user-provided empirical CDF given as sorted
// (value, cumulative-probability) points; sampling inverts the CDF with a
// binary search (Gadget §5.1 "the event generator can also work with
// empirical cumulative distribution functions provided by the user").
type ECDFSource struct {
	values []uint64
	cum    []float64
	rng    *rand.Rand
}

// NewECDF builds a Source from parallel slices of values and cumulative
// probabilities. cum must be non-decreasing and end at (approximately) 1.
func NewECDF(values []uint64, cum []float64, rng *rand.Rand) (*ECDFSource, error) {
	if len(values) == 0 || len(values) != len(cum) {
		return nil, fmt.Errorf("dist: ECDF needs equal-length non-empty values/cum, got %d/%d", len(values), len(cum))
	}
	for i := 1; i < len(cum); i++ {
		if cum[i] < cum[i-1] {
			return nil, fmt.Errorf("dist: ECDF cum not monotone at %d", i)
		}
	}
	if last := cum[len(cum)-1]; last < 0.999 || last > 1.001 {
		return nil, fmt.Errorf("dist: ECDF cum must end at 1, got %v", last)
	}
	return &ECDFSource{values: values, cum: cum, rng: rng}, nil
}

func (e *ECDFSource) Next() uint64 {
	u := e.rng.Float64()
	i := sort.SearchFloat64s(e.cum, u)
	if i >= len(e.values) {
		i = len(e.values) - 1
	}
	return e.values[i]
}

func (e *ECDFSource) N() uint64 { return e.values[len(e.values)-1] + 1 }

// Interarrival generates gaps between consecutive events in milliseconds.
type Interarrival interface {
	NextGap() int64
}

// PoissonArrivals produces exponentially distributed gaps with the given
// mean events/second rate, i.e. a Poisson arrival process.
type PoissonArrivals struct {
	meanGapMs float64
	rng       *rand.Rand
}

// NewPoissonArrivals returns Poisson arrivals at ratePerSec events/second.
func NewPoissonArrivals(ratePerSec float64, rng *rand.Rand) *PoissonArrivals {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	return &PoissonArrivals{meanGapMs: 1000 / ratePerSec, rng: rng}
}

func (p *PoissonArrivals) NextGap() int64 {
	g := int64(p.rng.ExpFloat64() * p.meanGapMs)
	if g < 0 {
		g = 0
	}
	return g
}

// ConstantArrivals produces fixed gaps (a deterministic arrival process).
type ConstantArrivals struct{ GapMs int64 }

// NewConstantArrivals returns constant arrivals at ratePerSec events/second.
func NewConstantArrivals(ratePerSec float64) *ConstantArrivals {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	g := int64(1000 / ratePerSec)
	if g < 1 {
		g = 1
	}
	return &ConstantArrivals{GapMs: g}
}

func (c *ConstantArrivals) NextGap() int64 { return c.GapMs }
