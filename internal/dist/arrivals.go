package dist

import (
	"fmt"
	"math/rand"
	"time"
)

// Schedule generates interarrival gaps in nanoseconds — the
// high-resolution twin of Interarrival (milliseconds, used by the event
// generator's event-time clock). The open-loop replay driver paces
// dispatch on a Schedule: millisecond granularity would quantize every
// rate above 1k events/s to zero-length gaps, so wall-clock pacing needs
// nanoseconds. Schedules are deterministic given their seed and NOT safe
// for concurrent use.
type Schedule interface {
	// NextGapNs returns the gap to the next arrival in nanoseconds.
	NextGapNs() int64
}

// ConstantRate produces fixed gaps: a deterministic arrival process at
// exactly ratePerSec events/second.
type ConstantRate struct{ gapNs int64 }

// NewConstantRate returns constant arrivals at ratePerSec events/second.
// Non-positive rates default to 1 event/s; gaps clamp at 1ns, so rates
// beyond 1e9/s degenerate to back-to-back dispatch.
func NewConstantRate(ratePerSec float64) *ConstantRate {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	g := int64(float64(time.Second) / ratePerSec)
	if g < 1 {
		g = 1
	}
	return &ConstantRate{gapNs: g}
}

// NextGapNs implements Schedule.
func (c *ConstantRate) NextGapNs() int64 { return c.gapNs }

// PoissonRate produces exponentially distributed gaps with mean rate
// ratePerSec — a Poisson arrival process, the memoryless load shape of
// independent request sources.
type PoissonRate struct {
	meanGapNs float64
	rng       *rand.Rand
}

// NewPoissonRate returns Poisson arrivals at ratePerSec events/second.
// Non-positive rates default to 1 event/s.
func NewPoissonRate(ratePerSec float64, rng *rand.Rand) *PoissonRate {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	return &PoissonRate{meanGapNs: float64(time.Second) / ratePerSec, rng: rng}
}

// NextGapNs implements Schedule.
func (p *PoissonRate) NextGapNs() int64 {
	g := int64(p.rng.ExpFloat64() * p.meanGapNs)
	if g < 0 {
		g = 0
	}
	return g
}

// BurstPhase is one leg of a phased arrival schedule: RatePerSec held
// for Duration of schedule time.
type BurstPhase struct {
	RatePerSec float64
	Duration   time.Duration
}

// BurstSchedule cycles through phases deterministically. Within a phase
// gaps are constant at the phase rate; the phase hands over once exactly
// Duration of *scheduled* time has been emitted, so phase boundaries
// land at the configured offsets independent of wall-clock behavior (a
// gap straddling a boundary borrows the overshoot from the next phase's
// budget). After the last phase the schedule wraps to the first.
type BurstSchedule struct {
	phases []BurstPhase
	i      int
	leftNs int64 // schedule time remaining in the current phase
}

// NewBursts validates phases and returns the cycling schedule.
func NewBursts(phases []BurstPhase) (*BurstSchedule, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("dist: burst schedule needs at least one phase")
	}
	for i, p := range phases {
		if p.RatePerSec <= 0 {
			return nil, fmt.Errorf("dist: burst phase %d rate must be positive, got %v", i, p.RatePerSec)
		}
		if p.Duration <= 0 {
			return nil, fmt.Errorf("dist: burst phase %d duration must be positive, got %v", i, p.Duration)
		}
	}
	return &BurstSchedule{
		phases: append([]BurstPhase(nil), phases...),
		leftNs: phases[0].Duration.Nanoseconds(),
	}, nil
}

// Phase returns the index of the phase the next gap will be drawn from.
func (b *BurstSchedule) Phase() int { return b.i }

// NextGapNs implements Schedule.
func (b *BurstSchedule) NextGapNs() int64 {
	p := b.phases[b.i]
	g := int64(float64(time.Second) / p.RatePerSec)
	if g < 1 {
		g = 1
	}
	b.leftNs -= g
	for b.leftNs <= 0 {
		b.i = (b.i + 1) % len(b.phases)
		b.leftNs += b.phases[b.i].Duration.Nanoseconds()
	}
	return g
}
