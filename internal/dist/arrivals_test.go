package dist

import (
	"math/rand"
	"testing"
	"time"
)

func TestConstantRateExactGaps(t *testing.T) {
	c := NewConstantRate(1000) // 1ms gaps
	for i := 0; i < 10; i++ {
		if g := c.NextGapNs(); g != int64(time.Millisecond) {
			t.Fatalf("gap %d = %dns, want 1ms", i, g)
		}
	}
	if NewConstantRate(2e9).NextGapNs() != 1 {
		t.Fatal("gap should clamp at 1ns")
	}
	if NewConstantRate(0).NextGapNs() != int64(time.Second) {
		t.Fatal("non-positive rate should default to 1 event/s")
	}
}

func TestPoissonRateDeterministic(t *testing.T) {
	a := NewPoissonRate(5000, rand.New(rand.NewSource(7)))
	b := NewPoissonRate(5000, rand.New(rand.NewSource(7)))
	other := NewPoissonRate(5000, rand.New(rand.NewSource(8)))
	same, diff := true, false
	for i := 0; i < 1000; i++ {
		ga := a.NextGapNs()
		if ga < 0 {
			t.Fatal("negative gap")
		}
		if ga != b.NextGapNs() {
			same = false
		}
		if ga != other.NextGapNs() {
			diff = true
		}
	}
	if !same {
		t.Fatal("fixed seed must reproduce the identical gap sequence")
	}
	if !diff {
		t.Fatal("different seeds should produce different sequences")
	}
}

func TestPoissonRateMean(t *testing.T) {
	n := 200_000
	if testing.Short() {
		n = 20_000
	}
	p := NewPoissonRate(10_000, rand.New(rand.NewSource(3))) // mean gap 100us
	var sum int64
	for i := 0; i < n; i++ {
		sum += p.NextGapNs()
	}
	mean := float64(sum) / float64(n)
	want := float64(100 * time.Microsecond)
	if mean < 0.95*want || mean > 1.05*want {
		t.Fatalf("mean gap = %.0fns, want ~%.0fns", mean, want)
	}
}

func TestBurstsPhaseBoundariesExact(t *testing.T) {
	// 10ms at 1k/s (1ms gaps) then 5ms at 10k/s (100us gaps), cycling.
	b, err := NewBursts([]BurstPhase{
		{RatePerSec: 1000, Duration: 10 * time.Millisecond},
		{RatePerSec: 10_000, Duration: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 3; cycle++ {
		for i := 0; i < 10; i++ {
			if b.Phase() != 0 {
				t.Fatalf("cycle %d event %d drawn from phase %d, want 0", cycle, i, b.Phase())
			}
			if g := b.NextGapNs(); g != int64(time.Millisecond) {
				t.Fatalf("phase-0 gap = %dns", g)
			}
		}
		for i := 0; i < 50; i++ {
			if b.Phase() != 1 {
				t.Fatalf("cycle %d burst event %d drawn from phase %d, want 1", cycle, i, b.Phase())
			}
			if g := b.NextGapNs(); g != int64(100*time.Microsecond) {
				t.Fatalf("phase-1 gap = %dns", g)
			}
		}
	}
}

func TestBurstsStraddlingGapBorrows(t *testing.T) {
	// Phase 0 is shorter than one of its gaps: the first gap must borrow
	// from (and skip into) the following phases without emitting a
	// zero-length phase or looping forever.
	b, err := NewBursts([]BurstPhase{
		{RatePerSec: 100, Duration: time.Millisecond}, // 10ms gap > 1ms phase
		{RatePerSec: 1000, Duration: 20 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := b.NextGapNs(); g != int64(10*time.Millisecond) {
		t.Fatalf("first gap = %dns", g)
	}
	if b.Phase() != 1 {
		t.Fatalf("phase after straddling gap = %d, want 1", b.Phase())
	}
}

func TestBurstsValidation(t *testing.T) {
	cases := [][]BurstPhase{
		nil,
		{{RatePerSec: 0, Duration: time.Second}},
		{{RatePerSec: -5, Duration: time.Second}},
		{{RatePerSec: 100, Duration: 0}},
	}
	for i, phases := range cases {
		if _, err := NewBursts(phases); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
	}
}

func TestScheduleMeanRate(t *testing.T) {
	// Statistical sanity across schedule kinds: emitted schedule time for
	// n events must match n/rate within tolerance.
	n := 100_000
	if testing.Short() {
		n = 10_000
	}
	bursts, err := NewBursts([]BurstPhase{
		{RatePerSec: 50_000, Duration: 10 * time.Millisecond},
		{RatePerSec: 50_000, Duration: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]Schedule{
		"constant": NewConstantRate(50_000),
		"poisson":  NewPoissonRate(50_000, rand.New(rand.NewSource(11))),
		"bursts":   bursts,
	} {
		var sum int64
		for i := 0; i < n; i++ {
			sum += s.NextGapNs()
		}
		want := float64(n) / 50_000 * float64(time.Second)
		if got := float64(sum); got < 0.93*want || got > 1.07*want {
			t.Errorf("%s: %d events span %.2fms of schedule time, want ~%.2fms",
				name, n, got/1e6, want/1e6)
		}
	}
}
