package replay

import (
	"fmt"
	"time"

	"gadget/internal/kv"
)

// Crash recovery: replaying a trace through scripted mid-run crashes.
//
// The recovery model is the one streaming engines (Flink + RocksDB in
// the paper's deployment) actually use: local store state is assumed
// lost at a crash. The runner reopens a *fresh, empty* store, restores
// the newest valid checkpoint into it, rewinds the trace cursor to the
// checkpoint's op watermark, and replays the delta before resuming —
// measuring downtime (RTO) and the replayed-delta size (the RPO proxy)
// as first-class run results instead of leaving recovery to offline
// tests.

// Attempt is one life of the store between crashes.
type Attempt struct {
	// Store serves this attempt's operations.
	Store kv.Store
	// Crash tears the store down the hard way — for durable engines,
	// typically vfs.(*FaultFS).Crash followed by a (failing) Close, so
	// in-flight state dies exactly as a process would. Nil means plain
	// Close with the error ignored: the right model for memory engines,
	// which lose everything on any shutdown.
	Crash func()
}

// StoreFactory opens the store for one attempt. Attempt 0 is the
// initial open; each subsequent call follows a crash and MUST return a
// fresh store seeing only crash-surviving state (recovery restores the
// checkpoint into it and replays the delta — leftover state would make
// the measured RTO a lie). The factory owns placement: a new subdir per
// attempt, a reopened FaultFS inner, a new remote connection.
type StoreFactory func(attempt int) (Attempt, error)

// RecoveryOptions extends Options with a checkpoint cadence and a crash
// schedule.
type RecoveryOptions struct {
	Options
	// CheckpointEvery cuts a checkpoint after every N applied trace ops
	// (0 = never; recovery then falls back to full replay).
	CheckpointEvery uint64
	// Checkpointer saves and restores checkpoints. Required when
	// CheckpointEvery > 0; when nil, crashes recover by full replay.
	// Its directory must survive crashes — checkpoints model durable
	// external storage (DFS in Flink terms), not local disk.
	Checkpointer *kv.Checkpointer
	// CrashAtOps lists the logical trace positions to crash at, strictly
	// increasing: the run crashes after op n has been applied for the
	// first time. Positions at or past the trace length never fire.
	CrashAtOps []uint64
}

// Validate extends Options.Validate with the recovery knobs.
func (o RecoveryOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.CheckpointEvery > 0 && o.Checkpointer == nil {
		return fmt.Errorf("replay: checkpoint interval %d set without a checkpointer", o.CheckpointEvery)
	}
	for i, n := range o.CrashAtOps {
		if n == 0 {
			return fmt.Errorf("replay: crash point must be positive, got 0 at index %d", i)
		}
		if i > 0 && n <= o.CrashAtOps[i-1] {
			return fmt.Errorf("replay: crash points must be strictly increasing, got %d after %d", n, o.CrashAtOps[i-1])
		}
	}
	return nil
}

// RunWithRecovery replays trace through the crash schedule. Result
// counters span all attempts: Ops counts physical applications (so
// Ops - ReplayedOps == len(trace) on a clean finish), Duration is the
// sum of attempt durations plus downtime, and the recovery fields
// (Recoveries, RecoveryTime, ReplayedOps, Checkpoints, CheckpointCost)
// aggregate the whole run. The final attempt's store is left open for
// the caller to inspect and close — capture it in the factory.
func RunWithRecovery(open StoreFactory, trace []kv.Access, opts RecoveryOptions) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	att, err := open(0)
	if err != nil {
		return Result{}, err
	}
	c, err := NewCollector(att.Store, opts.Options)
	if err != nil {
		return Result{}, err
	}

	var attempts []Result
	seal := func() { attempts = append(attempts, c.Finish()) }
	fail := func(err error) (Result, error) {
		seal()
		return foldAttempts(attempts), err
	}

	cursor := uint64(0) // logical position: trace[cursor] is next
	crashIdx := 0
	attempt := 0
	for cursor < uint64(len(trace)) {
		if crashIdx < len(opts.CrashAtOps) && cursor == opts.CrashAtOps[crashIdx] {
			crashIdx++
			attempt++
			crashedAt := time.Now()
			seal()
			if att.Crash != nil {
				att.Crash()
			} else {
				att.Store.Close()
			}
			if att, err = open(attempt); err != nil {
				return foldAttempts(attempts), fmt.Errorf("replay: reopening store after crash %d: %w", attempt, err)
			}
			watermark := uint64(0)
			if opts.Checkpointer != nil {
				info, err := opts.Checkpointer.Restore(att.Store)
				if err != nil {
					att.Store.Close()
					return foldAttempts(attempts), fmt.Errorf("replay: restoring checkpoint after crash %d: %w", attempt, err)
				}
				watermark = info.Meta.Watermark
			}
			// Downtime ends here: the store is open and restored, ready to
			// re-apply the delta. The new collector's clock starts after,
			// so RTO and attempt durations never overlap.
			downtime := time.Since(crashedAt)
			if c, err = NewCollector(att.Store, opts.Options); err != nil {
				return foldAttempts(attempts), err
			}
			if watermark > cursor {
				return fail(fmt.Errorf("replay: checkpoint watermark %d is past the crash point %d", watermark, cursor))
			}
			c.NoteRecovery(downtime, cursor-watermark)
			cursor = watermark
			continue
		}
		if err := c.Do(trace[cursor]); err != nil {
			return fail(err)
		}
		cursor++
		if opts.CheckpointEvery > 0 && cursor%opts.CheckpointEvery == 0 && cursor < uint64(len(trace)) {
			t0 := time.Now()
			_, bytes, err := opts.Checkpointer.Save(att.Store, cursor)
			if err != nil {
				return fail(fmt.Errorf("replay: checkpoint at op %d: %w", cursor, err))
			}
			c.NoteCheckpoint(time.Since(t0), uint64(bytes))
		}
	}
	seal()
	return foldAttempts(attempts), nil
}

// foldAttempts merges sequential attempt results into one run view.
// Unlike MergeResults (concurrent workers sharing one store), attempts
// run one after another against separate store lives: durations sum,
// and the resilience and engine deltas sum too — each attempt's delta
// covers a different store instance, so adding them never double
// counts.
func foldAttempts(attempts []Result) Result {
	out := MergeResults(attempts)
	out.Duration = 0
	out.Retries, out.Timeouts, out.BreakerTrips, out.DegradedOps = 0, 0, 0, 0
	out.Engine = nil
	for _, r := range attempts {
		out.Duration += r.Duration
		out.Retries += r.Retries
		out.Timeouts += r.Timeouts
		out.BreakerTrips += r.BreakerTrips
		out.DegradedOps += r.DegradedOps
		if len(r.Engine) > 0 {
			if out.Engine == nil {
				out.Engine = make(map[string]int64, len(r.Engine))
			}
			for k, v := range r.Engine {
				out.Engine[k] += v
			}
		}
	}
	// Each post-crash collector's clock starts after its recovery
	// completed, so the downtime fell in no attempt's window — add it so
	// Duration (and the throughput derived from it) reflect wall time
	// including outages.
	out.Duration += out.RecoveryTime
	out.Throughput = 0
	if out.Duration > 0 {
		out.Throughput = float64(out.Ops) / out.Duration.Seconds()
		if out.Offered > 0 {
			out.OfferedRate = float64(out.Offered) / out.Duration.Seconds()
			out.AchievedRate = out.Throughput
		}
	}
	return out
}
