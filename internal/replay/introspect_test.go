package replay

import (
	"strings"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/stats"
)

func TestResultStringEngineSummary(t *testing.T) {
	r := Result{
		Ops:     100,
		Latency: stats.NewHistogram(),
		Engine: map[string]int64{
			"lsm.compactions":  3,
			"lsm.cache_hits":   921,
			"lsm.cache_misses": 79,
			"lsm.stall_nanos":  15_000_000,
		},
	}
	s := r.String()
	for _, want := range []string{"compactions=3", "cache_hit=92.1%", "stall=15ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}

	r.Engine = nil
	if s := r.String(); strings.Contains(s, "[") {
		t.Errorf("String() without engine delta should have no summary block, got %q", s)
	}

	// A store exposing none of the summarized keys gets no block either.
	r.Engine = map[string]int64{"memstore.puts": 100}
	if s := r.String(); strings.Contains(s, "[") {
		t.Errorf("String() with non-LSM delta should have no summary block, got %q", s)
	}
}

func TestRunFillsEngineDelta(t *testing.T) {
	store := memstore.New()
	defer store.Close()
	var observed *Collector
	trace := make([]kv.Access, 50)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: 1, Sub: uint64(i)}, Size: 8}
	}
	res, err := Run(store, trace, Options{Observer: func(c *Collector) { observed = c }})
	if err != nil {
		t.Fatal(err)
	}
	if observed == nil {
		t.Fatal("Observer was not invoked")
	}
	if observed.Store() != kv.Store(store) {
		t.Error("Observer collector is not bound to the run's store")
	}
	if res.Engine["memstore.puts"] != 50 {
		t.Errorf("Engine delta = %v, want memstore.puts=50", res.Engine)
	}
	// A second run against the same store must report only its own delta.
	res2, err := Run(store, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Engine["memstore.puts"] != 50 {
		t.Errorf("second run engine delta = %v, want memstore.puts=50 (not cumulative)", res2.Engine)
	}
}

func TestMergeResults(t *testing.T) {
	h1, h2 := stats.NewHistogram(), stats.NewHistogram()
	h1.Record(100)
	h2.Record(200)
	a := Result{Ops: 10, Misses: 1, Errors: 2, TransientErrors: 2, Retries: 5, Duration: 100, Latency: h1}
	b := Result{Ops: 20, Misses: 3, Retries: 5, Degraded: true, Duration: 200, Latency: h2,
		Engine: map[string]int64{"memstore.puts": 30}}
	m := MergeResults([]Result{a, b})
	if m.Ops != 30 || m.Misses != 4 || m.Errors != 2 {
		t.Errorf("summed counters wrong: %+v", m)
	}
	if m.Retries != 5 {
		t.Errorf("Retries = %d, want max 5 (store-wide deltas must not double-count)", m.Retries)
	}
	if !m.Degraded {
		t.Error("Degraded must propagate")
	}
	if m.Duration != 200 {
		t.Errorf("Duration = %v, want the longest worker's 200", m.Duration)
	}
	if m.Latency.Count() != 2 {
		t.Errorf("merged latency count = %d, want 2", m.Latency.Count())
	}
	if m.Engine["memstore.puts"] != 30 {
		t.Errorf("Engine = %v, want carried through", m.Engine)
	}
}
