package replay

import (
	"errors"
	"sync"
	"time"
)

// ErrStalled is returned by watchdog-guarded runs when no operation
// completed within the stall timeout: the run was aborted and its
// partial results tagged Degraded.
var ErrStalled = errors.New("replay: worker stalled; run aborted by watchdog")

// Watchdog monitors the progress of one or more Collectors and aborts
// them all when any one stalls — the run-level safety net the harness
// arms around online and replay runs so a wedged store degrades the run
// instead of hanging it.
//
// Contract: a collector counts as making progress whenever an operation
// completes (Collector.Do returns). A worker blocked inside a store call
// past the timeout trips the watchdog; every watched collector is then
// aborted (subsequent Do calls return ErrAborted) and Fired is closed.
// The blocked call itself cannot be interrupted — pair the watchdog with
// per-op deadlines (kv.ResilienceOptions.OpTimeout) to bound it; without
// them, the stuck goroutine is abandoned and its result discarded.
type Watchdog struct {
	timeout time.Duration

	mu   sync.Mutex
	cols []*Collector

	fired chan struct{}
	stop  chan struct{}
	once  sync.Once // guards firing
	done  sync.Once // guards Stop
}

// NewWatchdog creates a watchdog with the given stall timeout.
func NewWatchdog(timeout time.Duration) *Watchdog {
	return &Watchdog{
		timeout: timeout,
		fired:   make(chan struct{}),
		stop:    make(chan struct{}),
	}
}

// Watch adds a collector to the watch set.
func (w *Watchdog) Watch(c *Collector) {
	w.mu.Lock()
	w.cols = append(w.cols, c)
	w.mu.Unlock()
}

// Start begins monitoring in a background goroutine.
func (w *Watchdog) Start() { go w.monitor() }

// Stop ends monitoring. Idempotent; safe after the watchdog fired.
func (w *Watchdog) Stop() { w.done.Do(func() { close(w.stop) }) }

// Fired is closed when the watchdog detected a stall and aborted the
// watched collectors.
func (w *Watchdog) Fired() <-chan struct{} { return w.fired }

func (w *Watchdog) monitor() {
	interval := w.timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-ticker.C:
			if w.checkStalled() {
				w.fire()
				return
			}
		}
	}
}

// checkStalled reports whether any unfinished collector has made no
// progress within the timeout.
func (w *Watchdog) checkStalled() bool {
	now := time.Now().UnixNano()
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range w.cols {
		if c.finished.Load() {
			continue
		}
		if now-c.lastProgress.Load() > w.timeout.Nanoseconds() {
			return true
		}
	}
	return false
}

func (w *Watchdog) fire() {
	w.mu.Lock()
	cols := append([]*Collector(nil), w.cols...)
	w.mu.Unlock()
	for _, c := range cols {
		c.Abort()
	}
	w.once.Do(func() { close(w.fired) })
}

// Guard runs work under a watchdog over cols and reports whether the
// watchdog fired. With timeout <= 0 it runs work inline and returns
// false. When it returns true, work was abandoned mid-flight (its
// goroutine unblocks once the stuck operation returns, and every
// collector has been aborted); callers should return Snapshot results
// tagged Degraded with ErrStalled.
func Guard(timeout time.Duration, cols []*Collector, work func()) (stalled bool) {
	if timeout <= 0 {
		work()
		return false
	}
	wd := NewWatchdog(timeout)
	for _, c := range cols {
		wd.Watch(c)
	}
	wd.Start()
	defer wd.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	select {
	case <-done:
		return false
	case <-wd.Fired():
		return true
	}
}
