package replay

import (
	"errors"
	"testing"
	"time"

	"gadget/internal/memstore"
	"gadget/internal/stats"
)

// thresholdProbe passes iff rate <= limit, with plausible Result fields.
func thresholdProbe(limit float64) func(rate float64) (Result, error) {
	return func(rate float64) (Result, error) {
		r := Result{Offered: 1000, Latency: stats.NewHistogram(), IntendedLatency: stats.NewHistogram()}
		if rate <= limit {
			r.IntendedLatency.Record(int64(time.Millisecond))
		} else {
			r.IntendedLatency.Record(int64(time.Second))
			r.Overload = 500
		}
		return r, nil
	}
}

func TestFindSustainableRateBisection(t *testing.T) {
	run := func() RateSearchResult {
		out, err := FindSustainableRate(nil, nil, RateSearchOptions{
			Low:   1000,
			SLO:   SLO{P99: 100 * time.Millisecond, MaxOverloadFrac: 0.01},
			Probe: thresholdProbe(7000),
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()
	// The true limit is 7000; the answer must be a passing rate within
	// the default 10% tolerance below it.
	if out.Sustainable > 7000 || out.Sustainable < 7000*0.8 {
		t.Fatalf("sustainable = %v, want in [5600, 7000]", out.Sustainable)
	}
	// Geometric expansion then bisection: 1000, 2000, 4000, 8000(fail),
	// then midpoints.
	wantPrefix := []float64{1000, 2000, 4000, 8000, 6000, 7000}
	for i, w := range wantPrefix {
		if i >= len(out.Probes) || out.Probes[i].Rate != w {
			t.Fatalf("probe sequence %v, want prefix %v", out.Probes, wantPrefix)
		}
	}
	// Determinism: an identical probe yields the identical search.
	again := run()
	if again.Sustainable != out.Sustainable || len(again.Probes) != len(out.Probes) {
		t.Fatalf("search not deterministic: %v vs %v", again, out)
	}
	for i := range out.Probes {
		if out.Probes[i] != again.Probes[i] {
			t.Fatalf("probe %d diverged: %+v vs %+v", i, out.Probes[i], again.Probes[i])
		}
	}
}

func TestFindSustainableRateFloorFails(t *testing.T) {
	out, err := FindSustainableRate(nil, nil, RateSearchOptions{
		Low:   1000,
		SLO:   SLO{P99: 100 * time.Millisecond},
		Probe: thresholdProbe(10), // nothing is sustainable
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sustainable != 0 || len(out.Probes) != 1 {
		t.Fatalf("out = %+v, want sustainable 0 after one probe", out)
	}
}

func TestFindSustainableRateHighBound(t *testing.T) {
	// When the explicit upper bound passes, it is the answer (2 probes).
	out, err := FindSustainableRate(nil, nil, RateSearchOptions{
		Low: 1000, High: 5000,
		SLO:   SLO{P99: 100 * time.Millisecond},
		Probe: thresholdProbe(7000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sustainable != 5000 || len(out.Probes) != 2 {
		t.Fatalf("out = %+v, want sustainable 5000 after 2 probes", out)
	}
	// When it fails, the search bisects inside [Low, High].
	out, err = FindSustainableRate(nil, nil, RateSearchOptions{
		Low: 1000, High: 16_000,
		SLO:   SLO{P99: 100 * time.Millisecond},
		Probe: thresholdProbe(7000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sustainable > 7000 || out.Sustainable < 5000 {
		t.Fatalf("sustainable = %v, want in (5000, 7000]", out.Sustainable)
	}
}

func TestFindSustainableRateProbeBudget(t *testing.T) {
	probes := 0
	out, err := FindSustainableRate(nil, nil, RateSearchOptions{
		Low: 1, Tolerance: 1e-9, MaxProbes: 5,
		SLO: SLO{P99: time.Second},
		Probe: func(rate float64) (Result, error) {
			probes++
			return thresholdProbe(1e6)(rate)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if probes > 5 || len(out.Probes) > 5 {
		t.Fatalf("probe budget exceeded: %d runs", probes)
	}
	// All-passing expansion within budget certifies the best passing rate.
	if out.Sustainable != 16 { // 1, 2, 4, 8, 16 — all pass
		t.Fatalf("sustainable = %v, want 16", out.Sustainable)
	}
}

func TestFindSustainableRateStalledProbeIsFailure(t *testing.T) {
	out, err := FindSustainableRate(nil, nil, RateSearchOptions{
		Low: 1000, High: 4000,
		SLO: SLO{P99: time.Second},
		Probe: func(rate float64) (Result, error) {
			if rate > 2500 {
				return Result{Degraded: true, Latency: stats.NewHistogram()}, ErrStalled
			}
			return thresholdProbe(1e6)(rate)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Sustainable == 0 || out.Sustainable > 2500 {
		t.Fatalf("sustainable = %v, want a passing rate <= 2500", out.Sustainable)
	}
	for _, p := range out.Probes {
		if p.Rate > 2500 && p.Pass {
			t.Fatalf("stalled probe counted as pass: %+v", p)
		}
	}
}

func TestFindSustainableRatePropagatesProbeErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := FindSustainableRate(nil, nil, RateSearchOptions{
		Low: 1000,
		Probe: func(rate float64) (Result, error) {
			return Result{}, boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want probe error", err)
	}
}

func TestFindSustainableRateValidation(t *testing.T) {
	bad := []RateSearchOptions{
		{},                           // no low bound
		{Low: -5},                    // negative low
		{Low: 1000, High: 500},       // inverted bracket
		{Low: 1000, Tolerance: -0.1}, // negative tolerance
		{Low: 1000, High: 1000},      // degenerate bracket
	}
	for i, o := range bad {
		if _, err := FindSustainableRate(nil, nil, o); err == nil {
			t.Errorf("options %d should be rejected: %+v", i, o)
		}
	}
}

// TestFindSustainableRateMemstore is the acceptance check: real
// open-loop probes against memstore under a generous SLO must converge,
// deterministically, to the bracket's upper bound (memstore sustains
// far more than 50k/s).
func TestFindSustainableRateMemstore(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := putTrace(200)
	run := func() RateSearchResult {
		out, err := FindSustainableRate(st, trace, RateSearchOptions{
			Low: 10_000, High: 50_000,
			SLO:  SLO{P99: time.Second, MaxOverloadFrac: 1},
			Open: OpenLoopOptions{MaxInFlight: 256},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	out := run()
	if out.Sustainable != 50_000 || len(out.Probes) != 2 {
		t.Fatalf("out = %+v, want high bound sustained in 2 probes", out)
	}
	again := run()
	if again.Sustainable != out.Sustainable || len(again.Probes) != len(out.Probes) {
		t.Fatalf("memstore search not deterministic: %+v vs %+v", again, out)
	}
	// An impossible SLO fails at the floor.
	impossible, err := FindSustainableRate(st, trace, RateSearchOptions{
		Low: 10_000, High: 50_000,
		SLO:  SLO{P99: time.Nanosecond},
		Open: OpenLoopOptions{MaxInFlight: 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	if impossible.Sustainable != 0 {
		t.Fatalf("impossible SLO reported sustainable %v", impossible.Sustainable)
	}
}

func TestSLOMet(t *testing.T) {
	hist := func(ns int64) *stats.Histogram {
		h := stats.NewHistogram()
		h.Record(ns)
		return h
	}
	cases := []struct {
		name string
		slo  SLO
		res  Result
		want bool
	}{
		{"within", SLO{P99: time.Second}, Result{IntendedLatency: hist(int64(time.Millisecond))}, true},
		{"latency breach", SLO{P99: time.Microsecond}, Result{IntendedLatency: hist(int64(time.Millisecond))}, false},
		{"degraded", SLO{P99: time.Second}, Result{Degraded: true}, false},
		{"overload strict", SLO{P99: time.Second}, Result{Offered: 100, Overload: 1}, false},
		{"overload allowed", SLO{P99: time.Second, MaxOverloadFrac: 0.05}, Result{Offered: 100, Overload: 4}, true},
		{"unbounded", SLO{}, Result{IntendedLatency: hist(int64(time.Hour))}, true},
	}
	for _, tc := range cases {
		if got := tc.slo.Met(tc.res); got != tc.want {
			t.Errorf("%s: Met = %v, want %v", tc.name, got, tc.want)
		}
	}
}
