package replay

import (
	"fmt"
	"time"

	"gadget/internal/dist"
	"gadget/internal/kv"
	"gadget/internal/tracing"
)

// This file implements the open-loop replay driver. The closed-loop
// replayer (Run/RunSource) issues the next operation only after the
// previous one returns, so a store stall silently delays every
// subsequent *request* and the measured latencies hide the backlog —
// the coordinated-omission trap. The open-loop driver instead assigns
// each event an intended arrival time from an interarrival Schedule and
// dispatches on the wall clock regardless of store progress: intended
// times never slip, a full in-flight queue is counted as overload (the
// event is delayed, never dropped), and each operation is measured from
// its intended arrival, so queueing delay behind a slow store is
// charged to exactly the operations it delayed.

// Clock abstracts wall time for the open-loop pacer so simulated-clock
// tests can drive schedules without real sleeping. The pacer and the
// collector share one Clock, keeping intended-arrival latencies on a
// single timeline with the schedule.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// wallClock is the real-time Clock used outside tests.
type wallClock struct{}

func (wallClock) Now() time.Time        { return time.Now() }
func (wallClock) Sleep(d time.Duration) { time.Sleep(d) }

// DefaultMaxInFlight bounds the open-loop dispatch queue when
// OpenLoopOptions.MaxInFlight is zero.
const DefaultMaxInFlight = 1024

// OpenLoopOptions configures an open-loop replay run.
type OpenLoopOptions struct {
	// Rate is the offered arrival rate in events/second, realized as a
	// constant-gap schedule. Ignored when Arrivals is set.
	Rate float64
	// Arrivals overrides Rate with an explicit interarrival schedule
	// (Poisson, bursts, ...). The schedule is consumed single-threaded by
	// the pacer, so the usual dist seeding rules give deterministic
	// intended timestamps.
	Arrivals dist.Schedule
	// MaxInFlight bounds the dispatch queue between the pacer and the
	// service worker (0 = DefaultMaxInFlight). An event arriving to a
	// full queue is counted in Result.Overload and delayed — never
	// dropped, so the final store state matches a closed-loop replay of
	// the same trace.
	MaxInFlight int
	// SampleEvery records latency for every Nth operation (0 = every
	// operation).
	SampleEvery int
	// StallTimeout arms the run watchdog, as in Options.StallTimeout.
	StallTimeout time.Duration
	// Observer is handed the run's Collector before the first operation,
	// as in Options.Observer.
	Observer func(*Collector)
	// Tracer samples operations for per-stage latency attribution, as in
	// Options.Tracer; traced open-loop ops additionally carry their
	// dispatch delay as the sched stage.
	Tracer *tracing.Tracer
	// Clock substitutes a fake time source in tests (nil = wall clock).
	Clock Clock
}

// Validate rejects invalid option values. Exactly like Options.Validate
// it rejects rather than corrects: zero values select documented
// defaults, negative ones are errors.
func (o OpenLoopOptions) Validate() error {
	if o.Rate < 0 {
		return fmt.Errorf("replay: open-loop rate must be non-negative, got %v", o.Rate)
	}
	if o.Rate == 0 && o.Arrivals == nil {
		return fmt.Errorf("replay: open-loop replay needs a rate or an arrival schedule")
	}
	if o.MaxInFlight < 0 {
		return fmt.Errorf("replay: max in-flight must be non-negative, got %d", o.MaxInFlight)
	}
	if o.SampleEvery < 0 {
		return fmt.Errorf("replay: sample interval must be non-negative, got %d", o.SampleEvery)
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("replay: stall timeout must be non-negative, got %v", o.StallTimeout)
	}
	if o.Arrivals == nil && o.Rate > 0 && o.StallTimeout > 0 {
		if gap := time.Duration(float64(time.Second) / o.Rate); gap >= o.StallTimeout {
			return fmt.Errorf("replay: stall timeout %v must exceed the %v arrival gap of rate %v",
				o.StallTimeout, gap, o.Rate)
		}
	}
	return nil
}

// pacer walks an arrival schedule on a Clock. Intended times accumulate
// from the schedule alone — they never slip to match a slow consumer,
// which is the property that makes intended-arrival latency immune to
// coordinated omission.
type pacer struct {
	clock Clock
	sched dist.Schedule
	next  time.Time
}

func newPacer(clock Clock, sched dist.Schedule) *pacer {
	return &pacer{clock: clock, sched: sched, next: clock.Now()}
}

// tick blocks until the current event's intended arrival time and
// returns it, along with the dispatch lag: zero when the pacer ran on
// schedule, or how far past the intended time it actually dispatched.
func (p *pacer) tick() (intended time.Time, lag time.Duration) {
	intended = p.next
	p.next = p.next.Add(time.Duration(p.sched.NextGapNs()))
	now := p.clock.Now()
	if d := intended.Sub(now); d > 0 {
		p.clock.Sleep(d)
		return intended, 0
	}
	return intended, now.Sub(intended)
}

// pending is one dispatched event waiting in the in-flight queue.
type pending struct {
	a        kv.Access
	intended time.Time
}

// RunOpenLoop replays a materialized trace against store under an
// open-loop arrival schedule.
func RunOpenLoop(store kv.Store, trace []kv.Access, opts OpenLoopOptions) (Result, error) {
	return RunOpenLoopSource(store, NewSliceSource(trace), opts)
}

// RunOpenLoopSource replays a streaming access source against store
// under an open-loop arrival schedule. Events are applied in source
// order by a single service worker, so the final store state is
// identical to a closed-loop replay of the same source; only the timing
// measurements differ. With StallTimeout set, a stalled run returns its
// partial Result (Degraded=true) and ErrStalled.
func RunOpenLoopSource(store kv.Store, src Source, opts OpenLoopOptions) (Result, error) {
	if err := opts.Validate(); err != nil {
		return Result{}, err
	}
	clock := opts.Clock
	if clock == nil {
		clock = wallClock{}
	}
	sched := opts.Arrivals
	if sched == nil {
		sched = dist.NewConstantRate(opts.Rate)
	}
	depth := opts.MaxInFlight
	if depth == 0 {
		depth = DefaultMaxInFlight
	}
	// Build the collector without the Observer: open-loop accounting must
	// be armed before any telemetry sampler can snapshot the collector.
	c, err := NewCollector(store, Options{SampleEvery: opts.SampleEvery, StallTimeout: opts.StallTimeout, Tracer: opts.Tracer})
	if err != nil {
		return Result{}, err
	}
	c.enableOpenLoop(clock)
	if opts.Observer != nil {
		opts.Observer(c)
	}

	queue := make(chan pending, depth)
	var res Result
	var runErr error
	stalled := Guard(opts.StallTimeout, []*Collector{c}, func() {
		done := make(chan struct{})
		go func() {
			defer close(done)
			for p := range queue {
				if err := c.DoAt(p.a, p.intended); err != nil && runErr == nil {
					// First failure aborts the run; later iterations just
					// drain the queue (DoAt returns ErrAborted immediately)
					// so the pacer's sends cannot wedge.
					runErr = err
					c.Abort()
				}
			}
		}()
		pace := newPacer(clock, sched)
		for !c.aborted.Load() {
			a, ok := src.Next()
			if !ok {
				break
			}
			intended, lag := pace.tick()
			c.noteDispatch(lag)
			select {
			case queue <- pending{a: a, intended: intended}:
			default:
				// Queue full at the intended arrival: overload. The event
				// still goes in (state equivalence with closed loop); the
				// wait is charged to its intended-arrival latency.
				c.overload.Add(1)
				if !blockingSend(c, queue, pending{a: a, intended: intended}) {
					break
				}
			}
		}
		close(queue)
		<-done
		res = c.Finish()
	})
	if stalled {
		return c.Snapshot(), ErrStalled
	}
	return res, runErr
}

// blockingSend delivers p to a full queue, polling the collector's
// aborted flag so a wedged run can still be torn down. Reports whether
// the send succeeded (false: the run was aborted first).
func blockingSend(c *Collector, queue chan<- pending, p pending) bool {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case queue <- p:
			return true
		case <-t.C:
			if c.aborted.Load() {
				return false
			}
		}
	}
}
