package replay_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
	"gadget/internal/vfs"
)

// recoveryTrace builds a deterministic put/merge/delete/get workload.
func recoveryTrace(n int, seed int64) []kv.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]kv.Access, 0, n)
	for i := 0; i < n; i++ {
		a := kv.Access{
			Key:  kv.StateKey{Group: uint64(rng.Intn(16)), Sub: uint64(rng.Intn(64))},
			Size: uint32(8 + rng.Intn(56)),
			Time: int64(i),
		}
		switch rng.Intn(10) {
		case 0:
			a.Op = kv.OpDelete
		case 1, 2:
			a.Op = kv.OpGet
		case 3, 4:
			a.Op = kv.OpMerge
		default:
			a.Op = kv.OpPut
		}
		out = append(out, a)
	}
	return out
}

// oracleState replays the whole trace into a fresh memstore and returns
// its final contents.
func oracleState(t *testing.T, trace []kv.Access) []kv.Entry {
	t.Helper()
	s := memstore.New()
	defer s.Close()
	var keyBuf [kv.KeyLen]byte
	for _, a := range trace {
		if _, err := replay.Apply(s, a, keyBuf[:]); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := kv.ScanAll(s)
	if err != nil {
		t.Fatal(err)
	}
	return entries
}

func sameState(t *testing.T, got kv.Store, want []kv.Entry) {
	t.Helper()
	entries, err := kv.ScanAll(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(want) {
		t.Fatalf("state has %d entries, oracle has %d", len(entries), len(want))
	}
	for i := range entries {
		if entries[i].Key != want[i].Key || !bytes.Equal(entries[i].Value, want[i].Value) {
			t.Fatalf("entry %d: got %v=%q, want %v=%q",
				i, entries[i].Key, entries[i].Value, want[i].Key, want[i].Value)
		}
	}
}

// memFactory models a volatile store: every attempt starts empty.
func memFactory(last *kv.Store) replay.StoreFactory {
	return func(attempt int) (replay.Attempt, error) {
		s := memstore.New()
		*last = s
		return replay.Attempt{Store: s}, nil
	}
}

func TestRunWithRecoveryCheckpointed(t *testing.T) {
	trace := recoveryTrace(2000, 1)
	want := oracleState(t, trace)

	var last kv.Store
	ck := &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "ck", Engine: "memstore"}
	opts := replay.RecoveryOptions{
		CheckpointEvery: 300,
		Checkpointer:    ck,
		CrashAtOps:      []uint64{700, 1550},
	}
	res, err := replay.RunWithRecovery(memFactory(&last), trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()

	if res.Recoveries != 2 {
		t.Fatalf("Recoveries = %d, want 2", res.Recoveries)
	}
	// Crash at 700 recovers from the checkpoint at 600 (replay 100);
	// crash at 1550 from the one at 1500 (replay 50).
	if res.ReplayedOps != 150 {
		t.Fatalf("ReplayedOps = %d, want 150", res.ReplayedOps)
	}
	if res.Ops != uint64(len(trace))+res.ReplayedOps {
		t.Fatalf("Ops = %d, want len(trace)+replayed = %d", res.Ops, uint64(len(trace))+res.ReplayedOps)
	}
	if res.RecoveryTime <= 0 {
		t.Fatalf("RecoveryTime = %v, want > 0", res.RecoveryTime)
	}
	// Checkpoints at 300..1800 except none at 2000 (end); replayed
	// stretches recross 900 and 1500's positions: re-cut checkpoints
	// overwrite the same watermarked file, so the count includes them.
	if res.Checkpoints == 0 || res.CheckpointCost <= 0 || res.CheckpointBytes == 0 {
		t.Fatalf("checkpoint accounting empty: %+v", res)
	}
	sameState(t, last, want)
}

func TestRunWithRecoveryFullReplayWithoutCheckpointer(t *testing.T) {
	trace := recoveryTrace(600, 2)
	want := oracleState(t, trace)

	var last kv.Store
	res, err := replay.RunWithRecovery(memFactory(&last), trace,
		replay.RecoveryOptions{CrashAtOps: []uint64{250}})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if res.Recoveries != 1 || res.ReplayedOps != 250 {
		t.Fatalf("recoveries=%d replayed=%d, want 1/250 (full replay)", res.Recoveries, res.ReplayedOps)
	}
	sameState(t, last, want)
}

func TestRunWithRecoveryNoCrashesMatchesPlainRun(t *testing.T) {
	trace := recoveryTrace(500, 3)
	want := oracleState(t, trace)
	var last kv.Store
	res, err := replay.RunWithRecovery(memFactory(&last), trace, replay.RecoveryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if res.Recoveries != 0 || res.ReplayedOps != 0 || res.Ops != uint64(len(trace)) {
		t.Fatalf("clean run should have no recovery accounting: %+v", res)
	}
	sameState(t, last, want)
}

func TestRunWithRecoveryCrashPastTraceIgnored(t *testing.T) {
	trace := recoveryTrace(100, 4)
	var last kv.Store
	res, err := replay.RunWithRecovery(memFactory(&last), trace,
		replay.RecoveryOptions{CrashAtOps: []uint64{100, 5000}})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	if res.Recoveries != 0 {
		t.Fatalf("crash points at/past the trace end must not fire, got %d", res.Recoveries)
	}
}

func TestRunWithRecoveryCorruptNewestFallsBack(t *testing.T) {
	trace := recoveryTrace(1000, 5)
	want := oracleState(t, trace)

	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore"}
	var last kv.Store
	crashed := false
	open := func(attempt int) (replay.Attempt, error) {
		if attempt == 1 && !crashed {
			crashed = true
			// Corrupt the newest checkpoint before the restore reads it.
			var newest string
			for _, p := range fs.Paths() {
				if p > newest {
					newest = p
				}
			}
			data, err := vfs.ReadFile(fs, newest)
			if err != nil {
				return replay.Attempt{}, err
			}
			data[len(data)/3] ^= 0x10
			if err := vfs.WriteFile(fs, newest, data, 0o644); err != nil {
				return replay.Attempt{}, err
			}
		}
		s := memstore.New()
		last = s
		return replay.Attempt{Store: s}, nil
	}
	res, err := replay.RunWithRecovery(open, trace, replay.RecoveryOptions{
		CheckpointEvery: 200,
		Checkpointer:    ck,
		CrashAtOps:      []uint64{500},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	// Newest checkpoint (watermark 400) is corrupt; recovery falls back
	// to watermark 200, so the replayed delta is 300, not 100.
	if res.Recoveries != 1 || res.ReplayedOps != 300 {
		t.Fatalf("recoveries=%d replayed=%d, want 1/300 (fallback to previous checkpoint)", res.Recoveries, res.ReplayedOps)
	}
	sameState(t, last, want)
}

func TestRecoveryOptionsValidate(t *testing.T) {
	bad := []replay.RecoveryOptions{
		{CheckpointEvery: 10},                      // interval without checkpointer
		{CrashAtOps: []uint64{0}},                  // zero crash point
		{CrashAtOps: []uint64{5, 5}},               // not strictly increasing
		{CrashAtOps: []uint64{9, 3}},               // decreasing
		{Options: replay.Options{SampleEvery: -1}}, // embedded options still checked
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d (%+v): want error", i, o)
		}
	}
	ok := replay.RecoveryOptions{
		CheckpointEvery: 10,
		Checkpointer:    &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "ck"},
		CrashAtOps:      []uint64{1, 2, 30},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestRunWithRecoveryResultString(t *testing.T) {
	trace := recoveryTrace(400, 6)
	var last kv.Store
	ck := &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "ck", Engine: "memstore"}
	res, err := replay.RunWithRecovery(memFactory(&last), trace, replay.RecoveryOptions{
		CheckpointEvery: 100, Checkpointer: ck, CrashAtOps: []uint64{150},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer last.Close()
	s := res.String()
	for _, want := range []string{"recoveries=1", "replayed=50", "ckpts="} {
		if !contains(s, want) {
			t.Errorf("Result.String() = %q, missing %q", s, want)
		}
	}
}

func contains(s, sub string) bool { return bytes.Contains([]byte(s), []byte(sub)) }

func TestMergeResultsSumsRecoveryFields(t *testing.T) {
	a := replay.Result{Recoveries: 1, ReplayedOps: 10, Checkpoints: 2, RecoveryTime: 5, CheckpointCost: 7, CheckpointBytes: 100}
	b := replay.Result{Recoveries: 2, ReplayedOps: 20, Checkpoints: 3, RecoveryTime: 6, CheckpointCost: 8, CheckpointBytes: 200}
	m := replay.MergeResults([]replay.Result{a, b})
	if m.Recoveries != 3 || m.ReplayedOps != 30 || m.Checkpoints != 5 ||
		m.RecoveryTime != 11 || m.CheckpointCost != 15 || m.CheckpointBytes != 300 {
		t.Fatalf("merged recovery fields wrong: %+v", m)
	}
}

func ExampleRunWithRecovery() {
	trace := recoveryTrace(1000, 9)
	var last kv.Store
	ck := &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "checkpoints", Engine: "memstore"}
	res, err := replay.RunWithRecovery(func(attempt int) (replay.Attempt, error) {
		s := memstore.New()
		last = s
		return replay.Attempt{Store: s}, nil
	}, trace, replay.RecoveryOptions{
		CheckpointEvery: 250,
		Checkpointer:    ck,
		CrashAtOps:      []uint64{600},
	})
	if err != nil {
		panic(err)
	}
	defer last.Close()
	fmt.Printf("recoveries=%d replayed=%d\n", res.Recoveries, res.ReplayedOps)
	// Output: recoveries=1 replayed=100
}
