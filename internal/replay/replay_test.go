package replay

import (
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

func mkTrace() []kv.Access {
	k := kv.StateKey{Group: 1, Sub: 2}
	return []kv.Access{
		{Op: kv.OpGet, Key: k}, // miss
		{Op: kv.OpPut, Key: k, Size: 10},
		{Op: kv.OpGet, Key: k}, // hit
		{Op: kv.OpMerge, Key: k, Size: 5},
		{Op: kv.OpFGet, Key: k},
		{Op: kv.OpDelete, Key: k},
		{Op: kv.OpGet, Key: k}, // miss again
	}
}

func TestRunBasics(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	res, err := Run(st, mkTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 7 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Misses != 2 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.Latency.Count() != 7 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
	if res.PerOp[kv.OpGet].Count() != 3 {
		t.Fatalf("get samples = %d", res.PerOp[kv.OpGet].Count())
	}
	if res.String() == "" || res.MeanMicros() < 0 || res.P99Micros() < 0 || res.P999Micros() < 0 {
		t.Fatal("result accessors broken")
	}
}

func TestApplySemantics(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	var buf [kv.KeyLen]byte
	k := kv.StateKey{Group: 9, Sub: 9}
	Apply(st, kv.Access{Op: kv.OpPut, Key: k, Size: 16}, buf[:])
	Apply(st, kv.Access{Op: kv.OpMerge, Key: k, Size: 8}, buf[:])
	v, err := st.Get(k.Bytes())
	if err != nil || len(v) != 24 {
		t.Fatalf("value len = %d, %v", len(v), err)
	}
	// Values are deterministic pseudo-bytes.
	if v[0] != valuePool[0] {
		t.Fatal("value bytes not from the pool")
	}
	if _, err := Apply(st, kv.Access{Op: kv.Op(200), Key: k}, buf[:]); err == nil {
		t.Fatal("unknown op should error")
	}
}

func TestValueOf(t *testing.T) {
	if valueOf(0) != nil {
		t.Fatal("size 0 should be nil")
	}
	if len(valueOf(100)) != 100 {
		t.Fatal("size mismatch")
	}
	if len(valueOf(1<<30)) != len(valuePool) {
		t.Fatal("oversized value should clamp to pool")
	}
}

func TestSampling(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := make([]kv.Access, 1000)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	res, err := Run(st, trace, Options{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("sampled latencies = %d, want 100", res.Latency.Count())
	}
	if res.Ops != 1000 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestServiceRate(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := make([]kv.Access, 50)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	start := time.Now()
	res, err := Run(st, trace, Options{ServiceRate: 1000}) // 50 ops at 1000/s ~ 50ms
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("service rate not honored: %v", elapsed)
	}
	if res.Throughput > 1500 {
		t.Fatalf("throughput %v exceeds service rate", res.Throughput)
	}
}

func TestRunConcurrent(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	mk := func(group uint64) []kv.Access {
		out := make([]kv.Access, 2000)
		for i := range out {
			out[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: group, Sub: uint64(i)}, Size: 8}
		}
		return out
	}
	results, err := RunConcurrent(st, [][]kv.Access{mk(1), mk(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Ops != 2000 || results[1].Ops != 2000 {
		t.Fatalf("results = %+v", results)
	}
}

func TestErrorsSurfaceAfterThreshold(t *testing.T) {
	st := memstore.New()
	st.Close() // closed store: every op errors
	trace := make([]kv.Access, 200)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}}
	}
	if _, err := Run(st, trace, Options{}); err == nil {
		t.Fatal("expected error from closed store")
	}
}

func TestEmptyTrace(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	res, err := Run(st, nil, Options{})
	if err != nil || res.Ops != 0 {
		t.Fatalf("res = %+v, %v", res, err)
	}
}
