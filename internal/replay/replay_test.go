package replay

import (
	"sync/atomic"
	"testing"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

func mkTrace() []kv.Access {
	k := kv.StateKey{Group: 1, Sub: 2}
	return []kv.Access{
		{Op: kv.OpGet, Key: k}, // miss
		{Op: kv.OpPut, Key: k, Size: 10},
		{Op: kv.OpGet, Key: k}, // hit
		{Op: kv.OpMerge, Key: k, Size: 5},
		{Op: kv.OpFGet, Key: k},
		{Op: kv.OpDelete, Key: k},
		{Op: kv.OpGet, Key: k}, // miss again
	}
}

func TestRunBasics(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	res, err := Run(st, mkTrace(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 7 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Misses != 2 {
		t.Fatalf("misses = %d", res.Misses)
	}
	if res.Errors != 0 {
		t.Fatalf("errors = %d", res.Errors)
	}
	if res.Throughput <= 0 {
		t.Fatal("throughput not computed")
	}
	if res.Latency.Count() != 7 {
		t.Fatalf("latency samples = %d", res.Latency.Count())
	}
	if res.PerOp[kv.OpGet].Count() != 3 {
		t.Fatalf("get samples = %d", res.PerOp[kv.OpGet].Count())
	}
	if res.String() == "" || res.MeanMicros() < 0 || res.P99Micros() < 0 || res.P999Micros() < 0 {
		t.Fatal("result accessors broken")
	}
}

func TestApplySemantics(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	var buf [kv.KeyLen]byte
	k := kv.StateKey{Group: 9, Sub: 9}
	Apply(st, kv.Access{Op: kv.OpPut, Key: k, Size: 16}, buf[:])
	Apply(st, kv.Access{Op: kv.OpMerge, Key: k, Size: 8}, buf[:])
	v, err := st.Get(k.Bytes())
	if err != nil || len(v) != 24 {
		t.Fatalf("value len = %d, %v", len(v), err)
	}
	// Values are deterministic pseudo-bytes.
	if v[0] != valuePool[0] {
		t.Fatal("value bytes not from the pool")
	}
	if _, err := Apply(st, kv.Access{Op: kv.Op(200), Key: k}, buf[:]); err == nil {
		t.Fatal("unknown op should error")
	}
}

func TestValueOf(t *testing.T) {
	if valueOf(0) != nil {
		t.Fatal("size 0 should be nil")
	}
	if len(valueOf(100)) != 100 {
		t.Fatal("size mismatch")
	}
	if len(valueOf(1<<30)) != len(valuePool) {
		t.Fatal("oversized value should clamp to pool")
	}
}

func TestSampling(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := make([]kv.Access, 1000)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	res, err := Run(st, trace, Options{SampleEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.Count() != 100 {
		t.Fatalf("sampled latencies = %d, want 100", res.Latency.Count())
	}
	if res.Ops != 1000 {
		t.Fatalf("ops = %d", res.Ops)
	}
}

func TestServiceRate(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := make([]kv.Access, 50)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	start := time.Now()
	res, err := Run(st, trace, Options{ServiceRate: 1000}) // 50 ops at 1000/s ~ 50ms
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 40*time.Millisecond {
		t.Fatalf("service rate not honored: %v", elapsed)
	}
	if res.Throughput > 1500 {
		t.Fatalf("throughput %v exceeds service rate", res.Throughput)
	}
}

func TestRunConcurrent(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	mk := func(group uint64) []kv.Access {
		out := make([]kv.Access, 2000)
		for i := range out {
			out[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: group, Sub: uint64(i)}, Size: 8}
		}
		return out
	}
	results, err := RunConcurrent(st, [][]kv.Access{mk(1), mk(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Ops != 2000 || results[1].Ops != 2000 {
		t.Fatalf("results = %+v", results)
	}
}

func TestErrorsSurfaceAfterThreshold(t *testing.T) {
	st := memstore.New()
	st.Close() // closed store: every op errors
	trace := make([]kv.Access, 200)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}}
	}
	if _, err := Run(st, trace, Options{}); err == nil {
		t.Fatal("expected error from closed store")
	}
}

func TestEmptyTrace(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	res, err := Run(st, nil, Options{})
	if err != nil || res.Ops != 0 {
		t.Fatalf("res = %+v, %v", res, err)
	}
}

func TestOptionsValidation(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	bad := []Options{
		{ServiceRate: -1},
		{SampleEvery: -5},
		{StallTimeout: -time.Second},
		// Stall timeout inside the pacing gap would always fire.
		{ServiceRate: 10, StallTimeout: 50 * time.Millisecond},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid: %+v", i, o)
		}
		if _, err := Run(st, mkTrace(), o); err == nil {
			t.Errorf("Run accepted invalid options %d", i)
		}
	}
	good := []Options{
		{},
		{ServiceRate: 1e6, SampleEvery: 10},
		{ServiceRate: 1e4, StallTimeout: time.Second},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("options %d should be valid: %v", i, err)
		}
	}
}

// stallStore blocks one designated op until released; other ops hit the
// wrapped memstore.
type stallStore struct {
	*memstore.Store
	stallAt int64
	n       atomic.Int64
	release chan struct{}
}

func (s *stallStore) Put(key, value []byte) error {
	if s.n.Add(1) == s.stallAt {
		<-s.release
	}
	return s.Store.Put(key, value)
}

func TestWatchdogAbortsStalledRun(t *testing.T) {
	st := &stallStore{Store: memstore.New(), stallAt: 50, release: make(chan struct{})}
	defer st.Close()
	defer close(st.release)
	trace := make([]kv.Access, 1000)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	start := time.Now()
	res, err := Run(st, trace, Options{StallTimeout: 30 * time.Millisecond})
	if err != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("watchdog too slow")
	}
	if !res.Degraded {
		t.Fatal("partial result not tagged Degraded")
	}
	if res.Ops != 49 {
		t.Fatalf("partial ops = %d, want 49", res.Ops)
	}
}

func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := make([]kv.Access, 500)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	res, err := Run(st, trace, Options{StallTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.Ops != 500 {
		t.Fatalf("healthy run degraded: %+v", res)
	}
}

func TestRunConcurrentWatchdog(t *testing.T) {
	st := &stallStore{Store: memstore.New(), stallAt: 100, release: make(chan struct{})}
	defer st.Close()
	defer close(st.release)
	mk := func(group uint64) []kv.Access {
		out := make([]kv.Access, 5000)
		for i := range out {
			out[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: group, Sub: uint64(i)}, Size: 8}
		}
		return out
	}
	results, err := RunConcurrent(st, [][]kv.Access{mk(1), mk(2)}, Options{StallTimeout: 50 * time.Millisecond})
	if err != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if !r.Degraded {
			t.Fatalf("worker %d result not Degraded", i)
		}
	}
}

func TestErrorClassification(t *testing.T) {
	// A chaos-wrapped store with retries disabled surfaces transient
	// errors, which must be classified as such and not abort the run.
	st := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{Seed: 7, ErrorRate: 0.3})
	defer st.Close()
	trace := make([]kv.Access, 1000)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	res, err := Run(st, trace, Options{})
	if err != nil {
		t.Fatalf("transient errors must not abort: %v", err)
	}
	if res.TransientErrors == 0 || res.FatalErrors != 0 {
		t.Fatalf("classification: %+v", res)
	}
	if res.Errors != res.TransientErrors {
		t.Fatalf("Errors %d != TransientErrors %d", res.Errors, res.TransientErrors)
	}
}

// A store that fails every op transiently (a dead remote server) must
// abort the run promptly once the unbroken streak hits the limit,
// instead of grinding through the whole trace.
func TestConsecutiveTransientErrorsAbort(t *testing.T) {
	st := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{Seed: 3, ErrorRate: 1.0})
	defer st.Close()
	trace := make([]kv.Access, 10*transientStreakLimit)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i)}, Size: 8}
	}
	res, err := Run(st, trace, Options{})
	if err == nil {
		t.Fatal("persistently failing store must abort the run")
	}
	if !res.Degraded {
		t.Fatalf("aborted run not tagged degraded: %+v", res)
	}
	if res.Ops > transientStreakLimit+1 {
		t.Fatalf("run ground through %d ops past the streak limit", res.Ops)
	}
}

func TestResultReportsResilienceCounters(t *testing.T) {
	chaos := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{Seed: 11, ErrorRate: 0.1})
	rs, err := kv.NewResilientStore(chaos, kv.ResilienceOptions{
		MaxRetries: 8, BackoffBase: 5 * time.Microsecond, BackoffMax: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	trace := make([]kv.Access, 2000)
	for i := range trace {
		trace[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i % 50)}, Size: 8}
	}
	res, err := Run(rs, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Retries == 0 {
		t.Fatalf("retries not reported: %+v", res)
	}
	if res.Errors != 0 {
		t.Fatalf("retries should have absorbed all faults: %+v", res)
	}
	// A second run reports only its own delta.
	res2, err := Run(rs, trace[:100], Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Retries >= res.Retries+100 {
		t.Fatalf("second run delta implausible: %d after %d", res2.Retries, res.Retries)
	}
}
