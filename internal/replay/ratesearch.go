package replay

import (
	"errors"
	"fmt"
	"time"

	"gadget/internal/kv"
)

// This file implements sustainable-throughput search: the maximum
// offered rate at which a store still meets a latency SLO measured the
// coordinated-omission-free way (from intended arrival). A single
// "peak throughput" number from a closed-loop run overstates what a
// store can sustain, because the closed loop slows its own arrivals to
// whatever the store absorbs; the sustainable rate is the operating
// point capacity planning actually needs.

// SLO is the service-level objective a probed rate must meet to count
// as sustainable.
type SLO struct {
	// P99 bounds the p99 intended-arrival latency (0 = unbounded).
	P99 time.Duration
	// MaxOverloadFrac bounds the fraction of offered events that found
	// the in-flight queue full. The zero value is strict: any overload
	// fails the probe.
	MaxOverloadFrac float64
}

// Met reports whether an open-loop Result satisfies the SLO. Degraded
// (aborted/stalled) runs never do.
func (s SLO) Met(r Result) bool {
	if r.Degraded {
		return false
	}
	if s.P99 > 0 && r.IntendedP99() > s.P99 {
		return false
	}
	if r.Offered > 0 && float64(r.Overload) > s.MaxOverloadFrac*float64(r.Offered) {
		return false
	}
	return true
}

// RateSearchOptions configures FindSustainableRate.
type RateSearchOptions struct {
	// Low is the initial rate (events/second) assumed near-sustainable;
	// it is probed first and the search returns 0 if it fails. Required.
	Low float64
	// High, when positive, caps the search bracket. When zero the upper
	// bound is found by geometric doubling from Low.
	High float64
	// Tolerance terminates bisection once the bracket is within this
	// relative width of the passing bound (0 = 0.1, i.e. 10%).
	Tolerance float64
	// MaxProbes bounds the total number of probe runs (0 = 16).
	MaxProbes int
	// SLO is the pass criterion applied to each probe's Result.
	SLO SLO
	// Open templates the open-loop options for each probe; Rate and
	// Arrivals are overwritten per probe with the probed constant rate.
	Open OpenLoopOptions
	// Probe, when set, replaces the real open-loop run — the injection
	// seam deterministic tests use. It receives the probed rate and
	// returns the Result the SLO is judged against.
	Probe func(rate float64) (Result, error)
}

// RateProbe records one probe of the search, in execution order.
type RateProbe struct {
	Rate         float64
	Pass         bool
	P99          time.Duration // intended-arrival p99 the probe measured
	OverloadFrac float64
}

// RateSearchResult is the outcome of FindSustainableRate.
type RateSearchResult struct {
	// Sustainable is the highest probed rate that met the SLO (0 when
	// even Low fails).
	Sustainable float64
	// Probes lists every probe run, in order.
	Probes []RateProbe
}

// FindSustainableRate searches for the maximum offered rate at which
// store meets the SLO on the given trace. It probes Low, brackets a
// failing rate (High if set, else geometric doubling from Low), then
// bisects until the bracket is within Tolerance or MaxProbes runs are
// spent, returning the highest rate that passed. The search is
// deterministic given a deterministic probe: identical SLO verdicts
// yield an identical probe sequence.
func FindSustainableRate(store kv.Store, trace []kv.Access, opts RateSearchOptions) (RateSearchResult, error) {
	var out RateSearchResult
	if opts.Low <= 0 {
		return out, fmt.Errorf("replay: rate search needs a positive low bound, got %v", opts.Low)
	}
	if opts.High != 0 && opts.High <= opts.Low {
		return out, fmt.Errorf("replay: rate search high bound %v must exceed low bound %v", opts.High, opts.Low)
	}
	if opts.Tolerance < 0 {
		return out, fmt.Errorf("replay: rate search tolerance must be non-negative, got %v", opts.Tolerance)
	}
	tol := opts.Tolerance
	if tol == 0 {
		tol = 0.1
	}
	budget := opts.MaxProbes
	if budget == 0 {
		budget = 16
	}
	probe := opts.Probe
	if probe == nil {
		probe = func(rate float64) (Result, error) {
			o := opts.Open
			o.Rate = rate
			o.Arrivals = nil
			return RunOpenLoop(store, trace, o)
		}
	}
	try := func(rate float64) (bool, error) {
		res, err := probe(rate)
		if err != nil {
			if !errors.Is(err, ErrStalled) {
				return false, err
			}
			// A stalled probe is a failed rate, not a failed search.
			res.Degraded = true
		}
		pass := opts.SLO.Met(res)
		var frac float64
		if res.Offered > 0 {
			frac = float64(res.Overload) / float64(res.Offered)
		}
		out.Probes = append(out.Probes, RateProbe{Rate: rate, Pass: pass, P99: res.IntendedP99(), OverloadFrac: frac})
		return pass, nil
	}

	ok, err := try(opts.Low)
	if err != nil {
		return out, err
	}
	if !ok {
		return out, nil // even the floor is unsustainable
	}
	lo, hi := opts.Low, 0.0
	if opts.High > 0 {
		ok, err := try(opts.High)
		if err != nil {
			return out, err
		}
		if ok {
			out.Sustainable = opts.High
			return out, nil
		}
		hi = opts.High
	} else {
		for r := 2 * lo; len(out.Probes) < budget; r *= 2 {
			ok, err := try(r)
			if err != nil {
				return out, err
			}
			if !ok {
				hi = r
				break
			}
			lo = r
		}
		if hi == 0 {
			// Never bracketed a failure within the probe budget; the best
			// passing rate is the answer we can certify.
			out.Sustainable = lo
			return out, nil
		}
	}
	for len(out.Probes) < budget && hi-lo > tol*lo {
		mid := (lo + hi) / 2
		ok, err := try(mid)
		if err != nil {
			return out, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	out.Sustainable = lo
	return out, nil
}
