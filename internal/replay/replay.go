// Package replay is Gadget's performance evaluator: it feeds a state
// access stream to a kv.Store, measuring throughput and per-operation
// latency. The built-in trace replayer consumes either materialized
// traces or streaming access sources, supports a configurable service
// rate ("to speed up or slow down the trace arbitrarily", §5.5), and can
// drive one store from several concurrent operators (§6.4).
//
// Operation translation (§5.5) happens inside the store wrappers: the
// LSM engines execute merge natively, while the FASTER- and B+Tree-style
// engines implement Merge as read-modify-write, exactly the mapping the
// paper applies (merge -> rmw / read+update).
package replay

import (
	"fmt"
	"sync"
	"time"

	"gadget/internal/kv"
	"gadget/internal/stats"
)

// Options configures a replay run.
type Options struct {
	// ServiceRate limits the replay to this many ops/second (0 = replay
	// as fast as the store allows).
	ServiceRate float64
	// SampleEvery records latency for every Nth operation (default 1,
	// i.e. every operation).
	SampleEvery int
}

// Result aggregates a replay run's measurements.
type Result struct {
	// Ops is the number of operations applied.
	Ops uint64
	// Misses counts reads of absent keys (expected in streaming traces:
	// first access of every window is a miss).
	Misses uint64
	// Errors counts unexpected store errors.
	Errors uint64
	// Duration is the wall time of the run.
	Duration time.Duration
	// Throughput is Ops divided by Duration, in ops/second.
	Throughput float64
	// Latency is the overall latency histogram in nanoseconds.
	Latency *stats.Histogram
	// PerOp holds one latency histogram per operation type.
	PerOp [kv.NumOps]*stats.Histogram
}

// P999Micros returns the overall p99.9 latency in microseconds.
func (r Result) P999Micros() float64 { return float64(r.Latency.Quantile(0.999)) / 1e3 }

// P99Micros returns the overall p99 latency in microseconds.
func (r Result) P99Micros() float64 { return float64(r.Latency.Quantile(0.99)) / 1e3 }

// MeanMicros returns the mean latency in microseconds.
func (r Result) MeanMicros() float64 { return r.Latency.Mean() / 1e3 }

func (r Result) String() string {
	return fmt.Sprintf("ops=%d thr=%.0f/s mean=%.2fus p99=%.2fus p99.9=%.2fus",
		r.Ops, r.Throughput, r.MeanMicros(), r.P99Micros(), r.P999Micros())
}

// valuePool provides deterministic pseudo-random value bytes without
// allocating per operation. Stores copy what they retain, so slices of
// the shared buffer are safe to hand out.
var valuePool = func() []byte {
	buf := make([]byte, 1<<20)
	x := uint64(0x243F6A8885A308D3)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}()

// valueOf returns size deterministic bytes (shared, read-only).
func valueOf(size uint32) []byte {
	if size == 0 {
		return nil
	}
	if int(size) > len(valuePool) {
		size = uint32(len(valuePool))
	}
	return valuePool[:size]
}

// Apply executes one access against the store, returning (missed, error).
func Apply(store kv.Store, a kv.Access, keyBuf []byte) (bool, error) {
	key := a.Key.Encode(keyBuf[:0])
	switch a.Op {
	case kv.OpGet, kv.OpFGet:
		_, err := store.Get(key)
		if err == kv.ErrNotFound {
			return true, nil
		}
		return false, err
	case kv.OpPut:
		return false, store.Put(key, valueOf(a.Size))
	case kv.OpMerge:
		return false, store.Merge(key, valueOf(a.Size))
	case kv.OpDelete:
		return false, store.Delete(key)
	default:
		return false, fmt.Errorf("replay: unknown op %d", a.Op)
	}
}

// Source yields accesses to replay.
type Source interface {
	Next() (kv.Access, bool)
}

// SliceSource replays a materialized trace.
type SliceSource struct {
	trace []kv.Access
	i     int
}

// NewSliceSource wraps a trace slice (not copied).
func NewSliceSource(trace []kv.Access) *SliceSource { return &SliceSource{trace: trace} }

func (s *SliceSource) Next() (kv.Access, bool) {
	if s.i >= len(s.trace) {
		return kv.Access{}, false
	}
	a := s.trace[s.i]
	s.i++
	return a, true
}

// Run replays a materialized trace against store.
func Run(store kv.Store, trace []kv.Access, opts Options) (Result, error) {
	return RunSource(store, NewSliceSource(trace), opts)
}

// RunSource replays a streaming access source against store.
func RunSource(store kv.Store, src Source, opts Options) (Result, error) {
	c := NewCollector(store, opts)
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if err := c.Do(a); err != nil {
			return c.Finish(), err
		}
	}
	return c.Finish(), nil
}

// Collector measures accesses applied one at a time — the online mode of
// the harness, where the workload generator issues requests to the store
// as it produces them.
type Collector struct {
	store  kv.Store
	opts   Options
	sample uint64
	res    Result
	keyBuf [kv.KeyLen]byte
	i      uint64
	start  time.Time
}

// NewCollector starts a measured run against store.
func NewCollector(store kv.Store, opts Options) *Collector {
	sample := opts.SampleEvery
	if sample <= 0 {
		sample = 1
	}
	c := &Collector{store: store, opts: opts, sample: uint64(sample), start: time.Now()}
	c.res.Latency = stats.NewHistogram()
	for i := range c.res.PerOp {
		c.res.PerOp[i] = stats.NewHistogram()
	}
	return c
}

// Do applies and measures one access. It returns an error only after the
// store has failed persistently.
func (c *Collector) Do(a kv.Access) error {
	if c.opts.ServiceRate > 0 {
		// Pace the replay: operation i is due at start + i/rate.
		due := c.start.Add(time.Duration(float64(c.i) / c.opts.ServiceRate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	measure := c.i%c.sample == 0
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	missed, err := Apply(c.store, a, c.keyBuf[:])
	if measure {
		lat := time.Since(t0).Nanoseconds()
		c.res.Latency.Record(lat)
		c.res.PerOp[a.Op].Record(lat)
	}
	if missed {
		c.res.Misses++
	}
	c.i++
	if err != nil {
		c.res.Errors++
		if c.res.Errors > 100 {
			return fmt.Errorf("replay: too many store errors, last: %w", err)
		}
	}
	return nil
}

// Finish seals the run and returns its measurements.
func (c *Collector) Finish() Result {
	c.res.Ops = c.i
	c.res.Duration = time.Since(c.start)
	if c.res.Duration > 0 {
		c.res.Throughput = float64(c.res.Ops) / c.res.Duration.Seconds()
	}
	return c.res
}

// RunConcurrent replays several traces against one shared store, one
// goroutine per trace — the paper's concurrent-operators experiment
// (§6.4: multiple Gadget instances configured to access the same store).
func RunConcurrent(store kv.Store, traces [][]kv.Access, opts Options) ([]Result, error) {
	results := make([]Result, len(traces))
	errs := make([]error, len(traces))
	var wg sync.WaitGroup
	for i, tr := range traces {
		wg.Add(1)
		go func(i int, tr []kv.Access) {
			defer wg.Done()
			results[i], errs[i] = Run(store, tr, opts)
		}(i, tr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
