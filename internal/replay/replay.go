// Package replay is Gadget's performance evaluator: it feeds a state
// access stream to a kv.Store, measuring throughput and per-operation
// latency. The built-in trace replayer consumes either materialized
// traces or streaming access sources, supports a configurable service
// rate ("to speed up or slow down the trace arbitrarily", §5.5), and can
// drive one store from several concurrent operators (§6.4).
//
// Operation translation (§5.5) happens inside the store wrappers: the
// LSM engines execute merge natively, while the FASTER- and B+Tree-style
// engines implement Merge as read-modify-write, exactly the mapping the
// paper applies (merge -> rmw / read+update).
//
// The evaluator is failure-aware: store errors are classified transient
// vs fatal (kv.Transient), resilience counters of a wrapped store
// (kv.ResilienceReporter) are reported as per-run deltas, and a run
// watchdog (Options.StallTimeout) aborts stalled runs with partial
// results tagged Degraded instead of hanging.
package replay

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"gadget/internal/kv"
	"gadget/internal/stats"
	"gadget/internal/tracing"
)

// Options configures a replay run.
type Options struct {
	// ServiceRate limits the replay to this many ops/second (0 = replay
	// as fast as the store allows). Negative rates are invalid.
	ServiceRate float64
	// SampleEvery records latency for every Nth operation (0 = every
	// operation). Negative values are invalid.
	SampleEvery int
	// StallTimeout arms the run watchdog: when no operation completes
	// for this long, the run is aborted and its partial Result is
	// returned tagged Degraded with ErrStalled (0 = watchdog disabled).
	// Must comfortably exceed the pacing gap implied by ServiceRate.
	StallTimeout time.Duration
	// Observer, when set, is handed every Collector the run creates,
	// right before its first operation. Telemetry samplers hook in here
	// to Snapshot live runs regardless of which Run* entry point drives
	// them. The callback must not retain locks or block.
	Observer func(*Collector)
	// Tracer, when set, samples operations for per-stage latency
	// attribution: sampled ops travel the stack as kv.TracedOp carrying
	// a tracing.Ctx, and unsampled ops take the plain path untouched.
	// Latency histograms and counters are identical either way.
	Tracer *tracing.Tracer
}

// Validate rejects option values that earlier versions silently
// "corrected": negative service rates, negative sampling intervals, and
// negative watchdog timeouts. Zero values select the documented default.
func (o Options) Validate() error {
	if o.ServiceRate < 0 {
		return fmt.Errorf("replay: service rate must be non-negative, got %v", o.ServiceRate)
	}
	if o.SampleEvery < 0 {
		return fmt.Errorf("replay: sample interval must be non-negative, got %d", o.SampleEvery)
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("replay: stall timeout must be non-negative, got %v", o.StallTimeout)
	}
	if o.ServiceRate > 0 && o.StallTimeout > 0 {
		if gap := time.Duration(float64(time.Second) / o.ServiceRate); gap >= o.StallTimeout {
			return fmt.Errorf("replay: stall timeout %v must exceed the %v pacing gap of service rate %v",
				o.StallTimeout, gap, o.ServiceRate)
		}
	}
	return nil
}

// fatalErrorLimit aborts a run once this many fatal (non-transient)
// store errors have accumulated.
const fatalErrorLimit = 100

// transientStreakLimit aborts a run once this many transient errors
// arrive with no success in between. Scattered transient failures are
// tolerated in any quantity (retry middleware and chaos tests depend on
// that), but an unbroken streak means the store is down — a dead remote
// server, say — and the run must stop promptly instead of grinding
// through the remaining trace.
const transientStreakLimit = 1000

// Result aggregates a replay run's measurements.
type Result struct {
	// Ops is the number of operations applied.
	Ops uint64
	// Misses counts reads of absent keys (expected in streaming traces:
	// first access of every window is a miss). Misses are never errors.
	Misses uint64
	// Errors counts unexpected store errors
	// (Errors == TransientErrors + FatalErrors).
	Errors uint64
	// TransientErrors counts errors classified retryable (kv.Transient):
	// injected faults, timeouts, open-breaker rejections surfacing after
	// the store's own retry budget.
	TransientErrors uint64
	// FatalErrors counts non-transient errors; more than fatalErrorLimit
	// of them aborts the run.
	FatalErrors uint64
	// Retries, Timeouts, BreakerTrips, DegradedOps are the per-run deltas
	// of the store's resilience counters when the store implements
	// kv.ResilienceReporter (zero otherwise). When several concurrent
	// runs share one store, each delta covers the whole store, not one
	// runner.
	Retries      uint64
	Timeouts     uint64
	BreakerTrips uint64
	DegradedOps  uint64
	// Engine holds the per-run delta of the store's introspection
	// counters when the store implements kv.Introspector (nil otherwise).
	// Like the resilience deltas, it covers the whole store, so
	// concurrent runs sharing one store each see store-wide movement.
	Engine map[string]int64
	// Degraded marks a partial result: the run was aborted (watchdog
	// stall, error limit) before the source drained.
	Degraded bool
	// Duration is the wall time of the run.
	Duration time.Duration
	// Throughput is Ops divided by Duration, in ops/second.
	Throughput float64
	// Latency is the overall latency histogram in nanoseconds. For
	// open-loop runs this is the *service-time* histogram (measured from
	// the moment the store call starts); see IntendedLatency.
	Latency *stats.Histogram
	// PerOp holds one latency histogram per operation type.
	PerOp [kv.NumOps]*stats.Histogram

	// Open-loop measurements, populated only by the open-loop driver
	// (zero / nil for closed-loop runs).

	// Offered is the number of events the arrival schedule dispatched.
	Offered uint64
	// Overload counts events that found the bounded in-flight queue full
	// at their intended arrival time. Overloaded events are delayed, not
	// dropped (state equivalence with closed-loop replay is preserved);
	// the delay is charged to IntendedLatency instead of being absorbed
	// into a rescheduled arrival.
	Overload uint64
	// OfferedRate is Offered divided by Duration (events/second): the
	// load the schedule actually presented.
	OfferedRate float64
	// AchievedRate is the completion rate (== Throughput for open-loop
	// runs; kept explicit so merged and printed results stay coherent).
	AchievedRate float64
	// MaxLag is the maximum dispatch lag: how far the pacer fell behind
	// the intended schedule when handing events to the in-flight queue.
	MaxLag time.Duration
	// IntendedLatency measures each operation from its *intended*
	// arrival time to completion, so queueing delay behind a slow store
	// is charged to the operations it really delayed — the
	// coordinated-omission-free view (nil for closed-loop runs).
	IntendedLatency *stats.Histogram

	// Crash-recovery measurements, populated by RunWithRecovery (zero
	// for runs without a crash schedule).

	// Recoveries counts completed crash→reopen→restore cycles.
	Recoveries uint64
	// RecoveryTime is the total downtime across recoveries, measured
	// from each crash to the moment the restored store is ready to
	// resume — the run's RTO. Divide by Recoveries for the mean.
	RecoveryTime time.Duration
	// ReplayedOps counts trace operations re-applied because they
	// post-dated the checkpoint recovered from — the work a checkpoint
	// did not save, the harness's RPO proxy. Ops includes replayed
	// applications, so Ops - ReplayedOps is the trace's logical length
	// on a clean finish.
	ReplayedOps uint64
	// Checkpoints counts checkpoints taken during the run.
	Checkpoints uint64
	// CheckpointCost is the total wall time spent writing checkpoints
	// (charged inline: the run is paused while a checkpoint is cut).
	CheckpointCost time.Duration
	// CheckpointBytes is the total bytes written into checkpoints.
	CheckpointBytes uint64
}

// P999Micros returns the overall p99.9 latency in microseconds.
func (r Result) P999Micros() float64 { return float64(r.Latency.Quantile(0.999)) / 1e3 }

// P99Micros returns the overall p99 latency in microseconds.
func (r Result) P99Micros() float64 { return float64(r.Latency.Quantile(0.99)) / 1e3 }

// MeanMicros returns the mean latency in microseconds.
func (r Result) MeanMicros() float64 { return r.Latency.Mean() / 1e3 }

// IntendedP99 returns the p99 latency measured from intended arrival
// time (zero for closed-loop runs, which have no intended schedule).
func (r Result) IntendedP99() time.Duration {
	if r.IntendedLatency == nil {
		return 0
	}
	return time.Duration(r.IntendedLatency.Quantile(0.99))
}

// IntendedP99Micros returns IntendedP99 in microseconds.
func (r Result) IntendedP99Micros() float64 { return float64(r.IntendedP99()) / 1e3 }

func (r Result) String() string {
	// One Quantiles pass over the shared ladder — the same derivation the
	// Prometheus exposition renders, so the two views cannot drift.
	q := r.Latency.Quantiles(stats.SummaryQuantiles)
	s := fmt.Sprintf("ops=%d thr=%.0f/s mean=%.2fus p50=%.2fus p90=%.2fus p99=%.2fus p99.9=%.2fus",
		r.Ops, r.Throughput, r.MeanMicros(),
		float64(q[0])/1e3, float64(q[1])/1e3, float64(q[2])/1e3, float64(q[3])/1e3)
	if r.Offered > 0 {
		s += fmt.Sprintf(" offered=%.0f/s achieved=%.0f/s lag=%v overload=%d",
			r.OfferedRate, r.AchievedRate, r.MaxLag.Round(time.Microsecond), r.Overload)
		if r.IntendedLatency != nil {
			s += fmt.Sprintf(" ip99=%.2fus", r.IntendedP99Micros())
		}
	}
	if r.Errors > 0 || r.Retries > 0 || r.BreakerTrips > 0 {
		s += fmt.Sprintf(" errs=%d(transient=%d) retries=%d trips=%d", r.Errors, r.TransientErrors, r.Retries, r.BreakerTrips)
	}
	if r.Recoveries > 0 {
		s += fmt.Sprintf(" recoveries=%d rto=%v replayed=%d",
			r.Recoveries, (r.RecoveryTime / time.Duration(r.Recoveries)).Round(time.Microsecond), r.ReplayedOps)
	}
	if r.Checkpoints > 0 {
		s += fmt.Sprintf(" ckpts=%d ckpt_cost=%v", r.Checkpoints, r.CheckpointCost.Round(time.Microsecond))
	}
	if r.Degraded {
		s += " DEGRADED"
	}
	return s + r.engineSummary()
}

// engineSummary renders the most diagnostic introspection deltas —
// compaction count, block cache hit rate, write stall time — as a
// compact suffix, or "" when the store exposes none of them.
func (r Result) engineSummary() string {
	if len(r.Engine) == 0 {
		return ""
	}
	var parts []string
	if v, ok := r.Engine["lsm.compactions"]; ok && v > 0 {
		parts = append(parts, fmt.Sprintf("compactions=%d", v))
	}
	hits, misses := r.Engine["lsm.cache_hits"], r.Engine["lsm.cache_misses"]
	if hits+misses > 0 {
		parts = append(parts, fmt.Sprintf("cache_hit=%.1f%%", 100*float64(hits)/float64(hits+misses)))
	}
	if ns, ok := r.Engine["lsm.stall_nanos"]; ok && ns > 0 {
		parts = append(parts, fmt.Sprintf("stall=%s", time.Duration(ns).Round(time.Microsecond)))
	}
	if len(parts) == 0 {
		return ""
	}
	return " [" + strings.Join(parts, " ") + "]"
}

// valuePool provides deterministic pseudo-random value bytes without
// allocating per operation. Stores copy what they retain, so slices of
// the shared buffer are safe to hand out.
var valuePool = func() []byte {
	buf := make([]byte, 1<<20)
	x := uint64(0x243F6A8885A308D3)
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
	return buf
}()

// valueOf returns size deterministic bytes (shared, read-only).
func valueOf(size uint32) []byte {
	if size == 0 {
		return nil
	}
	if int(size) > len(valuePool) {
		size = uint32(len(valuePool))
	}
	return valuePool[:size]
}

// Apply executes one access against the store, returning (missed, error).
func Apply(store kv.Store, a kv.Access, keyBuf []byte) (bool, error) {
	key := a.Key.Encode(keyBuf[:0])
	switch a.Op {
	case kv.OpGet, kv.OpFGet:
		_, err := store.Get(key)
		if errors.Is(err, kv.ErrNotFound) {
			return true, nil
		}
		return false, err
	case kv.OpPut:
		return false, store.Put(key, valueOf(a.Size))
	case kv.OpMerge:
		return false, store.Merge(key, valueOf(a.Size))
	case kv.OpDelete:
		return false, store.Delete(key)
	case kv.OpScan:
		// A scan access covers the tail of its key group: the consistent
		// range [Key, {Key.Group, MaxSub}]. An empty result is not a miss.
		_, err := kv.ScanRange(store, a.Key, a.Key.GroupEnd())
		return false, err
	default:
		return false, fmt.Errorf("replay: unknown op %d", a.Op)
	}
}

// applyTraced mirrors Apply for a sampled operation: the same op
// semantics (including miss classification and scan bounds), dispatched
// through kv.DoTraced so every layer that understands the trace context
// attributes its share of the latency.
func applyTraced(store kv.Store, a kv.Access, keyBuf []byte, tc *tracing.Ctx) (bool, error) {
	op := kv.TracedOp{Op: a.Op}
	switch a.Op {
	case kv.OpGet, kv.OpFGet, kv.OpDelete:
		op.Key = a.Key.Encode(keyBuf[:0])
	case kv.OpPut, kv.OpMerge:
		op.Key = a.Key.Encode(keyBuf[:0])
		op.Val = valueOf(a.Size)
	case kv.OpScan:
		op.Lo, op.Hi = a.Key, a.Key.GroupEnd()
	default:
		return false, fmt.Errorf("replay: unknown op %d", a.Op)
	}
	_, err := kv.DoTraced(store, tc, op)
	if (a.Op == kv.OpGet || a.Op == kv.OpFGet) && errors.Is(err, kv.ErrNotFound) {
		return true, nil
	}
	return false, err
}

// Source yields accesses to replay.
type Source interface {
	Next() (kv.Access, bool)
}

// SliceSource replays a materialized trace.
type SliceSource struct {
	trace []kv.Access
	i     int
}

// NewSliceSource wraps a trace slice (not copied).
func NewSliceSource(trace []kv.Access) *SliceSource { return &SliceSource{trace: trace} }

func (s *SliceSource) Next() (kv.Access, bool) {
	if s.i >= len(s.trace) {
		return kv.Access{}, false
	}
	a := s.trace[s.i]
	s.i++
	return a, true
}

// Run replays a materialized trace against store.
func Run(store kv.Store, trace []kv.Access, opts Options) (Result, error) {
	return RunSource(store, NewSliceSource(trace), opts)
}

// RunSource replays a streaming access source against store. With
// Options.StallTimeout set, a stalled run returns its partial Result
// (Degraded=true) and ErrStalled instead of hanging.
func RunSource(store kv.Store, src Source, opts Options) (Result, error) {
	c, err := NewCollector(store, opts)
	if err != nil {
		return Result{}, err
	}
	var res Result
	var runErr error
	stalled := Guard(opts.StallTimeout, []*Collector{c}, func() {
		for {
			a, ok := src.Next()
			if !ok {
				break
			}
			if err := c.Do(a); err != nil {
				runErr = err
				break
			}
		}
		res = c.Finish()
	})
	if stalled {
		return c.Snapshot(), ErrStalled
	}
	return res, runErr
}

// Collector measures accesses applied one at a time — the online mode of
// the harness, where the workload generator issues requests to the store
// as it produces them. Counter updates are atomic so a Watchdog can
// Snapshot a collector owned by another (possibly stuck) goroutine.
type Collector struct {
	store  kv.Store
	opts   Options
	sample uint64
	res    Result
	keyBuf [kv.KeyLen]byte
	start  time.Time

	i               atomic.Uint64
	misses          atomic.Uint64
	transientErr    atomic.Uint64
	transientStreak atomic.Uint64 // consecutive transient errors, reset on success
	fatalErr        atomic.Uint64
	lastProgress    atomic.Int64 // UnixNano of the last completed op
	aborted         atomic.Bool
	finished        atomic.Bool

	// Open-loop accounting, armed by enableOpenLoop. The clock is the
	// pacer's notion of time (a fake in simulated-clock tests), so
	// intended-arrival latencies stay on one timeline with the schedule.
	clock    Clock
	offered  atomic.Uint64
	overload atomic.Uint64
	maxLagNs atomic.Int64

	// Recovery accounting, fed by NoteRecovery/NoteCheckpoint. Each
	// attempt of a recovery run has its own collector carrying only its
	// own deltas, so merging attempt results never double counts.
	recoveries      atomic.Uint64
	recoveryNs      atomic.Int64
	replayedOps     atomic.Uint64
	checkpoints     atomic.Uint64
	checkpointNs    atomic.Int64
	checkpointBytes atomic.Uint64

	base    kv.ResilienceCounters
	rep     kv.ResilienceReporter
	degrade atomic.Bool

	// introBase is the store's introspection snapshot at run start (nil
	// when the store is not a kv.Introspector); fill subtracts it.
	introBase map[string]int64

	// sealMu serializes Finish and Snapshot: a watchdog may snapshot a
	// collector whose worker is concurrently finishing.
	sealMu sync.Mutex
}

// NewCollector starts a measured run against store. It rejects invalid
// options instead of silently correcting them.
func NewCollector(store kv.Store, opts Options) (*Collector, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	sample := opts.SampleEvery
	if sample == 0 {
		sample = 1
	}
	c := &Collector{store: store, opts: opts, sample: uint64(sample), start: time.Now()}
	c.res.Latency = stats.NewHistogram()
	for i := range c.res.PerOp {
		c.res.PerOp[i] = stats.NewHistogram()
	}
	if rep, ok := store.(kv.ResilienceReporter); ok {
		c.rep = rep
		c.base = rep.ResilienceCounters()
	}
	c.introBase = kv.MetricsOf(store)
	c.lastProgress.Store(time.Now().UnixNano())
	if opts.Observer != nil {
		opts.Observer(c)
	}
	return c, nil
}

// Store returns the store this collector measures (telemetry samplers
// reached via Options.Observer use it to introspect the engine).
func (c *Collector) Store() kv.Store { return c.store }

// enableOpenLoop arms the collector's open-loop accounting: the
// intended-arrival latency histogram and the clock shared with the
// pacer. Must be called before the first operation (and before the
// collector is handed to any Observer).
func (c *Collector) enableOpenLoop(clock Clock) {
	c.clock = clock
	c.res.IntendedLatency = stats.NewHistogram()
}

// DoAt applies and measures one access dispatched by the open-loop
// pacer: service latency is recorded exactly as Do does, and the
// operation is additionally charged from its intended arrival time, so
// queueing delay behind a slow store shows up in IntendedLatency.
// Traced operations carry that same dispatch delay as StageSched.
func (c *Collector) DoAt(a kv.Access, intended time.Time) error {
	err := c.do(a, c.clock.Now().Sub(intended))
	if !errors.Is(err, ErrAborted) {
		c.res.IntendedLatency.Record(c.clock.Now().Sub(intended).Nanoseconds())
	}
	return err
}

// noteDispatch records one scheduled event handed to the in-flight
// queue, and how far behind schedule the pacer was when it did.
func (c *Collector) noteDispatch(lag time.Duration) {
	c.offered.Add(1)
	ns := lag.Nanoseconds()
	for {
		cur := c.maxLagNs.Load()
		if ns <= cur || c.maxLagNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// ErrAborted is returned by Do after the collector was aborted (by the
// run watchdog or an explicit Abort call).
var ErrAborted = errors.New("replay: run aborted")

// Abort makes every subsequent Do fail with ErrAborted and tags the
// result Degraded. Safe to call from any goroutine.
func (c *Collector) Abort() {
	c.aborted.Store(true)
	c.degrade.Store(true)
}

// Do applies and measures one access. It returns an error only after the
// store has failed persistently or the run was aborted.
func (c *Collector) Do(a kv.Access) error { return c.do(a, -1) }

// do is the shared Do/DoAt body. sched < 0 means the access has no
// intended-arrival schedule (closed-loop); otherwise it is the dispatch
// delay charged to a traced op's StageSched.
func (c *Collector) do(a kv.Access, sched time.Duration) error {
	if c.aborted.Load() {
		return ErrAborted
	}
	i := c.i.Load()
	if c.opts.ServiceRate > 0 {
		// Pace the replay: operation i is due at start + i/rate.
		due := c.start.Add(time.Duration(float64(i) / c.opts.ServiceRate * float64(time.Second)))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	measure := i%c.sample == 0
	var tc *tracing.Ctx
	if c.opts.Tracer != nil {
		tc = c.opts.Tracer.Start(uint8(a.Op))
		if sched >= 0 {
			tc.Add(tracing.StageSched, sched.Nanoseconds())
		}
	}
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	var missed bool
	var err error
	if tc != nil {
		missed, err = applyTraced(c.store, a, c.keyBuf[:], tc)
		c.opts.Tracer.Finish(tc)
	} else {
		missed, err = Apply(c.store, a, c.keyBuf[:])
	}
	if measure {
		lat := time.Since(t0).Nanoseconds()
		c.res.Latency.Record(lat)
		c.res.PerOp[a.Op].Record(lat)
	}
	if missed {
		c.misses.Add(1)
	}
	c.i.Add(1)
	c.lastProgress.Store(time.Now().UnixNano())
	if err != nil {
		if kv.Transient(err) {
			c.transientErr.Add(1)
			if streak := c.transientStreak.Add(1); streak >= transientStreakLimit {
				c.degrade.Store(true)
				return fmt.Errorf("replay: store persistently failing (%d consecutive transient errors), last: %w", streak, err)
			}
		} else if fatal := c.fatalErr.Add(1); fatal > fatalErrorLimit {
			c.degrade.Store(true)
			return fmt.Errorf("replay: too many fatal store errors (%d), last: %w", fatal, err)
		}
	} else if c.transientStreak.Load() != 0 {
		c.transientStreak.Store(0)
	}
	return nil
}

// NoteRecovery records one completed crash→restore cycle: its downtime
// and the number of trace ops the resumed run will have to re-apply.
func (c *Collector) NoteRecovery(downtime time.Duration, replayed uint64) {
	c.recoveries.Add(1)
	c.recoveryNs.Add(downtime.Nanoseconds())
	c.replayedOps.Add(replayed)
}

// NoteCheckpoint records one checkpoint cut during the run.
func (c *Collector) NoteCheckpoint(cost time.Duration, bytes uint64) {
	c.checkpoints.Add(1)
	c.checkpointNs.Add(cost.Nanoseconds())
	c.checkpointBytes.Add(bytes)
}

// fill copies the atomic counters into a Result.
func (c *Collector) fill(res *Result) {
	res.Ops = c.i.Load()
	res.Misses = c.misses.Load()
	res.TransientErrors = c.transientErr.Load()
	res.FatalErrors = c.fatalErr.Load()
	res.Errors = res.TransientErrors + res.FatalErrors
	res.Degraded = c.degrade.Load()
	if c.rep != nil {
		d := c.rep.ResilienceCounters().Sub(c.base)
		res.Retries = d.Retries
		res.Timeouts = d.Timeouts
		res.BreakerTrips = d.BreakerTrips
		res.DegradedOps = d.Degraded
	}
	res.Engine = kv.MetricsDelta(kv.MetricsOf(c.store), c.introBase)
	res.Recoveries = c.recoveries.Load()
	res.RecoveryTime = time.Duration(c.recoveryNs.Load())
	res.ReplayedOps = c.replayedOps.Load()
	res.Checkpoints = c.checkpoints.Load()
	res.CheckpointCost = time.Duration(c.checkpointNs.Load())
	res.CheckpointBytes = c.checkpointBytes.Load()
	res.Duration = time.Since(c.start)
	if res.Duration > 0 {
		res.Throughput = float64(res.Ops) / res.Duration.Seconds()
	}
	if c.res.IntendedLatency != nil {
		res.Offered = c.offered.Load()
		res.Overload = c.overload.Load()
		res.MaxLag = time.Duration(c.maxLagNs.Load())
		res.AchievedRate = res.Throughput
		if res.Duration > 0 {
			res.OfferedRate = float64(res.Offered) / res.Duration.Seconds()
		}
	}
}

// Finish seals the run and returns its measurements.
func (c *Collector) Finish() Result {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	c.finished.Store(true)
	c.fill(&c.res)
	return c.res
}

// Snapshot returns a point-in-time copy of the measurements without
// sealing the run. Safe to call concurrently with Do; the histograms are
// copied.
func (c *Collector) Snapshot() Result {
	c.sealMu.Lock()
	defer c.sealMu.Unlock()
	res := c.res
	res.Latency = stats.NewHistogram()
	res.Latency.Merge(c.res.Latency)
	for i := range res.PerOp {
		res.PerOp[i] = stats.NewHistogram()
		res.PerOp[i].Merge(c.res.PerOp[i])
	}
	if c.res.IntendedLatency != nil {
		res.IntendedLatency = stats.NewHistogram()
		res.IntendedLatency.Merge(c.res.IntendedLatency)
	}
	c.fill(&res)
	return res
}

// MergeResults folds per-worker Results into one run-wide view: op,
// error, and open-loop offered/overload counters sum, latency histograms
// (service and intended-arrival) merge, Duration is the longest
// worker's, MaxLag the worst worker's, and the run-wide rates
// (Throughput, OfferedRate, AchievedRate) are recomputed from the merged
// totals. The resilience and engine deltas are NOT summed — when workers
// share one store each worker's delta already covers the whole store, so
// the merge takes the maximum seen instead of multiply counting it.
func MergeResults(results []Result) Result {
	out := Result{Latency: stats.NewHistogram()}
	for i := range out.PerOp {
		out.PerOp[i] = stats.NewHistogram()
	}
	for _, r := range results {
		out.Ops += r.Ops
		out.Misses += r.Misses
		out.Errors += r.Errors
		out.TransientErrors += r.TransientErrors
		out.FatalErrors += r.FatalErrors
		out.Offered += r.Offered
		out.Overload += r.Overload
		out.Recoveries += r.Recoveries
		out.RecoveryTime += r.RecoveryTime
		out.ReplayedOps += r.ReplayedOps
		out.Checkpoints += r.Checkpoints
		out.CheckpointCost += r.CheckpointCost
		out.CheckpointBytes += r.CheckpointBytes
		out.Retries = max(out.Retries, r.Retries)
		out.Timeouts = max(out.Timeouts, r.Timeouts)
		out.BreakerTrips = max(out.BreakerTrips, r.BreakerTrips)
		out.DegradedOps = max(out.DegradedOps, r.DegradedOps)
		out.Degraded = out.Degraded || r.Degraded
		if r.Duration > out.Duration {
			out.Duration = r.Duration
		}
		if r.MaxLag > out.MaxLag {
			out.MaxLag = r.MaxLag
		}
		if r.Latency != nil {
			out.Latency.Merge(r.Latency)
		}
		if r.IntendedLatency != nil {
			if out.IntendedLatency == nil {
				out.IntendedLatency = stats.NewHistogram()
			}
			out.IntendedLatency.Merge(r.IntendedLatency)
		}
		for i, h := range r.PerOp {
			if h != nil {
				out.PerOp[i].Merge(h)
			}
		}
		if r.Engine != nil {
			out.Engine = r.Engine
		}
	}
	if out.Duration > 0 {
		out.Throughput = float64(out.Ops) / out.Duration.Seconds()
		if out.Offered > 0 {
			out.OfferedRate = float64(out.Offered) / out.Duration.Seconds()
			out.AchievedRate = out.Throughput
		}
	}
	return out
}

// RunConcurrent replays several traces against one shared store, one
// goroutine per trace — the paper's concurrent-operators experiment
// (§6.4: multiple Gadget instances configured to access the same store).
// With Options.StallTimeout set, one stalled worker aborts the whole run:
// every worker's partial Result comes back Degraded with ErrStalled.
func RunConcurrent(store kv.Store, traces [][]kv.Access, opts Options) ([]Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	cols := make([]*Collector, len(traces))
	for i := range traces {
		c, err := NewCollector(store, opts)
		if err != nil {
			return nil, err
		}
		cols[i] = c
	}
	results := make([]Result, len(traces))
	errs := make([]error, len(traces))
	stalled := Guard(opts.StallTimeout, cols, func() {
		var wg sync.WaitGroup
		for i, tr := range traces {
			wg.Add(1)
			go func(i int, tr []kv.Access) {
				defer wg.Done()
				c := cols[i]
				for _, a := range tr {
					if err := c.Do(a); err != nil {
						errs[i] = err
						break
					}
				}
				results[i] = c.Finish()
			}(i, tr)
		}
		wg.Wait()
	})
	if stalled {
		// Abandoned workers may still write results/errs as they unwind;
		// snapshot into a fresh slice instead.
		partial := make([]Result, len(cols))
		for i, c := range cols {
			partial[i] = c.Snapshot()
		}
		return partial, ErrStalled
	}
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
