package replay

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"gadget/internal/dist"
	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/stats"
)

// simClock is a fake Clock: Sleep advances time instead of waiting, so
// pacer and accounting tests run instantly and deterministically.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func newSimClock() *simClock { return &simClock{now: time.Unix(1000, 0)} }

func (s *simClock) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

func (s *simClock) Sleep(d time.Duration) {
	if d > 0 {
		s.Advance(d)
	}
}

func (s *simClock) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	s.mu.Unlock()
}

func putTrace(n int) []kv.Access {
	out := make([]kv.Access, n)
	for i := range out {
		out[i] = kv.Access{Op: kv.OpPut, Key: kv.StateKey{Group: uint64(i % 64), Sub: uint64(i)}, Size: 8}
	}
	return out
}

func TestOpenLoopBasic(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	trace := putTrace(500)
	res, err := RunOpenLoop(st, trace, OpenLoopOptions{Rate: 1e6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 500 || res.Offered != 500 {
		t.Fatalf("ops=%d offered=%d, want 500/500", res.Ops, res.Offered)
	}
	if res.Degraded {
		t.Fatal("healthy open-loop run tagged Degraded")
	}
	if res.OfferedRate <= 0 || res.AchievedRate <= 0 {
		t.Fatalf("rates not computed: %+v", res)
	}
	if res.AchievedRate != res.Throughput {
		t.Fatalf("achieved %v != throughput %v", res.AchievedRate, res.Throughput)
	}
	if res.IntendedLatency == nil || res.IntendedLatency.Count() != 500 {
		t.Fatalf("intended latency not recorded for every op: %+v", res.IntendedLatency)
	}
	if s := res.String(); !strings.Contains(s, "offered=") || !strings.Contains(s, "ip99=") {
		t.Fatalf("String() missing open-loop fields: %s", s)
	}
}

func TestOpenLoopPoissonArrivals(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	res, err := RunOpenLoop(st, putTrace(300), OpenLoopOptions{
		Arrivals: dist.NewPoissonRate(1e6, rand.New(rand.NewSource(9))),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 300 || res.Offered != 300 {
		t.Fatalf("ops=%d offered=%d", res.Ops, res.Offered)
	}
}

func TestOpenLoopValidation(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	bad := []OpenLoopOptions{
		{}, // neither rate nor schedule
		{Rate: -1},
		{Rate: 1000, MaxInFlight: -1},
		{Rate: 1000, SampleEvery: -1},
		{Rate: 1000, StallTimeout: -time.Second},
		// Stall timeout inside the arrival gap would always fire.
		{Rate: 10, StallTimeout: 50 * time.Millisecond},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d should be invalid: %+v", i, o)
		}
		if _, err := RunOpenLoop(st, putTrace(3), o); err == nil {
			t.Errorf("RunOpenLoop accepted invalid options %d", i)
		}
	}
	good := []OpenLoopOptions{
		{Rate: 1000},
		{Arrivals: dist.NewConstantRate(5)},
		{Rate: 1e6, MaxInFlight: 8, SampleEvery: 10, StallTimeout: time.Second},
	}
	for i, o := range good {
		if err := o.Validate(); err != nil {
			t.Errorf("options %d should be valid: %v", i, err)
		}
	}
}

func TestPacerSimulatedClock(t *testing.T) {
	clk := newSimClock()
	t0 := clk.Now()
	p := newPacer(clk, dist.NewConstantRate(1000)) // 1ms gaps
	for i := 0; i < 5; i++ {
		intended, lag := p.tick()
		if want := t0.Add(time.Duration(i) * time.Millisecond); !intended.Equal(want) {
			t.Fatalf("tick %d intended %v, want %v", i, intended, want)
		}
		if lag != 0 {
			t.Fatalf("tick %d on-schedule lag = %v", i, lag)
		}
		if !clk.Now().Equal(intended) {
			t.Fatalf("tick %d did not sleep to the intended time", i)
		}
	}
	// Fall 10ms behind schedule: intended times must NOT slip, and the
	// backlog must surface as dispatch lag.
	clk.Advance(10 * time.Millisecond) // now = t0+14ms, next intended = t0+5ms
	intended, lag := p.tick()
	if want := t0.Add(5 * time.Millisecond); !intended.Equal(want) {
		t.Fatalf("late intended %v, want %v (intended times slipped)", intended, want)
	}
	if lag != 9*time.Millisecond {
		t.Fatalf("lag = %v, want 9ms", lag)
	}
	// The next event is due 1ms later on the original schedule.
	intended, lag = p.tick()
	if want := t0.Add(6 * time.Millisecond); !intended.Equal(want) {
		t.Fatalf("second late intended %v, want %v", intended, want)
	}
	if lag != 8*time.Millisecond {
		t.Fatalf("second lag = %v, want 8ms", lag)
	}
}

// simStallStore advances a simClock by stall on every stallEvery-th Put
// — a store whose service time is simulated rather than slept.
type simStallStore struct {
	*memstore.Store
	clk        *simClock
	n          int
	stallEvery int
	stall      time.Duration
}

func (s *simStallStore) Put(key, value []byte) error {
	s.n++
	if s.n%s.stallEvery == 0 {
		s.clk.Advance(s.stall)
	}
	return s.Store.Put(key, value)
}

// TestDoAtCoordinatedOmissionSimClock drives the open-loop accounting on
// a simulated clock: a store that stalls 50ms every 100 ops under a 1ms
// arrival schedule must show the stall in the intended-arrival
// percentiles (each stall delays the ~50 following arrivals) while the
// real-time service percentiles stay tiny — the coordinated-omission
// distinction, fully deterministic.
func TestDoAtCoordinatedOmissionSimClock(t *testing.T) {
	clk := newSimClock()
	st := &simStallStore{Store: memstore.New(), clk: clk, stallEvery: 100, stall: 50 * time.Millisecond}
	defer st.Close()
	c, err := NewCollector(st, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.enableOpenLoop(clk)
	t0 := clk.Now()
	const gap = time.Millisecond
	for i := 0; i < 1000; i++ {
		intended := t0.Add(time.Duration(i) * gap)
		// The pacer never dispatches early: wait out the schedule when the
		// store is ahead of it.
		if d := intended.Sub(clk.Now()); d > 0 {
			clk.Sleep(d)
		}
		if err := c.DoAt(kv.Access{Op: kv.OpPut, Key: kv.StateKey{Sub: uint64(i)}, Size: 8}, intended); err != nil {
			t.Fatal(err)
		}
	}
	res := c.Finish()
	if res.Ops != 1000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	// Every stall delays the following ~50 arrivals (50ms backlog / 1ms
	// gaps), so half the ops carry queueing delay and the p99 sits just
	// under the full stall.
	if got := res.IntendedP99(); got < 25*time.Millisecond {
		t.Fatalf("intended p99 = %v does not reflect the 50ms stalls", got)
	}
	// Service time is real time here (the stall only moves the simulated
	// clock), so the service histogram must stay microseconds-small.
	if got := time.Duration(res.Latency.Quantile(0.99)); got > 5*time.Millisecond {
		t.Fatalf("service p99 = %v; simulated stalls leaked into service time", got)
	}
}

// TestOpenLoopCoordinatedOmissionChaos is the end-to-end acceptance
// check: against a store that stalls 30ms every 125 ops, the open-loop
// driver's intended-arrival p99 must exceed the stall duration (arrivals
// keep accumulating behind each stall), while a closed-loop replay of
// the same trace — whose 8 stalled ops are only 0.8% of samples — hides
// the stall below its service-time p99.
func TestOpenLoopCoordinatedOmissionChaos(t *testing.T) {
	const stall = 30 * time.Millisecond
	trace := putTrace(1000)
	plan := kv.ChaosPlan{StallEvery: 125, Stall: stall}

	open := kv.NewChaosStore(memstore.New(), plan)
	defer open.Close()
	openRes, err := RunOpenLoop(open, trace, OpenLoopOptions{Rate: 50_000, MaxInFlight: 64})
	if err != nil {
		t.Fatal(err)
	}

	closed := kv.NewChaosStore(memstore.New(), plan)
	defer closed.Close()
	closedRes, err := Run(closed, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if got := openRes.IntendedP99(); got < stall {
		t.Fatalf("open-loop intended p99 = %v, want >= %v (stall hidden)", got, stall)
	}
	// The same stalls are invisible at p99 when latency is measured
	// per-completed-call: only 8/1000 samples contain a stall.
	if got := time.Duration(closedRes.Latency.Quantile(0.99)); got >= stall {
		t.Fatalf("closed-loop service p99 = %v unexpectedly contains the stall", got)
	}
	if got := time.Duration(openRes.Latency.Quantile(0.99)); got >= stall {
		t.Fatalf("open-loop service p99 = %v; stalls are 0.8%% of ops and must sit above p99", got)
	}
	if closedRes.IntendedP99() != 0 || closedRes.Offered != 0 {
		t.Fatalf("closed-loop result grew open-loop measurements: %+v", closedRes)
	}
	// The 64-deep queue cannot absorb a 30ms backlog at 50k/s arrivals.
	if openRes.Overload == 0 {
		t.Fatalf("expected overload under stalls: %+v", openRes)
	}
	if openRes.MaxLag == 0 {
		t.Fatal("expected dispatch lag under stalls")
	}
}

// TestOpenLoopStateMatchesClosedLoop is the differential check: the two
// drivers replay one seeded trace into separate stores and must land on
// the identical final state — only the timing metadata differs.
func TestOpenLoopStateMatchesClosedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	trace := make([]kv.Access, 2000)
	for i := range trace {
		a := kv.Access{Key: kv.StateKey{Group: uint64(rng.Intn(32)), Sub: uint64(rng.Intn(8))}}
		switch rng.Intn(5) {
		case 0:
			a.Op = kv.OpGet
		case 1:
			a.Op, a.Size = kv.OpPut, uint32(1+rng.Intn(64))
		case 2:
			a.Op, a.Size = kv.OpMerge, uint32(1+rng.Intn(32))
		case 3:
			a.Op = kv.OpDelete
		case 4:
			a.Op, a.Size = kv.OpPut, uint32(1+rng.Intn(16))
		}
		trace[i] = a
	}

	closedStore, openStore := memstore.New(), memstore.New()
	defer closedStore.Close()
	defer openStore.Close()
	closedRes, err := Run(closedStore, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	openRes, err := RunOpenLoop(openStore, trace, OpenLoopOptions{Rate: 1e8, MaxInFlight: 32})
	if err != nil {
		t.Fatal(err)
	}

	if closedStore.Len() != openStore.Len() {
		t.Fatalf("store sizes diverged: closed=%d open=%d", closedStore.Len(), openStore.Len())
	}
	seen := map[kv.StateKey]bool{}
	for _, a := range trace {
		if seen[a.Key] {
			continue
		}
		seen[a.Key] = true
		kb := a.Key.Bytes()
		cv, cerr := closedStore.Get(kb)
		ov, oerr := openStore.Get(kb)
		if (cerr == nil) != (oerr == nil) {
			t.Fatalf("key %v presence diverged: closed=%v open=%v", a.Key, cerr, oerr)
		}
		if !bytes.Equal(cv, ov) {
			t.Fatalf("key %v value diverged: %d vs %d bytes", a.Key, len(cv), len(ov))
		}
	}
	// Same work applied...
	if closedRes.Ops != openRes.Ops || closedRes.Misses != openRes.Misses {
		t.Fatalf("op accounting diverged: closed=%+v open=%+v", closedRes, openRes)
	}
	// ...but only the open-loop run carries arrival-schedule metadata.
	if openRes.Offered != uint64(len(trace)) || openRes.IntendedLatency == nil {
		t.Fatalf("open-loop metadata missing: %+v", openRes)
	}
	if closedRes.Offered != 0 || closedRes.IntendedLatency != nil {
		t.Fatalf("closed-loop grew open-loop metadata: %+v", closedRes)
	}
}

func TestOpenLoopOverloadCountedNotDropped(t *testing.T) {
	// A store with a 200us injected delay per op under 1M/s arrivals and a
	// single-slot queue: nearly every dispatch finds the queue full. The
	// events must be counted as overload yet still applied.
	st := kv.NewChaosStore(memstore.New(), kv.ChaosPlan{LatencyRate: 1, Latency: 200 * time.Microsecond})
	defer st.Close()
	trace := putTrace(300)
	res, err := RunOpenLoop(st, trace, OpenLoopOptions{Rate: 1e6, MaxInFlight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 300 || res.Offered != 300 {
		t.Fatalf("overloaded events were dropped: ops=%d offered=%d", res.Ops, res.Offered)
	}
	if res.Overload == 0 {
		t.Fatal("overload not counted")
	}
	if res.MaxLag == 0 {
		t.Fatal("dispatch lag not measured")
	}
	if res.Degraded {
		t.Fatal("overload alone must not degrade the run")
	}
}

func TestOpenLoopWatchdogAbortsStalledRun(t *testing.T) {
	st := &stallStore{Store: memstore.New(), stallAt: 50, release: make(chan struct{})}
	defer st.Close()
	defer close(st.release)
	res, err := RunOpenLoop(st, putTrace(1000), OpenLoopOptions{Rate: 100_000, StallTimeout: 30 * time.Millisecond})
	if err != ErrStalled {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	if !res.Degraded {
		t.Fatal("partial result not tagged Degraded")
	}
	if res.Ops != 49 {
		t.Fatalf("partial ops = %d, want 49", res.Ops)
	}
	if res.Offered < res.Ops {
		t.Fatalf("offered %d < ops %d", res.Offered, res.Ops)
	}
}

func TestOpenLoopObserverSeesArmedCollector(t *testing.T) {
	st := memstore.New()
	defer st.Close()
	var snap Result
	_, err := RunOpenLoop(st, putTrace(100), OpenLoopOptions{
		Rate: 1e7,
		Observer: func(c *Collector) {
			// The observer runs before the first op; open-loop accounting
			// must already be armed so samplers can snapshot it.
			snap = c.Snapshot()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.IntendedLatency == nil {
		t.Fatal("observer saw a collector without open-loop accounting")
	}
}

func TestMergeResultsOpenLoop(t *testing.T) {
	mk := func(ops, offered, overload uint64, lag time.Duration, dur time.Duration, intendedNs ...int64) Result {
		r := Result{Ops: ops, Offered: offered, Overload: overload, MaxLag: lag, Duration: dur, Latency: stats.NewHistogram()}
		if len(intendedNs) > 0 {
			r.IntendedLatency = stats.NewHistogram()
			for _, ns := range intendedNs {
				r.IntendedLatency.Record(ns)
			}
		}
		if dur > 0 {
			r.Throughput = float64(ops) / dur.Seconds()
		}
		return r
	}
	a := mk(100, 100, 5, 3*time.Millisecond, time.Second, 1000, 2000)
	b := mk(200, 200, 1, 7*time.Millisecond, 2*time.Second, 3000)
	out := MergeResults([]Result{a, b})
	if out.Offered != 300 || out.Overload != 6 {
		t.Fatalf("offered/overload = %d/%d, want 300/6", out.Offered, out.Overload)
	}
	if out.MaxLag != 7*time.Millisecond {
		t.Fatalf("max lag = %v, want max(3ms,7ms)", out.MaxLag)
	}
	if out.Duration != 2*time.Second {
		t.Fatalf("duration = %v", out.Duration)
	}
	if out.IntendedLatency == nil || out.IntendedLatency.Count() != 3 {
		t.Fatalf("intended histograms not merged: %+v", out.IntendedLatency)
	}
	if want := 300.0 / 2; out.OfferedRate != want {
		t.Fatalf("offered rate = %v, want %v", out.OfferedRate, want)
	}
	if out.AchievedRate != out.Throughput {
		t.Fatalf("achieved %v != throughput %v", out.AchievedRate, out.Throughput)
	}

	// Merging with a closed-loop partition must not fabricate open-loop
	// data in the closed direction, and must keep the open data intact.
	closedOnly := MergeResults([]Result{mk(50, 0, 0, 0, time.Second)})
	if closedOnly.Offered != 0 || closedOnly.IntendedLatency != nil || closedOnly.OfferedRate != 0 {
		t.Fatalf("closed-loop merge fabricated open-loop fields: %+v", closedOnly)
	}
	mixed := MergeResults([]Result{a, mk(50, 0, 0, 0, time.Millisecond)})
	if mixed.Offered != 100 || mixed.IntendedLatency == nil {
		t.Fatalf("mixed merge lost open-loop fields: %+v", mixed)
	}
}

func TestResultStringOpenLoopFields(t *testing.T) {
	r := Result{Ops: 10, Latency: stats.NewHistogram(), Duration: time.Second, Throughput: 10}
	if s := r.String(); strings.Contains(s, "offered=") {
		t.Fatalf("closed-loop String() grew open-loop fields: %s", s)
	}
	r.Offered, r.Overload = 20, 3
	r.OfferedRate, r.AchievedRate = 20, 10
	r.MaxLag = 1500 * time.Microsecond
	r.IntendedLatency = stats.NewHistogram()
	r.IntendedLatency.Record(int64(2 * time.Millisecond))
	s := r.String()
	for _, want := range []string{"offered=20/s", "achieved=10/s", "lag=1.5ms", "overload=3", "ip99="} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q missing %q", s, want)
		}
	}
	if testing.Verbose() {
		fmt.Println(s)
	}
}
