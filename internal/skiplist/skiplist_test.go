package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	l := New()
	if _, ok := l.Get([]byte("a")); ok {
		t.Fatal("empty list should miss")
	}
	l.Put([]byte("a"), []byte("1"))
	l.Put([]byte("c"), []byte("3"))
	l.Put([]byte("b"), []byte("2"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, ok := l.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Get(%q) = %q,%v", k, v, ok)
		}
	}
	if _, ok := l.Get([]byte("d")); ok {
		t.Fatal("miss expected")
	}
	if l.Len() != 3 {
		t.Fatalf("len = %d", l.Len())
	}
}

func TestOverwrite(t *testing.T) {
	l := New()
	l.Put([]byte("k"), []byte("v1"))
	l.Put([]byte("k"), []byte("v2"))
	if l.Len() != 1 {
		t.Fatalf("len = %d after overwrite", l.Len())
	}
	v, _ := l.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("value = %q", v)
	}
}

func TestIteratorOrder(t *testing.T) {
	l := New()
	keys := []string{"delta", "alpha", "echo", "charlie", "bravo"}
	for _, k := range keys {
		l.Put([]byte(k), []byte(k))
	}
	it := l.Iter()
	it.First()
	var got []string
	for ; it.Valid(); it.Next() {
		got = append(got, string(it.Key()))
		if !bytes.Equal(it.Key(), it.Value()) {
			t.Fatal("value mismatch")
		}
	}
	want := append([]string(nil), keys...)
	sort.Strings(want)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iteration order %v, want %v", got, want)
	}
}

func TestSeekGE(t *testing.T) {
	l := New()
	for _, k := range []string{"b", "d", "f"} {
		l.Put([]byte(k), []byte(k))
	}
	cases := []struct{ seek, want string }{
		{"a", "b"}, {"b", "b"}, {"c", "d"}, {"f", "f"}, {"g", ""},
	}
	for _, c := range cases {
		it := l.Iter()
		it.SeekGE([]byte(c.seek))
		if c.want == "" {
			if it.Valid() {
				t.Fatalf("SeekGE(%q) should be invalid, got %q", c.seek, it.Key())
			}
			continue
		}
		if !it.Valid() || string(it.Key()) != c.want {
			t.Fatalf("SeekGE(%q) = %q, want %q", c.seek, it.Key(), c.want)
		}
	}
}

func TestNextOnUnpositioned(t *testing.T) {
	l := New()
	l.Put([]byte("a"), nil)
	it := l.Iter()
	it.Next() // must not panic
	if it.Valid() {
		t.Fatal("unpositioned iterator should stay invalid on Next")
	}
}

func TestApproxBytesGrows(t *testing.T) {
	l := New()
	before := l.ApproxBytes()
	l.Put(make([]byte, 100), make([]byte, 900))
	if l.ApproxBytes() < before+1000 {
		t.Fatalf("ApproxBytes = %d", l.ApproxBytes())
	}
	// Overwrite with smaller value shrinks accounting.
	mid := l.ApproxBytes()
	l.Put(make([]byte, 100), make([]byte, 10))
	if l.ApproxBytes() >= mid {
		t.Fatal("overwrite with smaller value should shrink bytes")
	}
}

// Property: the skiplist behaves exactly like a sorted Go map.
func TestMatchesMapModel(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Val uint16
	}) bool {
		l := New()
		model := map[string][]byte{}
		for _, op := range ops {
			k := []byte{op.Key % 32}
			v := []byte(fmt.Sprint(op.Val))
			l.Put(k, v)
			model[string(k)] = v
		}
		if l.Len() != len(model) {
			return false
		}
		for k, v := range model {
			got, ok := l.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		// Iteration must be sorted and complete.
		it := l.Iter()
		it.First()
		var prev []byte
		count := 0
		for ; it.Valid(); it.Next() {
			if prev != nil && bytes.Compare(prev, it.Key()) >= 0 {
				return false
			}
			prev = append(prev[:0], it.Key()...)
			count++
		}
		return count == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeRandomWorkload(t *testing.T) {
	l := New()
	rng := rand.New(rand.NewSource(5))
	model := map[string]string{}
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(5000))
		v := fmt.Sprintf("val-%d", i)
		l.Put([]byte(k), []byte(v))
		model[k] = v
	}
	if l.Len() != len(model) {
		t.Fatalf("len = %d, want %d", l.Len(), len(model))
	}
	for k, v := range model {
		got, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q,%v want %q", k, got, ok, v)
		}
	}
}

func BenchmarkPut(b *testing.B) {
	l := New()
	keys := make([][]byte, b.N)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Put(keys[i], keys[i])
	}
}

func BenchmarkGet(b *testing.B) {
	l := New()
	const n = 100000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i))
		l.Put(keys[i], keys[i])
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Get(keys[i%n])
	}
}
