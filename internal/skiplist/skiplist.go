// Package skiplist implements an ordered in-memory map from byte-slice
// keys to byte-slice values, used as the LSM engine's memtable. It is a
// classic Pugh skip list with randomized tower heights and supports exact
// lookups, ordered iteration, and seek-to-first-greater-or-equal.
//
// The zero value is not usable; call New. A skiplist is not safe for
// concurrent mutation; the LSM engine serializes writers and freezes
// memtables before sharing them with readers.
package skiplist

import "bytes"

const maxHeight = 16

type node struct {
	key, value []byte
	next       [maxHeight]*node
	height     int
}

// List is an ordered byte-key map.
type List struct {
	head     *node
	height   int
	length   int
	bytes    int64
	rngState uint64
}

// New returns an empty list.
func New() *List {
	return &List{head: &node{height: maxHeight}, height: 1, rngState: 0x9E3779B97F4A7C15}
}

// randomHeight draws a height with geometric distribution (p = 1/4) from
// an embedded xorshift generator, keeping the list self-contained and
// deterministic for a given insertion order.
func (l *List) randomHeight() int {
	x := l.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	l.rngState = x
	h := 1
	for h < maxHeight && x&3 == 0 {
		h++
		x >>= 2
	}
	return h
}

// Len returns the number of entries.
func (l *List) Len() int { return l.length }

// ApproxBytes returns the approximate memory held by keys and values.
func (l *List) ApproxBytes() int64 { return l.bytes }

// findGE returns the first node with key >= target, filling prev with the
// rightmost node before target at every level when prev != nil.
func (l *List) findGE(target []byte, prev *[maxHeight]*node) *node {
	x := l.head
	for level := l.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, target) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts key/value, overwriting the value if key already exists.
// The list keeps references to key and value; callers must not mutate
// them afterwards.
func (l *List) Put(key, value []byte) {
	var prev [maxHeight]*node
	if n := l.findGE(key, &prev); n != nil && bytes.Equal(n.key, key) {
		l.bytes += int64(len(value) - len(n.value))
		n.value = value
		return
	}
	h := l.randomHeight()
	if h > l.height {
		for level := l.height; level < h; level++ {
			prev[level] = l.head
		}
		l.height = h
	}
	n := &node{key: key, value: value, height: h}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	l.length++
	l.bytes += int64(len(key) + len(value) + 48) // 48 ~ node overhead
}

// Get returns the value stored under key and whether it was found.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && bytes.Equal(n.key, key) {
		return n.value, true
	}
	return nil, false
}

// Iterator walks the list in ascending key order.
type Iterator struct {
	list *List
	n    *node
}

// Iter returns an iterator positioned before the first entry; call Next
// or SeekGE to position it.
func (l *List) Iter() *Iterator { return &Iterator{list: l} }

// SeekGE positions the iterator at the first entry with key >= target.
func (it *Iterator) SeekGE(target []byte) {
	it.n = it.list.findGE(target, nil)
}

// First positions the iterator at the smallest key.
func (it *Iterator) First() { it.n = it.list.head.next[0] }

// Next advances to the following entry (or positions at First if the
// iterator was never positioned).
func (it *Iterator) Next() {
	if it.n == nil {
		return
	}
	it.n = it.n.next[0]
}

// Valid reports whether the iterator points at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key; only valid when Valid() is true.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value; only valid when Valid() is true.
func (it *Iterator) Value() []byte { return it.n.value }
