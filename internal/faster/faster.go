// Package faster implements a hash key-value store in the role FASTER
// (Chandramouli et al., SIGMOD '18) plays in the paper: an open hash
// index over a hybrid log. The log's tail region is mutable (updates
// happen in place), the colder in-memory region is read-copy-update, and
// the coldest region is spilled to disk. Point operations are O(1): one
// hash probe plus a short chain walk.
//
// Merge is implemented eagerly as read-modify-write (FASTER's rmw), so
// the cost profile the paper attributes to FASTER on holistic workloads
// — reading and rewriting a growing vector per update — is preserved.
//
// Unlike the original's epoch-based lock-free design, this implementation
// uses a coarse RWMutex; the paper's concurrency experiments co-locate
// whole operator instances rather than stressing intra-store scalability.
package faster

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"gadget/internal/kv"
	"gadget/internal/vfs"
)

// Options configures a Store.
type Options struct {
	// Dir is the store directory; required.
	Dir string
	// LogMemBudget is the in-memory portion of the hybrid log in bytes
	// (default 256 MiB, the paper's configuration).
	LogMemBudget int64
	// IndexBuckets is the number of hash buckets (default: 64 MiB worth,
	// i.e. 8M buckets). The index does not resize, as in FASTER's
	// statically sized hash table.
	IndexBuckets int
	// MutableFraction is the tail fraction of the in-memory log where
	// updates happen in place (default 0.9).
	MutableFraction float64
	// FS is the filesystem the store lives on; nil selects the real
	// filesystem. Tests inject vfs.MemFS or vfs.FaultFS here.
	FS vfs.FS
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.LogMemBudget <= 0 {
		out.LogMemBudget = 256 << 20
	}
	if out.IndexBuckets <= 0 {
		out.IndexBuckets = (64 << 20) / 8
	}
	// Round buckets up to a power of two for mask addressing.
	n := 1
	for n < out.IndexBuckets {
		n <<= 1
	}
	out.IndexBuckets = n
	if out.MutableFraction <= 0 || out.MutableFraction > 1 {
		out.MutableFraction = 0.9
	}
	out.FS = vfs.OrDefault(out.FS)
	return out
}

const (
	segBits = 22 // 4 MiB segments
	segSize = 1 << segBits
	segMask = segSize - 1

	recHeader = 1 + 4 + 4 + 4 + 8 // kind, keyLen, valCap, valLen, prev

	kindPut    byte = 1
	kindDelete byte = 2
	kindPad    byte = 0xFF
)

// Store is a FASTER-style hash store implementing kv.Store.
type Store struct {
	opts Options

	mu       sync.RWMutex
	buckets  []uint64 // head of record chain per bucket; 0 = empty
	segs     map[uint64][]byte
	tail     uint64 // next append address
	headAddr uint64 // lowest in-memory address
	file     vfs.File
	count    int64 // live (non-deleted) keys, approximate
	closed   bool

	// Engine counters (atomics: gets and disk reads happen under the
	// read lock, where many goroutines may race on them).
	gets, puts, rmws, deletes atomic.Uint64
	inPlaceUpdates            atomic.Uint64
	appends                   atomic.Uint64
	segSpills                 atomic.Uint64 // segments evicted to disk
	diskReads                 atomic.Uint64 // records fetched from disk
	snapshots                 atomic.Uint64
	iterOps                   atomic.Int64
}

var _ kv.Store = (*Store)(nil)

// Open opens (or creates) a store in opts.Dir. If a previous instance
// was cleanly closed, its log is scanned to rebuild the index.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("faster: Options.Dir is required")
	}
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, err
	}
	f, err := o.FS.OpenFile(filepath.Join(o.Dir, "faster.log"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		opts:    o,
		buckets: make([]uint64, o.IndexBuckets),
		segs:    map[uint64][]byte{0: make([]byte, segSize)},
		tail:    1, // address 0 is reserved as "nil"
		file:    f,
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover rebuilds the index by scanning a previously persisted log.
// The meta file is written only on clean Close (and atomically), so a
// bad or inconsistent meta means the process died mid-shutdown — the
// store recovers empty rather than refusing to open, matching FASTER's
// "durable only at checkpoints" contract.
func (s *Store) recover() error {
	metaPath := filepath.Join(s.opts.Dir, "meta")
	// A crashed atomic meta write can leave a .tmp behind; it is garbage.
	s.opts.FS.Remove(metaPath + ".tmp")
	mb, err := vfs.ReadFile(s.opts.FS, metaPath)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(mb) != 8 {
		s.opts.FS.Remove(metaPath)
		return nil // crash artifact, not a clean shutdown
	}
	persistedTail := binary.LittleEndian.Uint64(mb)
	st, err := s.file.Stat()
	if err != nil {
		return err
	}
	if int64(persistedTail) > st.Size() {
		// Meta promises more log than exists: the log flush never finished.
		s.opts.FS.Remove(metaPath)
		return nil
	}
	// Load the whole persisted log back as in-memory segments, then scan.
	nSegs := (persistedTail + segSize - 1) / segSize
	for i := uint64(0); i < nSegs; i++ {
		seg := make([]byte, segSize)
		if _, err := s.file.ReadAt(seg, int64(i*segSize)); err != nil && i != nSegs-1 {
			return err
		}
		s.segs[i] = seg
	}
	liveKind := make(map[string]byte)
	addr := uint64(1)
	for addr < persistedTail {
		segOff := addr & segMask
		if segSize-segOff < recHeader {
			addr = (addr>>segBits + 1) << segBits
			continue
		}
		seg := s.segs[addr>>segBits]
		if seg[segOff] == kindPad {
			addr = (addr>>segBits + 1) << segBits
			continue
		}
		kind, keyLen, valCap, _, _ := parseHeader(seg[segOff:])
		recLen := uint64(recHeader) + uint64(keyLen) + uint64(valCap)
		key := seg[segOff+recHeader : segOff+recHeader+uint64(keyLen)]
		b := s.bucketFor(key)
		// Rewrite prev pointer to the current chain head so recovery
		// preserves lookup chains even after index reconstruction.
		binary.LittleEndian.PutUint64(seg[segOff+13:], s.buckets[b])
		liveKind[string(key)] = kind
		s.buckets[b] = addr
		addr += recLen
	}
	for _, kind := range liveKind {
		if kind == kindPut {
			s.count++
		}
	}
	s.tail = persistedTail
	// Keep only the budgeted tail in memory.
	s.headAddr = 0
	s.evictLocked()
	// Remove stale meta so a crash before the next Close is detected.
	s.opts.FS.Remove(metaPath)
	return nil
}

func parseHeader(b []byte) (kind byte, keyLen, valCap, valLen uint32, prev uint64) {
	kind = b[0]
	keyLen = binary.LittleEndian.Uint32(b[1:])
	valCap = binary.LittleEndian.Uint32(b[5:])
	valLen = binary.LittleEndian.Uint32(b[9:])
	prev = binary.LittleEndian.Uint64(b[13:])
	return
}

func (s *Store) bucketFor(key []byte) uint64 {
	const (
		offset = 0xCBF29CE484222325
		prime  = 0x100000001B3
	)
	h := uint64(offset)
	for _, c := range key {
		h ^= uint64(c)
		h *= prime
	}
	return h & uint64(len(s.buckets)-1)
}

// Caps advertises in-place updates without a lazy merge operator. The
// hash index has no key order, so Snapshots and RangeScans stay false:
// Snapshot is served by the stop-the-world fallback below.
func (s *Store) Caps() kv.Capabilities {
	return kv.Capabilities{NativeMerge: false, InPlaceUpdate: true}
}

// Snapshot implements kv.Snapshotter via kv.FallbackSnapshot: with
// writers blocked on the lock, every hash chain is walked newest-first
// and the most recent record per key is copied out. O(live log) — the
// cost Capabilities{Snapshots: false} tells evaluators to budget for.
func (s *Store) Snapshot() (kv.Snapshot, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	var b kv.FallbackBuilder
	seen := make(map[string]bool)
	for _, head := range s.buckets {
		for addr := head; addr != 0; {
			kind, key, val, prev, err := s.readRecord(addr)
			if err != nil {
				return nil, err
			}
			if !seen[string(key)] {
				seen[string(key)] = true
				if kind == kindPut {
					b.Add(key, val)
				}
			}
			addr = prev
		}
	}
	s.snapshots.Add(1)
	snap := b.Snapshot()
	snap.CountIterOps(&s.iterOps)
	return snap, nil
}

// mutableBoundary returns the lowest address eligible for in-place update.
func (s *Store) mutableBoundary() uint64 {
	mutable := uint64(float64(s.opts.LogMemBudget) * s.opts.MutableFraction)
	if s.tail <= mutable {
		return 0
	}
	return s.tail - mutable
}

// readRecord fetches the record at addr, from memory or disk.
func (s *Store) readRecord(addr uint64) (kind byte, key, val []byte, prev uint64, err error) {
	segIdx := addr >> segBits
	segOff := addr & segMask
	if seg, ok := s.segs[segIdx]; ok {
		kind, keyLen, _, valLen, prev := parseHeader(seg[segOff:])
		ko := segOff + recHeader
		return kind, seg[ko : ko+uint64(keyLen)], seg[ko+uint64(keyLen) : ko+uint64(keyLen)+uint64(valLen)], prev, nil
	}
	s.diskReads.Add(1)
	var hdr [recHeader]byte
	if _, err := s.file.ReadAt(hdr[:], int64(addr)); err != nil {
		return 0, nil, nil, 0, err
	}
	kind, keyLen, _, valLen, prev := parseHeader(hdr[:])
	buf := make([]byte, uint64(keyLen)+uint64(valLen))
	if _, err := s.file.ReadAt(buf, int64(addr+recHeader)); err != nil {
		return 0, nil, nil, 0, err
	}
	return kind, buf[:keyLen], buf[keyLen:], prev, nil
}

// findRecord walks the hash chain for key, returning the newest record
// address (0 if absent).
func (s *Store) findRecord(key []byte) (addr uint64, kind byte, val []byte, err error) {
	addr = s.buckets[s.bucketFor(key)]
	for addr != 0 {
		k, rkey, rval, prev, err := s.readRecord(addr)
		if err != nil {
			return 0, 0, nil, err
		}
		if string(rkey) == string(key) {
			return addr, k, rval, nil
		}
		addr = prev
	}
	return 0, 0, nil, nil
}

// Get returns the value stored under key.
func (s *Store) Get(key []byte) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, kv.ErrClosed
	}
	s.gets.Add(1)
	addr, kind, val, err := s.findRecord(key)
	if err != nil {
		return nil, err
	}
	if addr == 0 || kind == kindDelete {
		return nil, kv.ErrNotFound
	}
	return append([]byte(nil), val...), nil
}

// Put stores value under key, updating in place when the record lives in
// the mutable region and has capacity.
func (s *Store) Put(key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.upsertLocked(key, value)
}

func (s *Store) upsertLocked(key, value []byte) error {
	if s.closed {
		return kv.ErrClosed
	}
	s.puts.Add(1)
	addr, kind, _, err := s.findRecord(key)
	if err != nil {
		return err
	}
	if addr == 0 || kind == kindDelete {
		s.count++
	}
	if addr != 0 && addr >= s.mutableBoundary() && kind == kindPut {
		if s.tryInPlace(addr, value) {
			s.inPlaceUpdates.Add(1)
			return nil
		}
	}
	return s.appendRecord(kindPut, key, value)
}

// tryInPlace overwrites the value of the in-memory record at addr when
// the new value fits its capacity.
func (s *Store) tryInPlace(addr uint64, value []byte) bool {
	seg, ok := s.segs[addr>>segBits]
	if !ok {
		return false
	}
	off := addr & segMask
	_, keyLen, valCap, _, _ := parseHeader(seg[off:])
	if uint32(len(value)) > valCap {
		return false
	}
	binary.LittleEndian.PutUint32(seg[off+9:], uint32(len(value)))
	copy(seg[off+recHeader+uint64(keyLen):], value)
	return true
}

// Merge performs FASTER's rmw: read the current value, append the
// operand, and write the result (in place when possible).
func (s *Store) Merge(key, operand []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.rmws.Add(1)
	addr, kind, val, err := s.findRecord(key)
	if err != nil {
		return err
	}
	var combined []byte
	if addr != 0 && kind == kindPut {
		combined = make([]byte, 0, len(val)+len(operand))
		combined = append(combined, val...)
		combined = append(combined, operand...)
	} else {
		combined = append([]byte(nil), operand...)
		s.count++
	}
	if addr != 0 && addr >= s.mutableBoundary() && kind == kindPut {
		if s.tryInPlace(addr, combined) {
			s.inPlaceUpdates.Add(1)
			return nil
		}
	}
	return s.appendRecord(kindPut, key, combined)
}

// Delete appends a tombstone for key.
func (s *Store) Delete(key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return kv.ErrClosed
	}
	s.deletes.Add(1)
	addr, kind, _, err := s.findRecord(key)
	if err != nil {
		return err
	}
	if addr == 0 || kind == kindDelete {
		return nil // nothing to delete; avoid growing the log
	}
	s.count--
	return s.appendRecord(kindDelete, key, nil)
}

// appendRecord writes a new record at the tail and links it into the
// index chain.
func (s *Store) appendRecord(kind byte, key, value []byte) error {
	recLen := uint64(recHeader) + uint64(len(key)) + uint64(len(value))
	if recLen > segSize {
		return fmt.Errorf("faster: record of %d bytes exceeds segment size", recLen)
	}
	segIdx := s.tail >> segBits
	segOff := s.tail & segMask
	if segOff+recLen > segSize {
		// Pad the rest of the segment and move to the next.
		if seg, ok := s.segs[segIdx]; ok && segOff < segSize {
			seg[segOff] = kindPad
		}
		s.tail = (segIdx + 1) << segBits
		segIdx = s.tail >> segBits
		segOff = 0
	}
	seg, ok := s.segs[segIdx]
	if !ok {
		seg = make([]byte, segSize)
		s.segs[segIdx] = seg
	}
	b := s.bucketFor(key)
	prev := s.buckets[b]
	hdr := seg[segOff:]
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[5:], uint32(len(value)))
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(value)))
	binary.LittleEndian.PutUint64(hdr[13:], prev)
	copy(seg[segOff+recHeader:], key)
	copy(seg[segOff+recHeader+uint64(len(key)):], value)
	s.buckets[b] = s.tail
	s.tail += recLen
	s.appends.Add(1)
	return s.evictLocked()
}

// evictLocked spills the oldest in-memory segments to disk until the
// in-memory log fits its budget.
func (s *Store) evictLocked() error {
	for int64(s.tail-s.headAddr) > s.opts.LogMemBudget {
		segIdx := s.headAddr >> segBits
		if segIdx == s.tail>>segBits {
			break // never evict the active tail segment
		}
		if seg, ok := s.segs[segIdx]; ok {
			if _, err := s.file.WriteAt(seg, int64(segIdx*segSize)); err != nil {
				return err
			}
			delete(s.segs, segIdx)
			s.segSpills.Add(1)
		}
		s.headAddr = (segIdx + 1) << segBits
	}
	return nil
}

// Metrics implements kv.Introspector: engine counters under "faster.*",
// covering the hybrid log (in-place updates vs appends, segment spills,
// disk reads on cold lookups) and live-key count.
func (s *Store) Metrics() map[string]int64 {
	s.mu.RLock()
	tail, head, count := s.tail, s.headAddr, s.count
	memSegs := int64(len(s.segs))
	s.mu.RUnlock()
	return map[string]int64{
		"faster.gets":             int64(s.gets.Load()),
		"faster.puts":             int64(s.puts.Load()),
		"faster.rmws":             int64(s.rmws.Load()),
		"faster.deletes":          int64(s.deletes.Load()),
		"faster.in_place_updates": int64(s.inPlaceUpdates.Load()),
		"faster.appends":          int64(s.appends.Load()),
		"faster.segment_spills":   int64(s.segSpills.Load()),
		"faster.disk_reads":       int64(s.diskReads.Load()),
		"faster.keys":             count,
		"faster.log_bytes":        int64(tail),
		"faster.mem_log_bytes":    int64(tail - head),
		"faster.mem_segments":     memSegs,
		"faster.snapshots":        int64(s.snapshots.Load()),
		"faster.iter_ops":         s.iterOps.Load(),
	}
}

// Count returns the approximate number of live keys.
func (s *Store) Count() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// ApproximateSize returns the total log size in bytes.
func (s *Store) ApproximateSize() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(s.tail)
}

// Close persists the in-memory log tail and a metadata record so a
// subsequent Open can rebuild the index by scanning.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	for segIdx, seg := range s.segs {
		if _, err := s.file.WriteAt(seg, int64(segIdx*segSize)); err != nil {
			s.file.Close()
			return err
		}
	}
	// Order matters: the log must be durable before the meta that vouches
	// for it exists, and the meta itself is committed by rename so a crash
	// mid-shutdown leaves either no meta (recover empty) or a valid one.
	if err := s.file.Sync(); err != nil {
		s.file.Close()
		return err
	}
	var mb [8]byte
	binary.LittleEndian.PutUint64(mb[:], s.tail)
	if err := vfs.WriteFileAtomic(s.opts.FS, filepath.Join(s.opts.Dir, "meta"), mb[:], 0o644); err != nil {
		s.file.Close()
		return err
	}
	return s.file.Close()
}
