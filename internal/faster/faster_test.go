package faster

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"gadget/internal/kv"
)

func testStore(t testing.TB, opts Options) *Store {
	t.Helper()
	if opts.Dir == "" {
		opts.Dir = t.TempDir()
	}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func smallOpts() Options {
	return Options{
		LogMemBudget: 8 << 20, // two 4 MiB segments: forces eviction
		IndexBuckets: 1024,
	}
}

func TestPutGetDelete(t *testing.T) {
	s := testStore(t, smallOpts())
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatalf("miss = %v", err)
	}
	s.Put([]byte("a"), []byte("1"))
	if v, err := s.Get([]byte("a")); err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	s.Put([]byte("a"), []byte("2"))
	if v, _ := s.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite = %q", v)
	}
	s.Delete([]byte("a"))
	if _, err := s.Get([]byte("a")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("delete failed")
	}
	if err := s.Delete([]byte("ghost")); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Fatalf("count = %d", s.Count())
	}
}

func TestMergeRMW(t *testing.T) {
	s := testStore(t, smallOpts())
	k := []byte("bucket")
	s.Merge(k, []byte("a"))
	s.Merge(k, []byte("b"))
	s.Merge(k, []byte("c"))
	if v, err := s.Get(k); err != nil || string(v) != "abc" {
		t.Fatalf("merged = %q, %v", v, err)
	}
	s.Put(k, []byte("X"))
	s.Merge(k, []byte("y"))
	if v, _ := s.Get(k); string(v) != "Xy" {
		t.Fatalf("put+merge = %q", v)
	}
	s.Delete(k)
	s.Merge(k, []byte("z"))
	if v, _ := s.Get(k); string(v) != "z" {
		t.Fatalf("delete+merge = %q", v)
	}
}

func TestInPlaceUpdateSameSize(t *testing.T) {
	s := testStore(t, smallOpts())
	k := []byte("counter")
	s.Put(k, []byte("00000001"))
	tailBefore := s.tail
	for i := 2; i < 100; i++ {
		s.Put(k, []byte(fmt.Sprintf("%08d", i)))
	}
	if s.tail != tailBefore {
		t.Fatalf("same-size updates should be in place: tail grew by %d", s.tail-tailBefore)
	}
	if v, _ := s.Get(k); string(v) != "00000099" {
		t.Fatalf("value = %q", v)
	}
}

func TestGrowingValueForcesRCU(t *testing.T) {
	s := testStore(t, smallOpts())
	k := []byte("vec")
	s.Put(k, []byte("a"))
	tailBefore := s.tail
	s.Merge(k, []byte("bb")) // grows beyond capacity 1
	if s.tail == tailBefore {
		t.Fatal("growing value should append a new record")
	}
	if v, _ := s.Get(k); string(v) != "abb" {
		t.Fatalf("value = %q", v)
	}
}

func TestShrinkingValueInPlace(t *testing.T) {
	s := testStore(t, smallOpts())
	k := []byte("k")
	s.Put(k, []byte("longvalue"))
	tailBefore := s.tail
	s.Put(k, []byte("s"))
	if s.tail != tailBefore {
		t.Fatal("shrinking update should stay in place")
	}
	if v, _ := s.Get(k); string(v) != "s" {
		t.Fatalf("value = %q", v)
	}
}

func TestHashChainCollisions(t *testing.T) {
	// One bucket: every key collides; chains must still resolve.
	s := testStore(t, Options{Dir: t.TempDir(), IndexBuckets: 1, LogMemBudget: 8 << 20})
	for i := 0; i < 200; i++ {
		s.Put([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	for i := 0; i < 200; i++ {
		v, err := s.Get([]byte(fmt.Sprintf("key-%d", i)))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("chained Get(%d) = %q, %v", i, v, err)
		}
	}
	s.Delete([]byte("key-100"))
	if _, err := s.Get([]byte("key-100")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("chained delete failed")
	}
	if v, _ := s.Get([]byte("key-101")); string(v) != "v101" {
		t.Fatal("neighbor damaged by chained delete")
	}
}

func TestEvictionToDisk(t *testing.T) {
	s := testStore(t, smallOpts())
	val := bytes.Repeat([]byte("x"), 1024)
	const n = 20000 // ~20 MiB of records >> 8 MiB budget
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("key-%06d", i)), val)
	}
	if s.headAddr == 0 {
		t.Fatal("expected evictions")
	}
	// Cold keys (early ones) must still be readable from disk.
	for _, i := range []int{0, 1, 100, 5000} {
		v, err := s.Get([]byte(fmt.Sprintf("key-%06d", i)))
		if err != nil || !bytes.Equal(v, val) {
			t.Fatalf("cold Get(%d): %v", i, err)
		}
	}
	// Hot keys are served from memory.
	if v, err := s.Get([]byte(fmt.Sprintf("key-%06d", n-1))); err != nil || !bytes.Equal(v, val) {
		t.Fatalf("hot Get: %v", err)
	}
}

func TestColdKeyUpdateAppends(t *testing.T) {
	s := testStore(t, smallOpts())
	val := bytes.Repeat([]byte("x"), 1024)
	s.Put([]byte("cold"), []byte("old"))
	for i := 0; i < 20000; i++ {
		s.Put([]byte(fmt.Sprintf("filler-%06d", i)), val)
	}
	// "cold" now lives on disk; updating it must RCU-append.
	s.Put([]byte("cold"), []byte("new"))
	if v, _ := s.Get([]byte("cold")); string(v) != "new" {
		t.Fatalf("cold update = %q", v)
	}
}

func TestRandomOpsAgainstModel(t *testing.T) {
	s := testStore(t, Options{Dir: t.TempDir(), IndexBuckets: 64, LogMemBudget: 8 << 20})
	model := map[string]string{}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(500))
		switch rng.Intn(10) {
		case 0:
			s.Delete([]byte(k))
			delete(model, k)
		case 1, 2:
			op := fmt.Sprintf("+%d", i%7)
			s.Merge([]byte(k), []byte(op))
			model[k] += op
		default:
			v := fmt.Sprintf("v%d", i)
			s.Put([]byte(k), []byte(v))
			model[k] = v
		}
	}
	for k, want := range model {
		v, err := s.Get([]byte(k))
		if err != nil || string(v) != want {
			t.Fatalf("Get(%s) = %q, %v; want %q", k, v, err, want)
		}
	}
	if int(s.Count()) != len(model) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(model))
	}
}

func TestCloseAndRecover(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Dir: dir, IndexBuckets: 256, LogMemBudget: 8 << 20}
	s, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		s.Put([]byte(fmt.Sprintf("key-%04d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	s.Delete([]byte("key-0042"))
	s.Merge([]byte("mk"), []byte("m1"))
	s.Merge([]byte("mk"), []byte("m2"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	for _, i := range []int{0, 1, 999} {
		k := fmt.Sprintf("key-%04d", i)
		v, err := s2.Get([]byte(k))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered Get(%s) = %q, %v", k, v, err)
		}
	}
	if _, err := s2.Get([]byte("key-0042")); !errors.Is(err, kv.ErrNotFound) {
		t.Fatal("tombstone lost in recovery")
	}
	if v, _ := s2.Get([]byte("mk")); string(v) != "m1m2" {
		t.Fatalf("merge lost in recovery: %q", v)
	}
	if s2.Count() != 1000 { // 1000 puts - 1 delete + 1 merge key
		t.Fatalf("recovered count = %d", s2.Count())
	}
	// Store continues to work after recovery.
	s2.Put([]byte("key-0000"), []byte("new"))
	if v, _ := s2.Get([]byte("key-0000")); string(v) != "new" {
		t.Fatal("post-recovery write failed")
	}
}

func TestClosedErrors(t *testing.T) {
	s := testStore(t, smallOpts())
	s.Close()
	if err := s.Put([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Put = %v", err)
	}
	if _, err := s.Get([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Get = %v", err)
	}
	if err := s.Merge([]byte("k"), nil); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Merge = %v", err)
	}
	if err := s.Delete([]byte("k")); !errors.Is(err, kv.ErrClosed) {
		t.Fatalf("Delete = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestOpenRequiresDir(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestCaps(t *testing.T) {
	s := testStore(t, smallOpts())
	caps := kv.CapsOf(s)
	if caps.NativeMerge || !caps.InPlaceUpdate || caps.Snapshots || caps.RangeScans {
		t.Fatalf("caps = %+v", caps)
	}
}

func TestOversizedRecordRejected(t *testing.T) {
	s := testStore(t, smallOpts())
	if err := s.Put([]byte("k"), make([]byte, segSize)); err == nil {
		t.Fatal("record larger than a segment should fail")
	}
}

func TestApproximateSize(t *testing.T) {
	s := testStore(t, smallOpts())
	before := s.ApproximateSize()
	s.Put([]byte("k"), make([]byte, 1000))
	if s.ApproximateSize() < before+1000 {
		t.Fatal("size did not grow")
	}
}

func BenchmarkPut(b *testing.B) {
	s := testStore(b, Options{Dir: b.TempDir()})
	val := bytes.Repeat([]byte("v"), 256)
	var key [16]byte
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(key[:], fmt.Sprintf("%016d", i%100000))
		s.Put(key[:], val)
	}
}

func BenchmarkGet(b *testing.B) {
	s := testStore(b, Options{Dir: b.TempDir()})
	val := bytes.Repeat([]byte("v"), 256)
	const n = 100000
	for i := 0; i < n; i++ {
		s.Put([]byte(fmt.Sprintf("%016d", i)), val)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("%016d", i%n)))
	}
}
