package ycsb

import (
	"math"
	"testing"

	"gadget/internal/dist"
	"gadget/internal/kv"
)

func proportions(trace []kv.Access) map[kv.Op]float64 {
	counts := map[kv.Op]int{}
	for _, a := range trace {
		counts[a.Op]++
	}
	out := map[kv.Op]float64{}
	for op, c := range counts {
		out[op] = float64(c) / float64(len(trace))
	}
	return out
}

func TestLoadTrace(t *testing.T) {
	w := Workload{RecordCount: 100}
	load := w.LoadTrace()
	if len(load) != 100 {
		t.Fatalf("load len = %d", len(load))
	}
	seen := map[kv.StateKey]bool{}
	for _, a := range load {
		if a.Op != kv.OpPut || a.Size == 0 {
			t.Fatalf("bad load access %+v", a)
		}
		seen[a.Key] = true
	}
	if len(seen) != 100 {
		t.Fatalf("distinct keys = %d", len(seen))
	}
}

func TestWorkloadAProportions(t *testing.T) {
	w := WorkloadA()
	w.RecordCount = 1000
	w.OperationCount = 50000
	trace, err := w.RunTrace()
	if err != nil {
		t.Fatal(err)
	}
	p := proportions(trace)
	if math.Abs(p[kv.OpGet]-0.5) > 0.02 || math.Abs(p[kv.OpPut]-0.5) > 0.02 {
		t.Fatalf("proportions = %v", p)
	}
	// No deletes, ever (the paper's point).
	if p[kv.OpDelete] != 0 {
		t.Fatal("YCSB must not emit deletes")
	}
}

func TestWorkloadDInsertsExtendKeyspace(t *testing.T) {
	w := WorkloadD()
	w.RecordCount = 1000
	w.OperationCount = 20000
	trace, err := w.RunTrace()
	if err != nil {
		t.Fatal(err)
	}
	maxKey := uint64(0)
	inserts := 0
	for _, a := range trace {
		if a.Key.Group > maxKey {
			maxKey = a.Key.Group
		}
		if a.Op == kv.OpPut {
			inserts++
		}
	}
	if maxKey < 1000 {
		t.Fatal("inserts did not extend the keyspace")
	}
	frac := float64(inserts) / float64(len(trace))
	if frac < 0.03 || frac > 0.08 {
		t.Fatalf("insert fraction = %v, want ~0.05", frac)
	}
}

func TestWorkloadFRMWPairs(t *testing.T) {
	w := WorkloadF()
	w.RecordCount = 500
	w.OperationCount = 10000
	trace, err := w.RunTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Every put must immediately follow a get on the same key (RMW).
	for i, a := range trace {
		if a.Op == kv.OpPut {
			if i == 0 || trace[i-1].Op != kv.OpGet || trace[i-1].Key != a.Key {
				t.Fatalf("put at %d is not an RMW pair", i)
			}
		}
	}
	// ~50% of logical ops are RMW, so puts/gets ratio ~ 1:2.
	p := proportions(trace)
	if math.Abs(p[kv.OpPut]/p[kv.OpGet]-0.5) > 0.1 {
		t.Fatalf("put/get ratio = %v", p[kv.OpPut]/p[kv.OpGet])
	}
}

func TestCoreWorkloads(t *testing.T) {
	ws := CoreWorkloads()
	for _, name := range []string{"A", "D", "F"} {
		if _, ok := ws[name]; !ok {
			t.Fatalf("missing workload %s", name)
		}
	}
}

func TestTunedDistributions(t *testing.T) {
	for _, kind := range dist.Kinds() {
		trace, err := Tuned(1000, 5000, 0.5, false, kind, 64, 1)
		if err != nil {
			t.Fatalf("Tuned(%s): %v", kind, err)
		}
		if len(trace) != 5000 {
			t.Fatalf("%s: len = %d", kind, len(trace))
		}
		p := proportions(trace)
		if math.Abs(p[kv.OpGet]-0.5) > 0.03 {
			t.Fatalf("%s: read prop = %v", kind, p[kv.OpGet])
		}
	}
}

func TestTunedRMW(t *testing.T) {
	trace, err := Tuned(100, 1000, 0.5, true, dist.Latest, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	// RMW doubles some accesses: length > op count.
	if len(trace) <= 1000 {
		t.Fatalf("len = %d, want > 1000 due to RMW pairs", len(trace))
	}
}

func TestSequentialTunedIsSequential(t *testing.T) {
	trace, err := Tuned(100, 400, 0, false, dist.Sequential, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 100; i++ {
		if trace[i].Key.Group != trace[i-1].Key.Group+1 {
			t.Fatalf("not sequential at %d", i)
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	w := WorkloadA()
	w.Seed = 99
	w.OperationCount = 1000
	a, _ := w.RunTrace()
	b, _ := w.RunTrace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestInvalidProportions(t *testing.T) {
	w := Workload{OperationCount: 10, RecordCount: 10}
	if _, err := w.RunTrace(); err == nil {
		t.Fatal("zero proportions should error")
	}
}

func TestBadDistribution(t *testing.T) {
	w := WorkloadA()
	w.RequestDistribution = "bogus"
	if _, err := w.RunTrace(); err == nil {
		t.Fatal("bad distribution should error")
	}
}
