// Package ycsb reimplements the YCSB workload generator (Cooper et al.,
// SoCC '10) over this repository's access-stream vocabulary. It provides
// the core workloads the paper benchmarks against (A, D, F), arbitrary
// tuned workloads with any of YCSB's request distributions, and the load
// phase. YCSB has no delete operation and preloads its keyspace — the two
// structural mismatches with streaming state access the paper's §4
// demonstrates.
package ycsb

import (
	"fmt"
	"math/rand"

	"gadget/internal/dist"
	"gadget/internal/kv"
)

// Workload mirrors YCSB's workload property file.
type Workload struct {
	// RecordCount is the number of preloaded records.
	RecordCount uint64
	// OperationCount is the number of operations in the run phase.
	OperationCount uint64
	// Proportions of each operation; they should sum to 1.
	ReadProportion   float64
	UpdateProportion float64
	InsertProportion float64
	RMWProportion    float64 // read-modify-write
	// RequestDistribution selects keys for reads/updates/RMW.
	RequestDistribution dist.Kind
	// ValueSize is the value length in bytes (default 256, as in the
	// paper's §6.3 configuration).
	ValueSize uint32
	// Seed makes generation reproducible.
	Seed int64
}

func (w Workload) withDefaults() Workload {
	if w.RecordCount == 0 {
		w.RecordCount = 1000
	}
	if w.OperationCount == 0 {
		w.OperationCount = 10000
	}
	if w.RequestDistribution == "" {
		w.RequestDistribution = dist.Zipfian
	}
	if w.ValueSize == 0 {
		w.ValueSize = 256
	}
	return w
}

// Core workload presets (YCSB's workloads/workload{a,d,f}).

// WorkloadA is update heavy: 50% reads, 50% updates, zipfian.
func WorkloadA() Workload {
	return Workload{ReadProportion: 0.5, UpdateProportion: 0.5, RequestDistribution: dist.Zipfian}
}

// WorkloadD is read latest: 95% reads, 5% inserts, latest distribution.
func WorkloadD() Workload {
	return Workload{ReadProportion: 0.95, InsertProportion: 0.05, RequestDistribution: dist.Latest}
}

// WorkloadF is read-modify-write: 50% reads, 50% RMW, zipfian.
func WorkloadF() Workload {
	return Workload{ReadProportion: 0.5, RMWProportion: 0.5, RequestDistribution: dist.Zipfian}
}

// CoreWorkloads returns the presets used in the paper's Figure 12.
func CoreWorkloads() map[string]Workload {
	return map[string]Workload{"A": WorkloadA(), "D": WorkloadD(), "F": WorkloadF()}
}

// key maps a YCSB record index to a state key.
func key(i uint64) kv.StateKey { return kv.StateKey{Group: i} }

// LoadTrace returns the load phase: one insert per record.
func (w Workload) LoadTrace() []kv.Access {
	ww := w.withDefaults()
	out := make([]kv.Access, 0, ww.RecordCount)
	for i := uint64(0); i < ww.RecordCount; i++ {
		out = append(out, kv.Access{Op: kv.OpPut, Key: key(i), Size: ww.ValueSize, Time: int64(i)})
	}
	return out
}

// RunTrace generates the transaction phase. RMW operations contribute a
// get-put pair (two accesses), matching how YCSB drivers execute them.
func (w Workload) RunTrace() ([]kv.Access, error) {
	ww := w.withDefaults()
	total := ww.ReadProportion + ww.UpdateProportion + ww.InsertProportion + ww.RMWProportion
	if total <= 0 {
		return nil, fmt.Errorf("ycsb: operation proportions sum to %v", total)
	}
	rng := rand.New(rand.NewSource(ww.Seed))
	chooser, err := dist.New(ww.RequestDistribution, ww.RecordCount, rng)
	if err != nil {
		return nil, err
	}
	latest, _ := chooser.(interface{ Advance() })
	nextInsert := ww.RecordCount
	out := make([]kv.Access, 0, ww.OperationCount)
	for i := uint64(0); i < ww.OperationCount; i++ {
		t := int64(i)
		r := rng.Float64() * total
		switch {
		case r < ww.ReadProportion:
			out = append(out, kv.Access{Op: kv.OpGet, Key: key(chooser.Next()), Time: t})
		case r < ww.ReadProportion+ww.UpdateProportion:
			out = append(out, kv.Access{Op: kv.OpPut, Key: key(chooser.Next()), Size: ww.ValueSize, Time: t})
		case r < ww.ReadProportion+ww.UpdateProportion+ww.InsertProportion:
			out = append(out, kv.Access{Op: kv.OpPut, Key: key(nextInsert), Size: ww.ValueSize, Time: t})
			nextInsert++
			if latest != nil {
				latest.Advance()
			}
		default: // read-modify-write
			k := key(chooser.Next())
			out = append(out,
				kv.Access{Op: kv.OpGet, Key: k, Time: t},
				kv.Access{Op: kv.OpPut, Key: k, Size: ww.ValueSize, Time: t},
			)
		}
	}
	return out, nil
}

// Tuned builds the manually tuned YCSB workloads of the paper's §4: the
// record count, operation count and read/write mix are copied from a
// real streaming trace, inserts and deletes are zero (YCSB cannot express
// them usefully), and the caller picks the request distribution (latest
// for temporal locality, sequential for spatial locality, ...).
func Tuned(records, ops uint64, readProportion float64, rmw bool, kind dist.Kind, valueSize uint32, seed int64) ([]kv.Access, error) {
	w := Workload{
		RecordCount:         records,
		OperationCount:      ops,
		ReadProportion:      readProportion,
		RequestDistribution: kind,
		ValueSize:           valueSize,
		Seed:                seed,
	}
	if rmw {
		w.RMWProportion = 1 - readProportion
	} else {
		w.UpdateProportion = 1 - readProportion
	}
	return w.RunTrace()
}
