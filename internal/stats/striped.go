package stats

import "sync"

// StripedHistogram is a Histogram variant for write-heavy concurrent
// recording. The single-mutex Histogram serializes every Record; under
// many recording goroutines that mutex becomes the hot path. The striped
// form hands each concurrent recorder its own private Histogram stripe
// through a sync.Pool (which caches per-P, so a stripe is almost always
// re-acquired uncontended), and reads merge the stripes on demand.
//
// Recording scales with GOMAXPROCS; reads are proportionally more
// expensive (one Merge per stripe) and intended for sampling intervals
// and end-of-run summaries, not per-operation paths.
type StripedHistogram struct {
	mu      sync.Mutex
	stripes []*Histogram
	pool    sync.Pool
}

// NewStripedHistogram returns an empty striped histogram.
func NewStripedHistogram() *StripedHistogram {
	s := &StripedHistogram{}
	s.pool.New = func() any {
		h := NewHistogram()
		s.mu.Lock()
		s.stripes = append(s.stripes, h)
		s.mu.Unlock()
		return h
	}
	return s
}

// Record adds v to the histogram. Safe for concurrent use; concurrent
// recorders land on distinct stripes, so the per-stripe mutex is
// effectively uncontended.
func (s *StripedHistogram) Record(v int64) {
	h := s.pool.Get().(*Histogram)
	h.Record(v)
	s.pool.Put(h)
}

// Snapshot merges all stripes into a fresh Histogram, which then supports
// the full read API (Quantile, Mean, CumulativeCounts, ...). The merge is
// safe concurrent with Record: Histogram.Merge locks each stripe while
// copying it, so a snapshot is a consistent point-in-time view of every
// stripe (though not across stripes, same as any concurrent counter read).
func (s *StripedHistogram) Snapshot() *Histogram {
	s.mu.Lock()
	stripes := append([]*Histogram(nil), s.stripes...)
	s.mu.Unlock()
	out := NewHistogram()
	for _, h := range stripes {
		out.Merge(h)
	}
	return out
}

// Count returns the total number of recorded values across stripes.
func (s *StripedHistogram) Count() uint64 {
	s.mu.Lock()
	stripes := append([]*Histogram(nil), s.stripes...)
	s.mu.Unlock()
	var n uint64
	for _, h := range stripes {
		n += h.Count()
	}
	return n
}

// Quantile returns an upper bound on the q-quantile across all stripes.
func (s *StripedHistogram) Quantile(q float64) int64 { return s.Snapshot().Quantile(q) }

// Mean returns the mean of all recorded values.
func (s *StripedHistogram) Mean() float64 { return s.Snapshot().Mean() }

// Max returns the largest recorded value.
func (s *StripedHistogram) Max() int64 { return s.Snapshot().Max() }
