// Package stats provides the statistical machinery used across the
// harness: streaming latency histograms with percentile queries, the
// two-sample Kolmogorov-Smirnov test, the 1-D Wasserstein distance, and
// small summary helpers. Everything is implemented from scratch on the
// standard library.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Percentile returns the p-th percentile (0 <= p <= 100) of sorted,
// using linear interpolation between closest ranks. sorted must be in
// ascending order; it returns 0 for an empty slice.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := lo + 1
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Summary holds order statistics of a sample.
type Summary struct {
	Count               int
	Mean                float64
	Min, Max            float64
	P50, P90, P99, P999 float64
}

// Summarize computes a Summary of xs (xs is copied, not modified).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		Count: len(sorted),
		Mean:  Mean(sorted),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   Percentile(sorted, 50),
		P90:   Percentile(sorted, 90),
		P99:   Percentile(sorted, 99),
		P999:  Percentile(sorted, 99.9),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f p50=%.2f p90=%.2f p99=%.2f p99.9=%.2f max=%.2f",
		s.Count, s.Mean, s.P50, s.P90, s.P99, s.P999, s.Max)
}

// KSResult is the outcome of a two-sample Kolmogorov-Smirnov test.
type KSResult struct {
	D      float64 // supremum distance between the two empirical CDFs
	PValue float64 // asymptotic p-value
	N, M   int     // sample sizes
}

// Reject reports whether the null hypothesis (same distribution) is
// rejected at significance level alpha.
func (r KSResult) Reject(alpha float64) bool { return r.PValue < alpha }

// KSTest runs the two-sample Kolmogorov-Smirnov test on samples a and b.
// The inputs are not modified. The p-value uses the standard asymptotic
// Kolmogorov distribution with the Stephens small-sample correction, the
// same approximation used by scipy's 'asymp' mode.
func KSTest(a, b []float64) KSResult {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return KSResult{D: 0, PValue: 1, N: n, M: m}
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	var d float64
	i, j := 0, 0
	for i < n && j < m {
		x := math.Min(as[i], bs[j])
		for i < n && as[i] <= x {
			i++
		}
		for j < m && bs[j] <= x {
			j++
		}
		diff := math.Abs(float64(i)/float64(n) - float64(j)/float64(m))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, PValue: ksProb(lambda), N: n, M: m}
}

// ksProb evaluates Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	const eps1, eps2 = 1e-6, 1e-16
	a2 := -2 * lambda * lambda
	var sum, termBF float64
	fac := 2.0
	for j := 1; j <= 100; j++ {
		term := fac * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= eps1*termBF || math.Abs(term) <= eps2*sum {
			return clamp01(sum)
		}
		fac = -fac
		termBF = math.Abs(term)
	}
	return 1 // failed to converge: distributions are effectively identical
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Wasserstein computes the first Wasserstein distance (earth mover's
// distance) between the empirical distributions of a and b. The inputs
// are not modified.
func Wasserstein(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)

	// Merge all positions; integrate |F_a - F_b| over the merged support.
	all := make([]float64, 0, len(as)+len(bs))
	all = append(all, as...)
	all = append(all, bs...)
	sort.Float64s(all)

	var dist float64
	var ia, ib int
	for k := 0; k < len(all)-1; k++ {
		x := all[k]
		for ia < len(as) && as[ia] <= x {
			ia++
		}
		for ib < len(bs) && bs[ib] <= x {
			ib++
		}
		fa := float64(ia) / float64(len(as))
		fb := float64(ib) / float64(len(bs))
		dist += math.Abs(fa-fb) * (all[k+1] - all[k])
	}
	return dist
}
