package stats

import (
	"fmt"
	"math"
	"sync"
)

// Histogram is a log-bucketed histogram of non-negative int64 values
// (typically latencies in nanoseconds). It offers HDR-style bounded
// relative error with O(1) recording and compact memory, and is safe for
// concurrent use.
//
// Values are bucketed as (exponent, mantissa-slice): each power-of-two
// range is split into subBuckets linear sub-buckets, bounding relative
// quantile error to 1/subBuckets.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

const (
	subBucketBits = 5 // 32 sub-buckets per octave => <= ~3% relative error
	subBuckets    = 1 << subBucketBits
	numOctaves    = 64 - subBucketBits
	histBuckets   = numOctaves * subBuckets
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, histBuckets), min: math.MaxInt64}
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	u := uint64(v)
	if u < subBuckets {
		return int(u)
	}
	// Highest set bit determines the octave; the subBucketBits bits below
	// it select the linear sub-bucket.
	msb := 63 - leadingZeros64(u)
	shift := msb - subBucketBits
	sub := (u >> uint(shift)) & (subBuckets - 1)
	octave := msb - subBucketBits + 1
	return octave*subBuckets + int(sub)
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// bucketValue returns a representative (upper-bound) value for bucket i.
func bucketValue(i int) int64 {
	octave := i / subBuckets
	sub := uint64(i % subBuckets)
	if octave == 0 {
		return int64(sub)
	}
	shift := uint(octave - 1)
	base := uint64(subBuckets) << shift
	return int64(base + (sub+1)<<shift - 1)
}

// Record adds v to the histogram.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	i := bucketIndex(v)
	h.mu.Lock()
	h.counts[i]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.mu.Unlock()
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean of recorded values, or 0 if empty.
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value, or 0 if empty.
func (h *Histogram) Min() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 if empty.
func (h *Histogram) Max() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Sum returns the sum of all recorded values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// CumulativeCounts returns, for each bound in bounds (which must be
// sorted ascending), the number of recorded values whose bucket
// representative is <= that bound — the cumulative bucket counts of a
// Prometheus histogram exposition. The trailing +Inf bucket is the
// caller's job (it equals Count()).
func (h *Histogram) CumulativeCounts(bounds []int64) []uint64 {
	out := make([]uint64, len(bounds))
	if len(bounds) == 0 {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	j := 0
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		v := bucketValue(i)
		for j < len(bounds) && bounds[j] < v {
			out[j] = cum
			j++
		}
		if j == len(bounds) {
			break
		}
		cum += c
	}
	for ; j < len(bounds); j++ {
		out[j] = cum
	}
	return out
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1) with
// bounded relative error, or 0 if the histogram is empty.
func (h *Histogram) Quantile(q float64) int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.total)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// SummaryQuantiles is the harness-wide quantile ladder: both the
// Prometheus exposition's per-histogram summary lines and the textual
// replay result derive these (via Quantiles) so the two views always
// agree.
var SummaryQuantiles = []float64{0.5, 0.9, 0.99, 0.999}

// Quantiles returns an upper bound for each quantile in qs (which must
// be sorted ascending, each in [0, 1]) in a single pass over the
// buckets — the shared implementation behind the Prometheus summary
// lines and the textual result quantile block, so both always agree.
// Returns all zeros if the histogram is empty.
func (h *Histogram) Quantiles(qs []float64) []int64 {
	out := make([]int64, len(qs))
	if len(qs) == 0 {
		return out
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return out
	}
	targets := make([]uint64, len(qs))
	for i, q := range qs {
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		t := uint64(math.Ceil(q * float64(h.total)))
		if t == 0 {
			t = 1
		}
		targets[i] = t
	}
	j := 0
	var cum uint64
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		cum += c
		for j < len(qs) && cum >= targets[j] {
			v := bucketValue(i)
			if v > h.max {
				v = h.max
			}
			out[j] = v
			j++
		}
		if j == len(qs) {
			return out
		}
	}
	for ; j < len(qs); j++ {
		out[j] = h.max
	}
	return out
}

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	other.mu.Lock()
	counts := append([]uint64(nil), other.counts...)
	total, sum, mn, mx := other.total, other.sum, other.min, other.max
	other.mu.Unlock()

	h.mu.Lock()
	defer h.mu.Unlock()
	for i, c := range counts {
		h.counts[i] += c
	}
	h.total += total
	h.sum += sum
	if total > 0 {
		if mn < h.min {
			h.min = mn
		}
		if mx > h.max {
			h.max = mx
		}
	}
}

// Snapshot returns a human-readable one-line summary in microseconds,
// assuming the recorded values are nanoseconds.
func (h *Histogram) Snapshot() string {
	return fmt.Sprintf("n=%d mean=%.2fus p50=%.2fus p99=%.2fus p99.9=%.2fus max=%.2fus",
		h.Count(), h.Mean()/1e3,
		float64(h.Quantile(0.5))/1e3,
		float64(h.Quantile(0.99))/1e3,
		float64(h.Quantile(0.999))/1e3,
		float64(h.Max())/1e3)
}
