package stats

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	if Percentile([]float64{7}, 50) != 7 {
		t.Error("single-element percentile")
	}
}

func TestPercentileBounds(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p = math.Mod(math.Abs(p), 100)
		got := Percentile(xs, p)
		return got >= xs[0] && got <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean")
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("mean = %v", got)
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	// shuffle to prove Summarize sorts its own copy
	rand.New(rand.NewSource(1)).Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	s := Summarize(xs)
	if s.Count != 1000 || s.Min != 1 || s.Max != 1000 {
		t.Fatalf("summary = %+v", s)
	}
	if math.Abs(s.P50-500.5) > 1 || math.Abs(s.P999-999) > 1.5 {
		t.Fatalf("percentiles = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	if (Summary{}) != Summarize(nil) {
		t.Error("empty summarize should be zero value")
	}
}

func TestKSTestIdentical(t *testing.T) {
	a := make([]float64, 500)
	for i := range a {
		a[i] = float64(i)
	}
	r := KSTest(a, a)
	if r.D != 0 {
		t.Fatalf("D = %v for identical samples", r.D)
	}
	if r.PValue < 0.99 {
		t.Fatalf("p = %v for identical samples", r.PValue)
	}
}

func TestKSTestDisjoint(t *testing.T) {
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i + 1000)
	}
	r := KSTest(a, b)
	if r.D != 1 {
		t.Fatalf("D = %v for disjoint samples, want 1", r.D)
	}
	if !r.Reject(0.001) {
		t.Fatalf("p = %v should reject", r.PValue)
	}
}

func TestKSTestDifferentDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()*3 + 2
	}
	r := KSTest(a, b)
	if !r.Reject(0.001) {
		t.Fatalf("different normals should reject: %+v", r)
	}
}

func TestKSTestSameDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := make([]float64, 1000)
	b := make([]float64, 1000)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	r := KSTest(a, b)
	if r.Reject(0.001) {
		t.Fatalf("same uniform should not reject at 0.001: %+v", r)
	}
}

func TestKSTestEmpty(t *testing.T) {
	r := KSTest(nil, []float64{1, 2})
	if r.PValue != 1 || r.D != 0 {
		t.Fatalf("empty sample: %+v", r)
	}
}

func TestWasserstein(t *testing.T) {
	a := []float64{0, 0, 0}
	b := []float64{1, 1, 1}
	if got := Wasserstein(a, b); math.Abs(got-1) > 1e-9 {
		t.Fatalf("W(a,b) = %v, want 1", got)
	}
	if got := Wasserstein(a, a); got != 0 {
		t.Fatalf("W(a,a) = %v", got)
	}
	if got := Wasserstein(nil, b); got != 0 {
		t.Fatalf("W(nil,b) = %v", got)
	}
	// Shift invariance: W(x, x+c) == c.
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 500)
	ys := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64() * 10
		ys[i] = xs[i] + 2.5
	}
	if got := Wasserstein(xs, ys); math.Abs(got-2.5) > 0.01 {
		t.Fatalf("W(x, x+2.5) = %v", got)
	}
}

func TestWassersteinSymmetry(t *testing.T) {
	f := func(ra, rb []float64) bool {
		bound := func(xs []float64) []float64 {
			out := make([]float64, 0, len(xs))
			for _, x := range xs {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					continue
				}
				out = append(out, math.Mod(x, 1e6))
			}
			return out
		}
		a, b := bound(ra), bound(rb)
		d1 := Wasserstein(a, b)
		d2 := Wasserstein(b, a)
		return math.Abs(d1-d2) < 1e-9*(1+math.Abs(d1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for i := int64(1); i <= 1000; i++ {
		h.Record(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %d/%d", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-500.5) > 1e-9 {
		t.Fatalf("mean = %v", m)
	}
	// Relative error bound: 1/32 per octave.
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := 1000 * q
		got := float64(h.Quantile(q))
		if got < want*0.95 || got > want*1.10 {
			t.Errorf("q%.3f = %v, want ~%v", q, got, want)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Quantile(1) != 0 {
		t.Fatal("negative values should clamp to 0")
	}
}

func TestHistogramLargeValues(t *testing.T) {
	h := NewHistogram()
	v := int64(1) << 55
	h.Record(v)
	got := h.Quantile(0.99)
	if got < v || float64(got) > float64(v)*1.05 {
		t.Fatalf("large value quantile = %d, want ~%d", got, v)
	}
}

func TestHistogramMerge(t *testing.T) {
	h1 := NewHistogram()
	h2 := NewHistogram()
	for i := int64(0); i < 100; i++ {
		h1.Record(i)
		h2.Record(i + 1000)
	}
	h1.Merge(h2)
	if h1.Count() != 200 {
		t.Fatalf("merged count = %d", h1.Count())
	}
	if h1.Min() != 0 || h1.Max() != 1099 {
		t.Fatalf("merged min/max = %d/%d", h1.Min(), h1.Max())
	}
	empty := NewHistogram()
	empty.Merge(NewHistogram())
	if empty.Count() != 0 {
		t.Fatal("merging empties should stay empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Record(int64(g*1000 + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5000; i++ {
		h.Record(rng.Int63n(1 << 40))
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile not monotone at q=%v: %d < %d", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramSnapshot(t *testing.T) {
	h := NewHistogram()
	h.Record(1500)
	if h.Snapshot() == "" {
		t.Fatal("empty snapshot string")
	}
}

func TestBucketIndexValueConsistency(t *testing.T) {
	// Every value must land in a bucket whose representative value is >= v
	// and within the relative error bound.
	for _, v := range []int64{0, 1, 31, 32, 33, 100, 1023, 1024, 1 << 20, 1<<40 + 12345} {
		i := bucketIndex(v)
		rep := bucketValue(i)
		if rep < v {
			t.Errorf("bucketValue(%d)=%d < v=%d", i, rep, v)
		}
		if v > 64 && float64(rep) > float64(v)*1.07 {
			t.Errorf("bucket error too large: v=%d rep=%d", v, rep)
		}
	}
}

func TestHistogramQuantilesBatch(t *testing.T) {
	h := NewHistogram()
	// Empty histogram: all zeros, one slot per requested quantile.
	if got := h.Quantiles(SummaryQuantiles); len(got) != len(SummaryQuantiles) {
		t.Fatalf("got %d quantiles, want %d", len(got), len(SummaryQuantiles))
	} else {
		for i, v := range got {
			if v != 0 {
				t.Fatalf("empty histogram quantile[%d] = %d, want 0", i, v)
			}
		}
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10000; i++ {
		h.Record(int64(rng.Intn(1_000_000)))
	}
	batch := h.Quantiles(SummaryQuantiles)
	prev := int64(-1)
	for i, q := range SummaryQuantiles {
		// The single-pass batch must agree with the one-at-a-time path.
		if want := h.Quantile(q); batch[i] != want {
			t.Fatalf("Quantiles[%v] = %d, Quantile(%v) = %d", q, batch[i], q, want)
		}
		if batch[i] < prev {
			t.Fatalf("quantiles not monotone: %v", batch)
		}
		prev = batch[i]
	}
	if max := h.Max(); batch[len(batch)-1] > max {
		t.Fatalf("p99.9 %d exceeds recorded max %d", batch[len(batch)-1], max)
	}
}
