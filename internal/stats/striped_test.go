package stats

import (
	"sync"
	"testing"
)

func TestStripedHistogramMatchesPlain(t *testing.T) {
	s := NewStripedHistogram()
	p := NewHistogram()
	for i := int64(0); i < 10000; i++ {
		v := (i * 2654435761) % 1000000
		s.Record(v)
		p.Record(v)
	}
	if s.Count() != p.Count() {
		t.Fatalf("count: striped %d plain %d", s.Count(), p.Count())
	}
	snap := s.Snapshot()
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 0.999, 1} {
		if got, want := snap.Quantile(q), p.Quantile(q); got != want {
			t.Errorf("q%.3f: striped %d plain %d", q, got, want)
		}
	}
	if got, want := snap.Mean(), p.Mean(); got != want {
		t.Errorf("mean: striped %v plain %v", got, want)
	}
	if got, want := snap.Max(), p.Max(); got != want {
		t.Errorf("max: striped %d plain %d", got, want)
	}
}

func TestStripedHistogramConcurrent(t *testing.T) {
	s := NewStripedHistogram()
	const (
		workers = 8
		perG    = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Record(int64(w*perG + i))
			}
		}(w)
	}
	// Concurrent snapshots must be safe and monotone in count.
	done := make(chan struct{})
	go func() {
		defer close(done)
		var last uint64
		for i := 0; i < 100; i++ {
			n := s.Snapshot().Count()
			if n < last {
				t.Errorf("snapshot count went backwards: %d -> %d", last, n)
				return
			}
			last = n
		}
	}()
	wg.Wait()
	<-done
	if got, want := s.Count(), uint64(workers*perG); got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
}

func TestCumulativeCounts(t *testing.T) {
	h := NewHistogram()
	for _, v := range []int64{1, 2, 2, 10, 100, 1000, 100000} {
		h.Record(v)
	}
	bounds := []int64{0, 2, 50, 1 << 30}
	got := h.CumulativeCounts(bounds)
	// Bucket representatives below subBuckets are exact; larger values
	// land within ~3% of their true value, all far below the next bound.
	want := []uint64{0, 3, 4, 7}
	for i := range bounds {
		if got[i] != want[i] {
			t.Errorf("cum(<=%d) = %d, want %d", bounds[i], got[i], want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("cumulative counts not monotone: %v", got)
		}
	}
	if got[len(got)-1] != h.Count() {
		t.Fatalf("last bound below max: %v vs count %d", got, h.Count())
	}
	if n := h.CumulativeCounts(nil); len(n) != 0 {
		t.Fatalf("nil bounds: %v", n)
	}
}

// The satellite requirement: concurrent Record on the striped histogram
// must scale where the single-mutex histogram serializes.

func BenchmarkHistogramRecordParallel(b *testing.B) {
	h := NewHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v += 7919
			h.Record(v)
		}
	})
}

func BenchmarkStripedHistogramRecordParallel(b *testing.B) {
	h := NewStripedHistogram()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(0)
		for pb.Next() {
			v += 7919
			h.Record(v)
		}
	})
}
