// Package campaign runs scripted fault campaigns: a sweep over
// engines x crash points x checkpoint intervals where every cell
// replays the same trace through a mid-run crash, recovers from the
// newest checkpoint, and reports RTO (recovery downtime), the RPO
// proxy (operations replayed from the checkpoint watermark), and the
// happy-path checkpoint overhead — the robustness matrix the paper's
// evaluation methodology calls for alongside raw throughput numbers.
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/replay"
	"gadget/internal/stores"
	"gadget/internal/vfs"
)

// Options configures a campaign sweep.
type Options struct {
	// Trace is the workload every cell replays. Required.
	Trace []kv.Access
	// Engines to sweep. Default: every registry engine except "remote"
	// (a campaign crashes stores locally; a remote server is out of its
	// jurisdiction).
	Engines []string
	// CrashPoints are the logical op indices to crash at, one crash per
	// cell; 0 means a clean run (the overhead baseline for its row).
	// Default: {0, len(Trace)/2}.
	CrashPoints []uint64
	// Intervals are the checkpoint cadences in ops; 0 means no
	// checkpoints (recovery degrades to full replay).
	// Default: {0, len(Trace)/10}.
	Intervals []uint64
	// Store is the engine sizing template; Engine, Dir, and FS are
	// overwritten per cell.
	Store stores.Config
}

// Cell is one campaign measurement: a single engine under a single
// crash schedule and checkpoint cadence.
type Cell struct {
	Engine               string  `json:"engine"`
	CheckpointEvery      uint64  `json:"checkpoint_every_ops"`
	CrashAt              uint64  `json:"crash_at"` // 0 = clean run
	Recoveries           uint64  `json:"recoveries"`
	RTOMillis            float64 `json:"rto_ms"`       // total recovery downtime
	ReplayedOps          uint64  `json:"replayed_ops"` // RPO proxy
	Checkpoints          uint64  `json:"checkpoints"`
	CheckpointCostMillis float64 `json:"checkpoint_cost_ms"`
	CheckpointBytes      uint64  `json:"checkpoint_bytes"`
	// OverheadFrac is the fraction of run time spent cutting
	// checkpoints — the price of the recovery insurance.
	OverheadFrac  float64 `json:"overhead_frac"`
	ThroughputOps float64 `json:"throughput_ops"`
	// StateOK reports whether the final recovered state matched the
	// memstore oracle byte-for-byte.
	StateOK bool   `json:"state_ok"`
	Err     string `json:"err,omitempty"`
}

// Matrix is the campaign result: the robustness matrix plus enough
// workload context to interpret it.
type Matrix struct {
	TraceOps int    `json:"trace_ops"`
	Cells    []Cell `json:"cells"`
}

func (o *Options) defaults() error {
	if len(o.Trace) == 0 {
		return fmt.Errorf("campaign: empty trace")
	}
	if len(o.Engines) == 0 {
		for _, e := range stores.Engines() {
			if e != "remote" {
				o.Engines = append(o.Engines, e)
			}
		}
	}
	n := uint64(len(o.Trace))
	if len(o.CrashPoints) == 0 {
		o.CrashPoints = []uint64{0, n / 2}
	}
	if len(o.Intervals) == 0 {
		o.Intervals = []uint64{0, n / 10}
	}
	for _, p := range o.CrashPoints {
		if p >= n {
			return fmt.Errorf("campaign: crash point %d is past the trace end %d", p, n)
		}
	}
	return nil
}

// Run executes the sweep. Per-cell failures (an engine refusing to
// open, a state mismatch) are recorded in the cell, not returned: a
// campaign's job is to chart robustness, and a crashing cell is a
// data point, not an abort.
func Run(opts Options, logf func(format string, args ...any)) (Matrix, error) {
	if err := opts.defaults(); err != nil {
		return Matrix{}, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	oracle, err := oracleState(opts.Trace)
	if err != nil {
		return Matrix{}, fmt.Errorf("campaign: building oracle: %w", err)
	}
	m := Matrix{TraceOps: len(opts.Trace)}
	for _, engine := range opts.Engines {
		for _, interval := range opts.Intervals {
			for _, crashAt := range opts.CrashPoints {
				cell := runCell(opts, engine, interval, crashAt, oracle)
				m.Cells = append(m.Cells, cell)
				logf("campaign: %-10s ckpt_every=%-6d crash_at=%-6d rto=%.1fms replayed=%d ok=%v%s",
					engine, interval, crashAt, cell.RTOMillis, cell.ReplayedOps, cell.StateOK, errSuffix(cell.Err))
			}
		}
	}
	return m, nil
}

func errSuffix(e string) string {
	if e == "" {
		return ""
	}
	return " err=" + e
}

// oracleState replays the trace into a memstore and returns the final
// contents every cell's recovered store must match.
func oracleState(trace []kv.Access) ([]kv.Entry, error) {
	s := memstore.New()
	defer s.Close()
	var keyBuf [kv.KeyLen]byte
	for _, a := range trace {
		if _, err := replay.Apply(s, a, keyBuf[:]); err != nil {
			return nil, err
		}
	}
	return kv.ScanAll(s)
}

// runCell measures one (engine, interval, crash point) combination.
// The cell's world is a fresh MemFS modeling durable external storage:
// checkpoints are written straight to it, while each store attempt
// lives behind its own FaultFS in its own directory — a crash severs
// the FaultFS and abandons the directory, exactly the
// local-state-is-lost recovery model the runner assumes.
func runCell(opts Options, engine string, interval, crashAt uint64, oracle []kv.Entry) Cell {
	cell := Cell{Engine: engine, CheckpointEvery: interval, CrashAt: crashAt}
	world := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: world, Dir: "checkpoints", Engine: engine}

	var last kv.Store
	open := func(attempt int) (replay.Attempt, error) {
		cfg := opts.Store
		cfg.Engine = engine
		cfg.Dir = fmt.Sprintf("store/attempt-%d", attempt)
		if engine == "memstore" {
			s, err := stores.Open(cfg)
			if err != nil {
				return replay.Attempt{}, err
			}
			last = s
			return replay.Attempt{Store: s}, nil
		}
		ffs := vfs.NewFaultFS(world, vfs.FaultPlan{})
		cfg.FS = ffs
		s, err := stores.Open(cfg)
		if err != nil {
			return replay.Attempt{}, err
		}
		last = s
		return replay.Attempt{Store: s, Crash: func() {
			ffs.Crash()
			s.Close() // fails loudly on the severed FS; the error is the point
		}}, nil
	}

	ropts := replay.RecoveryOptions{CheckpointEvery: interval, Checkpointer: ck}
	if crashAt > 0 {
		ropts.CrashAtOps = []uint64{crashAt}
	}
	res, err := replay.RunWithRecovery(open, opts.Trace, ropts)
	if err != nil {
		cell.Err = err.Error()
		if last != nil {
			last.Close()
		}
		return cell
	}
	defer last.Close()

	cell.Recoveries = res.Recoveries
	cell.RTOMillis = float64(res.RecoveryTime) / float64(time.Millisecond)
	cell.ReplayedOps = res.ReplayedOps
	cell.Checkpoints = res.Checkpoints
	cell.CheckpointCostMillis = float64(res.CheckpointCost) / float64(time.Millisecond)
	cell.CheckpointBytes = res.CheckpointBytes
	if res.Duration > 0 {
		cell.OverheadFrac = float64(res.CheckpointCost) / float64(res.Duration)
	}
	cell.ThroughputOps = res.Throughput

	got, err := kv.ScanAll(last)
	if err != nil {
		cell.Err = fmt.Sprintf("scanning final state: %v", err)
		return cell
	}
	cell.StateOK = sameEntries(got, oracle)
	if !cell.StateOK && cell.Err == "" {
		cell.Err = fmt.Sprintf("final state diverged from oracle (%d entries vs %d)", len(got), len(oracle))
	}
	return cell
}

func sameEntries(got, want []kv.Entry) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i].Key != want[i].Key || string(got[i].Value) != string(want[i].Value) {
			return false
		}
	}
	return true
}

// JSON renders the matrix as an indented document for results/.
func (m Matrix) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteTable renders the matrix as an aligned text table, engines
// sorted, clean rows first within an engine.
func (m Matrix) WriteTable(w io.Writer) error {
	cells := append([]Cell(nil), m.Cells...)
	sort.SliceStable(cells, func(i, j int) bool {
		if cells[i].Engine != cells[j].Engine {
			return cells[i].Engine < cells[j].Engine
		}
		if cells[i].CheckpointEvery != cells[j].CheckpointEvery {
			return cells[i].CheckpointEvery < cells[j].CheckpointEvery
		}
		return cells[i].CrashAt < cells[j].CrashAt
	})
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "ENGINE\tCKPT_EVERY\tCRASH_AT\tRECOVERIES\tRTO_MS\tREPLAYED\tCKPTS\tOVERHEAD\tTHROUGHPUT\tSTATE")
	for _, c := range cells {
		state := "ok"
		if !c.StateOK {
			state = "FAIL"
			if c.Err != "" {
				state = "FAIL: " + c.Err
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.2f\t%d\t%d\t%.2f%%\t%.0f\t%s\n",
			c.Engine, c.CheckpointEvery, c.CrashAt, c.Recoveries, c.RTOMillis,
			c.ReplayedOps, c.Checkpoints, 100*c.OverheadFrac, c.ThroughputOps, state)
	}
	return tw.Flush()
}
