package campaign

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"

	"gadget/internal/kv"
)

func campaignTrace(n int, seed int64) []kv.Access {
	rng := rand.New(rand.NewSource(seed))
	out := make([]kv.Access, 0, n)
	for i := 0; i < n; i++ {
		a := kv.Access{
			Key:  kv.StateKey{Group: uint64(rng.Intn(8)), Sub: uint64(rng.Intn(32))},
			Size: uint32(8 + rng.Intn(24)),
			Time: int64(i),
		}
		switch rng.Intn(10) {
		case 0:
			a.Op = kv.OpDelete
		case 1, 2:
			a.Op = kv.OpGet
		case 3:
			a.Op = kv.OpMerge
		default:
			a.Op = kv.OpPut
		}
		out = append(out, a)
	}
	return out
}

func TestCampaignMatrix(t *testing.T) {
	trace := campaignTrace(800, 1)
	m, err := Run(Options{
		Trace:       trace,
		Engines:     []string{"memstore", "rocksdb", "berkeleydb"},
		CrashPoints: []uint64{0, 400},
		Intervals:   []uint64{0, 200},
	}, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 3*2*2 {
		t.Fatalf("got %d cells, want 12", len(m.Cells))
	}
	if m.TraceOps != len(trace) {
		t.Fatalf("TraceOps = %d, want %d", m.TraceOps, len(trace))
	}
	for _, c := range m.Cells {
		if !c.StateOK {
			t.Errorf("cell %+v: state mismatch (%s)", c, c.Err)
			continue
		}
		switch {
		case c.CrashAt == 0 && c.Recoveries != 0:
			t.Errorf("clean cell %+v reported recoveries", c)
		case c.CrashAt > 0 && c.Recoveries != 1:
			t.Errorf("crash cell %+v: recoveries = %d, want 1", c, c.Recoveries)
		}
		if c.CrashAt > 0 {
			// With checkpoints every 200 the crash at 400 replays at most
			// 200 ops; without checkpoints it replays all 400.
			if c.CheckpointEvery > 0 && c.ReplayedOps > c.CheckpointEvery {
				t.Errorf("cell %+v replayed more than one checkpoint interval", c)
			}
			if c.CheckpointEvery == 0 && c.ReplayedOps != c.CrashAt {
				t.Errorf("cell %+v: full replay should re-run %d ops, got %d", c, c.CrashAt, c.ReplayedOps)
			}
			if c.RTOMillis < 0 {
				t.Errorf("cell %+v: negative RTO", c)
			}
		}
		if c.CheckpointEvery > 0 && c.Checkpoints == 0 {
			t.Errorf("cell %+v cut no checkpoints", c)
		}
	}
}

func TestCampaignDefaults(t *testing.T) {
	o := Options{Trace: campaignTrace(100, 2)}
	if err := o.defaults(); err != nil {
		t.Fatal(err)
	}
	for _, e := range o.Engines {
		if e == "remote" {
			t.Fatal("default engine set must exclude remote")
		}
	}
	if len(o.Engines) == 0 || len(o.CrashPoints) == 0 || len(o.Intervals) == 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestCampaignRejectsBadOptions(t *testing.T) {
	if _, err := Run(Options{}, nil); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := Run(Options{Trace: campaignTrace(10, 3), CrashPoints: []uint64{10}}, nil); err == nil {
		t.Fatal("crash point past trace end should fail")
	}
}

func TestMatrixRenderers(t *testing.T) {
	m, err := Run(Options{
		Trace:       campaignTrace(200, 4),
		Engines:     []string{"memstore"},
		CrashPoints: []uint64{100},
		Intervals:   []uint64{50},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 1 || back.Cells[0].Engine != "memstore" {
		t.Fatalf("JSON roundtrip = %+v", back)
	}
	var buf bytes.Buffer
	if err := m.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ENGINE", "memstore", "RTO_MS", "ok"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table %q missing %q", out, want)
		}
	}
}
