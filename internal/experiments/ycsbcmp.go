package experiments

import (
	"fmt"

	"gadget/internal/analysis"
	"gadget/internal/core"
	"gadget/internal/dist"
	"gadget/internal/kv"
	"gadget/internal/stats"
	"gadget/internal/ycsb"
)

// tunedYCSB builds the paper's §4 manually tuned YCSB workloads for a
// real trace: same operation count, same key count, same read ratio, and
// the requested request distribution. Aggregation-like read/update pairs
// use read-modify-write, as the paper does.
func tunedYCSB(real []kv.Access, op core.OperatorType, kind dist.Kind, seed int64) ([]kv.Access, error) {
	comp := analysis.Compose(real)
	records := uint64(distinctState(real))
	if records == 0 {
		records = 1
	}
	rmw := op == core.Aggregation
	return ycsb.Tuned(records, uint64(len(real)), comp.Get, rmw, kind, 256, seed)
}

func distinctState(tr []kv.Access) int {
	seen := make(map[kv.StateKey]struct{}, 1024)
	for _, a := range tr {
		seen[a.Key] = struct{}{}
	}
	return len(seen)
}

// Figure7YCSBLocality reproduces Figure 7 (and the §4 analysis): tuned
// YCSB traces cannot match both the temporal and the spatial locality of
// real streaming state traces.
func Figure7YCSBLocality(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig7",
		Title:  "Real vs tuned YCSB locality (Borg)",
		Header: []string{"operator", "trace", "mean-stack-dist", "uniq-seq-10"},
	}
	ds := borg(s)
	for _, op := range representativeOps() {
		real, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		ycsbL, err := tunedYCSB(real, op, dist.Latest, 4)
		if err != nil {
			return rep, err
		}
		ycsbS, err := tunedYCSB(real, op, dist.Sequential, 5)
		if err != nil {
			return rep, err
		}
		ids := analysis.KeyIDs(real)
		shuf := analysis.Shuffle(ids, 9)
		type row struct {
			name string
			ids  []uint64
		}
		var meanSD = map[string]float64{}
		var seq10 = map[string]int{}
		for _, r := range []row{
			{"real", ids},
			{"shuffled", shuf},
			{"ycsb-latest", analysis.KeyIDs(ycsbL)},
			{"ycsb-seq", analysis.KeyIDs(ycsbS)},
		} {
			d, _ := analysis.StackDistances(r.ids)
			sq := analysis.UniqueSequences(r.ids, 10)
			meanSD[r.name] = meanOf(d)
			seq10[r.name] = sq[9]
			rep.Rows = append(rep.Rows, []string{
				string(op), r.name, f2(meanSD[r.name]), fmt.Sprintf("%d", sq[9]),
			})
		}
		strict := op != core.IntervalJoin
		rep.Checks = append(rep.Checks,
			check(meanSD["real"] < meanSD["ycsb-latest"] || !strict,
				"%s: real trace is temporally hotter than YCSB-latest (%.1f vs %.1f)",
				op, meanSD["real"], meanSD["ycsb-latest"]),
			check(seq10["ycsb-seq"] < seq10["real"],
				"%s: YCSB-sequential overshoots spatial locality (%d < %d unique seqs)",
				op, seq10["ycsb-seq"], seq10["real"]),
			check(seq10["real"] < seq10["shuffled"] || (!strict && seq10["real"] <= seq10["shuffled"]),
				"%s: real trace has spatial structure its shuffle lacks (%d vs %d)",
				op, seq10["real"], seq10["shuffled"]),
		)
	}
	return rep, nil
}

// Table3TTL reproduces Table 3: key Time-to-Live in real traces vs the
// closest tuned YCSB traces.
func Table3TTL(s Scale) (Report, error) {
	rep := Report{
		ID:     "table3",
		Title:  "TTL (trace steps): real vs closest YCSB",
		Header: []string{"operator", "trace", "p50", "p90", "p99.9", "max", "once-share"},
	}
	ds := borg(s)
	for _, op := range representativeOps() {
		real, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		ycsbL, err := tunedYCSB(real, op, dist.Latest, 6)
		if err != nil {
			return rep, err
		}
		realIDs := analysis.KeyIDs(real)
		ycsbIDs := analysis.KeyIDs(ycsbL)
		realTTL := analysis.SampleTTLs(realIDs, 1000, 11)
		ycsbTTL := analysis.SampleTTLs(ycsbIDs, 1000, 11)
		_, realOnce := analysis.TTLs(realIDs)
		_, ycsbOnce := analysis.TTLs(ycsbIDs)
		emit := func(name string, s stats.Summary, once float64) {
			rep.Rows = append(rep.Rows, []string{
				string(op), name, f2(s.P50), f2(s.P90), f2(s.P999), f2(s.Max), f3(once),
			})
		}
		emit("real", realTTL, realOnce)
		emit("ycsb-latest", ycsbTTL, ycsbOnce)
		rep.Checks = append(rep.Checks,
			check(realTTL.P50 < ycsbTTL.P50 || realTTL.P90 < ycsbTTL.P90,
				"%s: real keys live far shorter than YCSB keys (p50 %.0f vs %.0f)",
				op, realTTL.P50, ycsbTTL.P50),
		)
		// Streaming traces never touch a key exactly once; YCSB does
		// whenever the keyspace outgrows the zipf head (window operators).
		if op != core.Aggregation {
			rep.Checks = append(rep.Checks, check(realOnce < 0.05 && ycsbOnce > realOnce,
				"%s: YCSB leaves more keys accessed once (%.2f vs %.2f)", op, ycsbOnce, realOnce))
		}
	}
	return rep, nil
}
