package experiments

import (
	"strings"
	"testing"
)

// Characterization experiments must pass their shape checks even at the
// tiny CI scale.
func TestCharacterizationExperiments(t *testing.T) {
	s := QuickScale()
	for _, id := range []string{"table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "table3", "fig10"} {
		id := id
		t.Run(id, func(t *testing.T) {
			run, ok := ByID(id)
			if !ok {
				t.Fatalf("missing runner %s", id)
			}
			rep, err := run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			if failed := rep.Failed(); len(failed) > 0 {
				t.Fatalf("shape checks failed:\n%s", strings.Join(failed, "\n"))
			}
			if rep.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

// Performance experiments must run to completion; their shape checks are
// hardware dependent, so failures degrade to warnings here.
func TestPerformanceExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("performance experiments skipped in -short mode")
	}
	s := QuickScale()
	for _, id := range []string{"fig11", "fig12", "fig13", "fig14"} {
		id := id
		t.Run(id, func(t *testing.T) {
			run, _ := ByID(id)
			rep, err := run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, w := range rep.Failed() {
				t.Logf("note (scale-dependent): %s", w)
			}
		})
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, ok := ByID("fig99"); ok {
		t.Fatal("unknown id should miss")
	}
}

func TestAllUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 14 {
		t.Fatalf("expected 14 experiments, got %d", len(seen))
	}
}

func TestReportRendering(t *testing.T) {
	rep := Report{
		ID: "x", Title: "t",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "22"}},
		Checks: []string{"PASS ok", "WARN nope"},
	}
	out := rep.String()
	if !strings.Contains(out, "PASS ok") || !strings.Contains(out, "22") {
		t.Fatalf("render = %q", out)
	}
	if len(rep.Failed()) != 1 {
		t.Fatalf("failed = %v", rep.Failed())
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations skipped in -short mode")
	}
	s := QuickScale()
	for _, a := range Ablations() {
		a := a
		t.Run(a.ID, func(t *testing.T) {
			rep, err := a.Run(s)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Rows) == 0 {
				t.Fatal("no rows")
			}
			for _, w := range rep.Failed() {
				t.Logf("note (scale-dependent): %s", w)
			}
		})
	}
}

func TestAblationByID(t *testing.T) {
	if _, ok := AblationByID("ablate-bloom"); !ok {
		t.Fatal("missing ablation")
	}
	if _, ok := AblationByID("nope"); ok {
		t.Fatal("unknown ablation should miss")
	}
}
