package experiments

import (
	"fmt"
	"path/filepath"
	"time"

	"gadget/internal/core"
	"gadget/internal/faster"
	"gadget/internal/kv"
	"gadget/internal/lethe"
	"gadget/internal/lsm"
	"gadget/internal/remote"
	"gadget/internal/replay"
)

// Ablations isolate the design choices DESIGN.md calls out: Bloom
// filters and block cache sizing in the LSM, memtable sizing (write
// amplification), Lethe's delete persistence threshold, and FASTER's
// mutable-region fraction. They are not paper figures; they quantify
// *why* the figures come out the way they do.
func Ablations() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"ablate-bloom", AblationBloom},
		{"ablate-cache", AblationBlockCache},
		{"ablate-memtable", AblationMemtable},
		{"ablate-lethe", AblationLetheThreshold},
		{"ablate-faster", AblationFasterMutable},
		{"ablate-external", AblationExternalState},
	}
}

// AblationByID returns the named ablation runner.
func AblationByID(id string) (Runner, bool) {
	for _, a := range Ablations() {
		if a.ID == id {
			return a.Run, true
		}
	}
	return nil, false
}

// AblationBloom measures what the Bloom filters buy on a miss-heavy
// workload (interval-join probes miss by construction).
func AblationBloom(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-bloom",
		Title:  "LSM Bloom filters on a miss-heavy workload (interval join)",
		Header: []string{"bloom", "kops/s", "misses"},
	}
	tr, err := syntheticGadgetTrace(s, core.IntervalJoin, 61)
	if err != nil {
		return rep, err
	}
	thr := map[bool]float64{}
	for _, disable := range []bool{false, true} {
		dir, cleanup, err := workDir(s, "ablate-bloom")
		if err != nil {
			return rep, err
		}
		db, err := lsm.Open(lsm.Options{
			Dir:          filepath.Join(dir, "db"),
			MemtableSize: s.StoreMemBytes / 4, // force data onto disk
			DisableBloom: disable,
		})
		if err != nil {
			cleanup()
			return rep, err
		}
		res, err := replay.Run(db, tr, replay.Options{})
		db.Close()
		cleanup()
		if err != nil {
			return rep, err
		}
		thr[disable] = res.Throughput
		label := "on"
		if disable {
			label = "off"
		}
		rep.Rows = append(rep.Rows, []string{label, f2(res.Throughput / 1000), fmt.Sprintf("%d", res.Misses)})
	}
	rep.Checks = append(rep.Checks, check(thr[false] > thr[true],
		"Bloom filters speed up miss-heavy reads (%.0f vs %.0f ops/s)", thr[false], thr[true]))
	return rep, nil
}

// AblationBlockCache sweeps the LSM block cache on a read-heavy zipfian
// workload.
func AblationBlockCache(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-cache",
		Title:  "LSM block cache sweep (aggregation workload)",
		Header: []string{"cache", "kops/s", "hit-rate"},
	}
	tr, err := syntheticGadgetTrace(s, core.Aggregation, 62)
	if err != nil {
		return rep, err
	}
	var rates []float64
	for _, mult := range []int64{1, 4, 16} {
		dir, cleanup, err := workDir(s, "ablate-cache")
		if err != nil {
			return rep, err
		}
		db, err := lsm.Open(lsm.Options{
			Dir:            filepath.Join(dir, "db"),
			MemtableSize:   s.StoreMemBytes / 4,
			BlockCacheSize: s.StoreMemBytes * mult / 4,
		})
		if err != nil {
			cleanup()
			return rep, err
		}
		res, err := replay.Run(db, tr, replay.Options{})
		hits, misses := db.CacheStats()
		db.Close()
		cleanup()
		if err != nil {
			return rep, err
		}
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		rates = append(rates, rate)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dKiB", s.StoreMemBytes*mult/4/1024), f2(res.Throughput / 1000), f3(rate),
		})
	}
	rep.Checks = append(rep.Checks, check(rates[len(rates)-1] >= rates[0],
		"hit rate grows with cache size (%v -> %v)", f3(rates[0]), f3(rates[len(rates)-1])))
	return rep, nil
}

// AblationMemtable sweeps the LSM write buffer and reports write
// amplification (bytes flushed + compacted per user byte).
func AblationMemtable(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-memtable",
		Title:  "LSM memtable sweep: write amplification (tumbling window)",
		Header: []string{"memtable", "kops/s", "write-amp", "compactions"},
	}
	tr, err := syntheticGadgetTrace(s, core.TumblingIncr, 63)
	if err != nil {
		return rep, err
	}
	var userBytes uint64
	for _, a := range tr {
		if a.Op == kv.OpPut || a.Op == kv.OpMerge {
			userBytes += uint64(a.Size) + 2*kv.KeyLen
		}
	}
	var amps []float64
	for _, div := range []int64{16, 4, 1} {
		dir, cleanup, err := workDir(s, "ablate-memtable")
		if err != nil {
			return rep, err
		}
		db, err := lsm.Open(lsm.Options{
			Dir:          filepath.Join(dir, "db"),
			MemtableSize: s.StoreMemBytes / div,
		})
		if err != nil {
			cleanup()
			return rep, err
		}
		res, err := replay.Run(db, tr, replay.Options{})
		st := db.StatsSnapshot()
		db.Close()
		cleanup()
		if err != nil {
			return rep, err
		}
		amp := float64(st.BytesFlushed+st.BytesCompacted) / float64(userBytes)
		amps = append(amps, amp)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%dKiB", s.StoreMemBytes/div/1024),
			f2(res.Throughput / 1000), f2(amp), fmt.Sprintf("%d", st.Compactions),
		})
	}
	rep.Checks = append(rep.Checks, check(amps[len(amps)-1] <= amps[0],
		"larger write buffers reduce write amplification (%.2f -> %.2f)", amps[0], amps[len(amps)-1]))
	return rep, nil
}

// AblationLetheThreshold sweeps Lethe's delete persistence threshold on
// a delete-heavy window workload.
func AblationLetheThreshold(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-lethe",
		Title:  "Lethe delete persistence threshold (delete-heavy windows)",
		Header: []string{"threshold", "kops/s", "tombstones-dropped", "final-size-KiB"},
	}
	tr, err := syntheticGadgetTrace(s, core.TumblingIncr, 64)
	if err != nil {
		return rep, err
	}
	var dropped []uint64
	for _, th := range []time.Duration{time.Millisecond, 100 * time.Millisecond, time.Hour} {
		dir, cleanup, err := workDir(s, "ablate-lethe")
		if err != nil {
			return rep, err
		}
		db, err := lethe.Open(lethe.Options{
			LSM: lsm.Options{
				Dir:          filepath.Join(dir, "db"),
				MemtableSize: s.StoreMemBytes / 8,
			},
			DeleteThreshold: th,
		})
		if err != nil {
			cleanup()
			return rep, err
		}
		res, err := replay.Run(db, tr, replay.Options{})
		st := db.StatsSnapshot()
		size := db.ApproximateSize()
		db.Close()
		cleanup()
		if err != nil {
			return rep, err
		}
		dropped = append(dropped, st.TombstonesDropped)
		rep.Rows = append(rep.Rows, []string{
			th.String(), f2(res.Throughput / 1000),
			fmt.Sprintf("%d", st.TombstonesDropped), fmt.Sprintf("%d", size/1024),
		})
	}
	rep.Checks = append(rep.Checks, check(dropped[0] >= dropped[len(dropped)-1],
		"eager thresholds drop at least as many tombstones (%d vs %d)", dropped[0], dropped[len(dropped)-1]))
	return rep, nil
}

// AblationFasterMutable sweeps FASTER's in-place-update region fraction
// on an update-heavy workload.
func AblationFasterMutable(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-faster",
		Title:  "FASTER mutable-region fraction (aggregation workload)",
		Header: []string{"mutable-fraction", "kops/s", "log-KiB"},
	}
	tr, err := syntheticGadgetTrace(s, core.Aggregation, 65)
	if err != nil {
		return rep, err
	}
	var logSizes []int64
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		dir, cleanup, err := workDir(s, "ablate-faster")
		if err != nil {
			return rep, err
		}
		st, err := faster.Open(faster.Options{
			Dir:             filepath.Join(dir, "db"),
			LogMemBudget:    s.StoreMemBytes,
			IndexBuckets:    4096,
			MutableFraction: frac,
		})
		if err != nil {
			cleanup()
			return rep, err
		}
		res, err := replay.Run(st, tr, replay.Options{})
		size := st.ApproximateSize()
		st.Close()
		cleanup()
		if err != nil {
			return rep, err
		}
		logSizes = append(logSizes, size)
		rep.Rows = append(rep.Rows, []string{
			f2(frac), f2(res.Throughput / 1000), fmt.Sprintf("%d", size/1024),
		})
	}
	rep.Checks = append(rep.Checks, check(logSizes[len(logSizes)-1] <= logSizes[0],
		"a larger mutable region appends less to the log (%dKiB vs %dKiB)",
		logSizes[len(logSizes)-1]/1024, logSizes[0]/1024))
	return rep, nil
}

// AblationExternalState compares embedded state against the paper §8
// external deployment: the same engine behind a loopback TCP server.
func AblationExternalState(s Scale) (Report, error) {
	rep := Report{
		ID:     "ablate-external",
		Title:  "Embedded vs external (TCP) state management (aggregation)",
		Header: []string{"deployment", "kops/s", "mean(us)", "p99.9(us)"},
	}
	tr, err := syntheticGadgetTrace(s, core.Aggregation, 66)
	if err != nil {
		return rep, err
	}
	dir, cleanup, err := workDir(s, "ablate-external")
	if err != nil {
		return rep, err
	}
	defer cleanup()

	embedded, err := openScaledStore(s, "rocksdb", filepath.Join(dir, "embedded"))
	if err != nil {
		return rep, err
	}
	embRes, err := replay.Run(embedded, tr, replay.Options{})
	embedded.Close()
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, []string{"embedded", f2(embRes.Throughput / 1000), f2(embRes.MeanMicros()), f2(embRes.P999Micros())})

	backing, err := openScaledStore(s, "rocksdb", filepath.Join(dir, "external"))
	if err != nil {
		return rep, err
	}
	defer backing.Close()
	srv, err := remote.Serve(backing, "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	defer srv.Close()
	cli, err := remote.Dial(srv.Addr())
	if err != nil {
		return rep, err
	}
	defer cli.Close()
	extRes, err := replay.Run(cli, tr, replay.Options{})
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows, []string{"external", f2(extRes.Throughput / 1000), f2(extRes.MeanMicros()), f2(extRes.P999Micros())})

	rep.Checks = append(rep.Checks,
		check(embRes.Throughput > extRes.Throughput,
			"network hops cost throughput (%.0f vs %.0f ops/s) - the decoupling trade-off the paper's intro cites",
			embRes.Throughput, extRes.Throughput),
		check(extRes.MeanMicros() > embRes.MeanMicros(),
			"external state adds per-op latency (%.1fus vs %.1fus mean)",
			extRes.MeanMicros(), embRes.MeanMicros()),
	)
	return rep, nil
}
