// Package experiments reproduces every table and figure of the paper's
// characterization (§3), YCSB comparison (§4), and evaluation (§6). Each
// experiment is a runner keyed by the paper's table/figure id; it
// returns a Report with formatted rows plus shape checks that assert the
// paper's qualitative findings (who wins, what grows, where the gaps
// are) on this reproduction's scaled-down runs.
package experiments

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"gadget/internal/core"
	"gadget/internal/datasets"
	"gadget/internal/eventgen"
	"gadget/internal/flinksim"
	"gadget/internal/kv"
	"gadget/internal/stores"
)

// Scale shrinks the paper's multi-hour runs to laptop/CI budgets while
// preserving memory-pressure ratios and workload shapes.
type Scale struct {
	// DatasetScale multiplies the paper-sized dataset event counts.
	DatasetScale float64
	// YCSBOps is the YCSB operation count (paper: 2M).
	YCSBOps uint64
	// YCSBKeys is the YCSB record count (paper: 1000).
	YCSBKeys uint64
	// PerfEvents is the input event count for store-performance runs.
	PerfEvents int
	// StoreMemBytes is the base unit for store memory budgets; engines
	// get paper-proportional multiples of it (paper base: 64 MiB).
	StoreMemBytes int64
	// WorkDir hosts store directories; empty uses a temp dir per run.
	WorkDir string
}

// DefaultScale targets a ~2 minute full reproduction.
func DefaultScale() Scale {
	return Scale{
		DatasetScale:  0.01,
		YCSBOps:       200_000,
		YCSBKeys:      1000,
		PerfEvents:    60_000,
		StoreMemBytes: 4 << 20,
	}
}

// QuickScale targets CI smoke runs (a few seconds).
func QuickScale() Scale {
	return Scale{
		DatasetScale:  0.002,
		YCSBOps:       20_000,
		YCSBKeys:      500,
		PerfEvents:    8_000,
		StoreMemBytes: 1 << 20,
	}
}

// Report is one experiment's outcome.
type Report struct {
	// ID is the paper's table/figure id ("table1", "fig13", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Header labels the row columns.
	Header []string
	// Rows carry the regenerated numbers.
	Rows [][]string
	// Checks record the paper's qualitative claims verified against this
	// run; each is "PASS ..." or "WARN ...".
	Checks []string
}

// Failed returns the checks that did not pass.
func (r Report) Failed() []string {
	var out []string
	for _, c := range r.Checks {
		if !strings.HasPrefix(c, "PASS") {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report as an aligned text table.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	rows := append([][]string{r.Header}, r.Rows...)
	widths := make([]int, 0)
	for _, row := range rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for ri, row := range rows {
		for i, cell := range row {
			fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
		}
		b.WriteString("\n")
		if ri == 0 {
			total := 0
			for _, w := range widths {
				total += w + 2
			}
			b.WriteString(strings.Repeat("-", total) + "\n")
		}
	}
	for _, c := range r.Checks {
		fmt.Fprintf(&b, "%s\n", c)
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Scale) (Report, error)

// All returns every experiment runner in paper order.
func All() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"table1", Table1Composition},
		{"table2", Table2KSTest},
		{"fig2", Figure2WindowConfig},
		{"fig3", Figure3Amplification},
		{"fig4", Figure4SlideSweep},
		{"fig5", Figure5Locality},
		{"fig6", Figure6Watermarks},
		{"fig7", Figure7YCSBLocality},
		{"table3", Table3TTL},
		{"fig10", Figure10GadgetAccuracy},
		{"fig11", Figure11TraceFidelity},
		{"fig12", Figure12YCSBCore},
		{"fig13", Figure13StoreShootout},
		{"fig14", Figure14Concurrent},
	}
}

// ByID returns the runner for a paper id.
func ByID(id string) (Runner, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// paperConfig returns the paper's default operator parameters (§3.1.2).
func paperConfig(op core.OperatorType) core.Config {
	return core.Config{
		Operator:        op,
		WindowLengthMs:  5000,
		WindowSlideMs:   1000,
		SessionGapMs:    120000,
		IntervalLowerMs: 120000,
		IntervalUpperMs: 180000,
	}
}

const watermarkEvery = 100

// characterizationOps are the nine operators of Tables 1-2 (window joins
// are part of the eleven store workloads but not the characterization).
func characterizationOps() []core.OperatorType {
	return []core.OperatorType{
		core.TumblingIncr, core.SlidingIncr, core.SessionIncr,
		core.TumblingHol, core.SlidingHol, core.SessionHol,
		core.ContinJoin, core.IntervalJoin, core.Aggregation,
	}
}

// representativeOps are the three operators of §3.2.3 and §4.
func representativeOps() []core.OperatorType {
	return []core.OperatorType{core.Aggregation, core.TumblingIncr, core.IntervalJoin}
}

// sourceFor builds the right (possibly two-stream) source for op.
func sourceFor(ds datasets.Streams, op core.OperatorType) (eventgen.Source, bool) {
	if op.IsJoin() {
		return ds.JoinSource(watermarkEvery)
	}
	return ds.Source(watermarkEvery), true
}

// allEvents returns the input events op consumes from ds.
func allEvents(ds datasets.Streams, op core.OperatorType) []eventgen.Event {
	if op.IsJoin() && ds.Secondary != nil {
		out := make([]eventgen.Event, 0, len(ds.Primary)+len(ds.Secondary))
		out = append(out, ds.Primary...)
		return append(out, ds.Secondary...)
	}
	return ds.Primary
}

// realTrace collects the ground-truth trace from the reference engine.
func realTrace(ds datasets.Streams, cfg core.Config) ([]kv.Access, error) {
	src, ok := sourceFor(ds, cfg.Operator)
	if !ok {
		return nil, fmt.Errorf("experiments: dataset %s cannot drive %s", ds.Name, cfg.Operator)
	}
	tr, _, err := flinksim.CollectTrace(cfg, src)
	return tr, err
}

// gadgetTrace generates the trace with the Gadget harness.
func gadgetTrace(ds datasets.Streams, cfg core.Config) ([]kv.Access, error) {
	src, ok := sourceFor(ds, cfg.Operator)
	if !ok {
		return nil, fmt.Errorf("experiments: dataset %s cannot drive %s", ds.Name, cfg.Operator)
	}
	op, err := core.New(cfg)
	if err != nil {
		return nil, err
	}
	return core.Generate(src, op), nil
}

// perfEngines are the four stores of the paper's evaluation.
func perfEngines() []string { return []string{"rocksdb", "lethe", "faster", "berkeleydb"} }

// openScaledStore opens an engine with paper-proportional memory budgets
// derived from s.StoreMemBytes (the paper's base unit is 64 MiB):
// RocksDB/Lethe get 2x write buffers plus a 1x cache, BerkeleyDB a 4x
// cache, FASTER a 4x log and a 1x index.
func openScaledStore(s Scale, engine, dir string) (kv.Store, error) {
	unit := s.StoreMemBytes
	if unit <= 0 {
		unit = 4 << 20
	}
	cfg := stores.Config{Engine: engine, Dir: dir}
	switch engine {
	case "rocksdb", "lethe", "lsm":
		cfg.MemtableBytes = 2 * unit
		cfg.CacheBytes = unit
		cfg.DeleteThresholdMs = 10000
	case "berkeleydb", "btree":
		cfg.CacheBytes = 4 * unit
	case "faster":
		cfg.LogMemBytes = 4 * unit
		cfg.IndexBuckets = int(unit / 8)
	}
	return stores.Open(cfg)
}

// workDir allocates a fresh store directory under the scale's WorkDir.
func workDir(s Scale, name string) (string, func(), error) {
	base := s.WorkDir
	if base == "" {
		dir, err := os.MkdirTemp("", "gadget-"+name+"-*")
		if err != nil {
			return "", nil, err
		}
		return dir, func() { os.RemoveAll(dir) }, nil
	}
	dir, err := os.MkdirTemp(base, name+"-*")
	if err != nil {
		return "", nil, err
	}
	return dir, func() { os.RemoveAll(dir) }, nil
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func check(ok bool, format string, args ...interface{}) string {
	prefix := "PASS "
	if !ok {
		prefix = "WARN "
	}
	return prefix + fmt.Sprintf(format, args...)
}

// sortedKeys returns map keys in sorted order (deterministic reports).
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
