package experiments

import (
	"fmt"
	"math"
	"path/filepath"

	"gadget/internal/analysis"
	"gadget/internal/core"
	"gadget/internal/dist"
	"gadget/internal/eventgen"
	"gadget/internal/kv"
	"gadget/internal/replay"
	"gadget/internal/ycsb"
)

// syntheticSource builds the synthetic input for store-performance runs
// (zipfian keys, paper-style watermarking; joins get a second stream
// with validity start/end pairs).
func syntheticSource(s Scale, op core.OperatorType, seed int64) (eventgen.Source, error) {
	mk := func(stream uint8, pairs bool) (eventgen.Source, error) {
		g, err := eventgen.NewSynthetic(eventgen.Config{
			Events:        s.PerfEvents,
			Keys:          1000,
			KeyDist:       dist.Zipfian,
			RatePerSec:    500,
			ValueSize:     64,
			Seed:          seed + int64(stream),
			Stream:        stream,
			StartEndPairs: pairs,
		})
		if err != nil {
			return nil, err
		}
		return eventgen.WithWatermarks(g, watermarkEvery, 0), nil
	}
	if op.IsJoin() {
		a, err := mk(0, false)
		if err != nil {
			return nil, err
		}
		b, err := mk(1, true)
		if err != nil {
			return nil, err
		}
		return eventgen.NewRoundRobin(a, b), nil
	}
	return mk(0, false)
}

func syntheticGadgetTrace(s Scale, op core.OperatorType, seed int64) ([]kv.Access, error) {
	src, err := syntheticSource(s, op, seed)
	if err != nil {
		return nil, err
	}
	o, err := core.New(paperConfig(op))
	if err != nil {
		return nil, err
	}
	return core.Generate(src, o), nil
}

// replayOn opens engine in a fresh directory and replays the trace.
func replayOn(s Scale, engine, label string, tr []kv.Access) (replay.Result, error) {
	dir, cleanup, err := workDir(s, engine+"-"+label)
	if err != nil {
		return replay.Result{}, err
	}
	defer cleanup()
	store, err := openScaledStore(s, engine, filepath.Join(dir, "db"))
	if err != nil {
		return replay.Result{}, err
	}
	defer store.Close()
	return replay.Run(store, tr, replay.Options{})
}

// Figure10GadgetAccuracy reproduces Figure 10: Gadget traces exhibit the
// same temporal and spatial locality as the real (reference engine)
// traces.
func Figure10GadgetAccuracy(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig10",
		Title:  "Gadget vs real trace locality (Borg)",
		Header: []string{"operator", "trace", "mean-stack-dist", "uniq-seq-10", "ops"},
	}
	ds := borg(s)
	for _, op := range representativeOps() {
		real, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		sim, err := gadgetTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		rIDs, gIDs := analysis.KeyIDs(real), analysis.KeyIDs(sim)
		rd, _ := analysis.StackDistances(rIDs)
		gd, _ := analysis.StackDistances(gIDs)
		rSeq := analysis.UniqueSequences(rIDs, 10)[9]
		gSeq := analysis.UniqueSequences(gIDs, 10)[9]
		rep.Rows = append(rep.Rows,
			[]string{string(op), "real", f2(meanOf(rd)), fmt.Sprintf("%d", rSeq), fmt.Sprintf("%d", len(real))},
			[]string{string(op), "gadget", f2(meanOf(gd)), fmt.Sprintf("%d", gSeq), fmt.Sprintf("%d", len(sim))},
		)
		sdErr := relErr(meanOf(gd), meanOf(rd))
		seqErr := relErr(float64(gSeq), float64(rSeq))
		rep.Checks = append(rep.Checks,
			check(sdErr < 0.05, "%s: Gadget matches real temporal locality within 5%% (err %.1f%%)", op, sdErr*100),
			check(seqErr < 0.05, "%s: Gadget matches real spatial locality within 5%% (err %.1f%%)", op, seqErr*100),
		)
	}
	return rep, nil
}

func relErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return 1
	}
	return math.Abs(got-want) / math.Abs(want)
}

// Figure11TraceFidelity reproduces Figure 11: replaying Gadget traces
// yields store performance close to replaying real traces, while tuned
// YCSB traces can be off by large factors.
func Figure11TraceFidelity(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig11",
		Title:  "Store performance: real vs Gadget vs tuned YCSB traces (Borg)",
		Header: []string{"operator", "engine", "trace", "kops/s", "p99.9(us)"},
	}
	ds := borg(s)
	for _, op := range representativeOps() {
		real, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		sim, err := gadgetTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		ycsbL, err := tunedYCSB(real, op, dist.Latest, 21)
		if err != nil {
			return rep, err
		}
		ycsbS, err := tunedYCSB(real, op, dist.Sequential, 22)
		if err != nil {
			return rep, err
		}
		traces := []struct {
			name string
			tr   []kv.Access
		}{{"real", real}, {"gadget", sim}, {"ycsb-latest", ycsbL}, {"ycsb-seq", ycsbS}}

		gadgetErrs, ycsbErrs := []float64{}, []float64{}
		for _, engine := range perfEngines() {
			thr := map[string]float64{}
			for _, t := range traces {
				res, err := replayOn(s, engine, "fig11", t.tr)
				if err != nil {
					return rep, fmt.Errorf("fig11 %s/%s/%s: %w", op, engine, t.name, err)
				}
				thr[t.name] = res.Throughput
				rep.Rows = append(rep.Rows, []string{
					string(op), engine, t.name, f2(res.Throughput / 1000), f2(res.P999Micros()),
				})
			}
			gadgetErrs = append(gadgetErrs, relErr(thr["gadget"], thr["real"]))
			ycsbErrs = append(ycsbErrs,
				relErr(thr["ycsb-latest"], thr["real"]), relErr(thr["ycsb-seq"], thr["real"]))
		}
		rep.Checks = append(rep.Checks,
			check(maxOf(gadgetErrs) < meanOf(ycsbErrs)+0.5,
				"%s: Gadget throughput error (max %.0f%%) below YCSB's (mean %.0f%%)",
				op, maxOf(gadgetErrs)*100, meanOf(ycsbErrs)*100),
		)
	}
	return rep, nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Figure12YCSBCore reproduces Figure 12: the YCSB core workloads A, D, F
// across the four stores — what a developer without Gadget would run.
func Figure12YCSBCore(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig12",
		Title:  "YCSB core workloads A/D/F across stores",
		Header: []string{"workload", "engine", "kops/s", "p99.9(us)"},
	}
	thr := map[string]float64{}
	for _, name := range []string{"A", "D", "F"} {
		w := ycsb.CoreWorkloads()[name]
		w.RecordCount = s.YCSBKeys
		w.OperationCount = s.YCSBOps
		w.Seed = 7
		load := w.LoadTrace()
		run, err := w.RunTrace()
		if err != nil {
			return rep, err
		}
		for _, engine := range perfEngines() {
			dir, cleanup, err := workDir(s, engine+"-fig12")
			if err != nil {
				return rep, err
			}
			store, err := openScaledStore(s, engine, filepath.Join(dir, "db"))
			if err != nil {
				cleanup()
				return rep, err
			}
			if _, err := replay.Run(store, load, replay.Options{}); err != nil {
				store.Close()
				cleanup()
				return rep, err
			}
			res, err := replay.Run(store, run, replay.Options{})
			store.Close()
			cleanup()
			if err != nil {
				return rep, err
			}
			thr[name+"/"+engine] = res.Throughput
			rep.Rows = append(rep.Rows, []string{
				name, engine, f2(res.Throughput / 1000), f2(res.P999Micros()),
			})
		}
	}
	fasterWins := 0
	for _, name := range []string{"A", "D", "F"} {
		best := ""
		bestThr := 0.0
		for _, engine := range perfEngines() {
			if t := thr[name+"/"+engine]; t > bestThr {
				best, bestThr = engine, t
			}
		}
		if best == "faster" {
			fasterWins++
		}
	}
	rep.Checks = append(rep.Checks,
		check(fasterWins >= 2, "FASTER has the top throughput on most core workloads (%d/3)", fasterWins),
		check(thr["A/berkeleydb"] > thr["A/rocksdb"],
			"BerkeleyDB beats RocksDB on update-heavy A (%.0f vs %.0f ops/s)", thr["A/berkeleydb"], thr["A/rocksdb"]),
	)
	return rep, nil
}

// Figure13StoreShootout reproduces Figure 13: all eleven Gadget
// workloads across the four stores.
func Figure13StoreShootout(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig13",
		Title:  "Eleven Gadget workloads across the four stores",
		Header: []string{"workload", "engine", "kops/s", "p99.9(us)"},
	}
	thr := map[string]float64{}
	lat := map[string]float64{}
	for _, op := range core.OperatorTypes() {
		tr, err := syntheticGadgetTrace(s, op, 31)
		if err != nil {
			return rep, err
		}
		for _, engine := range perfEngines() {
			res, err := replayOn(s, engine, "fig13", tr)
			if err != nil {
				return rep, fmt.Errorf("fig13 %s/%s: %w", op, engine, err)
			}
			thr[string(op)+"/"+engine] = res.Throughput
			lat[string(op)+"/"+engine] = res.P999Micros()
			rep.Rows = append(rep.Rows, []string{
				string(op), engine, f2(res.Throughput / 1000), f2(res.P999Micros()),
			})
		}
	}
	// The paper's headline: FASTER and BerkeleyDB outperform RocksDB on
	// six of eleven workloads; the holistic windows are where the LSM's
	// lazy merge wins.
	beaten := 0
	for _, op := range core.OperatorTypes() {
		r := thr[string(op)+"/rocksdb"]
		if thr[string(op)+"/faster"] > r && thr[string(op)+"/berkeleydb"] > r {
			beaten++
		}
	}
	holWins := 0
	for _, op := range []core.OperatorType{core.TumblingHol, core.SlidingHol} {
		r := thr[string(op)+"/rocksdb"]
		if r > thr[string(op)+"/faster"] && r > thr[string(op)+"/berkeleydb"] {
			holWins++
		}
	}
	aggFaster := thr["aggregation/faster"] / thr["aggregation/rocksdb"]
	rep.Checks = append(rep.Checks,
		check(beaten >= 4, "RocksDB is outperformed by both FASTER and BerkeleyDB on %d/11 workloads (paper: 6/11)", beaten),
		check(holWins >= 1, "the LSM merge operator wins holistic windows (%d/2)", holWins),
		check(aggFaster > 2, "FASTER's in-place updates dominate incremental aggregation (%.1fx RocksDB)", aggFaster),
	)
	return rep, nil
}

// Figure14Concurrent reproduces Figure 14: co-locating operators on one
// RocksDB instance costs each of them throughput.
func Figure14Concurrent(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig14",
		Title:  "Concurrent operators sharing one RocksDB instance",
		Header: []string{"scenario", "operator", "kops/s", "p99.9(us)"},
	}
	incr, err := syntheticGadgetTrace(s, core.SlidingIncr, 41)
	if err != nil {
		return rep, err
	}
	hol, err := syntheticGadgetTrace(s, core.SlidingHol, 42)
	if err != nil {
		return rep, err
	}
	// Shift the holistic trace's key space so co-located operators do
	// not collide on state keys (distinct operators own distinct state).
	holShifted := make([]kv.Access, len(hol))
	for i, a := range hol {
		a.Key.Group |= 1 << 60
		holShifted[i] = a
	}
	incrShifted := make([]kv.Access, len(incr))
	for i, a := range incr {
		a.Key.Group |= 1 << 61
		incrShifted[i] = a
	}

	runIso := func(label string, tr []kv.Access) (replay.Result, error) {
		return replayOn(s, "rocksdb", "fig14-"+label, tr)
	}
	isoIncr, err := runIso("incr", incr)
	if err != nil {
		return rep, err
	}
	isoHol, err := runIso("hol", hol)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"isolated", "sliding-incr", f2(isoIncr.Throughput / 1000), f2(isoIncr.P999Micros())},
		[]string{"isolated", "sliding-hol", f2(isoHol.Throughput / 1000), f2(isoHol.P999Micros())},
	)

	runPair := func(label string, a, b []kv.Access) ([]replay.Result, error) {
		dir, cleanup, err := workDir(s, "fig14-"+label)
		if err != nil {
			return nil, err
		}
		defer cleanup()
		store, err := openScaledStore(s, "rocksdb", filepath.Join(dir, "db"))
		if err != nil {
			return nil, err
		}
		defer store.Close()
		return replay.RunConcurrent(store, [][]kv.Access{a, b}, replay.Options{})
	}
	// Concurrent-A: two operators of the same type.
	concA, err := runPair("a", incr, incrShifted)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"concurrent-A", "sliding-incr", f2(concA[0].Throughput / 1000), f2(concA[0].P999Micros())},
		[]string{"concurrent-A", "sliding-incr#2", f2(concA[1].Throughput / 1000), f2(concA[1].P999Micros())},
	)
	// Concurrent-B: different operator types.
	concB, err := runPair("b", incr, holShifted)
	if err != nil {
		return rep, err
	}
	rep.Rows = append(rep.Rows,
		[]string{"concurrent-B", "sliding-incr", f2(concB[0].Throughput / 1000), f2(concB[0].P999Micros())},
		[]string{"concurrent-B", "sliding-hol", f2(concB[1].Throughput / 1000), f2(concB[1].P999Micros())},
	)
	slowdownA := isoIncr.Throughput / concA[0].Throughput
	rep.Checks = append(rep.Checks,
		check(slowdownA > 1.1,
			"co-locating a same-type operator costs throughput (%.2fx slowdown, paper: 1.7x)", slowdownA),
	)
	return rep, nil
}
