package experiments

import (
	"fmt"

	"gadget/internal/analysis"
	"gadget/internal/core"
	"gadget/internal/datasets"
	"gadget/internal/eventgen"
	"gadget/internal/flinksim"
)

func borg(s Scale) datasets.Streams  { return datasets.Borg(s.DatasetScale, 1) }
func taxi(s Scale) datasets.Streams  { return datasets.Taxi(s.DatasetScale, 2) }
func azure(s Scale) datasets.Streams { return datasets.Azure(s.DatasetScale, 3) }

// Table1Composition reproduces Table 1: the operation mix of the state
// access traces each operator generates on each dataset.
func Table1Composition(s Scale) (Report, error) {
	rep := Report{
		ID:     "table1",
		Title:  "Workload composition of state access traces (Borg, Taxi, Azure)",
		Header: []string{"operator", "dataset", "GET", "PUT", "MERGE", "DELETE"},
	}
	comps := map[string]analysis.Composition{}
	for _, ds := range []datasets.Streams{borg(s), taxi(s), azure(s)} {
		for _, op := range characterizationOps() {
			if op.IsJoin() && ds.Secondary == nil {
				continue // Azure is a single stream: no joins (as in the paper)
			}
			tr, err := realTrace(ds, paperConfig(op))
			if err != nil {
				return rep, fmt.Errorf("table1 %s/%s: %w", ds.Name, op, err)
			}
			c := analysis.Compose(tr)
			comps[string(op)+"/"+ds.Name] = c
			rep.Rows = append(rep.Rows, []string{
				string(op), ds.Name, f3(c.Get), f3(c.Put), f3(c.Merge), f3(c.Delete),
			})
		}
	}
	agg := comps["aggregation/borg"]
	rep.Checks = append(rep.Checks,
		check(agg.Get == 0.5 && agg.Put == 0.5 && agg.Delete == 0,
			"aggregation is exactly 50/50 get/put with no deletes (got %.3f/%.3f/%.3f)", agg.Get, agg.Put, agg.Delete),
		check(comps["tumbling-incr/borg"].Get > 0.45 && comps["tumbling-incr/borg"].Get < 0.55,
			"incremental windows are update heavy (~50%% gets, got %.3f)", comps["tumbling-incr/borg"].Get),
		check(comps["tumbling-hol/borg"].Merge > comps["tumbling-hol/borg"].Get,
			"holistic windows are merge dominated (merge %.3f > get %.3f)",
			comps["tumbling-hol/borg"].Merge, comps["tumbling-hol/borg"].Get),
		check(comps["tumbling-incr/taxi"].Delete > comps["tumbling-incr/borg"].Delete,
			"Taxi's lower arrival rate yields more deletes than Borg (%.3f vs %.3f)",
			comps["tumbling-incr/taxi"].Delete, comps["tumbling-incr/borg"].Delete),
		check(comps["continuous-join/borg"].Put < 0.1,
			"Borg continuous join has rare puts (one per job, got %.3f)", comps["continuous-join/borg"].Put),
	)
	return rep, nil
}

// Table2KSTest reproduces Table 2: the Kolmogorov-Smirnov test between
// the Borg input key distribution and each operator's state key
// distribution.
func Table2KSTest(s Scale) (Report, error) {
	rep := Report{
		ID:     "table2",
		Title:  "KS test: Borg input keys vs state trace keys",
		Header: []string{"operator", "D", "p-value", "n", "m"},
	}
	ds := borg(s)
	for _, op := range characterizationOps() {
		tr, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, fmt.Errorf("table2 %s: %w", op, err)
		}
		in := analysis.EventKeyIDs(allEvents(ds, op))
		st := analysis.KeyIDs(tr)
		ks, _ := analysis.DistributionDistance(in, st)
		rep.Rows = append(rep.Rows, []string{
			string(op), f3(ks.D), fmt.Sprintf("%.4f", ks.PValue),
			fmt.Sprintf("%d", ks.N), fmt.Sprintf("%d", ks.M),
		})
		if op == core.Aggregation {
			rep.Checks = append(rep.Checks, check(ks.D < 1e-9 && ks.PValue > 0.99,
				"aggregation preserves the input distribution (D=%.4f, p=%.2f)", ks.D, ks.PValue))
		} else {
			rep.Checks = append(rep.Checks, check(ks.Reject(0.001),
				"%s distorts the input distribution (D=%.3f, p=%.4f)", op, ks.D, ks.PValue))
		}
	}
	return rep, nil
}

// Figure2WindowConfig reproduces Figure 2: smaller window lengths and
// session gaps produce a higher share of deletes (Taxi).
func Figure2WindowConfig(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig2",
		Title:  "Effect of window configuration on composition (Taxi)",
		Header: []string{"operator", "parameter", "GET", "PUT/MERGE", "DELETE"},
	}
	ds := taxi(s)
	var tumblingDeletes, sessionDeletes []float64
	for _, lengthMs := range []int64{1000, 5000, 30000, 60000} {
		cfg := paperConfig(core.TumblingIncr)
		cfg.WindowLengthMs = lengthMs
		tr, err := realTrace(ds, cfg)
		if err != nil {
			return rep, err
		}
		c := analysis.Compose(tr)
		tumblingDeletes = append(tumblingDeletes, c.Delete)
		rep.Rows = append(rep.Rows, []string{
			"tumbling-incr", fmt.Sprintf("len=%ds", lengthMs/1000), f3(c.Get), f3(c.Put), f3(c.Delete),
		})
	}
	for _, gapMs := range []int64{30000, 120000, 600000} {
		cfg := paperConfig(core.SessionIncr)
		cfg.SessionGapMs = gapMs
		tr, err := realTrace(ds, cfg)
		if err != nil {
			return rep, err
		}
		c := analysis.Compose(tr)
		sessionDeletes = append(sessionDeletes, c.Delete)
		rep.Rows = append(rep.Rows, []string{
			"session-incr", fmt.Sprintf("gap=%ds", gapMs/1000), f3(c.Get), f3(c.Put + c.Merge), f3(c.Delete),
		})
	}
	rep.Checks = append(rep.Checks,
		check(nonIncreasing(tumblingDeletes),
			"delete share falls as window length grows (%v)", fmtFloats(tumblingDeletes)),
		check(nonIncreasing(sessionDeletes),
			"delete share falls as session gap grows (%v)", fmtFloats(sessionDeletes)),
	)
	return rep, nil
}

// Figure3Amplification reproduces Figure 3: event and keyspace
// amplification per operator (Borg).
func Figure3Amplification(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig3",
		Title:  "Event and keyspace amplification (Borg)",
		Header: []string{"operator", "event-amp", "key-amp"},
	}
	ds := borg(s)
	amps := map[string]analysis.Amplification{}
	for _, op := range characterizationOps() {
		tr, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		a := analysis.Amplify(allEvents(ds, op), tr)
		amps[string(op)] = a
		rep.Rows = append(rep.Rows, []string{string(op), f2(a.Event), f2(a.Key)})
	}
	rep.Checks = append(rep.Checks,
		check(amps["aggregation"].Event == 2 && amps["aggregation"].Key == 1,
			"aggregation: 2 accesses/event, keyspace preserved (%.2f, %.2f)",
			amps["aggregation"].Event, amps["aggregation"].Key),
		check(amps["sliding-incr"].Event > 2*amps["tumbling-incr"].Event,
			"sliding windows amplify ~length/slide over tumbling (%.2f vs %.2f)",
			amps["sliding-incr"].Event, amps["tumbling-incr"].Event),
		check(amps["tumbling-incr"].Key > 1 && amps["interval-join"].Key > 1,
			"time-based operators amplify the keyspace (%.2f, %.2f)",
			amps["tumbling-incr"].Key, amps["interval-join"].Key),
		check(amps["tumbling-hol"].Event < 2,
			"holistic tumbling is the only operator below 2 accesses/event (%.2f)",
			amps["tumbling-hol"].Event),
	)
	return rep, nil
}

// Figure4SlideSweep reproduces Figure 4: amplification of a 10-minute
// sliding window is proportional to length/slide (Taxi).
func Figure4SlideSweep(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig4",
		Title:  "Amplification vs slide of a 10-min window (Taxi)",
		Header: []string{"slide", "event-amp", "key-amp", "length/slide"},
	}
	ds := taxi(s)
	var eventAmps []float64
	slides := []int64{60000, 120000, 300000, 600000}
	for _, slide := range slides {
		cfg := paperConfig(core.SlidingIncr)
		cfg.WindowLengthMs = 600000
		cfg.WindowSlideMs = slide
		tr, err := realTrace(ds, cfg)
		if err != nil {
			return rep, err
		}
		a := analysis.Amplify(ds.Primary, tr)
		eventAmps = append(eventAmps, a.Event)
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%ds", slide/1000), f2(a.Event), f2(a.Key),
			fmt.Sprintf("%d", 600000/slide),
		})
	}
	ratio := eventAmps[0] / eventAmps[len(eventAmps)-1]
	rep.Checks = append(rep.Checks,
		check(nonIncreasing(eventAmps), "amplification falls as the slide grows (%v)", fmtFloats(eventAmps)),
		check(ratio > 5, "10x slide ratio yields ~10x amplification (got %.1fx)", ratio),
	)
	return rep, nil
}

// Figure5Locality reproduces Figure 5: temporal locality (stack
// distances), spatial locality (unique sequences), and working set
// evolution for the three representative operators (Borg), against
// shuffled baselines.
func Figure5Locality(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig5",
		Title:  "Locality and ephemerality of state access workloads (Borg)",
		Header: []string{"operator", "meanSD", "meanSD-shuf", "uniqSeq10", "uniqSeq10-shuf", "maxWS"},
	}
	ds := borg(s)
	for _, op := range representativeOps() {
		tr, err := realTrace(ds, paperConfig(op))
		if err != nil {
			return rep, err
		}
		ids := analysis.KeyIDs(tr)
		shuf := analysis.Shuffle(ids, 42)
		d, _ := analysis.StackDistances(ids)
		dShuf, _ := analysis.StackDistances(shuf)
		seq := analysis.UniqueSequences(ids, 10)
		seqShuf := analysis.UniqueSequences(shuf, 10)
		ws := analysis.MaxWorkingSet(ids, 100)
		meanD, meanShuf := meanOf(d), meanOf(dShuf)
		rep.Rows = append(rep.Rows, []string{
			string(op), f2(meanD), f2(meanShuf),
			fmt.Sprintf("%d", seq[9]), fmt.Sprintf("%d", seqShuf[9]), fmt.Sprintf("%d", ws),
		})
		// The interval join's buffered entries are touched exactly twice
		// (insert, expire-delete), so at small scale its sequence metrics
		// sit near the shuffled baseline; the paper's margins appear at
		// full trace length. Hold it to a non-strict bound.
		strict := op != core.IntervalJoin
		rep.Checks = append(rep.Checks,
			check(meanD < meanShuf || (!strict && meanD <= meanShuf*1.05),
				"%s: high temporal locality (mean stack distance %.1f vs shuffled %.1f)", op, meanD, meanShuf),
			check(seq[9] < seqShuf[9] || (!strict && seq[9] <= seqShuf[9]),
				"%s: high spatial locality (%d unique 10-seqs vs shuffled %d)", op, seq[9], seqShuf[9]),
		)
	}
	return rep, nil
}

// Figure6Watermarks reproduces Figure 6: slow watermarks grow the
// working set of an incremental tumbling window (Azure).
func Figure6Watermarks(s Scale) (Report, error) {
	rep := Report{
		ID:     "fig6",
		Title:  "Watermark frequency vs working set (Azure, tumbling-incr)",
		Header: []string{"watermark-every", "max-working-set"},
	}
	ds := azure(s)
	sizes := map[int]int{}
	for _, every := range []int{100, 1000} {
		src := eventgen.WithWatermarks(eventgen.NewSliceSource(ds.Primary), every, 0)
		tr, _, err := flinksim.CollectTrace(paperConfig(core.TumblingIncr), src)
		if err != nil {
			return rep, err
		}
		ids := analysis.KeyIDs(tr)
		sizes[every] = analysis.MaxWorkingSet(ids, 100)
		rep.Rows = append(rep.Rows, []string{fmt.Sprintf("%d", every), fmt.Sprintf("%d", sizes[every])})
	}
	ratio := float64(sizes[1000]) / float64(sizes[100])
	rep.Checks = append(rep.Checks,
		check(ratio > 1.3, "slow watermarks inflate the working set (%.1fx, paper: up to 3x)", ratio))
	return rep, nil
}

func nonIncreasing(xs []float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+1e-9 {
			return false
		}
	}
	return true
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

func fmtFloats(xs []float64) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = f3(x)
	}
	return "[" + joinStrings(parts, " ") + "]"
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
