package kv

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// scriptStore is a Store stub whose behaviour is driven per-call by fail,
// over an in-memory map. It records how many calls reached it.
type scriptStore struct {
	mu    sync.Mutex
	m     map[string][]byte
	calls int
	// fail, when non-nil, is consulted before each op with the 1-based
	// call number; a non-nil result fails the op without applying it.
	fail func(call int) error
	// delay pauses each op before applying (after fail check).
	delay time.Duration
}

func newScriptStore() *scriptStore { return &scriptStore{m: map[string][]byte{}} }

func (s *scriptStore) admit() error {
	s.mu.Lock()
	s.calls++
	n := s.calls
	f := s.fail
	d := s.delay
	s.mu.Unlock()
	if d > 0 {
		time.Sleep(d)
	}
	if f != nil {
		return f(n)
	}
	return nil
}

func (s *scriptStore) Get(key []byte) ([]byte, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.m[string(key)]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

func (s *scriptStore) Put(key, value []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append([]byte(nil), value...)
	return nil
}

func (s *scriptStore) Merge(key, operand []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[string(key)] = append(s.m[string(key)], operand...)
	return nil
}

func (s *scriptStore) Delete(key []byte) error {
	if err := s.admit(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.m, string(key))
	return nil
}

func (s *scriptStore) Close() error { return nil }

func (s *scriptStore) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func fastOpts() ResilienceOptions {
	return ResilienceOptions{
		MaxRetries:      4,
		BackoffBase:     10 * time.Microsecond,
		BackoffMax:      100 * time.Microsecond,
		BreakerCooldown: time.Millisecond,
	}
}

func TestRetryRecoversTransientFailures(t *testing.T) {
	st := newScriptStore()
	st.fail = func(call int) error {
		if call <= 2 {
			return ErrInjectedFault
		}
		return nil
	}
	r, err := NewResilientStore(st, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put should recover: %v", err)
	}
	if v, err := r.Get([]byte("k")); err != nil || string(v) != "v" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	c := r.ResilienceCounters()
	if c.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", c.Retries)
	}
	if c.Degraded != 0 {
		t.Fatalf("Degraded = %d, want 0", c.Degraded)
	}
}

func TestNoRetryOnFatalError(t *testing.T) {
	st := newScriptStore()
	boom := errors.New("disk on fire")
	st.fail = func(int) error { return boom }
	r, err := NewResilientStore(st, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put([]byte("k"), []byte("v")); !errors.Is(err, boom) {
		t.Fatalf("Put = %v, want %v", err, boom)
	}
	if n := st.callCount(); n != 1 {
		t.Fatalf("fatal error retried: %d calls", n)
	}
	if c := r.ResilienceCounters(); c.Degraded != 1 || c.Retries != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	st := newScriptStore()
	st.fail = func(int) error { return ErrInjectedFault }
	opts := fastOpts()
	opts.BreakerThreshold = -1
	r, err := NewResilientStore(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Put([]byte("k"), nil); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Put = %v", err)
	}
	if n := st.callCount(); n != 5 { // 1 + MaxRetries
		t.Fatalf("calls = %d, want 5", n)
	}
	if c := r.ResilienceCounters(); c.Retries != 4 || c.Degraded != 1 {
		t.Fatalf("counters = %+v", c)
	}
}

func TestMergeNotRetriedAfterUnknownOutcome(t *testing.T) {
	st := newScriptStore()
	st.fail = func(call int) error {
		if call == 1 {
			// Transient but the op may have applied (e.g. ack lost).
			return UnknownOutcomeError(TransientError(errors.New("conn reset")))
		}
		return nil
	}
	r, err := NewResilientStore(st, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Merge([]byte("k"), []byte("x")); err == nil {
		t.Fatal("merge after unknown-outcome failure must surface the error")
	}
	if n := st.callCount(); n != 1 {
		t.Fatalf("merge retried despite unknown outcome: %d calls", n)
	}
	// The same failure on an idempotent op is retried.
	st.mu.Lock()
	st.calls = 0
	st.mu.Unlock()
	if err := r.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("idempotent Put should retry: %v", err)
	}
	if n := st.callCount(); n != 2 {
		t.Fatalf("Put calls = %d, want 2", n)
	}
}

func TestMergeRetriedAfterFailBeforeApply(t *testing.T) {
	st := newScriptStore()
	st.fail = func(call int) error {
		if call == 1 {
			return ErrInjectedFault // chaos contract: not applied
		}
		return nil
	}
	r, err := NewResilientStore(st, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Merge([]byte("k"), []byte("ab")); err != nil {
		t.Fatalf("Merge = %v", err)
	}
	if v, _ := r.Get([]byte("k")); string(v) != "ab" {
		t.Fatalf("retried merge duplicated or dropped: %q", v)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	st := newScriptStore()
	st.delay = 50 * time.Millisecond
	opts := fastOpts()
	opts.OpTimeout = 2 * time.Millisecond
	opts.MaxRetries = -1
	r, err := NewResilientStore(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	err = r.Put([]byte("k"), []byte("v"))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Put = %v, want deadline", err)
	}
	if !Transient(err) || !OutcomeUnknown(err) {
		t.Fatalf("deadline error misclassified: transient=%v unknown=%v", Transient(err), OutcomeUnknown(err))
	}
	if c := r.ResilienceCounters(); c.Timeouts != 1 {
		t.Fatalf("Timeouts = %d, want 1", c.Timeouts)
	}
}

func TestBreakerTripsAndRecovers(t *testing.T) {
	st := newScriptStore()
	var failing = true
	st.fail = func(int) error {
		st.mu.Lock()
		defer st.mu.Unlock()
		if failing {
			return ErrInjectedFault
		}
		return nil
	}
	opts := fastOpts()
	opts.MaxRetries = -1 // isolate the breaker from retry effects
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 2 * time.Millisecond
	r, err := NewResilientStore(st, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Trip the breaker.
	for i := 0; i < 3; i++ {
		if err := r.Put([]byte("k"), nil); !errors.Is(err, ErrInjectedFault) {
			t.Fatalf("op %d = %v", i, err)
		}
	}
	if c := r.ResilienceCounters(); c.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", c.BreakerTrips)
	}
	// While open (within cooldown) ops fail fast without reaching the store.
	before := st.callCount()
	if err := r.Put([]byte("k"), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker = %v, want ErrBreakerOpen", err)
	}
	if st.callCount() != before {
		t.Fatal("fast-fail reached the store")
	}
	if c := r.ResilienceCounters(); c.FastFails == 0 {
		t.Fatal("FastFails not counted")
	}
	// A failing half-open probe re-opens.
	time.Sleep(3 * time.Millisecond)
	if err := r.Put([]byte("k"), nil); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("probe = %v", err)
	}
	if c := r.ResilienceCounters(); c.BreakerTrips != 2 {
		t.Fatalf("BreakerTrips after failed probe = %d, want 2", c.BreakerTrips)
	}
	// Recovery: store heals, cooldown elapses, probe closes the breaker.
	st.mu.Lock()
	failing = false
	st.mu.Unlock()
	time.Sleep(3 * time.Millisecond)
	if err := r.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("probe after recovery = %v", err)
	}
	if err := r.Put([]byte("k2"), []byte("v")); err != nil {
		t.Fatalf("post-recovery op = %v", err)
	}
}

func TestChaosDeterminism(t *testing.T) {
	run := func() (ChaosCounters, []bool) {
		st := newScriptStore()
		c := NewChaosStore(st, ChaosPlan{Seed: 42, ErrorRate: 0.3})
		outcomes := make([]bool, 200)
		for i := range outcomes {
			outcomes[i] = c.Put([]byte{byte(i)}, nil) == nil
		}
		return c.Counters(), outcomes
	}
	c1, o1 := run()
	c2, o2 := run()
	if c1 != c2 {
		t.Fatalf("counters diverge: %+v vs %+v", c1, c2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("schedule diverges at op %d", i)
		}
	}
	if c1.InjectedErrors == 0 || c1.InjectedErrors == c1.Ops {
		t.Fatalf("implausible injection count: %+v", c1)
	}
}

func TestChaosOutageWindow(t *testing.T) {
	st := newScriptStore()
	c := NewChaosStore(st, ChaosPlan{OutageAfterOps: 5, OutageOps: 3})
	var errs int
	for i := 0; i < 12; i++ {
		if err := c.Put([]byte{byte(i)}, nil); err != nil {
			if !errors.Is(err, ErrInjectedFault) {
				t.Fatalf("op %d: %v", i, err)
			}
			errs++
		}
	}
	if errs != 3 {
		t.Fatalf("outage failed %d ops, want 3", errs)
	}
}

func TestChaosPlanValidate(t *testing.T) {
	bad := []ChaosPlan{
		{ErrorRate: -0.1},
		{ErrorRate: 1.1},
		{LatencyRate: 2},
		{Latency: -time.Second},
		{StallEvery: -1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("plan %d should be invalid", i)
		}
	}
	if err := (ChaosPlan{ErrorRate: 0.5, LatencyRate: 0.1, Latency: time.Millisecond}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResilienceOptionsValidate(t *testing.T) {
	bad := []ResilienceOptions{
		{OpTimeout: -1},
		{MaxRetries: -2},
		{BackoffBase: -1},
		{BreakerThreshold: -5},
		{BreakerCooldown: -1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Fatalf("options %d should be invalid", i)
		}
	}
}

func TestRetrySafeTable(t *testing.T) {
	fatal := errors.New("fatal")
	unknownTransient := UnknownOutcomeError(TransientError(errors.New("lost")))
	cases := []struct {
		op   Op
		err  error
		want bool
	}{
		{OpGet, ErrInjectedFault, true},
		{OpPut, ErrInjectedFault, true},
		{OpMerge, ErrInjectedFault, true},
		{OpGet, unknownTransient, true},
		{OpPut, unknownTransient, true},
		{OpDelete, unknownTransient, true},
		{OpMerge, unknownTransient, false},
		{OpMerge, ErrDeadlineExceeded, false},
		{OpGet, ErrDeadlineExceeded, true},
		{OpPut, fatal, false},
		{OpMerge, fatal, false},
		{OpGet, ErrBreakerOpen, true},
	}
	for i, c := range cases {
		if got := RetrySafe(c.op, c.err); got != c.want {
			t.Errorf("case %d: RetrySafe(%v, %v) = %v, want %v", i, c.op, c.err, got, c.want)
		}
	}
}

func TestNotFoundIsNotAFailure(t *testing.T) {
	st := newScriptStore()
	r, err := NewResilientStore(st, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Get([]byte("absent")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get = %v", err)
	}
	if n := st.callCount(); n != 1 {
		t.Fatalf("miss retried: %d calls", n)
	}
	c := r.ResilienceCounters()
	if c.Retries != 0 || c.Degraded != 0 {
		t.Fatalf("miss counted as failure: %+v", c)
	}
}
