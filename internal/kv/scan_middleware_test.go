package kv

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"
)

// Scan support for scriptStore (resilient_test.go), so the middleware
// scan paths can be driven by scripted failures.

func (s *scriptStore) ScanRange(lo, hi StateKey) ([]Entry, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Entry
	for k, v := range s.m {
		sk, err := DecodeStateKey([]byte(k))
		if err != nil || sk.Less(lo) || hi.Less(sk) {
			continue
		}
		out = append(out, Entry{Key: sk, Value: append([]byte(nil), v...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out, nil
}

func (s *scriptStore) Snapshot() (Snapshot, error) {
	if err := s.admit(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b FallbackBuilder
	for k, v := range s.m {
		b.Add([]byte(k), v)
	}
	return b.Snapshot(), nil
}

func seedStateKeys(t *testing.T, s Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		sk := StateKey{Group: 1, Sub: uint64(i)}
		if err := s.Put(sk.Bytes(), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

// TestChaosInjectsIteratorFaults schedules an outage mid-drain: the
// snapshot acquisition and the first two iterator steps are admitted,
// then every step fails, surfacing ErrInjectedFault through Err().
func TestChaosInjectsIteratorFaults(t *testing.T) {
	inner := newScriptStore()
	seedStateKeys(t, inner, 10)
	cs := NewChaosStore(inner, ChaosPlan{OutageAfterOps: 3, OutageOps: 1 << 20})

	snap, err := cs.Snapshot() // op 1
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer snap.Close()
	it := snap.Iter(StateKey{}, MaxStateKey)
	var got int
	for it.Next() { // ops 2, 3 admitted; op 4 enters the outage
		got++
	}
	if got != 2 {
		t.Fatalf("iterator yielded %d entries before the fault, want 2", got)
	}
	if !errors.Is(it.Err(), ErrInjectedFault) {
		t.Fatalf("iterator err = %v, want ErrInjectedFault", it.Err())
	}
	if c := cs.Counters(); c.InjectedErrors == 0 {
		t.Fatal("no injected errors counted")
	}
}

// TestChaosScanAdmission: with a certain-failure plan, both ScanRange
// and Snapshot fail before reaching the store.
func TestChaosScanAdmission(t *testing.T) {
	inner := newScriptStore()
	seedStateKeys(t, inner, 4)
	cs := NewChaosStore(inner, ChaosPlan{ErrorRate: 1})
	if _, err := cs.ScanRange(StateKey{}, MaxStateKey); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("ScanRange err = %v, want ErrInjectedFault", err)
	}
	if _, err := cs.Snapshot(); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("Snapshot err = %v, want ErrInjectedFault", err)
	}
	if inner.callCount() != 4 { // only the seed puts reached the store
		t.Fatalf("%d calls reached the store, want 4", inner.callCount())
	}
}

// TestResilientScanRetries: transient scan failures are retried under
// the OpScan budget and the result of the successful attempt returned.
func TestResilientScanRetries(t *testing.T) {
	inner := newScriptStore()
	seedStateKeys(t, inner, 5)
	start := inner.callCount()
	inner.fail = func(call int) error {
		if call <= start+2 {
			return TransientError(errors.New("blip"))
		}
		return nil
	}
	r, err := NewResilientStore(inner, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ScanRange(StateKey{}, MaxStateKey)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("scan returned %d entries, want 5", len(got))
	}
	if c := r.ResilienceCounters(); c.Retries != 2 {
		t.Fatalf("retries = %d, want 2", c.Retries)
	}
}

// TestResilientSnapshotRetries: snapshot acquisition is retried like a
// read, and the snapshot of the successful attempt is returned intact.
func TestResilientSnapshotRetries(t *testing.T) {
	inner := newScriptStore()
	seedStateKeys(t, inner, 5)
	start := inner.callCount()
	inner.fail = func(call int) error {
		if call == start+1 {
			return TransientError(errors.New("blip"))
		}
		return nil
	}
	r, err := NewResilientStore(inner, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := SnapshotOf(r)
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	defer snap.Close()
	entries, err := CollectIter(snap.Iter(StateKey{}, MaxStateKey))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 5 {
		t.Fatalf("snapshot holds %d entries, want 5", len(entries))
	}
	if c := r.ResilienceCounters(); c.Retries != 1 {
		t.Fatalf("retries = %d, want 1", c.Retries)
	}
}

// TestResilientSnapshotDeadline: a stalled snapshot acquisition is cut
// off by the per-op deadline.
func TestResilientSnapshotDeadline(t *testing.T) {
	inner := newScriptStore()
	seedStateKeys(t, inner, 3)
	inner.delay = 50 * time.Millisecond
	opts := fastOpts()
	opts.OpTimeout = 2 * time.Millisecond
	opts.MaxRetries = 1
	r, err := NewResilientStore(inner, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Snapshot(); !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("Snapshot err = %v, want ErrDeadlineExceeded", err)
	}
}
