package kv_test

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
)

// FuzzCheckpointCodec drives the checkpoint reader two ways. Arbitrary
// bytes must never panic and must yield either a clean parse or
// ErrCheckpointCorrupt (never a silent partial result). A valid
// checkpoint built from a fuzzed key population must round-trip
// byte-exactly through write → corrupt-free read, and any single-byte
// flip of it must be rejected — the crc has no blind spots.
func FuzzCheckpointCodec(f *testing.F) {
	// Seed with a real checkpoint and a few degenerate inputs.
	store := memstore.New()
	for i := 0; i < 8; i++ {
		sk := kv.StateKey{Group: uint64(i % 3), Sub: uint64(i)}
		store.Put(sk.Bytes(), []byte{byte(i), byte(i >> 1)})
	}
	var seed bytes.Buffer
	snap, err := kv.SnapshotOf(store)
	if err != nil {
		f.Fatal(err)
	}
	it := snap.Iter(kv.StateKey{}, kv.MaxStateKey)
	if _, _, err := kv.WriteCheckpoint(&seed, "memstore", 8, it); err != nil {
		f.Fatal(err)
	}
	it.Close()
	snap.Close()
	store.Close()
	f.Add(seed.Bytes(), uint16(0))
	f.Add([]byte{}, uint16(1))
	f.Add([]byte("GCKP"), uint16(2))
	f.Add([]byte("GCKP\x01"), uint16(3))
	f.Add(bytes.Repeat([]byte{0xff}, 64), uint16(9))

	f.Fuzz(func(t *testing.T, data []byte, flip uint16) {
		// Arbitrary input: parse must not panic and the error space is
		// closed over {nil, ErrCheckpointCorrupt}.
		meta, entries, err := kv.ReadCheckpoint(bytes.NewReader(data))
		if err != nil && !errors.Is(err, kv.ErrCheckpointCorrupt) && !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("unexpected error class: %v", err)
		}
		if err == nil {
			// A clean parse must round-trip: rebuild a store from the
			// entries, write it out, and read it back identically.
			if meta.Entries != uint64(len(entries)) {
				t.Fatalf("meta.Entries=%d, len(entries)=%d", meta.Entries, len(entries))
			}
			s := memstore.New()
			defer s.Close()
			for _, e := range entries {
				if err := s.Put(e.Key.Bytes(), e.Value); err != nil {
					t.Fatal(err)
				}
			}
			var out bytes.Buffer
			snap, err := kv.SnapshotOf(s)
			if err != nil {
				t.Fatal(err)
			}
			defer snap.Close()
			it := snap.Iter(kv.StateKey{}, kv.MaxStateKey)
			defer it.Close()
			meta2, _, err := kv.WriteCheckpoint(&out, meta.Engine, meta.Watermark, it)
			if err != nil {
				t.Fatal(err)
			}
			// Duplicate keys in a crafted stream collapse in the store,
			// so only require equality when the input had none.
			if meta2.Entries == meta.Entries {
				meta3, entries3, err := kv.ReadCheckpoint(&out)
				if err != nil {
					t.Fatalf("re-read of rewritten checkpoint: %v", err)
				}
				if meta3 != meta2 || len(entries3) != len(entries) {
					t.Fatalf("round-trip drift: %+v vs %+v", meta3, meta2)
				}
			}

			// Any single-byte corruption of a valid checkpoint must be
			// caught.
			if len(data) > 0 {
				mut := append([]byte(nil), data...)
				mut[int(flip)%len(mut)] ^= 1 << (flip % 8)
				if !bytes.Equal(mut, data) {
					if _, _, err := kv.ReadCheckpoint(bytes.NewReader(mut)); err == nil {
						t.Fatal("single-byte corruption accepted")
					}
				}
			}
		}
	})
}
