package kv_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"gadget/internal/kv"
	"gadget/internal/memstore"
	"gadget/internal/vfs"
)

func fillStore(t *testing.T, s kv.Store, n int) map[kv.StateKey][]byte {
	t.Helper()
	live := map[kv.StateKey][]byte{}
	for i := 0; i < n; i++ {
		sk := kv.StateKey{Group: uint64(i % 7), Sub: uint64(i)}
		val := []byte(fmt.Sprintf("value-%04d", i))
		if err := s.Put(sk.Bytes(), val); err != nil {
			t.Fatal(err)
		}
		live[sk] = val
	}
	return live
}

func storeState(t *testing.T, s kv.Store) []kv.Entry {
	t.Helper()
	got, err := kv.ScanAll(s)
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func TestCheckpointSaveRestoreRoundtrip(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	fillStore(t, src, 100)

	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore"}
	meta, bytesOut, err := ck.Save(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Watermark != 42 || meta.Entries != 100 || meta.Engine != "memstore" {
		t.Fatalf("meta = %+v", meta)
	}
	if bytesOut <= 0 {
		t.Fatalf("bytes = %d", bytesOut)
	}

	dst := memstore.New()
	defer dst.Close()
	info, err := ck.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Watermark != 42 || info.CorruptSkipped != 0 || info.Path == "" {
		t.Fatalf("info = %+v", info)
	}
	want := storeState(t, src)
	got := storeState(t, dst)
	if len(got) != len(want) {
		t.Fatalf("restored %d entries, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Key != want[i].Key || !bytes.Equal(got[i].Value, want[i].Value) {
			t.Fatalf("entry %d differs: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestCheckpointRestoreEmptyDir(t *testing.T) {
	ck := &kv.Checkpointer{FS: vfs.NewMemFS(), Dir: "nothing-here", Engine: "memstore"}
	dst := memstore.New()
	defer dst.Close()
	info, err := ck.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Watermark != 0 || info.Path != "" {
		t.Fatalf("restore of empty dir should be a no-op, got %+v", info)
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore"}
	if _, _, err := ck.Save(src, 7); err != nil {
		t.Fatal(err)
	}
	dst := memstore.New()
	defer dst.Close()
	info, err := ck.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Watermark != 7 || info.Meta.Entries != 0 {
		t.Fatalf("info = %+v", info)
	}
}

// corruptNewest flips one byte in the newest checkpoint file.
func corruptNewest(t *testing.T, fs *vfs.MemFS, dir string, mutate func([]byte) []byte) string {
	t.Helper()
	var newest string
	for _, p := range fs.Paths() {
		if strings.HasPrefix(p, dir+"/") && strings.HasSuffix(p, kv.CheckpointSuffix) && p > newest {
			newest = p
		}
	}
	if newest == "" {
		t.Fatal("no checkpoint file found")
	}
	data, err := vfs.ReadFile(fs, newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(fs, newest, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return newest
}

func TestCheckpointCorruptFallsBackToPrevious(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore"}

	fillStore(t, src, 10)
	if _, _, err := ck.Save(src, 10); err != nil {
		t.Fatal(err)
	}
	// Mutate state and take a second, newer checkpoint.
	if err := src.Put(kv.StateKey{Group: 99, Sub: 99}.Bytes(), []byte("late")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ck.Save(src, 20); err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"bit-flip":         func(b []byte) []byte { b[len(b)/2] ^= 0x40; return b },
		"truncated-footer": func(b []byte) []byte { return b[:len(b)-9] },
		"empty":            func(b []byte) []byte { return nil },
	} {
		t.Run(name, func(t *testing.T) {
			corrupted := corruptNewest(t, fs, "ck", mutate)
			defer func() { // restore a valid newest for the next subtest
				fs.Remove(corrupted)
				if _, _, err := ck.Save(src, 20); err != nil {
					t.Fatal(err)
				}
			}()
			dst := memstore.New()
			defer dst.Close()
			info, err := ck.Restore(dst)
			if err != nil {
				t.Fatal(err)
			}
			if info.CorruptSkipped != 1 {
				t.Fatalf("CorruptSkipped = %d, want 1", info.CorruptSkipped)
			}
			if info.Meta.Watermark != 10 {
				t.Fatalf("fell back to watermark %d, want 10", info.Meta.Watermark)
			}
			if _, err := dst.Get((kv.StateKey{Group: 99, Sub: 99}).Bytes()); !errors.Is(err, kv.ErrNotFound) {
				t.Fatal("restored state contains a key from the corrupt newer checkpoint")
			}
		})
	}
}

func TestCheckpointPruneKeepsNewest(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	fillStore(t, src, 5)
	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore", Keep: 2}
	for wm := uint64(1); wm <= 5; wm++ {
		if _, _, err := ck.Save(src, wm*100); err != nil {
			t.Fatal(err)
		}
	}
	var kept []string
	for _, p := range fs.Paths() {
		if strings.HasSuffix(p, kv.CheckpointSuffix) {
			kept = append(kept, p)
		}
	}
	if len(kept) != 2 {
		t.Fatalf("kept %d checkpoints (%v), want 2", len(kept), kept)
	}
	dst := memstore.New()
	defer dst.Close()
	info, err := ck.Restore(dst)
	if err != nil {
		t.Fatal(err)
	}
	if info.Meta.Watermark != 500 {
		t.Fatalf("restored watermark %d, want 500", info.Meta.Watermark)
	}
}

func TestReadCheckpointRejectsTrailingGarbage(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	fillStore(t, src, 3)
	snap, err := kv.SnapshotOf(src)
	if err != nil {
		t.Fatal(err)
	}
	defer snap.Close()
	var buf bytes.Buffer
	it := snap.Iter(kv.StateKey{}, kv.MaxStateKey)
	if _, _, err := kv.WriteCheckpoint(&buf, "memstore", 3, it); err != nil {
		t.Fatal(err)
	}
	it.Close()
	buf.WriteString("junk")
	if _, _, err := kv.ReadCheckpoint(&buf); !errors.Is(err, kv.ErrCheckpointCorrupt) {
		t.Fatalf("want ErrCheckpointCorrupt, got %v", err)
	}
}

func TestCheckpointSurvivesFaultFSCopyPath(t *testing.T) {
	// FaultFS is not a Linker, so a Save through it exercises the charged
	// write path; a clean plan must still produce a valid checkpoint.
	src := memstore.New()
	defer src.Close()
	fillStore(t, src, 20)
	ffs := vfs.NewFaultFS(vfs.NewMemFS(), vfs.FaultPlan{})
	ck := &kv.Checkpointer{FS: ffs, Dir: "ck", Engine: "memstore"}
	if _, _, err := ck.Save(src, 20); err != nil {
		t.Fatal(err)
	}
	if ffs.Writes() == 0 || ffs.DirSyncs() == 0 {
		t.Fatalf("expected charged writes and a directory sync, got writes=%d dirSyncs=%d", ffs.Writes(), ffs.DirSyncs())
	}
	dst := memstore.New()
	defer dst.Close()
	info, err := ck.Restore(dst)
	if err != nil || info.Meta.Entries != 20 {
		t.Fatalf("restore: %+v, %v", info, err)
	}
}

func TestCheckpointSaveFailsCleanly(t *testing.T) {
	// A write fault mid-save must not leave a .tmp or a committed file.
	src := memstore.New()
	defer src.Close()
	fillStore(t, src, 50)
	mem := vfs.NewMemFS()
	ffs := vfs.NewFaultFS(mem, vfs.FaultPlan{FailWriteN: 1})
	ck := &kv.Checkpointer{FS: ffs, Dir: "ck", Engine: "memstore"}
	if _, _, err := ck.Save(src, 50); !errors.Is(err, vfs.ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	for _, p := range mem.Paths() {
		if strings.HasPrefix(p, "ck/") {
			t.Fatalf("failed save left %s behind", p)
		}
	}
}

func TestCheckpointLargeValuesAndBoundaryKeys(t *testing.T) {
	src := memstore.New()
	defer src.Close()
	big := bytes.Repeat([]byte{0xAB}, 1<<16)
	keys := []kv.StateKey{{}, {Group: ^uint64(0), Sub: ^uint64(0)}, {Group: 1, Sub: ^uint64(0)}}
	for _, sk := range keys {
		if err := src.Put(sk.Bytes(), big); err != nil {
			t.Fatal(err)
		}
	}
	fs := vfs.NewMemFS()
	ck := &kv.Checkpointer{FS: fs, Dir: "ck", Engine: "memstore"}
	if _, _, err := ck.Save(src, 3); err != nil {
		t.Fatal(err)
	}
	dst := memstore.New()
	defer dst.Close()
	if _, err := ck.Restore(dst); err != nil {
		t.Fatal(err)
	}
	for _, sk := range keys {
		v, err := dst.Get(sk.Bytes())
		if err != nil || !bytes.Equal(v, big) {
			t.Fatalf("key %v: err=%v len=%d", sk, err, len(v))
		}
	}
}
