package kv

import (
	"errors"
	"sort"
	"sync/atomic"
)

// This file defines the snapshot-and-iterator surface of the store API:
// consistent point-in-time reads and ordered range scans over the
// StateKey-encoded keyspace. Engines with a naturally ordered,
// versionable structure (LSM, B+Tree) implement Snapshotter natively;
// hash-shaped engines (FASTER) and the remote client satisfy it through
// the shared stop-the-world FallbackSnapshot so every registered engine
// supports the same API.

// MaxStateKey is the largest possible StateKey; {k.Group, MaxSub} is the
// inclusive upper bound of key group k.
var MaxStateKey = StateKey{Group: ^uint64(0), Sub: ^uint64(0)}

// MaxSub is the largest Sub value; see MaxStateKey.
const MaxSub = ^uint64(0)

// GroupEnd returns the last key of k's group, the inclusive upper bound
// of an OpScan starting at k.
func (k StateKey) GroupEnd() StateKey { return StateKey{Group: k.Group, Sub: MaxSub} }

// Iterator walks a set of entries in ascending StateKey order. The usual
// loop is:
//
//	for it.Next() {
//		use(it.Key(), it.Value())
//	}
//	if err := it.Err(); err != nil { ... }
//	it.Close()
//
// Key and Value are only valid until the next call to Next; Value's
// backing array must not be modified. Iterators surface only entries
// whose raw key decodes as a 16-byte StateKey — entries stored under
// other keys (legacy byte-string keys) are skipped, not errors.
type Iterator interface {
	// Next advances to the next entry, reporting whether one exists.
	// Once Next returns false the iterator is exhausted (or failed: check
	// Err) and stays false.
	Next() bool
	// Key returns the current entry's key.
	Key() StateKey
	// Value returns the current entry's value.
	Value() []byte
	// Err returns the first error the iteration hit, or nil. A non-nil
	// Err means the iteration ended early and its output is incomplete.
	Err() error
	// Close releases the iterator. Close is idempotent and must be
	// called before the owning snapshot is closed.
	Close() error
}

// Snapshot is a frozen, consistent point-in-time view of a store.
// Writes issued after the snapshot was taken are invisible through it.
// A snapshot must be closed when no longer needed: native snapshots pin
// engine resources (immutable memtables, table files, pre-images of
// copy-on-write pages) until released.
//
// Get serves arbitrary byte keys on engines with native snapshots; the
// shared FallbackSnapshot only indexes StateKey-encoded keys. Iter is
// defined over the StateKey keyspace on every engine.
type Snapshot interface {
	// Get returns the value stored under key at snapshot time, or
	// ErrNotFound.
	Get(key []byte) ([]byte, error)
	// Iter returns an iterator over the live entries in [lo, hi], both
	// bounds inclusive (so StateKey extremes are reachable). An empty or
	// inverted range (hi < lo) yields an exhausted iterator, not an
	// error.
	Iter(lo, hi StateKey) Iterator
	// Close releases the snapshot. Iterators obtained from it must not
	// be used afterwards.
	Close() error
}

// Snapshotter is the capability interface for stores that can produce a
// Snapshot. All registered engines implement it — natively or via the
// documented FallbackSnapshot path; Capabilities.Snapshots distinguishes
// the two.
type Snapshotter interface {
	Snapshot() (Snapshot, error)
}

// RangeScanner is implemented by stores that can serve one bounded,
// consistent range scan directly, without the caller materializing a
// Snapshot (the remote client pushes the scan to the server in a single
// frame). ScanRange prefers this path when present.
type RangeScanner interface {
	// ScanRange returns the live entries in [lo, hi] (inclusive) in
	// ascending key order, read from a consistent point-in-time view.
	ScanRange(lo, hi StateKey) ([]Entry, error)
}

// ErrNoSnapshots is returned by SnapshotOf for stores that implement
// neither Snapshotter nor the fallback path.
var ErrNoSnapshots = errors.New("kv: store does not support snapshots")

// SnapshotOf returns a point-in-time snapshot of s, or ErrNoSnapshots
// when s does not implement Snapshotter.
func SnapshotOf(s Store) (Snapshot, error) {
	if sn, ok := s.(Snapshotter); ok {
		return sn.Snapshot()
	}
	return nil, ErrNoSnapshots
}

// Entry is one key-value pair surfaced by a snapshot or scan.
type Entry struct {
	Key   StateKey
	Value []byte
}

// ScanRange collects the live entries of s in [lo, hi] (inclusive), in
// ascending key order, from a consistent view: a native RangeScanner
// when the store offers one, otherwise a snapshot taken for the duration
// of the scan. It is the translation replay uses for OpScan.
func ScanRange(s Store, lo, hi StateKey) ([]Entry, error) {
	if rs, ok := s.(RangeScanner); ok {
		return rs.ScanRange(lo, hi)
	}
	snap, err := SnapshotOf(s)
	if err != nil {
		return nil, err
	}
	defer snap.Close()
	return CollectIter(snap.Iter(lo, hi))
}

// ScanAll collects every live StateKey-encoded entry of s in ascending
// key order from a consistent view.
func ScanAll(s Store) ([]Entry, error) {
	return ScanRange(s, StateKey{}, MaxStateKey)
}

// IterOf takes a snapshot of s and returns an iterator over [lo, hi]
// whose Close also releases the snapshot — a one-shot scan without
// explicit snapshot management.
func IterOf(s Store, lo, hi StateKey) (Iterator, error) {
	snap, err := SnapshotOf(s)
	if err != nil {
		return nil, err
	}
	return &snapIter{Iterator: snap.Iter(lo, hi), snap: snap}, nil
}

// snapIter couples an iterator to the snapshot backing it.
type snapIter struct {
	Iterator
	snap Snapshot
}

func (it *snapIter) Close() error {
	err := it.Iterator.Close()
	if cerr := it.snap.Close(); err == nil {
		err = cerr
	}
	return err
}

// CollectIter drains it into a slice, closing it afterwards. The
// iterator's first error, if any, is returned with the (partial) output
// discarded.
func CollectIter(it Iterator) ([]Entry, error) {
	var out []Entry
	for it.Next() {
		out = append(out, Entry{Key: it.Key(), Value: append([]byte(nil), it.Value()...)})
	}
	err := it.Err()
	if cerr := it.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FallbackBuilder accumulates a stop-the-world dump of a store into a
// FallbackSnapshot. Engines without native snapshots walk their records
// under their own lock, Add every live pair, and hand out the result.
type FallbackBuilder struct {
	entries []Entry
}

// Add appends one live record. Keys that do not decode as StateKeys are
// skipped (the fallback view indexes only the StateKey keyspace); both
// key and value are copied.
func (b *FallbackBuilder) Add(key, value []byte) {
	sk, err := DecodeStateKey(key)
	if err != nil {
		return
	}
	b.entries = append(b.entries, Entry{Key: sk, Value: append([]byte(nil), value...)})
}

// AddEntry appends one already-decoded record without copying.
func (b *FallbackBuilder) AddEntry(e Entry) { b.entries = append(b.entries, e) }

// Snapshot sorts the accumulated entries and seals them into a
// FallbackSnapshot. The builder must not be reused afterwards.
func (b *FallbackBuilder) Snapshot() *FallbackSnapshot {
	return NewFallbackSnapshot(b.entries)
}

// FallbackSnapshot is the shared stop-the-world Snapshot implementation:
// a sorted copy of a store's live entries taken at a single point in
// time under the engine's lock. It is what engines without native
// snapshot machinery (FASTER's hash log, the remote client) return, and
// also serves as the memstore oracle's sorted view in differential
// tests. Reads never touch the origin store again, so a fallback
// snapshot stays valid after the store is closed.
type FallbackSnapshot struct {
	entries []Entry
	iterOps *atomic.Int64 // optional owner counter for <engine>.iter_ops
	closed  bool
}

var _ Snapshot = (*FallbackSnapshot)(nil)

// NewFallbackSnapshot seals entries (not copied, sorted in place) into a
// snapshot. Duplicate keys must not occur.
func NewFallbackSnapshot(entries []Entry) *FallbackSnapshot {
	sort.Slice(entries, func(i, j int) bool { return entries[i].Key.Less(entries[j].Key) })
	return &FallbackSnapshot{entries: entries}
}

// CountIterOps directs per-Next accounting into c, letting the owning
// engine surface "<engine>.iter_ops" through its Introspector.
func (s *FallbackSnapshot) CountIterOps(c *atomic.Int64) { s.iterOps = c }

// Len returns the number of entries in the snapshot.
func (s *FallbackSnapshot) Len() int { return len(s.entries) }

// Get implements Snapshot. Only StateKey-encoded keys are visible.
func (s *FallbackSnapshot) Get(key []byte) ([]byte, error) {
	if s.closed {
		return nil, ErrClosed
	}
	sk, err := DecodeStateKey(key)
	if err != nil {
		return nil, ErrNotFound
	}
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].Key.Less(sk) })
	if i < len(s.entries) && s.entries[i].Key == sk {
		return s.entries[i].Value, nil
	}
	return nil, ErrNotFound
}

// Iter implements Snapshot.
func (s *FallbackSnapshot) Iter(lo, hi StateKey) Iterator {
	if s.closed {
		return &sliceIter{err: ErrClosed}
	}
	i := sort.Search(len(s.entries), func(i int) bool { return !s.entries[i].Key.Less(lo) })
	return &sliceIter{snap: s, i: i, hi: hi}
}

// Close implements Snapshot.
func (s *FallbackSnapshot) Close() error {
	s.closed = true
	s.entries = nil
	return nil
}

// sliceIter iterates a FallbackSnapshot's sorted entries through [.., hi].
type sliceIter struct {
	snap *FallbackSnapshot
	i    int
	hi   StateKey
	cur  Entry
	done bool
	err  error
}

func (it *sliceIter) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	if it.snap.closed {
		it.err = ErrClosed
		return false
	}
	if it.snap.iterOps != nil {
		it.snap.iterOps.Add(1)
	}
	if it.i >= len(it.snap.entries) || it.hi.Less(it.snap.entries[it.i].Key) {
		it.done = true
		return false
	}
	it.cur = it.snap.entries[it.i]
	it.i++
	return true
}

func (it *sliceIter) Key() StateKey { return it.cur.Key }
func (it *sliceIter) Value() []byte { return it.cur.Value }
func (it *sliceIter) Err() error    { return it.err }
func (it *sliceIter) Close() error  { it.done = true; return nil }
